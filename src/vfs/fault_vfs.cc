#include "vfs/fault_vfs.h"

#include <algorithm>

#include "common/random.h"

namespace lsmio::vfs {

namespace {

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool StartsWith(const std::string& s, const char* prefix) {
  const size_t n = std::char_traits<char>::length(prefix);
  return s.size() >= n && s.compare(0, n, prefix) == 0;
}

}  // namespace

FaultFileClass ClassifyFaultFile(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (EndsWith(name, ".log")) return kWalFile;
  if (EndsWith(name, ".sst")) return kTableFile;
  if (EndsWith(name, ".blob")) return kBlobFile;
  if (StartsWith(name, "MANIFEST-")) return kManifestFile;
  if (name == "CURRENT" || name == "CURRENT.tmp") return kCurrentFile;
  return kOtherFile;
}

// --- file wrappers -----------------------------------------------------------

class FaultVfs::FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultVfs* owner, std::string path,
                    std::unique_ptr<WritableFile> inner)
      : owner_(owner), path_(std::move(path)), inner_(std::move(inner)) {}

  Status Append(const Slice& data) override {
    const Decision d = owner_->Tick(kAppendOp, path_);
    if (!d.fail) return inner_->Append(data);
    if (d.partial && !data.empty()) {
      // Short write: the leading half reaches storage before the failure.
      // Torn write: the persisted prefix additionally ends in garbage — the
      // sector the crash interrupted.
      std::string prefix(data.data(), (data.size() + 1) / 2);
      if (d.torn) {
        const size_t tear = std::min<size_t>(8, prefix.size());
        for (size_t i = prefix.size() - tear; i < prefix.size(); ++i) {
          prefix[i] = static_cast<char>(prefix[i] ^ 0x5c);
        }
      }
      // Deliberately dropping the inner status: the injected error below
      // is what the caller must see, whatever the partial append did.
      inner_->Append(prefix).IgnoreError();
    }
    return owner_->InjectedError();
  }

  Status Flush() override { return inner_->Flush(); }

  Status Sync() override {
    const Decision d = owner_->Tick(kSyncOp, path_);
    if (d.fail) return owner_->InjectedError();
    LSMIO_RETURN_IF_ERROR(inner_->Sync());
    owner_->RecordSync(path_, inner_->Size());
    return Status::OK();
  }

  Status Close() override { return inner_->Close(); }
  uint64_t Size() const override { return inner_->Size(); }

 private:
  FaultVfs* owner_;
  std::string path_;
  std::unique_ptr<WritableFile> inner_;
};

class FaultVfs::FaultFileHandle final : public FileHandle {
 public:
  FaultFileHandle(FaultVfs* owner, std::string path,
                  std::unique_ptr<FileHandle> inner)
      : owner_(owner), path_(std::move(path)), inner_(std::move(inner)) {}

  Status WriteAt(uint64_t offset, const Slice& data) override {
    if (owner_->Tick(kWriteAtOp, path_).fail) return owner_->InjectedError();
    return inner_->WriteAt(offset, data);
  }
  Status ReadAt(uint64_t offset, size_t n, Slice* result,
                std::string* scratch) override {
    return inner_->ReadAt(offset, n, result, scratch);
  }
  Status Sync() override {
    if (owner_->Tick(kSyncOp, path_).fail) return owner_->InjectedError();
    LSMIO_RETURN_IF_ERROR(inner_->Sync());
    owner_->RecordSync(path_, inner_->Size());
    return Status::OK();
  }
  Status Truncate(uint64_t size) override {
    if (owner_->Tick(kWriteAtOp, path_).fail) return owner_->InjectedError();
    return inner_->Truncate(size);
  }
  Status Close() override { return inner_->Close(); }
  uint64_t Size() const override { return inner_->Size(); }

 private:
  FaultVfs* owner_;
  std::string path_;
  std::unique_ptr<FileHandle> inner_;
};

// --- injector core -----------------------------------------------------------

void FaultVfs::Arm(const FaultPoint& point) {
  MutexLock lock(&mu_);
  armed_ = true;
  point_ = point;
  lost_disk_ = false;
}

void FaultVfs::Disarm() {
  MutexLock lock(&mu_);
  armed_ = false;
  lost_disk_ = false;
}

int FaultVfs::faults_injected() const {
  MutexLock lock(&mu_);
  return faults_;
}

uint64_t FaultVfs::write_ops() const {
  MutexLock lock(&mu_);
  return write_ops_;
}

bool FaultVfs::lost_disk() const {
  MutexLock lock(&mu_);
  return lost_disk_;
}

uint64_t FaultVfs::SyncedSize(const std::string& path) const {
  MutexLock lock(&mu_);
  const auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.synced_size;
}

FaultVfs::Decision FaultVfs::Tick(FaultOpClass op, const std::string& path) {
  MutexLock lock(&mu_);
  ++write_ops_;
  Decision d;
  if (lost_disk_) {
    ++faults_;
    d.fail = true;
    return d;
  }
  if (!armed_) return d;
  if ((point_.ops & op) == 0U) return d;
  if ((point_.file_classes & ClassifyFaultFile(path)) == 0U) return d;
  if (--point_.countdown > 0) return d;

  armed_ = false;
  if (point_.sticky) lost_disk_ = true;
  ++faults_;
  d.fail = true;
  switch (point_.kind) {
    case FaultKind::kFailOp:
    case FaultKind::kSyncFailure:
      break;
    case FaultKind::kShortWrite:
      d.partial = true;
      break;
    case FaultKind::kTornWrite:
      d.partial = true;
      d.torn = true;
      break;
  }
  return d;
}

void FaultVfs::RecordSync(const std::string& path, uint64_t size) {
  MutexLock lock(&mu_);
  FileState& st = files_[path];
  st.synced_size = std::max(st.synced_size, size);
  st.ever_synced = true;
}

Status FaultVfs::DropUnsyncedData(uint64_t seed) {
  std::map<std::string, FileState> tracked;
  {
    MutexLock lock(&mu_);
    tracked = files_;
    armed_ = false;
    lost_disk_ = false;
  }

  Rng rng(seed);
  for (auto& [path, st] : tracked) {
    if (!base_.FileExists(path)) continue;
    if (!st.ever_synced) {
      // Created but never fsync'd: a reboot forgets the whole file.
      LSMIO_RETURN_IF_ERROR(base_.RemoveFile(path));
      MutexLock lock(&mu_);
      files_.erase(path);
      continue;
    }
    uint64_t size = 0;
    LSMIO_RETURN_IF_ERROR(base_.GetFileSize(path, &size));
    if (size <= st.synced_size) continue;  // everything already durable

    // Some of the unsynced tail may have been written back before power
    // failed; keep a random prefix of it, never touching the synced bytes.
    const uint64_t unsynced = size - st.synced_size;
    const uint64_t keep_extra = rng.Uniform(unsynced + 1);
    const uint64_t new_size = st.synced_size + keep_extra;

    std::unique_ptr<FileHandle> handle;
    LSMIO_RETURN_IF_ERROR(base_.OpenFileHandle(path, false, {}, &handle));
    LSMIO_RETURN_IF_ERROR(handle->Truncate(new_size));
    if (keep_extra > 0 && rng.Bernoulli(0.5)) {
      // Tear the final sector of the surviving unsynced tail.
      const uint64_t tear = std::min<uint64_t>(8, keep_extra);
      std::string garbage(static_cast<size_t>(tear), '\0');
      rng.Fill(garbage.data(), garbage.size());
      LSMIO_RETURN_IF_ERROR(handle->WriteAt(new_size - tear, garbage));
    }
    LSMIO_RETURN_IF_ERROR(handle->Close());

    MutexLock lock(&mu_);
    auto it = files_.find(path);
    if (it != files_.end()) {
      it->second.synced_size = std::min(it->second.synced_size, new_size);
    }
  }
  return Status::OK();
}

// --- Vfs interface -----------------------------------------------------------

Status FaultVfs::NewWritableFile(const std::string& path, const OpenOptions& opts,
                                 std::unique_ptr<WritableFile>* file) {
  if (Tick(kCreateOp, path).fail) return InjectedError();
  std::unique_ptr<WritableFile> inner;
  LSMIO_RETURN_IF_ERROR(base_.NewWritableFile(path, opts, &inner));
  {
    // Truncate semantics: any previously synced content is gone.
    MutexLock lock(&mu_);
    files_[path] = FileState{};
  }
  *file = std::make_unique<FaultWritableFile>(this, path, std::move(inner));
  return Status::OK();
}

Status FaultVfs::NewRandomAccessFile(const std::string& path,
                                     const OpenOptions& opts,
                                     std::unique_ptr<RandomAccessFile>* file) {
  return base_.NewRandomAccessFile(path, opts, file);
}

Status FaultVfs::NewSequentialFile(const std::string& path,
                                   const OpenOptions& opts,
                                   std::unique_ptr<SequentialFile>* file) {
  return base_.NewSequentialFile(path, opts, file);
}

Status FaultVfs::OpenFileHandle(const std::string& path, bool create,
                                const OpenOptions& opts,
                                std::unique_ptr<FileHandle>* file) {
  if (create && Tick(kCreateOp, path).fail) return InjectedError();
  std::unique_ptr<FileHandle> inner;
  LSMIO_RETURN_IF_ERROR(base_.OpenFileHandle(path, create, opts, &inner));
  if (create) {
    MutexLock lock(&mu_);
    files_.emplace(path, FileState{});  // keep state if already tracked
  }
  *file = std::make_unique<FaultFileHandle>(this, path, std::move(inner));
  return Status::OK();
}

bool FaultVfs::FileExists(const std::string& path) {
  return base_.FileExists(path);
}

Status FaultVfs::GetFileSize(const std::string& path, uint64_t* size) {
  return base_.GetFileSize(path, size);
}

Status FaultVfs::RemoveFile(const std::string& path) {
  if (Tick(kRemoveOp, path).fail) return InjectedError();
  LSMIO_RETURN_IF_ERROR(base_.RemoveFile(path));
  MutexLock lock(&mu_);
  files_.erase(path);
  return Status::OK();
}

Status FaultVfs::RenameFile(const std::string& from, const std::string& to) {
  if (Tick(kRenameOp, from).fail) return InjectedError();
  LSMIO_RETURN_IF_ERROR(base_.RenameFile(from, to));
  MutexLock lock(&mu_);
  const auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  return Status::OK();
}

Status FaultVfs::CreateDir(const std::string& path) {
  return base_.CreateDir(path);
}

Status FaultVfs::ListDir(const std::string& path, std::vector<std::string>* out) {
  return base_.ListDir(path, out);
}

}  // namespace lsmio::vfs
