// Vfs backed by the local POSIX filesystem. Used by unit tests, the
// examples, and anyone adopting LSMIO on a real machine.
#pragma once

#include <atomic>
#include <cstdint>

#include "vfs/vfs.h"

namespace lsmio::vfs {

/// Process-wide counters for posix-specific behaviour that callers cannot
/// otherwise observe: readahead hints and the mmap→pread fallback.
struct PosixVfsStats {
  /// RandomAccessFile::Hint invocations and the bytes they covered.
  std::atomic<uint64_t> hint_calls{0};
  std::atomic<uint64_t> hint_bytes{0};
  /// Reads served entirely from the Hint prefetch buffer (no syscall).
  std::atomic<uint64_t> prefetch_hits{0};
  /// use_mmap opens where mmap failed and the file silently degraded to
  /// pread (also logged once per process).
  std::atomic<uint64_t> mmap_fallbacks{0};
};

/// Returns the process-wide PosixVfs singleton.
Vfs& PosixVfs();

/// Counters for the PosixVfs singleton (shared by all its files).
PosixVfsStats& GetPosixVfsStats();

}  // namespace lsmio::vfs
