// Vfs backed by the local POSIX filesystem. Used by unit tests, the
// examples, and anyone adopting LSMIO on a real machine.
#pragma once

#include "vfs/vfs.h"

namespace lsmio::vfs {

/// Returns the process-wide PosixVfs singleton.
Vfs& PosixVfs();

}  // namespace lsmio::vfs
