#include "vfs/mem_vfs.h"

#include <algorithm>
#include <cstring>

namespace lsmio::vfs {
namespace {

using MemFilePtr = std::shared_ptr<void>;

}  // namespace

// --- file object implementations -------------------------------------------

namespace {

struct MemFileRef {
  std::mutex* mu;
  std::string* data;
};

}  // namespace

class MemWritableFile final : public WritableFile {
 public:
  MemWritableFile(std::shared_ptr<std::mutex> mu, std::shared_ptr<std::string> data)
      : mu_(std::move(mu)), data_(std::move(data)) {}

  Status Append(const Slice& slice) override {
    std::lock_guard<std::mutex> lock(*mu_);
    data_->append(slice.data(), slice.size());
    size_ += slice.size();
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }
  uint64_t Size() const override { return size_; }

 private:
  std::shared_ptr<std::mutex> mu_;
  std::shared_ptr<std::string> data_;
  uint64_t size_ = 0;
};

namespace {

// MemVfs stores MemFile { mutex, string } — expose lightweight adapters.

class MemRandom final : public RandomAccessFile {
 public:
  MemRandom(std::shared_ptr<std::mutex> mu, std::shared_ptr<std::string> data)
      : mu_(std::move(mu)), data_(std::move(data)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              std::string* scratch) const override {
    std::lock_guard<std::mutex> lock(*mu_);
    if (offset >= data_->size()) {
      *result = Slice();
      return Status::OK();
    }
    const size_t avail = data_->size() - static_cast<size_t>(offset);
    const size_t want = std::min(n, avail);
    scratch->assign(data_->data() + offset, want);
    *result = Slice(*scratch);
    return Status::OK();
  }

  uint64_t Size() const override {
    std::lock_guard<std::mutex> lock(*mu_);
    return data_->size();
  }

 private:
  std::shared_ptr<std::mutex> mu_;
  std::shared_ptr<std::string> data_;
};

class MemSequential final : public SequentialFile {
 public:
  MemSequential(std::shared_ptr<std::mutex> mu, std::shared_ptr<std::string> data)
      : mu_(std::move(mu)), data_(std::move(data)) {}

  Status Read(size_t n, Slice* result, std::string* scratch) override {
    std::lock_guard<std::mutex> lock(*mu_);
    if (pos_ >= data_->size()) {
      *result = Slice();
      return Status::OK();
    }
    const size_t want = std::min(n, data_->size() - pos_);
    scratch->assign(data_->data() + pos_, want);
    pos_ += want;
    *result = Slice(*scratch);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

 private:
  std::shared_ptr<std::mutex> mu_;
  std::shared_ptr<std::string> data_;
  size_t pos_ = 0;
};

class MemHandle final : public FileHandle {
 public:
  MemHandle(std::shared_ptr<std::mutex> mu, std::shared_ptr<std::string> data)
      : mu_(std::move(mu)), data_(std::move(data)) {}

  Status WriteAt(uint64_t offset, const Slice& slice) override {
    std::lock_guard<std::mutex> lock(*mu_);
    const size_t end = static_cast<size_t>(offset) + slice.size();
    if (end > data_->size()) data_->resize(end, '\0');
    std::memcpy(data_->data() + offset, slice.data(), slice.size());
    return Status::OK();
  }

  Status ReadAt(uint64_t offset, size_t n, Slice* result,
                std::string* scratch) override {
    std::lock_guard<std::mutex> lock(*mu_);
    if (offset >= data_->size()) {
      *result = Slice();
      return Status::OK();
    }
    const size_t want = std::min(n, data_->size() - static_cast<size_t>(offset));
    scratch->assign(data_->data() + offset, want);
    *result = Slice(*scratch);
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lock(*mu_);
    data_->resize(static_cast<size_t>(size), '\0');
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

  uint64_t Size() const override {
    std::lock_guard<std::mutex> lock(*mu_);
    return data_->size();
  }

 private:
  std::shared_ptr<std::mutex> mu_;
  std::shared_ptr<std::string> data_;
};

}  // namespace

// MemVfs::MemFile carries its own mutex+data; to share with adapters we use
// aliasing shared_ptrs into the MemFile block.

std::shared_ptr<MemVfs::MemFile> MemVfs::Find(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

Status MemVfs::NewWritableFile(const std::string& path, const OpenOptions&,
                               std::unique_ptr<WritableFile>* file) {
  std::shared_ptr<MemFile> f;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = files_[path];
    slot = std::make_shared<MemFile>();  // truncate semantics
    f = slot;
  }
  auto mu = std::shared_ptr<std::mutex>(f, &f->mu);
  auto data = std::shared_ptr<std::string>(f, &f->data);
  *file = std::make_unique<MemWritableFile>(std::move(mu), std::move(data));
  return Status::OK();
}

Status MemVfs::NewRandomAccessFile(const std::string& path, const OpenOptions&,
                                   std::unique_ptr<RandomAccessFile>* file) {
  auto f = Find(path);
  if (!f) return Status::NotFound("mem file: " + path);
  auto mu = std::shared_ptr<std::mutex>(f, &f->mu);
  auto data = std::shared_ptr<std::string>(f, &f->data);
  *file = std::make_unique<MemRandom>(std::move(mu), std::move(data));
  return Status::OK();
}

Status MemVfs::NewSequentialFile(const std::string& path, const OpenOptions&,
                                 std::unique_ptr<SequentialFile>* file) {
  auto f = Find(path);
  if (!f) return Status::NotFound("mem file: " + path);
  auto mu = std::shared_ptr<std::mutex>(f, &f->mu);
  auto data = std::shared_ptr<std::string>(f, &f->data);
  *file = std::make_unique<MemSequential>(std::move(mu), std::move(data));
  return Status::OK();
}

Status MemVfs::OpenFileHandle(const std::string& path, bool create,
                              const OpenOptions&,
                              std::unique_ptr<FileHandle>* file) {
  std::shared_ptr<MemFile> f;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      if (!create) return Status::NotFound("mem file: " + path);
      f = std::make_shared<MemFile>();
      files_[path] = f;
    } else {
      f = it->second;
    }
  }
  auto mu = std::shared_ptr<std::mutex>(f, &f->mu);
  auto data = std::shared_ptr<std::string>(f, &f->data);
  *file = std::make_unique<MemHandle>(std::move(mu), std::move(data));
  return Status::OK();
}

bool MemVfs::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status MemVfs::GetFileSize(const std::string& path, uint64_t* size) {
  auto f = Find(path);
  if (!f) return Status::NotFound("mem file: " + path);
  std::lock_guard<std::mutex> lock(f->mu);
  *size = f->data.size();
  return Status::OK();
}

Status MemVfs::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) return Status::NotFound("mem file: " + path);
  return Status::OK();
}

Status MemVfs::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("mem file: " + from);
  files_[to] = it->second;
  files_.erase(it);
  return Status::OK();
}

Status MemVfs::CreateDir(const std::string&) { return Status::OK(); }

Status MemVfs::ListDir(const std::string& path, std::vector<std::string>* out) {
  out->clear();
  std::string prefix = path;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, file] : files_) {
    if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
      const std::string rest = name.substr(prefix.size());
      const size_t slash = rest.find('/');
      const std::string child = slash == std::string::npos ? rest : rest.substr(0, slash);
      if (out->empty() || out->back() != child) {
        if (std::find(out->begin(), out->end(), child) == out->end()) {
          out->push_back(child);
        }
      }
    }
  }
  return Status::OK();
}

uint64_t MemVfs::TotalBytes() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, file] : files_) {
    std::lock_guard<std::mutex> flock(file->mu);
    total += file->data.size();
  }
  return total;
}

size_t MemVfs::FileCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.size();
}

}  // namespace lsmio::vfs
