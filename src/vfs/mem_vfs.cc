#include "vfs/mem_vfs.h"

#include <algorithm>
#include <cstring>

namespace lsmio::vfs {

// --- file object implementations -------------------------------------------
//
// Each adapter holds a shared_ptr to the whole MemFile block and locks
// file_->mu around every file_->data access, so the GUARDED_BY relation is
// visible to the thread-safety analysis (unlike the aliasing-shared_ptr
// scheme this replaced, which split the mutex and the data into unrelated
// pointers).

namespace {

using MemFilePtr = std::shared_ptr<MemVfs::MemFile>;

}  // namespace

class MemWritableFile final : public WritableFile {
 public:
  explicit MemWritableFile(MemFilePtr file) : file_(std::move(file)) {}

  Status Append(const Slice& slice) override {
    MutexLock lock(&file_->mu);
    file_->data.append(slice.data(), slice.size());
    size_ += slice.size();
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }
  uint64_t Size() const override { return size_; }

 private:
  MemFilePtr file_;
  uint64_t size_ = 0;  // writer-private running count; no lock needed
};

namespace {

class MemRandom final : public RandomAccessFile {
 public:
  explicit MemRandom(MemFilePtr file) : file_(std::move(file)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              std::string* scratch) const override {
    MutexLock lock(&file_->mu);
    if (offset >= file_->data.size()) {
      *result = Slice();
      return Status::OK();
    }
    const size_t avail = file_->data.size() - static_cast<size_t>(offset);
    const size_t want = std::min(n, avail);
    scratch->assign(file_->data.data() + offset, want);
    *result = Slice(*scratch);
    return Status::OK();
  }

  uint64_t Size() const override {
    MutexLock lock(&file_->mu);
    return file_->data.size();
  }

 private:
  MemFilePtr file_;
};

class MemSequential final : public SequentialFile {
 public:
  explicit MemSequential(MemFilePtr file) : file_(std::move(file)) {}

  Status Read(size_t n, Slice* result, std::string* scratch) override {
    MutexLock lock(&file_->mu);
    if (pos_ >= file_->data.size()) {
      *result = Slice();
      return Status::OK();
    }
    const size_t want = std::min(n, file_->data.size() - pos_);
    scratch->assign(file_->data.data() + pos_, want);
    pos_ += want;
    *result = Slice(*scratch);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

 private:
  MemFilePtr file_;
  size_t pos_ = 0;  // single-reader cursor; callers serialize Read/Skip
};

class MemHandle final : public FileHandle {
 public:
  explicit MemHandle(MemFilePtr file) : file_(std::move(file)) {}

  Status WriteAt(uint64_t offset, const Slice& slice) override {
    MutexLock lock(&file_->mu);
    const size_t end = static_cast<size_t>(offset) + slice.size();
    if (end > file_->data.size()) file_->data.resize(end, '\0');
    std::memcpy(file_->data.data() + offset, slice.data(), slice.size());
    return Status::OK();
  }

  Status ReadAt(uint64_t offset, size_t n, Slice* result,
                std::string* scratch) override {
    MutexLock lock(&file_->mu);
    if (offset >= file_->data.size()) {
      *result = Slice();
      return Status::OK();
    }
    const size_t want =
        std::min(n, file_->data.size() - static_cast<size_t>(offset));
    scratch->assign(file_->data.data() + offset, want);
    *result = Slice(*scratch);
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

  Status Truncate(uint64_t size) override {
    MutexLock lock(&file_->mu);
    file_->data.resize(static_cast<size_t>(size), '\0');
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

  uint64_t Size() const override {
    MutexLock lock(&file_->mu);
    return file_->data.size();
  }

 private:
  MemFilePtr file_;
};

}  // namespace

std::shared_ptr<MemVfs::MemFile> MemVfs::Find(const std::string& path) {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

Status MemVfs::NewWritableFile(const std::string& path, const OpenOptions&,
                               std::unique_ptr<WritableFile>* file) {
  std::shared_ptr<MemFile> f;
  {
    MutexLock lock(&mu_);
    auto& slot = files_[path];
    slot = std::make_shared<MemFile>();  // truncate semantics
    f = slot;
  }
  *file = std::make_unique<MemWritableFile>(std::move(f));
  return Status::OK();
}

Status MemVfs::NewRandomAccessFile(const std::string& path, const OpenOptions&,
                                   std::unique_ptr<RandomAccessFile>* file) {
  auto f = Find(path);
  if (!f) return Status::NotFound("mem file: " + path);
  *file = std::make_unique<MemRandom>(std::move(f));
  return Status::OK();
}

Status MemVfs::NewSequentialFile(const std::string& path, const OpenOptions&,
                                 std::unique_ptr<SequentialFile>* file) {
  auto f = Find(path);
  if (!f) return Status::NotFound("mem file: " + path);
  *file = std::make_unique<MemSequential>(std::move(f));
  return Status::OK();
}

Status MemVfs::OpenFileHandle(const std::string& path, bool create,
                              const OpenOptions&,
                              std::unique_ptr<FileHandle>* file) {
  std::shared_ptr<MemFile> f;
  {
    MutexLock lock(&mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      if (!create) return Status::NotFound("mem file: " + path);
      f = std::make_shared<MemFile>();
      files_[path] = f;
    } else {
      f = it->second;
    }
  }
  *file = std::make_unique<MemHandle>(std::move(f));
  return Status::OK();
}

bool MemVfs::FileExists(const std::string& path) {
  MutexLock lock(&mu_);
  return files_.contains(path);
}

Status MemVfs::GetFileSize(const std::string& path, uint64_t* size) {
  auto f = Find(path);
  if (!f) return Status::NotFound("mem file: " + path);
  MutexLock lock(&f->mu);
  *size = f->data.size();
  return Status::OK();
}

Status MemVfs::RemoveFile(const std::string& path) {
  MutexLock lock(&mu_);
  if (files_.erase(path) == 0) return Status::NotFound("mem file: " + path);
  return Status::OK();
}

Status MemVfs::RenameFile(const std::string& from, const std::string& to) {
  MutexLock lock(&mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("mem file: " + from);
  files_[to] = it->second;
  files_.erase(it);
  return Status::OK();
}

Status MemVfs::CreateDir(const std::string&) { return Status::OK(); }

Status MemVfs::ListDir(const std::string& path, std::vector<std::string>* out) {
  out->clear();
  std::string prefix = path;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  MutexLock lock(&mu_);
  for (const auto& [name, file] : files_) {
    if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
      const std::string rest = name.substr(prefix.size());
      const size_t slash = rest.find('/');
      const std::string child = slash == std::string::npos ? rest : rest.substr(0, slash);
      if (out->empty() || out->back() != child) {
        if (std::find(out->begin(), out->end(), child) == out->end()) {
          out->push_back(child);
        }
      }
    }
  }
  return Status::OK();
}

uint64_t MemVfs::TotalBytes() {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [name, file] : files_) {
    MutexLock flock(&file->mu);
    total += file->data.size();
  }
  return total;
}

size_t MemVfs::FileCount() {
  MutexLock lock(&mu_);
  return files_.size();
}

}  // namespace lsmio::vfs
