// In-memory Vfs: a thread-safe map from path to byte buffer. Directories
// are implicit (any path prefix). Used by fast unit tests and as the data
// plane under TraceVfs in the benchmark simulations.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "vfs/vfs.h"

namespace lsmio::vfs {

class MemVfs final : public Vfs {
 public:
  MemVfs() = default;

  Status NewWritableFile(const std::string& path, const OpenOptions& opts,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewRandomAccessFile(const std::string& path, const OpenOptions& opts,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewSequentialFile(const std::string& path, const OpenOptions& opts,
                           std::unique_ptr<SequentialFile>* file) override;
  Status OpenFileHandle(const std::string& path, bool create,
                        const OpenOptions& opts,
                        std::unique_ptr<FileHandle>* file) override;

  bool FileExists(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Status ListDir(const std::string& path, std::vector<std::string>* out) override;

  /// Total bytes across all files (test/diagnostic aid).
  uint64_t TotalBytes();
  /// Number of files (test/diagnostic aid).
  size_t FileCount();

 private:
  struct MemFile {
    std::mutex mu;
    std::string data;
  };

  std::shared_ptr<MemFile> Find(const std::string& path);

  std::mutex mu_;
  std::map<std::string, std::shared_ptr<MemFile>> files_;
};

}  // namespace lsmio::vfs
