// In-memory Vfs: a thread-safe map from path to byte buffer. Directories
// are implicit (any path prefix). Used by fast unit tests and as the data
// plane under TraceVfs in the benchmark simulations.
#pragma once

#include <map>
#include <memory>

#include "common/synchronization.h"
#include "vfs/vfs.h"

namespace lsmio::vfs {

class MemVfs final : public Vfs {
 public:
  /// One in-memory file: its bytes plus the mutex guarding them. Public so
  /// the adapter file objects (writable/random/sequential/handle) can hold a
  /// shared_ptr to the whole block and lock `mu` around `data` accesses in a
  /// way the thread-safety analysis can follow.
  struct MemFile {
    Mutex mu;
    std::string data GUARDED_BY(mu);
  };

  MemVfs() = default;

  Status NewWritableFile(const std::string& path, const OpenOptions& opts,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewRandomAccessFile(const std::string& path, const OpenOptions& opts,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewSequentialFile(const std::string& path, const OpenOptions& opts,
                           std::unique_ptr<SequentialFile>* file) override;
  Status OpenFileHandle(const std::string& path, bool create,
                        const OpenOptions& opts,
                        std::unique_ptr<FileHandle>* file) override;

  bool FileExists(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Status ListDir(const std::string& path, std::vector<std::string>* out) override;

  /// Total bytes across all files (test/diagnostic aid).
  uint64_t TotalBytes() EXCLUDES(mu_);
  /// Number of files (test/diagnostic aid).
  size_t FileCount() EXCLUDES(mu_);

 private:
  std::shared_ptr<MemFile> Find(const std::string& path) EXCLUDES(mu_);

  Mutex mu_;
  std::map<std::string, std::shared_ptr<MemFile>> files_ GUARDED_BY(mu_);
};

}  // namespace lsmio::vfs
