// FaultVfs: a Vfs decorator with programmable failure points, built for
// crash-consistency testing of the LSM engine (and anything else that
// writes through a Vfs).
//
// Three orthogonal capabilities:
//
//  1. Failure points. Arm() installs a FaultPoint that fires on the Nth
//     write-class operation matching an (operation, file-class) mask.
//     Kinds: fail the op outright, persist only a prefix (short write),
//     persist a prefix plus garbage (torn write), or fail fsync. After a
//     sticky fault fires, every later write-class op fails too — the file
//     system "went away", as a dying node sees it.
//
//  2. Power loss. Every tracked file remembers how many bytes were covered
//     by its last successful Sync(). DropUnsyncedData() reverts each file
//     to that durable prefix plus a random portion of the unsynced tail
//     (the OS may have written some of it back), optionally tearing the
//     final bytes — the on-disk state a machine reboot leaves behind.
//
//  3. Per-file-type targeting. Paths are classified by the LSM naming
//     convention (WAL *.log, SSTable *.sst, MANIFEST-*, CURRENT) so a test
//     can break only the WAL, only table flushes, or only manifest writes.
//
// Read-class operations always pass through: a crashed writer's files stay
// readable, which is exactly what recovery needs to exercise.
//
// Thread-safe; background flush/compaction threads share the injector with
// the test thread.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/synchronization.h"
#include "vfs/vfs.h"

namespace lsmio::vfs {

/// File classes recognized by the injector (bitmask). Classification mirrors
/// the LSM file-naming convention; anything unrecognized is kOtherFile.
enum FaultFileClass : unsigned {
  kWalFile = 1U << 0,       // NNNNNN.log
  kTableFile = 1U << 1,     // NNNNNN.sst
  kManifestFile = 1U << 2,  // MANIFEST-NNNNNN
  kCurrentFile = 1U << 3,   // CURRENT / CURRENT.tmp
  kBlobFile = 1U << 4,      // NNNNNN.blob (value-log segment)
  kOtherFile = 1U << 5,
  kAnyFile = (1U << 6) - 1,
};

/// Write-class operations the injector can interpose on (bitmask).
enum FaultOpClass : unsigned {
  kCreateOp = 1U << 0,    // NewWritableFile / OpenFileHandle(create)
  kAppendOp = 1U << 1,    // WritableFile::Append
  kSyncOp = 1U << 2,      // WritableFile::Sync / FileHandle::Sync
  kRenameOp = 1U << 3,    // RenameFile
  kRemoveOp = 1U << 4,    // RemoveFile
  kWriteAtOp = 1U << 5,   // FileHandle::WriteAt / Truncate
  kAnyWriteOp = (1U << 6) - 1,
};

/// What happens when a FaultPoint fires.
enum class FaultKind : uint8_t {
  kFailOp,      // the op fails with IoError; no bytes reach the base Vfs
  kShortWrite,  // (append only) a prefix reaches the base, then IoError
  kTornWrite,   // (append only) a prefix + garbage bytes reach the base,
                // then IoError — a sector torn mid-write
  kSyncFailure, // the op fails and, for Sync, durability is NOT advanced
};

/// A programmable failure point: fires on the `countdown`-th write-class
/// operation (1-based) matching both masks.
struct FaultPoint {
  FaultKind kind = FaultKind::kFailOp;
  unsigned file_classes = kAnyFile;  // FaultFileClass bitmask
  unsigned ops = kAnyWriteOp;        // FaultOpClass bitmask
  int countdown = 1;
  /// After firing, every subsequent write-class op (any file, any op) fails
  /// too: the process has lost its disk and only a reopen after
  /// DropUnsyncedData() recovers.
  bool sticky = true;
};

/// Classifies a path (or bare file name) into a FaultFileClass.
FaultFileClass ClassifyFaultFile(const std::string& path);

class FaultVfs final : public Vfs {
 public:
  explicit FaultVfs(Vfs& base) : base_(base) {}
  ~FaultVfs() override = default;

  FaultVfs(const FaultVfs&) = delete;
  FaultVfs& operator=(const FaultVfs&) = delete;

  // --- programming the injector --------------------------------------------

  /// Installs `point` (replacing any armed one) and clears the lost-disk
  /// latch so the countdown starts fresh.
  void Arm(const FaultPoint& point) EXCLUDES(mu_);
  /// Removes the armed fault and clears the lost-disk latch.
  void Disarm() EXCLUDES(mu_);

  /// Power loss: reverts every tracked file to its synced prefix plus a
  /// seed-chosen portion of the unsynced tail (possibly tearing the final
  /// bytes), removes tracked files that were never synced, disarms the
  /// injector, and clears the lost-disk latch. Call after dropping every
  /// object that still points at the wrapped files.
  Status DropUnsyncedData(uint64_t seed) EXCLUDES(mu_);

  // --- introspection --------------------------------------------------------

  /// Number of operations failed by injection so far.
  [[nodiscard]] int faults_injected() const EXCLUDES(mu_);
  /// Total write-class operations observed (useful for sizing countdowns).
  [[nodiscard]] uint64_t write_ops() const EXCLUDES(mu_);
  /// True once a sticky fault has fired and until Disarm/DropUnsyncedData.
  [[nodiscard]] bool lost_disk() const EXCLUDES(mu_);
  /// Bytes of `path` covered by its last successful Sync (0 if untracked).
  [[nodiscard]] uint64_t SyncedSize(const std::string& path) const EXCLUDES(mu_);

  // --- Vfs interface --------------------------------------------------------

  Status NewWritableFile(const std::string& path, const OpenOptions& opts,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewRandomAccessFile(const std::string& path, const OpenOptions& opts,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewSequentialFile(const std::string& path, const OpenOptions& opts,
                           std::unique_ptr<SequentialFile>* file) override;
  Status OpenFileHandle(const std::string& path, bool create,
                        const OpenOptions& opts,
                        std::unique_ptr<FileHandle>* file) override;

  bool FileExists(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Status ListDir(const std::string& path, std::vector<std::string>* out) override;

 private:
  class FaultWritableFile;
  class FaultFileHandle;

  /// Durability bookkeeping for one tracked (written-through-us) file.
  struct FileState {
    uint64_t synced_size = 0;  // bytes covered by the last successful Sync
    bool ever_synced = false;  // survived at least one fsync
  };

  /// Outcome of consulting the injector for one operation.
  struct Decision {
    bool fail = false;     // fail the op with IoError
    bool partial = false;  // append a prefix first (short/torn write)
    bool torn = false;     // ...and corrupt the tail of that prefix
  };

  Decision Tick(FaultOpClass op, const std::string& path) EXCLUDES(mu_);

  Status InjectedError() const {
    return Status::IoError("injected fault (FaultVfs)");
  }

  // Called by the file wrappers after a successful inner Sync.
  void RecordSync(const std::string& path, uint64_t size) EXCLUDES(mu_);

  Vfs& base_;
  mutable Mutex mu_;
  bool armed_ GUARDED_BY(mu_) = false;
  FaultPoint point_ GUARDED_BY(mu_);
  bool lost_disk_ GUARDED_BY(mu_) = false;
  int faults_ GUARDED_BY(mu_) = 0;
  uint64_t write_ops_ GUARDED_BY(mu_) = 0;
  std::map<std::string, FileState> files_ GUARDED_BY(mu_);
};

}  // namespace lsmio::vfs
