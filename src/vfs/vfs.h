// Virtual file system abstraction.
//
// Every byte that any library in this repository moves to "storage" goes
// through a Vfs. Three implementations exist:
//   * PosixVfs  — real files on the local filesystem (tests, examples);
//   * MemVfs    — in-memory files (fast tests, benchmark data plane);
//   * TraceVfs  — decorates another Vfs and records an IoTrace per agent,
//                 which pfs::LustreSim replays on a simulated Lustre system.
//
// Two access styles are provided because the workloads need both:
//   * append-oriented (WritableFile / SequentialFile / RandomAccessFile) —
//     the LSM engine's WAL/SSTable path;
//   * positional read/write on an open handle (FileHandle) — the POSIX/IOR
//     baseline and the h5l hierarchical format, which update a shared file
//     at strided offsets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace lsmio::vfs {

/// Per-file open options.
struct OpenOptions {
  /// Hint that reads should be memory-mapped if the backend supports it
  /// (paper §3.1.1 exposes an mmap option on the store).
  bool use_mmap = false;
  /// O_DIRECT-style hint: bypass OS caching. Honoured only by simulation
  /// cost models; PosixVfs treats it as advisory.
  bool direct = false;
};

/// Append-only file being written.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  /// Pushes library buffers to the backend (no durability guarantee).
  virtual Status Flush() = 0;
  /// Durability barrier: returns once data is on "stable storage".
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  /// Bytes appended so far.
  [[nodiscard]] virtual uint64_t Size() const = 0;
};

/// Read-only positional access to an immutable file (SSTables).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to n bytes at offset. *result points into *scratch (or into
  /// mmap'd memory) and is valid until the next call / file close.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      std::string* scratch) const = 0;
  /// Advisory: the caller expects to read [offset, offset+length) soon,
  /// typically sequentially. Backends may prefetch; correctness never
  /// depends on it. Default (and MemVfs): no-op — memory is already
  /// "prefetched".
  virtual void Hint(uint64_t offset, size_t length) const {
    (void)offset;
    (void)length;
  }
  [[nodiscard]] virtual uint64_t Size() const = 0;
};

/// Forward-only reader (WAL/manifest recovery).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  virtual Status Read(size_t n, Slice* result, std::string* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

/// Read/write positional handle (POSIX-baseline and h5l usage).
class FileHandle {
 public:
  virtual ~FileHandle() = default;
  virtual Status WriteAt(uint64_t offset, const Slice& data) = 0;
  virtual Status ReadAt(uint64_t offset, size_t n, Slice* result,
                        std::string* scratch) = 0;
  virtual Status Sync() = 0;
  virtual Status Truncate(uint64_t size) = 0;
  virtual Status Close() = 0;
  [[nodiscard]] virtual uint64_t Size() const = 0;
};

/// File-system namespace + factory for file objects. Thread-safe.
class Vfs {
 public:
  virtual ~Vfs() = default;

  virtual Status NewWritableFile(const std::string& path, const OpenOptions& opts,
                                 std::unique_ptr<WritableFile>* file) = 0;
  virtual Status NewRandomAccessFile(const std::string& path, const OpenOptions& opts,
                                     std::unique_ptr<RandomAccessFile>* file) = 0;
  virtual Status NewSequentialFile(const std::string& path, const OpenOptions& opts,
                                   std::unique_ptr<SequentialFile>* file) = 0;
  /// Opens (creating if `create`) a read/write handle.
  virtual Status OpenFileHandle(const std::string& path, bool create,
                                const OpenOptions& opts,
                                std::unique_ptr<FileHandle>* file) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Status GetFileSize(const std::string& path, uint64_t* size) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status CreateDir(const std::string& path) = 0;
  /// Lists immediate children names (not full paths) of a directory.
  virtual Status ListDir(const std::string& path, std::vector<std::string>* out) = 0;
};

/// Convenience: reads a whole file into *out.
Status ReadFileToString(Vfs& fs, const std::string& path, std::string* out);

/// Convenience: writes data as the entire contents of path (+Sync).
Status WriteStringToFile(Vfs& fs, const std::string& path, const Slice& data);

}  // namespace lsmio::vfs
