#include "vfs/posix_vfs.h"

#include "common/synchronization.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/logging.h"

namespace lsmio::vfs {
namespace {

/// Prefetch windows are aligned down to this boundary and capped so a
/// runaway hint cannot pin unbounded memory.
constexpr uint64_t kPrefetchAlign = 4096;
constexpr size_t kMaxPrefetchBytes = 4 << 20;

Status ErrnoStatus(const std::string& context, int err) {
  const std::string msg = context + ": " + std::strerror(err);
  if (err == ENOENT) return Status::NotFound(msg);
  return Status::IoError(msg);
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write " + path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    size_ += data.size();
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close " + path_, errno);
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  int fd_;
  std::string path_;
  uint64_t size_ = 0;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, uint64_t size, void* map)
      : fd_(fd), size_(size), map_(map) {}
  ~PosixRandomAccessFile() override {
    if (map_ != nullptr) ::munmap(map_, size_);
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              std::string* scratch) const override {
    if (offset > size_) {
      *result = Slice();
      return Status::OK();
    }
    const size_t avail = static_cast<size_t>(size_ - offset);
    const size_t want = n < avail ? n : avail;
    if (map_ != nullptr) {
      *result = Slice(static_cast<const char*>(map_) + offset, want);
      return Status::OK();
    }
    if (want > 0 && prefetch_active_.load(std::memory_order_acquire)) {
      MutexLock lock(&prefetch_mu_);
      if (offset >= prefetch_offset_ &&
          offset + want <= prefetch_offset_ + prefetch_.size()) {
        scratch->assign(prefetch_.data() + (offset - prefetch_offset_), want);
        *result = Slice(*scratch);
        GetPosixVfsStats().prefetch_hits.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
    }
    scratch->resize(want);
    size_t done = 0;
    while (done < want) {
      const ssize_t r = ::pread(fd_, scratch->data() + done, want - done,
                                static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread", errno);
      }
      if (r == 0) break;
      done += static_cast<size_t>(r);
    }
    scratch->resize(done);
    *result = Slice(*scratch);
    return Status::OK();
  }

  void Hint(uint64_t offset, size_t length) const override {
    if (offset >= size_ || length == 0) return;
    length = std::min<uint64_t>(length, size_ - offset);
    PosixVfsStats& stats = GetPosixVfsStats();
    stats.hint_calls.fetch_add(1, std::memory_order_relaxed);
    stats.hint_bytes.fetch_add(length, std::memory_order_relaxed);
    if (map_ != nullptr) {
      // Already mapped: nudge the page cache; no buffer needed.
      const uint64_t start = offset & ~(kPrefetchAlign - 1);
      ::madvise(static_cast<char*>(map_) + start,
                static_cast<size_t>(offset + length - start), MADV_WILLNEED);
      return;
    }
#ifdef POSIX_FADV_WILLNEED
    ::posix_fadvise(fd_, static_cast<off_t>(offset),
                    static_cast<off_t>(length), POSIX_FADV_WILLNEED);
#endif
    // Fill the aligned prefetch window so the caller's subsequent small
    // block reads are served from one large pread instead of many.
    length = std::min(length, kMaxPrefetchBytes);
    MutexLock lock(&prefetch_mu_);
    if (offset >= prefetch_offset_ &&
        offset + length <= prefetch_offset_ + prefetch_.size()) {
      return;  // window already covers the hinted range
    }
    const uint64_t start = offset & ~(kPrefetchAlign - 1);
    const size_t want = static_cast<size_t>(offset + length - start);
    prefetch_.resize(want);
    size_t done = 0;
    while (done < want) {
      const ssize_t r = ::pread(fd_, prefetch_.data() + done, want - done,
                                static_cast<off_t>(start + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        done = 0;  // advisory only: drop the window on error
        break;
      }
      if (r == 0) break;
      done += static_cast<size_t>(r);
    }
    prefetch_.resize(done);
    prefetch_offset_ = start;
    prefetch_active_.store(done > 0, std::memory_order_release);
  }

  uint64_t Size() const override { return size_; }

 private:
  int fd_;         // unguarded: immutable after open
  uint64_t size_;  // unguarded: immutable after open
  void* map_;      // unguarded: immutable after open

  /// Readahead window filled by Hint; files are immutable once opened, so
  /// served bytes can never be stale.
  mutable Mutex prefetch_mu_;
  /// Cheap pre-check read outside prefetch_mu_ (acquire pairs with the
  /// release store in Hint); the guarded window state is re-checked under
  /// the lock before any byte is served.
  mutable std::atomic<bool> prefetch_active_{false};
  mutable std::string prefetch_ GUARDED_BY(prefetch_mu_);
  mutable uint64_t prefetch_offset_ GUARDED_BY(prefetch_mu_) = 0;
};

class PosixSequentialFile final : public SequentialFile {
 public:
  explicit PosixSequentialFile(int fd) : fd_(fd) {}
  ~PosixSequentialFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(size_t n, Slice* result, std::string* scratch) override {
    scratch->resize(n);
    size_t done = 0;
    while (done < n) {
      const ssize_t r = ::read(fd_, scratch->data() + done, n - done);
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("read", errno);
      }
      if (r == 0) break;
      done += static_cast<size_t>(r);
    }
    scratch->resize(done);
    *result = Slice(*scratch);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) < 0) {
      return ErrnoStatus("lseek", errno);
    }
    return Status::OK();
  }

 private:
  int fd_;
};

class PosixFileHandle final : public FileHandle {
 public:
  PosixFileHandle(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixFileHandle() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status WriteAt(uint64_t offset, const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    uint64_t off = offset;
    while (left > 0) {
      const ssize_t n = ::pwrite(fd_, p, left, static_cast<off_t>(off));
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pwrite " + path_, errno);
      }
      p += n;
      off += static_cast<uint64_t>(n);
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status ReadAt(uint64_t offset, size_t n, Slice* result,
                std::string* scratch) override {
    scratch->resize(n);
    size_t done = 0;
    while (done < n) {
      const ssize_t r = ::pread(fd_, scratch->data() + done, n - done,
                                static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread " + path_, errno);
      }
      if (r == 0) break;
      done += static_cast<size_t>(r);
    }
    scratch->resize(done);
    *result = Slice(*scratch);
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + path_, errno);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("ftruncate " + path_, errno);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close " + path_, errno);
    return Status::OK();
  }

  uint64_t Size() const override {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) return 0;
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
  std::string path_;
};

class PosixVfsImpl final : public Vfs {
 public:
  Status NewWritableFile(const std::string& path, const OpenOptions&,
                         std::unique_ptr<WritableFile>* file) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return ErrnoStatus("open(w) " + path, errno);
    *file = std::make_unique<PosixWritableFile>(fd, path);
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& path, const OpenOptions& opts,
                             std::unique_ptr<RandomAccessFile>* file) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open(r) " + path, errno);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("fstat " + path, err);
    }
    void* map = nullptr;
    if (opts.use_mmap && st.st_size > 0) {
      map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                   MAP_SHARED, fd, 0);
      if (map == MAP_FAILED) {
        // Fall back to pread. Reads stay correct but lose the zero-copy
        // path the caller asked for, so make the degradation observable.
        const int err = errno;
        map = nullptr;
        GetPosixVfsStats().mmap_fallbacks.fetch_add(1, std::memory_order_relaxed);
        static std::once_flag warned;
        std::call_once(warned, [&] {
          LSMIO_WARN << "mmap(" << path << ") failed (" << std::strerror(err)
                     << "); falling back to pread (warning logged once; see "
                        "PosixVfsStats::mmap_fallbacks for the count)";
        });
      }
    }
    *file = std::make_unique<PosixRandomAccessFile>(
        fd, static_cast<uint64_t>(st.st_size), map);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& path, const OpenOptions&,
                           std::unique_ptr<SequentialFile>* file) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open(r) " + path, errno);
    *file = std::make_unique<PosixSequentialFile>(fd);
    return Status::OK();
  }

  Status OpenFileHandle(const std::string& path, bool create, const OpenOptions&,
                        std::unique_ptr<FileHandle>* file) override {
    int flags = O_RDWR;
    if (create) flags |= O_CREAT;
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open(rw) " + path, errno);
    *file = std::make_unique<PosixFileHandle>(fd, path);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status GetFileSize(const std::string& path, uint64_t* size) override {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat " + path, errno);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink " + path, errno);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) return Status::IoError("mkdir " + path + ": " + ec.message());
    return Status::OK();
  }

  Status ListDir(const std::string& path, std::vector<std::string>* out) override {
    out->clear();
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      out->push_back(entry.path().filename().string());
    }
    if (ec) return Status::IoError("listdir " + path + ": " + ec.message());
    return Status::OK();
  }
};

}  // namespace

Vfs& PosixVfs() {
  static PosixVfsImpl instance;
  return instance;
}

PosixVfsStats& GetPosixVfsStats() {
  static PosixVfsStats stats;
  return stats;
}

Status ReadFileToString(Vfs& fs, const std::string& path, std::string* out) {
  out->clear();
  std::unique_ptr<SequentialFile> file;
  LSMIO_RETURN_IF_ERROR(fs.NewSequentialFile(path, {}, &file));
  constexpr size_t kChunk = 1 << 20;
  std::string scratch;
  for (;;) {
    Slice chunk;
    LSMIO_RETURN_IF_ERROR(file->Read(kChunk, &chunk, &scratch));
    if (chunk.empty()) break;
    out->append(chunk.data(), chunk.size());
    if (chunk.size() < kChunk) break;
  }
  return Status::OK();
}

Status WriteStringToFile(Vfs& fs, const std::string& path, const Slice& data) {
  std::unique_ptr<WritableFile> file;
  LSMIO_RETURN_IF_ERROR(fs.NewWritableFile(path, {}, &file));
  LSMIO_RETURN_IF_ERROR(file->Append(data));
  LSMIO_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

}  // namespace lsmio::vfs
