#include "vfs/trace.h"

#include <cassert>

namespace lsmio::vfs {

TraceContext::TraceContext(int num_ranks)
    : num_ranks_(num_ranks),
      trace_locks_(std::make_unique<internal::TraceLock[]>(
          static_cast<size_t>(num_ranks))) {
  assert(num_ranks >= 1);
  traces_.resize(static_cast<size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) traces_[static_cast<size_t>(r)].rank = r;
}

uint32_t TraceContext::InternFile(const std::string& path) {
  MutexLock lock(&intern_mu_);
  auto [it, inserted] = path_to_id_.try_emplace(
      path, static_cast<uint32_t>(id_to_path_.size()));
  if (inserted) id_to_path_.push_back(path);
  return it->second;
}

const std::string& TraceContext::PathOf(uint32_t file_id) const {
  MutexLock lock(&intern_mu_);
  assert(file_id < id_to_path_.size());
  return id_to_path_[file_id];
}

size_t TraceContext::num_files() const {
  MutexLock lock(&intern_mu_);
  return id_to_path_.size();
}

void TraceContext::Record(int rank, const IoOp& op) {
  assert(rank >= 0 && rank < num_ranks_);
  MutexLock lock(&trace_locks_[static_cast<size_t>(rank)].mu);
  traces_[static_cast<size_t>(rank)].ops.push_back(op);
}

void TraceContext::RecordBarrier(int rank, uint64_t barrier_id) {
  Record(rank, IoOp{IoOpKind::kBarrier, kNoFile, 0, barrier_id});
}

void TraceContext::RecordCompute(int rank, uint64_t nanos) {
  if (nanos == 0) return;
  Record(rank, IoOp{IoOpKind::kCompute, kNoFile, 0, nanos});
}

void TraceContext::RecordPhaseBegin(int rank) {
  Record(rank, IoOp{IoOpKind::kPhaseBegin, kNoFile, 0, 0});
}

void TraceContext::RecordPhaseEnd(int rank) {
  Record(rank, IoOp{IoOpKind::kPhaseEnd, kNoFile, 0, 0});
}

const IoTrace& TraceContext::TraceForRank(int rank) const {
  assert(rank >= 0 && rank < num_ranks_);
  return traces_[static_cast<size_t>(rank)];
}

namespace {
uint64_t BytesInPhase(const std::vector<IoTrace>& traces, IoOpKind kind) {
  uint64_t total = 0;
  for (const auto& trace : traces) {
    bool in_phase = false;
    for (const auto& op : trace.ops) {
      if (op.kind == IoOpKind::kPhaseBegin) in_phase = true;
      else if (op.kind == IoOpKind::kPhaseEnd) in_phase = false;
      else if (in_phase && op.kind == kind) total += op.size;
    }
  }
  return total;
}
}  // namespace

uint64_t TraceContext::BytesWrittenInPhase() const {
  return BytesInPhase(traces_, IoOpKind::kWrite);
}

uint64_t TraceContext::BytesReadInPhase() const {
  return BytesInPhase(traces_, IoOpKind::kRead);
}

}  // namespace lsmio::vfs
