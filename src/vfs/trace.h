// I/O trace model.
//
// A TraceContext collects, per simulated compute-node rank, the ordered
// sequence of I/O operations that the library under test actually issued
// (through a TraceVfs). The pfs::LustreSim later replays these traces on a
// simulated parallel file system to obtain virtual timings; the data itself
// lands in the wrapped Vfs (normally MemVfs) so results stay verifiable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/synchronization.h"

namespace lsmio::vfs {

enum class IoOpKind : uint8_t {
  kCreate,      // namespace op: create file            (MDS)
  kOpen,        // namespace op: open existing          (MDS)
  kClose,       // namespace op: close                  (MDS)
  kRemove,      // namespace op: unlink                 (MDS)
  kRename,      // namespace op: rename                 (MDS)
  kStat,        // namespace op: getattr/size/list      (MDS)
  kWrite,       // data op: write `size` bytes at `offset` of `file`
  kRead,        // data op: read `size` bytes at `offset` of `file`
  kSync,        // durability barrier on `file` (waits for its dirty extents)
  kCompute,     // CPU work: `size` = nanoseconds of virtual compute
  kBarrier,     // synchronization with all ranks at barrier id `size`
  kPhaseBegin,  // start of the timed region
  kPhaseEnd,    // end of the timed region
};

/// Sentinel for ops with no file operand.
inline constexpr uint32_t kNoFile = 0xffffffffu;

/// One traced operation. Interpretation of offset/size depends on kind
/// (see IoOpKind comments).
struct IoOp {
  IoOpKind kind;
  uint32_t file = kNoFile;
  uint64_t offset = 0;
  uint64_t size = 0;
};

/// The ordered op list of one rank.
struct IoTrace {
  int rank = 0;
  std::vector<IoOp> ops;
};

namespace internal {
/// Per-rank recording lock: a rank's trace is normally appended by its own
/// thread, but engine background work (e.g. the LSM flush thread) records
/// through the same rank's TraceVfs concurrently.
struct TraceLock {
  Mutex mu;
};
}  // namespace internal

/// Shared recording context for an N-rank benchmark run.
///
/// File paths are interned to dense ids so the simulator can map files to
/// stripe layouts and detect cross-rank sharing. Each rank records into its
/// own trace; only the intern table takes a lock, so recording from N rank
/// threads is cheap.
class TraceContext {
 public:
  explicit TraceContext(int num_ranks);

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Returns the dense id of `path`, interning it on first use. Thread-safe.
  uint32_t InternFile(const std::string& path);

  /// Path for an interned id (valid ids only).
  [[nodiscard]] const std::string& PathOf(uint32_t file_id) const;

  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }
  [[nodiscard]] size_t num_files() const;

  /// Appends an op to `rank`'s trace. Thread-safe per rank (a rank's own
  /// thread and engine background threads may record concurrently).
  void Record(int rank, const IoOp& op);

  /// Convenience markers used by benchmark harnesses.
  void RecordBarrier(int rank, uint64_t barrier_id);
  void RecordCompute(int rank, uint64_t nanos);
  void RecordPhaseBegin(int rank);
  void RecordPhaseEnd(int rank);

  [[nodiscard]] const IoTrace& TraceForRank(int rank) const;
  [[nodiscard]] const std::vector<IoTrace>& traces() const noexcept { return traces_; }

  /// Total bytes written/read across all ranks inside the timed region.
  [[nodiscard]] uint64_t BytesWrittenInPhase() const;
  [[nodiscard]] uint64_t BytesReadInPhase() const;

  /// Accounts a readahead hint. Hints are advisory and not part of the
  /// replayable op stream (LustreSim has no fadvise), so they are kept as
  /// aggregate counters rather than a new IoOpKind.
  void RecordHint(uint64_t bytes) {
    hint_ops_.fetch_add(1, std::memory_order_relaxed);
    hint_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t HintOps() const {
    return hint_ops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t HintBytes() const {
    return hint_bytes_.load(std::memory_order_relaxed);
  }

 private:
  int num_ranks_;  // unguarded: immutable after construction
  // unguarded: each rank's trace is appended only under its own
  // trace_locks_[rank].mu; the vector itself is sized once in the ctor.
  std::vector<IoTrace> traces_;
  std::unique_ptr<internal::TraceLock[]> trace_locks_;  // unguarded: immutable after construction

  mutable Mutex intern_mu_;
  std::unordered_map<std::string, uint32_t> path_to_id_ GUARDED_BY(intern_mu_);
  std::vector<std::string> id_to_path_ GUARDED_BY(intern_mu_);

  std::atomic<uint64_t> hint_ops_{0};
  std::atomic<uint64_t> hint_bytes_{0};
};

}  // namespace lsmio::vfs
