#include "vfs/trace_vfs.h"

namespace lsmio::vfs {
namespace {

class TracedWritable final : public WritableFile {
 public:
  TracedWritable(std::unique_ptr<WritableFile> inner, TraceContext& ctx, int rank,
                 uint32_t file_id)
      : inner_(std::move(inner)), ctx_(ctx), rank_(rank), file_id_(file_id) {}

  ~TracedWritable() override {
    if (!closed_) {
      // Record the implicit close so the MDS sees a balanced open/close.
      ctx_.Record(rank_, IoOp{IoOpKind::kClose, file_id_, 0, 0});
    }
  }

  Status Append(const Slice& data) override {
    const uint64_t offset = inner_->Size();
    Status s = inner_->Append(data);
    if (s.ok()) ctx_.Record(rank_, IoOp{IoOpKind::kWrite, file_id_, offset, data.size()});
    return s;
  }

  Status Flush() override { return inner_->Flush(); }

  Status Sync() override {
    Status s = inner_->Sync();
    if (s.ok()) ctx_.Record(rank_, IoOp{IoOpKind::kSync, file_id_, 0, 0});
    return s;
  }

  Status Close() override {
    Status s = inner_->Close();
    if (!closed_) {
      closed_ = true;
      ctx_.Record(rank_, IoOp{IoOpKind::kClose, file_id_, 0, 0});
    }
    return s;
  }

  uint64_t Size() const override { return inner_->Size(); }

 private:
  std::unique_ptr<WritableFile> inner_;
  TraceContext& ctx_;
  int rank_;
  uint32_t file_id_;
  bool closed_ = false;
};

class TracedRandom final : public RandomAccessFile {
 public:
  TracedRandom(std::unique_ptr<RandomAccessFile> inner, TraceContext& ctx, int rank,
               uint32_t file_id)
      : inner_(std::move(inner)), ctx_(ctx), rank_(rank), file_id_(file_id) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              std::string* scratch) const override {
    Status s = inner_->Read(offset, n, result, scratch);
    if (s.ok()) {
      ctx_.Record(rank_, IoOp{IoOpKind::kRead, file_id_, offset, result->size()});
    }
    return s;
  }

  void Hint(uint64_t offset, size_t length) const override {
    ctx_.RecordHint(length);
    inner_->Hint(offset, length);
  }

  uint64_t Size() const override { return inner_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> inner_;
  TraceContext& ctx_;
  int rank_;
  uint32_t file_id_;
};

class TracedSequential final : public SequentialFile {
 public:
  TracedSequential(std::unique_ptr<SequentialFile> inner, TraceContext& ctx,
                   int rank, uint32_t file_id)
      : inner_(std::move(inner)), ctx_(ctx), rank_(rank), file_id_(file_id) {}

  Status Read(size_t n, Slice* result, std::string* scratch) override {
    Status s = inner_->Read(n, result, scratch);
    if (s.ok() && !result->empty()) {
      ctx_.Record(rank_, IoOp{IoOpKind::kRead, file_id_, pos_, result->size()});
      pos_ += result->size();
    }
    return s;
  }

  Status Skip(uint64_t n) override {
    pos_ += n;
    return inner_->Skip(n);
  }

 private:
  std::unique_ptr<SequentialFile> inner_;
  TraceContext& ctx_;
  int rank_;
  uint32_t file_id_;
  uint64_t pos_ = 0;
};

class TracedHandle final : public FileHandle {
 public:
  TracedHandle(std::unique_ptr<FileHandle> inner, TraceContext& ctx, int rank,
               uint32_t file_id)
      : inner_(std::move(inner)), ctx_(ctx), rank_(rank), file_id_(file_id) {}

  ~TracedHandle() override {
    if (!closed_) ctx_.Record(rank_, IoOp{IoOpKind::kClose, file_id_, 0, 0});
  }

  Status WriteAt(uint64_t offset, const Slice& data) override {
    Status s = inner_->WriteAt(offset, data);
    if (s.ok()) ctx_.Record(rank_, IoOp{IoOpKind::kWrite, file_id_, offset, data.size()});
    return s;
  }

  Status ReadAt(uint64_t offset, size_t n, Slice* result,
                std::string* scratch) override {
    Status s = inner_->ReadAt(offset, n, result, scratch);
    if (s.ok()) {
      ctx_.Record(rank_, IoOp{IoOpKind::kRead, file_id_, offset, result->size()});
    }
    return s;
  }

  Status Sync() override {
    Status s = inner_->Sync();
    if (s.ok()) ctx_.Record(rank_, IoOp{IoOpKind::kSync, file_id_, 0, 0});
    return s;
  }

  Status Truncate(uint64_t size) override {
    Status s = inner_->Truncate(size);
    if (s.ok()) ctx_.Record(rank_, IoOp{IoOpKind::kStat, file_id_, 0, 0});
    return s;
  }

  Status Close() override {
    Status s = inner_->Close();
    if (!closed_) {
      closed_ = true;
      ctx_.Record(rank_, IoOp{IoOpKind::kClose, file_id_, 0, 0});
    }
    return s;
  }

  uint64_t Size() const override { return inner_->Size(); }

 private:
  std::unique_ptr<FileHandle> inner_;
  TraceContext& ctx_;
  int rank_;
  uint32_t file_id_;
  bool closed_ = false;
};

}  // namespace

Status TraceVfs::NewWritableFile(const std::string& path, const OpenOptions& opts,
                                 std::unique_ptr<WritableFile>* file) {
  std::unique_ptr<WritableFile> inner;
  LSMIO_RETURN_IF_ERROR(base_.NewWritableFile(path, opts, &inner));
  const uint32_t id = ctx_.InternFile(path);
  Record(IoOpKind::kCreate, id, 0, 0);
  *file = std::make_unique<TracedWritable>(std::move(inner), ctx_, rank_, id);
  return Status::OK();
}

Status TraceVfs::NewRandomAccessFile(const std::string& path, const OpenOptions& opts,
                                     std::unique_ptr<RandomAccessFile>* file) {
  std::unique_ptr<RandomAccessFile> inner;
  LSMIO_RETURN_IF_ERROR(base_.NewRandomAccessFile(path, opts, &inner));
  const uint32_t id = ctx_.InternFile(path);
  Record(IoOpKind::kOpen, id, 0, 0);
  *file = std::make_unique<TracedRandom>(std::move(inner), ctx_, rank_, id);
  return Status::OK();
}

Status TraceVfs::NewSequentialFile(const std::string& path, const OpenOptions& opts,
                                   std::unique_ptr<SequentialFile>* file) {
  std::unique_ptr<SequentialFile> inner;
  LSMIO_RETURN_IF_ERROR(base_.NewSequentialFile(path, opts, &inner));
  const uint32_t id = ctx_.InternFile(path);
  Record(IoOpKind::kOpen, id, 0, 0);
  *file = std::make_unique<TracedSequential>(std::move(inner), ctx_, rank_, id);
  return Status::OK();
}

Status TraceVfs::OpenFileHandle(const std::string& path, bool create,
                                const OpenOptions& opts,
                                std::unique_ptr<FileHandle>* file) {
  const bool existed = base_.FileExists(path);
  std::unique_ptr<FileHandle> inner;
  LSMIO_RETURN_IF_ERROR(base_.OpenFileHandle(path, create, opts, &inner));
  const uint32_t id = ctx_.InternFile(path);
  Record(existed ? IoOpKind::kOpen : IoOpKind::kCreate, id, 0, 0);
  *file = std::make_unique<TracedHandle>(std::move(inner), ctx_, rank_, id);
  return Status::OK();
}

bool TraceVfs::FileExists(const std::string& path) {
  const bool exists = base_.FileExists(path);
  Record(IoOpKind::kStat, ctx_.InternFile(path), 0, 0);
  return exists;
}

Status TraceVfs::GetFileSize(const std::string& path, uint64_t* size) {
  Record(IoOpKind::kStat, ctx_.InternFile(path), 0, 0);
  return base_.GetFileSize(path, size);
}

Status TraceVfs::RemoveFile(const std::string& path) {
  Record(IoOpKind::kRemove, ctx_.InternFile(path), 0, 0);
  return base_.RemoveFile(path);
}

Status TraceVfs::RenameFile(const std::string& from, const std::string& to) {
  Record(IoOpKind::kRename, ctx_.InternFile(from), 0, 0);
  ctx_.InternFile(to);
  return base_.RenameFile(from, to);
}

Status TraceVfs::CreateDir(const std::string& path) {
  Record(IoOpKind::kStat, ctx_.InternFile(path), 0, 0);
  return base_.CreateDir(path);
}

Status TraceVfs::ListDir(const std::string& path, std::vector<std::string>* out) {
  Record(IoOpKind::kStat, ctx_.InternFile(path), 0, 0);
  return base_.ListDir(path, out);
}

}  // namespace lsmio::vfs
