// TraceVfs: a per-rank decorator that forwards every operation to a shared
// base Vfs (normally MemVfs, so the data is real and verifiable) while
// appending the operation to that rank's IoTrace for later replay on the
// simulated parallel file system.
//
// One TraceVfs instance is created per rank; all instances share one
// TraceContext and one base Vfs.
#pragma once

#include <memory>

#include "vfs/trace.h"
#include "vfs/vfs.h"

namespace lsmio::vfs {

class TraceVfs final : public Vfs {
 public:
  /// `base` and `ctx` must outlive this object and all files it creates.
  TraceVfs(Vfs& base, TraceContext& ctx, int rank)
      : base_(base), ctx_(ctx), rank_(rank) {}

  Status NewWritableFile(const std::string& path, const OpenOptions& opts,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewRandomAccessFile(const std::string& path, const OpenOptions& opts,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewSequentialFile(const std::string& path, const OpenOptions& opts,
                           std::unique_ptr<SequentialFile>* file) override;
  Status OpenFileHandle(const std::string& path, bool create,
                        const OpenOptions& opts,
                        std::unique_ptr<FileHandle>* file) override;

  bool FileExists(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Status ListDir(const std::string& path, std::vector<std::string>* out) override;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] TraceContext& context() noexcept { return ctx_; }

  /// Marker pass-throughs used by harness code holding only the Vfs.
  void RecordBarrier(uint64_t barrier_id) { ctx_.RecordBarrier(rank_, barrier_id); }
  void RecordCompute(uint64_t nanos) { ctx_.RecordCompute(rank_, nanos); }
  void RecordPhaseBegin() { ctx_.RecordPhaseBegin(rank_); }
  void RecordPhaseEnd() { ctx_.RecordPhaseEnd(rank_); }

 private:
  void Record(IoOpKind kind, uint32_t file, uint64_t offset, uint64_t size) {
    ctx_.Record(rank_, IoOp{kind, file, offset, size});
  }

  Vfs& base_;
  TraceContext& ctx_;
  int rank_;
};

}  // namespace lsmio::vfs
