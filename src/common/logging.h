// Minimal leveled logger. Defaults to WARN so library code stays quiet in
// benchmarks; tests and examples can raise verbosity.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace lsmio {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets/gets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

namespace internal {

/// Emits one formatted line to stderr; thread-safe.
void LogLine(LogLevel level, const char* file, int line, const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define LSMIO_LOG(level)                                              \
  if (static_cast<int>(::lsmio::GetLogLevel()) <=                     \
      static_cast<int>(::lsmio::LogLevel::level))                     \
  ::lsmio::internal::LogMessage(::lsmio::LogLevel::level, __FILE__,   \
                                __LINE__)                             \
      .stream()

#define LSMIO_DEBUG LSMIO_LOG(kDebug)
#define LSMIO_INFO LSMIO_LOG(kInfo)
#define LSMIO_WARN LSMIO_LOG(kWarn)
#define LSMIO_ERROR LSMIO_LOG(kError)

}  // namespace lsmio
