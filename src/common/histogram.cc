#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lsmio {

namespace {
// Bucket limits growing ~×1.25 per bucket (at least +1), last bucket open.
std::vector<double> MakeLimits() {
  std::vector<double> v;
  v.reserve(Histogram::kNumBuckets);
  double limit = 1.0;
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    v.push_back(limit);
    double next = limit * 1.25;
    if (next < limit + 1.0) next = limit + 1.0;
    limit = next;
  }
  v.push_back(1e200);
  return v;
}

const std::vector<double>& Limits() {
  static const std::vector<double> v = MakeLimits();
  return v;
}
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

void Histogram::Clear() {
  min_ = 0;
  max_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  count_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

void Histogram::Add(double value) {
  const auto& limits = Limits();
  auto it = std::upper_bound(limits.begin(), limits.end(), value);
  size_t b = static_cast<size_t>(it - limits.begin());
  if (b >= buckets_.size()) b = buckets_.size() - 1;
  buckets_[b]++;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  sum_squares_ += value * value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::Average() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StandardDeviation() const noexcept {
  if (count_ == 0) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_squares_ * n - sum_ * sum_) / (n * n);
  return var <= 0 ? 0.0 : std::sqrt(var);
}

double Histogram::Percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  const auto& limits = Limits();
  const double threshold = static_cast<double>(count_) * (p / 100.0);
  double cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    cumulative += static_cast<double>(buckets_[b]);
    if (cumulative >= threshold) {
      const double left = (b == 0) ? 0.0 : limits[b - 1];
      const double right = limits[b];
      const double bucket_count = static_cast<double>(buckets_[b]);
      const double pos =
          bucket_count == 0 ? 0.0 : (threshold - (cumulative - bucket_count)) / bucket_count;
      double r = left + (right - left) * pos;
      if (r < min_) r = min_;
      if (r > max_) r = max_;
      return r;
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "count=%llu avg=%.2f stddev=%.2f min=%.2f med=%.2f p95=%.2f "
                "p99=%.2f max=%.2f",
                static_cast<unsigned long long>(count_), Average(),
                StandardDeviation(), min(), Median(), Percentile(95),
                Percentile(99), max());
  return buf;
}

}  // namespace lsmio
