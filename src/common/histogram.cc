#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lsmio {

namespace {
// Bucket limits growing ~×1.25 per bucket (at least +1), last bucket open.
std::vector<double> MakeLimits() {
  std::vector<double> v;
  v.reserve(Histogram::kNumBuckets);
  double limit = 1.0;
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    v.push_back(limit);
    double next = limit * 1.25;
    if (next < limit + 1.0) next = limit + 1.0;
    limit = next;
  }
  v.push_back(1e200);
  return v;
}

const std::vector<double>& Limits() {
  static const std::vector<double> v = MakeLimits();
  return v;
}
}  // namespace

const std::vector<double>& Histogram::BucketLimits() { return Limits(); }

int Histogram::BucketFor(double value) {
  const auto& limits = Limits();
  auto it = std::upper_bound(limits.begin(), limits.end(), value);
  auto b = static_cast<size_t>(it - limits.begin());
  if (b >= limits.size()) b = limits.size() - 1;
  return static_cast<int>(b);
}

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

void Histogram::Clear() {
  min_ = 0;
  max_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  count_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

void Histogram::Add(double value) {
  buckets_[static_cast<size_t>(BucketFor(value))]++;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  sum_squares_ += value * value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::Average() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StandardDeviation() const noexcept {
  if (count_ == 0) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_squares_ * n - sum_ * sum_) / (n * n);
  return var <= 0 ? 0.0 : std::sqrt(var);
}

double Histogram::Percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  const auto& limits = Limits();
  const double threshold = static_cast<double>(count_) * (p / 100.0);
  double cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    cumulative += static_cast<double>(buckets_[b]);
    if (cumulative >= threshold) {
      const double left = (b == 0) ? 0.0 : limits[b - 1];
      const double right = limits[b];
      const double bucket_count = static_cast<double>(buckets_[b]);
      const double pos =
          bucket_count == 0 ? 0.0 : (threshold - (cumulative - bucket_count)) / bucket_count;
      double r = left + (right - left) * pos;
      if (r < min_) r = min_;
      if (r > max_) r = max_;
      return r;
    }
  }
  return max_;
}

void LatencyHistogram::Record(uint64_t value) {
  const auto relaxed = std::memory_order_relaxed;
  buckets_[static_cast<size_t>(Histogram::BucketFor(static_cast<double>(value)))]
      .fetch_add(1, relaxed);
  count_.fetch_add(1, relaxed);
  sum_.fetch_add(value, relaxed);
  uint64_t seen = min_.load(relaxed);
  while (value < seen && !min_.compare_exchange_weak(seen, value, relaxed)) {
  }
  seen = max_.load(relaxed);
  while (value > seen && !max_.compare_exchange_weak(seen, value, relaxed)) {
  }
}

void LatencyHistogram::MergeTo(Histogram* out) const {
  const auto relaxed = std::memory_order_relaxed;
  Histogram h;
  uint64_t total = 0;
  const auto& limits = Histogram::BucketLimits();
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const uint64_t n = buckets_[b].load(relaxed);
    if (n == 0) continue;
    h.buckets_[b] = n;
    total += n;
    // Approximate per-entry squares by the bucket's lower bound, so merged
    // stddev stays meaningful without atomically tracking sum-of-squares.
    const double approx = b == 0 ? 0.0 : limits[b - 1];
    h.sum_squares_ += static_cast<double>(n) * approx * approx;
  }
  if (total == 0) return;
  h.count_ = total;
  h.sum_ = static_cast<double>(sum_.load(relaxed));
  h.min_ = static_cast<double>(min_.load(relaxed));
  h.max_ = static_cast<double>(max_.load(relaxed));
  out->Merge(h);
}

Histogram LatencyHistogram::Snapshot() const {
  Histogram h;
  MergeTo(&h);
  return h;
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "count=%llu avg=%.2f stddev=%.2f min=%.2f med=%.2f p95=%.2f "
                "p99=%.2f max=%.2f",
                static_cast<unsigned long long>(count_), Average(),
                StandardDeviation(), min(), Median(), Percentile(95),
                Percentile(99), max());
  return buf;
}

}  // namespace lsmio
