// RateLimiter: a token-bucket budget on background-I/O bytes per second,
// shared by every flush and compaction of a store (and, on a sharded
// store, by all shards). Foreground WAL appends are never charged — the
// point is to stop background writes from bursting against foreground
// fsyncs on the same device.
//
// Two priority classes: flushes request at kHigh, compactions at kLow.
// While any high-priority requester is waiting, low-priority requests
// park, so a flush (which gates writer admission through the immutable-
// memtable queue) is never queued behind a long compaction's writes.
//
// Requests larger than one refill quantum are charged in chunks, so a
// single 8 MiB table write cannot monopolize a whole second of budget in
// one grant. Waiting is a bounded clock sleep per refill period (no
// condition-variable timing), which keeps the limiter deterministic under
// an injected test clock.
#pragma once

#include <cstdint>
#include <memory>

#include "common/synchronization.h"
#include "vfs/vfs.h"

namespace lsmio {

/// Monotonic clock + sleep, injectable for deterministic tests.
class SystemClock {
 public:
  virtual ~SystemClock() = default;
  [[nodiscard]] virtual uint64_t NowMicros() const;
  virtual void SleepForMicros(uint64_t micros);
  /// Process-wide real clock.
  static SystemClock* Default();
};

class RateLimiter {
 public:
  enum class Priority { kHigh = 0, kLow = 1 };

  /// `bytes_per_sec` must be > 0. `clock` null = the real clock.
  explicit RateLimiter(uint64_t bytes_per_sec, SystemClock* clock = nullptr);

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Blocks until `bytes` of budget have been granted at `pri`.
  void Request(uint64_t bytes, Priority pri) EXCLUDES(mu_);

  [[nodiscard]] uint64_t bytes_per_sec() const { return bytes_per_sec_; }
  /// Bytes granted so far to the given class.
  [[nodiscard]] uint64_t bytes_through(Priority pri) const EXCLUDES(mu_);
  /// Total micros requesters spent waiting for budget.
  [[nodiscard]] uint64_t wait_micros() const EXCLUDES(mu_);

  /// Token refill cadence; also the per-grant chunk cap (one period's worth
  /// of bytes) and the upper bound on a single wait slice.
  static constexpr uint64_t kRefillPeriodMicros = 10 * 1000;

 private:
  void RefillLocked(uint64_t now_micros) REQUIRES(mu_);

  const uint64_t bytes_per_sec_;
  const uint64_t bytes_per_period_;
  SystemClock* const clock_;

  mutable Mutex mu_;
  uint64_t available_ GUARDED_BY(mu_);
  uint64_t last_refill_micros_ GUARDED_BY(mu_);
  int high_waiting_ GUARDED_BY(mu_) = 0;
  uint64_t bytes_through_[2] GUARDED_BY(mu_) = {0, 0};
  uint64_t wait_micros_ GUARDED_BY(mu_) = 0;
};

/// WritableFile decorator that charges every Append to a RateLimiter
/// before forwarding it. Used to pace flush (kHigh) and compaction (kLow)
/// table writes; Sync/Flush/Close pass through unthrottled.
class RateLimitedWritableFile final : public vfs::WritableFile {
 public:
  RateLimitedWritableFile(std::unique_ptr<vfs::WritableFile> inner,
                          RateLimiter* limiter, RateLimiter::Priority pri)
      : inner_(std::move(inner)), limiter_(limiter), pri_(pri) {}

  Status Append(const Slice& data) override {
    if (limiter_ != nullptr && !data.empty()) {
      limiter_->Request(data.size(), pri_);
    }
    return inner_->Append(data);
  }
  Status Flush() override { return inner_->Flush(); }
  Status Sync() override { return inner_->Sync(); }
  Status Close() override { return inner_->Close(); }
  [[nodiscard]] uint64_t Size() const override { return inner_->Size(); }

 private:
  std::unique_ptr<vfs::WritableFile> inner_;
  RateLimiter* const limiter_;
  const RateLimiter::Priority pri_;
};

/// Wraps `file` with rate limiting when `limiter` is non-null; otherwise
/// returns `file` unchanged (no allocation on the unlimited path).
std::unique_ptr<vfs::WritableFile> MaybeRateLimit(
    std::unique_ptr<vfs::WritableFile> file, RateLimiter* limiter,
    RateLimiter::Priority pri);

}  // namespace lsmio
