// Histogram with exponential bucketing for latency/size distributions, used
// by the LSMIO performance counters (paper §3.1.4) and the benchmarks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lsmio {

/// Exponentially-bucketed histogram of non-negative values.
/// Thread-compatible (callers synchronize); merging supported.
class Histogram {
 public:
  /// Number of exponential buckets (~×1.25 growth per bucket).
  static constexpr int kNumBuckets = 154;

  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  [[nodiscard]] uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double Average() const noexcept;
  [[nodiscard]] double StandardDeviation() const noexcept;

  /// Interpolated percentile, p in [0, 100].
  [[nodiscard]] double Percentile(double p) const noexcept;
  [[nodiscard]] double Median() const noexcept { return Percentile(50.0); }

  /// One-line summary: count/avg/stddev/min/median/p95/p99/max.
  [[nodiscard]] std::string ToString() const;

 private:
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
  double sum_squares_ = 0;
  uint64_t count_ = 0;
  std::vector<uint64_t> buckets_;
};

}  // namespace lsmio
