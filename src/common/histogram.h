// Histogram with exponential bucketing for latency/size distributions, used
// by the LSMIO performance counters (paper §3.1.4) and the benchmarks, plus
// LatencyHistogram, the lock-free recorder behind the engine's per-operation
// latency stats (DbStats write/get/multiget percentiles).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lsmio {

/// Exponentially-bucketed histogram of non-negative values.
/// Thread-compatible (callers synchronize); merging supported.
class Histogram {
 public:
  /// Number of exponential buckets (~×1.25 growth per bucket).
  static constexpr int kNumBuckets = 154;

  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  [[nodiscard]] uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double Average() const noexcept;
  [[nodiscard]] double StandardDeviation() const noexcept;

  /// Interpolated percentile, p in [0, 100].
  [[nodiscard]] double Percentile(double p) const noexcept;
  [[nodiscard]] double Median() const noexcept { return Percentile(50.0); }

  /// One-line summary: count/avg/stddev/min/median/p95/p99/max.
  [[nodiscard]] std::string ToString() const;

  /// The shared bucket upper bounds (size kNumBuckets, last bucket open).
  static const std::vector<double>& BucketLimits();
  /// Index of the bucket `value` falls into.
  static int BucketFor(double value);

 private:
  friend class LatencyHistogram;

  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
  double sum_squares_ = 0;
  uint64_t count_ = 0;
  std::vector<uint64_t> buckets_;
};

/// Lock-free histogram of non-negative integer values (typically latency in
/// microseconds): Record is a handful of relaxed atomic adds, safe from any
/// thread with no mutex, so it can sit on the hottest engine paths.
/// Snapshot/MergeTo fold the counters into a plain Histogram for percentile
/// math and cross-shard aggregation. Snapshots are not atomic across
/// buckets — concurrent recording can skew an in-flight snapshot by a few
/// operations, which is fine for monitoring counters.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t value);
  /// Folds the current counters into `*out` (Histogram::Merge semantics).
  void MergeTo(Histogram* out) const;
  [[nodiscard]] Histogram Snapshot() const;
  [[nodiscard]] uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, Histogram::kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ULL};
  std::atomic<uint64_t> max_{0};
};

}  // namespace lsmio
