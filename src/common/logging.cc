#include "common/logging.h"

#include "common/synchronization.h"

#include <cstdio>
#include <cstring>

namespace lsmio {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
lsmio::Mutex g_log_mutex;

const char* LevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() noexcept { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

void LogLine(LogLevel level, const char* file, int line, const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  lsmio::MutexLock lock(&g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg.c_str());
}

}  // namespace internal
}  // namespace lsmio
