#include "common/thread_pool.h"

#include <cassert>

namespace lsmio {

ThreadPool::ThreadPool(int num_threads) {
  assert(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    assert(!shutdown_ && "Submit after Shutdown");
    queue_.push_back(std::move(task));
  }
  work_cv_.Signal();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait();
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.SignalAll();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait();
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.SignalAll();
    }
  }
}

}  // namespace lsmio
