#include "common/units.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lsmio {

Result<uint64_t> ParseBytes(std::string_view text) {
  // Trim whitespace.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  if (text.empty()) return Status::InvalidArgument("empty byte-size string");

  std::string num(text);
  char* end = nullptr;
  const double value = std::strtod(num.c_str(), &end);
  if (end == num.c_str()) {
    return Status::InvalidArgument("byte-size has no number: '" + num + "'");
  }
  if (value < 0) {
    return Status::InvalidArgument("byte-size is negative: '" + num + "'");
  }

  std::string_view suffix(end);
  while (!suffix.empty() && std::isspace(static_cast<unsigned char>(suffix.front()))) {
    suffix.remove_prefix(1);
  }

  uint64_t mult = 1;
  if (!suffix.empty()) {
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(suffix[0])));
    switch (c) {
      case 'b': mult = 1; break;
      case 'k': mult = KiB; break;
      case 'm': mult = MiB; break;
      case 'g': mult = GiB; break;
      case 't': mult = TiB; break;
      default:
        return Status::InvalidArgument("unknown byte-size suffix: '" + std::string(suffix) + "'");
    }
    // Accept "K", "KB", "KiB" (case-insensitive); reject longer garbage.
    if (suffix.size() > 3) {
      return Status::InvalidArgument("malformed byte-size suffix: '" + std::string(suffix) + "'");
    }
  }

  const double bytes = value * static_cast<double>(mult);
  if (bytes > 9.2e18) return Status::InvalidArgument("byte-size overflows uint64");
  return static_cast<uint64_t>(std::llround(bytes));
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= TiB) {
    std::snprintf(buf, sizeof buf, "%.1f TiB", static_cast<double>(bytes) / static_cast<double>(TiB));
  } else if (bytes >= GiB) {
    std::snprintf(buf, sizeof buf, "%.1f GiB", static_cast<double>(bytes) / static_cast<double>(GiB));
  } else if (bytes >= MiB) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", static_cast<double>(bytes) / static_cast<double>(MiB));
  } else if (bytes >= KiB) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", static_cast<double>(bytes) / static_cast<double>(KiB));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatBandwidth(double bytes_per_second) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f MiB/s",
                bytes_per_second / static_cast<double>(MiB));
  return buf;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  }
  return buf;
}

}  // namespace lsmio
