// Annotated synchronization primitives: the machine-checked form of the
// locking contracts that used to live in comments ("mu_ held").
//
// Mutex/CondVar/MutexLock wrap the std primitives and carry Clang
// thread-safety capability attributes, so a clang build with
// -Wthread-safety -Werror (cmake -DLSMIO_LINT=ON) rejects code that
// touches a GUARDED_BY member without its mutex, calls a REQUIRES(mu_)
// helper unlocked, or forgets to release on an exit path. Under GCC (or
// any compiler without the attributes) the annotations compile away and
// the wrappers behave exactly like std::mutex/std::condition_variable.
//
// Conventions (see DESIGN.md §9):
//  - every long-lived mutex is a lsmio::Mutex; every member it protects is
//    GUARDED_BY(mu_); every "called with mu_ held" helper is REQUIRES(mu_)
//  - scope-lock with MutexLock (relockable: Unlock()/Lock() for the
//    group-commit pattern of doing I/O with the mutex released)
//  - CondVar is bound to its Mutex at construction; Wait() atomically
//    releases and reacquires that mutex
//  - Mutex::AssertHeld() documents cross-object contracts the static
//    analysis cannot see (e.g. VersionSet methods that require the DB
//    mutex); with LSMIO_MUTEX_DEBUG it aborts at runtime on violation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

// --- Clang thread-safety annotation macros ---------------------------------
//
// Attribute spellings follow the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Guarded so any
// compiler without __attribute__((capability(...))) sees empty tokens.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LSMIO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LSMIO_THREAD_ANNOTATION
#define LSMIO_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CAPABILITY(x) LSMIO_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY LSMIO_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) LSMIO_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) LSMIO_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) LSMIO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) LSMIO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) LSMIO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  LSMIO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) LSMIO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  LSMIO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) LSMIO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  LSMIO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) LSMIO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) LSMIO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) LSMIO_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) LSMIO_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS LSMIO_THREAD_ANNOTATION(no_thread_safety_analysis)

// Runtime held-tracking for Mutex::AssertHeld. On by default in debug
// builds; force with -DLSMIO_MUTEX_DEBUG=1 (the sync_annotations_test does)
// or disable with -DLSMIO_MUTEX_DEBUG=0.
#if !defined(LSMIO_MUTEX_DEBUG)
#if !defined(NDEBUG)
#define LSMIO_MUTEX_DEBUG 1
#else
#define LSMIO_MUTEX_DEBUG 0
#endif
#endif

namespace lsmio {

/// Annotated exclusive mutex. Non-recursive, like std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
    NoteHeld();
  }

  void Unlock() RELEASE() {
    NoteReleased();
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    NoteHeld();
    return true;
  }

  /// Documents (and, with LSMIO_MUTEX_DEBUG, enforces at runtime) that the
  /// calling thread holds this mutex. The ASSERT_CAPABILITY annotation
  /// teaches the static analysis that the capability is held from here on,
  /// which is how cross-object contracts (e.g. VersionSet methods called
  /// under the DB mutex) are expressed.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#if LSMIO_MUTEX_DEBUG
    if (holder_.load(std::memory_order_relaxed) != std::this_thread::get_id()) {
      std::fprintf(stderr,
                   "lsmio::Mutex::AssertHeld failed: mutex %p is not held by "
                   "this thread\n",
                   static_cast<const void*>(this));
      std::abort();
    }
#endif
  }

 private:
  friend class CondVar;

  void NoteHeld() {
#if LSMIO_MUTEX_DEBUG
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }
  void NoteReleased() {
#if LSMIO_MUTEX_DEBUG
    holder_.store(std::thread::id(), std::memory_order_relaxed);
#endif
  }

  std::mutex mu_;
#if LSMIO_MUTEX_DEBUG
  /// Id of the thread currently inside the critical section (relaxed: only
  /// ever compared against the *calling* thread's own id, so a stale value
  /// can never produce a false "held" for a thread that does not hold it).
  std::atomic<std::thread::id> holder_{};
#endif
};

/// Condition variable bound to one Mutex for its lifetime (LevelDB's
/// port::CondVar shape). Wait() must be called with that mutex held; it
/// atomically releases it while blocked and reacquires before returning.
/// The analysis cannot express "requires the mutex passed at construction",
/// so Wait() carries no REQUIRES — the debug AssertHeld covers it.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait() NO_THREAD_SAFETY_ANALYSIS {
    mu_->AssertHeld();
    mu_->NoteReleased();
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
    mu_->NoteHeld();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  Mutex* const mu_;
  std::condition_variable cv_;
};

/// Scoped lock holder, relockable like std::unique_lock: Unlock()/Lock()
/// support the group-commit pattern of releasing the DB mutex around I/O.
/// Must be released (or never re-acquired) before destruction runs; the
/// destructor releases only if currently held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }

  ~MutexLock() RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() {
    held_ = false;
    mu_->Unlock();
  }

  void Lock() ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_ = true;
};

}  // namespace lsmio
