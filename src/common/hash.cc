#include "common/hash.h"

#include <cstring>

namespace lsmio {

uint32_t Hash32(const char* data, size_t n, uint32_t seed) noexcept {
  // Murmur-like mix (same structure LevelDB uses for its bloom hash).
  constexpr uint32_t m = 0xc6a4a793u;
  constexpr uint32_t r = 24;
  const char* limit = data + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);

  while (data + 4 <= limit) {
    uint32_t w;
    std::memcpy(&w, data, 4);
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }
  switch (limit - data) {
    case 3:
      h += static_cast<uint32_t>(static_cast<unsigned char>(data[2])) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint32_t>(static_cast<unsigned char>(data[1])) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint32_t>(static_cast<unsigned char>(data[0]));
      h *= m;
      h ^= (h >> r);
      break;
  }
  return h;
}

namespace {
inline uint64_t Rotl64(uint64_t x, int r) noexcept { return (x << r) | (x >> (64 - r)); }
inline uint64_t Mix64(uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}
}  // namespace

uint64_t Hash64(const char* data, size_t n, uint64_t seed) noexcept {
  constexpr uint64_t kMul = 0x9ddfea08eb382d69ULL;
  uint64_t h = seed ^ (n * kMul);
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, data, 8);
    h = Rotl64(h ^ Mix64(w), 27) * kMul + 0x52dce729;
    data += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  for (size_t i = 0; i < n; ++i) {
    tail |= static_cast<uint64_t>(static_cast<unsigned char>(data[i])) << (8 * i);
  }
  if (n > 0) h = Rotl64(h ^ Mix64(tail), 27) * kMul + 0x52dce729;
  return Mix64(h);
}

}  // namespace lsmio
