#include "common/crc32c.h"

#include <array>

namespace lsmio::crc32c {
namespace {

// CRC32C polynomial, reflected.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Tables {
  // table[k][b]: CRC contribution of byte b at position k (slicing-by-8).
  uint32_t t[8][256];
};

Tables BuildTables() {
  Tables tb{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int i = 0; i < 8; ++i) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tb.t[0][b] = crc;
  }
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = tb.t[0][b];
    for (int k = 1; k < 8; ++k) {
      crc = tb.t[0][crc & 0xff] ^ (crc >> 8);
      tb.t[k][b] = crc;
    }
  }
  return tb;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) noexcept {
  const Tables& tb = GetTables();
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  uint32_t crc = init_crc ^ 0xffffffffu;

  // Process 8 bytes at a time (slicing-by-8).
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    __builtin_memcpy(&lo, p, 4);
    __builtin_memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
          tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][(lo >> 24) & 0xff] ^
          tb.t[3][hi & 0xff] ^ tb.t[2][(hi >> 8) & 0xff] ^
          tb.t[1][(hi >> 16) & 0xff] ^ tb.t[0][(hi >> 24) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace lsmio::crc32c
