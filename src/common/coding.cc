#include "common/coding.h"

#include <cstring>

namespace lsmio {

void EncodeFixed16(char* dst, uint16_t v) noexcept { std::memcpy(dst, &v, sizeof v); }
void EncodeFixed32(char* dst, uint32_t v) noexcept { std::memcpy(dst, &v, sizeof v); }
void EncodeFixed64(char* dst, uint64_t v) noexcept { std::memcpy(dst, &v, sizeof v); }

// x86-64 and all targets we care about are little-endian; static_assert the
// assumption instead of swapping at runtime.
static_assert(__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__,
              "lsmio on-disk formats assume a little-endian host");

uint16_t DecodeFixed16(const char* src) noexcept {
  uint16_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}
uint32_t DecodeFixed32(const char* src) noexcept {
  uint32_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}
uint64_t DecodeFixed64(const char* src) noexcept {
  uint64_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}

void PutFixed16(std::string* dst, uint16_t v) {
  char buf[sizeof v];
  EncodeFixed16(buf, v);
  dst->append(buf, sizeof buf);
}
void PutFixed32(std::string* dst, uint32_t v) {
  char buf[sizeof v];
  EncodeFixed32(buf, v);
  dst->append(buf, sizeof buf);
}
void PutFixed64(std::string* dst, uint64_t v) {
  char buf[sizeof v];
  EncodeFixed64(buf, v);
  dst->append(buf, sizeof buf);
}

char* EncodeVarint32(char* dst, uint32_t v) noexcept {
  auto* ptr = reinterpret_cast<unsigned char*>(dst);
  while (v >= 0x80) {
    *ptr++ = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  *ptr++ = static_cast<unsigned char>(v);
  return reinterpret_cast<char*>(ptr);
}

char* EncodeVarint64(char* dst, uint64_t v) noexcept {
  auto* ptr = reinterpret_cast<unsigned char*>(dst);
  while (v >= 0x80) {
    *ptr++ = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  *ptr++ = static_cast<unsigned char>(v);
  return reinterpret_cast<char*>(ptr);
}

void PutVarint32(std::string* dst, uint32_t v) {
  char buf[kMaxVarint32Bytes];
  char* end = EncodeVarint32(buf, v);
  dst->append(buf, static_cast<size_t>(end - buf));
}

void PutVarint64(std::string* dst, uint64_t v) {
  char buf[kMaxVarint64Bytes];
  char* end = EncodeVarint64(buf, v);
  dst->append(buf, static_cast<size_t>(end - buf));
}

const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* v) noexcept {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = static_cast<unsigned char>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *v = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* v) noexcept {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *v = result;
      return p;
    }
  }
  return nullptr;
}

bool GetVarint32(Slice* input, uint32_t* v) noexcept {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint32Ptr(p, limit, v);
  if (q == nullptr) return false;
  *input = Slice(q, static_cast<size_t>(limit - q));
  return true;
}

bool GetVarint64(Slice* input, uint64_t* v) noexcept {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint64Ptr(p, limit, v);
  if (q == nullptr) return false;
  *input = Slice(q, static_cast<size_t>(limit - q));
  return true;
}

int VarintLength(uint64_t v) noexcept {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) noexcept {
  uint32_t len;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

}  // namespace lsmio
