// Result<T>: a value-or-Status, the companion of Status for functions that
// produce a value on success.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace lsmio {

/// Holds either a T (when status().ok()) or an error Status.
/// Accessing value() on an error result is a programmer error (asserts).
/// [[nodiscard]] like Status: a dropped Result is a dropped error. The
/// embedded Status carries the LSMIO_STATUS_DEBUG check obligation, so an
/// error Result destroyed without anyone looking at it aborts in debug
/// builds just like a bare Status would.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from a non-OK status: failure. OK status is a programmer error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    // OkNoMark: the assertion must not count as "observing" the error.
    assert(!status_.OkNoMark() && "Result constructed from OK status without value");
  }

  [[nodiscard]] bool ok() const noexcept {
    // Observing ok() discharges the inner status's check obligation: a
    // `false` answer is exactly the observation the tracking wants.
    status_.MarkChecked();
    return value_.has_value();
  }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define LSMIO_INTERNAL_CONCAT2(a, b) a##b
#define LSMIO_INTERNAL_CONCAT(a, b) LSMIO_INTERNAL_CONCAT2(a, b)
#define LSMIO_ASSIGN_OR_RETURN(lhs, expr)                                  \
  auto LSMIO_INTERNAL_CONCAT(_lsmio_res_, __LINE__) = (expr);              \
  if (!LSMIO_INTERNAL_CONCAT(_lsmio_res_, __LINE__).ok())                  \
    return LSMIO_INTERNAL_CONCAT(_lsmio_res_, __LINE__).status();          \
  lhs = std::move(LSMIO_INTERNAL_CONCAT(_lsmio_res_, __LINE__)).value()

}  // namespace lsmio
