#include "common/rate_limiter.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace lsmio {

namespace {

class RealClock final : public SystemClock {
 public:
  [[nodiscard]] uint64_t NowMicros() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void SleepForMicros(uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

}  // namespace

uint64_t SystemClock::NowMicros() const { return Default()->NowMicros(); }
void SystemClock::SleepForMicros(uint64_t micros) {
  Default()->SleepForMicros(micros);
}

SystemClock* SystemClock::Default() {
  static RealClock clock;
  return &clock;
}

RateLimiter::RateLimiter(uint64_t bytes_per_sec, SystemClock* clock)
    : bytes_per_sec_(std::max<uint64_t>(1, bytes_per_sec)),
      bytes_per_period_(std::max<uint64_t>(
          1, bytes_per_sec_ * kRefillPeriodMicros / 1'000'000)),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      available_(bytes_per_period_),
      last_refill_micros_(clock_->NowMicros()) {}

void RateLimiter::RefillLocked(uint64_t now_micros) {
  if (now_micros <= last_refill_micros_) return;
  const uint64_t periods =
      (now_micros - last_refill_micros_) / kRefillPeriodMicros;
  if (periods == 0) return;
  // Tokens cap at one period's budget: unused budget does not accumulate
  // into bursts (the whole point is smoothing).
  available_ = std::min(bytes_per_period_,
                        available_ + periods * bytes_per_period_);
  last_refill_micros_ += periods * kRefillPeriodMicros;
}

void RateLimiter::Request(uint64_t bytes, Priority pri) {
  MutexLock lock(&mu_);
  if (pri == Priority::kHigh) ++high_waiting_;
  uint64_t waited = 0;
  while (bytes > 0) {
    RefillLocked(clock_->NowMicros());
    // A low-priority requester yields the bucket while any high-priority
    // one is in line (flushes preempt compactions).
    const bool preempted = pri == Priority::kLow && high_waiting_ > 0;
    if (!preempted && available_ > 0) {
      const uint64_t grant = std::min({bytes, available_, bytes_per_period_});
      available_ -= grant;
      bytes -= grant;
      bytes_through_[static_cast<int>(pri)] += grant;
      continue;
    }
    // Out of tokens (or yielding): sleep one refill period with the lock
    // released, then re-check. Bounded slices keep shutdown prompt and let
    // an injected test clock advance deterministically.
    lock.Unlock();
    clock_->SleepForMicros(kRefillPeriodMicros);
    waited += kRefillPeriodMicros;
    lock.Lock();
  }
  if (pri == Priority::kHigh) --high_waiting_;
  wait_micros_ += waited;
}

uint64_t RateLimiter::bytes_through(Priority pri) const {
  MutexLock lock(&mu_);
  return bytes_through_[static_cast<int>(pri)];
}

uint64_t RateLimiter::wait_micros() const {
  MutexLock lock(&mu_);
  return wait_micros_;
}

std::unique_ptr<vfs::WritableFile> MaybeRateLimit(
    std::unique_ptr<vfs::WritableFile> file, RateLimiter* limiter,
    RateLimiter::Priority pri) {
  if (limiter == nullptr) return file;
  return std::make_unique<RateLimitedWritableFile>(std::move(file), limiter,
                                                   pri);
}

}  // namespace lsmio
