// Fixed-size thread pool used for background LSM flush/compaction and by
// test drivers. Tasks are plain std::function<void()>; Submit after Shutdown
// is a programmer error.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lsmio {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all running tasks have finished.
  void Wait();

  /// Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown();

  [[nodiscard]] int num_threads() const noexcept { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace lsmio
