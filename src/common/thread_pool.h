// Fixed-size thread pool used for background LSM flush/compaction and by
// test drivers. Tasks are plain std::function<void()>; Submit after Shutdown
// is a programmer error.
#pragma once

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/synchronization.h"

namespace lsmio {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and all running tasks have finished.
  void Wait() EXCLUDES(mu_);

  /// Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown() EXCLUDES(mu_);

  [[nodiscard]] int num_threads() const noexcept { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_{&mu_};
  CondVar idle_cv_{&mu_};
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // unguarded: immutable after construction
  int active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace lsmio
