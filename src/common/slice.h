// Slice: a non-owning (pointer, length) view of bytes, the currency of the
// storage layers. Thin wrapper over the std::string_view idea with helpers
// used by the LSM key/value encoding paths.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace lsmio {

/// Non-owning byte view. The referenced memory must outlive the Slice.
class Slice {
 public:
  Slice() noexcept : data_(""), size_(0) {}
  Slice(const char* data, size_t size) noexcept : data_(data), size_(size) {}
  Slice(const std::string& s) noexcept : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) noexcept : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* cstr) noexcept : data_(cstr), size_(std::strlen(cstr)) {} // NOLINT

  [[nodiscard]] const char* data() const noexcept { return data_; }
  [[nodiscard]] size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  char operator[](size_t i) const noexcept {
    assert(i < size_);
    return data_[i];
  }

  void clear() noexcept { data_ = ""; size_ = 0; }

  /// Drops the first n bytes from the view.
  void remove_prefix(size_t n) noexcept {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  [[nodiscard]] std::string ToString() const { return {data_, size_}; }
  [[nodiscard]] std::string_view view() const noexcept { return {data_, size_}; }

  /// Three-way comparison: <0, 0, >0 like memcmp on the common prefix,
  /// shorter slice first on ties.
  [[nodiscard]] int compare(const Slice& other) const noexcept {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = +1;
    }
    return r;
  }

  [[nodiscard]] bool starts_with(const Slice& prefix) const noexcept {
    return size_ >= prefix.size_ &&
           std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) noexcept {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}
inline bool operator!=(const Slice& a, const Slice& b) noexcept { return !(a == b); }

}  // namespace lsmio
