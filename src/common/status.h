// Status: lightweight error propagation used across all LSMIO modules.
//
// Modeled on the conventions of storage-engine codebases: a Status is cheap
// to copy when OK (single pointer-sized state), carries a code plus a
// human-readable message otherwise. Functions that can fail return Status
// (or Result<T> from result.h); exceptions are reserved for programmer
// errors (assertion-style) only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace lsmio {

/// Error categories shared by every module in the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kNotSupported = 3,
  kInvalidArgument = 4,
  kIoError = 5,
  kBusy = 6,
  kAborted = 7,
  kOutOfRange = 8,
  /// The store has entered sticky read-only mode: a WAL/manifest write or
  /// fsync failed, so accepting further writes could silently lose acked
  /// data. Reads keep working; writes fail with this code until re-open.
  kReadOnly = 9,
};

/// Returns a static name for a StatusCode ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code) noexcept;

/// A success-or-error value. OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  static Status OK() noexcept { return Status(); }
  static Status NotFound(std::string_view msg) { return {StatusCode::kNotFound, msg}; }
  static Status Corruption(std::string_view msg) { return {StatusCode::kCorruption, msg}; }
  static Status NotSupported(std::string_view msg) { return {StatusCode::kNotSupported, msg}; }
  static Status InvalidArgument(std::string_view msg) { return {StatusCode::kInvalidArgument, msg}; }
  static Status IoError(std::string_view msg) { return {StatusCode::kIoError, msg}; }
  static Status Busy(std::string_view msg) { return {StatusCode::kBusy, msg}; }
  static Status Aborted(std::string_view msg) { return {StatusCode::kAborted, msg}; }
  static Status OutOfRange(std::string_view msg) { return {StatusCode::kOutOfRange, msg}; }
  static Status ReadOnly(std::string_view msg) { return {StatusCode::kReadOnly, msg}; }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] bool IsNotFound() const noexcept { return code_ == StatusCode::kNotFound; }
  [[nodiscard]] bool IsCorruption() const noexcept { return code_ == StatusCode::kCorruption; }
  [[nodiscard]] bool IsNotSupported() const noexcept { return code_ == StatusCode::kNotSupported; }
  [[nodiscard]] bool IsInvalidArgument() const noexcept { return code_ == StatusCode::kInvalidArgument; }
  [[nodiscard]] bool IsIoError() const noexcept { return code_ == StatusCode::kIoError; }
  [[nodiscard]] bool IsBusy() const noexcept { return code_ == StatusCode::kBusy; }
  [[nodiscard]] bool IsAborted() const noexcept { return code_ == StatusCode::kAborted; }
  [[nodiscard]] bool IsOutOfRange() const noexcept { return code_ == StatusCode::kOutOfRange; }
  [[nodiscard]] bool IsReadOnly() const noexcept { return code_ == StatusCode::kReadOnly; }

  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string_view msg) : code_(code), msg_(msg) {}

  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define LSMIO_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::lsmio::Status _lsmio_st = (expr);             \
    if (!_lsmio_st.ok()) return _lsmio_st;          \
  } while (0)

}  // namespace lsmio
