// Status: lightweight error propagation used across all LSMIO modules.
//
// Modeled on the conventions of storage-engine codebases: a Status is cheap
// to copy when OK (single pointer-sized state), carries a code plus a
// human-readable message otherwise. Functions that can fail return Status
// (or Result<T> from result.h); exceptions are reserved for programmer
// errors (assertion-style) only.
//
// Error discipline (DESIGN.md §14): the class itself is [[nodiscard]], so a
// dropped `Status` return is a compile error under -Werror=unused-result
// (on by default for the whole build). Every status must be propagated,
// asserted on, or explicitly discarded via IgnoreError() — the only
// sanctioned escape hatch; the lsmio-status-ignore clang-tidy check rejects
// `(void)`-casts that try to sneak past the compiler warning.
//
// With LSMIO_STATUS_DEBUG (on by default outside Release builds, forced on
// in the status_debug_test binary) every Status additionally carries a
// runtime "checked" bit, LevelDB/RocksDB style: destroying — or overwriting
// via assignment — a non-OK Status that was never observed (ok(), code(),
// Is*(), ToString(), message(), operator==, or IgnoreError()) aborts the
// process with the dropped code and message. OK statuses are exempt: only
// errors carry an obligation. Copy and move both TRANSFER the obligation to
// the destination — the source is considered checked — so exactly one live
// object owns each error at any time.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>

// Runtime unchecked-status tracking. The build defines LSMIO_STATUS_DEBUG
// project-wide via CMake (AUTO: on for Debug/RelWithDebInfo, off for
// Release) so every translation unit agrees on the Status layout; the
// fallback below keeps non-CMake consumers consistent with assert().
#if !defined(LSMIO_STATUS_DEBUG)
#if !defined(NDEBUG)
#define LSMIO_STATUS_DEBUG 1
#else
#define LSMIO_STATUS_DEBUG 0
#endif
#endif

namespace lsmio {

template <typename T>
class Result;

/// Error categories shared by every module in the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kNotSupported = 3,
  kInvalidArgument = 4,
  kIoError = 5,
  kBusy = 6,
  kAborted = 7,
  kOutOfRange = 8,
  /// The store has entered sticky read-only mode: a WAL/manifest write or
  /// fsync failed, so accepting further writes could silently lose acked
  /// data. Reads keep working; writes fail with this code until re-open.
  kReadOnly = 9,
};

/// Returns a static name for a StatusCode ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code) noexcept;

/// A success-or-error value. OK status carries no allocation. The class is
/// [[nodiscard]]: callers must propagate, test, or IgnoreError() it.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  ~Status() { VerifyChecked("destroyed"); }

  /// Copy transfers the check obligation: the new object must be checked,
  /// the source is considered handled.
  Status(const Status& rhs) : code_(rhs.code_), msg_(rhs.msg_) {
#if LSMIO_STATUS_DEBUG
    checked_ = rhs.checked_;
#endif
    rhs.MarkChecked();
  }
  Status& operator=(const Status& rhs) {
    if (this != &rhs) {
      VerifyChecked("overwritten");
      code_ = rhs.code_;
      msg_ = rhs.msg_;
#if LSMIO_STATUS_DEBUG
      checked_ = rhs.checked_;
#endif
      rhs.MarkChecked();
    }
    return *this;
  }

  /// Move transfers the check obligation; the moved-from object is OK and
  /// considered checked.
  Status(Status&& rhs) noexcept : code_(rhs.code_), msg_(std::move(rhs.msg_)) {
#if LSMIO_STATUS_DEBUG
    checked_ = rhs.checked_;
#endif
    rhs.code_ = StatusCode::kOk;
    rhs.MarkChecked();
  }
  Status& operator=(Status&& rhs) noexcept {
    if (this != &rhs) {
      VerifyChecked("overwritten");
      code_ = rhs.code_;
      msg_ = std::move(rhs.msg_);
#if LSMIO_STATUS_DEBUG
      checked_ = rhs.checked_;
#endif
      rhs.code_ = StatusCode::kOk;
      rhs.MarkChecked();
    }
    return *this;
  }

  static Status OK() noexcept { return Status(); }
  static Status NotFound(std::string_view msg) { return {StatusCode::kNotFound, msg}; }
  static Status Corruption(std::string_view msg) { return {StatusCode::kCorruption, msg}; }
  static Status NotSupported(std::string_view msg) { return {StatusCode::kNotSupported, msg}; }
  static Status InvalidArgument(std::string_view msg) { return {StatusCode::kInvalidArgument, msg}; }
  static Status IoError(std::string_view msg) { return {StatusCode::kIoError, msg}; }
  static Status Busy(std::string_view msg) { return {StatusCode::kBusy, msg}; }
  static Status Aborted(std::string_view msg) { return {StatusCode::kAborted, msg}; }
  static Status OutOfRange(std::string_view msg) { return {StatusCode::kOutOfRange, msg}; }
  static Status ReadOnly(std::string_view msg) { return {StatusCode::kReadOnly, msg}; }

  [[nodiscard]] bool ok() const noexcept { MarkChecked(); return code_ == StatusCode::kOk; }
  [[nodiscard]] bool IsNotFound() const noexcept { MarkChecked(); return code_ == StatusCode::kNotFound; }
  [[nodiscard]] bool IsCorruption() const noexcept { MarkChecked(); return code_ == StatusCode::kCorruption; }
  [[nodiscard]] bool IsNotSupported() const noexcept { MarkChecked(); return code_ == StatusCode::kNotSupported; }
  [[nodiscard]] bool IsInvalidArgument() const noexcept { MarkChecked(); return code_ == StatusCode::kInvalidArgument; }
  [[nodiscard]] bool IsIoError() const noexcept { MarkChecked(); return code_ == StatusCode::kIoError; }
  [[nodiscard]] bool IsBusy() const noexcept { MarkChecked(); return code_ == StatusCode::kBusy; }
  [[nodiscard]] bool IsAborted() const noexcept { MarkChecked(); return code_ == StatusCode::kAborted; }
  [[nodiscard]] bool IsOutOfRange() const noexcept { MarkChecked(); return code_ == StatusCode::kOutOfRange; }
  [[nodiscard]] bool IsReadOnly() const noexcept { MarkChecked(); return code_ == StatusCode::kReadOnly; }

  [[nodiscard]] StatusCode code() const noexcept { MarkChecked(); return code_; }
  [[nodiscard]] const std::string& message() const noexcept { MarkChecked(); return msg_; }

  /// Explicitly discards this status. The ONLY sanctioned way to drop an
  /// error on the floor: it reads as intent at the call site, satisfies the
  /// LSMIO_STATUS_DEBUG tracking, and — unlike a `(void)` cast — passes the
  /// lsmio-status-ignore clang-tidy check. Every call should carry a short
  /// comment saying why ignoring is safe.
  void IgnoreError() const noexcept { MarkChecked(); }

  /// "OK" or "<CodeName>: <message>". Defined inline so the checked-bit
  /// side effect is compiled consistently into every translation unit.
  [[nodiscard]] std::string ToString() const {
    MarkChecked();
    if (code_ == StatusCode::kOk) return "OK";
    std::string out(StatusCodeName(code_));
    if (!msg_.empty()) {
      out += ": ";
      out += msg_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    a.MarkChecked();
    b.MarkChecked();
    return a.code_ == b.code_;
  }

 private:
  template <typename T>
  friend class Result;

  Status(StatusCode code, std::string_view msg) : code_(code), msg_(msg) {
#if LSMIO_STATUS_DEBUG
    checked_ = (code_ == StatusCode::kOk);
#endif
  }

  /// Non-marking success test for internal assertions (Result's
  /// constructed-from-OK check must not count as "observed").
  [[nodiscard]] bool OkNoMark() const noexcept { return code_ == StatusCode::kOk; }

#if LSMIO_STATUS_DEBUG
  void MarkChecked() const noexcept { checked_ = true; }
  void VerifyChecked(const char* action) const noexcept {
    if (!checked_ && code_ != StatusCode::kOk) {
      std::fprintf(stderr,
                   "lsmio::Status: non-OK status %s without being checked: "
                   "%.*s: %s\n",
                   action, static_cast<int>(StatusCodeName(code_).size()),
                   StatusCodeName(code_).data(), msg_.c_str());
      std::abort();
    }
  }
#else
  void MarkChecked() const noexcept {}
  void VerifyChecked(const char*) const noexcept {}
#endif

  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
#if LSMIO_STATUS_DEBUG
  /// True once any observer ran. `mutable` so const observers mark it; kept
  /// last so code_/msg_ offsets match builds compiled without tracking.
  mutable bool checked_ = true;
#endif
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define LSMIO_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::lsmio::Status _lsmio_st = (expr);             \
    if (!_lsmio_st.ok()) return _lsmio_st;          \
  } while (0)

}  // namespace lsmio
