// Byte-size parsing/formatting ("64K", "1M", "32MiB") and bandwidth
// formatting, shared by benchmark harnesses and option parsers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace lsmio {

inline constexpr uint64_t KiB = 1024ULL;
inline constexpr uint64_t MiB = 1024ULL * KiB;
inline constexpr uint64_t GiB = 1024ULL * MiB;
inline constexpr uint64_t TiB = 1024ULL * GiB;

/// Parses "4096", "64K", "64KiB", "1m", "2G", "1.5M" into bytes.
/// Suffixes are binary (K=KiB etc). Fails on garbage or negative values.
Result<uint64_t> ParseBytes(std::string_view text);

/// "65536" -> "64.0 KiB", "1073741824" -> "1.0 GiB".
std::string FormatBytes(uint64_t bytes);

/// Bandwidth in MiB/s with 2 decimals, e.g. "1234.56 MiB/s".
std::string FormatBandwidth(double bytes_per_second);

/// Seconds with adaptive unit, e.g. "12.3 ms", "4.56 s".
std::string FormatDuration(double seconds);

}  // namespace lsmio
