// Little-endian fixed-width and varint encodings shared by the WAL, block,
// SSTable and manifest formats.
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace lsmio {

// --- fixed-width little-endian ------------------------------------------

void PutFixed16(std::string* dst, uint16_t v);
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);

void EncodeFixed16(char* dst, uint16_t v) noexcept;
void EncodeFixed32(char* dst, uint32_t v) noexcept;
void EncodeFixed64(char* dst, uint64_t v) noexcept;

uint16_t DecodeFixed16(const char* src) noexcept;
uint32_t DecodeFixed32(const char* src) noexcept;
uint64_t DecodeFixed64(const char* src) noexcept;

// --- varint ---------------------------------------------------------------

/// Maximum encoded sizes.
inline constexpr int kMaxVarint32Bytes = 5;
inline constexpr int kMaxVarint64Bytes = 10;

void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

/// Encodes v at dst (which must have room for kMaxVarint*Bytes) and returns
/// the pointer just past the written bytes.
char* EncodeVarint32(char* dst, uint32_t v) noexcept;
char* EncodeVarint64(char* dst, uint64_t v) noexcept;

/// Parses a varint from [p, limit); returns pointer past it, or nullptr on
/// malformed/truncated input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* v) noexcept;
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* v) noexcept;

/// Consumes a varint from the front of *input. Returns false on malformed
/// input (input is left unspecified then).
bool GetVarint32(Slice* input, uint32_t* v) noexcept;
bool GetVarint64(Slice* input, uint64_t* v) noexcept;

/// Number of bytes VarintLength would occupy.
int VarintLength(uint64_t v) noexcept;

// --- length-prefixed slices -------------------------------------------------

/// Appends varint32(len) + bytes.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Consumes varint32(len) + len bytes from *input into *result.
bool GetLengthPrefixedSlice(Slice* input, Slice* result) noexcept;

}  // namespace lsmio
