// Deterministic pseudo-random generators. Every stochastic component in the
// library (workload generators, simulator jitter, test data) takes an
// explicit seed so runs are reproducible bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lsmio {

/// SplitMix64: tiny, fast, good avalanche; used directly and to seed Xoshiro.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) noexcept : state_(seed) {}

  uint64_t Next() noexcept {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256** — the workhorse generator.
class Rng {
 public:
  explicit Rng(uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  uint64_t Next() noexcept {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) noexcept { return Next() % n; }

  /// Uniform in [lo, hi]. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) noexcept {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) noexcept { return NextDouble() < p; }

  /// Fills [dst, dst+n) with pseudo-random bytes.
  void Fill(char* dst, size_t n) noexcept {
    size_t i = 0;
    while (i + 8 <= n) {
      uint64_t w = Next();
      __builtin_memcpy(dst + i, &w, 8);
      i += 8;
    }
    if (i < n) {
      uint64_t w = Next();
      __builtin_memcpy(dst + i, &w, n - i);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace lsmio
