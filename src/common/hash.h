// Fast non-cryptographic hashes: 32-bit (bloom filters, block cache sharding)
// and 64-bit (cache keys, table ids).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace lsmio {

/// 32-bit Murmur-inspired hash of [data, data+n) with a seed.
uint32_t Hash32(const char* data, size_t n, uint32_t seed) noexcept;

/// 64-bit xx-style hash of [data, data+n) with a seed.
uint64_t Hash64(const char* data, size_t n, uint64_t seed) noexcept;

inline uint32_t Hash32(const Slice& s, uint32_t seed = 0xbc9f1d34u) noexcept {
  return Hash32(s.data(), s.size(), seed);
}
inline uint64_t Hash64(const Slice& s, uint64_t seed = 0) noexcept {
  return Hash64(s.data(), s.size(), seed);
}

}  // namespace lsmio
