// CRC32C (Castagnoli) used to checksum WAL records, table blocks and the
// h5l/a2 on-disk structures. Software slicing-by-8 implementation; masked
// variant provided for values embedded in checksummed payloads.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lsmio::crc32c {

/// Extends a running CRC with [data, data+n).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n) noexcept;

/// CRC of [data, data+n).
inline uint32_t Value(const char* data, size_t n) noexcept {
  return Extend(0, data, n);
}

inline constexpr uint32_t kMaskDelta = 0xa282ead8u;

/// Returns a masked CRC, safe to store inside data that is itself CRC'd.
inline uint32_t Mask(uint32_t crc) noexcept {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked) noexcept {
  const uint32_t rot = masked - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace lsmio::crc32c
