#include "common/status.h"

namespace lsmio {

std::string_view StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kBusy: return "Busy";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kReadOnly: return "ReadOnly";
  }
  return "Unknown";
}

}  // namespace lsmio
