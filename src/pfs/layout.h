// File-to-OST striping: maps a contiguous file extent to per-OST object
// extents, Lustre-style (round-robin stripes; each OST object stores its
// stripes contiguously, so a contiguous file extent maps to at most one
// contiguous object extent per OST).
#pragma once

#include <cstdint>
#include <vector>

#include "pfs/cluster.h"

namespace lsmio::pfs {

/// One piece of a file extent on one OST.
struct ObjectExtent {
  int ost = 0;             // global OST index
  uint64_t object_offset = 0;  // offset within this file's object on that OST
  uint64_t length = 0;
};

class StripeLayout {
 public:
  /// `starting_ost` is the OST of stripe 0 (Lustre assigns this at create;
  /// the simulator round-robins it across files).
  StripeLayout(StripeSettings settings, int starting_ost, int num_osts)
      : settings_(settings), starting_ost_(starting_ost), num_osts_(num_osts) {}

  /// Splits [offset, offset+length) into per-OST object extents, merging
  /// adjacent stripes of the same OST into one extent.
  [[nodiscard]] std::vector<ObjectExtent> Map(uint64_t offset, uint64_t length) const;

  [[nodiscard]] int OstOfStripe(uint64_t stripe_row) const {
    return (starting_ost_ + static_cast<int>(stripe_row % static_cast<uint64_t>(
                                settings_.stripe_count))) %
           num_osts_;
  }

  [[nodiscard]] const StripeSettings& settings() const noexcept { return settings_; }
  [[nodiscard]] int starting_ost() const noexcept { return starting_ost_; }

 private:
  StripeSettings settings_;
  int starting_ost_;
  int num_osts_;
};

}  // namespace lsmio::pfs
