// Cluster model parameters for the simulated parallel file system.
//
// The defaults encode the University of York "Viking" system the paper
// evaluates on (Table 4): 45 OSTs behind 2 OSSs, 10×8 TB 7,200-RPM NL-SAS
// pools per OST, 40-core nodes. Timing constants are effective values
// (RAID pool streaming rate, elevator-amortized seek) calibrated so the
// simulated IOR baseline reproduces the paper's curve shapes; see
// EXPERIMENTS.md for the calibration notes.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace lsmio::pfs {

struct ClusterSpec {
  // --- storage servers ---
  int num_osts = 45;
  int num_oss = 2;
  /// Streaming bandwidth of one OST pool (bytes/s).
  double ost_seq_bw = 500e6;
  /// Effective head-reposition cost charged when an OST's next request is
  /// not contiguous with the last one it served (elevator-amortized).
  double seek_time = 2.5e-3;
  /// Floor on per-request disk service time (controller overhead).
  double ost_min_service = 50e-6;

  // --- network ---
  /// Effective client node NIC bandwidth for file I/O (bytes/s). Nominally
  /// 10 GbE; the effective value is lower because the interconnect is
  /// shared with MPI traffic and the Lustre client stack tops out earlier.
  double client_nic_bw = 0.7e9;
  /// Per-OSS ingress bandwidth (bytes/s).
  double oss_link_bw = 1.6e9;
  /// One-way RPC latency (s).
  double rpc_latency = 150e-6;

  // --- metadata server ---
  /// Service time per namespace operation at the (single) MDS.
  double mds_service_time = 200e-6;

  // --- LDLM extent-lock model ---
  /// Cost charged per write RPC when ownership of a shared OST object
  /// ping-pongs between writers (lock revocation round trips + forced cache
  /// flush). Applies only once a file has more concurrent writers than its
  /// stripe count — below that, the lock manager can partition object
  /// ownership so each client streams (see DESIGN.md).
  double lock_switch_time = 0.4e-3;
  /// Effective service bandwidth of a contended (lock-ping-ponged) object:
  /// revocations force small synchronous cache flushes, so the object
  /// serves far below streaming rate regardless of RPC size.
  double ost_contended_bw = 55e6;
  /// Repositioning cost when the disk head jumps between different readers'
  /// positions within one object (readahead amortizes part of a full seek).
  double read_switch_time = 0.9e-3;

  // --- client behaviour (Lustre write-back cache / RPC engine) ---
  /// Dirty data is shipped in object RPCs of at most this size.
  uint64_t max_rpc_bytes = 4 * MiB;
  /// Max write RPCs a client keeps in flight before stalling.
  int max_inflight_rpcs = 8;
};

/// The Viking cluster of the paper (Table 4).
inline ClusterSpec Viking() { return ClusterSpec{}; }

/// Default Lustre striping of a file (per-run configurable; the paper
/// sweeps stripe_size ∈ {64 KiB, 1 MiB} and stripe_count ∈ {4, 16}).
struct StripeSettings {
  uint64_t stripe_size = 1 * MiB;
  int stripe_count = 4;
};

}  // namespace lsmio::pfs
