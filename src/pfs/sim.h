// LustreSim: deterministic discrete-event replay of per-rank I/O traces on
// the simulated cluster.
//
// Model (see DESIGN.md §2 for the substitution rationale):
//  * Client write-back cache: contiguous same-file writes coalesce, then
//    ship as object RPCs of <= max_rpc_bytes, pipelined up to
//    max_inflight_rpcs; non-contiguous or cross-file writes ship alone —
//    this is what separates LSM-style streaming appends from strided
//    shared-file updates.
//  * Each RPC: client NIC (serialized per client) -> rpc latency -> OSS
//    ingress link (shared per OSS) -> OST disk (FIFO; pays seek_time when
//    not contiguous with the last extent that OST served).
//  * Reads are synchronous at the trace level (the issuing rank blocks),
//    writes are asynchronous until a Sync/Close/PhaseEnd barrier.
//  * Namespace ops are blocking RPCs against a single serialized MDS.
//  * Barriers synchronize ranks; the timed region is PhaseBegin..PhaseEnd
//    (PhaseEnd waits for the rank's outstanding writes).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pfs/cluster.h"
#include "pfs/layout.h"
#include "vfs/trace.h"

namespace lsmio::pfs {

struct SimOptions {
  ClusterSpec cluster = Viking();
  StripeSettings stripe;
  /// Per-byte virtual CPU cost (seconds) charged on each traced write/read
  /// before it is issued — models serialization/copy costs of the library
  /// under test (engines with more layers set a larger value through the
  /// harness cost model).
  double cpu_per_write_byte = 0.0;
  double cpu_per_read_byte = 0.0;
};

/// Per-OST accounting, exposed for tests and diagnostics.
struct OstStats {
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t requests = 0;
  uint64_t seeks = 0;
  double busy_seconds = 0;
};

struct SimResult {
  /// Virtual time from the latest PhaseBegin to the latest PhaseEnd.
  double phase_seconds = 0;
  /// Virtual time at which every rank finished its whole trace.
  double makespan_seconds = 0;
  uint64_t phase_bytes_written = 0;
  uint64_t phase_bytes_read = 0;
  uint64_t total_rpcs = 0;
  uint64_t total_seeks = 0;
  uint64_t mds_ops = 0;
  std::vector<OstStats> ost;

  /// Aggregate write bandwidth over the timed region (bytes/s).
  [[nodiscard]] double WriteBandwidth() const {
    return phase_seconds > 0 ? static_cast<double>(phase_bytes_written) / phase_seconds : 0;
  }
  [[nodiscard]] double ReadBandwidth() const {
    return phase_seconds > 0 ? static_cast<double>(phase_bytes_read) / phase_seconds : 0;
  }
};

class LustreSim {
 public:
  explicit LustreSim(SimOptions options) : options_(std::move(options)) {}

  /// Replays all ranks' traces; deterministic for identical inputs.
  SimResult Run(const vfs::TraceContext& traces);

 private:
  SimOptions options_;
};

}  // namespace lsmio::pfs
