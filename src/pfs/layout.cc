#include "pfs/layout.h"

#include <algorithm>
#include <cassert>

namespace lsmio::pfs {

std::vector<ObjectExtent> StripeLayout::Map(uint64_t offset, uint64_t length) const {
  std::vector<ObjectExtent> result;
  if (length == 0) return result;

  const uint64_t ss = settings_.stripe_size;
  const auto sc = static_cast<uint64_t>(settings_.stripe_count);
  assert(ss > 0 && sc > 0);

  // Per-OST index of the extent being grown in `result`. A contiguous file
  // extent visits each OST's stripes in increasing object order, and those
  // object offsets are themselves contiguous, so at most one extent per OST
  // results (plus possibly ragged first/last stripes, which still merge).
  std::vector<int> open_extent(static_cast<size_t>(num_osts_), -1);

  uint64_t pos = offset;
  const uint64_t end = offset + length;
  while (pos < end) {
    const uint64_t row = pos / ss;
    const uint64_t in_stripe = pos % ss;
    const uint64_t chunk = std::min(ss - in_stripe, end - pos);
    const int ost = OstOfStripe(row);
    const uint64_t object_offset = (row / sc) * ss + in_stripe;

    const int idx = open_extent[static_cast<size_t>(ost)];
    if (idx >= 0 &&
        result[static_cast<size_t>(idx)].object_offset +
                result[static_cast<size_t>(idx)].length == object_offset) {
      result[static_cast<size_t>(idx)].length += chunk;
    } else {
      open_extent[static_cast<size_t>(ost)] = static_cast<int>(result.size());
      result.push_back(ObjectExtent{ost, object_offset, chunk});
    }
    pos += chunk;
  }
  return result;
}

}  // namespace lsmio::pfs
