#include "pfs/sim.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>

#include "common/hash.h"
#include "common/logging.h"

namespace lsmio::pfs {

namespace {

using vfs::IoOp;
using vfs::IoOpKind;

// --- coalesced per-rank actions ----------------------------------------------

enum class ActionKind : uint8_t {
  kWrite,   // coalesced contiguous extent
  kRead,    // coalesced contiguous extent
  kSync,    // wait for this rank's in-flight writes
  kMeta,    // blocking MDS round-trip
  kCompute, // advance local clock
  kBarrier,
  kPhaseBegin,
  kPhaseEnd,
};

struct Action {
  ActionKind kind;
  uint32_t file = vfs::kNoFile;
  uint64_t offset = 0;
  uint64_t length = 0;   // bytes; or nanoseconds for kCompute; id for kBarrier
};

// Collapses the raw trace into actions, merging contiguous same-file writes
// (the Lustre client write-back cache) and contiguous same-file reads
// (client read-ahead). Runs are capped at max_rpc_bytes so the in-flight
// window meters RPC-sized units.
std::vector<Action> CoalesceTrace(const vfs::IoTrace& trace, uint64_t max_rpc_bytes) {
  std::vector<Action> actions;
  actions.reserve(trace.ops.size());

  Action pending{};  // pending.length == 0 means none
  bool pending_is_write = false;

  auto flush_pending = [&] {
    if (pending.length > 0) {
      actions.push_back(pending);
      pending.length = 0;
    }
  };

  for (const IoOp& op : trace.ops) {
    switch (op.kind) {
      case IoOpKind::kWrite:
      case IoOpKind::kRead: {
        const bool is_write = op.kind == IoOpKind::kWrite;
        uint64_t offset = op.offset;
        uint64_t remaining = op.size;
        while (remaining > 0) {
          if (pending.length > 0 && pending_is_write == is_write &&
              pending.file == op.file &&
              pending.offset + pending.length == offset &&
              pending.length < max_rpc_bytes) {
            const uint64_t take =
                std::min(remaining, max_rpc_bytes - pending.length);
            pending.length += take;
            offset += take;
            remaining -= take;
          } else {
            flush_pending();
            pending.kind = is_write ? ActionKind::kWrite : ActionKind::kRead;
            pending.file = op.file;
            pending.offset = offset;
            const uint64_t take = std::min(remaining, max_rpc_bytes);
            pending.length = take;
            pending_is_write = is_write;
            offset += take;
            remaining -= take;
          }
        }
        break;
      }
      case IoOpKind::kCompute:
        // Compute does not disturb the write-back cache.
        actions.push_back(Action{ActionKind::kCompute, vfs::kNoFile, 0, op.size});
        break;
      case IoOpKind::kSync:
        flush_pending();
        actions.push_back(Action{ActionKind::kSync, op.file, 0, 0});
        break;
      case IoOpKind::kCreate:
      case IoOpKind::kOpen:
      case IoOpKind::kClose:
      case IoOpKind::kRemove:
      case IoOpKind::kRename:
      case IoOpKind::kStat:
        flush_pending();
        actions.push_back(Action{ActionKind::kMeta, op.file, 0, 0});
        break;
      case IoOpKind::kBarrier:
        flush_pending();
        actions.push_back(Action{ActionKind::kBarrier, vfs::kNoFile, 0, op.size});
        break;
      case IoOpKind::kPhaseBegin:
        flush_pending();
        actions.push_back(Action{ActionKind::kPhaseBegin, vfs::kNoFile, 0, 0});
        break;
      case IoOpKind::kPhaseEnd:
        flush_pending();
        actions.push_back(Action{ActionKind::kPhaseEnd, vfs::kNoFile, 0, 0});
        break;
    }
  }
  flush_pending();
  return actions;
}

// --- event engine -------------------------------------------------------------

enum class EventKind : uint8_t { kClientAdvance, kOssArrive, kOstArrive, kRpcDone };

struct Rpc {
  int rank = 0;
  uint32_t file = vfs::kNoFile;
  int ost = 0;
  uint64_t object_offset = 0;
  uint64_t bytes = 0;
  bool is_read = false;
};

struct Event {
  double time = 0;
  uint64_t seq = 0;  // deterministic tie-break
  EventKind kind = EventKind::kClientAdvance;
  int rank = 0;
  Rpc rpc;

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct ClientState {
  std::vector<Action> actions;
  size_t next_action = 0;
  double now = 0;
  double nic_available = 0;
  int inflight_writes = 0;
  int outstanding_reads = 0;
  double read_complete_time = 0;  // max completion among outstanding reads

  enum class Block { kNone, kWindow, kSync, kReads, kBarrier, kDone };
  Block blocked = Block::kNone;

  double phase_begin = -1;
  double phase_end = -1;
  bool in_phase = false;
  uint64_t phase_written = 0;
  uint64_t phase_read = 0;
};

struct BarrierState {
  int arrived = 0;
  double max_time = 0;
  std::vector<int> waiting_ranks;
};

// Per-(OST, file) object state for the extent-lock / sequentiality model.
struct ObjectState {
  int last_writer = -1;
  uint64_t last_end = 0;           // end offset of the last RPC (any writer)
  std::map<int, uint64_t> stream_end;  // per-rank stream positions
};

struct OstState {
  double available = 0;
  uint32_t last_file = vfs::kNoFile;
  bool has_last = false;
  std::map<uint32_t, ObjectState> objects;
};

}  // namespace

SimResult LustreSim::Run(const vfs::TraceContext& traces) {
  const ClusterSpec& cluster = options_.cluster;
  const int num_ranks = traces.num_ranks();

  // Per-file stripe layouts: the starting OST derives from a hash of the
  // file's path (Lustre's allocator spreads files across OSTs; hashing the
  // path keeps the placement independent of the order in which racing rank
  // threads first touched each file, so runs are deterministic).
  const size_t num_files = traces.num_files();
  std::vector<StripeLayout> layouts;
  layouts.reserve(num_files);
  for (size_t f = 0; f < num_files; ++f) {
    const std::string& path = traces.PathOf(static_cast<uint32_t>(f));
    const int start = static_cast<int>(
        Hash64(path.data(), path.size(), /*seed=*/17) %
        static_cast<uint64_t>(cluster.num_osts));
    layouts.emplace_back(options_.stripe, start, cluster.num_osts);
  }

  std::vector<ClientState> clients(static_cast<size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    clients[static_cast<size_t>(r)].actions =
        CoalesceTrace(traces.TraceForRank(r), cluster.max_rpc_bytes);
  }

  // Distinct writer count per file drives the extent-lock contention model.
  std::vector<int> writers_per_file(num_files, 0);
  {
    std::vector<std::vector<bool>> wrote(
        num_files, std::vector<bool>(static_cast<size_t>(num_ranks), false));
    for (int r = 0; r < num_ranks; ++r) {
      for (const IoOp& op : traces.TraceForRank(r).ops) {
        if (op.kind == IoOpKind::kWrite && op.file < num_files &&
            !wrote[op.file][static_cast<size_t>(r)]) {
          wrote[op.file][static_cast<size_t>(r)] = true;
          ++writers_per_file[op.file];
        }
      }
    }
  }

  std::vector<OstState> osts(static_cast<size_t>(cluster.num_osts));
  std::vector<double> oss_available(static_cast<size_t>(cluster.num_oss), 0.0);
  double mds_available = 0;

  SimResult result;
  result.ost.resize(static_cast<size_t>(cluster.num_osts));

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  uint64_t next_seq = 0;
  auto schedule = [&](double time, EventKind kind, int rank, const Rpc& rpc = {}) {
    events.push(Event{time, next_seq++, kind, rank, rpc});
  };

  std::map<uint64_t, BarrierState> barriers;

  for (int r = 0; r < num_ranks; ++r) schedule(0.0, EventKind::kClientAdvance, r);

  // Issues the object RPCs of one coalesced extent; returns count issued.
  auto issue_extent = [&](int rank, const Action& action, bool is_read) {
    ClientState& client = clients[static_cast<size_t>(rank)];
    const StripeLayout& layout = layouts[action.file];

    // CPU cost of producing/consuming the payload.
    const double cpu = static_cast<double>(action.length) *
                       (is_read ? options_.cpu_per_read_byte
                                : options_.cpu_per_write_byte);
    client.now += cpu;

    int issued = 0;
    // Actions are already capped at max_rpc_bytes by CoalesceTrace; one
    // action yields at most stripe_count object RPCs.
    for (const ObjectExtent& ext : layout.Map(action.offset, action.length)) {
      // Client NIC is serialized. Reads only pay the (tiny) request send
      // here; their payload streams back at completion.
      const double nic_time =
          is_read ? 0.0
                  : static_cast<double>(ext.length) / cluster.client_nic_bw;
      const double nic_start = std::max(client.now, client.nic_available);
      client.nic_available = nic_start + nic_time;
      client.now = client.nic_available;

      Rpc rpc;
      rpc.rank = rank;
      rpc.file = action.file;
      rpc.ost = ext.ost;
      rpc.object_offset = ext.object_offset;
      rpc.bytes = ext.length;
      rpc.is_read = is_read;
      schedule(client.now + cluster.rpc_latency, EventKind::kOssArrive, rank, rpc);
      ++issued;
    }
    if (client.in_phase) {
      if (is_read) client.phase_read += action.length;
      else client.phase_written += action.length;
    }
    return issued;
  };

  // Advances `rank` through its actions until it blocks or finishes.
  // Defined as a plain loop driven from the event handler below.
  auto advance_client = [&](int rank) {
    ClientState& client = clients[static_cast<size_t>(rank)];
    client.blocked = ClientState::Block::kNone;

    while (client.next_action < client.actions.size()) {
      const Action& action = client.actions[client.next_action];
      switch (action.kind) {
        case ActionKind::kCompute:
          client.now += static_cast<double>(action.length) * 1e-9;
          ++client.next_action;
          break;

        case ActionKind::kWrite: {
          if (client.inflight_writes >= cluster.max_inflight_rpcs) {
            client.blocked = ClientState::Block::kWindow;
            return;
          }
          client.inflight_writes += issue_extent(rank, action, /*is_read=*/false);
          ++client.next_action;
          break;
        }

        case ActionKind::kRead: {
          client.outstanding_reads += issue_extent(rank, action, /*is_read=*/true);
          ++client.next_action;
          if (client.outstanding_reads > 0) {
            client.blocked = ClientState::Block::kReads;
            return;
          }
          break;
        }

        case ActionKind::kSync:
          if (client.inflight_writes > 0) {
            client.blocked = ClientState::Block::kSync;
            return;  // re-entered when the last write completes
          }
          ++client.next_action;
          break;

        case ActionKind::kMeta: {
          const double arrive = client.now + cluster.rpc_latency;
          const double start = std::max(arrive, mds_available);
          mds_available = start + cluster.mds_service_time;
          client.now = mds_available + cluster.rpc_latency;
          ++result.mds_ops;
          ++client.next_action;
          break;
        }

        case ActionKind::kBarrier: {
          // MPI barriers do not flush I/O: async writes stay in flight
          // across them; only Sync/PhaseEnd wait for completions.
          BarrierState& barrier = barriers[action.length];
          barrier.max_time = std::max(barrier.max_time, client.now);
          ++barrier.arrived;
          ++client.next_action;
          if (barrier.arrived == num_ranks) {
            const double release = barrier.max_time;
            for (const int waiting_rank : barrier.waiting_ranks) {
              ClientState& waiter = clients[static_cast<size_t>(waiting_rank)];
              waiter.now = release;
              waiter.blocked = ClientState::Block::kNone;
              schedule(release, EventKind::kClientAdvance, waiting_rank);
            }
            barriers.erase(action.length);
            client.now = std::max(client.now, release);
            break;  // this rank continues inline
          }
          barrier.waiting_ranks.push_back(rank);
          client.blocked = ClientState::Block::kBarrier;
          return;
        }

        case ActionKind::kPhaseBegin:
          client.phase_begin = client.now;
          client.in_phase = true;
          ++client.next_action;
          break;

        case ActionKind::kPhaseEnd:
          if (client.inflight_writes > 0) {
            client.blocked = ClientState::Block::kSync;  // drain writes first
            return;
          }
          client.phase_end = client.now;
          client.in_phase = false;
          ++client.next_action;
          break;
      }
    }
    client.blocked = ClientState::Block::kDone;
  };

  // --- main event loop ---
  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    ClientState& client = clients[static_cast<size_t>(event.rank)];

    switch (event.kind) {
      case EventKind::kClientAdvance:
        // Advance events are only ever scheduled for unblocked clients (the
        // unblocking site clears `blocked` first); anything else is stale.
        if (client.blocked != ClientState::Block::kNone) break;
        client.now = std::max(client.now, event.time);
        advance_client(event.rank);
        break;

      case EventKind::kOssArrive: {
        const int oss = event.rpc.ost % cluster.num_oss;
        const double start = std::max(event.time, oss_available[static_cast<size_t>(oss)]);
        const double link_time =
            static_cast<double>(event.rpc.bytes) / cluster.oss_link_bw;
        oss_available[static_cast<size_t>(oss)] = start + link_time;
        schedule(start + link_time, EventKind::kOstArrive, event.rank, event.rpc);
        break;
      }

      case EventKind::kOstArrive: {
        OstState& ost = osts[static_cast<size_t>(event.rpc.ost)];
        OstStats& stats = result.ost[static_cast<size_t>(event.rpc.ost)];
        const double start = std::max(event.time, ost.available);
        ObjectState& object = ost.objects[event.rpc.file];
        const int writers = writers_per_file[event.rpc.file];
        const bool cross_file = !ost.has_last || ost.last_file != event.rpc.file;

        bool sequential;
        double lock_cost = 0;
        bool contended = false;
        if (!event.rpc.is_read && writers > options_.stripe.stripe_count) {
          // Contended object: exclusive extent-lock ownership ping-pongs and
          // revocation-forced cache flushes cap the service bandwidth.
          contended = true;
          const bool switched =
              object.last_writer >= 0 && object.last_writer != event.rpc.rank;
          if (switched) lock_cost = cluster.lock_switch_time;
          sequential = !switched && !cross_file &&
                       object.last_end == event.rpc.object_offset;
        } else if (event.rpc.is_read) {
          // Reads: a rank streaming its own object forward is sequential;
          // jumping between different readers' positions costs a (partially
          // readahead-amortized) reposition instead of a full seek.
          uint64_t& stream_end = object.stream_end[event.rpc.rank];
          const uint64_t off = event.rpc.object_offset;
          sequential =
              !cross_file && (off == stream_end || off == object.last_end);
          stream_end = off + event.rpc.bytes;
        } else {
          // Few writers: the lock manager partitions ownership and the
          // elevator merges the interleaved per-rank streams. A rank's
          // forward progress counts as sequential when other ranks' data
          // fills its gaps (writers > 1); a lone stream must be exactly
          // contiguous.
          uint64_t& stream_end = object.stream_end[event.rpc.rank];
          const uint64_t off = event.rpc.object_offset;
          if (cross_file) {
            sequential = false;
          } else if (off == stream_end || off == object.last_end) {
            sequential = true;
          } else {
            sequential = writers > 1 && off > stream_end;
          }
          stream_end = off + event.rpc.bytes;
        }

        double service = static_cast<double>(event.rpc.bytes) /
                         (contended ? cluster.ost_contended_bw
                                    : cluster.ost_seq_bw);
        service = std::max(service, cluster.ost_min_service);
        service += lock_cost;
        if (!sequential) {
          // Reads reposition more cheaply: readahead hides part of the seek.
          service += event.rpc.is_read ? cluster.read_switch_time
                                       : cluster.seek_time;
          ++stats.seeks;
          ++result.total_seeks;
        }
        ost.available = start + service;
        ost.has_last = true;
        ost.last_file = event.rpc.file;
        object.last_writer = event.rpc.is_read ? object.last_writer : event.rpc.rank;
        object.last_end = event.rpc.object_offset + event.rpc.bytes;

        ++stats.requests;
        stats.busy_seconds += service;
        if (event.rpc.is_read) stats.bytes_read += event.rpc.bytes;
        else stats.bytes_written += event.rpc.bytes;
        ++result.total_rpcs;

        // Read responses additionally stream back over the client NIC.
        double done = ost.available + cluster.rpc_latency;
        if (event.rpc.is_read) {
          done += static_cast<double>(event.rpc.bytes) / cluster.client_nic_bw;
        }
        schedule(done, EventKind::kRpcDone, event.rank, event.rpc);
        break;
      }

      case EventKind::kRpcDone: {
        if (event.rpc.is_read) {
          --client.outstanding_reads;
          client.read_complete_time = std::max(client.read_complete_time, event.time);
          if (client.outstanding_reads == 0 &&
              client.blocked == ClientState::Block::kReads) {
            client.now = std::max(client.now, client.read_complete_time);
            client.blocked = ClientState::Block::kNone;
            schedule(client.now, EventKind::kClientAdvance, event.rank);
          }
        } else {
          --client.inflight_writes;
          if (client.blocked == ClientState::Block::kWindow &&
              client.inflight_writes < cluster.max_inflight_rpcs) {
            client.now = std::max(client.now, event.time);
            client.blocked = ClientState::Block::kNone;
            schedule(client.now, EventKind::kClientAdvance, event.rank);
          } else if (client.blocked == ClientState::Block::kSync &&
                     client.inflight_writes == 0) {
            client.now = std::max(client.now, event.time);
            client.blocked = ClientState::Block::kNone;
            schedule(client.now, EventKind::kClientAdvance, event.rank);
          }
        }
        break;
      }
    }
  }

  // --- aggregate results ---
  double phase_begin = 0;
  double phase_end = 0;
  for (const ClientState& client : clients) {
    if (client.blocked != ClientState::Block::kDone) {
      LSMIO_WARN << "simulation ended with a blocked rank (deadlocked trace?)";
    }
    result.makespan_seconds = std::max(result.makespan_seconds, client.now);
    if (client.phase_begin >= 0) {
      phase_begin = std::max(phase_begin, client.phase_begin);
      phase_end = std::max(phase_end, client.phase_end);
      result.phase_bytes_written += client.phase_written;
      result.phase_bytes_read += client.phase_read;
    }
  }
  result.phase_seconds = std::max(0.0, phase_end - phase_begin);
  return result;
}

}  // namespace lsmio::pfs
