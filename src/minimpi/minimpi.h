// minimpi: an in-process MPI subset — ranks are threads in one process.
//
// The paper uses MPI for barriers around timed regions and (as future work)
// collective I/O; examples and the LSMIO manager need Barrier, Bcast,
// Gather, Allgather, Reduce/Allreduce, Send/Recv and Split. Collectives are
// built on the point-to-point layer with internal tags, so one well-tested
// mailbox path carries everything.
//
// Usage:
//   minimpi::RunWorld(8, [](minimpi::Comm& comm) {
//     comm.Barrier();
//     auto all = comm.Allgather(std::to_string(comm.rank()));
//   });
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace lsmio::minimpi {

class World;

/// Reduction operators for Reduce/Allreduce.
enum class ReduceOp { kSum, kMin, kMax };

/// A communicator bound to one rank of one group. Not thread-safe: each
/// rank's thread owns its Comm.
class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(group_.size()); }

  /// Blocks until every rank of this communicator has entered.
  void Barrier();

  /// Blocking point-to-point. Tags must be >= 0 (negative tags are reserved
  /// for collectives). Messages with the same (src, dst, tag) are delivered
  /// in order.
  void Send(int dest, int tag, const std::string& data);
  std::string Recv(int source, int tag);

  /// Root's data is distributed to everyone (data is in/out).
  void Bcast(std::string* data, int root);

  /// Root receives [rank0 data, rank1 data, ...]; others get an empty vector.
  std::vector<std::string> Gather(const std::string& data, int root);

  /// Everyone receives all ranks' data, ordered by rank.
  std::vector<std::string> Allgather(const std::string& data);

  /// Root receives op over all ranks' values; others get 0.
  double Reduce(double value, ReduceOp op, int root);
  uint64_t Reduce(uint64_t value, ReduceOp op, int root);

  /// Everyone receives op over all ranks' values.
  double Allreduce(double value, ReduceOp op);
  uint64_t Allreduce(uint64_t value, ReduceOp op);

  /// Partitions ranks by `color`; within a color, ranks are ordered by
  /// (key, parent rank). Returns this rank's communicator for its color.
  std::unique_ptr<Comm> Split(int color, int key);

 private:
  friend class World;
  friend void RunWorld(int num_ranks, const std::function<void(Comm&)>& fn);
  Comm(World* world, uint32_t context, int rank, std::vector<int> group)
      : world_(world), context_(context), rank_(rank), group_(std::move(group)) {}

  /// Translates a communicator rank to a world rank.
  [[nodiscard]] int WorldRank(int comm_rank) const {
    return group_[static_cast<size_t>(comm_rank)];
  }

  void SendInternal(int dest, int64_t tag, const std::string& data);
  std::string RecvInternal(int source, int64_t tag);

  World* world_;
  uint32_t context_;
  int rank_;
  std::vector<int> group_;  // comm rank -> world rank
  // Per-communicator collective sequence number, used to build unique
  // internal tags. Stays in sync across ranks because MPI semantics require
  // every rank of a communicator to make the same collective calls in the
  // same order.
  int64_t collective_seq_ = 0;
};

/// Runs fn on `num_ranks` threads, each with its own world communicator.
/// Rethrows the first exception any rank threw (after joining all ranks).
void RunWorld(int num_ranks, const std::function<void(Comm&)>& fn);

}  // namespace lsmio::minimpi
