#include "minimpi/minimpi.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <thread>
#include <tuple>

#include "common/synchronization.h"

namespace lsmio::minimpi {

namespace {
// Internal (negative) tag bases for collectives, offset by a per-call
// operation counter so back-to-back collectives never cross wires.
constexpr int64_t kBcastTag = -1'000'000'000LL;
constexpr int64_t kGatherTag = -2'000'000'000LL;
constexpr int64_t kSplitTag = -3'000'000'000LL;
constexpr int64_t kReduceTag = -4'000'000'000LL;
}  // namespace

/// Shared state of all ranks: mailboxes keyed by (context, src, dst, tag)
/// and per-context barrier generations.
class World {
 public:
  explicit World(int num_ranks) : num_ranks_(num_ranks) {}

  int num_ranks() const noexcept { return num_ranks_; }

  void Send(uint32_t context, int src, int dst, int64_t tag, std::string data) {
    {
      MutexLock lock(&mu_);
      mailboxes_[Key{context, src, dst, tag}].push_back(std::move(data));
    }
    cv_.SignalAll();
  }

  std::string Recv(uint32_t context, int src, int dst, int64_t tag) {
    MutexLock lock(&mu_);
    const Key key{context, src, dst, tag};
    auto ready = [&]() REQUIRES(mu_) {
      auto it = mailboxes_.find(key);
      return it != mailboxes_.end() && !it->second.empty();
    };
    while (!ready()) cv_.Wait();
    auto it = mailboxes_.find(key);
    std::string data = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) mailboxes_.erase(it);
    return data;
  }

  void Barrier(uint32_t context, int group_size) {
    MutexLock lock(&mu_);
    BarrierState& b = barriers_[context];
    const uint64_t generation = b.generation;
    if (++b.waiting == group_size) {
      b.waiting = 0;
      ++b.generation;
      cv_.SignalAll();
    } else {
      while (b.generation == generation) cv_.Wait();
    }
  }

  uint32_t NewContext() {
    MutexLock lock(&mu_);
    return next_context_++;
  }

 private:
  using Key = std::tuple<uint32_t, int, int, int64_t>;

  struct BarrierState {
    int waiting = 0;
    uint64_t generation = 0;
  };

  int num_ranks_;  // unguarded: immutable after construction
  Mutex mu_;
  CondVar cv_{&mu_};
  std::map<Key, std::deque<std::string>> mailboxes_ GUARDED_BY(mu_);
  std::map<uint32_t, BarrierState> barriers_ GUARDED_BY(mu_);
  uint32_t next_context_ GUARDED_BY(mu_) = 1;
};

void Comm::SendInternal(int dest, int64_t tag, const std::string& data) {
  world_->Send(context_, rank_, dest, tag, data);
}

std::string Comm::RecvInternal(int source, int64_t tag) {
  return world_->Recv(context_, source, rank_, tag);
}

void Comm::Barrier() { world_->Barrier(context_, size()); }

void Comm::Send(int dest, int tag, const std::string& data) {
  assert(tag >= 0 && "negative tags are reserved for collectives");
  assert(dest >= 0 && dest < size());
  SendInternal(dest, tag, data);
}

std::string Comm::Recv(int source, int tag) {
  assert(tag >= 0);
  assert(source >= 0 && source < size());
  return RecvInternal(source, tag);
}

void Comm::Bcast(std::string* data, int root) {
  const int64_t tag = kBcastTag - collective_seq_++;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) SendInternal(r, tag, *data);
    }
  } else {
    *data = RecvInternal(root, tag);
  }
}

std::vector<std::string> Comm::Gather(const std::string& data, int root) {
  const int64_t tag = kGatherTag - collective_seq_++;
  if (rank_ == root) {
    std::vector<std::string> result(static_cast<size_t>(size()));
    result[static_cast<size_t>(root)] = data;
    for (int r = 0; r < size(); ++r) {
      if (r != root) result[static_cast<size_t>(r)] = RecvInternal(r, tag);
    }
    return result;
  }
  SendInternal(root, tag, data);
  return {};
}

std::vector<std::string> Comm::Allgather(const std::string& data) {
  std::vector<std::string> result = Gather(data, 0);
  if (rank_ == 0) {
    // Serialize and broadcast.
    std::string packed;
    for (const auto& s : result) {
      const uint32_t len = static_cast<uint32_t>(s.size());
      packed.append(reinterpret_cast<const char*>(&len), sizeof len);
      packed += s;
    }
    Bcast(&packed, 0);
    return result;
  }
  std::string packed;
  Bcast(&packed, 0);
  result.clear();
  size_t pos = 0;
  while (pos + sizeof(uint32_t) <= packed.size()) {
    uint32_t len;
    std::copy_n(packed.data() + pos, sizeof len, reinterpret_cast<char*>(&len));
    pos += sizeof len;
    result.push_back(packed.substr(pos, len));
    pos += len;
  }
  return result;
}

namespace {
template <typename T>
T Combine(T a, T b, ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kMin: return std::min(a, b);
    case ReduceOp::kMax: return std::max(a, b);
  }
  return a;
}

template <typename T>
std::string Pack(T v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T Unpack(const std::string& s) {
  T v{};
  assert(s.size() == sizeof v);
  std::copy_n(s.data(), sizeof v, reinterpret_cast<char*>(&v));
  return v;
}
}  // namespace

double Comm::Reduce(double value, ReduceOp op, int root) {
  const int64_t tag = kReduceTag - collective_seq_++;
  if (rank_ == root) {
    double acc = value;
    for (int r = 0; r < size(); ++r) {
      if (r != root) acc = Combine(acc, Unpack<double>(RecvInternal(r, tag)), op);
    }
    return acc;
  }
  SendInternal(root, tag, Pack(value));
  return 0.0;
}

uint64_t Comm::Reduce(uint64_t value, ReduceOp op, int root) {
  const int64_t tag = kReduceTag - collective_seq_++;
  if (rank_ == root) {
    uint64_t acc = value;
    for (int r = 0; r < size(); ++r) {
      if (r != root) acc = Combine(acc, Unpack<uint64_t>(RecvInternal(r, tag)), op);
    }
    return acc;
  }
  SendInternal(root, tag, Pack(value));
  return 0;
}

double Comm::Allreduce(double value, ReduceOp op) {
  double result = Reduce(value, op, 0);
  std::string packed = rank_ == 0 ? Pack(result) : std::string();
  Bcast(&packed, 0);
  return Unpack<double>(packed);
}

uint64_t Comm::Allreduce(uint64_t value, ReduceOp op) {
  uint64_t result = Reduce(value, op, 0);
  std::string packed = rank_ == 0 ? Pack(result) : std::string();
  Bcast(&packed, 0);
  return Unpack<uint64_t>(packed);
}

std::unique_ptr<Comm> Comm::Split(int color, int key) {
  // Gather (color, key, rank) at rank 0, compute groups, broadcast the plan.
  struct Entry {
    int color;
    int key;
    int rank;
  };
  std::string mine = Pack(color) + Pack(key) + Pack(rank_);
  const std::vector<std::string> all = Allgather(mine);

  std::vector<Entry> entries;
  entries.reserve(all.size());
  for (const auto& s : all) {
    Entry e{};
    e.color = Unpack<int>(s.substr(0, sizeof(int)));
    e.key = Unpack<int>(s.substr(sizeof(int), sizeof(int)));
    e.rank = Unpack<int>(s.substr(2 * sizeof(int), sizeof(int)));
    entries.push_back(e);
  }

  // My group: all entries with my color, ordered by (key, rank).
  std::vector<Entry> mine_group;
  for (const auto& e : entries) {
    if (e.color == color) mine_group.push_back(e);
  }
  std::sort(mine_group.begin(), mine_group.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });

  // Context id must be identical within a group and unique across groups +
  // calls. Rank 0 allocates one context per distinct color and broadcasts
  // the color->context map.
  std::string packed_map;
  if (rank_ == 0) {
    std::vector<int> colors;
    for (const auto& e : entries) colors.push_back(e.color);
    std::sort(colors.begin(), colors.end());
    colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
    for (const int c : colors) {
      packed_map += Pack(c) + Pack(world_->NewContext());
    }
  }
  Bcast(&packed_map, 0);

  uint32_t my_context = 0;
  for (size_t pos = 0; pos + sizeof(int) + sizeof(uint32_t) <= packed_map.size();
       pos += sizeof(int) + sizeof(uint32_t)) {
    const int c = Unpack<int>(packed_map.substr(pos, sizeof(int)));
    if (c == color) {
      my_context =
          Unpack<uint32_t>(packed_map.substr(pos + sizeof(int), sizeof(uint32_t)));
      break;
    }
  }
  assert(my_context != 0);

  // Build group (new comm rank -> world rank) and find my new rank.
  std::vector<int> group;
  int new_rank = -1;
  for (size_t i = 0; i < mine_group.size(); ++i) {
    group.push_back(WorldRank(mine_group[i].rank));
    if (mine_group[i].rank == rank_) new_rank = static_cast<int>(i);
  }
  assert(new_rank >= 0);

  // Sub-communicator p2p uses comm-local ranks directly.
  return std::unique_ptr<Comm>(new Comm(world_, my_context, new_rank, std::move(group)));
}

void RunWorld(int num_ranks, const std::function<void(Comm&)>& fn) {
  assert(num_ranks >= 1);
  World world(num_ranks);

  std::vector<int> identity(static_cast<size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) identity[static_cast<size_t>(r)] = r;

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<size_t>(num_ranks));
  threads.reserve(static_cast<size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&world, &fn, &errors, r, identity] {
      Comm comm(&world, /*context=*/0, r, identity);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace lsmio::minimpi
