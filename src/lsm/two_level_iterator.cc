#include "lsm/two_level_iterator.h"

#include <memory>

namespace lsmio::lsm {
namespace {

class TwoLevelIterator final : public Iterator {
 public:
  TwoLevelIterator(
      Iterator* index_iter,
      std::function<Iterator*(const ReadOptions&, const Slice&)> block_function,
      const ReadOptions& options)
      : block_function_(std::move(block_function)),
        options_(options),
        index_iter_(index_iter) {}

  bool Valid() const override { return data_iter_ != nullptr && data_iter_->Valid(); }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyDataBlocksForward();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyDataBlocksForward();
  }

  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToLast();
    SkipEmptyDataBlocksBackward();
  }

  void Next() override {
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }

  void Prev() override {
    data_iter_->Prev();
    SkipEmptyDataBlocksBackward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }

  Status status() const override {
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  void SaveError(const Status& s) {
    if (status_.ok() && !s.ok()) status_ = s;
  }

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        SetDataIterator(nullptr);
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  void SkipEmptyDataBlocksBackward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        SetDataIterator(nullptr);
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToLast();
    }
  }

  void SetDataIterator(Iterator* iter) {
    if (data_iter_ != nullptr) SaveError(data_iter_->status());
    data_iter_.reset(iter);
  }

  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      SetDataIterator(nullptr);
      return;
    }
    const Slice handle = index_iter_->value();
    if (data_iter_ != nullptr && handle == data_block_handle_) {
      return;  // already positioned in this block
    }
    Iterator* iter = block_function_(options_, handle);
    data_block_handle_.assign(handle.data(), handle.size());
    SetDataIterator(iter);
  }

  std::function<Iterator*(const ReadOptions&, const Slice&)> block_function_;
  ReadOptions options_;
  Status status_;
  std::unique_ptr<Iterator> index_iter_;
  std::unique_ptr<Iterator> data_iter_;
  std::string data_block_handle_;
};

}  // namespace

Iterator* NewTwoLevelIterator(
    Iterator* index_iter,
    std::function<Iterator*(const ReadOptions&, const Slice&)> block_function,
    const ReadOptions& options) {
  return new TwoLevelIterator(index_iter, std::move(block_function), options);
}

}  // namespace lsmio::lsm
