#include "lsm/db_iter.h"

#include <memory>
#include <string>

#include "lsm/value_log.h"

namespace lsmio::lsm {
namespace {

// Which direction the iterator is moving. Forward: iter_ is positioned at
// the internal entry yielding the current user entry. Reverse: iter_ is
// positioned just before all entries of the current user key, and the
// current key/value are saved in saved_key_/saved_value_.
enum class Direction { kForward, kReverse };

class DBIter final : public Iterator {
 public:
  DBIter(const Comparator* user_comparator, Iterator* internal_iter,
         SequenceNumber sequence, const ValueLog* vlog)
      : user_comparator_(user_comparator),
        iter_(internal_iter),
        sequence_(sequence),
        vlog_(vlog) {}

  bool Valid() const override { return valid_; }

  Slice key() const override {
    return direction_ == Direction::kForward ? ExtractUserKey(iter_->key())
                                             : Slice(saved_key_);
  }

  Slice value() const override {
    const bool is_pointer = direction_ == Direction::kForward
                                ? current_is_pointer_
                                : saved_is_pointer_;
    const Slice raw = direction_ == Direction::kForward ? iter_->value()
                                                        : Slice(saved_value_);
    if (!is_pointer) return raw;
    // Resolve through the value log, once per position; key()-only scans
    // never pay the blob read.
    if (!resolved_) {
      resolved_ = true;
      ValuePointer ptr;
      if (vlog_ == nullptr || !DecodeValuePointer(raw, &ptr)) {
        resolve_status_ = Status::Corruption("unresolvable value pointer");
      } else {
        resolve_status_ = vlog_->ReadValue(ptr, &resolved_value_);
      }
      if (!resolve_status_.ok() && status_.ok()) status_ = resolve_status_;
    }
    return resolve_status_.ok() ? Slice(resolved_value_) : Slice();
  }

  Status status() const override {
    return status_.ok() ? iter_->status() : status_;
  }

  void Next() override {
    if (!valid_) return;
    InvalidateResolvedValue();
    if (direction_ == Direction::kReverse) {
      direction_ = Direction::kForward;
      // iter_ is before the entries of saved_key_; advance onto them.
      if (!iter_->Valid()) iter_->SeekToFirst();
      else iter_->Next();
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        return;
      }
      // Skip remaining versions of saved_key_ inside FindNextUserEntry.
    } else {
      // Remember the current user key, then skip its other versions.
      SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
      iter_->Next();
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        return;
      }
    }
    FindNextUserEntry(/*skipping=*/true, &saved_key_);
  }

  void Prev() override {
    if (!valid_) return;
    InvalidateResolvedValue();
    if (direction_ == Direction::kForward) {
      // iter_ points at the current entry; back it up before all entries of
      // the current user key.
      SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
      for (;;) {
        iter_->Prev();
        if (!iter_->Valid()) {
          valid_ = false;
          saved_key_.clear();
          ClearSavedValue();
          return;
        }
        if (user_comparator_->Compare(ExtractUserKey(iter_->key()),
                                      Slice(saved_key_)) < 0) {
          break;
        }
      }
      direction_ = Direction::kReverse;
    }
    FindPrevUserEntry();
  }

  void Seek(const Slice& target) override {
    direction_ = Direction::kForward;
    InvalidateResolvedValue();
    ClearSavedValue();
    saved_key_.clear();
    AppendInternalKey(&saved_key_, target, sequence_, kValueTypeForSeek);
    iter_->Seek(Slice(saved_key_));
    if (iter_->Valid()) {
      saved_key_.clear();
      FindNextUserEntry(/*skipping=*/false, &saved_key_);
    } else {
      valid_ = false;
    }
  }

  void SeekToFirst() override {
    direction_ = Direction::kForward;
    InvalidateResolvedValue();
    ClearSavedValue();
    iter_->SeekToFirst();
    if (iter_->Valid()) {
      saved_key_.clear();
      FindNextUserEntry(/*skipping=*/false, &saved_key_);
    } else {
      valid_ = false;
    }
  }

  void SeekToLast() override {
    direction_ = Direction::kReverse;
    InvalidateResolvedValue();
    ClearSavedValue();
    iter_->SeekToLast();
    FindPrevUserEntry();
  }

 private:
  // Positions iter_ at the next visible, non-deleted user entry. When
  // `skipping`, entries with user key <= *skip are passed over.
  void FindNextUserEntry(bool skipping, std::string* skip) {
    do {
      ParsedInternalKey ikey;
      if (ParseIkey(&ikey) && ikey.sequence <= sequence_) {
        switch (ikey.type) {
          case ValueType::kDeletion:
            // All older versions of this key are shadowed.
            SaveKey(ikey.user_key, skip);
            skipping = true;
            break;
          case ValueType::kValue:
          case ValueType::kValuePointer:
            if (skipping &&
                user_comparator_->Compare(ikey.user_key, Slice(*skip)) <= 0) {
              break;  // shadowed by a newer deletion or already yielded
            }
            valid_ = true;
            current_is_pointer_ = ikey.type == ValueType::kValuePointer;
            saved_key_.clear();
            return;
        }
      }
      iter_->Next();
    } while (iter_->Valid());
    saved_key_.clear();
    valid_ = false;
  }

  // Scans backwards to position at the previous visible user entry, leaving
  // iter_ just before its versions and the entry in saved_key_/value_.
  void FindPrevUserEntry() {
    ValueType value_type = ValueType::kDeletion;  // pretend deletion at start
    if (iter_->Valid()) {
      do {
        ParsedInternalKey ikey;
        if (ParseIkey(&ikey) && ikey.sequence <= sequence_) {
          if (value_type != ValueType::kDeletion &&
              user_comparator_->Compare(ikey.user_key, Slice(saved_key_)) < 0) {
            break;  // we've moved past the entry we want
          }
          value_type = ikey.type;
          if (value_type == ValueType::kDeletion) {
            saved_key_.clear();
            ClearSavedValue();
          } else {
            SaveKey(ikey.user_key, &saved_key_);
            saved_value_.assign(iter_->value().data(), iter_->value().size());
            saved_is_pointer_ = ikey.type == ValueType::kValuePointer;
          }
        }
        iter_->Prev();
      } while (iter_->Valid());
    }

    if (value_type == ValueType::kDeletion) {
      valid_ = false;
      saved_key_.clear();
      ClearSavedValue();
      direction_ = Direction::kForward;
    } else {
      valid_ = true;
    }
  }

  bool ParseIkey(ParsedInternalKey* ikey) {
    if (!ParseInternalKey(iter_->key(), ikey)) {
      status_ = Status::Corruption("corrupted internal key in DBIter");
      return false;
    }
    return true;
  }

  static void SaveKey(const Slice& k, std::string* dst) {
    dst->assign(k.data(), k.size());
  }

  void ClearSavedValue() {
    saved_value_.clear();
    saved_value_.shrink_to_fit();
    saved_is_pointer_ = false;
  }

  void InvalidateResolvedValue() {
    resolved_ = false;
    resolved_value_.clear();
    resolve_status_ = Status::OK();
    current_is_pointer_ = false;
  }

  const Comparator* const user_comparator_;
  std::unique_ptr<Iterator> iter_;
  SequenceNumber const sequence_;
  const ValueLog* const vlog_;

  mutable Status status_;
  std::string saved_key_;
  std::string saved_value_;
  Direction direction_ = Direction::kForward;
  bool valid_ = false;
  bool current_is_pointer_ = false;
  bool saved_is_pointer_ = false;
  // Lazy pointer-resolution cache for the current position (value() is
  // const; Valid()/key()/value() may not be called concurrently anyway).
  mutable bool resolved_ = false;
  mutable std::string resolved_value_;
  mutable Status resolve_status_;
};

}  // namespace

Iterator* NewDBIterator(const Comparator* user_comparator,
                        Iterator* internal_iter, SequenceNumber sequence,
                        const ValueLog* vlog) {
  return new DBIter(user_comparator, internal_iter, sequence, vlog);
}

}  // namespace lsmio::lsm
