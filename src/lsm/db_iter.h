// DBIter: turns the merged internal-key stream (memtables + tables) into a
// user-facing iterator — collapsing versions per user key, honouring the
// read snapshot, and hiding deletion tombstones.
#pragma once

#include "lsm/dbformat.h"
#include "lsm/iterator.h"

namespace lsmio::lsm {

class ValueLog;

/// Takes ownership of `internal_iter`. Entries with sequence > `sequence`
/// are invisible. kValuePointer entries are resolved lazily through `vlog`
/// on the first value() call per position (key()-only scans never touch
/// the blob segments); `vlog` may be null for stores without a value log
/// and must outlive the iterator. Resolution failures latch into status().
Iterator* NewDBIterator(const Comparator* user_comparator,
                        Iterator* internal_iter, SequenceNumber sequence,
                        const ValueLog* vlog = nullptr);

}  // namespace lsmio::lsm
