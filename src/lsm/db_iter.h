// DBIter: turns the merged internal-key stream (memtables + tables) into a
// user-facing iterator — collapsing versions per user key, honouring the
// read snapshot, and hiding deletion tombstones.
#pragma once

#include "lsm/dbformat.h"
#include "lsm/iterator.h"

namespace lsmio::lsm {

/// Takes ownership of `internal_iter`. Entries with sequence > `sequence`
/// are invisible.
Iterator* NewDBIterator(const Comparator* user_comparator,
                        Iterator* internal_iter, SequenceNumber sequence);

}  // namespace lsmio::lsm
