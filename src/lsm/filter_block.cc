#include "lsm/filter_block.h"

#include "common/coding.h"

namespace lsmio::lsm {

// Generate a new filter every 2 KiB of table offset space.
static constexpr size_t kFilterBaseLg = 11;
static constexpr size_t kFilterBase = 1 << kFilterBaseLg;

FilterBlockBuilder::FilterBlockBuilder(const FilterPolicy* policy)
    : policy_(policy) {}

void FilterBlockBuilder::StartBlock(uint64_t block_offset) {
  const uint64_t filter_index = block_offset / kFilterBase;
  while (filter_index > filter_offsets_.size()) GenerateFilter();
}

void FilterBlockBuilder::AddKey(const Slice& key) {
  key_starts_.push_back(keys_.size());
  keys_.append(key.data(), key.size());
}

Slice FilterBlockBuilder::Finish() {
  if (!key_starts_.empty()) GenerateFilter();

  const uint32_t array_offset = static_cast<uint32_t>(result_.size());
  for (const uint32_t off : filter_offsets_) PutFixed32(&result_, off);
  PutFixed32(&result_, array_offset);
  result_.push_back(static_cast<char>(kFilterBaseLg));
  return Slice(result_);
}

void FilterBlockBuilder::GenerateFilter() {
  const size_t num_keys = key_starts_.size();
  if (num_keys == 0) {
    // No keys for this filter range: record an empty filter.
    filter_offsets_.push_back(static_cast<uint32_t>(result_.size()));
    return;
  }
  key_starts_.push_back(keys_.size());  // sentinel

  std::vector<Slice> tmp_keys(num_keys);
  for (size_t i = 0; i < num_keys; ++i) {
    tmp_keys[i] = Slice(keys_.data() + key_starts_[i],
                        key_starts_[i + 1] - key_starts_[i]);
  }

  filter_offsets_.push_back(static_cast<uint32_t>(result_.size()));
  policy_->CreateFilter(tmp_keys.data(), static_cast<int>(num_keys), &result_);

  keys_.clear();
  key_starts_.clear();
}

FilterBlockReader::FilterBlockReader(const FilterPolicy* policy,
                                     const Slice& contents)
    : policy_(policy) {
  const size_t n = contents.size();
  if (n < 5) return;  // 4-byte array offset + 1-byte base_lg at minimum
  base_lg_ = static_cast<unsigned char>(contents[n - 1]);
  const uint32_t array_offset = DecodeFixed32(contents.data() + n - 5);
  if (array_offset > n - 5) return;
  data_ = contents.data();
  offset_ = data_ + array_offset;
  num_ = (n - 5 - array_offset) / 4;
}

bool FilterBlockReader::KeyMayMatch(uint64_t block_offset, const Slice& key) const {
  const uint64_t index = block_offset >> base_lg_;
  if (index < num_) {
    const uint32_t start = DecodeFixed32(offset_ + index * 4);
    const uint32_t limit = DecodeFixed32(offset_ + index * 4 + 4);
    if (start <= limit &&
        limit <= static_cast<uint32_t>(offset_ - data_)) {
      const Slice filter(data_ + start, limit - start);
      return policy_->KeyMayMatch(key, filter);
    }
    if (start == limit) return false;  // empty filter: no keys in range
  }
  return true;  // errors are treated as potential matches
}

}  // namespace lsmio::lsm
