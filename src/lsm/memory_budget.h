// Global write-memory pool: the engine-side interface of the MemoryArbiter
// (src/core/memory_arbiter.h).
//
// When Options::write_memory_pool is set, a DB no longer switches memtables
// at a fixed per-store write_buffer_size. Instead every DB (every shard of
// every store) attaches to the pool, reports its memtable residency after
// each write group and each flush, and switches only when (a) the pool picks
// it as a flush victim because *aggregate* usage crossed the budget, or
// (b) its own memtable hits the pool's per-attachment hard cap (which bounds
// single-flush size and recovery time). Cold tenants therefore cede memory
// to hot ones instead of hoarding fixed slices — the adaptive-memory design
// from "Breaking Down Memory Walls" (PAPERS.md), see DESIGN.md §15.
//
// Threading contract:
//  - All methods are thread-safe.
//  - The victim callback passed to Attach() is invoked with the pool's
//    internal mutex held and NO DB mutex held. It must not block and must
//    not acquire any DB mutex: the expected implementation sets an atomic
//    flag and schedules a background task. (Lock order: DB.mu_ -> pool
//    mutex -> thread-pool mutex.)
//  - After Detach() returns, the attachment's callback is never invoked
//    again; UpdateUsage() on a detached id is a no-op (late flush
//    completions may still report).
#pragma once

#include <cstdint>
#include <functional>

namespace lsmio::lsm {

class WriteMemoryPool {
 public:
  virtual ~WriteMemoryPool() = default;

  /// Registers one DB under `tenant_id` (many attachments may share a
  /// tenant: one per shard). `request_flush` is the victim callback; it
  /// must remain valid until Detach() returns. Returns a nonzero
  /// attachment id.
  virtual uint64_t Attach(uint64_t tenant_id,
                          std::function<void()> request_flush) = 0;

  /// Removes the attachment and returns its charged bytes to the pool.
  virtual void Detach(uint64_t attachment_id) = 0;

  /// Reports the attachment's current memtable residency (active +
  /// immutable bytes). `wrote` marks write activity for the cold-first
  /// victim policy. May synchronously invoke victim callbacks — possibly
  /// the caller's own.
  virtual void UpdateUsage(uint64_t attachment_id, uint64_t bytes,
                           bool wrote) = 0;

  /// Hard per-memtable ceiling: an attachment switches its memtable past
  /// this size regardless of global pressure.
  [[nodiscard]] virtual uint64_t AttachmentCap() const = 0;

  /// Global pressure in [0, 1] for graduated backpressure: 0 below the
  /// flush watermark, rising to 1 as aggregate usage reaches the full
  /// budget. Fed into WriteController::SetGlobalPressure so budget
  /// pressure paces writers instead of hard-stalling them.
  [[nodiscard]] virtual double GlobalPressure() const = 0;

  /// Aggregate reported bytes across all attachments.
  [[nodiscard]] virtual uint64_t TotalUsage() const = 0;

  /// The configured write budget in bytes.
  [[nodiscard]] virtual uint64_t Budget() const = 0;
};

}  // namespace lsmio::lsm
