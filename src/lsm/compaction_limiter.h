// CompactionLimiter: the fairness cap on compactions running concurrently
// across the shards of one store. Every shard asks for a slot before
// submitting compaction work to the shared background pool; when all slots
// are taken the shard parks a retry callback and is re-dispatched (FIFO)
// as slots free up. Combined with each shard's own at-most-one-compaction
// scheduling flag this bounds a store at `max_concurrent` compactions
// total while guaranteeing a hot shard can never hold more than one slot.
//
// The limiter also tracks how many granted compactions are *executing*
// right now (slot held and the compaction body actually running, not just
// queued in the pool) plus the high-water mark, which is what the
// DbStats concurrent-compaction gauges report.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/synchronization.h"

namespace lsmio::lsm {

class CompactionLimiter {
 public:
  explicit CompactionLimiter(int max_concurrent)
      : max_concurrent_(max_concurrent < 1 ? 1 : max_concurrent) {}

  CompactionLimiter(const CompactionLimiter&) = delete;
  CompactionLimiter& operator=(const CompactionLimiter&) = delete;

  /// Tries to take a slot for `token` (the requesting shard). On success
  /// the caller must pair it with Finish(). On failure `retry` is queued
  /// and will be invoked — with no limiter or shard mutex held — once a
  /// slot frees up; the callback should re-attempt scheduling.
  bool TryStart(void* token, std::function<void()> retry) EXCLUDES(mu_);

  /// Releases a slot and dispatches queued waiters that now fit.
  void Finish() EXCLUDES(mu_);

  /// Drops every queued waiter registered by `token` and blocks until any
  /// in-flight dispatch of one of its callbacks has returned. Must be
  /// called before the token's owner is destroyed.
  void Cancel(void* token) EXCLUDES(mu_);

  /// Brackets the actual execution of a granted compaction; drives the
  /// executing/peak gauges below.
  void BeginExecute() EXCLUDES(mu_);
  void EndExecute() EXCLUDES(mu_);

  [[nodiscard]] uint64_t executing() const EXCLUDES(mu_);
  [[nodiscard]] uint64_t peak_executing() const EXCLUDES(mu_);
  [[nodiscard]] int max_concurrent() const { return max_concurrent_; }

 private:
  struct Waiter {
    void* token;
    std::function<void()> retry;
  };

  const int max_concurrent_;
  mutable Mutex mu_;
  CondVar cv_{&mu_};  // signalled when invoking_ clears (see Cancel)
  int running_ GUARDED_BY(mu_) = 0;   // slots handed out
  uint64_t executing_ GUARDED_BY(mu_) = 0;
  uint64_t peak_executing_ GUARDED_BY(mu_) = 0;
  void* invoking_ GUARDED_BY(mu_) = nullptr;  // token whose retry is running
  std::deque<Waiter> waiters_ GUARDED_BY(mu_);
};

}  // namespace lsmio::lsm
