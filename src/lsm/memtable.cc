#include "lsm/memtable.h"

#include <cstring>

#include "common/coding.h"

namespace lsmio::lsm {

namespace {

// Memtable record layout (all in one arena allocation):
//   varint32(internal_key_len) | internal_key | varint32(value_len) | value
Slice GetLengthPrefixed(const char* data) {
  uint32_t len = 0;
  const char* p = GetVarint32Ptr(data, data + kMaxVarint32Bytes, &len);
  return Slice(p, len);
}

}  // namespace

MemTable::MemTable(const InternalKeyComparator& cmp)
    : comparator_(cmp), table_(comparator_, &arena_) {}

int MemTable::KeyComparator::operator()(const char* a, const char* b) const {
  const Slice ak = GetLengthPrefixed(a);
  const Slice bk = GetLengthPrefixed(b);
  return comparator.Compare(ak, bk);
}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& user_key,
                   const Slice& value) {
  const size_t user_key_size = user_key.size();
  const size_t internal_key_size = user_key_size + 8;
  const size_t value_size = value.size();
  const size_t encoded_len = static_cast<size_t>(VarintLength(internal_key_size)) +
                             internal_key_size +
                             static_cast<size_t>(VarintLength(value_size)) +
                             value_size;
  char* buf = arena_.Allocate(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  std::memcpy(p, user_key.data(), user_key_size);
  p += user_key_size;
  EncodeFixed64(p, PackSequenceAndType(seq, type));
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(value_size));
  std::memcpy(p, value.data(), value_size);
  table_.Insert(buf);
  entries_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(const LookupKey& key, std::string* value, Status* s,
                   bool* is_pointer) {
  const Slice memkey = key.memtable_key();
  Table::Iterator iter(&table_);
  iter.Seek(memkey.data());
  if (!iter.Valid()) return false;

  // Seek landed on the first entry >= (user_key, seq): check user key match.
  const char* entry = iter.key();
  uint32_t key_length = 0;
  const char* key_ptr = GetVarint32Ptr(entry, entry + kMaxVarint32Bytes, &key_length);
  const Slice entry_user_key(key_ptr, key_length - 8);
  if (comparator_.comparator.user_comparator()->Compare(entry_user_key,
                                                        key.user_key()) != 0) {
    return false;
  }
  const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
  switch (static_cast<ValueType>(tag & 0xff)) {
    case ValueType::kValuePointer:
      if (is_pointer != nullptr) *is_pointer = true;
      [[fallthrough]];
    case ValueType::kValue: {
      const Slice v = GetLengthPrefixed(key_ptr + key_length);
      value->assign(v.data(), v.size());
      *s = Status::OK();
      return true;
    }
    case ValueType::kDeletion:
      *s = Status::NotFound("deleted");
      return true;
  }
  return false;
}

class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(MemTable::Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& internal_key) override {
    // Build a length-prefixed seek key.
    scratch_.clear();
    PutVarint32(&scratch_, static_cast<uint32_t>(internal_key.size()));
    scratch_.append(internal_key.data(), internal_key.size());
    iter_.Seek(scratch_.data());
  }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override { return GetLengthPrefixed(iter_.key()); }
  Slice value() const override {
    const Slice k = GetLengthPrefixed(iter_.key());
    return GetLengthPrefixed(k.data() + k.size());
  }
  Status status() const override { return Status::OK(); }

 private:
  static Slice GetLengthPrefixed(const char* data) {
    uint32_t len = 0;
    const char* p = GetVarint32Ptr(data, data + kMaxVarint32Bytes, &len);
    return Slice(p, len);
  }

  MemTable::Table::Iterator iter_;
  std::string scratch_;
};

Iterator* MemTable::NewIterator() { return new MemTableIterator(&table_); }

}  // namespace lsmio::lsm
