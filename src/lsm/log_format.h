// WAL / manifest log physical format: fixed-size blocks, each record split
// into fragments with a 7-byte header: crc32c(4) | length(2) | type(1).
#pragma once

#include <cstdint>

namespace lsmio::lsm::log {

enum class RecordType : uint8_t {
  kZero = 0,  // preallocated-space filler
  kFull = 1,
  kFirst = 2,
  kMiddle = 3,
  kLast = 4,
};

inline constexpr int kMaxRecordType = static_cast<int>(RecordType::kLast);
inline constexpr size_t kBlockSize = 32768;
inline constexpr size_t kHeaderSize = 4 + 2 + 1;

}  // namespace lsmio::lsm::log
