#include "lsm/table_cache.h"

#include "common/coding.h"
#include "lsm/dbformat.h"
#include "lsm/table.h"
#include "vfs/posix_vfs.h"

namespace lsmio::lsm {

namespace {

struct TableAndFile {
  std::unique_ptr<vfs::RandomAccessFile> file;
  std::unique_ptr<Table> table;
};

void DeleteEntry(const Slice&, void* value) {
  delete static_cast<TableAndFile*>(value);
}

}  // namespace

TableCache::TableCache(std::string dbname, const Options& options,
                       const Comparator* icmp, const FilterPolicy* filter_policy,
                       Cache* block_cache, int entries, ReadCounters* counters)
    : dbname_(std::move(dbname)),
      options_(options),
      icmp_(icmp),
      filter_policy_(filter_policy),
      block_cache_(block_cache),
      counters_(counters),
      cache_(NewLRUCache(static_cast<size_t>(entries))) {}

TableCache::~TableCache() = default;

Status TableCache::FindTable(uint64_t file_number, uint64_t file_size,
                             Cache::Handle** handle) {
  char buf[8];
  EncodeFixed64(buf, file_number);
  const Slice key(buf, sizeof buf);
  *handle = cache_->Lookup(key);
  if (*handle != nullptr) return Status::OK();

  vfs::Vfs& fs = options_.vfs != nullptr ? *options_.vfs : vfs::PosixVfs();
  const std::string fname = TableFileName(dbname_, file_number);
  auto tf = std::make_unique<TableAndFile>();
  vfs::OpenOptions open_opts;
  open_opts.use_mmap = options_.use_mmap;
  LSMIO_RETURN_IF_ERROR(fs.NewRandomAccessFile(fname, open_opts, &tf->file));
  LSMIO_RETURN_IF_ERROR(Table::Open(options_, icmp_, filter_policy_,
                                    block_cache_,
                                    block_cache_ ? block_cache_->NewId() : 0,
                                    tf->file.get(), file_size, &tf->table,
                                    counters_));
  // Charge 1 per table: the cache capacity is "number of open tables".
  *handle = cache_->Insert(key, tf.release(), 1, DeleteEntry);
  return Status::OK();
}

Iterator* TableCache::NewIterator(const ReadOptions& options,
                                  uint64_t file_number, uint64_t file_size,
                                  Table** tableptr) {
  if (tableptr != nullptr) *tableptr = nullptr;

  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) return NewErrorIterator(s);

  auto* tf = static_cast<TableAndFile*>(cache_->Value(handle));
  Iterator* result = tf->table->NewIterator(options);
  Cache* cache = cache_.get();
  result->RegisterCleanup([cache, handle] { cache->Release(handle); });
  if (tableptr != nullptr) *tableptr = tf->table.get();
  return result;
}

Status TableCache::Get(
    const ReadOptions& options, uint64_t file_number, uint64_t file_size,
    const Slice& internal_key,
    const std::function<void(const Slice&, const Slice&)>& handle_result) {
  Cache::Handle* handle = nullptr;
  LSMIO_RETURN_IF_ERROR(FindTable(file_number, file_size, &handle));
  auto* tf = static_cast<TableAndFile*>(cache_->Value(handle));
  Status s = tf->table->InternalGet(options, internal_key, handle_result);
  cache_->Release(handle);
  return s;
}

Status TableCache::MultiGet(
    const ReadOptions& options, uint64_t file_number, uint64_t file_size,
    std::span<const Slice> internal_keys,
    const std::function<void(size_t, const Slice&, const Slice&)>& handle_result) {
  Cache::Handle* handle = nullptr;
  LSMIO_RETURN_IF_ERROR(FindTable(file_number, file_size, &handle));
  auto* tf = static_cast<TableAndFile*>(cache_->Value(handle));
  Status s = tf->table->MultiGet(options, internal_keys, handle_result);
  cache_->Release(handle);
  return s;
}

void TableCache::Evict(uint64_t file_number) {
  char buf[8];
  EncodeFixed64(buf, file_number);
  cache_->Erase(Slice(buf, sizeof buf));
}

}  // namespace lsmio::lsm
