#include "lsm/compaction_limiter.h"

#include <algorithm>
#include <utility>

namespace lsmio::lsm {

bool CompactionLimiter::TryStart(void* token, std::function<void()> retry) {
  MutexLock lock(&mu_);
  if (running_ < max_concurrent_) {
    ++running_;
    return true;
  }
  waiters_.push_back({token, std::move(retry)});
  return false;
}

void CompactionLimiter::Finish() {
  MutexLock lock(&mu_);
  --running_;
  // Dispatch waiters until the slots are full again. Only the waiters
  // queued at entry are considered: a retry that immediately re-queues
  // itself (e.g. the shard turned read-only between park and dispatch and
  // its TryStart path bails) cannot spin this loop forever.
  size_t budget = waiters_.size();
  while (budget-- > 0 && running_ < max_concurrent_ && !waiters_.empty()) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    // The callback re-enters TryStart (and the shard's scheduling path),
    // so it must run with mu_ released. invoking_ lets Cancel() wait out
    // a callback of its token that is mid-flight here.
    invoking_ = w.token;
    lock.Unlock();
    w.retry();
    lock.Lock();
    invoking_ = nullptr;
    cv_.SignalAll();
  }
}

void CompactionLimiter::Cancel(void* token) {
  MutexLock lock(&mu_);
  for (auto it = waiters_.begin(); it != waiters_.end();) {
    it = it->token == token ? waiters_.erase(it) : std::next(it);
  }
  while (invoking_ == token) cv_.Wait();
}

void CompactionLimiter::BeginExecute() {
  MutexLock lock(&mu_);
  ++executing_;
  peak_executing_ = std::max(peak_executing_, executing_);
}

void CompactionLimiter::EndExecute() {
  MutexLock lock(&mu_);
  --executing_;
}

uint64_t CompactionLimiter::executing() const {
  MutexLock lock(&mu_);
  return executing_;
}

uint64_t CompactionLimiter::peak_executing() const {
  MutexLock lock(&mu_);
  return peak_executing_;
}

}  // namespace lsmio::lsm
