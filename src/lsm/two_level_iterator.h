// Iterator over an index whose values locate data blocks: positions the
// index first, then iterates within the located block.
#pragma once

#include <functional>

#include "lsm/iterator.h"
#include "lsm/options.h"

namespace lsmio::lsm {

/// `block_function(index_value)` returns an iterator over the data block the
/// index entry points at. Takes ownership of `index_iter`.
Iterator* NewTwoLevelIterator(
    Iterator* index_iter,
    std::function<Iterator*(const ReadOptions&, const Slice&)> block_function,
    const ReadOptions& options);

}  // namespace lsmio::lsm
