// Filter policy abstraction + built-in bloom filter, used by SSTables to
// skip disk probes for absent keys (point lookups are the read pattern the
// paper's K/V interface produces).
#pragma once

#include <string>
#include <vector>

#include "common/slice.h"

namespace lsmio::lsm {

class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;

  /// Stable name stored in the table; mismatches disable filtering on read.
  [[nodiscard]] virtual const char* Name() const = 0;

  /// Appends to *dst a filter summarizing keys[0..n-1].
  virtual void CreateFilter(const Slice* keys, int n, std::string* dst) const = 0;

  /// True if the key may be in the filter's set (false positives allowed,
  /// false negatives not).
  [[nodiscard]] virtual bool KeyMayMatch(const Slice& key, const Slice& filter) const = 0;
};

/// Bloom filter with ~bits_per_key bits per key (~1% FP rate at 10).
/// Caller owns the returned pointer.
const FilterPolicy* NewBloomFilterPolicy(int bits_per_key);

}  // namespace lsmio::lsm
