#include "lsm/block.h"

#include <cassert>

#include "common/coding.h"

namespace lsmio::lsm {

uint32_t Block::NumRestarts() const noexcept {
  assert(data_.size() >= sizeof(uint32_t));
  return DecodeFixed32(data_.data() + data_.size() - sizeof(uint32_t));
}

Block::Block(std::string contents) : contents_(std::move(contents)) {
  data_ = Slice(contents_);
  Init();
}

Block::Block(const Slice& contents) : data_(contents) { Init(); }

void Block::Init() {
  if (data_.size() < sizeof(uint32_t)) {
    malformed_ = true;
    return;
  }
  const uint32_t num_restarts = NumRestarts();
  const size_t max_restarts = (data_.size() - sizeof(uint32_t)) / sizeof(uint32_t);
  if (num_restarts > max_restarts) {
    malformed_ = true;
    return;
  }
  restart_offset_ = static_cast<uint32_t>(data_.size()) -
                    (1 + num_restarts) * sizeof(uint32_t);
}

namespace {

// Decodes the entry header at p: shared, non_shared, value_length.
// Returns pointer to the non-shared key bytes, or nullptr on corruption.
const char* DecodeEntry(const char* p, const char* limit, uint32_t* shared,
                        uint32_t* non_shared, uint32_t* value_length) {
  if (limit - p < 3) return nullptr;
  // Fast path: all three lengths in one byte each.
  *shared = static_cast<unsigned char>(p[0]);
  *non_shared = static_cast<unsigned char>(p[1]);
  *value_length = static_cast<unsigned char>(p[2]);
  if ((*shared | *non_shared | *value_length) < 128) {
    p += 3;
  } else {
    if ((p = GetVarint32Ptr(p, limit, shared)) == nullptr) return nullptr;
    if ((p = GetVarint32Ptr(p, limit, non_shared)) == nullptr) return nullptr;
    if ((p = GetVarint32Ptr(p, limit, value_length)) == nullptr) return nullptr;
  }
  if (static_cast<uint32_t>(limit - p) < (*non_shared + *value_length)) {
    return nullptr;
  }
  return p;
}

}  // namespace

class Block::Iter final : public Iterator {
 public:
  Iter(const Comparator* comparator, const char* data, uint32_t restarts,
       uint32_t num_restarts)
      : comparator_(comparator),
        data_(data),
        restarts_(restarts),
        num_restarts_(num_restarts),
        current_(restarts),
        restart_index_(num_restarts) {
    assert(num_restarts_ > 0);
  }

  bool Valid() const override { return current_ < restarts_; }
  Status status() const override { return status_; }
  Slice key() const override {
    assert(Valid());
    return Slice(key_);
  }
  Slice value() const override {
    assert(Valid());
    return value_;
  }

  void Next() override {
    assert(Valid());
    ParseNextKey();
  }

  void Prev() override {
    assert(Valid());
    // Find the restart point strictly before current_, then scan forward.
    const uint32_t original = current_;
    while (GetRestartPoint(restart_index_) >= original) {
      if (restart_index_ == 0) {
        current_ = restarts_;
        restart_index_ = num_restarts_;
        return;  // before first entry
      }
      --restart_index_;
    }
    SeekToRestartPoint(restart_index_);
    do {
    } while (ParseNextKey() && NextEntryOffset() < original);
  }

  void Seek(const Slice& target) override {
    // Binary search over restart points for the last one with key < target.
    uint32_t left = 0;
    uint32_t right = num_restarts_ - 1;
    while (left < right) {
      const uint32_t mid = (left + right + 1) / 2;
      const uint32_t region_offset = GetRestartPoint(mid);
      uint32_t shared, non_shared, value_length;
      const char* key_ptr =
          DecodeEntry(data_ + region_offset, data_ + restarts_, &shared,
                      &non_shared, &value_length);
      if (key_ptr == nullptr || shared != 0) {
        CorruptionError();
        return;
      }
      const Slice mid_key(key_ptr, non_shared);
      if (comparator_->Compare(mid_key, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    SeekToRestartPoint(left);
    // Linear scan to the first key >= target.
    for (;;) {
      if (!ParseNextKey()) return;
      if (comparator_->Compare(Slice(key_), target) >= 0) return;
    }
  }

  void SeekToFirst() override {
    SeekToRestartPoint(0);
    ParseNextKey();
  }

  void SeekToLast() override {
    SeekToRestartPoint(num_restarts_ - 1);
    while (ParseNextKey() && NextEntryOffset() < restarts_) {
    }
  }

 private:
  [[nodiscard]] uint32_t NextEntryOffset() const {
    return static_cast<uint32_t>((value_.data() + value_.size()) - data_);
  }

  [[nodiscard]] uint32_t GetRestartPoint(uint32_t index) const {
    assert(index < num_restarts_);
    return DecodeFixed32(data_ + restarts_ + index * sizeof(uint32_t));
  }

  void SeekToRestartPoint(uint32_t index) {
    key_.clear();
    restart_index_ = index;
    // value_ is positioned so NextEntryOffset() lands on the restart point.
    const uint32_t offset = GetRestartPoint(index);
    value_ = Slice(data_ + offset, 0);
  }

  void CorruptionError() {
    current_ = restarts_;
    restart_index_ = num_restarts_;
    status_ = Status::Corruption("bad entry in block");
    key_.clear();
    value_.clear();
  }

  bool ParseNextKey() {
    current_ = NextEntryOffset();
    const char* p = data_ + current_;
    const char* limit = data_ + restarts_;
    if (p >= limit) {
      // No more entries.
      current_ = restarts_;
      restart_index_ = num_restarts_;
      return false;
    }
    uint32_t shared, non_shared, value_length;
    p = DecodeEntry(p, limit, &shared, &non_shared, &value_length);
    if (p == nullptr || key_.size() < shared) {
      CorruptionError();
      return false;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = Slice(p + non_shared, value_length);
    while (restart_index_ + 1 < num_restarts_ &&
           GetRestartPoint(restart_index_ + 1) < current_) {
      ++restart_index_;
    }
    return true;
  }

  const Comparator* const comparator_;
  const char* const data_;
  const uint32_t restarts_;
  const uint32_t num_restarts_;

  uint32_t current_;
  uint32_t restart_index_;
  std::string key_;
  Slice value_;
  Status status_;
};

Iterator* Block::NewIterator(const Comparator* cmp) {
  if (malformed_) {
    return NewErrorIterator(Status::Corruption("bad block contents"));
  }
  const uint32_t num_restarts = NumRestarts();
  if (num_restarts == 0) return NewEmptyIterator();
  return new Iter(cmp, data_.data(), restart_offset_, num_restarts);
}

}  // namespace lsmio::lsm
