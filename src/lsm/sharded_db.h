// ShardedDB: N parallel sub-LSMs behind the DB interface. The keyspace is
// hash-partitioned (Hash64 with a fixed seed, mod N) across N DBImpl
// instances living in shard-NNN subdirectories of the store path, each
// with its own memtable, WAL, manifest and version state:
//
//   name/SHARDS            marker: format version + shard count
//   name/shard-000/        full DBImpl directory (CURRENT, MANIFEST-*, ...)
//   name/shard-001/
//   ...
//
// Writes split per shard and group-commit independently (N concurrent WAL
// fsyncs); MultiGet partitions the batch and scatters results back;
// iterators merge the per-shard iterators with the user comparator (the
// shards hold disjoint keys, so no dedup is needed). Flushes and
// compactions from different shards run concurrently on one shared
// background pool, with a store-wide CompactionLimiter capping concurrent
// compactions (fairness: each shard runs at most one, so a hot shard can
// never starve the rest).
//
// The shard count is fixed at creation (recorded in SHARDS); reopening
// with a different num_shards fails with InvalidArgument, in both
// directions — including opening a pre-sharding store with num_shards > 1.
//
// Caveats vs a single DBImpl: a WriteBatch spanning shards is atomic per
// shard but not across shards, and raw ReadOptions::snapshot_sequence
// values are per-shard and therefore rejected on sharded reads (use
// GetSnapshot, which pins every shard).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "lsm/compaction_limiter.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"

namespace lsmio::lsm {

/// Path of the shard-layout marker file for the store at `dbname`.
std::string ShardsMarkerFileName(const std::string& dbname);

/// Directory of shard `shard` of the store at `dbname`.
std::string ShardDirName(const std::string& dbname, int shard);

/// Reads the SHARDS marker. NotFound when the store is not sharded (or
/// does not exist); Corruption when the marker cannot be parsed.
Status ReadShardsMarker(vfs::Vfs& fs, const std::string& dbname,
                        int* num_shards);

class ShardedDB final : public DB {
 public:
  /// Opens/creates the sharded store; options.num_shards must be > 1 and
  /// match the on-disk marker when one exists.
  static Status Open(const Options& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  /// Removes every shard's files plus the SHARDS marker.
  static Status DestroyShards(const Options& options, const std::string& name,
                              int num_shards);

  ~ShardedDB() override;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Status MultiGet(const ReadOptions& options, std::span<const Slice> keys,
                  std::vector<std::string>* values,
                  std::vector<Status>* statuses) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status FlushMemTable(bool wait) override;
  using DB::CompactRange;
  Status CompactRange(const Slice* begin, const Slice* end) override;
  Status HealthStatus() const override;
  DbStats GetStats() const override;
  void GetShardStats(std::vector<DbStats>* out) const override;
  uint64_t ApproximateMemoryUsage() const override;

 private:
  struct ShardedSnapshot;

  ShardedDB(const Options& options, const std::string& name);

  [[nodiscard]] size_t ShardOf(const Slice& key) const;
  [[nodiscard]] vfs::Vfs& fs() const;

  Options options_;
  std::string dbname_;
  const Comparator* user_comparator_;

  // Destruction order (reverse of declaration): shards_ first — each
  // shard's destructor drains its background work, which needs the pool,
  // limiter and rate limiter alive — then the pool, then the limiters.
  std::unique_ptr<CompactionLimiter> limiter_;
  /// Store-wide background-I/O byte budget shared by every shard's flushes
  /// and compactions; null when Options::bytes_per_sec == 0 (unlimited).
  std::unique_ptr<RateLimiter> rate_limiter_;
  std::unique_ptr<ThreadPool> bg_pool_;
  std::vector<std::unique_ptr<DBImpl>> shards_;
};

}  // namespace lsmio::lsm
