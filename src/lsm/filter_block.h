// Filter block: one bloom filter per 2 KiB of table data offset range,
// stored after the data blocks and located through the metaindex.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "lsm/filter_policy.h"

namespace lsmio::lsm {

class FilterBlockBuilder {
 public:
  explicit FilterBlockBuilder(const FilterPolicy* policy);

  FilterBlockBuilder(const FilterBlockBuilder&) = delete;
  FilterBlockBuilder& operator=(const FilterBlockBuilder&) = delete;

  /// Called when a data block starts at `block_offset`.
  void StartBlock(uint64_t block_offset);
  void AddKey(const Slice& key);
  Slice Finish();

 private:
  void GenerateFilter();

  const FilterPolicy* policy_;
  std::string keys_;               // flattened key bytes
  std::vector<size_t> key_starts_; // start offset of each key in keys_
  std::string result_;             // filter data so far
  std::vector<uint32_t> filter_offsets_;
};

class FilterBlockReader {
 public:
  /// `contents` must outlive the reader (it points into the pinned block).
  FilterBlockReader(const FilterPolicy* policy, const Slice& contents);

  [[nodiscard]] bool KeyMayMatch(uint64_t block_offset, const Slice& key) const;

 private:
  const FilterPolicy* policy_;
  const char* data_ = nullptr;    // filter data start
  const char* offset_ = nullptr;  // offset array start
  size_t num_ = 0;
  size_t base_lg_ = 0;
};

}  // namespace lsmio::lsm
