// Key ordering abstraction. The engine and every on-disk structure order
// keys through a Comparator so callers can plug domain orders; the default
// is bytewise (memcmp).
#pragma once

#include <string>

#include "common/slice.h"

namespace lsmio::lsm {

class Comparator {
 public:
  virtual ~Comparator() = default;

  /// <0, 0, >0 as a is before/equal/after b.
  [[nodiscard]] virtual int Compare(const Slice& a, const Slice& b) const = 0;

  /// Stable name persisted in table footers; mismatched comparators across
  /// re-opens are detected via this.
  [[nodiscard]] virtual const char* Name() const = 0;

  /// If *start < limit, may shorten *start to a string in [*start, limit).
  /// Used to shrink index entries.
  virtual void FindShortestSeparator(std::string* start, const Slice& limit) const = 0;

  /// May change *key to a short string >= *key.
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

/// The default memcmp-order comparator (process-wide singleton).
const Comparator* BytewiseComparator();

}  // namespace lsmio::lsm
