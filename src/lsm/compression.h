// Built-in block compression ("lz-lite"): a byte-oriented LZ77 variant in
// the Snappy family — greedy hash-chain matching, literal runs + copies.
// Self-contained so the repository has no external codec dependency; the
// paper disables compression for checkpoints (Options::compression), but
// the codec exists so the ablation benchmarks can quantify that choice.
#pragma once

#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace lsmio::lsm {

/// Compresses input, appending to *output (which is cleared first).
/// Always succeeds; output may be larger than input for incompressible data
/// (callers compare sizes and may keep the raw block instead).
void LzLiteCompress(const Slice& input, std::string* output);

/// Decompresses data produced by LzLiteCompress into *output (cleared
/// first). Fails with Corruption on malformed input.
Status LzLiteDecompress(const Slice& input, std::string* output);

}  // namespace lsmio::lsm
