// WriteController: the delayed-write ("graduated backpressure") controller
// behind Options::l0_slowdown_writes_trigger. Between the soft trigger and
// the hard l0_stop_writes_trigger the group-commit leader injects a
// per-batch pacing delay instead of parking on a condition variable, so
// throughput degrades smoothly toward the stop cliff instead of
// flatlining — the stall-avoidance scheduling Luo & Carey argue for in
// "On Performance Stability in LSM-based Storage Systems".
//
// The controller is a leaky bucket over admitted batch bytes: pressure
// (how deep L0 sits inside the soft window, or how close the immutable-
// memtable queue is to full) scales the admitted byte rate down from
// Options::delayed_write_rate, and DelayMicros paces each batch against
// that rate. Pressure is recomputed under the DB mutex every time L0 or
// the immutable queue changes (flush/compaction installs, memtable
// switches), so delays shrink as compactions make progress and drop to
// zero the moment L0 drains below the soft trigger.
//
// Fully deterministic: time enters only through the now_micros arguments,
// so unit tests drive it with a fake clock.
#pragma once

#include <algorithm>
#include <cstdint>

#include "lsm/options.h"

namespace lsmio::lsm {

class WriteController {
 public:
  explicit WriteController(const Options& options)
      : soft_trigger_(options.disable_compaction
                          ? 0
                          : options.l0_slowdown_writes_trigger),
        hard_trigger_(options.l0_stop_writes_trigger),
        base_rate_(std::max<uint64_t>(1, options.delayed_write_rate)),
        max_imm_(std::max(2, options.max_write_buffer_number) - 1) {}

  /// Recomputes pressure from the current L0 file count and immutable-
  /// memtable queue depth. Call whenever either changes (under the DB
  /// mutex). Clearing pressure also resets the pacing bucket, so a drained
  /// L0 never leaves a residual delay behind.
  void UpdatePressure(int l0_files, int imm_queue_len) {
    double p = L0Pressure(l0_files);
    // Immutable-queue soft pressure: with >= 3 total buffers, start pacing
    // when exactly one flush slot is left — the queue-full hard stall is
    // one memtable switch away. (With the 2-buffer minimum there is no
    // soft zone: the single slot goes straight to the hard stall.)
    if (soft_trigger_ > 0 && max_imm_ >= 2 && imm_queue_len >= max_imm_ - 1) {
      p = std::max(p, kImmQueuePressure);
    }
    if (p <= 0.0 && global_pressure_ <= 0.0) next_free_micros_ = 0;
    pressure_ = p;
  }

  /// Sets cross-store pressure from the global write-memory pool
  /// (WriteMemoryPool::GlobalPressure). Merged as max with local L0/imm
  /// pressure, so budget exhaustion paces writers through the same leaky
  /// bucket instead of hard-stalling them — independent of the local soft
  /// trigger (applies even in paper mode, where compaction is disabled but
  /// a multi-tenant budget still has to be honored).
  void SetGlobalPressure(double p) {
    global_pressure_ = std::clamp(p, 0.0, 1.0);
    if (pressure_ <= 0.0 && global_pressure_ <= 0.0) next_free_micros_ = 0;
  }

  [[nodiscard]] bool ShouldDelay() const { return EffectivePressure() > 0.0; }
  [[nodiscard]] double pressure() const { return EffectivePressure(); }
  [[nodiscard]] double global_pressure() const { return global_pressure_; }

  /// Admitted byte rate under the current pressure: base_rate scaled by
  /// (1 - pressure), floored so the ramp stays finite (the hard trigger
  /// takes over where pacing ends).
  [[nodiscard]] uint64_t CurrentRate() const {
    const double scaled =
        static_cast<double>(base_rate_) * (1.0 - EffectivePressure());
    const double floor = static_cast<double>(base_rate_) / kMaxSlowdownFactor;
    // >= 1 so DelayMicros never divides by zero on absurdly small rates.
    return std::max<uint64_t>(1, static_cast<uint64_t>(std::max(scaled, floor)));
  }

  /// Micros the caller must sleep before admitting `batch_bytes`, and
  /// charges the batch to the pacing bucket. Zero under no pressure.
  uint64_t DelayMicros(uint64_t now_micros, uint64_t batch_bytes) {
    if (EffectivePressure() <= 0.0) return 0;
    const uint64_t credit =
        std::min(batch_bytes * 1'000'000 / CurrentRate(), kMaxBatchDelayMicros);
    const uint64_t start = std::max(now_micros, next_free_micros_);
    next_free_micros_ = start + credit;
    return std::min(start - now_micros, kMaxBatchDelayMicros);
  }

  /// Caps: a single batch never sleeps more than this, no matter how far
  /// the bucket has fallen behind.
  static constexpr uint64_t kMaxBatchDelayMicros = 250 * 1000;
  /// Rate floor divisor at full pressure.
  static constexpr double kMaxSlowdownFactor = 32.0;
  /// Pressure assigned when the immutable queue is one slot from full.
  static constexpr double kImmQueuePressure = 0.5;

 private:
  [[nodiscard]] double EffectivePressure() const {
    return std::max(pressure_, global_pressure_);
  }

  [[nodiscard]] double L0Pressure(int l0_files) const {
    if (soft_trigger_ <= 0 || l0_files < soft_trigger_) return 0.0;
    if (hard_trigger_ <= soft_trigger_) return 1.0;
    const double span = static_cast<double>(hard_trigger_ - soft_trigger_);
    return std::min(1.0, static_cast<double>(l0_files - soft_trigger_ + 1) / span);
  }

  const int soft_trigger_;   // 0 = slowdown disabled
  const int hard_trigger_;
  const uint64_t base_rate_;  // bytes/sec admitted at the soft trigger
  const int max_imm_;         // immutable-queue capacity

  double pressure_ = 0.0;          // 0 = run free, 1 = at the stop cliff
  double global_pressure_ = 0.0;   // cross-store write-memory pool pressure
  uint64_t next_free_micros_ = 0;  // leaky-bucket head
};

}  // namespace lsmio::lsm
