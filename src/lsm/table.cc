#include "lsm/table.h"

#include "common/coding.h"
#include "lsm/block.h"
#include "lsm/cache.h"
#include "lsm/comparator.h"
#include "lsm/dbformat.h"
#include "lsm/filter_block.h"
#include "lsm/format.h"
#include "lsm/two_level_iterator.h"

namespace lsmio::lsm {

struct Table::Rep {
  Options options;
  const Comparator* comparator = nullptr;
  const FilterPolicy* filter_policy = nullptr;
  Cache* block_cache = nullptr;
  uint64_t cache_id = 0;
  vfs::RandomAccessFile* file = nullptr;
  Status status;

  std::unique_ptr<Block> index_block;
  std::unique_ptr<FilterBlockReader> filter;
  std::string filter_data;  // owns bytes the FilterBlockReader points into
  BlockHandle metaindex_handle;
};

Table::Table(std::unique_ptr<Rep> rep) : rep_(std::move(rep)) {}
Table::~Table() = default;

Status Table::Open(const Options& options, const Comparator* comparator,
                   const FilterPolicy* filter_policy, Cache* block_cache,
                   uint64_t cache_id, vfs::RandomAccessFile* file,
                   uint64_t file_size, std::unique_ptr<Table>* table) {
  table->reset();
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  std::string footer_scratch;
  Slice footer_input;
  LSMIO_RETURN_IF_ERROR(file->Read(file_size - Footer::kEncodedLength,
                                   Footer::kEncodedLength, &footer_input,
                                   &footer_scratch));
  if (footer_input.size() != Footer::kEncodedLength) {
    return Status::Corruption("truncated sstable footer");
  }

  Footer footer;
  LSMIO_RETURN_IF_ERROR(footer.DecodeFrom(&footer_input));

  // Read the index block (always checksum-verified: it's small and vital).
  ReadOptions opt;
  opt.verify_checksums = options.paranoid_checks;
  std::string index_contents;
  LSMIO_RETURN_IF_ERROR(ReadBlockContents(file, opt, /*always_verify=*/true,
                                          footer.index_handle(), &index_contents));

  auto rep = std::make_unique<Rep>();
  rep->options = options;
  rep->comparator = comparator;
  rep->filter_policy = filter_policy;
  rep->block_cache = block_cache;
  rep->cache_id = cache_id;
  rep->file = file;
  rep->index_block = std::make_unique<Block>(std::move(index_contents));
  rep->metaindex_handle = footer.metaindex_handle();

  auto* t = new Table(std::move(rep));
  t->ReadMeta(footer);
  table->reset(t);
  return Status::OK();
}

void Table::ReadMeta(const Footer& footer) {
  if (rep_->filter_policy == nullptr) return;

  ReadOptions opt;
  opt.verify_checksums = rep_->options.paranoid_checks;
  std::string meta_contents;
  if (!ReadBlockContents(rep_->file, opt, false, footer.metaindex_handle(),
                         &meta_contents)
           .ok()) {
    return;  // no filter available; reads still work
  }
  Block meta(std::move(meta_contents));
  std::unique_ptr<Iterator> iter(meta.NewIterator(BytewiseComparator()));
  const std::string key = std::string("filter.") + rep_->filter_policy->Name();
  iter->Seek(key);
  if (iter->Valid() && iter->key() == Slice(key)) {
    ReadFilter(iter->value());
  }
}

void Table::ReadFilter(const Slice& filter_handle_value) {
  Slice v = filter_handle_value;
  BlockHandle filter_handle;
  if (!filter_handle.DecodeFrom(&v).ok()) return;

  ReadOptions opt;
  opt.verify_checksums = rep_->options.paranoid_checks;
  if (!ReadBlockContents(rep_->file, opt, false, filter_handle,
                         &rep_->filter_data)
           .ok()) {
    return;
  }
  rep_->filter = std::make_unique<FilterBlockReader>(rep_->filter_policy,
                                                     Slice(rep_->filter_data));
}

Iterator* Table::NewBlockIterator(const ReadOptions& options,
                                  const Slice& index_value) const {
  Rep* r = rep_.get();
  Slice input = index_value;
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return NewErrorIterator(s);

  // Block-cache key: cache_id (8) | block offset (8).
  Block* block = nullptr;
  Cache::Handle* cache_handle = nullptr;
  const bool use_cache = r->block_cache != nullptr && !r->options.disable_cache;

  if (use_cache) {
    char cache_key[16];
    EncodeFixed64(cache_key, r->cache_id);
    EncodeFixed64(cache_key + 8, handle.offset());
    const Slice key(cache_key, sizeof cache_key);
    cache_handle = r->block_cache->Lookup(key);
    if (cache_handle != nullptr) {
      block = static_cast<Block*>(r->block_cache->Value(cache_handle));
    } else {
      std::string contents;
      s = ReadBlockContents(r->file, options, r->options.paranoid_checks,
                            handle, &contents);
      if (!s.ok()) return NewErrorIterator(s);
      block = new Block(std::move(contents));
      if (options.fill_cache) {
        cache_handle = r->block_cache->Insert(
            key, block, block->size(),
            [](const Slice&, void* value) { delete static_cast<Block*>(value); });
      }
    }
  } else {
    std::string contents;
    s = ReadBlockContents(r->file, options, r->options.paranoid_checks, handle,
                          &contents);
    if (!s.ok()) return NewErrorIterator(s);
    block = new Block(std::move(contents));
  }

  Iterator* iter = block->NewIterator(r->comparator);
  if (cache_handle != nullptr) {
    Cache* cache = r->block_cache;
    iter->RegisterCleanup([cache, cache_handle] { cache->Release(cache_handle); });
  } else if (!use_cache || !options.fill_cache) {
    iter->RegisterCleanup([block] { delete block; });
  }
  return iter;
}

Iterator* Table::NewIterator(const ReadOptions& options) const {
  const Table* self = this;
  return NewTwoLevelIterator(
      rep_->index_block->NewIterator(rep_->comparator),
      [self](const ReadOptions& opts, const Slice& index_value) {
        return self->NewBlockIterator(opts, index_value);
      },
      options);
}

Status Table::InternalGet(
    const ReadOptions& options, const Slice& internal_key,
    const std::function<void(const Slice&, const Slice&)>& handle_result) const {
  std::unique_ptr<Iterator> index_iter(
      rep_->index_block->NewIterator(rep_->comparator));
  index_iter->Seek(internal_key);
  if (!index_iter->Valid()) return index_iter->status();

  // Bloom check against the block this key would live in.
  const Slice handle_value = index_iter->value();
  if (rep_->filter != nullptr && internal_key.size() >= 8) {
    Slice hv = handle_value;
    BlockHandle handle;
    if (handle.DecodeFrom(&hv).ok() &&
        !rep_->filter->KeyMayMatch(handle.offset(), ExtractUserKey(internal_key))) {
      return Status::OK();  // definitively absent
    }
  }

  std::unique_ptr<Iterator> block_iter(NewBlockIterator(options, handle_value));
  block_iter->Seek(internal_key);
  if (block_iter->Valid()) {
    handle_result(block_iter->key(), block_iter->value());
  }
  return block_iter->status();
}

uint64_t Table::ApproximateOffsetOf(const Slice& internal_key) const {
  std::unique_ptr<Iterator> index_iter(
      rep_->index_block->NewIterator(rep_->comparator));
  index_iter->Seek(internal_key);
  if (index_iter->Valid()) {
    Slice input = index_iter->value();
    BlockHandle handle;
    if (handle.DecodeFrom(&input).ok()) return handle.offset();
  }
  // Past the last key: approximate with the metaindex offset (≈ file end).
  return rep_->metaindex_handle.offset();
}

}  // namespace lsmio::lsm
