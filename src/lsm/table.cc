#include "lsm/table.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/coding.h"
#include "lsm/block.h"
#include "lsm/comparator.h"
#include "lsm/dbformat.h"
#include "lsm/filter_block.h"
#include "lsm/format.h"
#include "lsm/read_stats.h"
#include "lsm/two_level_iterator.h"

namespace lsmio::lsm {

namespace {

/// Upper bound on one coalesced MultiGet read (several adjacent blocks
/// fetched with a single VFS read).
constexpr uint64_t kMaxCoalescedReadBytes = 1 << 20;

void DeleteCachedBlock(const Slice&, void* value) {
  delete static_cast<Block*>(value);
}

void DeleteCachedFilterData(const Slice&, void* value) {
  delete static_cast<std::string*>(value);
}

/// A resolved data block plus how to let go of it.
struct BlockGuard {
  Block* block = nullptr;
  Cache::Handle* cache_handle = nullptr;  // release when non-null
  bool owned = false;                     // delete when true
};

}  // namespace

struct Table::Rep {
  Options options;
  const Comparator* comparator = nullptr;
  const FilterPolicy* filter_policy = nullptr;
  Cache* block_cache = nullptr;
  uint64_t cache_id = 0;
  vfs::RandomAccessFile* file = nullptr;
  ReadCounters* counters = nullptr;

  BlockHandle metaindex_handle;
  BlockHandle index_handle;
  BlockHandle filter_handle;
  bool has_filter = false;

  /// Pinned state (Options::pin_index_and_filter, or no block cache): the
  /// index/filter are resolved once at Open and stay valid for the table's
  /// lifetime — either table-owned or pinned in the cache via a retained
  /// handle. When unpinned, these stay null and every probe round-trips
  /// through the block cache.
  std::unique_ptr<Block> owned_index;
  Cache::Handle* pinned_index_handle = nullptr;
  Block* pinned_index = nullptr;

  std::unique_ptr<std::string> owned_filter_data;
  Cache::Handle* pinned_filter_handle = nullptr;
  std::unique_ptr<FilterBlockReader> filter;  // over the pinned filter bytes

  /// End of the last readahead window hinted to the VFS; avoids re-hinting
  /// the same range for every block of a sequential scan.
  std::atomic<uint64_t> hinted_end{0};

  [[nodiscard]] bool use_cache() const {
    return block_cache != nullptr && !options.disable_cache;
  }

  void CacheKey(uint64_t offset, char out[16]) const {
    EncodeFixed64(out, cache_id);
    EncodeFixed64(out + 8, offset);
  }

  void CountCacheHit() const {
    if (counters) counters->block_cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void CountCacheMiss() const {
    if (counters) counters->block_cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
};

Table::Table(std::unique_ptr<Rep> rep) : rep_(std::move(rep)) {}

Table::~Table() {
  if (rep_->pinned_index_handle != nullptr) {
    rep_->block_cache->Release(rep_->pinned_index_handle);
  }
  if (rep_->pinned_filter_handle != nullptr) {
    rep_->filter.reset();  // reader points into the cached bytes
    rep_->block_cache->Release(rep_->pinned_filter_handle);
  }
}

Status Table::Open(const Options& options, const Comparator* comparator,
                   const FilterPolicy* filter_policy, Cache* block_cache,
                   uint64_t cache_id, vfs::RandomAccessFile* file,
                   uint64_t file_size, std::unique_ptr<Table>* table,
                   ReadCounters* counters) {
  table->reset();
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  std::string footer_scratch;
  Slice footer_input;
  LSMIO_RETURN_IF_ERROR(file->Read(file_size - Footer::kEncodedLength,
                                   Footer::kEncodedLength, &footer_input,
                                   &footer_scratch));
  if (footer_input.size() != Footer::kEncodedLength) {
    return Status::Corruption("truncated sstable footer");
  }

  Footer footer;
  LSMIO_RETURN_IF_ERROR(footer.DecodeFrom(&footer_input));

  // Read the index block (always checksum-verified: it's small and vital).
  ReadOptions opt;
  opt.verify_checksums = options.paranoid_checks;
  std::string index_contents;
  LSMIO_RETURN_IF_ERROR(ReadBlockContents(file, opt, /*always_verify=*/true,
                                          footer.index_handle(), &index_contents));

  auto rep = std::make_unique<Rep>();
  rep->options = options;
  rep->comparator = comparator;
  rep->filter_policy = filter_policy;
  rep->block_cache = block_cache;
  rep->cache_id = cache_id;
  rep->file = file;
  rep->counters = counters;
  rep->metaindex_handle = footer.metaindex_handle();
  rep->index_handle = footer.index_handle();

  // Without a cache there is nowhere to round-trip through, so the index is
  // effectively always pinned (table-owned).
  const bool pin = options.pin_index_and_filter || !rep->use_cache();
  auto index_block = std::make_unique<Block>(std::move(index_contents));
  if (pin) {
    if (rep->use_cache()) {
      char key[16];
      rep->CacheKey(rep->index_handle.offset(), key);
      Block* raw = index_block.release();
      rep->pinned_index_handle =
          rep->block_cache->Insert(Slice(key, sizeof key), raw, raw->size(),
                                   DeleteCachedBlock, rep->options.tenant_id);
      rep->pinned_index = raw;
    } else {
      rep->pinned_index = index_block.get();
      rep->owned_index = std::move(index_block);
    }
  } else {
    // Unpinned: leave the freshly read index warm in the cache; probes will
    // look it up (and re-read on eviction).
    char key[16];
    rep->CacheKey(rep->index_handle.offset(), key);
    Block* raw = index_block.release();
    Cache::Handle* h =
        rep->block_cache->Insert(Slice(key, sizeof key), raw, raw->size(),
                                 DeleteCachedBlock, rep->options.tenant_id);
    rep->block_cache->Release(h);
  }

  auto* t = new Table(std::move(rep));
  // Best-effort: reads work without a filter, just with more block probes.
  t->ReadMeta(footer).IgnoreError();
  table->reset(t);
  return Status::OK();
}

Status Table::ReadMeta(const Footer& footer) {
  Rep* r = rep_.get();
  if (r->filter_policy == nullptr) return Status::OK();

  ReadOptions opt;
  opt.verify_checksums = r->options.paranoid_checks;
  std::string meta_contents;
  LSMIO_RETURN_IF_ERROR(ReadBlockContents(r->file, opt, false,
                                          footer.metaindex_handle(),
                                          &meta_contents));
  Block meta(std::move(meta_contents));
  std::unique_ptr<Iterator> iter(meta.NewIterator(BytewiseComparator()));
  const std::string key = std::string("filter.") + r->filter_policy->Name();
  iter->Seek(key);
  if (!iter->Valid() || iter->key() != Slice(key)) return Status::OK();

  Slice v = iter->value();
  BlockHandle filter_handle;
  LSMIO_RETURN_IF_ERROR(filter_handle.DecodeFrom(&v));
  r->filter_handle = filter_handle;

  auto filter_data = std::make_unique<std::string>();
  LSMIO_RETURN_IF_ERROR(
      ReadBlockContents(r->file, opt, false, filter_handle, filter_data.get()));
  r->has_filter = true;

  const bool pin = r->options.pin_index_and_filter || !r->use_cache();
  if (pin) {
    std::string* raw = filter_data.release();
    if (r->use_cache()) {
      char ckey[16];
      r->CacheKey(filter_handle.offset(), ckey);
      r->pinned_filter_handle = r->block_cache->Insert(
          Slice(ckey, sizeof ckey), raw, raw->size(), DeleteCachedFilterData,
          r->options.tenant_id);
    } else {
      r->owned_filter_data.reset(raw);
    }
    r->filter = std::make_unique<FilterBlockReader>(r->filter_policy, Slice(*raw));
  } else {
    char ckey[16];
    r->CacheKey(filter_handle.offset(), ckey);
    std::string* raw = filter_data.release();
    Cache::Handle* h = r->block_cache->Insert(
        Slice(ckey, sizeof ckey), raw, raw->size(), DeleteCachedFilterData,
        r->options.tenant_id);
    r->block_cache->Release(h);
  }
  return Status::OK();
}

Status Table::IndexBlock(Block** block, Cache::Handle** cache_handle) const {
  Rep* r = rep_.get();
  *cache_handle = nullptr;
  if (r->pinned_index != nullptr) {
    *block = r->pinned_index;
    return Status::OK();
  }
  // Unpinned mode: round-trip through the block cache on every probe.
  char key[16];
  r->CacheKey(r->index_handle.offset(), key);
  const Slice ckey(key, sizeof key);
  Cache::Handle* h = r->block_cache->Lookup(ckey);
  if (h != nullptr) {
    r->CountCacheHit();
  } else {
    r->CountCacheMiss();
    ReadOptions opt;
    opt.verify_checksums = r->options.paranoid_checks;
    std::string contents;
    LSMIO_RETURN_IF_ERROR(ReadBlockContents(r->file, opt, /*always_verify=*/true,
                                            r->index_handle, &contents));
    auto* raw = new Block(std::move(contents));
    h = r->block_cache->Insert(ckey, raw, raw->size(), DeleteCachedBlock,
                               r->options.tenant_id);
  }
  *block = static_cast<Block*>(r->block_cache->Value(h));
  *cache_handle = h;
  return Status::OK();
}

bool Table::FilterKeyMayMatch(uint64_t block_offset, const Slice& user_key) const {
  Rep* r = rep_.get();
  if (!r->has_filter && r->filter == nullptr) return true;
  if (r->counters) {
    r->counters->bloom_checked.fetch_add(1, std::memory_order_relaxed);
  }
  bool may_match = true;
  if (r->filter != nullptr) {
    may_match = r->filter->KeyMayMatch(block_offset, user_key);
  } else {
    // Unpinned: fetch the filter bytes through the cache for this probe.
    char key[16];
    r->CacheKey(r->filter_handle.offset(), key);
    const Slice ckey(key, sizeof key);
    Cache::Handle* h = r->block_cache->Lookup(ckey);
    if (h != nullptr) {
      r->CountCacheHit();
    } else {
      r->CountCacheMiss();
      ReadOptions opt;
      opt.verify_checksums = r->options.paranoid_checks;
      auto data = std::make_unique<std::string>();
      if (!ReadBlockContents(r->file, opt, false, r->filter_handle, data.get())
               .ok()) {
        return true;  // filter unavailable: cannot prove absence
      }
      std::string* raw = data.release();
      h = r->block_cache->Insert(ckey, raw, raw->size(), DeleteCachedFilterData,
                                 r->options.tenant_id);
    }
    const auto* data = static_cast<const std::string*>(r->block_cache->Value(h));
    FilterBlockReader reader(r->filter_policy, Slice(*data));
    may_match = reader.KeyMayMatch(block_offset, user_key);
    r->block_cache->Release(h);
  }
  if (!may_match && r->counters) {
    r->counters->bloom_useful.fetch_add(1, std::memory_order_relaxed);
  }
  return may_match;
}

void Table::MaybeReadahead(const ReadOptions& options,
                           const BlockHandle& handle) const {
  if (options.readahead_bytes == 0) return;
  Rep* r = rep_.get();
  const uint64_t span = handle.size() + kBlockTrailerSize;
  const uint64_t need = handle.offset() + span;
  if (need <= r->hinted_end.load(std::memory_order_relaxed)) return;
  const uint64_t len = std::max<uint64_t>(span, options.readahead_bytes);
  r->file->Hint(handle.offset(), len);
  r->hinted_end.store(handle.offset() + len, std::memory_order_relaxed);
  if (r->counters) {
    r->counters->readahead_bytes.fetch_add(len, std::memory_order_relaxed);
  }
}

Iterator* Table::NewBlockIterator(const ReadOptions& options,
                                  const Slice& index_value) const {
  Rep* r = rep_.get();
  Slice input = index_value;
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return NewErrorIterator(s);

  MaybeReadahead(options, handle);

  // Block-cache key: cache_id (8) | block offset (8).
  Block* block = nullptr;
  Cache::Handle* cache_handle = nullptr;
  const bool use_cache = r->use_cache();

  if (use_cache) {
    char cache_key[16];
    r->CacheKey(handle.offset(), cache_key);
    const Slice key(cache_key, sizeof cache_key);
    cache_handle = r->block_cache->Lookup(key);
    if (cache_handle != nullptr) {
      r->CountCacheHit();
      block = static_cast<Block*>(r->block_cache->Value(cache_handle));
    } else {
      r->CountCacheMiss();
      std::string contents;
      s = ReadBlockContents(r->file, options, r->options.paranoid_checks,
                            handle, &contents);
      if (!s.ok()) return NewErrorIterator(s);
      block = new Block(std::move(contents));
      if (options.fill_cache) {
        cache_handle = r->block_cache->Insert(key, block, block->size(),
                                              DeleteCachedBlock,
                                              r->options.tenant_id);
      }
    }
  } else {
    std::string contents;
    s = ReadBlockContents(r->file, options, r->options.paranoid_checks, handle,
                          &contents);
    if (!s.ok()) return NewErrorIterator(s);
    block = new Block(std::move(contents));
  }

  Iterator* iter = block->NewIterator(r->comparator);
  if (cache_handle != nullptr) {
    Cache* cache = r->block_cache;
    iter->RegisterCleanup([cache, cache_handle] { cache->Release(cache_handle); });
  } else if (!use_cache || !options.fill_cache) {
    iter->RegisterCleanup([block] { delete block; });
  }
  return iter;
}

Iterator* Table::NewIterator(const ReadOptions& options) const {
  Block* index = nullptr;
  Cache::Handle* index_handle = nullptr;
  const Status s = IndexBlock(&index, &index_handle);
  if (!s.ok()) return NewErrorIterator(s);

  Iterator* index_iter = index->NewIterator(rep_->comparator);
  if (index_handle != nullptr) {
    Cache* cache = rep_->block_cache;
    index_iter->RegisterCleanup([cache, index_handle] { cache->Release(index_handle); });
  }
  const Table* self = this;
  return NewTwoLevelIterator(
      index_iter,
      [self](const ReadOptions& opts, const Slice& index_value) {
        return self->NewBlockIterator(opts, index_value);
      },
      options);
}

Status Table::InternalGet(
    const ReadOptions& options, const Slice& internal_key,
    const std::function<void(const Slice&, const Slice&)>& handle_result) const {
  Block* index = nullptr;
  Cache::Handle* index_handle = nullptr;
  LSMIO_RETURN_IF_ERROR(IndexBlock(&index, &index_handle));
  Cache* cache = rep_->block_cache;
  struct IndexRelease {
    Cache* cache;
    Cache::Handle* handle;
    ~IndexRelease() {
      if (handle != nullptr) cache->Release(handle);
    }
  } release{cache, index_handle};

  std::unique_ptr<Iterator> index_iter(index->NewIterator(rep_->comparator));
  index_iter->Seek(internal_key);
  if (!index_iter->Valid()) return index_iter->status();

  // Bloom check against the block this key would live in.
  const Slice handle_value = index_iter->value();
  if (internal_key.size() >= 8) {
    Slice hv = handle_value;
    BlockHandle handle;
    if (handle.DecodeFrom(&hv).ok() &&
        !FilterKeyMayMatch(handle.offset(), ExtractUserKey(internal_key))) {
      return Status::OK();  // definitively absent
    }
  }

  std::unique_ptr<Iterator> block_iter(NewBlockIterator(options, handle_value));
  block_iter->Seek(internal_key);
  if (block_iter->Valid()) {
    handle_result(block_iter->key(), block_iter->value());
  }
  return block_iter->status();
}

Status Table::MultiGet(
    const ReadOptions& options, std::span<const Slice> internal_keys,
    const std::function<void(size_t, const Slice&, const Slice&)>& handle_result)
    const {
  if (internal_keys.empty()) return Status::OK();
  Rep* r = rep_.get();

  Block* index = nullptr;
  Cache::Handle* index_handle = nullptr;
  LSMIO_RETURN_IF_ERROR(IndexBlock(&index, &index_handle));
  struct IndexRelease {
    Cache* cache;
    Cache::Handle* handle;
    ~IndexRelease() {
      if (handle != nullptr) cache->Release(handle);
    }
  } release{r->block_cache, index_handle};

  // Pass 1: walk the index forward (keys are sorted, so block offsets are
  // non-decreasing), bloom-filter probes, group keys by data block.
  struct BlockWork {
    BlockHandle handle;
    std::vector<size_t> keys;  // indices into internal_keys
  };
  std::vector<BlockWork> work;
  {
    std::unique_ptr<Iterator> index_iter(index->NewIterator(r->comparator));
    BlockHandle handle;
    bool positioned = false;  // index_iter valid and `handle` decoded for it
    for (size_t i = 0; i < internal_keys.size(); ++i) {
      const Slice& ikey = internal_keys[i];
      // Ascending keys mean entries before the current one are already
      // proven smaller, so the iterator only ever moves forward: stay put
      // when the current entry still covers the key, try the adjacent
      // entry (the common case for a sequential batch) before paying a
      // binary re-seek.
      bool moved = false;
      if (!positioned) {
        index_iter->Seek(ikey);
        moved = true;
      } else if (r->comparator->Compare(ikey, index_iter->key()) > 0) {
        index_iter->Next();
        moved = true;
        if (index_iter->Valid() &&
            r->comparator->Compare(ikey, index_iter->key()) > 0) {
          index_iter->Seek(ikey);
        }
      }
      if (moved) {
        if (!index_iter->Valid()) {
          LSMIO_RETURN_IF_ERROR(index_iter->status());
          break;  // sorted: every remaining key is also past the last block
        }
        Slice hv = index_iter->value();
        LSMIO_RETURN_IF_ERROR(handle.DecodeFrom(&hv));
        positioned = true;
      }
      if (ikey.size() >= 8 &&
          !FilterKeyMayMatch(handle.offset(), ExtractUserKey(ikey))) {
        continue;  // definitively absent
      }
      if (!work.empty() && work.back().handle.offset() == handle.offset()) {
        work.back().keys.push_back(i);
      } else {
        work.push_back(BlockWork{handle, {i}});
      }
    }
  }
  if (work.empty()) return Status::OK();

  // Pass 2: resolve blocks — cache lookups first, then coalesce runs of
  // adjacent missing blocks into single VFS reads.
  const bool use_cache = r->use_cache();
  // Buffers backing blocks that borrow their bytes (the non-cached path);
  // they must stay alive until the guards release those blocks.
  std::vector<std::unique_ptr<std::string>> backing;
  std::vector<BlockGuard> guards(work.size());
  struct GuardRelease {
    std::vector<BlockGuard>* guards;
    Cache* cache;
    ~GuardRelease() {
      for (BlockGuard& g : *guards) {
        if (g.cache_handle != nullptr) cache->Release(g.cache_handle);
        else if (g.owned) delete g.block;
      }
    }
  } guard_release{&guards, r->block_cache};

  if (use_cache) {
    for (size_t j = 0; j < work.size(); ++j) {
      char cache_key[16];
      r->CacheKey(work[j].handle.offset(), cache_key);
      Cache::Handle* h = r->block_cache->Lookup(Slice(cache_key, sizeof cache_key));
      if (h != nullptr) {
        r->CountCacheHit();
        guards[j].block = static_cast<Block*>(r->block_cache->Value(h));
        guards[j].cache_handle = h;
      } else {
        r->CountCacheMiss();
      }
    }
  } else {
    for (size_t j = 0; j < work.size(); ++j) r->CountCacheMiss();
  }

  const bool cache_fill = use_cache && options.fill_cache;
  std::string scratch;
  for (size_t j = 0; j < work.size();) {
    if (guards[j].block != nullptr) {
      ++j;
      continue;
    }
    // Extend the run while blocks are physically adjacent
    // (offset + size + trailer == next offset) and also unresolved.
    size_t k = j;
    const uint64_t start = work[j].handle.offset();
    uint64_t end = start + work[j].handle.size() + kBlockTrailerSize;
    while (k + 1 < work.size() && guards[k + 1].block == nullptr &&
           work[k + 1].handle.offset() == end &&
           end - start + work[k + 1].handle.size() + kBlockTrailerSize <=
               kMaxCoalescedReadBytes) {
      ++k;
      end = work[k].handle.offset() + work[k].handle.size() + kBlockTrailerSize;
    }
    // Uncached blocks serve straight out of the coalesced read buffer, so
    // each run gets its own buffer, kept alive in `backing`.
    std::string* read_buf = &scratch;
    if (!cache_fill) {
      backing.push_back(std::make_unique<std::string>());
      read_buf = backing.back().get();
    }
    Slice raw;
    LSMIO_RETURN_IF_ERROR(
        r->file->Read(start, static_cast<size_t>(end - start), &raw, read_buf));
    if (raw.size() != end - start) {
      return Status::Corruption("truncated coalesced block read");
    }
    if (k > j && r->counters) {
      r->counters->coalesced_reads.fetch_add(k - j, std::memory_order_relaxed);
    }
    for (size_t m = j; m <= k; ++m) {
      const Slice block_raw(
          raw.data() + (work[m].handle.offset() - start),
          static_cast<size_t>(work[m].handle.size()) + kBlockTrailerSize);
      if (cache_fill) {
        std::string contents;
        LSMIO_RETURN_IF_ERROR(DecodeBlockContents(block_raw, options,
                                                  r->options.paranoid_checks,
                                                  &contents));
        auto* block = new Block(std::move(contents));
        guards[m].block = block;
        char cache_key[16];
        r->CacheKey(work[m].handle.offset(), cache_key);
        guards[m].cache_handle = r->block_cache->Insert(
            Slice(cache_key, sizeof cache_key), block, block->size(),
            DeleteCachedBlock, r->options.tenant_id);
      } else {
        // Zero-copy: the block views the read buffer (or, when compressed,
        // its own decompression buffer parked in `backing`).
        std::string decompressed;
        Slice view;
        LSMIO_RETURN_IF_ERROR(DecodeBlockView(block_raw, options,
                                              r->options.paranoid_checks,
                                              &decompressed, &view));
        if (!decompressed.empty()) {
          backing.push_back(
              std::make_unique<std::string>(std::move(decompressed)));
          view = Slice(*backing.back());
        }
        guards[m].block = new Block(view);
        guards[m].owned = true;
      }
    }
    j = k + 1;
  }

  // Pass 3: seek each key inside its block.
  for (size_t j = 0; j < work.size(); ++j) {
    std::unique_ptr<Iterator> block_iter(
        guards[j].block->NewIterator(r->comparator));
    for (const size_t i : work[j].keys) {
      block_iter->Seek(internal_keys[i]);
      if (block_iter->Valid()) {
        handle_result(i, block_iter->key(), block_iter->value());
      }
      LSMIO_RETURN_IF_ERROR(block_iter->status());
    }
  }
  return Status::OK();
}

uint64_t Table::ApproximateOffsetOf(const Slice& internal_key) const {
  Block* index = nullptr;
  Cache::Handle* index_handle = nullptr;
  if (!IndexBlock(&index, &index_handle).ok()) {
    return rep_->metaindex_handle.offset();
  }
  uint64_t result = rep_->metaindex_handle.offset();  // ≈ file end
  {
    std::unique_ptr<Iterator> index_iter(index->NewIterator(rep_->comparator));
    index_iter->Seek(internal_key);
    if (index_iter->Valid()) {
      Slice input = index_iter->value();
      BlockHandle handle;
      if (handle.DecodeFrom(&input).ok()) result = handle.offset();
    }
  }
  if (index_handle != nullptr) rep_->block_cache->Release(index_handle);
  return result;
}

}  // namespace lsmio::lsm
