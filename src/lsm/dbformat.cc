#include "lsm/dbformat.h"

#include <cinttypes>
#include <cstdio>

namespace lsmio::lsm {

namespace {
std::string MakeFileName(const std::string& dbname, uint64_t number,
                         const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "/%06" PRIu64 ".%s", number, suffix);
  return dbname + buf;
}
}  // namespace

std::string TableFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "sst");
}

std::string LogFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "log");
}

std::string BlobFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "blob");
}

std::string ManifestFileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "/MANIFEST-%06" PRIu64, number);
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) { return dbname + "/CURRENT"; }

std::string LockFileName(const std::string& dbname) { return dbname + "/LOCK"; }

bool ParseFileName(const std::string& name, uint64_t* number, FileType* type) {
  if (name == "CURRENT") {
    *number = 0;
    *type = FileType::kCurrentFile;
    return true;
  }
  if (name == "LOCK") {
    *number = 0;
    *type = FileType::kLockFile;
    return true;
  }
  if (name.rfind("MANIFEST-", 0) == 0) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(name.c_str() + 9, &end, 10);
    if (end == nullptr || *end != '\0') return false;
    *number = n;
    *type = FileType::kManifestFile;
    return true;
  }
  char* end = nullptr;
  const unsigned long long n = std::strtoull(name.c_str(), &end, 10);
  if (end == name.c_str()) return false;
  const std::string suffix(end);
  if (suffix == ".sst") *type = FileType::kTableFile;
  else if (suffix == ".log") *type = FileType::kLogFile;
  else if (suffix == ".blob") *type = FileType::kBlobFile;
  else {
    *type = FileType::kUnknown;
    return false;
  }
  *number = n;
  return true;
}

}  // namespace lsmio::lsm
