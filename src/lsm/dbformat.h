// Internal key format shared by memtable, SSTables and the write path.
//
// An internal key is: user_key | fixed64(sequence << 8 | value_type).
// Ordering: ascending user key, then DESCENDING sequence (newest first),
// then descending type — so a Seek lands on the newest visible version.
#pragma once

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "lsm/comparator.h"

namespace lsmio::lsm {

using SequenceNumber = uint64_t;

/// Max sequence: 56 bits (8 reserved for the type tag).
inline constexpr SequenceNumber kMaxSequenceNumber = ((1ULL << 56) - 1);

enum class ValueType : uint8_t {
  kDeletion = 0x0,
  kValue = 0x1,
  /// Value is a ValuePointer into a value-log blob segment, not the user
  /// bytes themselves (see value_log.h).
  kValuePointer = 0x2,
};

/// Value type used for transient seek keys (LookupKey, iterator seeks):
/// newest first means highest tag first, so seeks must use the highest
/// type byte or a pointer entry at exactly the seek sequence would sort
/// before the seek key and be skipped. Never persisted.
inline constexpr ValueType kValueTypeForSeek = ValueType::kValuePointer;

/// Value type used for index-block separator keys. These ARE persisted
/// (SST index blocks) but always carry kMaxSequenceNumber, which sorts
/// before every real entry regardless of the type byte — so keeping the
/// historical kValue byte preserves byte-for-byte SST output for stores
/// that never use the value log.
inline constexpr ValueType kValueTypeForSeparator = ValueType::kValue;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) noexcept {
  return (seq << 8) | static_cast<uint64_t>(t);
}

/// A parsed internal key.
struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = ValueType::kValue;
};

inline void AppendInternalKey(std::string* dst, const Slice& user_key,
                              SequenceNumber seq, ValueType t) {
  dst->append(user_key.data(), user_key.size());
  PutFixed64(dst, PackSequenceAndType(seq, t));
}

/// Parses an internal key; returns false on malformed input.
inline bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* out) noexcept {
  if (internal_key.size() < 8) return false;
  const uint64_t tag = DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  const auto type_byte = static_cast<uint8_t>(tag & 0xff);
  if (type_byte > static_cast<uint8_t>(ValueType::kValuePointer)) return false;
  out->user_key = Slice(internal_key.data(), internal_key.size() - 8);
  out->sequence = tag >> 8;
  out->type = static_cast<ValueType>(type_byte);
  return true;
}

inline Slice ExtractUserKey(const Slice& internal_key) noexcept {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

/// Comparator over internal keys, wrapping the user comparator.
class InternalKeyComparator final : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* user) : user_comparator_(user) {}

  int Compare(const Slice& a, const Slice& b) const override {
    int r = user_comparator_->Compare(ExtractUserKey(a), ExtractUserKey(b));
    if (r == 0) {
      const uint64_t atag = DecodeFixed64(a.data() + a.size() - 8);
      const uint64_t btag = DecodeFixed64(b.data() + b.size() - 8);
      if (atag > btag) r = -1;       // larger tag (newer) sorts first
      else if (atag < btag) r = +1;
    }
    return r;
  }

  const char* Name() const override { return "lsmio.InternalKeyComparator"; }

  void FindShortestSeparator(std::string* start, const Slice& limit) const override {
    // Shorten the user-key part; re-attach a max tag so ordering holds.
    Slice user_start = ExtractUserKey(*start);
    Slice user_limit = ExtractUserKey(limit);
    std::string tmp(user_start.data(), user_start.size());
    user_comparator_->FindShortestSeparator(&tmp, user_limit);
    if (tmp.size() < user_start.size() &&
        user_comparator_->Compare(user_start, tmp) < 0) {
      PutFixed64(&tmp, PackSequenceAndType(kMaxSequenceNumber, kValueTypeForSeparator));
      *start = std::move(tmp);
    }
  }

  void FindShortSuccessor(std::string* key) const override {
    Slice user_key = ExtractUserKey(*key);
    std::string tmp(user_key.data(), user_key.size());
    user_comparator_->FindShortSuccessor(&tmp);
    if (tmp.size() < user_key.size() && user_comparator_->Compare(user_key, tmp) < 0) {
      PutFixed64(&tmp, PackSequenceAndType(kMaxSequenceNumber, kValueTypeForSeparator));
      *key = std::move(tmp);
    }
  }

  [[nodiscard]] const Comparator* user_comparator() const noexcept {
    return user_comparator_;
  }

 private:
  const Comparator* user_comparator_;
};

/// Helper holding the memtable lookup encoding of a user key:
/// varint32(klen+8) | user_key | tag.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence) {
    const size_t usize = user_key.size();
    const size_t needed = usize + 13;  // conservative
    char* dst = needed <= sizeof(space_) ? space_ : new char[needed];
    start_ = dst;
    dst = EncodeVarint32(dst, static_cast<uint32_t>(usize + 8));
    kstart_ = dst;
    std::memcpy(dst, user_key.data(), usize);
    dst += usize;
    EncodeFixed64(dst, PackSequenceAndType(sequence, kValueTypeForSeek));
    dst += 8;
    end_ = dst;
  }

  ~LookupKey() {
    if (start_ != space_) delete[] start_;
  }

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  /// Key for SkipList/MemTable seeks (length-prefixed internal key).
  [[nodiscard]] Slice memtable_key() const { return Slice(start_, static_cast<size_t>(end_ - start_)); }
  /// Internal key (user key + tag).
  [[nodiscard]] Slice internal_key() const { return Slice(kstart_, static_cast<size_t>(end_ - kstart_)); }
  /// Raw user key.
  [[nodiscard]] Slice user_key() const { return Slice(kstart_, static_cast<size_t>(end_ - kstart_ - 8)); }

 private:
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];
};

// --- file naming ------------------------------------------------------------

std::string TableFileName(const std::string& dbname, uint64_t number);
std::string LogFileName(const std::string& dbname, uint64_t number);
std::string BlobFileName(const std::string& dbname, uint64_t number);
std::string ManifestFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string LockFileName(const std::string& dbname);

/// Parses a file name (no directory) into its number and type.
enum class FileType { kTableFile, kLogFile, kBlobFile, kManifestFile, kCurrentFile, kLockFile, kUnknown };
bool ParseFileName(const std::string& name, uint64_t* number, FileType* type);

}  // namespace lsmio::lsm
