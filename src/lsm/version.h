// Version management: which SSTables exist at which level, persisted to a
// manifest. A Version is an immutable snapshot of the file layout; the
// VersionSet installs new Versions as flushes/compactions complete and
// journals each new state as a full-snapshot manifest record (simple and
// robust at checkpoint-workload file counts).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/synchronization.h"
#include "common/status.h"
#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "lsm/value_log.h"
#include "vfs/vfs.h"

namespace lsmio::lsm {

namespace log {
class Writer;
}

class TableCache;

inline constexpr int kNumLevels = 7;

/// Score floor L0 jumps to once the slowdown trigger is crossed: high
/// enough that no byte-budget score of a deeper level can outrank it
/// (levels rarely exceed ~10x their budget; this is orders beyond that).
inline constexpr double kL0PressureScore = 1000.0;

/// Byte budget of level L: max_bytes_for_level_base * 10^(L-1).
uint64_t MaxBytesForLevel(const Options& options, int level);

struct FileMetaData {
  uint64_t number = 0;
  uint64_t file_size = 0;
  std::string smallest;  // internal key
  std::string largest;   // internal key
  /// Blob segments referenced by this table's kValuePointer entries
  /// (sorted, unique). Lets value-log GC find the tables that still pin a
  /// mostly-garbage segment. Empty for stores without a value log.
  std::vector<uint64_t> blob_refs;
};

/// Immutable snapshot of the table layout, shared_ptr-owned by readers.
class Version {
 public:
  explicit Version(const InternalKeyComparator* icmp) : icmp_(icmp) {}

  /// Files per level. L0 is ordered newest-first (descending file number);
  /// L1+ are sorted by smallest key and non-overlapping.
  std::vector<FileMetaData> files[kNumLevels];

  /// Looks `user key` up through the levels, newest first. When the entry
  /// found is a kValuePointer, *value receives the encoded ValuePointer and
  /// *is_pointer (when non-null) is set; the caller resolves it through the
  /// store's ValueLog.
  Status Get(const ReadOptions& options, TableCache* table_cache,
             const LookupKey& key, std::string* value,
             bool* is_pointer = nullptr) const;

  /// One key of a MultiGet batch flowing through the level search. The
  /// caller owns the lkey/value/status storage; *status must be preset to
  /// the final "not anywhere" value (NotFound) and is overwritten when the
  /// key resolves, at which point `done` is set.
  struct GetRequest {
    const LookupKey* lkey = nullptr;
    std::string* value = nullptr;
    Status* status = nullptr;
    bool done = false;
    /// Set when the resolved entry is a kValuePointer: *value holds the
    /// encoded pointer and the caller must resolve it via the ValueLog.
    bool is_pointer = false;
  };

  /// Batched lookup: `reqs` must be sorted ascending by user key. Walks the
  /// levels newest-first like Get, but probes each table file once with all
  /// the still-unresolved keys that fall inside it (TableCache::MultiGet),
  /// so adjacent keys share index seeks and coalesced block reads.
  Status MultiGet(const ReadOptions& options, TableCache* table_cache,
                  std::span<GetRequest*> reqs) const;

  /// Appends an iterator per table file to *iters.
  void AddIterators(const ReadOptions& options, TableCache* table_cache,
                    std::vector<Iterator*>* iters) const;

  [[nodiscard]] int NumFiles(int level) const {
    return static_cast<int>(files[level].size());
  }
  [[nodiscard]] uint64_t TotalBytes(int level) const;

  /// Number of table files across all levels.
  [[nodiscard]] int TotalFiles() const;

  /// Compaction priority score for `level`; >= 1.0 means the level wants
  /// compaction. L0 scores by file count against l0_compaction_trigger and
  /// jumps into dominance once l0_slowdown_writes_trigger is crossed —
  /// writers are already being delayed at that point, so L0→L1 must win
  /// over any size-triggered level for the backpressure to self-relieve.
  /// L1+ score by bytes against MaxBytesForLevel.
  [[nodiscard]] double CompactionScore(int level, const Options& options) const;

  /// The eligible level with the highest CompactionScore, or -1 when no
  /// level needs compaction. *score (optional) receives the winning score.
  [[nodiscard]] int PickCompactionLevel(const Options& options,
                                        double* score = nullptr) const;

 private:
  const InternalKeyComparator* icmp_;
};

/// Owner of the current Version and the manifest.
///
/// Concurrency contract: a VersionSet has no mutex of its own — every
/// mutating or state-reading method must be called with the *owner's*
/// mutex held (DBImpl::mu_ in the engine). That cross-object requirement
/// is invisible to the static analysis, so it is enforced at runtime
/// instead: SetOwnerMutex installs the guarding mutex, and each entry
/// point calls AssertOwnerHeld (aborting under LSMIO_MUTEX_DEBUG when the
/// caller does not hold it). Standalone users (tests) that never share a
/// VersionSet across threads simply skip SetOwnerMutex.
class VersionSet {
 public:
  VersionSet(std::string dbname, const Options& options,
             const InternalKeyComparator* icmp, TableCache* table_cache);
  ~VersionSet();

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  /// Declares `mu` as the mutex guarding this VersionSet (see class
  /// comment). Call once, before the set is shared across threads.
  void SetOwnerMutex(const Mutex* mu) { owner_mu_ = mu; }

  /// Recovers state from CURRENT/manifest. *save_manifest is set when the
  /// manifest should be rewritten (e.g. it did not exist).
  Status Recover(bool* save_manifest);

  /// Installs `v` as current and journals it. Called with the DB mutex held;
  /// performs I/O.
  Status LogAndApply(std::shared_ptr<Version> v);

  /// Builds a new Version = current + additions - deletions.
  std::shared_ptr<Version> MakeVersion(
      const std::vector<std::pair<int, FileMetaData>>& additions,
      const std::vector<std::pair<int, uint64_t>>& deletions) const;

  [[nodiscard]] std::shared_ptr<Version> current() const {
    AssertOwnerHeld();
    return current_;
  }

  [[nodiscard]] uint64_t NewFileNumber() {
    AssertOwnerHeld();
    return next_file_number_++;
  }
  /// Re-use a file number handed out by NewFileNumber but never used.
  void ReuseFileNumber(uint64_t number) {
    AssertOwnerHeld();
    if (next_file_number_ == number + 1) next_file_number_ = number;
  }

  [[nodiscard]] SequenceNumber LastSequence() const {
    AssertOwnerHeld();
    return last_sequence_;
  }
  void SetLastSequence(SequenceNumber s) {
    AssertOwnerHeld();
    last_sequence_ = s;
  }

  [[nodiscard]] uint64_t LogNumber() const { return log_number_; }
  void SetLogNumber(uint64_t number) {
    AssertOwnerHeld();
    log_number_ = number;
  }

  [[nodiscard]] uint64_t ManifestFileNumber() const { return manifest_file_number_; }

  /// All file numbers referenced by the current version or by any superseded
  /// version a reader still holds (GC keeps these). Readers drop mu_ while
  /// reading table files, so a concurrent flush/compaction install must not
  /// let GC delete the files under them.
  void AddLiveFiles(std::vector<uint64_t>* live) const;

  /// Writes the current state as a manifest snapshot + CURRENT. Used on DB
  /// creation and after recovery.
  Status WriteSnapshot();

  /// Installs the source of blob-segment accounting rows appended to every
  /// manifest snapshot (the store's ValueLog). When unset or when the store
  /// has no segments, snapshots stay byte-for-byte identical to previous
  /// releases (the extension section is omitted entirely).
  void SetBlobSegmentProvider(std::function<std::vector<BlobSegmentMeta>()> p) {
    blob_segment_provider_ = std::move(p);
  }

  /// Blob-segment accounting recovered from the manifest (empty for stores
  /// without a value log). Valid after Recover().
  [[nodiscard]] const std::vector<BlobSegmentMeta>& recovered_blob_segments() const {
    return recovered_blob_segments_;
  }

  /// Weak references to every superseded Version a reader may still hold.
  /// Value-log GC records these when a drained segment is sealed: the
  /// segment file may only be deleted once all of them expire, because old
  /// versions can still contain pointers into it. Prunes expired entries.
  void CollectVersionGuards(std::vector<std::weak_ptr<const void>>* guards) const;

 private:
  std::string EncodeSnapshot() const;
  Status DecodeSnapshot(const Slice& record);
  Status SetCurrentFile(uint64_t manifest_number);

  /// Debug-checks the owner's-mutex contract (no-op when no owner mutex
  /// was installed, or when LSMIO_MUTEX_DEBUG is off).
  void AssertOwnerHeld() const {
    if (owner_mu_ != nullptr) owner_mu_->AssertHeld();
  }

  vfs::Vfs& fs() const;

  std::string dbname_;
  Options options_;
  const InternalKeyComparator* icmp_;
  TableCache* table_cache_;
  const Mutex* owner_mu_ = nullptr;  // installed by SetOwnerMutex

  std::shared_ptr<Version> current_;
  /// Superseded versions that may still be referenced by unlocked readers;
  /// expired entries are pruned during AddLiveFiles.
  mutable std::vector<std::weak_ptr<Version>> retained_;

  uint64_t next_file_number_ = 2;
  uint64_t manifest_file_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  uint64_t log_number_ = 0;

  std::unique_ptr<vfs::WritableFile> manifest_file_;
  std::unique_ptr<log::Writer> manifest_log_;

  std::function<std::vector<BlobSegmentMeta>()> blob_segment_provider_;
  std::vector<BlobSegmentMeta> recovered_blob_segments_;
};

}  // namespace lsmio::lsm
