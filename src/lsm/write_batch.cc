#include "lsm/write_batch.h"

#include "common/coding.h"
#include "lsm/memtable.h"

namespace lsmio::lsm {

namespace {
// Header: 8-byte sequence + 4-byte count.
constexpr size_t kHeader = 12;
}  // namespace

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader, '\0');
}

int WriteBatch::Count() const { return static_cast<int>(DecodeFixed32(rep_.data() + 8)); }

void WriteBatch::SetCount(int n) {
  EncodeFixed32(rep_.data() + 8, static_cast<uint32_t>(n));
}

SequenceNumber WriteBatch::Sequence() const { return DecodeFixed64(rep_.data()); }

void WriteBatch::SetSequence(SequenceNumber seq) { EncodeFixed64(rep_.data(), seq); }

void WriteBatch::Put(const Slice& key, const Slice& value) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(ValueType::kValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::PutPointer(const Slice& key, const Slice& pointer) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(ValueType::kValuePointer));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, pointer);
}

void WriteBatch::Delete(const Slice& key) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(ValueType::kDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

void WriteBatch::Append(const WriteBatch& source) {
  SetCount(Count() + source.Count());
  rep_.append(source.rep_.data() + kHeader, source.rep_.size() - kHeader);
}

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }
  input.remove_prefix(kHeader);
  int found = 0;
  while (!input.empty()) {
    ++found;
    const auto tag = static_cast<ValueType>(input[0]);
    input.remove_prefix(1);
    Slice key;
    Slice value;
    switch (tag) {
      case ValueType::kValue:
        if (!GetLengthPrefixedSlice(&input, &key) ||
            !GetLengthPrefixedSlice(&input, &value)) {
          return Status::Corruption("bad WriteBatch Put record");
        }
        handler->Put(key, value);
        break;
      case ValueType::kValuePointer:
        if (!GetLengthPrefixedSlice(&input, &key) ||
            !GetLengthPrefixedSlice(&input, &value)) {
          return Status::Corruption("bad WriteBatch PutPointer record");
        }
        handler->PutPointer(key, value);
        break;
      case ValueType::kDeletion:
        if (!GetLengthPrefixedSlice(&input, &key)) {
          return Status::Corruption("bad WriteBatch Delete record");
        }
        handler->Delete(key);
        break;
      default:
        return Status::Corruption("unknown WriteBatch record tag");
    }
  }
  if (found != Count()) {
    return Status::Corruption("WriteBatch count mismatch");
  }
  return Status::OK();
}

namespace {

class MemTableInserter final : public WriteBatch::Handler {
 public:
  MemTableInserter(SequenceNumber seq, MemTable* mem) : sequence_(seq), mem_(mem) {}

  void Put(const Slice& key, const Slice& value) override {
    mem_->Add(sequence_, ValueType::kValue, key, value);
    ++sequence_;
  }
  void PutPointer(const Slice& key, const Slice& pointer) override {
    mem_->Add(sequence_, ValueType::kValuePointer, key, pointer);
    ++sequence_;
  }
  void Delete(const Slice& key) override {
    mem_->Add(sequence_, ValueType::kDeletion, key, Slice());
    ++sequence_;
  }

 private:
  SequenceNumber sequence_;
  MemTable* mem_;
};

}  // namespace

Status WriteBatch::InsertInto(MemTable* mem) const {
  MemTableInserter inserter(Sequence(), mem);
  return Iterate(&inserter);
}

Status WriteBatch::SetContents(WriteBatch* batch, const Slice& contents) {
  if (contents.size() < kHeader) {
    return Status::Corruption("WriteBatch contents too small");
  }
  batch->rep_.assign(contents.data(), contents.size());
  return Status::OK();
}

}  // namespace lsmio::lsm
