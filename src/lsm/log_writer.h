// Appends records to a WAL/manifest log in the block format of log_format.h.
//
// External-synchronization contract (DESIGN.md §9): Writer is not
// thread-safe; AddRecord must be externally serialized. The engine's WAL
// writer is mutated only by the group-commit leader (DBImpl), the manifest
// writer only under DBImpl::mu_ via VersionSet.
#pragma once

#include <cstdint>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/log_format.h"
#include "vfs/vfs.h"

namespace lsmio::lsm::log {

class Writer {
 public:
  /// `dest` must outlive the Writer; initial_offset is the current size of
  /// the destination (non-zero when re-opening a log).
  explicit Writer(vfs::WritableFile* dest, uint64_t initial_offset = 0);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& record);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* data, size_t length);

  vfs::WritableFile* dest_;
  size_t block_offset_;
};

}  // namespace lsmio::lsm::log
