// Cache of open Table readers keyed by file number, so repeated point
// lookups don't re-open and re-parse table footers.
//
// Thread-safety: all methods are safe to call concurrently; the state lives
// in the underlying ShardedLRUCache (per-shard mutexes, see lsm/cache.cc)
// and Tables themselves are immutable once opened.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "lsm/cache.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "vfs/vfs.h"

namespace lsmio::lsm {

class Comparator;
class FilterPolicy;
class Table;
struct ReadCounters;

class TableCache {
 public:
  /// `entries` bounds the number of simultaneously open tables. `counters`
  /// (optional, must outlive the cache) receives read-path statistics from
  /// every table opened through this cache.
  TableCache(std::string dbname, const Options& options,
             const Comparator* icmp, const FilterPolicy* filter_policy,
             Cache* block_cache, int entries,
             ReadCounters* counters = nullptr);
  ~TableCache();

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  /// Iterator over table `file_number` (size `file_size`). If `tableptr` is
  /// non-null it receives the underlying Table (valid while the iterator
  /// lives).
  Iterator* NewIterator(const ReadOptions& options, uint64_t file_number,
                        uint64_t file_size, Table** tableptr = nullptr);

  /// Point lookup in table `file_number`.
  Status Get(const ReadOptions& options, uint64_t file_number,
             uint64_t file_size, const Slice& internal_key,
             const std::function<void(const Slice&, const Slice&)>& handle_result);

  /// Batched lookup in table `file_number`; `internal_keys` must be sorted
  /// ascending. handle_result(i, key, value) fires per located entry (same
  /// contract as Table::MultiGet).
  Status MultiGet(const ReadOptions& options, uint64_t file_number,
                  uint64_t file_size, std::span<const Slice> internal_keys,
                  const std::function<void(size_t, const Slice&, const Slice&)>&
                      handle_result);

  /// Drops the cached handle for a deleted file.
  void Evict(uint64_t file_number);

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size, Cache::Handle** handle);

  std::string dbname_;
  Options options_;
  const Comparator* icmp_;
  const FilterPolicy* filter_policy_;
  Cache* block_cache_;
  ReadCounters* counters_;
  std::unique_ptr<Cache> cache_;
};

}  // namespace lsmio::lsm
