// SSTable physical format shared by writer and reader:
//
//   [data block 1..n] [filter block] [metaindex block] [index block] [footer]
//
// Each block on disk is: contents | type(1) | crc32c(4). The footer holds
// the metaindex and index BlockHandles plus a magic number.
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/options.h"
#include "vfs/vfs.h"

namespace lsmio::lsm {

/// Location of a block within the table file.
class BlockHandle {
 public:
  [[nodiscard]] uint64_t offset() const noexcept { return offset_; }
  void set_offset(uint64_t offset) noexcept { offset_ = offset; }
  [[nodiscard]] uint64_t size() const noexcept { return size_; }
  void set_size(uint64_t size) noexcept { size_ = size; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

  /// Max encoded length: two varint64s.
  static constexpr size_t kMaxEncodedLength = 10 + 10;

 private:
  uint64_t offset_ = ~0ULL;
  uint64_t size_ = ~0ULL;
};

/// Fixed-length table trailer.
class Footer {
 public:
  [[nodiscard]] const BlockHandle& metaindex_handle() const noexcept { return metaindex_handle_; }
  void set_metaindex_handle(const BlockHandle& h) noexcept { metaindex_handle_ = h; }
  [[nodiscard]] const BlockHandle& index_handle() const noexcept { return index_handle_; }
  void set_index_handle(const BlockHandle& h) noexcept { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

  /// Two padded handles + 8-byte magic.
  static constexpr size_t kEncodedLength = 2 * BlockHandle::kMaxEncodedLength + 8;

 private:
  BlockHandle metaindex_handle_;
  BlockHandle index_handle_;
};

inline constexpr uint64_t kTableMagicNumber = 0x4c534d494f2023ULL;  // "LSMIO #"

/// Per-block trailer: 1-byte compression type + 4-byte masked CRC.
inline constexpr size_t kBlockTrailerSize = 5;

/// Reads the block identified by `handle` from file, verifying the CRC when
/// `verify_checksums` and decompressing as needed. On success *contents
/// holds the uncompressed block bytes.
Status ReadBlockContents(vfs::RandomAccessFile* file, const ReadOptions& options,
                         bool always_verify, const BlockHandle& handle,
                         std::string* contents);

/// Verifies and decompresses one on-disk block given its raw bytes
/// (contents + trailer). Lets callers that fetched several adjacent blocks
/// in a single coalesced read decode each block from the shared buffer.
Status DecodeBlockContents(const Slice& raw, const ReadOptions& options,
                           bool always_verify, std::string* contents);

/// Zero-copy variant of DecodeBlockContents: when the block is stored
/// uncompressed, *view points into `raw` (the caller keeps those bytes
/// alive); otherwise the block is decompressed into *scratch and *view
/// points at it.
Status DecodeBlockView(const Slice& raw, const ReadOptions& options,
                       bool always_verify, std::string* scratch, Slice* view);

}  // namespace lsmio::lsm
