// Iterator abstraction used across memtables, blocks, tables and the merged
// DB view. Cleanup callbacks let owners attach resource lifetimes (e.g. a
// cache handle pinned while a block iterator lives).
#pragma once

#include <functional>
#include <memory>

#include "common/slice.h"
#include "common/status.h"

namespace lsmio::lsm {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator();

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  [[nodiscard]] virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;
  /// Valid only while Valid(); slices remain usable until the next move.
  [[nodiscard]] virtual Slice key() const = 0;
  [[nodiscard]] virtual Slice value() const = 0;
  [[nodiscard]] virtual Status status() const = 0;

  /// Registers a function run at destruction (resource pinning).
  void RegisterCleanup(std::function<void()> fn);

 private:
  struct Cleanup {
    std::function<void()> fn;
    Cleanup* next = nullptr;
  };
  Cleanup* cleanup_head_ = nullptr;
};

/// An iterator over nothing, carrying an optional error status.
Iterator* NewEmptyIterator();
Iterator* NewErrorIterator(const Status& status);

}  // namespace lsmio::lsm
