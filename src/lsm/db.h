// Public API of the lsmio::lsm storage engine — the from-scratch LSM-tree
// that plays the role RocksDB plays in the paper.
//
// Usage:
//   lsm::Options options;
//   options.disable_wal = true;           // paper's checkpoint configuration
//   options.disable_compaction = true;
//   std::unique_ptr<lsm::DB> db;
//   auto s = lsm::DB::Open(options, "/path/to/db", &db);
//   db->Put({}, "key", "value");
//   db->FlushMemTable(true);              // explicit write barrier
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "lsm/write_batch.h"

namespace lsmio::lsm {

/// Opaque consistent read point (see DB::GetSnapshot).
class Snapshot {
 public:
  virtual ~Snapshot() = default;
};

/// Point-in-time statistics of the engine (performance counters).
struct DbStats {
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t gets = 0;
  uint64_t get_hits = 0;
  uint64_t memtable_flushes = 0;
  uint64_t compactions = 0;
  uint64_t bytes_written = 0;   // user payload accepted
  uint64_t bytes_flushed = 0;   // table bytes produced by flushes
  uint64_t bytes_compacted = 0; // table bytes produced by compactions
  uint64_t wal_bytes = 0;
  // --- write pipeline ---
  uint64_t group_commit_batches = 0;  // write groups led (1 WAL append each)
  uint64_t group_commit_writers = 0;  // writers absorbed into groups
  uint64_t write_stall_micros = 0;    // wall-clock time writers were hard-
                                      // stalled (sum of the two causes below;
                                      // NOT multiplied by waiter count)
  uint64_t stall_memtable_micros = 0; // ... because every memtable was full
                                      // and queued behind in-flight flushes
  uint64_t stall_l0_micros = 0;       // ... because L0 hit the stop trigger
  uint64_t slowdown_delay_micros = 0; // pacing delay injected by graduated
                                      // backpressure (soft trigger), which
                                      // replaces hard stalls under load
  uint64_t slowdown_writes = 0;       // write groups admitted while pacing
                                      // was active (delay can be zero when
                                      // the bucket had drained)
  uint64_t flush_queue_depth = 0;     // gauge: immutable memtables pending
  uint64_t compaction_queue_depth = 0;// gauge: compactions scheduled/running
                                      // (incl. parked on the store limiter)
  // --- background I/O rate limiting (Options::bytes_per_sec) ---
  uint64_t rate_limited_bytes_flush = 0;      // flush bytes paced (high pri)
  uint64_t rate_limited_bytes_compaction = 0; // compaction bytes paced (low)
  uint64_t rate_limiter_wait_micros = 0;      // background-writer sleep time
  // --- per-operation latency (microseconds; lock-free recorders folded in
  // by GetStats, merged across shards) ---
  Histogram write_latency;     // DB::Write / Put / Delete, incl. stalls
  Histogram get_latency;       // DB::Get
  Histogram multiget_latency;  // DB::MultiGet (per batch)
  // --- read path ---
  uint64_t multiget_batches = 0;      // MultiGet calls
  uint64_t multiget_keys = 0;         // keys looked up via MultiGet
  uint64_t multiget_coalesced_reads = 0;  // block reads saved by coalescing
  uint64_t bloom_checked = 0;         // bloom-filter probes
  uint64_t bloom_useful = 0;          // probes that proved a key absent
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t readahead_bytes = 0;       // bytes hinted ahead to the VFS
  // --- health ---
  uint64_t read_only_mode = 0;        // gauge: 1 once a background error
                                      // latched the engine read-only
  // --- sharding / compaction parallelism ---
  uint64_t shards = 1;                // gauge: sub-LSM count of the store
  uint64_t concurrent_compactions = 0;      // gauge: compactions executing
                                            // right now (store-wide)
  uint64_t peak_concurrent_compactions = 0; // high-water mark of the above
  uint64_t compaction_pipeline_batches = 0; // entry batches handed from the
                                            // compaction read/merge producer
                                            // to the encode/write consumer
  // --- write amplification / value log ---
  uint64_t compaction_bytes_read = 0;     // input table bytes read by compactions
  uint64_t compaction_bytes_written = 0;  // output table bytes written by
                                          // compactions (== bytes_compacted)
  uint64_t value_log_bytes_written = 0;   // user value bytes separated into
                                          // blob segments at write time
  uint64_t value_log_separated_batches = 0; // write groups that had at least
                                            // one value separated
  uint64_t value_log_gc_rewritten_bytes = 0; // value bytes GC relocated into
                                             // fresh segments
  uint64_t value_log_segments_deleted = 0;   // blob segments reclaimed by GC
  uint64_t value_log_segments = 0;     // gauge: blob segments on disk
  uint64_t value_log_live_bytes = 0;   // gauge: record bytes still referenced
  uint64_t value_log_garbage_bytes = 0;// gauge: record bytes awaiting GC
  // --- global memory arbitration (Options::write_memory_pool / MemoryArbiter)
  uint64_t memtable_bytes = 0;         // gauge: active + immutable memtable
                                       // bytes (summed across shards)
  uint64_t tenant_cache_bytes = 0;     // gauge: block-cache bytes charged to
                                       // this store's tenant (shared cache),
                                       // else the private cache's total
  uint64_t arbiter_forced_flushes = 0; // memtable switches forced by the
                                       // global write-memory arbiter
  uint64_t write_pool_usage_bytes = 0; // gauge: aggregate pool usage across
                                       // every attached store (process-wide)
  uint64_t write_pool_budget_bytes = 0;// gauge: configured pool budget
};

class DB {
 public:
  /// Opens (creating per options) the database at `name`.
  static Status Open(const Options& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  /// Destroys the database at `name` (removes all its files).
  static Status Destroy(const Options& options, const std::string& name);

  DB() = default;
  virtual ~DB() = default;
  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;
  /// Applies the batch atomically.
  virtual Status Write(const WriteOptions& options, WriteBatch* updates) = 0;

  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  /// Batched point lookup: fills (*values)[i] / (*statuses)[i] for keys[i]
  /// (both resized to keys.size()), all at one consistent sequence number.
  /// The returned Status reflects batch-level failures (I/O errors);
  /// per-key presence is in *statuses (OK / NotFound). The base
  /// implementation loops over Get; DBImpl overrides it with a batch that
  /// resolves memtable hits under one mutex acquisition, groups the rest by
  /// table file, and coalesces adjacent block reads.
  virtual Status MultiGet(const ReadOptions& options,
                          std::span<const Slice> keys,
                          std::vector<std::string>* values,
                          std::vector<Status>* statuses) {
    values->assign(keys.size(), {});
    statuses->assign(keys.size(), Status::OK());
    for (size_t i = 0; i < keys.size(); ++i) {
      (*statuses)[i] = Get(options, keys[i], &(*values)[i]);
    }
    return Status::OK();
  }

  /// Iterator over the DB (caller deletes before the DB closes).
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  /// Consistent read point; release with ReleaseSnapshot.
  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  /// Write barrier (paper §3.1.2 writeBarrier): flushes the active memtable
  /// to an SSTable. When `wait`, blocks until the flush (and any pending
  /// one) has completed and the data is on storage.
  virtual Status FlushMemTable(bool wait) = 0;

  /// Manually compacts the user-key range [begin, end]; either bound may be
  /// null for "unbounded". Only files (and, on a sharded store, shards)
  /// whose key range overlaps the request are compacted; shards compact
  /// concurrently. No-op with compaction disabled.
  virtual Status CompactRange(const Slice* begin, const Slice* end) = 0;

  /// Manually compacts the whole key range.
  Status CompactRange() { return CompactRange(nullptr, nullptr); }

  /// OK while the engine is healthy. Once a WAL/manifest/flush failure has
  /// latched the engine into sticky read-only mode, returns the ReadOnly
  /// status every subsequent write receives. Reads keep working either way;
  /// reopen the DB to clear the condition.
  virtual Status HealthStatus() const { return Status::OK(); }

  /// Engine counters. On a sharded store these are whole-store aggregates:
  /// counters are summed across shards, gauges (queue depths, read-only
  /// mode, compaction concurrency) take the max.
  virtual DbStats GetStats() const = 0;

  /// Per-shard counter breakdown (the verbose form of GetStats). Unsharded
  /// stores report a single entry identical to GetStats.
  virtual void GetShardStats(std::vector<DbStats>* out) const {
    out->assign(1, GetStats());
  }

  /// Approximate bytes held by active+immutable memtables.
  virtual uint64_t ApproximateMemoryUsage() const = 0;
};

}  // namespace lsmio::lsm
