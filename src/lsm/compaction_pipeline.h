// Compaction pipeline: overlaps the I/O-bound half of a compaction (block
// reads, decode, heap merge — everything behind Iterator::Next on the
// merged input) with the compute/write half (drop logic, block encode,
// output writes), Pome-style.
//
// The consumer pulls entries through the KvSource interface. With the
// pipeline enabled, a producer thread drains the merged input iterator
// into packed entry batches while the consumer processes the previous
// batch; the queue is bounded (double buffering), so a slow consumer
// backpressures the producer instead of buffering the whole compaction,
// and memory stays at ~2 batches.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/synchronization.h"
#include "lsm/iterator.h"

namespace lsmio::lsm {

/// Pull interface the compaction consumer loop iterates. The slices
/// returned by Next stay valid until the next Next call. status() is
/// meaningful once Next has returned false.
class KvSource {
 public:
  virtual ~KvSource() = default;
  virtual bool Next(Slice* key, Slice* value) = 0;
  [[nodiscard]] virtual Status status() const = 0;
  /// Entry batches handed across the pipeline (0 for the direct source).
  [[nodiscard]] virtual uint64_t batches() const { return 0; }
};

/// Direct pass-through used when the pipeline is disabled: Next is exactly
/// one iterator step on the calling thread.
class IteratorKvSource final : public KvSource {
 public:
  /// Does not take ownership of `iter`.
  explicit IteratorKvSource(Iterator* iter) : iter_(iter) {}

  bool Next(Slice* key, Slice* value) override {
    if (!started_) {
      iter_->SeekToFirst();
      started_ = true;
    } else {
      iter_->Next();
    }
    if (!iter_->Valid()) return false;
    *key = iter_->key();
    *value = iter_->value();
    return true;
  }

  [[nodiscard]] Status status() const override { return iter_->status(); }

 private:
  Iterator* iter_;
  bool started_ = false;
};

/// Double-buffered producer/consumer source: a background thread runs the
/// input iterator and packs entries into length-prefixed batches of
/// ~batch_bytes; the consumer decodes them sequentially.
class PipelinedKvSource final : public KvSource {
 public:
  /// Does not take ownership of `iter`, which must stay valid for this
  /// object's lifetime and is driven exclusively by the producer thread.
  explicit PipelinedKvSource(Iterator* iter, size_t batch_bytes = 1U << 20,
                             size_t max_queued_batches = 2);
  ~PipelinedKvSource() override;

  bool Next(Slice* key, Slice* value) override;
  [[nodiscard]] Status status() const override;
  [[nodiscard]] uint64_t batches() const override;

 private:
  void ProducerLoop(Iterator* iter) EXCLUDES(mu_);
  /// Blocks while the queue is full; false once cancelled.
  bool PushBatch(std::string batch) EXCLUDES(mu_);

  const size_t batch_bytes_;
  const size_t max_queued_batches_;

  mutable Mutex mu_;
  CondVar producer_cv_{&mu_};  // queue has room / cancelled
  CondVar consumer_cv_{&mu_};  // batch ready / producer done
  std::deque<std::string> ready_ GUARDED_BY(mu_);
  bool done_ GUARDED_BY(mu_) = false;       // producer finished
  bool cancelled_ GUARDED_BY(mu_) = false;  // consumer tearing down
  Status producer_status_ GUARDED_BY(mu_);
  uint64_t batches_ GUARDED_BY(mu_) = 0;

  // unguarded: the batch being decoded is owned exclusively by the
  // consumer thread after it is popped, so it needs no locking.
  std::string current_;
  size_t cursor_ = 0;  // unguarded: consumer-owned (see current_)

  std::thread producer_;  // started last in the constructor
};

}  // namespace lsmio::lsm
