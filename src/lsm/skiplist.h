// Lock-free-read skip list: the C0 tree of the LSM (paper §2.2). Writes are
// externally serialized (the DB holds a write mutex); readers run without
// locks and see a consistent list because node links are published with
// release stores and height with a release store after full initialization.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "common/random.h"
#include "lsm/arena.h"

namespace lsmio::lsm {

/// Key is an opaque trivially-copyable handle (the memtable uses const char*
/// into arena memory). Cmp is a stateless-ish functor: int operator()(a, b).
template <typename Key, class Cmp>
class SkipList {
 public:
  SkipList(Cmp cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(Key{}, kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeefULL) {
    for (int i = 0; i < kMaxHeight; ++i) head_->SetNext(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts key. Requires: nothing equal to key is in the list, and the
  /// caller serializes all Insert calls.
  void Insert(const Key& key);

  /// True iff an entry equal to key is in the list. Safe concurrently with
  /// one writer.
  [[nodiscard]] bool Contains(const Key& key) const;

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    [[nodiscard]] bool Valid() const { return node_ != nullptr; }
    [[nodiscard]] const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) node_ = nullptr;
    }
    void Seek(const Key& target) { node_ = list_->FindGreaterOrEqual(target, nullptr); }
    void SeekToFirst() { node_ = list_->head_->Next(0); }
    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) node_ = nullptr;
    }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}

    Key const key;

    Node* Next(int level) const {
      assert(level >= 0);
      return next_[level].load(std::memory_order_acquire);
    }
    void SetNext(int level, Node* next) {
      assert(level >= 0);
      next_[level].store(next, std::memory_order_release);
    }
    Node* NoBarrierNext(int level) const {
      return next_[level].load(std::memory_order_relaxed);
    }
    void NoBarrierSetNext(int level, Node* next) {
      next_[level].store(next, std::memory_order_relaxed);
    }

   private:
    // Variable-length trailing array; node allocated with height slots.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * static_cast<size_t>(height - 1));
    return new (mem) Node(key);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.Uniform(kBranching) == 0) ++height;
    return height;
  }

  [[nodiscard]] int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  bool KeyIsAfterNode(const Key& key, Node* n) const {
    return n != nullptr && compare_(n->key, key) < 0;
  }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (KeyIsAfterNode(key, next)) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Node* FindLessThan(const Key& key) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (next == nullptr || compare_(next->key, key) >= 0) {
        if (level == 0) return x;
        --level;
      } else {
        x = next;
      }
    }
  }

  Node* FindLast() const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (next == nullptr) {
        if (level == 0) return x;
        --level;
      } else {
        x = next;
      }
    }
  }

  Cmp const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Rng rnd_;
};

template <typename Key, class Cmp>
void SkipList<Key, Cmp>::Insert(const Key& key) {
  Node* prev[kMaxHeight];
  Node* x = FindGreaterOrEqual(key, prev);

  assert(x == nullptr || compare_(x->key, key) != 0);

  const int height = RandomHeight();
  if (height > GetMaxHeight()) {
    for (int i = GetMaxHeight(); i < height; ++i) prev[i] = head_;
    // Relaxed is fine: a racing reader seeing the old height just skips the
    // new upper levels; seeing the new height with null head links is also
    // handled since null means "past the end" at that level.
    max_height_.store(height, std::memory_order_relaxed);
  }

  x = NewNode(key, height);
  for (int i = 0; i < height; ++i) {
    x->NoBarrierSetNext(i, prev[i]->NoBarrierNext(i));
    prev[i]->SetNext(i, x);  // release: publishes the fully-built node
  }
}

template <typename Key, class Cmp>
bool SkipList<Key, Cmp>::Contains(const Key& key) const {
  Node* x = FindGreaterOrEqual(key, nullptr);
  return x != nullptr && compare_(x->key, key) == 0;
}

}  // namespace lsmio::lsm
