#include "lsm/log_reader.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace lsmio::lsm::log {

Reader::Reader(vfs::SequentialFile* file, Reporter* reporter, bool checksum)
    : file_(file), reporter_(reporter), checksum_(checksum) {
  backing_store_.resize(kBlockSize);
}

void Reader::ReportCorruption(uint64_t bytes, const char* reason) {
  ReportDrop(bytes, Status::Corruption(reason));
}

void Reader::ReportDrop(uint64_t bytes, const Status& reason) {
  if (reporter_ != nullptr) {
    reporter_->Corruption(static_cast<size_t>(bytes), reason);
  }
}

bool Reader::ReadRecord(Slice* record, std::string* scratch) {
  scratch->clear();
  record->clear();
  bool in_fragmented_record = false;

  Slice fragment;
  for (;;) {
    const int record_type = ReadPhysicalRecord(&fragment);
    switch (record_type) {
      case static_cast<int>(RecordType::kFull):
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "partial record without end");
        }
        scratch->clear();
        *record = fragment;
        return true;

      case static_cast<int>(RecordType::kFirst):
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "partial record without end");
        }
        scratch->assign(fragment.data(), fragment.size());
        in_fragmented_record = true;
        break;

      case static_cast<int>(RecordType::kMiddle):
        if (!in_fragmented_record) {
          ReportCorruption(fragment.size(), "missing start of fragmented record");
        } else {
          scratch->append(fragment.data(), fragment.size());
        }
        break;

      case static_cast<int>(RecordType::kLast):
        if (!in_fragmented_record) {
          ReportCorruption(fragment.size(), "missing start of fragmented record");
        } else {
          scratch->append(fragment.data(), fragment.size());
          *record = Slice(*scratch);
          return true;
        }
        break;

      case kEof:
        if (in_fragmented_record) {
          // Writer died mid-record; drop the partial tail silently.
          scratch->clear();
        }
        return false;

      case kBadRecord:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "error in middle of record");
          in_fragmented_record = false;
          scratch->clear();
        }
        break;

      default:
        ReportCorruption(fragment.size() + (in_fragmented_record ? scratch->size() : 0),
                         "unknown record type");
        in_fragmented_record = false;
        scratch->clear();
        break;
    }
  }
}

int Reader::ReadPhysicalRecord(Slice* result) {
  for (;;) {
    if (buffer_.size() < kHeaderSize) {
      if (!eof_) {
        // Skip block trailer and read the next block.
        buffer_.clear();
        Status status = file_->Read(kBlockSize, &buffer_, &backing_store_);
        if (!status.ok()) {
          ReportDrop(kBlockSize, status);
          eof_ = true;
          return kEof;
        }
        if (buffer_.size() < kBlockSize) eof_ = true;
        if (buffer_.empty()) return kEof;
        continue;
      }
      // Truncated header at EOF: writer died mid-header; not corruption.
      buffer_.clear();
      return kEof;
    }

    const char* header = buffer_.data();
    const uint16_t length = DecodeFixed16(header + 4);
    const auto type = static_cast<unsigned>(static_cast<unsigned char>(header[6]));
    if (kHeaderSize + length > buffer_.size()) {
      const size_t drop_size = buffer_.size();
      buffer_.clear();
      if (!eof_) {
        ReportCorruption(drop_size, "bad record length");
        return kBadRecord;
      }
      // Truncated record at EOF: writer died mid-write.
      return kEof;
    }

    if (type == static_cast<unsigned>(RecordType::kZero) && length == 0) {
      // Padding produced by preallocation; skip the rest of the block.
      buffer_.clear();
      return kBadRecord;
    }

    if (checksum_) {
      const uint32_t expected = crc32c::Unmask(DecodeFixed32(header));
      const uint32_t actual = crc32c::Value(header + 6, 1 + length);
      if (actual != expected) {
        const size_t drop_size = buffer_.size();
        buffer_.clear();
        if (eof_) {
          // A bad CRC inside the final, partial block is a torn write: the
          // machine died before the sector fully landed. End-of-log, not
          // corruption — everything before it is intact and recoverable.
          return kEof;
        }
        ReportCorruption(drop_size, "checksum mismatch");
        return kBadRecord;
      }
    }

    *result = Slice(header + kHeaderSize, length);
    buffer_.remove_prefix(kHeaderSize + length);
    return static_cast<int>(type);
  }
}

}  // namespace lsmio::lsm::log
