#include "lsm/comparator.h"

namespace lsmio::lsm {
namespace {

class BytewiseComparatorImpl final : public Comparator {
 public:
  int Compare(const Slice& a, const Slice& b) const override { return a.compare(b); }

  const char* Name() const override { return "lsmio.BytewiseComparator"; }

  void FindShortestSeparator(std::string* start, const Slice& limit) const override {
    // Find length of common prefix.
    const size_t min_len = std::min(start->size(), limit.size());
    size_t diff = 0;
    while (diff < min_len && (*start)[diff] == limit[diff]) ++diff;
    if (diff >= min_len) return;  // one is a prefix of the other
    const auto byte = static_cast<unsigned char>((*start)[diff]);
    if (byte < 0xff && byte + 1 < static_cast<unsigned char>(limit[diff])) {
      (*start)[diff] = static_cast<char>(byte + 1);
      start->resize(diff + 1);
    }
  }

  void FindShortSuccessor(std::string* key) const override {
    for (size_t i = 0; i < key->size(); ++i) {
      const auto byte = static_cast<unsigned char>((*key)[i]);
      if (byte != 0xff) {
        (*key)[i] = static_cast<char>(byte + 1);
        key->resize(i + 1);
        return;
      }
    }
    // key is all 0xff: leave as is (it remains >= itself).
  }
};

}  // namespace

const Comparator* BytewiseComparator() {
  static BytewiseComparatorImpl instance;
  return &instance;
}

}  // namespace lsmio::lsm
