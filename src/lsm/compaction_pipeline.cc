#include "lsm/compaction_pipeline.h"

#include <utility>

#include "common/coding.h"

namespace lsmio::lsm {

PipelinedKvSource::PipelinedKvSource(Iterator* iter, size_t batch_bytes,
                                     size_t max_queued_batches)
    : batch_bytes_(batch_bytes < 1024 ? 1024 : batch_bytes),
      max_queued_batches_(max_queued_batches < 1 ? 1 : max_queued_batches),
      producer_([this, iter] { ProducerLoop(iter); }) {}

PipelinedKvSource::~PipelinedKvSource() {
  {
    MutexLock lock(&mu_);
    cancelled_ = true;
    producer_cv_.SignalAll();
  }
  producer_.join();
}

void PipelinedKvSource::ProducerLoop(Iterator* iter) {
  // Batch layout: repeated [fixed32 klen][key][fixed32 vlen][value]. The
  // cancelled flag is only checked at batch boundaries: the worst case is
  // one extra batch of input I/O on teardown, and it keeps the per-entry
  // hot loop lock-free.
  std::string batch;
  batch.reserve(batch_bytes_);
  bool aborted = false;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    const Slice key = iter->key();
    const Slice value = iter->value();
    PutFixed32(&batch, static_cast<uint32_t>(key.size()));
    batch.append(key.data(), key.size());
    PutFixed32(&batch, static_cast<uint32_t>(value.size()));
    batch.append(value.data(), value.size());
    if (batch.size() >= batch_bytes_) {
      if (!PushBatch(std::move(batch))) {
        aborted = true;
        break;
      }
      batch.clear();
      batch.reserve(batch_bytes_);
    }
  }
  if (!aborted && !batch.empty()) PushBatch(std::move(batch));

  MutexLock lock(&mu_);
  producer_status_ = iter->status();
  done_ = true;
  consumer_cv_.SignalAll();
}

bool PipelinedKvSource::PushBatch(std::string batch) {
  MutexLock lock(&mu_);
  while (ready_.size() >= max_queued_batches_ && !cancelled_) {
    producer_cv_.Wait();
  }
  if (cancelled_) return false;
  ready_.push_back(std::move(batch));
  ++batches_;
  consumer_cv_.Signal();
  return true;
}

bool PipelinedKvSource::Next(Slice* key, Slice* value) {
  if (cursor_ >= current_.size()) {
    MutexLock lock(&mu_);
    while (ready_.empty() && !done_) consumer_cv_.Wait();
    if (ready_.empty()) return false;  // producer done, everything consumed
    current_ = std::move(ready_.front());
    ready_.pop_front();
    cursor_ = 0;
    producer_cv_.Signal();
  }
  const char* p = current_.data() + cursor_;
  const uint32_t klen = DecodeFixed32(p);
  *key = Slice(p + 4, klen);
  const uint32_t vlen = DecodeFixed32(p + 4 + klen);
  *value = Slice(p + 8 + klen, vlen);
  cursor_ += 8 + static_cast<size_t>(klen) + vlen;
  return true;
}

Status PipelinedKvSource::status() const {
  MutexLock lock(&mu_);
  return producer_status_;
}

uint64_t PipelinedKvSource::batches() const {
  MutexLock lock(&mu_);
  return batches_;
}

}  // namespace lsmio::lsm
