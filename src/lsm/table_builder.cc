#include "lsm/table_builder.h"

#include <cassert>

#include "common/coding.h"
#include "common/crc32c.h"
#include "lsm/block_builder.h"
#include "lsm/comparator.h"
#include "lsm/dbformat.h"
#include "lsm/compression.h"
#include "lsm/filter_block.h"
#include "lsm/format.h"

namespace lsmio::lsm {

struct TableBuilder::Rep {
  Rep(const Options& opt, const Comparator* cmp, const FilterPolicy* filter,
      vfs::WritableFile* f)
      : options(opt),
        comparator(cmp),
        file(f),
        data_block(&options),
        index_block(&options),
        filter_block(filter == nullptr
                         ? nullptr
                         : std::make_unique<FilterBlockBuilder>(filter)) {}

  Options options;
  const Comparator* comparator;
  vfs::WritableFile* file;
  uint64_t offset = 0;
  Status status;
  BlockBuilder data_block;
  BlockBuilder index_block;
  std::unique_ptr<FilterBlockBuilder> filter_block;
  std::string last_key;
  uint64_t num_entries = 0;
  bool closed = false;

  // Deferred index entry: emitted when the next block's first key is known,
  // allowing a shortened separator key.
  bool pending_index_entry = false;
  BlockHandle pending_handle;

  std::string compressed_output;
};

TableBuilder::TableBuilder(const Options& options, const Comparator* comparator,
                           const FilterPolicy* filter_policy,
                           vfs::WritableFile* file)
    : rep_(std::make_unique<Rep>(options, comparator, filter_policy, file)) {
  if (rep_->filter_block != nullptr) rep_->filter_block->StartBlock(0);
}

TableBuilder::~TableBuilder() { assert(rep_->closed); }

void TableBuilder::Add(const Slice& key, const Slice& value) {
  Rep* r = rep_.get();
  assert(!r->closed);
  if (!r->status.ok()) return;
  if (r->num_entries > 0) {
    assert(r->comparator->Compare(key, Slice(r->last_key)) > 0);
  }

  if (r->pending_index_entry) {
    assert(r->data_block.empty());
    r->comparator->FindShortestSeparator(&r->last_key, key);
    std::string handle_encoding;
    r->pending_handle.EncodeTo(&handle_encoding);
    r->index_block.Add(Slice(r->last_key), Slice(handle_encoding));
    r->pending_index_entry = false;
  }

  // Filter on the user key: lookups probe with a fresh sequence tag, so the
  // tag bytes must not participate in the bloom hash.
  if (r->filter_block != nullptr) {
    r->filter_block->AddKey(key.size() >= 8 ? ExtractUserKey(key) : key);
  }

  r->last_key.assign(key.data(), key.size());
  ++r->num_entries;
  r->data_block.Add(key, value);

  if (r->data_block.CurrentSizeEstimate() >= r->options.block_size) Flush();
}

void TableBuilder::Flush() {
  Rep* r = rep_.get();
  assert(!r->closed);
  if (!r->status.ok() || r->data_block.empty()) return;
  assert(!r->pending_index_entry);
  WriteBlock(&r->data_block, &r->pending_handle);
  if (r->status.ok()) {
    r->pending_index_entry = true;
    r->status = r->file->Flush();
  }
  if (r->filter_block != nullptr) r->filter_block->StartBlock(r->offset);
}

void TableBuilder::WriteBlock(BlockBuilder* block, BlockHandle* handle) {
  Rep* r = rep_.get();
  const Slice raw = block->Finish();

  Slice block_contents;
  CompressionType type = r->options.compression;
  switch (type) {
    case CompressionType::kNone:
      block_contents = raw;
      break;
    case CompressionType::kLzLite: {
      LzLiteCompress(raw, &r->compressed_output);
      if (r->compressed_output.size() < raw.size() - raw.size() / 8) {
        block_contents = Slice(r->compressed_output);
      } else {
        // Not compressible enough: store raw.
        block_contents = raw;
        type = CompressionType::kNone;
      }
      break;
    }
  }
  WriteRawBlock(block_contents, type, handle);
  r->compressed_output.clear();
  block->Reset();
}

void TableBuilder::WriteRawBlock(const Slice& contents, CompressionType type,
                                 BlockHandle* handle) {
  Rep* r = rep_.get();
  handle->set_offset(r->offset);
  handle->set_size(contents.size());
  r->status = r->file->Append(contents);
  if (r->status.ok()) {
    char trailer[kBlockTrailerSize];
    trailer[0] = static_cast<char>(type);
    uint32_t crc = crc32c::Value(contents.data(), contents.size());
    crc = crc32c::Extend(crc, trailer, 1);
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    r->status = r->file->Append(Slice(trailer, kBlockTrailerSize));
    if (r->status.ok()) r->offset += contents.size() + kBlockTrailerSize;
  }
}

Status TableBuilder::Finish() {
  Rep* r = rep_.get();
  Flush();
  assert(!r->closed);
  r->closed = true;

  BlockHandle filter_block_handle;
  BlockHandle metaindex_block_handle;
  BlockHandle index_block_handle;

  // Filter block (raw, uncompressed).
  if (r->status.ok() && r->filter_block != nullptr) {
    WriteRawBlock(r->filter_block->Finish(), CompressionType::kNone,
                  &filter_block_handle);
  }

  // Metaindex block.
  if (r->status.ok()) {
    BlockBuilder metaindex_block(&r->options);
    if (r->filter_block != nullptr) {
      std::string handle_encoding;
      filter_block_handle.EncodeTo(&handle_encoding);
      metaindex_block.Add("filter.lsmio.BuiltinBloomFilter",
                          Slice(handle_encoding));
    }
    WriteBlock(&metaindex_block, &metaindex_block_handle);
  }

  // Index block.
  if (r->status.ok()) {
    if (r->pending_index_entry) {
      r->comparator->FindShortSuccessor(&r->last_key);
      std::string handle_encoding;
      r->pending_handle.EncodeTo(&handle_encoding);
      r->index_block.Add(Slice(r->last_key), Slice(handle_encoding));
      r->pending_index_entry = false;
    }
    WriteBlock(&r->index_block, &index_block_handle);
  }

  // Footer.
  if (r->status.ok()) {
    Footer footer;
    footer.set_metaindex_handle(metaindex_block_handle);
    footer.set_index_handle(index_block_handle);
    std::string footer_encoding;
    footer.EncodeTo(&footer_encoding);
    r->status = r->file->Append(Slice(footer_encoding));
    if (r->status.ok()) r->offset += footer_encoding.size();
  }
  return r->status;
}

void TableBuilder::Abandon() {
  rep_->closed = true;
}

Status TableBuilder::status() const { return rep_->status; }
uint64_t TableBuilder::NumEntries() const { return rep_->num_entries; }
uint64_t TableBuilder::FileSize() const { return rep_->offset; }

}  // namespace lsmio::lsm
