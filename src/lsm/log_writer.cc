#include "lsm/log_writer.h"

#include <cassert>

#include "common/coding.h"
#include "common/crc32c.h"

namespace lsmio::lsm::log {

Writer::Writer(vfs::WritableFile* dest, uint64_t initial_offset)
    : dest_(dest), block_offset_(initial_offset % kBlockSize) {}

Status Writer::AddRecord(const Slice& record) {
  const char* ptr = record.data();
  size_t left = record.size();

  Status s;
  bool begin = true;
  do {
    const size_t leftover = kBlockSize - block_offset_;
    if (leftover < kHeaderSize) {
      // Fill trailer with zeros and move to a fresh block.
      if (leftover > 0) {
        static const char zeros[kHeaderSize] = {0};
        s = dest_->Append(Slice(zeros, leftover));
        if (!s.ok()) return s;
      }
      block_offset_ = 0;
    }

    const size_t avail = kBlockSize - block_offset_ - kHeaderSize;
    const size_t fragment_length = left < avail ? left : avail;

    const bool end = (left == fragment_length);
    RecordType type;
    if (begin && end) type = RecordType::kFull;
    else if (begin) type = RecordType::kFirst;
    else if (end) type = RecordType::kLast;
    else type = RecordType::kMiddle;

    s = EmitPhysicalRecord(type, ptr, fragment_length);
    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (s.ok() && left > 0);
  return s;
}

Status Writer::EmitPhysicalRecord(RecordType type, const char* data, size_t length) {
  assert(length <= 0xffff);
  assert(block_offset_ + kHeaderSize + length <= kBlockSize);

  char header[kHeaderSize];
  // CRC covers the type byte and the payload.
  const char type_byte = static_cast<char>(type);
  uint32_t crc = crc32c::Extend(crc32c::Value(&type_byte, 1), data, length);
  EncodeFixed32(header, crc32c::Mask(crc));
  EncodeFixed16(header + 4, static_cast<uint16_t>(length));
  header[6] = type_byte;

  Status s = dest_->Append(Slice(header, kHeaderSize));
  if (s.ok()) s = dest_->Append(Slice(data, length));
  block_offset_ += kHeaderSize + length;
  return s;
}

}  // namespace lsmio::lsm::log
