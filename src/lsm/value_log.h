// Value log: WAL-time key/value separation for checkpoint-sized values
// (BVLSM-style). Values at least Options::value_log_threshold bytes long
// are appended to append-only blob segments (NNNNNN.blob) at group-commit
// time and the LSM keeps only a (segment, offset, length) pointer under
// the key — flush and compaction then move pointers, not megabytes.
//
// Segment record format (after FreEBS lsvd's checksummed data records):
//
//   fixed32   masked crc32c of everything after this field
//   varint32  key length
//   varint32  value length
//   key bytes
//   value bytes
//
// A ValuePointer addresses the whole record (offset = record start,
// length = full record size), so every read re-verifies the checksum and
// the stored key, and GC can recover (key, value) pairs by scanning.
//
// Durability contract: a pointer is only WAL-logged/acked after the blob
// bytes it references are at least as durable as the WAL record (the
// writer syncs the blob segment before syncing the WAL; flush syncs it
// before installing an SST). Rotation syncs a segment before sealing it,
// so Sync() only ever has to touch the active segment.
//
// Garbage collection: compactions maintain per-segment live-bytes
// counters (persisted in the manifest). When a sealed segment's garbage
// ratio crosses Options::value_log_gc_garbage_ratio, compactions relocate
// its surviving values into the active segment, re-emitting the pointer
// under the entry's ORIGINAL sequence number — snapshot readers resolve
// the relocated entry identically, which is what makes GC snapshot-safe.
// A segment whose live bytes reach zero is sealed with weak references to
// every superseded Version that might still hold old pointers and its
// file is deleted once all of them expire.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "lsm/options.h"

namespace lsmio::vfs {
class Vfs;
class WritableFile;
class RandomAccessFile;
}  // namespace lsmio::vfs

namespace lsmio::lsm {

/// Location of one record inside a blob segment.
struct ValuePointer {
  uint64_t segment = 0;  // blob segment file number
  uint64_t offset = 0;   // byte offset of the record header
  uint64_t length = 0;   // full record length (header + key + value)
};

/// Pointer encoding stored as the entry value under a kValuePointer tag:
/// varint64 segment | varint64 offset | varint64 length.
void EncodeValuePointer(std::string* dst, const ValuePointer& ptr);
/// Decodes a pointer; requires the input to be exactly one pointer.
bool DecodeValuePointer(Slice input, ValuePointer* ptr);

/// Per-segment accounting persisted in the manifest.
struct BlobSegmentMeta {
  uint64_t number = 0;
  uint64_t total_bytes = 0;  // record bytes appended over the segment's life
  uint64_t live_bytes = 0;   // bytes still referenced by the newest LSM state
};

/// Counter snapshot for DbStats.
struct ValueLogCounters {
  uint64_t bytes_written = 0;        // user value bytes separated at write time
  uint64_t gc_rewritten_bytes = 0;   // value bytes relocated by GC
  uint64_t segments_deleted = 0;
  uint64_t segments = 0;             // gauge: registered segments
  uint64_t live_bytes = 0;           // gauge: sum of live record bytes
  uint64_t garbage_bytes = 0;        // gauge: sum of (total - live)
};

/// One store's (or one shard's) blob segments: appender, reader with a
/// bounded cache of open segment handles, per-segment accounting and GC
/// bookkeeping. Thread-safe; appends are internally serialized (the
/// group-commit leader and compaction relocation share the appender).
class ValueLog {
 public:
  ValueLog(const Options& options, std::string dbname, vfs::Vfs* fs);
  ~ValueLog();

  ValueLog(const ValueLog&) = delete;
  ValueLog& operator=(const ValueLog&) = delete;

  /// Seeds the registry from manifest-recovered metas plus any on-disk
  /// segment files the manifest does not know about (adopted conservatively
  /// as fully live, e.g. the active-at-crash segment). The next append
  /// always starts a fresh segment, so a torn tail from a crash is never
  /// appended to.
  Status Open(const std::vector<BlobSegmentMeta>& recovered) EXCLUDES(mu_);

  /// Appends one record and returns its location. `gc_rewrite` selects the
  /// stats counter the value bytes are charged to.
  Status Append(const Slice& user_key, const Slice& value, bool gc_rewrite,
                ValuePointer* out) EXCLUDES(mu_);

  /// Durability barrier: fsyncs the active segment iff it has unsynced
  /// bytes. Rotated segments were synced when sealed.
  Status Sync() EXCLUDES(mu_);

  // --- read path -----------------------------------------------------------

  /// Reads and checksum-verifies the record at `ptr`; returns the value.
  Status ReadValue(const ValuePointer& ptr, std::string* value) const;
  /// Reads and checksum-verifies the record at `ptr`; returns key and value.
  Status ReadRecord(const ValuePointer& ptr, std::string* key,
                    std::string* value) const;
  /// Verifies that `ptr` addresses an intact record for `expected_key`
  /// (WAL replay uses this to drop pointers whose blob bytes did not
  /// survive a crash — only unacknowledged writes can be in that state).
  Status ValidatePointer(const ValuePointer& ptr, const Slice& expected_key) const;
  /// Readahead hint covering [ptr.offset, ptr.offset + span) of the
  /// segment; MultiGet uses it to coalesce resolution of sorted pointers.
  void Hint(const ValuePointer& ptr, uint64_t span) const;

  // --- accounting & GC -----------------------------------------------------

  /// True if `segment` is registered (RemoveObsoleteFiles keeps such files).
  [[nodiscard]] bool Contains(uint64_t segment) const EXCLUDES(mu_);

  /// Applies per-segment garbage byte deltas (entries dropped or relocated
  /// by a compaction). Called under the DB mutex right before the manifest
  /// record of the same install is written.
  void ApplyGarbage(const std::map<uint64_t, uint64_t>& garbage) EXCLUDES(mu_);

  /// Sealed-segment GC candidates: not active, live > 0, garbage ratio at
  /// least Options::value_log_gc_garbage_ratio.
  [[nodiscard]] std::vector<uint64_t> GcCandidates() const EXCLUDES(mu_);

  /// Every registered segment's accounting, for the manifest snapshot.
  [[nodiscard]] std::vector<BlobSegmentMeta> LiveSegments() const EXCLUDES(mu_);

  /// Seals every drained segment (live == 0, not the active one): records
  /// `guards` — weak references to the superseded Versions that may still
  /// hold pointers into it — and schedules the file for deletion once all
  /// guards expire.
  void SealDrained(const std::vector<std::weak_ptr<const void>>& guards)
      EXCLUDES(mu_);

  /// Deletes sealed segments whose guards have all expired; returns the
  /// number of files removed.
  int SweepDeletable() EXCLUDES(mu_);

  /// Folds the counter snapshot into `out` (additive).
  [[nodiscard]] ValueLogCounters Counters() const EXCLUDES(mu_);

 private:
  struct SegmentState {
    uint64_t total = 0;
    uint64_t live = 0;
    bool sealed = false;
    std::vector<std::weak_ptr<const void>> guards;
  };

  Status EnsureActiveLocked() REQUIRES(mu_);
  Status RotateLocked() REQUIRES(mu_);

  /// Returns a cached-or-opened handle for `segment` (LRU, bounded).
  Status GetSegmentHandle(uint64_t segment,
                          std::shared_ptr<vfs::RandomAccessFile>* file) const
      EXCLUDES(cache_mu_);
  void EvictSegmentHandle(uint64_t segment) const EXCLUDES(cache_mu_);

  const Options options_;
  const std::string dbname_;
  vfs::Vfs* const fs_;

  mutable Mutex mu_;
  Status io_error_ GUARDED_BY(mu_);  // latched on sync failure
  uint64_t next_segment_number_ GUARDED_BY(mu_) = 1;
  std::unique_ptr<vfs::WritableFile> active_file_ GUARDED_BY(mu_);
  uint64_t active_number_ GUARDED_BY(mu_) = 0;
  uint64_t active_size_ GUARDED_BY(mu_) = 0;
  uint64_t active_synced_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, SegmentState> segments_ GUARDED_BY(mu_);
  uint64_t bytes_written_ GUARDED_BY(mu_) = 0;
  uint64_t gc_rewritten_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t segments_deleted_ GUARDED_BY(mu_) = 0;

  // Open-segment handle cache, block-cache style: bounded, LRU-evicted,
  // shared_ptr handles so a reader keeps its file alive across eviction.
  mutable Mutex cache_mu_;
  struct CacheEntry {
    std::shared_ptr<vfs::RandomAccessFile> file;
    uint64_t lru_tick = 0;
  };
  mutable std::map<uint64_t, CacheEntry> handles_ GUARDED_BY(cache_mu_);
  mutable uint64_t lru_clock_ GUARDED_BY(cache_mu_) = 0;
};

}  // namespace lsmio::lsm
