#include "lsm/compression.h"

#include <cstring>

#include "common/coding.h"

namespace lsmio::lsm {

// Format:
//   varint64 uncompressed_length
//   sequence of tokens:
//     literal: 0x00 | varint32(len) | bytes
//     copy:    0x01 | varint32(len) | varint32(distance)
// Minimum match length 4; max distance 64 KiB (16-bit hash window).

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxDistance = 1 << 16;
constexpr int kHashBits = 14;

inline uint32_t HashWord(const char* p) noexcept {
  uint32_t w;
  std::memcpy(&w, p, 4);
  return (w * 2654435761u) >> (32 - kHashBits);
}

void EmitLiteral(std::string* out, const char* p, size_t len) {
  if (len == 0) return;
  out->push_back('\x00');
  PutVarint32(out, static_cast<uint32_t>(len));
  out->append(p, len);
}

void EmitCopy(std::string* out, size_t len, size_t distance) {
  out->push_back('\x01');
  PutVarint32(out, static_cast<uint32_t>(len));
  PutVarint32(out, static_cast<uint32_t>(distance));
}

}  // namespace

void LzLiteCompress(const Slice& input, std::string* output) {
  output->clear();
  PutVarint64(output, input.size());
  const char* base = input.data();
  const size_t n = input.size();
  if (n < kMinMatch + 4) {
    EmitLiteral(output, base, n);
    return;
  }

  // Hash table of last-seen positions for 4-byte words.
  uint32_t table[1 << kHashBits];
  std::memset(table, 0xff, sizeof table);

  size_t pos = 0;
  size_t literal_start = 0;
  const size_t match_limit = n - kMinMatch;

  while (pos <= match_limit) {
    const uint32_t h = HashWord(base + pos);
    const uint32_t candidate = table[h];
    table[h] = static_cast<uint32_t>(pos);

    if (candidate != 0xffffffffu && pos - candidate <= kMaxDistance &&
        std::memcmp(base + candidate, base + pos, kMinMatch) == 0) {
      // Extend the match.
      size_t match_len = kMinMatch;
      const size_t max_len = n - pos;
      while (match_len < max_len &&
             base[candidate + match_len] == base[pos + match_len]) {
        ++match_len;
      }
      EmitLiteral(output, base + literal_start, pos - literal_start);
      EmitCopy(output, match_len, pos - candidate);
      // Insert a few positions inside the match to keep the table fresh.
      const size_t end = pos + match_len;
      for (size_t i = pos + 1; i + 4 <= end && i <= match_limit; i += 3) {
        table[HashWord(base + i)] = static_cast<uint32_t>(i);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  EmitLiteral(output, base + literal_start, n - literal_start);
}

Status LzLiteDecompress(const Slice& input, std::string* output) {
  output->clear();
  Slice in = input;
  uint64_t expected = 0;
  if (!GetVarint64(&in, &expected)) {
    return Status::Corruption("lz-lite: bad length header");
  }
  output->reserve(static_cast<size_t>(expected));

  while (!in.empty()) {
    const char tag = in[0];
    in.remove_prefix(1);
    uint32_t len = 0;
    if (!GetVarint32(&in, &len)) return Status::Corruption("lz-lite: bad token length");
    if (tag == '\x00') {
      if (in.size() < len) return Status::Corruption("lz-lite: truncated literal");
      output->append(in.data(), len);
      in.remove_prefix(len);
    } else if (tag == '\x01') {
      uint32_t distance = 0;
      if (!GetVarint32(&in, &distance)) return Status::Corruption("lz-lite: bad copy distance");
      if (distance == 0 || distance > output->size()) {
        return Status::Corruption("lz-lite: copy distance out of range");
      }
      // Overlapping copies are valid (RLE-style): copy byte by byte.
      size_t from = output->size() - distance;
      for (uint32_t i = 0; i < len; ++i) {
        output->push_back((*output)[from + i]);
      }
    } else {
      return Status::Corruption("lz-lite: unknown token tag");
    }
  }
  if (output->size() != expected) {
    return Status::Corruption("lz-lite: length mismatch after decompress");
  }
  return Status::OK();
}

}  // namespace lsmio::lsm
