// Sharded LRU cache for table data blocks. The paper disables caching for
// the checkpoint configuration (Options::disable_cache); the cache exists
// for the read path and the ablation study.
//
// Entries carry an optional charge owner (a tenant id) so a single cache
// can be shared by many stores with per-tenant accounting: the MemoryArbiter
// (src/core/memory_arbiter.h) hands every store the same cache and a unique
// owner id, then reads back per-owner usage/eviction stats for residency
// reporting and purges an owner's entries when its store closes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/slice.h"

namespace lsmio::lsm {

/// Per-owner accounting for a shared cache. Counters are cumulative over the
/// owner's lifetime; `charge` is the current resident total.
struct CacheOwnerStats {
  uint64_t charge = 0;         ///< bytes currently charged to the owner
  uint64_t inserts = 0;        ///< entries inserted under the owner
  uint64_t evictions = 0;      ///< owner entries dropped by capacity pressure
  uint64_t evicted_bytes = 0;  ///< bytes of those capacity evictions
};

class Cache {
 public:
  virtual ~Cache() = default;

  /// Opaque handle to a pinned entry.
  struct Handle {};

  /// Inserts key->value with a size `charge`; `deleter` runs when the entry
  /// is evicted and unpinned. Returns a pinned handle (caller must Release).
  /// `owner` attributes the charge to a tenant (0 = unowned/single-tenant).
  virtual Handle* Insert(const Slice& key, void* value, size_t charge,
                         std::function<void(const Slice&, void*)> deleter,
                         uint64_t owner = 0) = 0;

  /// Looks up key; pins and returns the entry, or nullptr.
  virtual Handle* Lookup(const Slice& key) = 0;

  /// Unpins a handle from Insert/Lookup.
  virtual void Release(Handle* handle) = 0;

  /// Value stored in a pinned handle.
  virtual void* Value(Handle* handle) = 0;

  /// Drops key if present (entry is deleted once unpinned).
  virtual void Erase(const Slice& key) = 0;

  /// A new unique 64-bit id (prefixing cache keys per client).
  virtual uint64_t NewId() = 0;

  /// Total charge currently held.
  virtual size_t TotalCharge() const = 0;

  /// Bytes currently charged to `owner` (0 if unknown).
  virtual size_t OwnerCharge(uint64_t owner) const = 0;

  /// Full accounting for `owner` (zeroed struct if unknown).
  virtual CacheOwnerStats OwnerStats(uint64_t owner) const = 0;

  /// Drops every unpinned entry charged to `owner` and forgets its
  /// accounting once the charge reaches zero. Pinned entries survive (their
  /// charge remains attributed) — callers tear down their tables first.
  virtual void PurgeOwner(uint64_t owner) = 0;
};

/// LRU cache with 16 shards; `capacity` is the total charge budget.
std::unique_ptr<Cache> NewLRUCache(size_t capacity);

}  // namespace lsmio::lsm
