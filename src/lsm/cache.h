// Sharded LRU cache for table data blocks. The paper disables caching for
// the checkpoint configuration (Options::disable_cache); the cache exists
// for the read path and the ablation study.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/slice.h"

namespace lsmio::lsm {

class Cache {
 public:
  virtual ~Cache() = default;

  /// Opaque handle to a pinned entry.
  struct Handle {};

  /// Inserts key->value with a size `charge`; `deleter` runs when the entry
  /// is evicted and unpinned. Returns a pinned handle (caller must Release).
  virtual Handle* Insert(const Slice& key, void* value, size_t charge,
                         std::function<void(const Slice&, void*)> deleter) = 0;

  /// Looks up key; pins and returns the entry, or nullptr.
  virtual Handle* Lookup(const Slice& key) = 0;

  /// Unpins a handle from Insert/Lookup.
  virtual void Release(Handle* handle) = 0;

  /// Value stored in a pinned handle.
  virtual void* Value(Handle* handle) = 0;

  /// Drops key if present (entry is deleted once unpinned).
  virtual void Erase(const Slice& key) = 0;

  /// A new unique 64-bit id (prefixing cache keys per client).
  virtual uint64_t NewId() = 0;

  /// Total charge currently held.
  virtual size_t TotalCharge() const = 0;
};

/// LRU cache with 16 shards; `capacity` is the total charge budget.
std::unique_ptr<Cache> NewLRUCache(size_t capacity);

}  // namespace lsmio::lsm
