// Reads back records written by log::Writer, skipping corrupt fragments and
// reporting them to an optional Reporter (recovery is best-effort for the
// tail, strict before it).
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/log_format.h"
#include "vfs/vfs.h"

namespace lsmio::lsm::log {

class Reader {
 public:
  class Reporter {
   public:
    virtual ~Reporter() = default;
    /// `bytes` were dropped due to `reason`.
    virtual void Corruption(size_t bytes, const Status& reason) = 0;
  };

  /// `file` must outlive the Reader. If checksum, verify CRCs.
  Reader(vfs::SequentialFile* file, Reporter* reporter, bool checksum);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Reads the next complete record into *record (backed by *scratch).
  /// Returns false at EOF.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  // Extended record types for internal state reporting.
  static constexpr int kEof = kMaxRecordType + 1;
  static constexpr int kBadRecord = kMaxRecordType + 2;

  int ReadPhysicalRecord(Slice* result);
  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  vfs::SequentialFile* const file_;
  Reporter* const reporter_;
  const bool checksum_;
  std::string backing_store_;
  Slice buffer_;
  bool eof_ = false;
};

}  // namespace lsmio::lsm::log
