// Builds an immutable SSTable (the C1..Ck on-disk tree nodes, paper §2.2):
// sorted keys arrive once, data blocks stream out as large sequential
// appends — the access pattern the whole paper is built on.
#pragma once

#include <cstdint>
#include <memory>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/options.h"
#include "vfs/vfs.h"

namespace lsmio::lsm {

class BlockBuilder;
class FilterBlockBuilder;
class Comparator;
class FilterPolicy;

class TableBuilder {
 public:
  /// Writes a table to `file` (caller keeps ownership of the file and must
  /// Close() it after Finish()). `filter_policy` may be null.
  TableBuilder(const Options& options, const Comparator* comparator,
               const FilterPolicy* filter_policy, vfs::WritableFile* file);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  /// Adds key/value. Keys must be added in strictly increasing order.
  void Add(const Slice& key, const Slice& value);

  /// Writes the current data block if it reached block_size.
  void Flush();

  /// Finishes the table: filter, metaindex, index blocks and footer.
  Status Finish();

  /// Abandons the table (no further methods except destructor).
  void Abandon();

  [[nodiscard]] Status status() const;
  [[nodiscard]] uint64_t NumEntries() const;
  /// File bytes written so far.
  [[nodiscard]] uint64_t FileSize() const;

 private:
  struct Rep;

  void WriteBlock(BlockBuilder* block, class BlockHandle* handle);
  void WriteRawBlock(const Slice& contents, CompressionType type,
                     class BlockHandle* handle);

  std::unique_ptr<Rep> rep_;
};

}  // namespace lsmio::lsm
