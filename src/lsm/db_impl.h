// DBImpl: the concrete engine behind lsm::DB. Single write mutex, one
// background thread (paper §3.1.2 configures a single flushing thread),
// leveled compaction that can be disabled entirely (paper mode: flushes
// accumulate as L0 files).
#pragma once

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/thread_pool.h"
#include "lsm/db.h"
#include "lsm/dbformat.h"
#include "lsm/log_writer.h"
#include "lsm/memtable.h"
#include "lsm/table_cache.h"
#include "lsm/version.h"

namespace lsmio::lsm {

class FilterPolicy;

class DBImpl final : public DB {
 public:
  DBImpl(const Options& options, const std::string& dbname);
  ~DBImpl() override;

  Status Put(const WriteOptions& options, const Slice& key, const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key, std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status FlushMemTable(bool wait) override;
  Status CompactRange() override;
  DbStats GetStats() const override;
  uint64_t ApproximateMemoryUsage() const override;

 private:
  friend class DB;
  struct SnapshotImpl;

  vfs::Vfs& fs() const;

  Status Initialize();                       // open/create + recover
  Status NewDb();                            // write fresh CURRENT/manifest
  Status RecoverLogFile(uint64_t log_number, SequenceNumber* max_sequence);
  Status MakeRoomForWrite(std::unique_lock<std::mutex>& lock);
  Status SwitchMemTable(std::unique_lock<std::mutex>& lock);

  void MaybeScheduleBackgroundWork(std::unique_lock<std::mutex>& lock);
  void BackgroundCall();
  Status CompactMemTable();
  bool NeedsCompaction() const;
  Status BackgroundCompaction();
  Status CompactFiles(int level, const std::vector<FileMetaData>& level_inputs,
                      const std::vector<FileMetaData>& next_inputs);
  void RemoveObsoleteFiles();

  Iterator* NewInternalIterator(const ReadOptions& options,
                                SequenceNumber* latest_snapshot);
  SequenceNumber SmallestSnapshot() const;  // mu_ held

  uint64_t MaxBytesForLevel(int level) const;

  // --- immutable after construction ---
  Options options_;
  std::string dbname_;
  InternalKeyComparator internal_comparator_;
  std::unique_ptr<const FilterPolicy> filter_policy_;
  std::unique_ptr<Cache> block_cache_;
  std::unique_ptr<TableCache> table_cache_;

  // --- guarded by mu_ ---
  mutable std::mutex mu_;
  std::condition_variable bg_cv_;
  std::unique_ptr<VersionSet> versions_;
  MemTable* mem_ = nullptr;
  MemTable* imm_ = nullptr;
  std::unique_ptr<vfs::WritableFile> logfile_;
  uint64_t logfile_number_ = 0;
  std::unique_ptr<log::Writer> log_;
  bool background_work_scheduled_ = false;
  bool manual_compaction_requested_ = false;
  Status bg_error_;
  std::atomic<bool> shutting_down_{false};
  std::set<uint64_t> pending_outputs_;
  std::list<const SnapshotImpl*> snapshots_;
  DbStats stats_;

  // Background executor; created last, destroyed first.
  std::unique_ptr<ThreadPool> bg_pool_;
};

}  // namespace lsmio::lsm
