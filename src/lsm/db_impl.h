// DBImpl: the concrete engine behind lsm::DB. Writes go through a
// LevelDB/RocksDB-style group-commit queue: concurrent writers line up,
// the front writer merges the pending batches and performs one WAL
// append/sync for the whole group with the mutex released. Memtables roll
// into a queue of immutables (max_write_buffer_number) flushed by a
// background thread; flush and compaction are scheduled independently so
// a long compaction never blocks a flush. Leveled compaction can be
// disabled entirely (paper mode: flushes accumulate as L0 files).
#pragma once

#include <algorithm>
#include <atomic>
#include <deque>
#include <list>
#include <memory>
#include <set>
#include <span>
#include <string>

#include "common/rate_limiter.h"
#include "common/synchronization.h"
#include "common/thread_pool.h"
#include "lsm/compaction_limiter.h"
#include "lsm/compaction_pipeline.h"
#include "lsm/db.h"
#include "lsm/dbformat.h"
#include "lsm/log_writer.h"
#include "lsm/memory_budget.h"
#include "lsm/memtable.h"
#include "lsm/read_stats.h"
#include "lsm/table_cache.h"
#include "lsm/value_log.h"
#include "lsm/version.h"
#include "lsm/write_controller.h"

namespace lsmio::lsm {

class FilterPolicy;

class DBImpl final : public DB {
 public:
  /// `shared_pool`/`shared_limiter`/`shared_rate_limiter` let a ShardedDB
  /// run several DBImpl sub-LSMs on one background executor with one
  /// store-wide compaction concurrency cap and one store-wide background-
  /// I/O byte budget; all must outlive this object. When null (the
  /// standalone single-LSM case) the DBImpl owns private instances — the
  /// rate limiter only when Options::bytes_per_sec > 0.
  DBImpl(const Options& options, const std::string& dbname,
         ThreadPool* shared_pool = nullptr,
         CompactionLimiter* shared_limiter = nullptr,
         RateLimiter* shared_rate_limiter = nullptr);
  ~DBImpl() override;

  Status Put(const WriteOptions& options, const Slice& key, const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key, std::string* value) override;
  Status MultiGet(const ReadOptions& options, std::span<const Slice> keys,
                  std::vector<std::string>* values,
                  std::vector<Status>* statuses) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status FlushMemTable(bool wait) override;
  using DB::CompactRange;
  Status CompactRange(const Slice* begin, const Slice* end) override;
  Status HealthStatus() const override;
  DbStats GetStats() const override;
  uint64_t ApproximateMemoryUsage() const override;

 private:
  friend class DB;
  friend class ShardedDB;  // calls Initialize() on its sub-LSMs
  struct SnapshotImpl;

  /// One queued DB::Write (or memtable-switch request when batch == nullptr).
  /// Lives on the caller's stack; linked into writers_ under mu_.
  struct Writer {
    Writer(WriteBatch* b, bool s, Mutex* mu) : batch(b), sync(s), cv(mu) {}
    WriteBatch* batch;  // nullptr => force a memtable switch (FlushMemTable)
    bool sync;
    bool done = false;  // guarded by the DB mutex the cv is bound to
    Status status;      // guarded by the DB mutex the cv is bound to
    CondVar cv;
  };

  vfs::Vfs& fs() const;

  Status Initialize() EXCLUDES(mu_);         // open/create + recover
  Status NewDb() REQUIRES(mu_);              // write fresh CURRENT/manifest
  Status RecoverLogFile(uint64_t log_number, SequenceNumber* max_sequence)
      REQUIRES(mu_);
  Status WriteSerialized(const WriteOptions& options, WriteBatch* updates)
      EXCLUDES(mu_);
  WriteBatch* BuildBatchGroup(Writer** last_writer) REQUIRES(mu_);
  /// WAL-time key/value separation (leader-side, mu_ released or held —
  /// touches only leader-owned scratch and the internally-locked value
  /// log). Values of at least Options::value_log_threshold bytes are
  /// appended to the value log and their ops rewritten as kValuePointer.
  /// Returns `batch` untouched when nothing separates, else the rebuilt
  /// tmp_vlog_batch_ carrying the same sequence and op count/order (the
  /// per-writer sequence stamping stays valid).
  WriteBatch* SeparateLargeValues(WriteBatch* batch, Status* s);
  /// Replaces *value (an encoded ValuePointer) with the blob record's
  /// value bytes, checksum-verified.
  Status ResolvePointerValue(std::string* value) const;
  /// Admission control for the write path, called by the group-commit
  /// leader (or a serialized writer) with `batch_bytes` = the caller's
  /// batch payload. Switches/queues memtables, hard-stalls on a full
  /// immutable queue or an L0 at the stop trigger, and — between the soft
  /// and hard L0 triggers — injects the write controller's graduated
  /// pacing delay (at most once per call; batch_bytes == 0 is exempt).
  Status MakeRoomForWrite(uint64_t batch_bytes) REQUIRES(mu_);
  Status SwitchMemTable() REQUIRES(mu_);
  /// Recomputes the write controller's pressure from the current L0 file
  /// count and immutable-queue depth. Call after anything that changes
  /// either (memtable switch, flush/compaction install, recovery).
  void RefreshWritePressure() REQUIRES(mu_);
  /// Blocks the caller on stall_cv_, charging the wait to `window` (and,
  /// via the window, to the matching per-cause stall counter). Overlapping
  /// waiters share one wall-clock window, so stall time is not multiplied
  /// by the number of stalled threads.
  void StallWait(int cause) REQUIRES(mu_);
  /// Wakes stalled writers after background progress: wakes one memtable
  /// waiter per freed flush slot, every waiter when L0 drained (or on
  /// shutdown/error, where all must observe the latch).
  void SignalStalledWriters(bool l0_changed) REQUIRES(mu_);
  bool MemTableQueueFull() const REQUIRES(mu_) {
    return 1 + static_cast<int>(imm_queue_.size()) >=
           std::max(2, options_.max_write_buffer_number);
  }

  /// Latches the first background/write-pipeline failure. Once set, the
  /// engine is in sticky read-only mode: reads keep serving, every write
  /// entry point fails with ReadOnlyError() until the DB is reopened.
  void RecordBackgroundError(const Status& s) REQUIRES(mu_);
  /// The typed status writes receive while bg_error_ is latched.
  Status ReadOnlyError() const REQUIRES(mu_);

  // --- global write-memory pool (Options::write_memory_pool) ---
  /// Reports current memtable residency (active + immutable bytes) to the
  /// pool; `wrote` marks write activity for its cold-first victim policy.
  /// May synchronously invoke victim callbacks (ours or other stores') —
  /// those only set flags and submit pool tasks, never take a DB mutex.
  void ReportPoolUsage(bool wrote) REQUIRES(mu_);
  /// Victim callback invoked by the pool (pool mutex held, no DB mutex).
  /// Non-blocking: flags a switch for the next group-commit leader and
  /// schedules ArbiterFlushCall for stores with no writer in flight.
  void RequestArbiterFlush() EXCLUDES(mu_);
  /// Background half of the victim protocol: switches an idle store's
  /// memtable (an empty writer queue under mu_ gives leader-grade
  /// exclusivity) or falls back to scheduling/deferring.
  void ArbiterFlushCall() EXCLUDES(mu_);

  void MaybeScheduleFlush() REQUIRES(mu_);
  void MaybeScheduleCompaction() REQUIRES(mu_);
  /// Limiter callback: a compaction slot freed up, re-attempt scheduling.
  void RetryCompactionSchedule() EXCLUDES(mu_);
  void BackgroundFlushCall() EXCLUDES(mu_);
  void BackgroundCompactionCall() EXCLUDES(mu_);
  Status CompactMemTable(MemTable* imm) EXCLUDES(mu_);
  bool NeedsCompaction() const REQUIRES(mu_);
  /// True when value-log GC wants a compaction: some segment's garbage
  /// ratio crossed the threshold and a current table file still pins it.
  bool NeedsGcCompaction() const REQUIRES(mu_);
  /// Picks the pinning file(s) for a GC-driven compaction (lowest level
  /// first; all of L0 together to preserve newest-file-first shadowing).
  /// Returns the input level, or -1 when no file pins a candidate.
  int PickGcCompaction(std::vector<FileMetaData>* inputs) const REQUIRES(mu_);
  /// True when the file's user-key span intersects the manual compaction
  /// range currently installed (unbounded sides always match).
  bool FileOverlapsManualRange(const FileMetaData& f) const REQUIRES(mu_);
  Status BackgroundCompaction() EXCLUDES(mu_);
  /// Merges `level_inputs` (at `level`) + `next_inputs` (at `output_level`)
  /// into fresh tables installed at `output_level`. Normally output_level
  /// == level + 1; a GC-driven rewrite of bottom-level files passes
  /// output_level == level with no next_inputs. Live values in blob
  /// segments past the GC garbage threshold are relocated to the active
  /// segment under their original sequence numbers.
  Status CompactFiles(int level, const std::vector<FileMetaData>& level_inputs,
                      const std::vector<FileMetaData>& next_inputs,
                      int output_level) EXCLUDES(mu_);
  void RemoveObsoleteFiles() REQUIRES(mu_);

  Iterator* NewInternalIterator(const ReadOptions& options,
                                SequenceNumber* latest_snapshot) EXCLUDES(mu_);
  SequenceNumber SmallestSnapshot() const REQUIRES(mu_);

  // --- immutable after construction (unguarded: set by Open/Initialize
  // before any concurrent access; block_cache_ is internally synchronized)
  Options options_;
  std::string dbname_;
  InternalKeyComparator internal_comparator_;
  std::unique_ptr<const FilterPolicy> filter_policy_;
  /// Block cache in use: Options::block_cache when a shared (arbiter-owned)
  /// cache is configured — it must outlive this DB — else the privately
  /// owned one below. Inserts are charged to Options::tenant_id.
  Cache* block_cache_ = nullptr;
  std::unique_ptr<Cache> owned_block_cache_;
  /// Read-path counters updated lock-free by tables on reader threads;
  /// folded into DbStats by GetStats. Must outlive table_cache_.
  ReadCounters read_counters_;  // unguarded: lock-free atomic counters
  std::unique_ptr<TableCache> table_cache_;  // unguarded: set once; internally synchronized
  /// Blob segments for WAL-time key/value separation. Created by
  /// Initialize when Options::value_log_threshold > 0 or the store already
  /// has segments on disk (so a reopen with threshold=0 still resolves and
  /// GCs existing pointers); null otherwise. Immutable after Initialize;
  /// the ValueLog itself is internally synchronized (lock order:
  /// mu_ -> ValueLog::mu_, never the reverse). unguarded: see above.
  std::unique_ptr<ValueLog> vlog_;

  // --- concurrency state ---
  // Lock hierarchy (DESIGN.md §9): Manager -> LsmStore -> DBImpl::mu_ ->
  // cache shard mutexes / VFS-internal mutexes. mu_ is the engine-wide
  // mutex; compiler-enforced via the GUARDED_BY/REQUIRES annotations below.
  mutable Mutex mu_;
  CondVar bg_cv_{&mu_};
  /// Writers hard-stalled in MakeRoomForWrite (and flush barriers waiting
  /// for a queue slot) park here instead of on bg_cv_, so a background
  /// completion can wake exactly the writers that can now make progress:
  /// one per freed memtable slot, all when L0 drains. bg_cv_ keeps serving
  /// the broadcast-style completion waits (FlushMemTable(wait),
  /// CompactRange, the destructor).
  CondVar stall_cv_{&mu_};

  /// Stall causes writers can park on (indexes into stall_windows_).
  enum StallCause { kStallMemTable = 0, kStallL0 = 1, kNumStallCauses = 2 };
  /// Shared wall-clock window per stall cause: the first waiter opens the
  /// window, the last one out closes it and charges the elapsed time to
  /// the cause's counter — concurrent waiters never multiply stall time.
  struct StallWindow {
    int waiters = 0;
    uint64_t start_micros = 0;  // valid while waiters > 0
  };
  StallWindow stall_windows_[kNumStallCauses] GUARDED_BY(mu_);

  /// Graduated-backpressure state (Options::l0_slowdown_writes_trigger).
  WriteController write_controller_ GUARDED_BY(mu_);
  SystemClock* const clock_ = SystemClock::Default();

  /// unguarded: lock-free latency recorders (atomic buckets), updated
  /// outside mu_ on the operation's own thread, folded into DbStats
  /// snapshots by GetStats.
  LatencyHistogram write_latency_rec_;
  LatencyHistogram get_latency_rec_;   // unguarded: see write_latency_rec_
  LatencyHistogram multiget_latency_rec_;  // unguarded: see write_latency_rec_
  std::unique_ptr<VersionSet> versions_ GUARDED_BY(mu_);
  // mem_/log_/logfile_/tmp_batch_ follow the group-commit hybrid contract:
  // mutated only by the writers_ front ("leader"), which keeps exclusive
  // ownership even while mu_ is released for the WAL append/sync. All other
  // threads may only read the mem_ pointer under mu_ (taking a ref). The
  // static analysis cannot express leader exclusivity, so these members are
  // deliberately unguarded: leader-owned.
  MemTable* mem_ = nullptr;
  std::deque<MemTable*> imm_queue_ GUARDED_BY(mu_);  // oldest first; front
                                                     // flushes next
  // Parallel to imm_queue_: the WAL number that became active when the
  // corresponding memtable was retired. Once that memtable is flushed, WALs
  // below this number are no longer needed for recovery.
  std::deque<uint64_t> imm_log_queue_ GUARDED_BY(mu_);
  std::unique_ptr<vfs::WritableFile> logfile_;  // unguarded: leader-owned (see mem_)
  uint64_t logfile_number_ GUARDED_BY(mu_) = 0;
  std::unique_ptr<log::Writer> log_;  // unguarded: leader-owned (see mem_)
  std::deque<Writer*> writers_ GUARDED_BY(mu_);  // front = leader
  WriteBatch tmp_batch_;  // unguarded: leader-owned scratch for merged write groups
  WriteBatch tmp_vlog_batch_;  // unguarded: leader-owned scratch for separated groups
  bool flush_scheduled_ GUARDED_BY(mu_) = false;
  bool compaction_scheduled_ GUARDED_BY(mu_) = false;
  /// Set when MaybeScheduleCompaction lost the race for a limiter slot;
  /// cleared by RetryCompactionSchedule when the limiter re-dispatches us.
  bool compaction_waiting_ GUARDED_BY(mu_) = false;
  bool manual_compaction_requested_ GUARDED_BY(mu_) = false;
  // Manual (CompactRange) state: the requested user-key range, and a
  // completion generation counter so overlapping CompactRange callers each
  // wait for their own request instead of a re-armed flag.
  bool manual_has_begin_ GUARDED_BY(mu_) = false;
  bool manual_has_end_ GUARDED_BY(mu_) = false;
  std::string manual_begin_ GUARDED_BY(mu_);
  std::string manual_end_ GUARDED_BY(mu_);
  uint64_t manual_done_gen_ GUARDED_BY(mu_) = 0;
  Status bg_error_ GUARDED_BY(mu_);
  std::atomic<bool> shutting_down_{false};

  // --- write-memory pool attachment (Options::write_memory_pool) ---
  /// Pool attachment id; 0 = not attached. unguarded: set once in
  /// Initialize before concurrent access, cleared only by the destructor.
  uint64_t pool_attachment_ = 0;
  /// Set by the pool's victim callback; consumed by the group-commit
  /// leader in MakeRoomForWrite or by ArbiterFlushCall on idle stores.
  std::atomic<bool> arbiter_switch_requested_{false};
  /// True while an ArbiterFlushCall is queued/running on bg_pool_; the
  /// destructor waits it out (cleared under mu_, signalled via bg_cv_).
  std::atomic<bool> arbiter_task_pending_{false};

  std::set<uint64_t> pending_outputs_ GUARDED_BY(mu_);
  std::list<const SnapshotImpl*> snapshots_ GUARDED_BY(mu_);
  DbStats stats_ GUARDED_BY(mu_);

  // Background executor + compaction concurrency cap. Either shared (a
  // ShardedDB passes its store-wide instances, which outlive every shard)
  // or privately owned; the raw pointers below are what the code uses.
  // Owned instances are created last / destroyed first. All unguarded:
  // set once in Initialize, each internally synchronized.
  ThreadPool* bg_pool_ = nullptr;
  CompactionLimiter* limiter_ = nullptr;  // unguarded: see bg_pool_
  /// Background-I/O byte budget (Options::bytes_per_sec); null = unlimited.
  /// Shared across a ShardedDB's sub-LSMs, else privately owned. The
  /// RateLimiter is internally synchronized — charged outside mu_ by
  /// flush/compaction writer threads. unguarded: see bg_pool_.
  RateLimiter* rate_limiter_ = nullptr;
  std::unique_ptr<RateLimiter> owned_rate_limiter_;   // unguarded: see bg_pool_
  std::unique_ptr<CompactionLimiter> owned_limiter_;  // unguarded: see bg_pool_
  std::unique_ptr<ThreadPool> owned_bg_pool_;         // unguarded: see bg_pool_
};

/// The compaction concurrency cap for `options`: the explicit
/// max_concurrent_compactions when set, else max(1, background_threads-1)
/// so one pool thread stays free for memtable flushes.
inline int EffectiveCompactionCap(const Options& options) {
  if (options.max_concurrent_compactions > 0) {
    return options.max_concurrent_compactions;
  }
  return std::max(1, options.background_threads - 1);
}

}  // namespace lsmio::lsm
