// DBImpl: the concrete engine behind lsm::DB. Writes go through a
// LevelDB/RocksDB-style group-commit queue: concurrent writers line up,
// the front writer merges the pending batches and performs one WAL
// append/sync for the whole group with the mutex released. Memtables roll
// into a queue of immutables (max_write_buffer_number) flushed by a
// background thread; flush and compaction are scheduled independently so
// a long compaction never blocks a flush. Leveled compaction can be
// disabled entirely (paper mode: flushes accumulate as L0 files).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>

#include "common/thread_pool.h"
#include "lsm/db.h"
#include "lsm/dbformat.h"
#include "lsm/log_writer.h"
#include "lsm/memtable.h"
#include "lsm/read_stats.h"
#include "lsm/table_cache.h"
#include "lsm/version.h"

namespace lsmio::lsm {

class FilterPolicy;

class DBImpl final : public DB {
 public:
  DBImpl(const Options& options, const std::string& dbname);
  ~DBImpl() override;

  Status Put(const WriteOptions& options, const Slice& key, const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key, std::string* value) override;
  Status MultiGet(const ReadOptions& options, std::span<const Slice> keys,
                  std::vector<std::string>* values,
                  std::vector<Status>* statuses) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status FlushMemTable(bool wait) override;
  Status CompactRange() override;
  DbStats GetStats() const override;
  uint64_t ApproximateMemoryUsage() const override;

 private:
  friend class DB;
  struct SnapshotImpl;

  /// One queued DB::Write (or memtable-switch request when batch == nullptr).
  /// Lives on the caller's stack; linked into writers_ under mu_.
  struct Writer {
    explicit Writer(WriteBatch* b, bool s) : batch(b), sync(s) {}
    WriteBatch* batch;  // nullptr => force a memtable switch (FlushMemTable)
    bool sync;
    bool done = false;
    Status status;
    std::condition_variable cv;
  };

  vfs::Vfs& fs() const;

  Status Initialize();                       // open/create + recover
  Status NewDb();                            // write fresh CURRENT/manifest
  Status RecoverLogFile(uint64_t log_number, SequenceNumber* max_sequence);
  Status WriteSerialized(const WriteOptions& options, WriteBatch* updates);
  WriteBatch* BuildBatchGroup(Writer** last_writer);  // mu_ held
  Status MakeRoomForWrite(std::unique_lock<std::mutex>& lock);
  Status SwitchMemTable(std::unique_lock<std::mutex>& lock);
  bool MemTableQueueFull() const {            // mu_ held
    return 1 + static_cast<int>(imm_queue_.size()) >=
           std::max(2, options_.max_write_buffer_number);
  }

  void MaybeScheduleFlush(std::unique_lock<std::mutex>& lock);
  void MaybeScheduleCompaction(std::unique_lock<std::mutex>& lock);
  void BackgroundFlushCall();
  void BackgroundCompactionCall();
  Status CompactMemTable(MemTable* imm);
  bool NeedsCompaction() const;
  Status BackgroundCompaction();
  Status CompactFiles(int level, const std::vector<FileMetaData>& level_inputs,
                      const std::vector<FileMetaData>& next_inputs);
  void RemoveObsoleteFiles();

  Iterator* NewInternalIterator(const ReadOptions& options,
                                SequenceNumber* latest_snapshot);
  SequenceNumber SmallestSnapshot() const;  // mu_ held

  uint64_t MaxBytesForLevel(int level) const;

  // --- immutable after construction ---
  Options options_;
  std::string dbname_;
  InternalKeyComparator internal_comparator_;
  std::unique_ptr<const FilterPolicy> filter_policy_;
  std::unique_ptr<Cache> block_cache_;
  /// Read-path counters updated lock-free by tables on reader threads;
  /// folded into DbStats by GetStats. Must outlive table_cache_.
  ReadCounters read_counters_;
  std::unique_ptr<TableCache> table_cache_;

  // --- guarded by mu_ ---
  mutable std::mutex mu_;
  std::condition_variable bg_cv_;
  std::unique_ptr<VersionSet> versions_;
  MemTable* mem_ = nullptr;
  std::deque<MemTable*> imm_queue_;  // oldest first; front flushes next
  std::unique_ptr<vfs::WritableFile> logfile_;
  uint64_t logfile_number_ = 0;
  std::unique_ptr<log::Writer> log_;
  std::deque<Writer*> writers_;  // front = leader; only the leader (with
                                 // writers_ exclusivity) touches mem_/log_
                                 // while mu_ is released
  WriteBatch tmp_batch_;         // scratch for merged write groups
  bool flush_scheduled_ = false;
  bool compaction_scheduled_ = false;
  bool manual_compaction_requested_ = false;
  Status bg_error_;
  std::atomic<bool> shutting_down_{false};
  std::set<uint64_t> pending_outputs_;
  std::list<const SnapshotImpl*> snapshots_;
  DbStats stats_;

  // Background executor; created last, destroyed first.
  std::unique_ptr<ThreadPool> bg_pool_;
};

}  // namespace lsmio::lsm
