#include "lsm/block_builder.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"

namespace lsmio::lsm {

BlockBuilder::BlockBuilder(const Options* options) : options_(options) {
  assert(options->block_restart_interval >= 1);
  restarts_.push_back(0);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  finished_ = false;
  last_key_.clear();
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  if (finished_) return buffer_.size();  // restart array already appended
  return buffer_.size() + restarts_.size() * sizeof(uint32_t) + sizeof(uint32_t);
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  assert(!finished_);
  assert(counter_ <= options_->block_restart_interval);

  size_t shared = 0;
  if (counter_ < options_->block_restart_interval) {
    // Shared prefix with the previous key.
    const Slice last(last_key_);
    const size_t min_len = std::min(last.size(), key.size());
    while (shared < min_len && last[shared] == key[shared]) ++shared;
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  ++counter_;
}

Slice BlockBuilder::Finish() {
  for (const uint32_t restart : restarts_) PutFixed32(&buffer_, restart);
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

}  // namespace lsmio::lsm
