#include "lsm/arena.h"

#include <cstdint>

namespace lsmio::lsm {

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large allocation gets its own block so we don't waste the remainder
    // of the current block.
    return AllocateNewBlock(bytes);
  }
  alloc_ptr_ = AllocateNewBlock(kBlockSize);
  alloc_bytes_remaining_ = kBlockSize;

  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_bytes_remaining_ -= bytes;
  return result;
}

char* Arena::AllocateAligned(size_t bytes) {
  constexpr size_t align = alignof(void*);
  static_assert((align & (align - 1)) == 0, "alignment must be a power of two");
  const size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (align - 1);
  const size_t slop = current_mod == 0 ? 0 : align - current_mod;
  const size_t needed = bytes + slop;
  if (needed <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
    return result;
  }
  // AllocateFallback always returns pointer-aligned memory (fresh block or
  // new/operator-new aligned allocation).
  return AllocateFallback(bytes);
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  auto block = std::make_unique<char[]>(block_bytes);
  char* result = block.get();
  blocks_.push_back(std::move(block));
  memory_usage_.fetch_add(block_bytes + sizeof(void*), std::memory_order_relaxed);
  return result;
}

}  // namespace lsmio::lsm
