// Bump allocator backing a MemTable: allocations live until the arena dies
// (the memtable is flushed and dropped as a unit, so no per-node frees).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

namespace lsmio::lsm {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns bytes-aligned storage for `bytes` (> 0).
  char* Allocate(size_t bytes);

  /// Returns pointer-aligned storage for `bytes` (> 0).
  char* AllocateAligned(size_t bytes);

  /// Approximate total memory footprint of the arena.
  [[nodiscard]] size_t MemoryUsage() const noexcept {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kBlockSize = 4096;

  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

inline char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace lsmio::lsm
