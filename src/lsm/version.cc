#include "lsm/version.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"
#include "lsm/comparator.h"
#include "lsm/log_reader.h"
#include "lsm/log_writer.h"
#include "lsm/table_cache.h"
#include "vfs/posix_vfs.h"

namespace lsmio::lsm {

// --- Version ---------------------------------------------------------------

uint64_t Version::TotalBytes(int level) const {
  uint64_t total = 0;
  for (const auto& f : files[level]) total += f.file_size;
  return total;
}

int Version::TotalFiles() const {
  int n = 0;
  for (const auto& level_files : files) n += static_cast<int>(level_files.size());
  return n;
}

uint64_t MaxBytesForLevel(const Options& options, int level) {
  uint64_t result = options.max_bytes_for_level_base;
  for (int l = 1; l < level; ++l) result *= 10;
  return result;
}

double Version::CompactionScore(int level, const Options& options) const {
  if (level == 0) {
    const int trigger = std::max(1, options.l0_compaction_trigger);
    double score =
        static_cast<double>(NumFiles(0)) / static_cast<double>(trigger);
    const int soft = options.l0_slowdown_writes_trigger;
    if (soft > 0 && NumFiles(0) >= soft) {
      // Past the slowdown trigger every admitted write is paying a pacing
      // delay: make L0 outrank any byte-overflowing level (which can wait)
      // so the pressure the writers feel is the pressure being relieved.
      score = std::max(score, kL0PressureScore +
                                  static_cast<double>(NumFiles(0) - soft));
    }
    return score;
  }
  return static_cast<double>(TotalBytes(level)) /
         static_cast<double>(MaxBytesForLevel(options, level));
}

int Version::PickCompactionLevel(const Options& options, double* score) const {
  int best_level = -1;
  double best_score = 0.0;
  // L0 triggers at score >= 1 (file count reached the trigger); deeper
  // levels only once strictly over their byte budget. The last level has
  // nowhere to push into, so it is never size-picked (GC rewrites handle
  // it separately).
  if (CompactionScore(0, options) >= 1.0) {
    best_level = 0;
    best_score = CompactionScore(0, options);
  }
  for (int level = 1; level < kNumLevels - 1; ++level) {
    const double s = CompactionScore(level, options);
    if (s > 1.0 && s > best_score) {
      best_level = level;
      best_score = s;
    }
  }
  if (score != nullptr) *score = best_score;
  return best_level;
}

Status Version::Get(const ReadOptions& options, TableCache* table_cache,
                    const LookupKey& key, std::string* value,
                    bool* is_pointer) const {
  const Comparator* ucmp = icmp_->user_comparator();
  const Slice user_key = key.user_key();
  const Slice internal_key = key.internal_key();

  struct GetState {
    enum { kNotFound, kFound, kDeleted, kCorrupt } state = kNotFound;
    Slice user_key;
    const InternalKeyComparator* icmp;
    std::string* value;
    bool* is_pointer;
  } state;
  state.user_key = user_key;
  state.icmp = icmp_;
  state.value = value;
  state.is_pointer = is_pointer;

  auto saver = [&state](const Slice& ikey, const Slice& v) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(ikey, &parsed)) {
      state.state = GetState::kCorrupt;
      return;
    }
    if (state.icmp->user_comparator()->Compare(parsed.user_key, state.user_key) != 0) {
      return;  // a different key: not found in this table
    }
    if (parsed.type == ValueType::kValue ||
        parsed.type == ValueType::kValuePointer) {
      state.value->assign(v.data(), v.size());
      state.state = GetState::kFound;
      if (state.is_pointer != nullptr) {
        *state.is_pointer = parsed.type == ValueType::kValuePointer;
      }
    } else {
      state.state = GetState::kDeleted;
    }
  };

  // L0: newest first, check every overlapping file.
  for (const auto& f : files[0]) {
    if (ucmp->Compare(user_key, ExtractUserKey(Slice(f.smallest))) >= 0 &&
        ucmp->Compare(user_key, ExtractUserKey(Slice(f.largest))) <= 0) {
      LSMIO_RETURN_IF_ERROR(
          table_cache->Get(options, f.number, f.file_size, internal_key, saver));
      switch (state.state) {
        case GetState::kFound: return Status::OK();
        case GetState::kDeleted: return Status::NotFound("deleted");
        case GetState::kCorrupt: return Status::Corruption("corrupted key");
        case GetState::kNotFound: break;
      }
    }
  }

  // L1+: files are sorted and disjoint; binary search by largest key.
  for (int level = 1; level < kNumLevels; ++level) {
    const auto& level_files = files[level];
    if (level_files.empty()) continue;
    const auto it = std::lower_bound(
        level_files.begin(), level_files.end(), internal_key,
        [this](const FileMetaData& f, const Slice& target) {
          return icmp_->Compare(Slice(f.largest), target) < 0;
        });
    if (it == level_files.end()) continue;
    if (ucmp->Compare(user_key, ExtractUserKey(Slice(it->smallest))) < 0) continue;

    LSMIO_RETURN_IF_ERROR(
        table_cache->Get(options, it->number, it->file_size, internal_key, saver));
    switch (state.state) {
      case GetState::kFound: return Status::OK();
      case GetState::kDeleted: return Status::NotFound("deleted");
      case GetState::kCorrupt: return Status::Corruption("corrupted key");
      case GetState::kNotFound: break;
    }
  }
  return Status::NotFound("key not present");
}

Status Version::MultiGet(const ReadOptions& options, TableCache* table_cache,
                         std::span<GetRequest*> reqs) const {
  const Comparator* ucmp = icmp_->user_comparator();

  enum class KeyState : uint8_t { kNotFound, kFound, kDeleted, kCorrupt };

  // Probes one table file with a sorted group of unresolved requests.
  auto probe_file = [&](const FileMetaData& f,
                        const std::vector<GetRequest*>& group) -> Status {
    std::vector<Slice> ikeys;
    ikeys.reserve(group.size());
    for (const GetRequest* req : group) ikeys.push_back(req->lkey->internal_key());
    std::vector<KeyState> states(group.size(), KeyState::kNotFound);

    auto saver = [&](size_t i, const Slice& ikey, const Slice& v) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(ikey, &parsed)) {
        states[i] = KeyState::kCorrupt;
        return;
      }
      if (ucmp->Compare(parsed.user_key, group[i]->lkey->user_key()) != 0) {
        return;  // a different key: not found in this table
      }
      if (parsed.type == ValueType::kValue ||
          parsed.type == ValueType::kValuePointer) {
        group[i]->value->assign(v.data(), v.size());
        group[i]->is_pointer = parsed.type == ValueType::kValuePointer;
        states[i] = KeyState::kFound;
      } else {
        states[i] = KeyState::kDeleted;
      }
    };

    LSMIO_RETURN_IF_ERROR(
        table_cache->MultiGet(options, f.number, f.file_size, ikeys, saver));
    for (size_t i = 0; i < group.size(); ++i) {
      GetRequest* req = group[i];
      switch (states[i]) {
        case KeyState::kFound:
          *req->status = Status::OK();
          req->done = true;
          break;
        case KeyState::kDeleted:
          *req->status = Status::NotFound("deleted");
          req->done = true;
          break;
        case KeyState::kCorrupt:
          *req->status = Status::Corruption("corrupted key");
          req->done = true;
          break;
        case KeyState::kNotFound:
          break;
      }
    }
    return Status::OK();
  };

  // L0: newest first; each file is probed once with its in-range keys.
  for (const auto& f : files[0]) {
    const Slice smallest = ExtractUserKey(Slice(f.smallest));
    const Slice largest = ExtractUserKey(Slice(f.largest));
    std::vector<GetRequest*> group;
    for (GetRequest* req : reqs) {
      if (req->done) continue;
      const Slice uk = req->lkey->user_key();
      if (ucmp->Compare(uk, smallest) >= 0 && ucmp->Compare(uk, largest) <= 0) {
        group.push_back(req);
      }
    }
    if (!group.empty()) LSMIO_RETURN_IF_ERROR(probe_file(f, group));
  }

  // L1+: files are sorted and disjoint; binary-search the first key's file,
  // then extend the group with the run of following keys inside it.
  for (int level = 1; level < kNumLevels; ++level) {
    const auto& level_files = files[level];
    if (level_files.empty()) continue;
    size_t i = 0;
    while (i < reqs.size()) {
      GetRequest* req = reqs[i];
      if (req->done) {
        ++i;
        continue;
      }
      const Slice internal_key = req->lkey->internal_key();
      const auto it = std::lower_bound(
          level_files.begin(), level_files.end(), internal_key,
          [this](const FileMetaData& f, const Slice& target) {
            return icmp_->Compare(Slice(f.largest), target) < 0;
          });
      if (it == level_files.end() ||
          ucmp->Compare(req->lkey->user_key(),
                        ExtractUserKey(Slice(it->smallest))) < 0) {
        ++i;
        continue;
      }
      const Slice largest = ExtractUserKey(Slice(it->largest));
      std::vector<GetRequest*> group{req};
      size_t j = i + 1;
      for (; j < reqs.size(); ++j) {
        if (ucmp->Compare(reqs[j]->lkey->user_key(), largest) > 0) break;
        if (!reqs[j]->done) group.push_back(reqs[j]);
      }
      LSMIO_RETURN_IF_ERROR(probe_file(*it, group));
      i = j;
    }
  }
  return Status::OK();
}

void Version::AddIterators(const ReadOptions& options, TableCache* table_cache,
                           std::vector<Iterator*>* iters) const {
  for (const auto& level_files : files) {
    for (const auto& f : level_files) {
      iters->push_back(table_cache->NewIterator(options, f.number, f.file_size));
    }
  }
}

// --- VersionSet --------------------------------------------------------------

VersionSet::VersionSet(std::string dbname, const Options& options,
                       const InternalKeyComparator* icmp, TableCache* table_cache)
    : dbname_(std::move(dbname)),
      options_(options),
      icmp_(icmp),
      table_cache_(table_cache),
      current_(std::make_shared<Version>(icmp)) {}

VersionSet::~VersionSet() = default;

vfs::Vfs& VersionSet::fs() const {
  return options_.vfs != nullptr ? *options_.vfs : vfs::PosixVfs();
}

std::string VersionSet::EncodeSnapshot() const {
  std::string out;
  PutLengthPrefixedSlice(&out, icmp_->user_comparator()->Name());
  PutVarint64(&out, log_number_);
  PutVarint64(&out, next_file_number_);
  PutVarint64(&out, last_sequence_);
  PutVarint32(&out, kNumLevels);
  for (int level = 0; level < kNumLevels; ++level) {
    const auto& files = current_->files[level];
    PutVarint32(&out, static_cast<uint32_t>(files.size()));
    for (const auto& f : files) {
      PutVarint64(&out, f.number);
      PutVarint64(&out, f.file_size);
      PutLengthPrefixedSlice(&out, Slice(f.smallest));
      PutLengthPrefixedSlice(&out, Slice(f.largest));
    }
  }

  // Value-log extension section. Appended only when the store actually has
  // blob segments (or tables referencing them), so stores that never used
  // the value log keep a byte-for-byte identical manifest; decoders treat a
  // record that ends here as having an empty extension.
  std::vector<BlobSegmentMeta> segments;
  if (blob_segment_provider_) segments = blob_segment_provider_();
  bool any_refs = false;
  for (int level = 0; level < kNumLevels && !any_refs; ++level) {
    for (const auto& f : current_->files[level]) {
      if (!f.blob_refs.empty()) {
        any_refs = true;
        break;
      }
    }
  }
  if (!segments.empty() || any_refs) {
    PutVarint32(&out, static_cast<uint32_t>(segments.size()));
    for (const auto& seg : segments) {
      PutVarint64(&out, seg.number);
      PutVarint64(&out, seg.total_bytes);
      PutVarint64(&out, seg.live_bytes);
    }
    uint32_t files_with_refs = 0;
    for (int level = 0; level < kNumLevels; ++level) {
      for (const auto& f : current_->files[level]) {
        if (!f.blob_refs.empty()) ++files_with_refs;
      }
    }
    PutVarint32(&out, files_with_refs);
    for (int level = 0; level < kNumLevels; ++level) {
      for (const auto& f : current_->files[level]) {
        if (f.blob_refs.empty()) continue;
        PutVarint64(&out, f.number);
        PutVarint32(&out, static_cast<uint32_t>(f.blob_refs.size()));
        for (const uint64_t seg : f.blob_refs) PutVarint64(&out, seg);
      }
    }
  }
  return out;
}

Status VersionSet::DecodeSnapshot(const Slice& record) {
  Slice input = record;
  Slice comparator_name;
  if (!GetLengthPrefixedSlice(&input, &comparator_name)) {
    return Status::Corruption("manifest: bad comparator name");
  }
  if (comparator_name != Slice(icmp_->user_comparator()->Name())) {
    return Status::InvalidArgument(
        "comparator mismatch: db uses " + comparator_name.ToString() +
        ", options supply " + icmp_->user_comparator()->Name());
  }
  uint64_t log_number, next_file, last_seq;
  uint32_t num_levels;
  if (!GetVarint64(&input, &log_number) || !GetVarint64(&input, &next_file) ||
      !GetVarint64(&input, &last_seq) || !GetVarint32(&input, &num_levels)) {
    return Status::Corruption("manifest: bad header fields");
  }
  if (num_levels > kNumLevels) {
    return Status::Corruption("manifest: too many levels");
  }

  auto v = std::make_shared<Version>(icmp_);
  for (uint32_t level = 0; level < num_levels; ++level) {
    uint32_t count;
    if (!GetVarint32(&input, &count)) return Status::Corruption("manifest: bad count");
    for (uint32_t i = 0; i < count; ++i) {
      FileMetaData f;
      Slice smallest, largest;
      if (!GetVarint64(&input, &f.number) || !GetVarint64(&input, &f.file_size) ||
          !GetLengthPrefixedSlice(&input, &smallest) ||
          !GetLengthPrefixedSlice(&input, &largest)) {
        return Status::Corruption("manifest: bad file record");
      }
      f.smallest = smallest.ToString();
      f.largest = largest.ToString();
      v->files[level].push_back(std::move(f));
    }
  }

  // Optional value-log extension (see EncodeSnapshot). Records from stores
  // that never used the value log end exactly at the levels section.
  std::vector<BlobSegmentMeta> segments;
  if (!input.empty()) {
    uint32_t segment_count = 0;
    if (!GetVarint32(&input, &segment_count)) {
      return Status::Corruption("manifest: bad blob segment count");
    }
    segments.reserve(segment_count);
    for (uint32_t i = 0; i < segment_count; ++i) {
      BlobSegmentMeta meta;
      if (!GetVarint64(&input, &meta.number) ||
          !GetVarint64(&input, &meta.total_bytes) ||
          !GetVarint64(&input, &meta.live_bytes)) {
        return Status::Corruption("manifest: bad blob segment record");
      }
      segments.push_back(meta);
    }
    uint32_t files_with_refs = 0;
    if (!GetVarint32(&input, &files_with_refs)) {
      return Status::Corruption("manifest: bad blob ref count");
    }
    for (uint32_t i = 0; i < files_with_refs; ++i) {
      uint64_t file_number = 0;
      uint32_t ref_count = 0;
      if (!GetVarint64(&input, &file_number) || !GetVarint32(&input, &ref_count)) {
        return Status::Corruption("manifest: bad blob ref record");
      }
      std::vector<uint64_t> refs(ref_count);
      for (uint32_t r = 0; r < ref_count; ++r) {
        if (!GetVarint64(&input, &refs[r])) {
          return Status::Corruption("manifest: bad blob ref entry");
        }
      }
      for (auto& level_files : v->files) {
        for (auto& f : level_files) {
          if (f.number == file_number) f.blob_refs = refs;
        }
      }
    }
  }
  recovered_blob_segments_ = std::move(segments);

  log_number_ = log_number;
  next_file_number_ = next_file;
  last_sequence_ = last_seq;
  retained_.push_back(current_);
  current_ = std::move(v);
  return Status::OK();
}

Status VersionSet::SetCurrentFile(uint64_t manifest_number) {
  // Write CURRENT via a temp file + rename for atomicity.
  const std::string contents =
      "MANIFEST-" + std::to_string(manifest_number).insert(
          0, 6 - std::min<size_t>(6, std::to_string(manifest_number).size()), '0') +
      "\n";
  const std::string tmp = dbname_ + "/CURRENT.tmp";
  LSMIO_RETURN_IF_ERROR(vfs::WriteStringToFile(fs(), tmp, contents));
  return fs().RenameFile(tmp, CurrentFileName(dbname_));
}

Status VersionSet::WriteSnapshot() {
  AssertOwnerHeld();
  // Start a fresh manifest file.
  manifest_file_number_ = NewFileNumber();
  const std::string fname = ManifestFileName(dbname_, manifest_file_number_);
  std::unique_ptr<vfs::WritableFile> file;
  LSMIO_RETURN_IF_ERROR(fs().NewWritableFile(fname, {}, &file));
  auto writer = std::make_unique<log::Writer>(file.get());
  const std::string record = EncodeSnapshot();
  Status s = writer->AddRecord(record);
  if (s.ok()) s = file->Sync();
  if (!s.ok()) {
    // Failure path: the half-written manifest is being discarded (CURRENT
    // still points at the old one); `s` carries the root cause.
    file->Close().IgnoreError();
    fs().RemoveFile(fname).IgnoreError();
    return s;
  }
  manifest_file_ = std::move(file);
  manifest_log_ = std::move(writer);
  return SetCurrentFile(manifest_file_number_);
}

Status VersionSet::Recover(bool* save_manifest) {
  AssertOwnerHeld();
  *save_manifest = false;
  std::string current;
  Status s = vfs::ReadFileToString(fs(), CurrentFileName(dbname_), &current);
  if (!s.ok()) return s;
  if (current.empty() || current.back() != '\n') {
    return Status::Corruption("CURRENT file is malformed");
  }
  current.pop_back();

  const std::string manifest_path = dbname_ + "/" + current;
  std::unique_ptr<vfs::SequentialFile> file;
  LSMIO_RETURN_IF_ERROR(fs().NewSequentialFile(manifest_path, {}, &file));

  struct Reporter final : log::Reader::Reporter {
    Status status;
    void Corruption(size_t, const Status& reason) override {
      if (status.ok()) status = reason;
    }
  } reporter;

  log::Reader reader(file.get(), &reporter, /*checksum=*/true);
  Slice record;
  std::string scratch;
  bool found = false;
  // Apply every snapshot record; the last one wins.
  while (reader.ReadRecord(&record, &scratch)) {
    LSMIO_RETURN_IF_ERROR(DecodeSnapshot(record));
    found = true;
  }
  if (!reporter.status.ok()) return reporter.status;
  if (!found) return Status::Corruption("manifest has no snapshot record");

  uint64_t manifest_number = 0;
  FileType type;
  if (ParseFileName(current, &manifest_number, &type) &&
      type == FileType::kManifestFile && manifest_number >= next_file_number_) {
    next_file_number_ = manifest_number + 1;
  }

  // Append future records to a fresh manifest (simpler than re-opening the
  // old one for append).
  *save_manifest = true;
  return Status::OK();
}

Status VersionSet::LogAndApply(std::shared_ptr<Version> v) {
  AssertOwnerHeld();
  retained_.push_back(current_);
  current_ = std::move(v);
  if (manifest_log_ == nullptr) {
    return WriteSnapshot();
  }
  const std::string record = EncodeSnapshot();
  Status s = manifest_log_->AddRecord(record);
  // Always fsync: callers delete obsolete files (compaction inputs, old
  // WALs) right after LogAndApply returns, so an unsynced manifest record
  // could leave the durable snapshot pointing at files that no longer
  // exist after a power failure.
  if (s.ok()) s = manifest_file_->Sync();
  return s;
}

std::shared_ptr<Version> VersionSet::MakeVersion(
    const std::vector<std::pair<int, FileMetaData>>& additions,
    const std::vector<std::pair<int, uint64_t>>& deletions) const {
  AssertOwnerHeld();
  auto v = std::make_shared<Version>(icmp_);
  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& f : current_->files[level]) {
      const bool deleted = std::any_of(
          deletions.begin(), deletions.end(), [&](const auto& d) {
            return d.first == level && d.second == f.number;
          });
      if (!deleted) v->files[level].push_back(f);
    }
  }
  for (const auto& [level, f] : additions) {
    assert(level >= 0 && level < kNumLevels);
    v->files[level].push_back(f);
  }
  // Keep L0 newest-first, L1+ sorted by smallest key.
  std::sort(v->files[0].begin(), v->files[0].end(),
            [](const FileMetaData& a, const FileMetaData& b) {
              return a.number > b.number;
            });
  for (int level = 1; level < kNumLevels; ++level) {
    std::sort(v->files[level].begin(), v->files[level].end(),
              [this](const FileMetaData& a, const FileMetaData& b) {
                return icmp_->Compare(Slice(a.smallest), Slice(b.smallest)) < 0;
              });
  }
  return v;
}

void VersionSet::AddLiveFiles(std::vector<uint64_t>* live) const {
  AssertOwnerHeld();
  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& f : current_->files[level]) live->push_back(f.number);
  }
  // Old versions still pinned by readers keep their files live; prune the
  // rest. Called with the DB mutex held, so no one else mutates retained_.
  auto it = retained_.begin();
  while (it != retained_.end()) {
    if (const auto v = it->lock()) {
      for (int level = 0; level < kNumLevels; ++level) {
        for (const auto& f : v->files[level]) live->push_back(f.number);
      }
      ++it;
    } else {
      it = retained_.erase(it);
    }
  }
}

void VersionSet::CollectVersionGuards(
    std::vector<std::weak_ptr<const void>>* guards) const {
  AssertOwnerHeld();
  auto it = retained_.begin();
  while (it != retained_.end()) {
    if (it->expired()) {
      it = retained_.erase(it);
    } else {
      guards->push_back(*it);
      ++it;
    }
  }
}

}  // namespace lsmio::lsm
