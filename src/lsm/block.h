// Read side of a data/index block produced by BlockBuilder.
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "lsm/comparator.h"
#include "lsm/iterator.h"

namespace lsmio::lsm {

class Block {
 public:
  /// Takes ownership of heap-allocated contents.
  explicit Block(std::string contents);

  /// Borrows `contents`; the caller keeps the bytes alive for the block's
  /// (and its iterators') lifetime. Lets a coalesced multi-block read serve
  /// several blocks from one buffer without a per-block copy.
  explicit Block(const Slice& contents);

  ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  [[nodiscard]] size_t size() const noexcept { return data_.size(); }

  /// New iterator (caller deletes). `cmp` must outlive the iterator.
  Iterator* NewIterator(const Comparator* cmp);

 private:
  class Iter;

  [[nodiscard]] uint32_t NumRestarts() const noexcept;

  void Init();

  std::string contents_;  // empty when the block borrows its bytes
  Slice data_;            // the block bytes (owned or borrowed)
  uint32_t restart_offset_ = 0;  // offset of restart array
  bool malformed_ = false;
};

}  // namespace lsmio::lsm
