// K-way merging iterator over memtable + L0 tables + level tables — the
// "merge sort"-style read path the paper describes for LSM reads.
#pragma once

#include "lsm/comparator.h"
#include "lsm/iterator.h"

namespace lsmio::lsm {

/// Merges n children into one sorted stream (duplicates preserved in child
/// order; callers use internal-key ordering so newer versions come first).
/// Takes ownership of the children. n == 0 yields an empty iterator.
Iterator* NewMergingIterator(const Comparator* comparator, Iterator** children, int n);

}  // namespace lsmio::lsm
