// BuildTable: drains an iterator (normally a memtable's) into a new SSTable
// — the memtable-flush primitive shared by flush and recovery.
#pragma once

#include <string>

#include "common/rate_limiter.h"
#include "common/status.h"
#include "lsm/options.h"
#include "lsm/version.h"

namespace lsmio::lsm {

class Iterator;
class InternalKeyComparator;
class FilterPolicy;

/// Writes the (sorted internal-key) contents of *iter to a new table file
/// named after meta->number. On success fills *meta; on failure or empty
/// input, removes the file and leaves meta->file_size == 0. When
/// `rate_limiter` is non-null, table writes are charged to it at high
/// priority (flushes gate writer admission, so they preempt compaction
/// I/O); recovery-time callers pass null to rebuild at full speed.
Status BuildTable(const std::string& dbname, vfs::Vfs& fs, const Options& options,
                  const InternalKeyComparator* icmp,
                  const FilterPolicy* filter_policy, Iterator* iter,
                  FileMetaData* meta, RateLimiter* rate_limiter = nullptr);

}  // namespace lsmio::lsm
