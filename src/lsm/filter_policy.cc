#include "lsm/filter_policy.h"

#include "common/hash.h"

namespace lsmio::lsm {
namespace {

uint32_t BloomHash(const Slice& key) { return Hash32(key, 0xbc9f1d34u); }

class BloomFilterPolicy final : public FilterPolicy {
 public:
  explicit BloomFilterPolicy(int bits_per_key) : bits_per_key_(bits_per_key) {
    // k = bits_per_key * ln(2), clamped.
    k_ = static_cast<int>(static_cast<double>(bits_per_key) * 0.69);
    if (k_ < 1) k_ = 1;
    if (k_ > 30) k_ = 30;
  }

  const char* Name() const override { return "lsmio.BuiltinBloomFilter"; }

  void CreateFilter(const Slice* keys, int n, std::string* dst) const override {
    size_t bits = static_cast<size_t>(n) * static_cast<size_t>(bits_per_key_);
    if (bits < 64) bits = 64;
    const size_t bytes = (bits + 7) / 8;
    bits = bytes * 8;

    const size_t init_size = dst->size();
    dst->resize(init_size + bytes, 0);
    dst->push_back(static_cast<char>(k_));  // remember k in the filter
    char* array = dst->data() + init_size;
    for (int i = 0; i < n; ++i) {
      // Double hashing: h, then advance by delta per probe.
      uint32_t h = BloomHash(keys[i]);
      const uint32_t delta = (h >> 17) | (h << 15);
      for (int j = 0; j < k_; ++j) {
        const size_t bitpos = h % bits;
        array[bitpos / 8] = static_cast<char>(array[bitpos / 8] | (1 << (bitpos % 8)));
        h += delta;
      }
    }
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    const size_t len = filter.size();
    if (len < 2) return false;
    const char* array = filter.data();
    const size_t bits = (len - 1) * 8;

    const int k = static_cast<unsigned char>(array[len - 1]);
    if (k > 30) return true;  // reserved for future encodings: match-all

    uint32_t h = BloomHash(key);
    const uint32_t delta = (h >> 17) | (h << 15);
    for (int j = 0; j < k; ++j) {
      const size_t bitpos = h % bits;
      if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
      h += delta;
    }
    return true;
  }

 private:
  int bits_per_key_;
  int k_;
};

}  // namespace

const FilterPolicy* NewBloomFilterPolicy(int bits_per_key) {
  return new BloomFilterPolicy(bits_per_key);
}

}  // namespace lsmio::lsm
