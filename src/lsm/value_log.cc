#include "lsm/value_log.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"
#include "lsm/dbformat.h"
#include "vfs/vfs.h"

namespace lsmio::lsm {

namespace {

/// crc(4) + key_len(>=1) + value_len(>=1): the smallest parseable record.
constexpr uint64_t kMinRecordSize = 6;
/// Reject absurd pointer lengths before allocating a read buffer.
constexpr uint64_t kMaxRecordSize = 1ULL << 32;
/// Bounded cache of open segment read handles.
constexpr size_t kMaxOpenSegments = 64;

/// Parses a checksummed record; on success key/value point into `rec`.
Status ParseRecord(const Slice& rec, Slice* key, Slice* value) {
  if (rec.size() < kMinRecordSize) {
    return Status::Corruption("blob record too short");
  }
  const uint32_t expected = crc32c::Unmask(DecodeFixed32(rec.data()));
  const uint32_t actual = crc32c::Value(rec.data() + 4, rec.size() - 4);
  if (actual != expected) {
    return Status::Corruption("blob record checksum mismatch");
  }
  Slice in(rec.data() + 4, rec.size() - 4);
  uint32_t klen = 0;
  uint32_t vlen = 0;
  if (!GetVarint32(&in, &klen) || !GetVarint32(&in, &vlen)) {
    return Status::Corruption("blob record header malformed");
  }
  if (in.size() != static_cast<uint64_t>(klen) + vlen) {
    return Status::Corruption("blob record length mismatch");
  }
  *key = Slice(in.data(), klen);
  *value = Slice(in.data() + klen, vlen);
  return Status::OK();
}

}  // namespace

void EncodeValuePointer(std::string* dst, const ValuePointer& ptr) {
  PutVarint64(dst, ptr.segment);
  PutVarint64(dst, ptr.offset);
  PutVarint64(dst, ptr.length);
}

bool DecodeValuePointer(Slice input, ValuePointer* ptr) {
  return GetVarint64(&input, &ptr->segment) &&
         GetVarint64(&input, &ptr->offset) &&
         GetVarint64(&input, &ptr->length) && input.empty();
}

ValueLog::ValueLog(const Options& options, std::string dbname, vfs::Vfs* fs)
    : options_(options), dbname_(std::move(dbname)), fs_(fs) {}

ValueLog::~ValueLog() {
  MutexLock lock(&mu_);
  if (active_file_ != nullptr) {
    // Best effort: rotated segments were synced when sealed; the active
    // one is synced by the durability barriers that precede any ack.
    active_file_->Close().IgnoreError();
    active_file_.reset();
  }
}

Status ValueLog::Open(const std::vector<BlobSegmentMeta>& recovered) {
  MutexLock lock(&mu_);
  uint64_t max_number = 0;
  for (const BlobSegmentMeta& meta : recovered) {
    max_number = std::max(max_number, meta.number);
    if (!fs_->FileExists(BlobFileName(dbname_, meta.number))) {
      // Deleted before the crash; the manifest record simply predates the
      // deletion. Pointers into it cannot exist (deletion requires zero
      // live bytes and no in-flight readers).
      continue;
    }
    SegmentState& seg = segments_[meta.number];
    seg.total = meta.total_bytes;
    seg.live = meta.live_bytes;
  }
  // Adopt on-disk segments the manifest does not know about (the segment
  // that was active at crash time, or records appended after the last
  // manifest write). Fully-live is conservative: it can only delay GC.
  std::vector<std::string> names;
  Status s = fs_->ListDir(dbname_, &names);
  if (!s.ok()) return s;
  for (const std::string& name : names) {
    uint64_t number = 0;
    FileType type = FileType::kUnknown;
    if (!ParseFileName(name, &number, &type) || type != FileType::kBlobFile) {
      continue;
    }
    max_number = std::max(max_number, number);
    if (segments_.count(number) != 0) continue;
    uint64_t size = 0;
    if (!fs_->GetFileSize(dbname_ + "/" + name, &size).ok()) size = 0;
    SegmentState& seg = segments_[number];
    seg.total = size;
    seg.live = size;
  }
  // Segments already drained when we crashed: delete as soon as swept.
  for (auto& [number, seg] : segments_) {
    (void)number;
    if (seg.live == 0) seg.sealed = true;
  }
  next_segment_number_ = max_number + 1;
  return Status::OK();
}

Status ValueLog::EnsureActiveLocked() {
  if (active_file_ != nullptr) return Status::OK();
  const uint64_t number = next_segment_number_++;
  std::unique_ptr<vfs::WritableFile> file;
  Status s = fs_->NewWritableFile(BlobFileName(dbname_, number), {}, &file);
  if (!s.ok()) return s;
  active_file_ = std::move(file);
  active_number_ = number;
  active_size_ = 0;
  active_synced_ = 0;
  segments_[number];  // total = live = 0 until records land
  return Status::OK();
}

Status ValueLog::RotateLocked() {
  if (active_file_ == nullptr) return Status::OK();
  // Sync before sealing so Sync() only ever has to cover the active
  // segment; a sealed segment's bytes are always durable.
  Status s = active_file_->Sync();
  if (s.ok()) s = active_file_->Close();
  active_file_.reset();
  if (!s.ok()) io_error_ = s;
  return s;
}

Status ValueLog::Append(const Slice& user_key, const Slice& value,
                        bool gc_rewrite, ValuePointer* out) {
  MutexLock lock(&mu_);
  if (!io_error_.ok()) return io_error_;
  Status s = EnsureActiveLocked();
  if (!s.ok()) return s;

  std::string rec(4, '\0');  // crc placeholder
  PutVarint32(&rec, static_cast<uint32_t>(user_key.size()));
  PutVarint32(&rec, static_cast<uint32_t>(value.size()));
  rec.append(user_key.data(), user_key.size());
  rec.append(value.data(), value.size());
  EncodeFixed32(rec.data(), crc32c::Mask(crc32c::Value(rec.data() + 4, rec.size() - 4)));

  out->segment = active_number_;
  out->offset = active_size_;
  out->length = rec.size();

  s = active_file_->Append(rec);
  if (!s.ok()) {
    // A partial write may have reached the file, so our offset bookkeeping
    // can no longer be trusted: abandon the segment (its tail becomes
    // unreferenced garbage) and let the next append start a fresh one.
    // The Append error in `s` is the root cause; a close error adds nothing.
    active_file_->Close().IgnoreError();
    active_file_.reset();
    return s;
  }
  active_size_ += rec.size();
  SegmentState& seg = segments_[active_number_];
  seg.total += rec.size();
  seg.live += rec.size();
  if (gc_rewrite) {
    gc_rewritten_bytes_ += value.size();
  } else {
    bytes_written_ += value.size();
  }
  if (active_size_ >= options_.value_log_segment_size) {
    return RotateLocked();
  }
  return Status::OK();
}

Status ValueLog::Sync() {
  MutexLock lock(&mu_);
  if (!io_error_.ok()) return io_error_;
  if (active_file_ == nullptr || active_synced_ == active_size_) {
    return Status::OK();
  }
  Status s = active_file_->Sync();
  if (s.ok()) {
    active_synced_ = active_size_;
  } else {
    // Durable prefix unknown: fail every later append/sync; the store
    // latches read-only via RecordBackgroundError anyway.
    io_error_ = s;
  }
  return s;
}

Status ValueLog::GetSegmentHandle(
    uint64_t segment, std::shared_ptr<vfs::RandomAccessFile>* file) const {
  MutexLock lock(&cache_mu_);
  auto it = handles_.find(segment);
  if (it != handles_.end()) {
    it->second.lru_tick = ++lru_clock_;
    *file = it->second.file;
    return Status::OK();
  }
  std::unique_ptr<vfs::RandomAccessFile> opened;
  vfs::OpenOptions opts;
  opts.use_mmap = options_.use_mmap;
  Status s = fs_->NewRandomAccessFile(BlobFileName(dbname_, segment), opts, &opened);
  if (!s.ok()) return s;
  if (handles_.size() >= kMaxOpenSegments) {
    auto victim = handles_.begin();
    for (auto cand = handles_.begin(); cand != handles_.end(); ++cand) {
      if (cand->second.lru_tick < victim->second.lru_tick) victim = cand;
    }
    handles_.erase(victim);
  }
  CacheEntry& entry = handles_[segment];
  entry.file = std::shared_ptr<vfs::RandomAccessFile>(std::move(opened));
  entry.lru_tick = ++lru_clock_;
  *file = entry.file;
  return Status::OK();
}

void ValueLog::EvictSegmentHandle(uint64_t segment) const {
  MutexLock lock(&cache_mu_);
  handles_.erase(segment);
}

Status ValueLog::ReadRecord(const ValuePointer& ptr, std::string* key,
                            std::string* value) const {
  if (ptr.length < kMinRecordSize || ptr.length > kMaxRecordSize) {
    return Status::Corruption("blob pointer length out of range");
  }
  std::shared_ptr<vfs::RandomAccessFile> file;
  Status s = GetSegmentHandle(ptr.segment, &file);
  if (!s.ok()) return s;
  std::string scratch;
  Slice rec;
  s = file->Read(ptr.offset, static_cast<size_t>(ptr.length), &rec, &scratch);
  if (!s.ok()) return s;
  if (rec.size() != ptr.length) {
    return Status::Corruption("blob record truncated");
  }
  Slice parsed_key;
  Slice parsed_value;
  s = ParseRecord(rec, &parsed_key, &parsed_value);
  if (!s.ok()) return s;
  if (key != nullptr) key->assign(parsed_key.data(), parsed_key.size());
  if (value != nullptr) value->assign(parsed_value.data(), parsed_value.size());
  return Status::OK();
}

Status ValueLog::ReadValue(const ValuePointer& ptr, std::string* value) const {
  return ReadRecord(ptr, nullptr, value);
}

Status ValueLog::ValidatePointer(const ValuePointer& ptr,
                                 const Slice& expected_key) const {
  std::string key;
  Status s = ReadRecord(ptr, &key, nullptr);
  if (!s.ok()) return s;
  if (Slice(key) != expected_key) {
    return Status::Corruption("blob record key mismatch");
  }
  return Status::OK();
}

void ValueLog::Hint(const ValuePointer& ptr, uint64_t span) const {
  std::shared_ptr<vfs::RandomAccessFile> file;
  if (!GetSegmentHandle(ptr.segment, &file).ok()) return;
  file->Hint(ptr.offset, static_cast<size_t>(span));
}

bool ValueLog::Contains(uint64_t segment) const {
  MutexLock lock(&mu_);
  return segments_.count(segment) != 0;
}

void ValueLog::ApplyGarbage(const std::map<uint64_t, uint64_t>& garbage) {
  MutexLock lock(&mu_);
  for (const auto& [number, bytes] : garbage) {
    auto it = segments_.find(number);
    if (it == segments_.end()) continue;
    it->second.live = it->second.live >= bytes ? it->second.live - bytes : 0;
  }
}

std::vector<uint64_t> ValueLog::GcCandidates() const {
  MutexLock lock(&mu_);
  std::vector<uint64_t> out;
  for (const auto& [number, seg] : segments_) {
    if (seg.sealed || seg.live == 0 || seg.total == 0) continue;
    if (active_file_ != nullptr && number == active_number_) continue;
    const double garbage_ratio =
        1.0 - static_cast<double>(seg.live) / static_cast<double>(seg.total);
    if (garbage_ratio >= options_.value_log_gc_garbage_ratio) {
      out.push_back(number);
    }
  }
  return out;
}

std::vector<BlobSegmentMeta> ValueLog::LiveSegments() const {
  MutexLock lock(&mu_);
  std::vector<BlobSegmentMeta> out;
  out.reserve(segments_.size());
  for (const auto& [number, seg] : segments_) {
    out.push_back(BlobSegmentMeta{number, seg.total, seg.live});
  }
  return out;
}

void ValueLog::SealDrained(
    const std::vector<std::weak_ptr<const void>>& guards) {
  MutexLock lock(&mu_);
  for (auto& [number, seg] : segments_) {
    if (seg.sealed || seg.live != 0) continue;
    if (active_file_ != nullptr && number == active_number_) continue;
    seg.sealed = true;
    seg.guards = guards;
  }
}

int ValueLog::SweepDeletable() {
  MutexLock lock(&mu_);
  std::vector<uint64_t> deletable;
  for (const auto& [number, seg] : segments_) {
    if (!seg.sealed) continue;
    bool pinned = false;
    for (const auto& guard : seg.guards) {
      if (!guard.expired()) {
        pinned = true;
        break;
      }
    }
    if (!pinned) deletable.push_back(number);
  }
  for (const uint64_t number : deletable) {
    EvictSegmentHandle(number);
    // Best effort: once erased from segments_ below, Contains() goes false
    // and the DBImpl orphan sweep reaps any file an EIO leaves behind.
    fs_->RemoveFile(BlobFileName(dbname_, number)).IgnoreError();
    segments_.erase(number);
    ++segments_deleted_;
  }
  return static_cast<int>(deletable.size());
}

ValueLogCounters ValueLog::Counters() const {
  MutexLock lock(&mu_);
  ValueLogCounters c;
  c.bytes_written = bytes_written_;
  c.gc_rewritten_bytes = gc_rewritten_bytes_;
  c.segments_deleted = segments_deleted_;
  c.segments = segments_.size();
  for (const auto& [number, seg] : segments_) {
    (void)number;
    c.live_bytes += seg.live;
    c.garbage_bytes += seg.total >= seg.live ? seg.total - seg.live : 0;
  }
  return c;
}

}  // namespace lsmio::lsm
