#include "lsm/db_impl.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <thread>

#include "common/logging.h"
#include "lsm/builder.h"
#include "lsm/cache.h"
#include "lsm/comparator.h"
#include "lsm/db_iter.h"
#include "lsm/filter_policy.h"
#include "lsm/log_reader.h"
#include "lsm/merger.h"
#include "lsm/sharded_db.h"
#include "lsm/table_builder.h"
#include "vfs/posix_vfs.h"

namespace lsmio::lsm {

struct DBImpl::SnapshotImpl final : Snapshot {
  explicit SnapshotImpl(SequenceNumber s) : sequence(s) {}
  SequenceNumber sequence;
};

DBImpl::DBImpl(const Options& options, const std::string& dbname,
               ThreadPool* shared_pool, CompactionLimiter* shared_limiter,
               RateLimiter* shared_rate_limiter)
    : options_(options),
      dbname_(dbname),
      internal_comparator_(options.comparator != nullptr ? options.comparator
                                                         : BytewiseComparator()),
      filter_policy_(options.bloom_bits_per_key > 0
                         ? NewBloomFilterPolicy(options.bloom_bits_per_key)
                         : nullptr),
      write_controller_(options) {
  if (!options_.disable_cache) {
    if (options_.block_cache != nullptr) {
      block_cache_ = options_.block_cache;  // shared, arbiter-owned
    } else {
      owned_block_cache_ = NewLRUCache(options_.block_cache_capacity);
      block_cache_ = owned_block_cache_.get();
    }
  }
  table_cache_ = std::make_unique<TableCache>(
      dbname_, options_, &internal_comparator_, filter_policy_.get(),
      block_cache_, /*entries=*/1000, &read_counters_);
  versions_ = std::make_unique<VersionSet>(dbname_, options_,
                                           &internal_comparator_,
                                           table_cache_.get());
  // The VersionSet is guarded by mu_; install it so every VersionSet entry
  // point can debug-assert the cross-object lock contract.
  versions_->SetOwnerMutex(&mu_);
  if (shared_limiter != nullptr) {
    limiter_ = shared_limiter;
  } else {
    owned_limiter_ =
        std::make_unique<CompactionLimiter>(EffectiveCompactionCap(options_));
    limiter_ = owned_limiter_.get();
  }
  if (shared_pool != nullptr) {
    bg_pool_ = shared_pool;
  } else {
    owned_bg_pool_ =
        std::make_unique<ThreadPool>(std::max(1, options_.background_threads));
    bg_pool_ = owned_bg_pool_.get();
  }
  if (shared_rate_limiter != nullptr) {
    rate_limiter_ = shared_rate_limiter;
  } else if (options_.bytes_per_sec > 0) {
    owned_rate_limiter_ = std::make_unique<RateLimiter>(options_.bytes_per_sec);
    rate_limiter_ = owned_rate_limiter_.get();
  }
}

DBImpl::~DBImpl() {
  // Detach from the write-memory pool before anything else: after Detach
  // returns, the pool's victim callback can never fire again, so at most
  // one already-submitted ArbiterFlushCall can still reference this object
  // — the wait below covers it.
  if (pool_attachment_ != 0) {
    options_.write_memory_pool->Detach(pool_attachment_);
    pool_attachment_ = 0;
  }
  {
    MutexLock lock(&mu_);
    shutting_down_.store(true);
    while (flush_scheduled_ || compaction_scheduled_ ||
           arbiter_task_pending_.load(std::memory_order_acquire)) {
      bg_cv_.Wait();
    }
  }
  // Drop any parked retry callback and wait out an in-flight dispatch, so
  // the (possibly shared) limiter cannot call back into a dead object.
  limiter_->Cancel(this);
  if (owned_bg_pool_ != nullptr) owned_bg_pool_->Shutdown();
  if (mem_ != nullptr) mem_->Unref();
  for (MemTable* imm : imm_queue_) imm->Unref();
  if (logfile_ != nullptr) {
    // Destructor: nowhere to propagate. Everything acked under sync_writes
    // was already fsynced; under async WAL config a close failure here is
    // within the documented may-lose-unsynced-tail contract, but it still
    // deserves a trace in the log.
    Status s = logfile_->Close();
    if (!s.ok()) LSMIO_WARN << "WAL close failed in ~DBImpl: " << s.ToString();
  }
}

vfs::Vfs& DBImpl::fs() const {
  return options_.vfs != nullptr ? *options_.vfs : vfs::PosixVfs();
}

Status DBImpl::NewDb() {
  LSMIO_RETURN_IF_ERROR(fs().CreateDir(dbname_));
  return versions_->WriteSnapshot();
}

Status DBImpl::Initialize() {
  MutexLock lock(&mu_);

  const bool exists = fs().FileExists(CurrentFileName(dbname_));
  if (!exists) {
    if (options_.read_only) {
      return Status::NotFound(dbname_ + " does not exist (read_only open)");
    }
    if (!options_.create_if_missing) {
      return Status::InvalidArgument(dbname_ + " does not exist (create_if_missing=false)");
    }
    LSMIO_RETURN_IF_ERROR(NewDb());
  } else if (options_.error_if_exists) {
    return Status::InvalidArgument(dbname_ + " exists (error_if_exists=true)");
  }

  if (exists) {
    bool save_manifest = false;
    LSMIO_RETURN_IF_ERROR(versions_->Recover(&save_manifest));

    // Replay any WAL files at or after the recorded log number, in order.
    std::vector<std::string> children;
    LSMIO_RETURN_IF_ERROR(fs().ListDir(dbname_, &children));
    std::vector<uint64_t> logs;
    bool blob_files_on_disk = false;
    for (const auto& child : children) {
      uint64_t number;
      FileType type;
      if (!ParseFileName(child, &number, &type)) continue;
      if (type == FileType::kLogFile && number >= versions_->LogNumber()) {
        logs.push_back(number);
      } else if (type == FileType::kBlobFile) {
        blob_files_on_disk = true;
      }
    }
    std::sort(logs.begin(), logs.end());

    // The value log must be open before WAL replay: replayed pointer ops
    // are validated against the blob segments, and a store created with
    // value_log_threshold > 0 but reopened with 0 must still resolve (and
    // eventually GC) its existing pointers.
    if (options_.value_log_threshold > 0 || blob_files_on_disk ||
        !versions_->recovered_blob_segments().empty()) {
      vlog_ = std::make_unique<ValueLog>(options_, dbname_, &fs());
      LSMIO_RETURN_IF_ERROR(vlog_->Open(versions_->recovered_blob_segments()));
      versions_->SetBlobSegmentProvider(
          [this] { return vlog_->LiveSegments(); });
    }
    SequenceNumber max_sequence = versions_->LastSequence();
    for (const uint64_t log_number : logs) {
      LSMIO_RETURN_IF_ERROR(RecoverLogFile(log_number, &max_sequence));
      if (log_number >= versions_->ManifestFileNumber()) {
        // Extremely old builds could collide; keep file numbers monotonic.
      }
    }
    versions_->SetLastSequence(max_sequence);
    if (save_manifest && !options_.read_only) {
      LSMIO_RETURN_IF_ERROR(versions_->WriteSnapshot());
    }
  }

  if (vlog_ == nullptr && options_.value_log_threshold > 0) {
    // Fresh store with separation enabled.
    vlog_ = std::make_unique<ValueLog>(options_, dbname_, &fs());
    LSMIO_RETURN_IF_ERROR(vlog_->Open({}));
    versions_->SetBlobSegmentProvider([this] { return vlog_->LiveSegments(); });
  }

  // Fresh active memtable + WAL (read-only recovery may already have
  // installed a memtable holding replayed WAL records).
  if (mem_ == nullptr) {
    mem_ = new MemTable(internal_comparator_);
    mem_->Ref();
  }
  if (!options_.disable_wal && !options_.read_only) {
    logfile_number_ = versions_->NewFileNumber();
    LSMIO_RETURN_IF_ERROR(fs().NewWritableFile(
        LogFileName(dbname_, logfile_number_), {}, &logfile_));
    log_ = std::make_unique<log::Writer>(logfile_.get());
    versions_->SetLogNumber(logfile_number_);
    LSMIO_RETURN_IF_ERROR(versions_->WriteSnapshot());
  }

  if (!options_.read_only) RemoveObsoleteFiles();
  // Recovery may have left L0 files behind; start pacing from that state
  // rather than from zero.
  RefreshWritePressure();

  // Attach to the global write-memory pool last, once recovery can no
  // longer fail: a registered victim callback must always have a live,
  // fully-initialized DB behind it. Read-only stores never flush, so they
  // stay detached.
  if (options_.write_memory_pool != nullptr && !options_.read_only) {
    pool_attachment_ = options_.write_memory_pool->Attach(
        options_.tenant_id, [this] { RequestArbiterFlush(); });
    ReportPoolUsage(/*wrote=*/false);  // recovery may have refilled mem_
  }
  return Status::OK();
}

namespace {

// Replay-time batch inserter that validates pointer ops against the value
// log. A crash can persist a WAL record whose blob bytes were never
// synced (only unacknowledged or non-sync writes can be in that state);
// such dangling pointers are skipped so the key resolves to its previous
// version instead of a Corruption at read time. Skipping still advances
// the sequence counter, so later ops keep their original numbering.
class ValidatingMemTableInserter final : public WriteBatch::Handler {
 public:
  ValidatingMemTableInserter(SequenceNumber seq, MemTable* mem,
                             const ValueLog* vlog)
      : sequence_(seq), mem_(mem), vlog_(vlog) {}

  void Put(const Slice& key, const Slice& value) override {
    mem_->Add(sequence_++, ValueType::kValue, key, value);
  }
  void PutPointer(const Slice& key, const Slice& pointer) override {
    ValuePointer ptr;
    if (DecodeValuePointer(pointer, &ptr) &&
        vlog_->ValidatePointer(ptr, key).ok()) {
      mem_->Add(sequence_, ValueType::kValuePointer, key, pointer);
    } else {
      ++dropped_;
    }
    ++sequence_;
  }
  void Delete(const Slice& key) override {
    mem_->Add(sequence_++, ValueType::kDeletion, key, Slice());
  }

  [[nodiscard]] uint64_t dropped() const { return dropped_; }

 private:
  SequenceNumber sequence_;
  MemTable* const mem_;
  const ValueLog* const vlog_;
  uint64_t dropped_ = 0;
};

// First pass of WAL-time separation: does the batch hold any value large
// enough to separate?
class LargeValueScanner final : public WriteBatch::Handler {
 public:
  explicit LargeValueScanner(uint64_t threshold) : threshold_(threshold) {}
  void Put(const Slice&, const Slice& value) override {
    any_ = any_ || value.size() >= threshold_;
  }
  void Delete(const Slice&) override {}
  [[nodiscard]] bool any() const { return any_; }

 private:
  const uint64_t threshold_;
  bool any_ = false;
};

// Second pass: rebuild the batch with large values appended to the value
// log and their ops rewritten as pointers. Op count and order are
// preserved, so the group's sequence numbering is unchanged.
class ValueSeparator final : public WriteBatch::Handler {
 public:
  ValueSeparator(ValueLog* vlog, uint64_t threshold, WriteBatch* out)
      : vlog_(vlog), threshold_(threshold), out_(out) {}

  void Put(const Slice& key, const Slice& value) override {
    if (!status_.ok()) return;
    if (value.size() < threshold_) {
      out_->Put(key, value);
      return;
    }
    ValuePointer ptr;
    status_ = vlog_->Append(key, value, /*gc_rewrite=*/false, &ptr);
    if (!status_.ok()) return;
    encoded_.clear();
    EncodeValuePointer(&encoded_, ptr);
    out_->PutPointer(key, Slice(encoded_));
  }
  void PutPointer(const Slice& key, const Slice& pointer) override {
    if (status_.ok()) out_->PutPointer(key, pointer);
  }
  void Delete(const Slice& key) override {
    if (status_.ok()) out_->Delete(key);
  }

  [[nodiscard]] Status status() const { return status_; }

 private:
  ValueLog* const vlog_;
  const uint64_t threshold_;
  WriteBatch* const out_;
  std::string encoded_;
  Status status_;
};

}  // namespace

Status DBImpl::RecoverLogFile(uint64_t log_number, SequenceNumber* max_sequence) {
  const std::string fname = LogFileName(dbname_, log_number);
  std::unique_ptr<vfs::SequentialFile> file;
  Status s = fs().NewSequentialFile(fname, {}, &file);
  if (s.IsNotFound()) return Status::OK();
  LSMIO_RETURN_IF_ERROR(s);

  struct Reporter final : log::Reader::Reporter {
    void Corruption(size_t bytes, const Status& reason) override {
      LSMIO_WARN << "dropping " << bytes << " bytes of WAL: " << reason.ToString();
    }
  } reporter;

  log::Reader reader(file.get(), &reporter, /*checksum=*/true);
  Slice record;
  std::string scratch;
  // Read-only opens accumulate every log's records into one memtable that
  // becomes the active (never-flushed) one.
  MemTable* mem = options_.read_only ? mem_ : nullptr;
  mem_ = nullptr;

  while (reader.ReadRecord(&record, &scratch)) {
    WriteBatch batch;
    LSMIO_RETURN_IF_ERROR(WriteBatch::SetContents(&batch, record));
    if (mem == nullptr) {
      mem = new MemTable(internal_comparator_);
      mem->Ref();
    }
    if (vlog_ != nullptr) {
      ValidatingMemTableInserter inserter(batch.Sequence(), mem, vlog_.get());
      LSMIO_RETURN_IF_ERROR(batch.Iterate(&inserter));
      if (inserter.dropped() > 0) {
        LSMIO_WARN << "dropped " << inserter.dropped()
                   << " dangling value-log pointer(s) during WAL replay";
      }
    } else {
      LSMIO_RETURN_IF_ERROR(batch.InsertInto(mem));
    }
    const SequenceNumber last =
        batch.Sequence() + static_cast<SequenceNumber>(batch.Count()) - 1;
    if (last > *max_sequence) *max_sequence = last;

    if (!options_.read_only &&
        mem->ApproximateMemoryUsage() > options_.write_buffer_size) {
      FileMetaData meta;
      meta.number = versions_->NewFileNumber();
      std::unique_ptr<Iterator> iter(mem->NewIterator());
      s = BuildTable(dbname_, fs(), options_, &internal_comparator_,
                     filter_policy_.get(), iter.get(), &meta);
      mem->Unref();
      mem = nullptr;
      LSMIO_RETURN_IF_ERROR(s);
      auto v = versions_->MakeVersion({{0, meta}}, {});
      LSMIO_RETURN_IF_ERROR(versions_->LogAndApply(std::move(v)));
    }
  }

  if (options_.read_only) {
    // Keep recovered WAL contents readable without writing a table: the
    // recovered memtable becomes the active one.
    mem_ = mem;
    return Status::OK();
  }
  if (mem != nullptr) {
    if (mem->num_entries() > 0) {
      FileMetaData meta;
      meta.number = versions_->NewFileNumber();
      std::unique_ptr<Iterator> iter(mem->NewIterator());
      s = BuildTable(dbname_, fs(), options_, &internal_comparator_,
                     filter_policy_.get(), iter.get(), &meta);
      if (s.ok()) {
        auto v = versions_->MakeVersion({{0, meta}}, {});
        s = versions_->LogAndApply(std::move(v));
      }
    }
    mem->Unref();
    LSMIO_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

// --- writes -------------------------------------------------------------------

Status DBImpl::Put(const WriteOptions& options, const Slice& key, const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status DBImpl::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  if (options_.read_only) {
    return Status::InvalidArgument("database opened read-only");
  }
  if (!options_.enable_group_commit) return WriteSerialized(options, updates);
  const uint64_t op_start_micros = clock_->NowMicros();

  Writer w(updates, options.sync || options_.sync_writes, &mu_);
  MutexLock lock(&mu_);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) w.cv.Wait();
  if (w.done) {
    write_latency_rec_.Record(clock_->NowMicros() - op_start_micros);
    return w.status;
  }

  // This thread is the leader: until it pops itself off writers_, it has
  // exclusive ownership of mem_/log_/logfile_, even across the unlock below.
  Status status = MakeRoomForWrite(updates->ApproximateSize());
  Writer* last_writer = &w;
  if (status.ok()) {
    WriteBatch* write_batch = BuildBatchGroup(&last_writer);
    SequenceNumber last_sequence = versions_->LastSequence();
    write_batch->SetSequence(last_sequence + 1);
    // Stamp every batch in the group with its own starting sequence, so a
    // follower can read its assigned sequence back (e.g. to pin reads at
    // its write point) even though only the merged batch hits the WAL.
    SequenceNumber writer_sequence = last_sequence + 1;
    for (auto it = writers_.begin();; ++it) {
      Writer* writer = *it;
      writer->batch->SetSequence(writer_sequence);
      writer_sequence += static_cast<SequenceNumber>(writer->batch->Count());
      if (writer == last_writer) break;
    }
    last_sequence += static_cast<SequenceNumber>(write_batch->Count());

    uint64_t wal_bytes = 0;
    struct Counter final : WriteBatch::Handler {
      uint64_t puts = 0, dels = 0;
      void Put(const Slice&, const Slice&) override { ++puts; }
      void Delete(const Slice&) override { ++dels; }
    } counter;
    WriteBatch* log_batch = write_batch;
    {
      // One WAL append + (at most) one fsync for the whole group; followers
      // and concurrent readers proceed against the published memtable while
      // the leader does the I/O.
      lock.Unlock();
      // WAL-time separation first: blob bytes are appended before the WAL
      // record that points at them, and synced before it (below), so any
      // WAL-durable pointer has durable blob bytes behind it.
      if (vlog_ != nullptr && status.ok()) {
        log_batch = SeparateLargeValues(write_batch, &status);
      }
      if (status.ok() && !options_.disable_wal) {
        status = log_->AddRecord(log_batch->Contents());
        wal_bytes = log_batch->Contents().size();
        if (status.ok() && w.sync) {
          if (vlog_ != nullptr) status = vlog_->Sync();
          if (status.ok()) status = logfile_->Sync();
        }
      }
      if (status.ok()) status = log_batch->InsertInto(mem_);
      // Counting handler over an already-applied batch: cannot fail.
      log_batch->Iterate(&counter).IgnoreError();
      lock.Lock();
    }
    if (status.ok()) {
      versions_->SetLastSequence(last_sequence);
      stats_.wal_bytes += wal_bytes;
      stats_.bytes_written += write_batch->Contents().size();
      if (log_batch != write_batch) ++stats_.value_log_separated_batches;
      stats_.puts += counter.puts;
      stats_.deletes += counter.dels;
      ++stats_.group_commit_batches;
    } else {
      // The WAL may hold a torn record (or an append that was never
      // fsync'ed), or the memtable a partial batch. Accepting more writes
      // after the failure point could append valid records *behind* the torn
      // tail and make recovery replay an inconsistent sequence — latch
      // read-only instead.
      RecordBackgroundError(status);
    }
    if (write_batch == &tmp_batch_) tmp_batch_.Clear();
    if (log_batch == &tmp_vlog_batch_) tmp_vlog_batch_.Clear();
    if (status.ok()) ReportPoolUsage(/*wrote=*/true);
  }

  // Mark every writer in the group done and hand leadership to the next.
  for (;;) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    ++stats_.group_commit_writers;
    if (ready != &w) {
      ready->status = status;
      ready->done = true;
      ready->cv.Signal();
    }
    if (ready == last_writer) break;
  }
  if (!writers_.empty()) writers_.front()->cv.Signal();
  write_latency_rec_.Record(clock_->NowMicros() - op_start_micros);
  return status;
}

Status DBImpl::WriteSerialized(const WriteOptions& options, WriteBatch* updates) {
  // Seed write path (one global mutex across WAL + sync + memtable insert);
  // kept behind Options::enable_group_commit=false for ablation.
  const uint64_t op_start_micros = clock_->NowMicros();
  const auto record_latency = [&] {
    write_latency_rec_.Record(clock_->NowMicros() - op_start_micros);
  };
  MutexLock lock(&mu_);
  {
    const Status room = MakeRoomForWrite(updates->ApproximateSize());
    if (!room.ok()) {
      record_latency();
      return room;
    }
  }

  const SequenceNumber sequence = versions_->LastSequence() + 1;
  updates->SetSequence(sequence);
  versions_->SetLastSequence(sequence +
                             static_cast<SequenceNumber>(updates->Count()) - 1);
  const size_t user_bytes = updates->Contents().size();

  WriteBatch* log_batch = updates;
  if (vlog_ != nullptr) {
    Status s;
    log_batch = SeparateLargeValues(updates, &s);
    if (!s.ok()) {
      RecordBackgroundError(s);
      if (log_batch == &tmp_vlog_batch_) tmp_vlog_batch_.Clear();
      record_latency();
      return s;
    }
    if (log_batch != updates) ++stats_.value_log_separated_batches;
  }

  if (!options_.disable_wal) {
    Status s = log_->AddRecord(log_batch->Contents());
    if (s.ok()) {
      stats_.wal_bytes += log_batch->Contents().size();
      if (options.sync || options_.sync_writes) {
        if (vlog_ != nullptr) s = vlog_->Sync();
        if (s.ok()) s = logfile_->Sync();
      }
    }
    if (!s.ok()) {
      // Same contract as the group-commit path: a failed WAL append/fsync
      // leaves the log in an unknown state, so the engine goes read-only.
      RecordBackgroundError(s);
      if (log_batch == &tmp_vlog_batch_) tmp_vlog_batch_.Clear();
      record_latency();
      return s;
    }
  }

  const Status insert_status = log_batch->InsertInto(mem_);
  if (log_batch == &tmp_vlog_batch_) tmp_vlog_batch_.Clear();
  if (!insert_status.ok()) {
    record_latency();
    return insert_status;
  }
  stats_.bytes_written += user_bytes;
  struct Counter final : WriteBatch::Handler {
    uint64_t puts = 0, dels = 0;
    void Put(const Slice&, const Slice&) override { ++puts; }
    void Delete(const Slice&) override { ++dels; }
  } counter;
  // Counting handler over an already-applied batch: cannot fail.
  updates->Iterate(&counter).IgnoreError();
  stats_.puts += counter.puts;
  stats_.deletes += counter.dels;
  ReportPoolUsage(/*wrote=*/true);
  record_latency();
  return Status::OK();
}

void DBImpl::RecordBackgroundError(const Status& s) {
  assert(!s.ok());
  if (bg_error_.ok()) {
    LSMIO_WARN << "entering read-only mode: " << s.ToString();
    bg_error_ = s;
    // Wake writers stalled in MakeRoomForWrite/FlushMemTable so they can
    // observe the latch and fail instead of waiting forever.
    bg_cv_.SignalAll();
    stall_cv_.SignalAll();
  }
}

Status DBImpl::ReadOnlyError() const {
  assert(!bg_error_.ok());
  return Status::ReadOnly("store is read-only after background error: " +
                          bg_error_.ToString());
}

Status DBImpl::HealthStatus() const {
  MutexLock lock(&mu_);
  return bg_error_.ok() ? Status::OK() : ReadOnlyError();
}

WriteBatch* DBImpl::BuildBatchGroup(Writer** last_writer) {
  assert(!writers_.empty());
  Writer* first = writers_.front();
  WriteBatch* result = first->batch;
  assert(result != nullptr);
  size_t size = result->ApproximateSize();

  // Large enough to amortize the fsync, but capped so a stream of tiny
  // writes is not held hostage to a giant group (LevelDB's heuristic).
  size_t max_size = 1 * MiB;
  if (size <= 128 * KiB) max_size = size + 128 * KiB;

  *last_writer = first;
  for (auto it = std::next(writers_.begin()); it != writers_.end(); ++it) {
    Writer* w = *it;
    if (w->batch == nullptr) break;      // memtable-switch request: own group
    if (w->sync && !first->sync) break;  // never weaken a sync writer
    size += w->batch->ApproximateSize();
    if (size > max_size) break;
    if (result == first->batch) {
      // Switch to the scratch batch; the leader's own batch must not be
      // mutated (the caller owns it).
      result = &tmp_batch_;
      assert(result->Count() == 0);
      result->Append(*first->batch);
    }
    result->Append(*w->batch);
    *last_writer = w;
  }
  return result;
}

WriteBatch* DBImpl::SeparateLargeValues(WriteBatch* batch, Status* s) {
  const uint64_t threshold = options_.value_log_threshold;
  if (threshold == 0) return batch;  // store has old segments, separation off
  LargeValueScanner scanner(threshold);
  if (!batch->Iterate(&scanner).ok() || !scanner.any()) return batch;

  tmp_vlog_batch_.Clear();
  tmp_vlog_batch_.SetSequence(batch->Sequence());
  ValueSeparator separator(vlog_.get(), threshold, &tmp_vlog_batch_);
  Status iterate = batch->Iterate(&separator);
  if (!separator.status().ok()) {
    *s = separator.status();
  } else if (!iterate.ok()) {
    *s = iterate;
  }
  return &tmp_vlog_batch_;
}

Status DBImpl::ResolvePointerValue(std::string* value) const {
  ValuePointer ptr;
  if (vlog_ == nullptr || !DecodeValuePointer(Slice(*value), &ptr)) {
    return Status::Corruption("unresolvable value-log pointer");
  }
  return vlog_->ReadValue(ptr, value);
}

void DBImpl::RefreshWritePressure() {
  write_controller_.UpdatePressure(versions_->current()->NumFiles(0),
                                   static_cast<int>(imm_queue_.size()));
  if (options_.write_memory_pool != nullptr) {
    // Budget pressure from the whole process's memtables: paces writers
    // through the same leaky bucket instead of hard-stalling them.
    write_controller_.SetGlobalPressure(
        options_.write_memory_pool->GlobalPressure());
  }
}

void DBImpl::ReportPoolUsage(bool wrote) {
  if (pool_attachment_ == 0) return;
  uint64_t bytes = mem_ != nullptr ? mem_->ApproximateMemoryUsage() : 0;
  for (const MemTable* imm : imm_queue_) bytes += imm->ApproximateMemoryUsage();
  options_.write_memory_pool->UpdateUsage(pool_attachment_, bytes, wrote);
}

void DBImpl::RequestArbiterFlush() {
  // Runs under the pool's mutex with no DB mutex held; must not block.
  arbiter_switch_requested_.store(true, std::memory_order_release);
  if (!arbiter_task_pending_.exchange(true, std::memory_order_acq_rel)) {
    bg_pool_->Submit([this] { ArbiterFlushCall(); });
  }
}

void DBImpl::ArbiterFlushCall() {
  MutexLock lock(&mu_);
  // Cleared before processing (under mu_): a victim request arriving
  // mid-call schedules a fresh task instead of being silently absorbed.
  arbiter_task_pending_.store(false, std::memory_order_release);
  if (!shutting_down_.load() && bg_error_.ok() &&
      arbiter_switch_requested_.load(std::memory_order_acquire)) {
    if (MemTableQueueFull()) {
      // Flushes already in flight will release this store's memory; drop
      // the request (the pool re-picks while usage stays over the
      // watermark) rather than queue more stall pressure behind it.
      arbiter_switch_requested_.store(false, std::memory_order_release);
      MaybeScheduleFlush();
    } else if (writers_.empty() && mem_->num_entries() > 0) {
      // Idle store — the common victim (cold tenants have no writers in
      // flight). An empty writer queue under mu_ gives this thread the
      // same mem_/log_ exclusivity a group-commit leader has.
      arbiter_switch_requested_.store(false, std::memory_order_release);
      ++stats_.arbiter_forced_flushes;
      const Status s = SwitchMemTable();
      if (!s.ok()) RecordBackgroundError(s);
      ReportPoolUsage(/*wrote=*/false);
    }
    // else: a write group is in flight — its leader consumes the flag in
    // MakeRoomForWrite without ever blocking on this store's behalf.
  }
  bg_cv_.SignalAll();
}

void DBImpl::StallWait(int cause) {
  StallWindow& window = stall_windows_[cause];
  if (window.waiters == 0) window.start_micros = clock_->NowMicros();
  ++window.waiters;
  stall_cv_.Wait();
  --window.waiters;
  if (window.waiters == 0) {
    const uint64_t now = clock_->NowMicros();
    const uint64_t elapsed =
        now > window.start_micros ? now - window.start_micros : 0;
    stats_.write_stall_micros += elapsed;
    if (cause == kStallMemTable) {
      stats_.stall_memtable_micros += elapsed;
    } else {
      stats_.stall_l0_micros += elapsed;
    }
  }
}

void DBImpl::SignalStalledWriters(bool l0_changed) {
  if (l0_changed || !bg_error_.ok() ||
      stall_windows_[kStallL0].waiters > 0) {
    // L0 state changed (or an error latched, or both causes are parked on
    // the one CV): everyone must recheck.
    stall_cv_.SignalAll();
  } else if (stall_windows_[kStallMemTable].waiters > 0) {
    // One flush slot freed admits one memtable switch: wake one waiter,
    // not the herd — the rest would just measure the queue full again and
    // go back to sleep, multiplying wakeups (and, before the per-cause
    // windows above, stall time) by the writer count.
    stall_cv_.Signal();
  }
}

Status DBImpl::MakeRoomForWrite(uint64_t batch_bytes) {
  bool delay_done = false;
  // Under a global write-memory pool the fixed write_buffer_size stops
  // being the flush trigger: the memtable grows until the pool picks this
  // store as a victim (aggregate budget pressure) or hits the pool's
  // per-attachment hard cap (bounds single-flush size and recovery time).
  const bool pooled = options_.write_memory_pool != nullptr;
  const uint64_t mem_cap = pooled ? options_.write_memory_pool->AttachmentCap()
                                  : options_.write_buffer_size;
  for (;;) {
    if (!bg_error_.ok()) return ReadOnlyError();
    bool arbiter_switch = false;
    if (pooled) {
      // Cross-store pressure moves with other tenants' writes, not just
      // local events: refresh pacing on every admission attempt.
      RefreshWritePressure();
      arbiter_switch =
          arbiter_switch_requested_.load(std::memory_order_acquire) &&
          mem_->num_entries() > 0;
      if (arbiter_switch &&
          (MemTableQueueFull() ||
           (!options_.disable_compaction &&
            versions_->current()->NumFiles(0) >=
                options_.l0_stop_writes_trigger))) {
        // Honoring the request would park this writer behind its own full
        // flush queue (or L0 stop cliff) — a stall the arbiter must never
        // induce. In-flight flushes are already releasing memory; drop the
        // request (the pool re-picks while over the watermark).
        arbiter_switch_requested_.store(false, std::memory_order_release);
        MaybeScheduleFlush();
        arbiter_switch = false;
      }
    }
    if (!arbiter_switch &&
        (mem_->ApproximateMemoryUsage() <= mem_cap ||
         mem_->num_entries() == 0)) {
      // The empty-memtable check matters when write_buffer_size is smaller
      // than the arena's first block: switching would just install another
      // over-budget empty memtable, forever.
      if (!delay_done && batch_bytes > 0 && write_controller_.ShouldDelay()) {
        // Graduated backpressure: L0 (or the immutable queue) is inside
        // the soft window, so pace this batch instead of racing toward the
        // hard stall. Applied at most once per write, with the mutex
        // released; state is rechecked from the top afterwards.
        delay_done = true;
        const uint64_t delay =
            write_controller_.DelayMicros(clock_->NowMicros(), batch_bytes);
        // Charged to the bucket either way; a zero delay just means the
        // bucket had drained since the last admitted batch.
        ++stats_.slowdown_writes;
        if (delay > 0) {
          stats_.slowdown_delay_micros += delay;
          mu_.Unlock();
          clock_->SleepForMicros(delay);
          mu_.Lock();
          continue;
        }
      }
      return Status::OK();
    }
    if (MemTableQueueFull()) {
      // Every allowed memtable is full and queued; wait for a flush to
      // retire the oldest one (and make sure one is actually scheduled).
      MaybeScheduleFlush();
      StallWait(kStallMemTable);
      continue;
    }
    if (!options_.disable_compaction &&
        versions_->current()->NumFiles(0) >= options_.l0_stop_writes_trigger) {
      // Hard L0 stall. Make sure the compaction that relieves it is
      // actually scheduled before parking.
      MaybeScheduleCompaction();
      StallWait(kStallL0);
      continue;
    }
    if (arbiter_switch) {
      arbiter_switch_requested_.store(false, std::memory_order_release);
      ++stats_.arbiter_forced_flushes;
    }
    LSMIO_RETURN_IF_ERROR(SwitchMemTable());
  }
}

Status DBImpl::SwitchMemTable() {
  assert(!MemTableQueueFull());

  // Roll the WAL together with the memtable.
  if (!options_.disable_wal) {
    const uint64_t new_log_number = versions_->NewFileNumber();
    std::unique_ptr<vfs::WritableFile> new_logfile;
    Status s = fs().NewWritableFile(LogFileName(dbname_, new_log_number), {},
                                    &new_logfile);
    if (!s.ok()) {
      versions_->ReuseFileNumber(new_log_number);
      return s;
    }
    // The retired WAL still covers the memtable headed for the imm queue:
    // recovery replays it until the flush completes. A failed close can
    // drop buffered-but-unsynced acked records while the process is alive
    // and healthy — that is a WAL write failure, so latch read-only mode
    // exactly as a failed Append/Sync would.
    Status close_s = logfile_->Close();
    if (!close_s.ok()) RecordBackgroundError(close_s);
    logfile_ = std::move(new_logfile);
    logfile_number_ = new_log_number;
    log_ = std::make_unique<log::Writer>(logfile_.get());
  }

  imm_queue_.push_back(mem_);
  // logfile_number_ is now the rolled WAL: everything in the retired
  // memtable lives in older WALs, so once it is flushed to an SST the
  // recovery log number can advance to this value.
  imm_log_queue_.push_back(logfile_number_);
  mem_ = new MemTable(internal_comparator_);
  mem_->Ref();
  MaybeScheduleFlush();
  RefreshWritePressure();
  return Status::OK();
}

Status DBImpl::FlushMemTable(bool wait) {
  if (options_.read_only) return Status::OK();  // nothing can be dirty
  MutexLock lock(&mu_);
  if (mem_->num_entries() > 0) {
    // Queue a batch-less writer: the memtable switch must not interleave
    // with a write group that has the mutex dropped.
    Writer w(nullptr, false, &mu_);
    writers_.push_back(&w);
    while (!w.done && &w != writers_.front()) w.cv.Wait();
    assert(!w.done);  // batch-less writers are never absorbed into a group

    Status s = bg_error_.ok() ? Status::OK() : ReadOnlyError();
    if (s.ok() && mem_->num_entries() > 0) {
      while (MemTableQueueFull() && bg_error_.ok()) {
        MaybeScheduleFlush();
        StallWait(kStallMemTable);
      }
      s = bg_error_.ok() ? SwitchMemTable() : ReadOnlyError();
    }
    writers_.pop_front();
    if (!writers_.empty()) writers_.front()->cv.Signal();
    LSMIO_RETURN_IF_ERROR(s);
  }
  if (wait) {
    while ((!imm_queue_.empty() || flush_scheduled_) && bg_error_.ok()) {
      bg_cv_.Wait();
    }
    if (!bg_error_.ok()) return ReadOnlyError();
  }
  return Status::OK();
}

namespace {

// True when the file's user-key span [smallest, largest] intersects the
// range [begin, end]; a null bound is unbounded on that side.
bool FileOverlapsUserRange(const Comparator* ucmp, const FileMetaData& f,
                           const Slice* begin, const Slice* end) {
  if (begin != nullptr &&
      ucmp->Compare(ExtractUserKey(Slice(f.largest)), *begin) < 0) {
    return false;
  }
  if (end != nullptr &&
      ucmp->Compare(ExtractUserKey(Slice(f.smallest)), *end) > 0) {
    return false;
  }
  return true;
}

}  // namespace

bool DBImpl::FileOverlapsManualRange(const FileMetaData& f) const {
  const Slice begin(manual_begin_);
  const Slice end(manual_end_);
  return FileOverlapsUserRange(internal_comparator_.user_comparator(), f,
                               manual_has_begin_ ? &begin : nullptr,
                               manual_has_end_ ? &end : nullptr);
}

Status DBImpl::CompactRange(const Slice* begin, const Slice* end) {
  if (options_.disable_compaction || options_.read_only) return Status::OK();
  MutexLock lock(&mu_);
  if (!bg_error_.ok()) return ReadOnlyError();

  // Route by range: when nothing on disk intersects the request this is a
  // fast no-op — on a sharded store that is what keeps a manual compaction
  // away from shards outside the range.
  bool any_overlap = false;
  {
    // Scoped: holding this version ref across the wait below would keep
    // the compaction's input files "live" through the install-time
    // obsolete-file sweep, leaving them on disk until the next compaction.
    const Comparator* ucmp = internal_comparator_.user_comparator();
    const auto current = versions_->current();
    for (int level = 0; level < kNumLevels && !any_overlap; ++level) {
      for (const auto& f : current->files[level]) {
        if (FileOverlapsUserRange(ucmp, f, begin, end)) {
          any_overlap = true;
          break;
        }
      }
    }
  }
  if (!any_overlap) return Status::OK();

  // One manual request at a time: a second caller waits until the first
  // request has been picked up and completed before installing its own.
  while (manual_compaction_requested_ && bg_error_.ok()) bg_cv_.Wait();
  if (!bg_error_.ok()) return ReadOnlyError();

  manual_compaction_requested_ = true;
  manual_has_begin_ = begin != nullptr;
  manual_has_end_ = end != nullptr;
  manual_begin_ = begin != nullptr ? begin->ToString() : std::string();
  manual_end_ = end != nullptr ? end->ToString() : std::string();
  const uint64_t target_gen = manual_done_gen_ + 1;
  MaybeScheduleCompaction();
  // Wait for this request's completion generation, not just a flag: the
  // compaction may be parked on the store-wide limiter before it is ever
  // "scheduled", and another caller may re-arm the flag right after ours
  // completes.
  while (manual_done_gen_ < target_gen && bg_error_.ok()) bg_cv_.Wait();
  // Clear on the error path too, so a failed manual compaction cannot
  // wedge later calls.
  if (!bg_error_.ok()) {
    manual_compaction_requested_ = false;
    bg_cv_.SignalAll();
    return ReadOnlyError();
  }
  return Status::OK();
}

// --- background work ----------------------------------------------------------

void DBImpl::MaybeScheduleFlush() {
  if (flush_scheduled_ || shutting_down_.load()) return;
  // Read-only mode: the queue can never drain, so rescheduling would just
  // spin the background thread (and keep the destructor waiting forever).
  if (!bg_error_.ok()) return;
  if (imm_queue_.empty()) return;
  flush_scheduled_ = true;
  bg_pool_->Submit([this] { BackgroundFlushCall(); });
}

void DBImpl::MaybeScheduleCompaction() {
  if (compaction_scheduled_ || compaction_waiting_ || shutting_down_.load()) {
    return;
  }
  if (!bg_error_.ok()) return;  // read-only: see MaybeScheduleFlush
  if (!NeedsCompaction() && !manual_compaction_requested_) return;
  // Take a slot on the store-wide limiter before submitting: this is what
  // caps concurrent compactions across the shards of a sharded store and
  // keeps one hot shard from occupying every pool thread. When the slots
  // are full we park a retry and are re-dispatched FIFO as one frees up.
  if (!limiter_->TryStart(this, [this] { RetryCompactionSchedule(); })) {
    compaction_waiting_ = true;
    return;
  }
  compaction_scheduled_ = true;
  bg_pool_->Submit([this] { BackgroundCompactionCall(); });
}

void DBImpl::RetryCompactionSchedule() {
  MutexLock lock(&mu_);
  compaction_waiting_ = false;
  MaybeScheduleCompaction();
  // A CompactRange caller may be parked while its request waited for a
  // limiter slot; if scheduling is no longer possible (shutdown/read-only)
  // it must wake up and observe that.
  bg_cv_.SignalAll();
}

bool DBImpl::NeedsCompaction() const {
  if (options_.disable_compaction || options_.read_only) return false;
  if (versions_->current()->PickCompactionLevel(options_) >= 0) return true;
  return NeedsGcCompaction();
}

bool DBImpl::NeedsGcCompaction() const {
  if (vlog_ == nullptr) return false;
  std::vector<FileMetaData> inputs;
  return PickGcCompaction(&inputs) >= 0;
}

int DBImpl::PickGcCompaction(std::vector<FileMetaData>* inputs) const {
  inputs->clear();
  if (vlog_ == nullptr) return -1;
  const std::vector<uint64_t> candidates = vlog_->GcCandidates();
  if (candidates.empty()) return -1;
  const std::set<uint64_t> targets(candidates.begin(), candidates.end());
  const auto current = versions_->current();
  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& f : current->files[level]) {
      const bool pins = std::any_of(
          f.blob_refs.begin(), f.blob_refs.end(),
          [&](uint64_t seg) { return targets.count(seg) != 0; });
      if (!pins) continue;
      if (level == 0) {
        // L0 files may overlap and reads go newest-file-number-first;
        // rewriting one old file into a fresh (higher) number would let it
        // shadow newer siblings. Compact all of L0 together, as the size
        // trigger does.
        *inputs = current->files[0];
      } else {
        inputs->push_back(f);
      }
      return level;
    }
  }
  return -1;
}

void DBImpl::BackgroundFlushCall() {
  MutexLock lock(&mu_);
  assert(flush_scheduled_);

  if (!shutting_down_.load() && bg_error_.ok() && !imm_queue_.empty()) {
    MemTable* imm = imm_queue_.front();
    lock.Unlock();
    const Status s = CompactMemTable(imm);
    lock.Lock();
    if (!s.ok()) RecordBackgroundError(s);
  }

  flush_scheduled_ = false;
  MaybeScheduleFlush();       // more immutables may be queued
  MaybeScheduleCompaction();  // the flush may have tipped L0 over
  bg_cv_.SignalAll();
}

void DBImpl::BackgroundCompactionCall() {
  MutexLock lock(&mu_);
  assert(compaction_scheduled_);

  if (!shutting_down_.load() && bg_error_.ok()) {
    const bool manual = manual_compaction_requested_;
    lock.Unlock();
    limiter_->BeginExecute();
    const Status s = BackgroundCompaction();
    limiter_->EndExecute();
    lock.Lock();
    if (manual) {
      manual_compaction_requested_ = false;
      ++manual_done_gen_;
    }
    if (!s.ok()) RecordBackgroundError(s);
  }

  // Release the limiter slot before clearing compaction_scheduled_: the
  // destructor waits on that flag, so the object is guaranteed alive for
  // the Finish call (which may dispatch other shards' retries).
  lock.Unlock();
  limiter_->Finish();
  lock.Lock();

  compaction_scheduled_ = false;
  MaybeScheduleCompaction();
  bg_cv_.SignalAll();
}

Status DBImpl::CompactMemTable(MemTable* imm) {
  // Called without mu_. `imm` stays at the front of imm_queue_ (readable by
  // Get/iterators) until the flush is installed; only this thread pops it.
  assert(imm != nullptr);

  FileMetaData meta;
  {
    MutexLock lock(&mu_);
    meta.number = versions_->NewFileNumber();
    pending_outputs_.insert(meta.number);
  }

  std::unique_ptr<Iterator> iter(imm->NewIterator());
  Status s = BuildTable(dbname_, fs(), options_, &internal_comparator_,
                        filter_policy_.get(), iter.get(), &meta, rate_limiter_);
  // The table's pointer entries may reference blob bytes no sync barrier
  // has covered yet (non-sync writes); once this flush advances the
  // recovery log number, the WAL stops protecting those records.
  if (s.ok() && vlog_ != nullptr && !meta.blob_refs.empty()) s = vlog_->Sync();

  MutexLock lock(&mu_);
  pending_outputs_.erase(meta.number);
  if (s.ok() && meta.file_size > 0) {
    assert(!imm_queue_.empty() && imm_queue_.front() == imm);
    // Advance the recovery log number in the same manifest record that
    // installs the SST. Without this, reopen replays the already-flushed
    // WAL into a fresh (higher-numbered) L0 file; if the WAL's unsynced
    // tail was lost in a crash, that stale replay shadows newer synced
    // data because L0 reads go newest-file-number-first.
    versions_->SetLogNumber(imm_log_queue_.front());
    auto v = versions_->MakeVersion({{0, meta}}, {});
    s = versions_->LogAndApply(std::move(v));
    stats_.memtable_flushes += 1;
    stats_.bytes_flushed += meta.file_size;
  }
  if (s.ok()) {
    assert(!imm_queue_.empty() && imm_queue_.front() == imm);
    imm_queue_.pop_front();
    imm_log_queue_.pop_front();
    imm->Unref();
    RemoveObsoleteFiles();
    // The flushed memtable's bytes just left the global pool; report before
    // recomputing pressure so pacing sees the release immediately.
    ReportPoolUsage(/*wrote=*/false);
    // A flush slot freed (and L0 grew): recompute pacing pressure and
    // admit stalled writers.
    RefreshWritePressure();
    SignalStalledWriters(/*l0_changed=*/false);
  }
  return s;
}

Status DBImpl::BackgroundCompaction() {
  // Decide inputs under the lock, merge outside it.
  int level = -1;
  int output_level = -1;
  std::vector<FileMetaData> level_inputs;
  std::vector<FileMetaData> next_inputs;
  {
    MutexLock lock(&mu_);
    const auto current = versions_->current();
    if (manual_compaction_requested_) {
      // Manual compaction: only files overlapping the requested range.
      // L0 first; the selection must then be *transitively* expanded to
      // every L0 file overlapping the picked files' key span, because L0
      // reads are newest-file-first — compacting a newer L0 file into L1
      // while an older overlapping L0 sibling stays behind would let the
      // sibling's stale versions shadow the freshly installed ones.
      for (const auto& f : current->files[0]) {
        if (FileOverlapsManualRange(f)) level_inputs.push_back(f);
      }
      if (!level_inputs.empty()) {
        level = 0;
        const Comparator* ucmp = internal_comparator_.user_comparator();
        std::set<uint64_t> picked;
        std::string lo, hi;  // user-key span of the selection so far
        for (const auto& f : level_inputs) {
          picked.insert(f.number);
          const Slice fs = ExtractUserKey(Slice(f.smallest));
          const Slice fl = ExtractUserKey(Slice(f.largest));
          if (lo.empty() || ucmp->Compare(fs, Slice(lo)) < 0) lo = fs.ToString();
          if (hi.empty() || ucmp->Compare(fl, Slice(hi)) > 0) hi = fl.ToString();
        }
        for (bool grew = true; grew;) {
          grew = false;
          for (const auto& f : current->files[0]) {
            if (picked.count(f.number) != 0) continue;
            const Slice slo(lo);
            const Slice shi(hi);
            if (!FileOverlapsUserRange(ucmp, f, &slo, &shi)) continue;
            level_inputs.push_back(f);
            picked.insert(f.number);
            const Slice fs = ExtractUserKey(Slice(f.smallest));
            const Slice fl = ExtractUserKey(Slice(f.largest));
            if (ucmp->Compare(fs, slo) < 0) lo = fs.ToString();
            if (ucmp->Compare(fl, shi) > 0) hi = fl.ToString();
            grew = true;
          }
        }
      } else {
        for (int l = 1; l < kNumLevels - 1 && level < 0; ++l) {
          for (const auto& f : current->files[l]) {
            if (FileOverlapsManualRange(f)) {
              level = l;
              level_inputs.push_back(f);
              break;
            }
          }
        }
      }
    } else {
      // Pressure-aware pick: the level with the highest compaction score
      // wins, and L0 jumps into dominance once the slowdown trigger is
      // crossed (writers are paying pacing delays, so L0→L1 is the
      // compaction that actually relieves them).
      level = current->PickCompactionLevel(options_);
      if (level == 0) {
        level_inputs = current->files[0];
      } else if (level > 0) {
        level_inputs.push_back(current->files[level][0]);
      } else {
        // No size trigger fired: value-log GC wants the file(s) pinning a
        // mostly-garbage blob segment rewritten so the live values relocate
        // and the segment can be reclaimed.
        level = PickGcCompaction(&level_inputs);
      }
    }
    if (level < 0) return Status::OK();

    // The last level has nowhere to push into; GC rewrites it in place
    // (level >= 1 files are disjoint, so same-level output is safe).
    output_level = level < kNumLevels - 1 ? level + 1 : level;

    // Overlapping files in the next level.
    const Comparator* ucmp = internal_comparator_.user_comparator();
    std::string smallest;
    std::string largest;
    for (const auto& f : level_inputs) {
      if (smallest.empty() ||
          internal_comparator_.Compare(Slice(f.smallest), Slice(smallest)) < 0) {
        smallest = f.smallest;
      }
      if (largest.empty() ||
          internal_comparator_.Compare(Slice(f.largest), Slice(largest)) > 0) {
        largest = f.largest;
      }
    }
    if (output_level > level) {
      for (const auto& f : current->files[output_level]) {
        const Slice f_small_user = ExtractUserKey(Slice(f.smallest));
        const Slice f_large_user = ExtractUserKey(Slice(f.largest));
        if (ucmp->Compare(f_large_user, ExtractUserKey(Slice(smallest))) >= 0 &&
            ucmp->Compare(f_small_user, ExtractUserKey(Slice(largest))) <= 0) {
          next_inputs.push_back(f);
        }
      }
    }
  }
  return CompactFiles(level, level_inputs, next_inputs, output_level);
}

Status DBImpl::CompactFiles(int level,
                            const std::vector<FileMetaData>& level_inputs,
                            const std::vector<FileMetaData>& next_inputs,
                            int output_level) {
  const SequenceNumber smallest_snapshot = [&] {
    MutexLock lock(&mu_);
    return SmallestSnapshot();
  }();

  // Blob segments whose garbage ratio crossed the GC threshold: live
  // values this compaction encounters in them are relocated to the active
  // segment (under their original sequence numbers, so snapshot readers
  // are unaffected). A segment stays a candidate until its live bytes
  // drain to zero, so the set being a snapshot taken here is safe.
  std::set<uint64_t> gc_targets;
  if (vlog_ != nullptr) {
    for (const uint64_t seg : vlog_->GcCandidates()) gc_targets.insert(seg);
  }

  // Merge all inputs.
  std::vector<Iterator*> children;
  ReadOptions read_options;
  read_options.fill_cache = false;
  read_options.readahead_bytes = options_.compaction_readahead_bytes;
  for (const auto& f : level_inputs) {
    children.push_back(table_cache_->NewIterator(read_options, f.number, f.file_size));
  }
  for (const auto& f : next_inputs) {
    children.push_back(table_cache_->NewIterator(read_options, f.number, f.file_size));
  }
  std::unique_ptr<Iterator> merged(NewMergingIterator(
      &internal_comparator_, children.data(), static_cast<int>(children.size())));

  const bool bottommost = [&] {
    MutexLock lock(&mu_);
    const auto current = versions_->current();
    for (int l = output_level + 1; l < kNumLevels; ++l) {
      if (current->NumFiles(l) > 0) return false;
    }
    return true;
  }();

  // Pipeline stage 1 (producer): block reads + decode + heap merge, i.e.
  // everything behind Next on the merged iterator. With the pipeline on,
  // a background thread runs it and feeds double-buffered entry batches;
  // otherwise Next degenerates to an inline iterator step. `source` must
  // be destroyed before `merged` (it drives the iterator from its thread).
  std::unique_ptr<KvSource> source;
  if (options_.pipeline_compaction_io) {
    source = std::make_unique<PipelinedKvSource>(merged.get());
  } else {
    source = std::make_unique<IteratorKvSource>(merged.get());
  }

  std::vector<FileMetaData> outputs;
  std::vector<uint64_t> allocated_numbers;  // every number taken, for cleanup
  std::unique_ptr<vfs::WritableFile> out_file;
  std::unique_ptr<TableBuilder> builder;
  FileMetaData current_output;
  std::set<uint64_t> current_refs;  // blob segments the current output pins
  // Per-segment record bytes this compaction turned into garbage (entries
  // dropped or relocated); applied to the value log's live accounting in
  // the same install as the manifest record.
  std::map<uint64_t, uint64_t> garbage;
  bool relocated_any = false;
  Status s;

  // Pipeline stage 3 (async finish): Finish+Sync+Close of a completed
  // output runs on a helper thread while the next output builds, so the
  // output fsync overlaps both input I/O and merge compute. At most one
  // finish is in flight; its result is read only after the join.
  std::thread finisher;
  bool finish_pending = false;
  Status finish_status;
  FileMetaData finished_meta;

  auto wait_finisher = [&]() -> Status {
    if (!finish_pending) return Status::OK();
    finisher.join();
    finish_pending = false;
    if (finish_status.ok() && finished_meta.file_size > 0) {
      outputs.push_back(finished_meta);
      MutexLock lock(&mu_);
      stats_.bytes_compacted += finished_meta.file_size;
      stats_.compaction_bytes_written += finished_meta.file_size;
    }
    return finish_status;
  };

  auto finish_output = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    LSMIO_RETURN_IF_ERROR(wait_finisher());
    current_output.blob_refs.assign(current_refs.begin(), current_refs.end());
    current_refs.clear();
    finish_pending = true;
    finisher = std::thread([&finish_status, &finished_meta,
                            fin_builder = std::move(builder),
                            fin_file = std::move(out_file),
                            meta = current_output]() mutable {
      Status fs_status = fin_builder->Finish();
      if (fs_status.ok()) {
        meta.file_size = fin_builder->FileSize();
        // Always fsync (as in BuildTable): LogAndApply installs this file
        // and the inputs it replaces get deleted, so an unsynced output
        // would be the only copy of its keys after a power failure.
        fs_status = fin_file->Sync();
      }
      if (fs_status.ok()) fs_status = fin_file->Close();
      finish_status = fs_status;
      finished_meta = meta;
    });
    return Status::OK();
  };

  // Pipeline stage 2 (consumer, this thread): drop logic + encode + write.
  const Comparator* ucmp = internal_comparator_.user_comparator();
  std::string last_user_key;
  bool has_last_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

  Slice key;
  Slice value;
  std::string relocated_value;  // backing store when a pointer is rewritten
  while (s.ok() && source->Next(&key, &value)) {
    ParsedInternalKey ikey;
    bool drop = false;
    bool parsed_ok = ParseInternalKey(key, &ikey);
    if (!parsed_ok) {
      // Corrupt key: keep it so the corruption stays visible.
      has_last_user_key = false;
      last_sequence_for_key = kMaxSequenceNumber;
    } else {
      if (!has_last_user_key ||
          ucmp->Compare(ikey.user_key, Slice(last_user_key)) != 0) {
        last_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
        has_last_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
      }
      if (last_sequence_for_key <= smallest_snapshot) {
        drop = true;  // shadowed by a newer entry old enough for everyone
      } else if (ikey.type == ValueType::kDeletion &&
                 ikey.sequence <= smallest_snapshot && bottommost) {
        drop = true;  // tombstone with nothing underneath
      }
      last_sequence_for_key = ikey.sequence;
    }

    ValuePointer ptr;
    const bool have_ptr = parsed_ok &&
                          ikey.type == ValueType::kValuePointer &&
                          DecodeValuePointer(value, &ptr);
    if (drop) {
      // The dropped entry's blob record just became garbage.
      if (have_ptr) garbage[ptr.segment] += ptr.length;
      continue;
    }
    if (have_ptr && gc_targets.count(ptr.segment) != 0) {
      // GC relocation: copy the surviving value into the active segment
      // and re-point this entry there — same internal key, so the entry's
      // sequence (and therefore snapshot visibility) is untouched.
      std::string blob_value;
      Status rs = vlog_->ReadValue(ptr, &blob_value);
      if (rs.ok()) {
        ValuePointer new_ptr;
        rs = vlog_->Append(ikey.user_key, Slice(blob_value),
                           /*gc_rewrite=*/true, &new_ptr);
        if (rs.ok()) {
          garbage[ptr.segment] += ptr.length;
          relocated_value.clear();
          EncodeValuePointer(&relocated_value, new_ptr);
          value = Slice(relocated_value);
          ptr = new_ptr;
          relocated_any = true;
        }
      }
      if (!rs.ok()) {
        // Keep the old pointer: the value stays readable and the segment
        // simply stays pinned until a later compaction succeeds.
        LSMIO_WARN << "value-log GC relocation failed (segment "
                   << ptr.segment << "): " << rs.ToString();
      }
    }
    if (have_ptr) current_refs.insert(ptr.segment);

    if (builder == nullptr) {
      {
        MutexLock lock(&mu_);
        current_output = FileMetaData{};
        current_output.number = versions_->NewFileNumber();
        pending_outputs_.insert(current_output.number);
        allocated_numbers.push_back(current_output.number);
      }
      s = fs().NewWritableFile(TableFileName(dbname_, current_output.number), {},
                               &out_file);
      if (!s.ok()) break;
      // Charge compaction output writes at low priority: under a shared
      // byte budget, a concurrent flush's writes preempt these.
      out_file = MaybeRateLimit(std::move(out_file), rate_limiter_,
                                RateLimiter::Priority::kLow);
      builder = std::make_unique<TableBuilder>(options_, &internal_comparator_,
                                               filter_policy_.get(), out_file.get());
      current_output.smallest = key.ToString();
    }
    current_output.largest = key.ToString();
    builder->Add(key, value);

    if (builder->FileSize() >= options_.target_file_size) {
      s = finish_output();
    }
  }
  if (s.ok()) s = source->status();
  if (s.ok()) s = finish_output();
  {
    // Drain the in-flight finish unconditionally (the thread must join);
    // on the error path its status is secondary to the first failure.
    const Status drained = wait_finisher();
    if (s.ok()) s = drained;
  }
  if (builder != nullptr) {
    builder->Abandon();
    builder.reset();
    out_file.reset();
  }
  const uint64_t pipeline_batches = source->batches();
  source.reset();  // joins the producer thread before `merged` dies

  // Relocated blob records must be durable before outputs referencing them
  // install: the old copies live in a segment that drains and gets deleted.
  if (s.ok() && relocated_any) s = vlog_->Sync();

  uint64_t input_bytes = 0;
  for (const auto& f : level_inputs) input_bytes += f.file_size;
  for (const auto& f : next_inputs) input_bytes += f.file_size;

  MutexLock lock(&mu_);
  stats_.compaction_pipeline_batches += pipeline_batches;
  // Failed/empty outputs fall out of pending_outputs_ too, so the next
  // RemoveObsoleteFiles sweep can delete the partial files.
  for (const uint64_t number : allocated_numbers) pending_outputs_.erase(number);
  if (!s.ok()) return s;

  // Install: delete inputs, add outputs at output_level. The value log's
  // live accounting is updated first so the manifest record written by
  // LogAndApply snapshots the post-compaction per-segment live bytes.
  if (vlog_ != nullptr && !garbage.empty()) vlog_->ApplyGarbage(garbage);
  std::vector<std::pair<int, FileMetaData>> additions;
  std::vector<std::pair<int, uint64_t>> deletions;
  for (const auto& f : level_inputs) deletions.emplace_back(level, f.number);
  for (const auto& f : next_inputs) deletions.emplace_back(output_level, f.number);
  for (const auto& f : outputs) additions.emplace_back(output_level, f);
  auto v = versions_->MakeVersion(additions, deletions);
  s = versions_->LogAndApply(std::move(v));
  if (s.ok()) {
    stats_.compactions += 1;
    stats_.compaction_bytes_read += input_bytes;
    if (vlog_ != nullptr) {
      // Segments drained by this compaction may still be readable through
      // snapshots/iterators holding superseded Versions: seal them against
      // weak references to those Versions and delete only once all expire.
      std::vector<std::weak_ptr<const void>> guards;
      versions_->CollectVersionGuards(&guards);
      vlog_->SealDrained(guards);
    }
    RemoveObsoleteFiles();
    // L0 (or a deeper level) shrank: drop pacing pressure accordingly and
    // release writers hard-stalled on the L0 stop trigger.
    RefreshWritePressure();
    SignalStalledWriters(/*l0_changed=*/true);
  }
  return s;
}

void DBImpl::RemoveObsoleteFiles() {
  // mu_ held.
  if (!bg_error_.ok()) return;

  // Reap blob segments whose version guards have expired since the last
  // sweep (iterators/snapshots released).
  if (vlog_ != nullptr) vlog_->SweepDeletable();

  std::vector<uint64_t> live;
  versions_->AddLiveFiles(&live);
  for (const uint64_t number : pending_outputs_) live.push_back(number);
  std::sort(live.begin(), live.end());

  std::vector<std::string> children;
  if (!fs().ListDir(dbname_, &children).ok()) return;
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) continue;
    bool keep = true;
    switch (type) {
      case FileType::kLogFile:
        keep = number >= versions_->LogNumber() || number == logfile_number_;
        break;
      case FileType::kTableFile:
        keep = std::binary_search(live.begin(), live.end(), number);
        break;
      case FileType::kManifestFile:
        keep = number >= versions_->ManifestFileNumber();
        break;
      case FileType::kBlobFile:
        // The value log owns segment lifetime (guard-gated deletion in
        // SweepDeletable); this sweep only reaps files it already
        // unregistered but could not remove, e.g. after an EIO.
        keep = vlog_ == nullptr || vlog_->Contains(number);
        break;
      default:
        break;
    }
    if (!keep) {
      if (type == FileType::kTableFile) table_cache_->Evict(number);
      // Best effort: an orphan that survives an EIO here is retried on the
      // next sweep (and is invisible to reads — it is in no Version).
      fs().RemoveFile(dbname_ + "/" + child).IgnoreError();
    }
  }
}

// --- reads ---------------------------------------------------------------------

SequenceNumber DBImpl::SmallestSnapshot() const {
  SequenceNumber smallest = versions_->LastSequence();
  for (const auto* snap : snapshots_) {
    smallest = std::min(smallest, snap->sequence);
  }
  return smallest;
}

Status DBImpl::Get(const ReadOptions& options, const Slice& key, std::string* value) {
  const uint64_t op_start_micros = clock_->NowMicros();
  MemTable* mem;
  std::vector<MemTable*> imms;  // newest first
  std::shared_ptr<Version> current;
  SequenceNumber sequence;
  {
    MutexLock lock(&mu_);
    sequence = options.snapshot_sequence != 0 ? options.snapshot_sequence
                                              : versions_->LastSequence();
    mem = mem_;
    mem->Ref();
    imms.reserve(imm_queue_.size());
    for (auto it = imm_queue_.rbegin(); it != imm_queue_.rend(); ++it) {
      (*it)->Ref();
      imms.push_back(*it);
    }
    current = versions_->current();
    ++stats_.gets;
  }

  const LookupKey lkey(key, sequence);
  Status s;
  bool found = false;
  bool is_pointer = false;
  if (mem->Get(lkey, value, &s, &is_pointer)) {
    found = true;
  } else {
    for (MemTable* imm : imms) {
      if (imm->Get(lkey, value, &s, &is_pointer)) {
        found = true;
        break;
      }
    }
  }
  if (!found) {
    s = current->Get(options, table_cache_.get(), lkey, value, &is_pointer);
    found = s.ok();
  }
  // Resolve a separated value through the blob segments (outside mu_; the
  // pinned Version guards the segment against GC deletion).
  if (found && s.ok() && is_pointer) s = ResolvePointerValue(value);

  {
    MutexLock lock(&mu_);
    if (found && s.ok()) ++stats_.get_hits;
    mem->Unref();
    for (MemTable* imm : imms) imm->Unref();
  }
  get_latency_rec_.Record(clock_->NowMicros() - op_start_micros);
  return s;
}

Status DBImpl::MultiGet(const ReadOptions& options, std::span<const Slice> keys,
                        std::vector<std::string>* values,
                        std::vector<Status>* statuses) {
  const uint64_t op_start_micros = clock_->NowMicros();
  const size_t n = keys.size();
  values->assign(n, {});
  // Preset OK (a no-allocation status); misses are stamped NotFound below.
  statuses->assign(n, Status());
  if (n == 0) return Status::OK();

  // One mutex acquisition pins the whole batch's read view: sequence,
  // memtable + immutables, and the current file layout.
  MemTable* mem;
  std::vector<MemTable*> imms;  // newest first
  std::shared_ptr<Version> current;
  SequenceNumber sequence;
  {
    MutexLock lock(&mu_);
    sequence = options.snapshot_sequence != 0 ? options.snapshot_sequence
                                              : versions_->LastSequence();
    mem = mem_;
    mem->Ref();
    imms.reserve(imm_queue_.size());
    for (auto it = imm_queue_.rbegin(); it != imm_queue_.rend(); ++it) {
      (*it)->Ref();
      imms.push_back(*it);
    }
    current = versions_->current();
    ++stats_.multiget_batches;
    stats_.multiget_keys += n;
  }

  // LookupKey is non-copyable; a deque keeps them stable while requests
  // point at them.
  std::deque<LookupKey> lkeys;
  std::vector<Version::GetRequest> reqs(n);
  std::vector<Version::GetRequest*> pending;
  pending.reserve(n);
  std::vector<char> pointer_hits(n, 0);  // memtable hits that were pointers
  for (size_t i = 0; i < n; ++i) {
    lkeys.emplace_back(keys[i], sequence);
    const LookupKey& lkey = lkeys.back();
    Status s;
    std::string* value = &(*values)[i];
    bool resolved = false;
    bool is_pointer = false;
    if (mem->Get(lkey, value, &s, &is_pointer)) {
      resolved = true;
    } else {
      for (MemTable* imm : imms) {
        if (imm->Get(lkey, value, &s, &is_pointer)) {
          resolved = true;
          break;
        }
      }
    }
    if (resolved) {
      (*statuses)[i] = s;
      pointer_hits[i] = is_pointer ? 1 : 0;
    } else {
      reqs[i].lkey = &lkey;
      reqs[i].value = value;
      reqs[i].status = &(*statuses)[i];
      pending.push_back(&reqs[i]);
    }
  }

  Status batch_status;
  if (!pending.empty()) {
    const Comparator* ucmp = internal_comparator_.user_comparator();
    std::stable_sort(pending.begin(), pending.end(),
                     [ucmp](const Version::GetRequest* a,
                            const Version::GetRequest* b) {
                       return ucmp->Compare(a->lkey->user_key(),
                                            b->lkey->user_key()) < 0;
                     });
    batch_status = current->MultiGet(options, table_cache_.get(), pending);
    // Keys the level walk never resolved are misses — or report the batch
    // failure when the walk itself broke.
    for (Version::GetRequest* req : pending) {
      if (!req->done) {
        *req->status = batch_status.ok() ? Status::NotFound("key not present")
                                         : batch_status;
      }
    }
  }

  // Resolve separated values: sort the pointers by (segment, offset) and
  // hint each contiguous same-segment run to the VFS before reading, so a
  // batch that hits one segment turns into one readahead window.
  struct Resolve {
    size_t index;
    ValuePointer ptr;
  };
  std::vector<Resolve> resolves;
  for (size_t i = 0; i < n; ++i) {
    if (!(pointer_hits[i] != 0 || reqs[i].is_pointer)) continue;
    if (!(*statuses)[i].ok()) continue;
    ValuePointer ptr;
    if (vlog_ == nullptr || !DecodeValuePointer(Slice((*values)[i]), &ptr)) {
      (*statuses)[i] = Status::Corruption("unresolvable value-log pointer");
      continue;
    }
    resolves.push_back(Resolve{i, ptr});
  }
  if (!resolves.empty()) {
    std::sort(resolves.begin(), resolves.end(),
              [](const Resolve& a, const Resolve& b) {
                if (a.ptr.segment != b.ptr.segment) {
                  return a.ptr.segment < b.ptr.segment;
                }
                return a.ptr.offset < b.ptr.offset;
              });
    for (size_t run = 0; run < resolves.size();) {
      size_t end = run + 1;
      uint64_t span_end = resolves[run].ptr.offset + resolves[run].ptr.length;
      while (end < resolves.size() &&
             resolves[end].ptr.segment == resolves[run].ptr.segment) {
        span_end =
            std::max(span_end, resolves[end].ptr.offset + resolves[end].ptr.length);
        ++end;
      }
      vlog_->Hint(resolves[run].ptr, span_end - resolves[run].ptr.offset);
      run = end;
    }
    for (const Resolve& r : resolves) {
      (*statuses)[r.index] = vlog_->ReadValue(r.ptr, &(*values)[r.index]);
    }
  }

  {
    MutexLock lock(&mu_);
    for (const Status& s : *statuses) {
      if (s.ok()) ++stats_.get_hits;
    }
    mem->Unref();
    for (MemTable* imm : imms) imm->Unref();
  }
  multiget_latency_rec_.Record(clock_->NowMicros() - op_start_micros);
  return batch_status;
}

Iterator* DBImpl::NewInternalIterator(const ReadOptions& options,
                                      SequenceNumber* latest_snapshot) {
  MutexLock lock(&mu_);
  *latest_snapshot = versions_->LastSequence();

  std::vector<Iterator*> iters;
  iters.push_back(mem_->NewIterator());
  mem_->Ref();
  MemTable* mem = mem_;
  std::vector<MemTable*> imms;  // newest first
  for (auto it = imm_queue_.rbegin(); it != imm_queue_.rend(); ++it) {
    iters.push_back((*it)->NewIterator());
    (*it)->Ref();
    imms.push_back(*it);
  }
  auto current = versions_->current();
  current->AddIterators(options, table_cache_.get(), &iters);

  Iterator* merged = NewMergingIterator(&internal_comparator_, iters.data(),
                                        static_cast<int>(iters.size()));
  merged->RegisterCleanup([mem, imms = std::move(imms), current]() mutable {
    mem->Unref();
    for (MemTable* imm : imms) imm->Unref();
    current.reset();
  });
  return merged;
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  SequenceNumber latest_snapshot;
  Iterator* internal_iter = NewInternalIterator(options, &latest_snapshot);
  const SequenceNumber sequence =
      options.snapshot_sequence != 0 ? options.snapshot_sequence : latest_snapshot;
  return NewDBIterator(internal_comparator_.user_comparator(), internal_iter,
                       sequence, vlog_.get());
}

const Snapshot* DBImpl::GetSnapshot() {
  MutexLock lock(&mu_);
  auto* snap = new SnapshotImpl(versions_->LastSequence());
  snapshots_.push_back(snap);
  return snap;
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  MutexLock lock(&mu_);
  const auto* impl = static_cast<const SnapshotImpl*>(snapshot);
  snapshots_.remove(impl);
  delete impl;
}

DbStats DBImpl::GetStats() const {
  MutexLock lock(&mu_);
  DbStats stats = stats_;
  stats.read_only_mode = bg_error_.ok() ? 0 : 1;
  stats.flush_queue_depth = imm_queue_.size();
  stats.compaction_queue_depth =
      (compaction_scheduled_ ? 1 : 0) + (compaction_waiting_ ? 1 : 0);
  stats.shards = 1;
  // Store-wide when the limiter is shared across a ShardedDB's sub-LSMs
  // (every shard reports the same value; the aggregate takes the max).
  stats.concurrent_compactions = limiter_->executing();
  stats.peak_concurrent_compactions = limiter_->peak_executing();
  // Store-wide when the rate limiter is shared (aggregate takes the max,
  // like the other shared gauges/counters above).
  if (rate_limiter_ != nullptr) {
    stats.rate_limited_bytes_flush =
        rate_limiter_->bytes_through(RateLimiter::Priority::kHigh);
    stats.rate_limited_bytes_compaction =
        rate_limiter_->bytes_through(RateLimiter::Priority::kLow);
    stats.rate_limiter_wait_micros = rate_limiter_->wait_micros();
  }
  write_latency_rec_.MergeTo(&stats.write_latency);
  get_latency_rec_.MergeTo(&stats.get_latency);
  multiget_latency_rec_.MergeTo(&stats.multiget_latency);
  const auto relaxed = std::memory_order_relaxed;
  stats.bloom_checked = read_counters_.bloom_checked.load(relaxed);
  stats.bloom_useful = read_counters_.bloom_useful.load(relaxed);
  stats.block_cache_hits = read_counters_.block_cache_hits.load(relaxed);
  stats.block_cache_misses = read_counters_.block_cache_misses.load(relaxed);
  stats.readahead_bytes = read_counters_.readahead_bytes.load(relaxed);
  stats.multiget_coalesced_reads = read_counters_.coalesced_reads.load(relaxed);
  if (vlog_ != nullptr) {
    const ValueLogCounters c = vlog_->Counters();
    stats.value_log_bytes_written = c.bytes_written;
    stats.value_log_gc_rewritten_bytes = c.gc_rewritten_bytes;
    stats.value_log_segments_deleted = c.segments_deleted;
    stats.value_log_segments = c.segments;
    stats.value_log_live_bytes = c.live_bytes;
    stats.value_log_garbage_bytes = c.garbage_bytes;
  }
  uint64_t mem_bytes = mem_ != nullptr ? mem_->ApproximateMemoryUsage() : 0;
  for (const MemTable* imm : imm_queue_) {
    mem_bytes += imm->ApproximateMemoryUsage();
  }
  stats.memtable_bytes = mem_bytes;
  if (block_cache_ != nullptr) {
    stats.tenant_cache_bytes = options_.tenant_id != 0
                                   ? block_cache_->OwnerCharge(options_.tenant_id)
                                   : block_cache_->TotalCharge();
  }
  if (options_.write_memory_pool != nullptr) {
    stats.write_pool_usage_bytes = options_.write_memory_pool->TotalUsage();
    stats.write_pool_budget_bytes = options_.write_memory_pool->Budget();
  }
  return stats;
}

uint64_t DBImpl::ApproximateMemoryUsage() const {
  MutexLock lock(&mu_);
  uint64_t total = mem_ != nullptr ? mem_->ApproximateMemoryUsage() : 0;
  for (const MemTable* imm : imm_queue_) total += imm->ApproximateMemoryUsage();
  return total;
}

// --- static entry points --------------------------------------------------------

Status DB::Open(const Options& options, const std::string& name,
                std::unique_ptr<DB>* dbptr) {
  dbptr->reset();
  vfs::Vfs& fs = options.vfs != nullptr ? *options.vfs : vfs::PosixVfs();
  const int requested = std::max(1, options.num_shards);

  // The SHARDS marker is the layout arbiter: a sharded store must be
  // reopened with its recorded shard count, an unsharded store (plain
  // CURRENT at the root, possibly predating sharding) only with
  // num_shards=1. Mismatches fail instead of silently mis-routing keys.
  int on_disk = 0;
  const Status marker = ReadShardsMarker(fs, name, &on_disk);
  if (marker.ok()) {
    if (on_disk != requested) {
      return Status::InvalidArgument(
          name + " was created with num_shards=" + std::to_string(on_disk) +
          "; reopening with num_shards=" + std::to_string(requested) +
          " is not supported");
    }
    return ShardedDB::Open(options, name, dbptr);
  }
  if (!marker.IsNotFound()) return marker;
  if (requested > 1) {
    if (fs.FileExists(CurrentFileName(name))) {
      return Status::InvalidArgument(
          name + " was created unsharded (num_shards=1); reopening with "
          "num_shards=" + std::to_string(requested) + " is not supported");
    }
    return ShardedDB::Open(options, name, dbptr);
  }

  auto impl = std::make_unique<DBImpl>(options, name);
  LSMIO_RETURN_IF_ERROR(impl->Initialize());
  *dbptr = std::move(impl);
  return Status::OK();
}

Status DB::Destroy(const Options& options, const std::string& name) {
  vfs::Vfs& fs = options.vfs != nullptr ? *options.vfs : vfs::PosixVfs();
  int on_disk = 0;
  if (ReadShardsMarker(fs, name, &on_disk).ok()) {
    return ShardedDB::DestroyShards(options, name, on_disk);
  }
  std::vector<std::string> children;
  Status s = fs.ListDir(name, &children);
  if (!s.ok()) return Status::OK();  // nothing to destroy
  // Keep removing past individual failures, but report the first one:
  // a Destroy that leaves files behind and says OK would let a later
  // Open resurrect a half-deleted store.
  Status result = Status::OK();
  for (const auto& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) || child == "CURRENT.tmp") {
      Status rm = fs.RemoveFile(name + "/" + child);
      if (!rm.ok() && !rm.IsNotFound() && result.ok()) result = rm;
    }
  }
  return result;
}

}  // namespace lsmio::lsm
