// Engine options. The paper (§3.1.1) customizes RocksDB by disabling the
// write-ahead log, compression, caching and compaction, and exposing
// sync/async writes, mmap, buffer size and block size — all of which are
// first-class knobs here.
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.h"

namespace lsmio::vfs {
class Vfs;
}

namespace lsmio::lsm {

class Comparator;
class FilterPolicy;
class Cache;
class WriteMemoryPool;

enum class CompressionType : uint8_t {
  kNone = 0,
  kLzLite = 1,  // built-in byte-oriented LZ (Snappy-class, self-contained)
};

/// DB-wide options, fixed at Open().
struct Options {
  /// File system the DB lives on. If null, the process PosixVfs is used.
  vfs::Vfs* vfs = nullptr;

  /// Comparator for user keys; defaults to bytewise. Must outlive the DB and
  /// be identical across re-opens.
  const Comparator* comparator = nullptr;

  /// Create the database if missing.
  bool create_if_missing = true;
  /// Fail if the database already exists.
  bool error_if_exists = false;
  /// Open without mutating the database: no fresh WAL, no manifest
  /// rewrite, no obsolete-file cleanup. Required when several processes
  /// (or ranks) open the same store concurrently for reading; all write
  /// operations fail with InvalidArgument.
  bool read_only = false;
  /// Aggressive checksum verification on every read path.
  bool paranoid_checks = false;

  // --- paper §3.1.1 knobs ---------------------------------------------------

  /// Disable the write-ahead log (paper: checkpoint data does not need it;
  /// the caller issues an explicit write barrier instead).
  bool disable_wal = false;

  /// Block compression for SSTables.
  CompressionType compression = CompressionType::kNone;

  /// Disable the block cache entirely.
  bool disable_cache = false;

  /// Disable background compaction: memtable flushes accumulate as L0 files
  /// and reads merge across them (the paper's checkpoint configuration).
  bool disable_compaction = false;

  /// Synchronous writes: every write reaches stable storage before the call
  /// returns. Asynchronous (false) lets the OS/file system buffer.
  bool sync_writes = false;

  /// Memory-map SSTables for reads.
  bool use_mmap = false;

  /// MemTable size that triggers a flush to an SSTable ("buffer size";
  /// the paper configures 32 MB to match ADIOS2's BufferChunkSize).
  uint64_t write_buffer_size = 32 * MiB;

  /// Total memtables held in memory (one active + up to N-1 immutable ones
  /// queued for flush). Values > 2 let writers roll to a fresh memtable
  /// instead of stalling while earlier flushes are still in flight.
  /// Minimum effective value is 2.
  int max_write_buffer_number = 2;

  /// Target uncompressed size of an SSTable data block.
  uint64_t block_size = 4 * KiB;

  // --- engine tuning --------------------------------------------------------

  /// Keys between restart points within a block.
  int block_restart_interval = 16;

  /// Max L0 files before a flush stalls writers (only when compaction is
  /// enabled; with compaction disabled there is no limit, as in the paper).
  int l0_stop_writes_trigger = 36;

  /// Soft L0 trigger for graduated backpressure: once L0 holds this many
  /// files (or the immutable-memtable queue is one slot from full) the
  /// group-commit leader paces writes with per-batch delays that ramp up
  /// toward the hard l0_stop_writes_trigger, instead of running full speed
  /// into the stop cliff. 0 disables pacing (hard stalls only). Ignored
  /// when disable_compaction is set: in paper mode L0 is unbounded and
  /// writes are never delayed.
  int l0_slowdown_writes_trigger = 20;

  /// Admitted write-byte rate at the moment the slowdown trigger fires;
  /// deeper L0 pressure scales the rate further down (to 1/32 at the stop
  /// trigger). Chosen per device; the default matches a mid-range NVMe
  /// device's sustained compaction budget.
  uint64_t delayed_write_rate = 16 * MiB;

  /// Budget on background-I/O bytes per second (flush + compaction table
  /// writes), shared across all shards of a store. Flushes are charged at
  /// high priority and preempt compaction writes, so background I/O stops
  /// bursting against foreground WAL fsyncs. 0 (default) = unlimited.
  uint64_t bytes_per_sec = 0;

  /// L0 file count that triggers a compaction into L1.
  int l0_compaction_trigger = 4;

  /// Max bytes in level L = max_bytes_for_level_base * 10^(L-1).
  uint64_t max_bytes_for_level_base = 64 * MiB;

  /// Target file size for compaction outputs.
  uint64_t target_file_size = 8 * MiB;

  /// Bloom filter bits per key for SSTables (0 disables filters).
  int bloom_bits_per_key = 10;

  /// Capacity of the block cache (ignored when disable_cache).
  uint64_t block_cache_capacity = 8 * MiB;

  /// Keep every open table's index and filter blocks pinned (cache handle
  /// retained for the table's lifetime) instead of re-fetching them through
  /// the block cache on each probe. Off = per-probe cache round trips, kept
  /// as an ablation knob. Ignored (always pinned) when disable_cache.
  bool pin_index_and_filter = true;

  /// Readahead window for compaction input reads: each input table iterator
  /// hints this many bytes ahead to the VFS (posix_fadvise + prefetch
  /// buffer on PosixVfs). 0 disables.
  uint64_t compaction_readahead_bytes = 1 * MiB;

  /// Number of background threads shared by flush and compaction work.
  /// Flushes and compactions are scheduled independently, so with >= 2
  /// threads a long compaction never delays a memtable flush. The paper
  /// configures a single *flushing* thread (§3.1.2); at most one flush
  /// runs at a time regardless of this value.
  int background_threads = 1;

  /// Group commit: concurrent DB::Write callers queue up, the front writer
  /// merges the pending batches and performs one WAL append + sync for the
  /// whole group with the DB mutex released. Disable to fall back to the
  /// fully serialized write path (kept for ablation benchmarks).
  bool enable_group_commit = true;

  // --- sharding -------------------------------------------------------------

  /// Number of hash shards the keyspace is partitioned into. 1 (default)
  /// keeps a single LSM at the store path with the on-disk format of
  /// previous releases. N > 1 opens a ShardedDB: N sub-LSMs in shard-NNN
  /// subdirectories, each with its own memtable, WAL and manifest, so
  /// writes group-commit per shard (N concurrent WAL fsyncs) and flushes/
  /// compactions from different shards run concurrently on one shared
  /// background pool. The shard count is fixed at store creation and
  /// recorded in a SHARDS marker file; reopening with a different value
  /// fails with InvalidArgument.
  int num_shards = 1;

  /// Cap on compactions executing concurrently across all shards of a
  /// store (each shard runs at most one compaction at a time regardless,
  /// so a hot shard can never hold more than one slot — that is the
  /// fairness guarantee). 0 = auto: max(1, background_threads - 1),
  /// keeping one pool thread free for memtable flushes.
  int max_concurrent_compactions = 0;

  /// Overlap compaction I/O with merge compute (Pome-style pipeline): a
  /// producer thread reads, decodes and heap-merges input blocks into
  /// double-buffered entry batches while the consumer thread runs the
  /// drop logic and encodes/writes output tables, and each finished
  /// output's fsync overlaps the build of the next one.
  bool pipeline_compaction_io = true;

  // --- value log (WAL-time key/value separation) ----------------------------

  /// Values at least this many bytes are separated at group-commit time:
  /// the bytes go to an append-only blob segment (NNNNNN.blob) and the LSM
  /// stores only a (segment, offset, length) pointer, so flush and
  /// compaction move pointers instead of megabytes. 0 (default) disables
  /// separation and keeps the on-disk format byte-for-byte identical to
  /// previous releases. A store that already contains blob segments still
  /// resolves and garbage-collects them when reopened with 0.
  uint64_t value_log_threshold = 0;

  /// Soft cap on a blob segment's size: the active segment is rotated to a
  /// fresh file once it crosses this size (a single write group may
  /// overshoot). Smaller segments give finer-grained GC.
  uint64_t value_log_segment_size = 64 * MiB;

  /// A sealed segment whose garbage fraction (1 - live/total bytes) is at
  /// least this ratio becomes a GC candidate: compactions relocate its
  /// surviving values into the active segment, and the file is deleted once
  /// no live pointer and no in-flight reader references it. Needs
  /// background compaction; with disable_compaction, segments are only
  /// reclaimed when their live bytes naturally reach zero.
  double value_log_gc_garbage_ratio = 0.5;

  // --- global memory arbitration (multi-tenant; see DESIGN.md §15) ----------

  /// Shared block cache. When set (and !disable_cache) the DB uses this
  /// cache instead of allocating a private one of block_cache_capacity;
  /// inserts are charged to `tenant_id`. Must outlive the DB. Typically
  /// MemoryArbiter::shared_cache().
  Cache* block_cache = nullptr;

  /// Global write-memory pool. When set, write_buffer_size no longer
  /// triggers memtable switches: the DB attaches to the pool, reports its
  /// memtable residency, and flushes when the pool picks it as a victim
  /// (aggregate budget pressure, cold-first/largest-first) or when the
  /// active memtable hits the pool's per-attachment hard cap. Global
  /// pressure also feeds WriteController pacing. Must outlive the DB.
  /// Typically MemoryArbiter::write_pool().
  WriteMemoryPool* write_memory_pool = nullptr;

  /// Charge owner for this DB's cache inserts and pool attachments
  /// (0 = unowned/single-tenant). Assigned by MemoryArbiter::RegisterTenant.
  uint64_t tenant_id = 0;
};

/// Options for read operations.
struct ReadOptions {
  /// Verify block checksums on this read.
  bool verify_checksums = false;
  /// Cache blocks touched by this read.
  bool fill_cache = true;
  /// Read at this snapshot sequence number; 0 means "latest".
  uint64_t snapshot_sequence = 0;
  /// Sequential readahead window: table iterators hint this many bytes
  /// ahead of the current block to the VFS. 0 disables.
  uint64_t readahead_bytes = 0;
};

/// Options for write operations.
struct WriteOptions {
  /// Override Options::sync_writes for this write; when true the write (and
  /// its WAL record, if the WAL is enabled) is synced to stable storage.
  bool sync = false;
};

}  // namespace lsmio::lsm
