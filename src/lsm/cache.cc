#include "lsm/cache.h"

#include <cassert>
#include <cstring>
#include <unordered_map>

#include "common/hash.h"
#include "common/synchronization.h"

namespace lsmio::lsm {
namespace {

// An entry is pinned (refs > 1 or no longer in the table) or evictable.
struct LRUEntry {
  std::string key;
  void* value = nullptr;
  size_t charge = 0;
  std::function<void(const Slice&, void*)> deleter;
  uint64_t owner = 0;    // charge owner (tenant id); 0 = unowned
  uint32_t refs = 0;     // includes the cache's own reference while in table
  bool in_cache = false;
  LRUEntry* next = nullptr;
  LRUEntry* prev = nullptr;
};

class LRUShard {
 public:
  LRUShard() {
    lru_.next = &lru_;
    lru_.prev = &lru_;
  }

  ~LRUShard() {
    // All handles must have been released by clients.
    for (auto& [key, e] : table_) {
      assert(e->in_cache && e->refs == 1);
      e->in_cache = false;
      Remove(e);
      Unref(e);
    }
  }

  void SetCapacity(size_t capacity) {
    MutexLock lock(&mu_);
    capacity_ = capacity;
  }

  Cache::Handle* Insert(const Slice& key, void* value, size_t charge,
                        std::function<void(const Slice&, void*)> deleter,
                        uint64_t owner) {
    MutexLock lock(&mu_);
    auto* e = new LRUEntry;
    e->key.assign(key.data(), key.size());
    e->value = value;
    e->charge = charge;
    e->deleter = std::move(deleter);
    e->owner = owner;
    e->refs = 2;  // one for the cache, one for the returned handle
    e->in_cache = true;

    auto it = table_.find(e->key);
    if (it != table_.end()) {
      RemoveFromTable(it->second, /*capacity_eviction=*/false);
    }
    table_[e->key] = e;
    Append(&lru_, e);
    usage_ += charge;
    if (owner != 0) {
      OwnerCounts& oc = owners_[owner];
      oc.charge += charge;
      ++oc.inserts;
    }
    EvictIfNeeded();
    return reinterpret_cast<Cache::Handle*>(e);
  }

  Cache::Handle* Lookup(const Slice& key) {
    MutexLock lock(&mu_);
    auto it = table_.find(std::string(key.data(), key.size()));
    if (it == table_.end()) return nullptr;
    LRUEntry* e = it->second;
    ++e->refs;
    // Move to MRU position.
    Remove(e);
    Append(&lru_, e);
    return reinterpret_cast<Cache::Handle*>(e);
  }

  void Release(Cache::Handle* handle) {
    MutexLock lock(&mu_);
    Unref(reinterpret_cast<LRUEntry*>(handle));
  }

  void Erase(const Slice& key) {
    MutexLock lock(&mu_);
    auto it = table_.find(std::string(key.data(), key.size()));
    if (it != table_.end()) RemoveFromTable(it->second, false);
  }

  size_t Usage() {
    MutexLock lock(&mu_);
    return usage_;
  }

  size_t OwnerUsage(uint64_t owner) {
    MutexLock lock(&mu_);
    auto it = owners_.find(owner);
    return it == owners_.end() ? 0 : it->second.charge;
  }

  void AccumulateOwnerStats(uint64_t owner, CacheOwnerStats* out) {
    MutexLock lock(&mu_);
    auto it = owners_.find(owner);
    if (it == owners_.end()) return;
    out->charge += it->second.charge;
    out->inserts += it->second.inserts;
    out->evictions += it->second.evictions;
    out->evicted_bytes += it->second.evicted_bytes;
  }

  void PurgeOwner(uint64_t owner) {
    MutexLock lock(&mu_);
    // Unpinned entries unlink immediately; pinned ones stay charged until
    // their holders release them (the owner record persists meanwhile).
    for (LRUEntry* e = lru_.next; e != &lru_;) {
      LRUEntry* next = e->next;
      if (e->owner == owner && e->refs == 1) {
        RemoveFromTable(e, /*capacity_eviction=*/false);
      }
      e = next;
    }
    auto it = owners_.find(owner);
    if (it != owners_.end() && it->second.charge == 0) owners_.erase(it);
  }

 private:
  struct OwnerCounts {
    size_t charge = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t evicted_bytes = 0;
  };

  // Unlinks e from the LRU list.
  static void Remove(LRUEntry* e) {
    e->next->prev = e->prev;
    e->prev->next = e->next;
  }

  // Links e as the newest entry before `list`.
  static void Append(LRUEntry* list, LRUEntry* e) {
    e->next = list;
    e->prev = list->prev;
    e->prev->next = e;
    e->next->prev = e;
  }

  void Unref(LRUEntry* e) REQUIRES(mu_) {
    assert(e->refs > 0);
    if (--e->refs == 0) {
      // Only entries already removed from the table (and thus unlinked from
      // the LRU list) can reach zero refs.
      assert(!e->in_cache);
      if (e->deleter) e->deleter(Slice(e->key), e->value);
      delete e;
    }
  }

  // Drops the cache's reference and unlinks from the LRU list; the entry is
  // freed once the last client handle is released. The LRU list therefore
  // only ever contains in-table entries.
  void RemoveFromTable(LRUEntry* e, bool capacity_eviction) REQUIRES(mu_) {
    assert(e->in_cache);
    table_.erase(e->key);
    e->in_cache = false;
    Remove(e);
    usage_ -= e->charge;
    if (e->owner != 0) {
      auto it = owners_.find(e->owner);
      if (it != owners_.end()) {
        assert(it->second.charge >= e->charge);
        it->second.charge -= e->charge;
        if (capacity_eviction) {
          ++it->second.evictions;
          it->second.evicted_bytes += e->charge;
        }
      }
    }
    Unref(e);
  }

  void EvictIfNeeded() REQUIRES(mu_) {
    while (usage_ > capacity_ && lru_.next != &lru_) {
      // Evict from the LRU end, skipping entries pinned by clients.
      LRUEntry* victim = nullptr;
      for (LRUEntry* e = lru_.next; e != &lru_; e = e->next) {
        if (e->refs == 1) {  // only the cache holds it
          victim = e;
          break;
        }
      }
      if (victim == nullptr) break;  // everything pinned
      RemoveFromTable(victim, /*capacity_eviction=*/true);
    }
  }

  Mutex mu_;
  size_t capacity_ GUARDED_BY(mu_) = 0;
  size_t usage_ GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, LRUEntry*> table_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, OwnerCounts> owners_ GUARDED_BY(mu_);
  /// Dummy head; lru_.next is oldest, lru_.prev is newest. The list nodes
  /// hang off table_ entries, so the whole structure is guarded by mu_.
  LRUEntry lru_ GUARDED_BY(mu_);
};

class ShardedLRUCache final : public Cache {
 public:
  explicit ShardedLRUCache(size_t capacity) {
    const size_t per_shard = (capacity + kNumShards - 1) / kNumShards;
    for (auto& shard : shards_) shard.SetCapacity(per_shard);
  }

  Handle* Insert(const Slice& key, void* value, size_t charge,
                 std::function<void(const Slice&, void*)> deleter,
                 uint64_t owner) override {
    return shards_[ShardOf(key)].Insert(key, value, charge, std::move(deleter),
                                        owner);
  }

  Handle* Lookup(const Slice& key) override {
    return shards_[ShardOf(key)].Lookup(key);
  }

  void Release(Handle* handle) override {
    auto* e = reinterpret_cast<LRUEntry*>(handle);
    shards_[ShardOf(Slice(e->key))].Release(handle);
  }

  void* Value(Handle* handle) override {
    return reinterpret_cast<LRUEntry*>(handle)->value;
  }

  void Erase(const Slice& key) override { shards_[ShardOf(key)].Erase(key); }

  uint64_t NewId() override {
    MutexLock lock(&id_mu_);
    return ++last_id_;
  }

  size_t TotalCharge() const override {
    size_t total = 0;
    for (auto& shard : shards_) {
      total += const_cast<LRUShard&>(shard).Usage();
    }
    return total;
  }

  size_t OwnerCharge(uint64_t owner) const override {
    size_t total = 0;
    for (auto& shard : shards_) {
      total += const_cast<LRUShard&>(shard).OwnerUsage(owner);
    }
    return total;
  }

  CacheOwnerStats OwnerStats(uint64_t owner) const override {
    CacheOwnerStats stats;
    for (auto& shard : shards_) {
      const_cast<LRUShard&>(shard).AccumulateOwnerStats(owner, &stats);
    }
    return stats;
  }

  void PurgeOwner(uint64_t owner) override {
    for (auto& shard : shards_) shard.PurgeOwner(owner);
  }

 private:
  static constexpr int kNumShards = 16;

  static size_t ShardOf(const Slice& key) {
    return Hash32(key, 0) % kNumShards;
  }

  LRUShard shards_[kNumShards];  // unguarded: each shard locks itself
  Mutex id_mu_;
  uint64_t last_id_ GUARDED_BY(id_mu_) = 0;
};

}  // namespace

std::unique_ptr<Cache> NewLRUCache(size_t capacity) {
  return std::make_unique<ShardedLRUCache>(capacity);
}

}  // namespace lsmio::lsm
