// WriteBatch: an ordered group of updates applied atomically. Also the unit
// of WAL logging — the batch's serialized form IS the log record. The paper
// (§3.1.2) uses batching as the buffering/aggregation mechanism for the
// LevelDB-style backend that cannot disable its WAL.
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/dbformat.h"

namespace lsmio::lsm {

class MemTable;

class WriteBatch {
 public:
  WriteBatch();

  /// Stores key->value.
  void Put(const Slice& key, const Slice& value);
  /// Stores key->(encoded ValuePointer): the value bytes live in a blob
  /// segment and `pointer` is their location (see value_log.h). Emitted by
  /// the write path after WAL-time separation, never by user code.
  void PutPointer(const Slice& key, const Slice& pointer);
  /// Removes key (writes a tombstone).
  void Delete(const Slice& key);
  /// Copies all ops of `source` onto the end of this batch.
  void Append(const WriteBatch& source);
  /// Clears all ops.
  void Clear();

  /// Number of ops.
  [[nodiscard]] int Count() const;
  /// Serialized size in bytes (== WAL record payload size).
  [[nodiscard]] size_t ApproximateSize() const { return rep_.size(); }

  /// Applies every op to the memtable with sequence numbers starting at the
  /// batch's sequence.
  Status InsertInto(MemTable* mem) const;

  /// Visitor over the ops (used by recovery and tests).
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    /// Pointer entry (kValuePointer). Handlers that do not distinguish
    /// separated values can rely on the default, which forwards to Put.
    virtual void PutPointer(const Slice& key, const Slice& pointer) {
      Put(key, pointer);
    }
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

  // --- internal plumbing (DB + WAL) ----------------------------------------

  [[nodiscard]] SequenceNumber Sequence() const;
  void SetSequence(SequenceNumber seq);
  [[nodiscard]] Slice Contents() const { return Slice(rep_); }
  static Status SetContents(WriteBatch* batch, const Slice& contents);

 private:
  void SetCount(int n);

  // rep_: fixed64 sequence | fixed32 count | records...
  // record: kValue varstring key varstring value
  //       | kValuePointer varstring key varstring encoded_pointer
  //       | kDeletion varstring key
  std::string rep_;
};

}  // namespace lsmio::lsm
