// Read-path counters shared by DBImpl, TableCache and Table. Tables run
// concurrently on many reader threads, so the counters are relaxed atomics;
// DBImpl::GetStats folds them into the DbStats snapshot.
#pragma once

#include <atomic>
#include <cstdint>

namespace lsmio::lsm {

struct ReadCounters {
  /// Bloom-filter probes, and how many proved the key absent (saving a
  /// data-block fetch).
  std::atomic<uint64_t> bloom_checked{0};
  std::atomic<uint64_t> bloom_useful{0};
  /// Block-cache outcome per block fetch (data, index and filter blocks).
  std::atomic<uint64_t> block_cache_hits{0};
  std::atomic<uint64_t> block_cache_misses{0};
  /// Bytes hinted ahead to the VFS by table iterators.
  std::atomic<uint64_t> readahead_bytes{0};
  /// Physical reads saved by MultiGet coalescing adjacent data blocks into
  /// one VFS read.
  std::atomic<uint64_t> coalesced_reads{0};
};

}  // namespace lsmio::lsm
