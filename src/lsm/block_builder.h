// Builds an SSTable data/index block: prefix-compressed keys with restart
// points every block_restart_interval entries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "lsm/options.h"

namespace lsmio::lsm {

class BlockBuilder {
 public:
  explicit BlockBuilder(const Options* options);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  /// Adds key/value; keys must arrive in strictly increasing order.
  void Add(const Slice& key, const Slice& value);

  /// Appends the restart array + count and returns the finished block
  /// contents (valid until Reset).
  Slice Finish();

  void Reset();

  /// Size estimate of the block being built (including restart array).
  [[nodiscard]] size_t CurrentSizeEstimate() const;

  [[nodiscard]] bool empty() const noexcept { return buffer_.empty(); }

 private:
  const Options* options_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  bool finished_ = false;
  std::string last_key_;
};

}  // namespace lsmio::lsm
