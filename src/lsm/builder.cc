#include "lsm/builder.h"

#include <algorithm>
#include <set>

#include "lsm/dbformat.h"
#include "lsm/filter_policy.h"
#include "lsm/iterator.h"
#include "lsm/table_builder.h"
#include "lsm/value_log.h"

namespace lsmio::lsm {

Status BuildTable(const std::string& dbname, vfs::Vfs& fs, const Options& options,
                  const InternalKeyComparator* icmp,
                  const FilterPolicy* filter_policy, Iterator* iter,
                  FileMetaData* meta, RateLimiter* rate_limiter) {
  meta->file_size = 0;
  iter->SeekToFirst();

  const std::string fname = TableFileName(dbname, meta->number);
  if (!iter->Valid()) return iter->status();

  std::unique_ptr<vfs::WritableFile> file;
  LSMIO_RETURN_IF_ERROR(fs.NewWritableFile(fname, {}, &file));
  file = MaybeRateLimit(std::move(file), rate_limiter,
                        RateLimiter::Priority::kHigh);

  TableBuilder builder(options, icmp, filter_policy, file.get());
  meta->smallest = iter->key().ToString();
  Slice key;
  std::set<uint64_t> blob_refs;
  for (; iter->Valid(); iter->Next()) {
    key = iter->key();
    builder.Add(key, iter->value());
    // Track which blob segments this table's pointer entries reference, so
    // value-log GC can find the tables that pin a mostly-garbage segment.
    ParsedInternalKey parsed;
    if (ParseInternalKey(key, &parsed) &&
        parsed.type == ValueType::kValuePointer) {
      ValuePointer ptr;
      if (DecodeValuePointer(iter->value(), &ptr)) blob_refs.insert(ptr.segment);
    }
  }
  if (!key.empty()) meta->largest = key.ToString();
  meta->blob_refs.assign(blob_refs.begin(), blob_refs.end());

  Status s = builder.Finish();
  if (s.ok()) {
    meta->file_size = builder.FileSize();
    // Always fsync, regardless of Options::sync_writes: once the table is
    // installed in the manifest the WAL that covered its entries gets
    // deleted, so an unsynced table would silently lose acked writes on
    // power failure.
    s = file->Sync();
  }
  if (s.ok()) s = file->Close();
  if (s.ok()) s = iter->status();

  if (!s.ok() || meta->file_size == 0) {
    // Failure path: the table is being discarded, so close/remove errors
    // cannot change the outcome — `s` already carries the root cause.
    file->Close().IgnoreError();
    fs.RemoveFile(fname).IgnoreError();
    if (s.ok()) s = Status::IoError("built table is empty");
  }
  return s;
}

}  // namespace lsmio::lsm
