// MemTable: the in-RAM C0 tree (paper §2.2) — a skip list of encoded
// internal-key/value records in arena memory. Reference-counted because an
// immutable memtable stays readable while a background thread flushes it.
//
// External-synchronization contract (DESIGN.md §9): a MemTable has no mutex.
// Add() must be externally serialized (in the engine: only the group-commit
// leader writes, see DBImpl). Get()/NewIterator() may run concurrently with
// one writer because the skip list publishes nodes with release/acquire
// ordering; Ref/Unref are atomic so readers can pin a table after dropping
// the DB mutex.
#pragma once

#include <atomic>
#include <string>

#include "lsm/arena.h"
#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/skiplist.h"

namespace lsmio::lsm {

class MemTable {
 public:
  explicit MemTable(const InternalKeyComparator& cmp);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  /// Approximate bytes used (drives the flush trigger / write_buffer_size).
  [[nodiscard]] size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  /// Adds an entry keyed (user_key, seq, type) with the given value.
  void Add(SequenceNumber seq, ValueType type, const Slice& user_key,
           const Slice& value);

  /// If a version of key is present: returns true and sets *value (kValue)
  /// or *s = NotFound (kDeletion). Returns false when the key is absent.
  /// A kValuePointer entry behaves like kValue but *value receives the
  /// encoded ValuePointer and *is_pointer (when non-null) is set; the
  /// caller resolves it through the store's ValueLog.
  bool Get(const LookupKey& key, std::string* value, Status* s,
           bool* is_pointer = nullptr);

  /// Iterator over internal keys (caller deletes; keeps a ref implicitly —
  /// caller must keep the memtable alive while iterating).
  Iterator* NewIterator();

  /// Number of entries added.
  [[nodiscard]] uint64_t num_entries() const { return entries_.load(std::memory_order_relaxed); }

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    int operator()(const char* a, const char* b) const;
  };

  using Table = SkipList<const char*, KeyComparator>;

  ~MemTable() = default;  // via Unref only

  KeyComparator comparator_;
  std::atomic<int> refs_{0};
  std::atomic<uint64_t> entries_{0};
  Arena arena_;
  Table table_;
};

}  // namespace lsmio::lsm
