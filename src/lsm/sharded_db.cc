#include "lsm/sharded_db.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "lsm/comparator.h"
#include "lsm/merger.h"
#include "vfs/posix_vfs.h"

namespace lsmio::lsm {

namespace {

// Routing must be identical across every open of a store, so the hash
// seed is a fixed constant (and part of the on-disk contract, like the
// comparator).
constexpr uint64_t kShardHashSeed = 0x73686172644c534dULL;  // "shardLSM"

constexpr char kMarkerMagic[] = "lsmio-shards-v1";

Status SnapshotSequenceUnsupported() {
  return Status::InvalidArgument(
      "ReadOptions::snapshot_sequence is a per-shard sequence and cannot be "
      "used on a sharded store; use GetSnapshot instead");
}

}  // namespace

std::string ShardsMarkerFileName(const std::string& dbname) {
  return dbname + "/SHARDS";
}

std::string ShardDirName(const std::string& dbname, int shard) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%03d", shard);
  return dbname + "/" + buf;
}

Status ReadShardsMarker(vfs::Vfs& fs, const std::string& dbname,
                        int* num_shards) {
  std::string contents;
  const Status s = vfs::ReadFileToString(fs, ShardsMarkerFileName(dbname),
                                         &contents);
  if (s.IsNotFound()) return s;
  LSMIO_RETURN_IF_ERROR(s);
  char magic[32] = {};
  int n = 0;
  if (std::sscanf(contents.c_str(), "%31s %d", magic, &n) != 2 ||
      std::string(magic) != kMarkerMagic || n < 1) {
    return Status::Corruption("unparseable SHARDS marker: " + contents);
  }
  *num_shards = n;
  return Status::OK();
}

struct ShardedDB::ShardedSnapshot final : Snapshot {
  std::vector<const Snapshot*> per_shard;  // index = shard
};

ShardedDB::ShardedDB(const Options& options, const std::string& name)
    : options_(options),
      dbname_(name),
      user_comparator_(options.comparator != nullptr ? options.comparator
                                                     : BytewiseComparator()),
      limiter_(std::make_unique<CompactionLimiter>(
          EffectiveCompactionCap(options))),
      rate_limiter_(options.bytes_per_sec > 0
                        ? std::make_unique<RateLimiter>(options.bytes_per_sec)
                        : nullptr),
      bg_pool_(std::make_unique<ThreadPool>(
          std::max(1, options.background_threads))) {}

ShardedDB::~ShardedDB() {
  // Shards drain their background work in their destructors (the shared
  // pool and limiter outlive them, see member order); then stop the pool.
  shards_.clear();
  bg_pool_->Shutdown();
}

vfs::Vfs& ShardedDB::fs() const {
  return options_.vfs != nullptr ? *options_.vfs : vfs::PosixVfs();
}

size_t ShardedDB::ShardOf(const Slice& key) const {
  return static_cast<size_t>(Hash64(key.data(), key.size(), kShardHashSeed) %
                             shards_.size());
}

Status ShardedDB::Open(const Options& options, const std::string& name,
                       std::unique_ptr<DB>* dbptr) {
  const int n = options.num_shards;
  if (n < 2) {
    return Status::InvalidArgument("ShardedDB requires num_shards > 1");
  }
  vfs::Vfs& fs = options.vfs != nullptr ? *options.vfs : vfs::PosixVfs();

  int on_disk = 0;
  const Status marker = ReadShardsMarker(fs, name, &on_disk);
  if (marker.IsNotFound()) {
    if (options.read_only) {
      return Status::NotFound(name + " does not exist (read_only open)");
    }
    if (!options.create_if_missing) {
      return Status::InvalidArgument(
          name + " does not exist (create_if_missing=false)");
    }
    LSMIO_RETURN_IF_ERROR(fs.CreateDir(name));
    // WriteStringToFile syncs before close, so the marker (the commit
    // point of the sharded layout) survives a crash right after creation.
    LSMIO_RETURN_IF_ERROR(vfs::WriteStringToFile(
        fs, ShardsMarkerFileName(name),
        std::string(kMarkerMagic) + " " + std::to_string(n) + "\n"));
  } else {
    LSMIO_RETURN_IF_ERROR(marker);
    if (on_disk != n) {
      return Status::InvalidArgument(
          name + " was created with num_shards=" + std::to_string(on_disk) +
          "; reopening with num_shards=" + std::to_string(n) +
          " is not supported");
    }
    if (options.error_if_exists) {
      return Status::InvalidArgument(name + " exists (error_if_exists=true)");
    }
  }

  std::unique_ptr<ShardedDB> db(new ShardedDB(options, name));
  for (int shard = 0; shard < n; ++shard) {
    Options shard_options = options;
    shard_options.num_shards = 1;
    // The marker above already arbitrated existence for the whole store.
    shard_options.error_if_exists = false;
    shard_options.create_if_missing = !options.read_only;
    auto impl = std::make_unique<DBImpl>(shard_options,
                                         ShardDirName(name, shard),
                                         db->bg_pool_.get(),
                                         db->limiter_.get(),
                                         db->rate_limiter_.get());
    LSMIO_RETURN_IF_ERROR(impl->Initialize());
    db->shards_.push_back(std::move(impl));
  }
  *dbptr = std::move(db);
  return Status::OK();
}

Status ShardedDB::DestroyShards(const Options& options, const std::string& name,
                                int num_shards) {
  vfs::Vfs& fs = options.vfs != nullptr ? *options.vfs : vfs::PosixVfs();
  for (int shard = 0; shard < num_shards; ++shard) {
    // Shard directories carry no SHARDS marker, so this takes the plain
    // single-LSM removal path.
    LSMIO_RETURN_IF_ERROR(DB::Destroy(options, ShardDirName(name, shard)));
  }
  // A marker that survives its shards would make the next Open look for
  // stores that no longer exist — surface the failure (NotFound is fine:
  // Destroy is idempotent).
  Status s = fs.RemoveFile(ShardsMarkerFileName(name));
  if (!s.ok() && !s.IsNotFound()) return s;
  return Status::OK();
}

// --- writes -------------------------------------------------------------------

Status ShardedDB::Put(const WriteOptions& options, const Slice& key,
                      const Slice& value) {
  return shards_[ShardOf(key)]->Put(options, key, value);
}

Status ShardedDB::Delete(const WriteOptions& options, const Slice& key) {
  return shards_[ShardOf(key)]->Delete(options, key);
}

Status ShardedDB::Write(const WriteOptions& options, WriteBatch* updates) {
  if (updates == nullptr) {
    return Status::InvalidArgument("null batch");
  }

  // Pass 1 (no copies): which shards does the batch touch? Single-shard
  // batches — the common case for checkpoint streams, and all Put/Delete
  // calls — forward the caller's batch untouched, preserving the exact
  // single-LSM code path including its sequence stamping.
  struct Router final : WriteBatch::Handler {
    const ShardedDB* db = nullptr;
    std::vector<uint8_t> touched;
    size_t distinct = 0;
    size_t only = 0;
    void Note(const Slice& key) {
      const size_t shard = db->ShardOf(key);
      if (touched[shard] == 0) {
        touched[shard] = 1;
        ++distinct;
        only = shard;
      }
    }
    void Put(const Slice& key, const Slice&) override { Note(key); }
    void Delete(const Slice& key) override { Note(key); }
  } router;
  router.db = this;
  router.touched.assign(shards_.size(), 0);
  LSMIO_RETURN_IF_ERROR(updates->Iterate(&router));
  if (router.distinct == 0) return Status::OK();
  if (router.distinct == 1) return shards_[router.only]->Write(options, updates);

  // Pass 2: split into per-shard sub-batches and apply each to its shard.
  // Atomicity holds within each shard (one WAL record per sub-batch), not
  // across shards — see the class comment.
  struct Splitter final : WriteBatch::Handler {
    const ShardedDB* db = nullptr;
    std::vector<WriteBatch>* sub = nullptr;
    void Put(const Slice& key, const Slice& value) override {
      (*sub)[db->ShardOf(key)].Put(key, value);
    }
    void Delete(const Slice& key) override {
      (*sub)[db->ShardOf(key)].Delete(key);
    }
  } splitter;
  std::vector<WriteBatch> sub(shards_.size());
  splitter.db = this;
  splitter.sub = &sub;
  LSMIO_RETURN_IF_ERROR(updates->Iterate(&splitter));

  Status first_error;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    if (sub[shard].Count() == 0) continue;
    const Status s = shards_[shard]->Write(options, &sub[shard]);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

// --- reads --------------------------------------------------------------------

Status ShardedDB::Get(const ReadOptions& options, const Slice& key,
                      std::string* value) {
  if (options.snapshot_sequence != 0) return SnapshotSequenceUnsupported();
  return shards_[ShardOf(key)]->Get(options, key, value);
}

Status ShardedDB::MultiGet(const ReadOptions& options,
                           std::span<const Slice> keys,
                           std::vector<std::string>* values,
                           std::vector<Status>* statuses) {
  const size_t n = keys.size();
  values->assign(n, {});
  statuses->assign(n, Status());
  if (n == 0) return Status::OK();
  if (options.snapshot_sequence != 0) return SnapshotSequenceUnsupported();

  // Partition the batch by shard, run each shard's sub-batch through its
  // coalescing MultiGet, and scatter the results back in caller order.
  std::vector<std::vector<size_t>> indices(shards_.size());
  for (size_t i = 0; i < n; ++i) indices[ShardOf(keys[i])].push_back(i);

  Status batch_status;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    const std::vector<size_t>& idx = indices[shard];
    if (idx.empty()) continue;
    std::vector<Slice> sub_keys;
    sub_keys.reserve(idx.size());
    for (const size_t i : idx) sub_keys.push_back(keys[i]);
    std::vector<std::string> sub_values;
    std::vector<Status> sub_statuses;
    const Status s = shards_[shard]->MultiGet(options, sub_keys, &sub_values,
                                              &sub_statuses);
    for (size_t j = 0; j < idx.size(); ++j) {
      (*values)[idx[j]] = std::move(sub_values[j]);
      (*statuses)[idx[j]] = std::move(sub_statuses[j]);
    }
    if (!s.ok() && batch_status.ok()) batch_status = s;
  }
  return batch_status;
}

Iterator* ShardedDB::NewIterator(const ReadOptions& options) {
  if (options.snapshot_sequence != 0) {
    return NewErrorIterator(SnapshotSequenceUnsupported());
  }
  // Each shard iterator already yields user keys at that shard's latest
  // sequence; the shards are key-disjoint, so a user-comparator merge is
  // a total order with no duplicates.
  std::vector<Iterator*> children;
  children.reserve(shards_.size());
  for (const auto& shard : shards_) {
    children.push_back(shard->NewIterator(options));
  }
  return NewMergingIterator(user_comparator_, children.data(),
                            static_cast<int>(children.size()));
}

const Snapshot* ShardedDB::GetSnapshot() {
  auto* snap = new ShardedSnapshot();
  snap->per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snap->per_shard.push_back(shard->GetSnapshot());
  }
  return snap;
}

void ShardedDB::ReleaseSnapshot(const Snapshot* snapshot) {
  const auto* snap = static_cast<const ShardedSnapshot*>(snapshot);
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    shards_[shard]->ReleaseSnapshot(snap->per_shard[shard]);
  }
  delete snap;
}

// --- maintenance --------------------------------------------------------------

Status ShardedDB::FlushMemTable(bool wait) {
  // Two passes so the shards flush concurrently: trigger every shard's
  // memtable switch first, then (optionally) wait on each.
  Status first_error;
  for (const auto& shard : shards_) {
    const Status s = shard->FlushMemTable(false);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  if (wait) {
    for (const auto& shard : shards_) {
      const Status s = shard->FlushMemTable(true);
      if (!s.ok() && first_error.ok()) first_error = s;
    }
  }
  return first_error;
}

Status ShardedDB::CompactRange(const Slice* begin, const Slice* end) {
  // One thread per shard, NOT the background pool: each shard's
  // CompactRange blocks until pool workers finish its compaction, so
  // running the waiters on the pool itself could deadlock. Shards whose
  // files don't overlap [begin, end] return immediately; the rest compact
  // concurrently, bounded by the store-wide limiter.
  std::vector<Status> results(shards_.size());
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    threads.emplace_back([this, shard, begin, end, &results] {
      results[shard] = shards_[shard]->CompactRange(begin, end);
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& s : results) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardedDB::HealthStatus() const {
  for (const auto& shard : shards_) {
    LSMIO_RETURN_IF_ERROR(shard->HealthStatus());
  }
  return Status::OK();
}

DbStats ShardedDB::GetStats() const {
  // Counters sum across shards; gauges take the max (for the compaction
  // concurrency gauges every shard reports the same store-wide limiter
  // values, so the max is exact).
  DbStats total;
  bool first = true;
  for (const auto& shard : shards_) {
    const DbStats s = shard->GetStats();
    if (first) {
      total = s;
      first = false;
      continue;
    }
    total.puts += s.puts;
    total.deletes += s.deletes;
    total.gets += s.gets;
    total.get_hits += s.get_hits;
    total.memtable_flushes += s.memtable_flushes;
    total.compactions += s.compactions;
    total.bytes_written += s.bytes_written;
    total.bytes_flushed += s.bytes_flushed;
    total.bytes_compacted += s.bytes_compacted;
    total.wal_bytes += s.wal_bytes;
    total.group_commit_batches += s.group_commit_batches;
    total.group_commit_writers += s.group_commit_writers;
    total.write_stall_micros += s.write_stall_micros;
    total.stall_memtable_micros += s.stall_memtable_micros;
    total.stall_l0_micros += s.stall_l0_micros;
    total.slowdown_delay_micros += s.slowdown_delay_micros;
    total.slowdown_writes += s.slowdown_writes;
    total.write_latency.Merge(s.write_latency);
    total.get_latency.Merge(s.get_latency);
    total.multiget_latency.Merge(s.multiget_latency);
    total.multiget_batches += s.multiget_batches;
    total.multiget_keys += s.multiget_keys;
    total.multiget_coalesced_reads += s.multiget_coalesced_reads;
    total.bloom_checked += s.bloom_checked;
    total.bloom_useful += s.bloom_useful;
    total.block_cache_hits += s.block_cache_hits;
    total.block_cache_misses += s.block_cache_misses;
    total.readahead_bytes += s.readahead_bytes;
    total.compaction_pipeline_batches += s.compaction_pipeline_batches;
    total.compaction_bytes_read += s.compaction_bytes_read;
    total.compaction_bytes_written += s.compaction_bytes_written;
    total.value_log_bytes_written += s.value_log_bytes_written;
    total.value_log_separated_batches += s.value_log_separated_batches;
    total.value_log_gc_rewritten_bytes += s.value_log_gc_rewritten_bytes;
    total.value_log_segments_deleted += s.value_log_segments_deleted;
    // Per-shard value logs are disjoint, so summing these gauges gives the
    // exact store-wide value (unlike the shared-limiter gauges below).
    total.value_log_segments += s.value_log_segments;
    total.value_log_live_bytes += s.value_log_live_bytes;
    total.value_log_garbage_bytes += s.value_log_garbage_bytes;
    total.flush_queue_depth = std::max(total.flush_queue_depth, s.flush_queue_depth);
    total.compaction_queue_depth =
        std::max(total.compaction_queue_depth, s.compaction_queue_depth);
    total.read_only_mode = std::max(total.read_only_mode, s.read_only_mode);
    total.concurrent_compactions =
        std::max(total.concurrent_compactions, s.concurrent_compactions);
    total.peak_concurrent_compactions = std::max(
        total.peak_concurrent_compactions, s.peak_concurrent_compactions);
    // One RateLimiter is shared by every shard, so each reports the same
    // store-wide totals: take the max, not the sum.
    total.rate_limited_bytes_flush =
        std::max(total.rate_limited_bytes_flush, s.rate_limited_bytes_flush);
    total.rate_limited_bytes_compaction =
        std::max(total.rate_limited_bytes_compaction,
                 s.rate_limited_bytes_compaction);
    total.rate_limiter_wait_micros =
        std::max(total.rate_limiter_wait_micros, s.rate_limiter_wait_micros);
    // Per-shard memtables are disjoint: sum. Shard attachments flush
    // independently: sum the forced-flush counter too.
    total.memtable_bytes += s.memtable_bytes;
    total.arbiter_forced_flushes += s.arbiter_forced_flushes;
    // With a shared cache every shard reports the tenant's store-wide
    // charge (max is exact); private per-shard caches are disjoint (sum).
    if (options_.block_cache != nullptr) {
      total.tenant_cache_bytes =
          std::max(total.tenant_cache_bytes, s.tenant_cache_bytes);
    } else {
      total.tenant_cache_bytes += s.tenant_cache_bytes;
    }
    // Process-wide pool gauges: identical in every shard, take the max.
    total.write_pool_usage_bytes =
        std::max(total.write_pool_usage_bytes, s.write_pool_usage_bytes);
    total.write_pool_budget_bytes =
        std::max(total.write_pool_budget_bytes, s.write_pool_budget_bytes);
  }
  total.shards = shards_.size();
  return total;
}

void ShardedDB::GetShardStats(std::vector<DbStats>* out) const {
  out->clear();
  out->reserve(shards_.size());
  for (const auto& shard : shards_) {
    out->push_back(shard->GetStats());
  }
}

uint64_t ShardedDB::ApproximateMemoryUsage() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->ApproximateMemoryUsage();
  }
  return total;
}

}  // namespace lsmio::lsm
