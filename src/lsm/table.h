// Immutable SSTable reader: footer → index/metaindex/filter blocks, block
// cache integration, point lookups via bloom filter, iteration via the
// two-level iterator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "vfs/vfs.h"

namespace lsmio::lsm {

class Cache;
class Comparator;
class FilterPolicy;

class Table {
 public:
  /// Opens a table over `file` (which must outlive the Table). `file_size`
  /// is the table's full size; `cache_id` namespaces block-cache keys and
  /// `block_cache` may be null. `filter_policy` may be null.
  static Status Open(const Options& options, const Comparator* comparator,
                     const FilterPolicy* filter_policy, Cache* block_cache,
                     uint64_t cache_id, vfs::RandomAccessFile* file,
                     uint64_t file_size, std::unique_ptr<Table>* table);

  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Iterator over the table's (internal key, value) entries.
  Iterator* NewIterator(const ReadOptions& options) const;

  /// Seeks `internal_key`; if an entry is found, calls
  /// handle_result(arg_key, arg_value). Checks the bloom filter first.
  Status InternalGet(const ReadOptions& options, const Slice& internal_key,
                     const std::function<void(const Slice&, const Slice&)>& handle_result) const;

  /// Approximate file offset where `internal_key` would live.
  uint64_t ApproximateOffsetOf(const Slice& internal_key) const;

 private:
  struct Rep;
  explicit Table(std::unique_ptr<Rep> rep);

  static Iterator* BlockReader(void* arg, const ReadOptions& options,
                               const Slice& index_value);
  Iterator* NewBlockIterator(const ReadOptions& options, const Slice& index_value) const;

  void ReadMeta(const class Footer& footer);
  void ReadFilter(const Slice& filter_handle_value);

  std::unique_ptr<Rep> rep_;
};

}  // namespace lsmio::lsm
