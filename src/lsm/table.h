// Immutable SSTable reader: footer → index/metaindex/filter blocks, block
// cache integration, point lookups via bloom filter, iteration via the
// two-level iterator, and batched lookups (MultiGet) that coalesce adjacent
// data-block reads into single VFS reads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/cache.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "vfs/vfs.h"

namespace lsmio::lsm {

class Block;
class BlockHandle;
class Comparator;
class FilterPolicy;
struct ReadCounters;

class Table {
 public:
  /// Opens a table over `file` (which must outlive the Table). `file_size`
  /// is the table's full size; `cache_id` namespaces block-cache keys and
  /// `block_cache` may be null. `filter_policy` may be null. `counters`
  /// (optional) receives read-path statistics and must outlive the Table.
  ///
  /// With Options::pin_index_and_filter (default) the index and filter
  /// blocks are loaded once and stay pinned — cache-handle retained for the
  /// table's lifetime when a block cache exists, table-owned otherwise.
  /// When unpinned, every probe does a cache round trip per block.
  static Status Open(const Options& options, const Comparator* comparator,
                     const FilterPolicy* filter_policy, Cache* block_cache,
                     uint64_t cache_id, vfs::RandomAccessFile* file,
                     uint64_t file_size, std::unique_ptr<Table>* table,
                     ReadCounters* counters = nullptr);

  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Iterator over the table's (internal key, value) entries. When
  /// options.readahead_bytes > 0, each block fetch hints the VFS that many
  /// bytes ahead (sequential-scan readahead for compaction/restore).
  Iterator* NewIterator(const ReadOptions& options) const;

  /// Seeks `internal_key`; if an entry is found, calls
  /// handle_result(arg_key, arg_value). Checks the bloom filter first.
  Status InternalGet(const ReadOptions& options, const Slice& internal_key,
                     const std::function<void(const Slice&, const Slice&)>& handle_result) const;

  /// Batched lookup: `internal_keys` must be sorted ascending by the
  /// table's comparator. Seeks the index once per key in order, probes the
  /// bloom filter first, groups keys by data block, and fetches runs of
  /// adjacent cache-missing blocks with one VFS read each. Calls
  /// handle_result(i, found_key, found_value) for every key whose block
  /// contains an entry >= the key (same contract as InternalGet).
  Status MultiGet(const ReadOptions& options,
                  std::span<const Slice> internal_keys,
                  const std::function<void(size_t, const Slice&, const Slice&)>&
                      handle_result) const;

  /// Approximate file offset where `internal_key` would live.
  uint64_t ApproximateOffsetOf(const Slice& internal_key) const;

 private:
  struct Rep;
  explicit Table(std::unique_ptr<Rep> rep);

  Iterator* NewBlockIterator(const ReadOptions& options, const Slice& index_value) const;

  /// Returns the index block; *cache_handle is non-null when the block was
  /// pinned in the cache for this call only (caller releases after use).
  Status IndexBlock(Block** block, Cache::Handle** cache_handle) const;
  /// False when the bloom filter proves `user_key` absent from the data
  /// block at `block_offset`.
  bool FilterKeyMayMatch(uint64_t block_offset, const Slice& user_key) const;
  /// Issues a VFS readahead hint covering `handle` when the current hinted
  /// window does not already reach past it.
  void MaybeReadahead(const ReadOptions& options, const BlockHandle& handle) const;

  Status ReadMeta(const class Footer& footer);

  std::unique_ptr<Rep> rep_;
};

}  // namespace lsmio::lsm
