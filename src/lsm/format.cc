#include "lsm/format.h"

#include "common/coding.h"
#include "common/crc32c.h"
#include "lsm/compression.h"

namespace lsmio::lsm {

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset_);
  PutVarint64(dst, size_);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (!GetVarint64(input, &offset_) || !GetVarint64(input, &size_)) {
    return Status::Corruption("bad block handle");
  }
  return Status::OK();
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  metaindex_handle_.EncodeTo(dst);
  index_handle_.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);  // pad
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber >> 32));
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  const uint32_t magic_lo = DecodeFixed32(magic_ptr);
  const uint32_t magic_hi = DecodeFixed32(magic_ptr + 4);
  const uint64_t magic =
      (static_cast<uint64_t>(magic_hi) << 32) | magic_lo;
  if (magic != kTableMagicNumber) {
    return Status::Corruption("not an lsmio table (bad magic number)");
  }
  LSMIO_RETURN_IF_ERROR(metaindex_handle_.DecodeFrom(input));
  LSMIO_RETURN_IF_ERROR(index_handle_.DecodeFrom(input));
  // Skip padding.
  const char* end = magic_ptr + 8;
  *input = Slice(end, static_cast<size_t>(input->data() + input->size() - end));
  return Status::OK();
}

Status DecodeBlockContents(const Slice& raw, const ReadOptions& options,
                           bool always_verify, std::string* contents) {
  if (raw.size() < kBlockTrailerSize) {
    return Status::Corruption("truncated block read");
  }
  const size_t n = raw.size() - kBlockTrailerSize;
  const char* data = raw.data();
  if (options.verify_checksums || always_verify) {
    const uint32_t expected = crc32c::Unmask(DecodeFixed32(data + n + 1));
    const uint32_t actual = crc32c::Value(data, n + 1);
    if (actual != expected) {
      return Status::Corruption("block checksum mismatch");
    }
  }

  switch (static_cast<CompressionType>(data[n])) {
    case CompressionType::kNone:
      contents->assign(data, n);
      return Status::OK();
    case CompressionType::kLzLite:
      return LzLiteDecompress(Slice(data, n), contents);
  }
  return Status::Corruption("unknown block compression type");
}

Status DecodeBlockView(const Slice& raw, const ReadOptions& options,
                       bool always_verify, std::string* scratch, Slice* view) {
  if (raw.size() < kBlockTrailerSize) {
    return Status::Corruption("truncated block read");
  }
  const size_t n = raw.size() - kBlockTrailerSize;
  const char* data = raw.data();
  if (options.verify_checksums || always_verify) {
    const uint32_t expected = crc32c::Unmask(DecodeFixed32(data + n + 1));
    const uint32_t actual = crc32c::Value(data, n + 1);
    if (actual != expected) {
      return Status::Corruption("block checksum mismatch");
    }
  }

  switch (static_cast<CompressionType>(data[n])) {
    case CompressionType::kNone:
      *view = Slice(data, n);
      return Status::OK();
    case CompressionType::kLzLite:
      LSMIO_RETURN_IF_ERROR(LzLiteDecompress(Slice(data, n), scratch));
      *view = Slice(*scratch);
      return Status::OK();
  }
  return Status::Corruption("unknown block compression type");
}

Status ReadBlockContents(vfs::RandomAccessFile* file, const ReadOptions& options,
                         bool always_verify, const BlockHandle& handle,
                         std::string* contents) {
  const size_t n = static_cast<size_t>(handle.size());
  std::string scratch;
  Slice raw;
  LSMIO_RETURN_IF_ERROR(
      file->Read(handle.offset(), n + kBlockTrailerSize, &raw, &scratch));
  if (raw.size() != n + kBlockTrailerSize) {
    return Status::Corruption("truncated block read");
  }
  return DecodeBlockContents(raw, options, always_verify, contents);
}

}  // namespace lsmio::lsm
