#include "core/store.h"

#include "common/synchronization.h"
#include "core/memory_arbiter.h"

namespace lsmio {

namespace {

lsm::Options ToEngineOptions(const LsmioOptions& options) {
  lsm::Options engine;
  engine.vfs = options.vfs;
  engine.disable_wal = options.disable_wal;
  engine.compression = options.disable_compression
                           ? lsm::CompressionType::kNone
                           : lsm::CompressionType::kLzLite;
  engine.disable_cache = options.disable_cache;
  engine.disable_compaction = options.disable_compaction;
  engine.sync_writes = options.sync_writes;
  engine.use_mmap = options.use_mmap;
  engine.write_buffer_size = options.write_buffer_size;
  engine.block_size = options.block_size;
  engine.read_only = options.read_only;
  // Flush and compaction schedule independently on this pool; at most one
  // flush runs at a time, so §3.1.2's single flushing thread is preserved
  // for any value.
  engine.background_threads = options.background_threads;
  engine.max_write_buffer_number = options.max_write_buffer_number;
  engine.enable_group_commit = options.enable_group_commit;
  engine.l0_slowdown_writes_trigger = options.l0_slowdown_writes_trigger;
  engine.bytes_per_sec = options.bytes_per_sec;
  engine.pin_index_and_filter = options.pin_index_and_filter;
  engine.compaction_readahead_bytes = options.compaction_readahead_bytes;
  engine.num_shards = options.num_shards;
  return engine;
}

class LsmStore final : public Store {
 public:
  LsmStore(LsmioOptions options, std::unique_ptr<lsm::DB> db,
           uint64_t tenant_id)
      : options_(std::move(options)),
        db_(std::move(db)),
        tenant_id_(tenant_id) {}

  ~LsmStore() override {
    // Close the engine first: ~DBImpl detaches from the arbiter's write
    // pool and releases its pinned cache handles, so the purge below can
    // reclaim the tenant's full cache charge.
    db_.reset();
    if (tenant_id_ != 0 && options_.memory_arbiter != nullptr) {
      options_.memory_arbiter->UnregisterTenant(tenant_id_);
    }
  }

  Status StartBatch() override {
    MutexLock lock(&mu_);
    if (!options_.use_write_batch) return Status::OK();
    if (batching_) return Status::Busy("batch already started");
    batching_ = true;
    batch_.Clear();
    return Status::OK();
  }

  Status StopBatch() override {
    MutexLock lock(&mu_);
    if (!options_.use_write_batch) return Status::OK();
    if (!batching_) return Status::Busy("no batch in progress");
    batching_ = false;
    if (batch_.Count() == 0) return Status::OK();
    lsm::WriteOptions write_options;
    write_options.sync = options_.sync_writes;
    Status s = db_->Write(write_options, &batch_);
    batch_.Clear();
    return s;
  }

  Status Get(const lsm::ReadOptions& options, const Slice& key,
             std::string* value) override {
    // Reads see batched-but-unapplied writes only after StopBatch — the
    // LevelDB-mode contract the paper describes (aggregation is opaque).
    return db_->Get(options, key, value);
  }

  Status GetBatch(const lsm::ReadOptions& options, std::span<const Slice> keys,
                  std::vector<std::string>* values,
                  std::vector<Status>* statuses) override {
    return db_->MultiGet(options, keys, values, statuses);
  }

  Status Put(const Slice& key, const Slice& value) override {
    {
      MutexLock lock(&mu_);
      if (batching_) {
        batch_.Put(key, value);
        return Status::OK();
      }
    }
    lsm::WriteOptions write_options;
    write_options.sync = options_.sync_writes;
    return db_->Put(write_options, key, value);
  }

  Status Append(const Slice& key, const Slice& value) override {
    // Read-modify-write; the engine keeps this cheap because the hot tail
    // lives in the memtable. During an open batch the engine cannot see the
    // batched-but-unapplied ops, so the batch must be consulted first or an
    // Append after a batched Put would extend a stale value.
    {
      MutexLock lock(&mu_);
      if (batching_) {
        struct LastOp final : lsm::WriteBatch::Handler {
          explicit LastOp(const Slice& k) : target(k) {}
          void Put(const Slice& k, const Slice& v) override {
            if (k == target) {
              found = true;
              deleted = false;
              value.assign(v.data(), v.size());
            }
          }
          void Delete(const Slice& k) override {
            if (k == target) {
              found = true;
              deleted = true;
              value.clear();
            }
          }
          Slice target;
          bool found = false;
          bool deleted = false;
          std::string value;
        } last(key);
        LSMIO_RETURN_IF_ERROR(batch_.Iterate(&last));

        std::string existing;
        if (last.found) {
          existing = std::move(last.value);  // empty when deleted in batch
        } else {
          Status s = db_->Get({}, key, &existing);
          if (!s.ok() && !s.IsNotFound()) return s;
        }
        existing.append(value.data(), value.size());
        batch_.Put(key, existing);
        return Status::OK();
      }
    }
    std::string existing;
    Status s = db_->Get({}, key, &existing);
    if (!s.ok() && !s.IsNotFound()) return s;
    existing.append(value.data(), value.size());
    return Put(key, existing);
  }

  Status Del(const Slice& key) override {
    {
      MutexLock lock(&mu_);
      if (batching_) {
        batch_.Delete(key);
        return Status::OK();
      }
    }
    lsm::WriteOptions write_options;
    write_options.sync = options_.sync_writes;
    return db_->Delete(write_options, key);
  }

  Status WriteBarrier(BarrierMode mode) override {
    // Flush any open batch first, then the memtable.
    {
      MutexLock lock(&mu_);
      if (batching_ && batch_.Count() > 0) {
        lsm::WriteOptions write_options;
        write_options.sync = options_.sync_writes;
        LSMIO_RETURN_IF_ERROR(db_->Write(write_options, &batch_));
        batch_.Clear();
      }
    }
    return db_->FlushMemTable(/*wait=*/mode == BarrierMode::kSync);
  }

  lsm::DbStats EngineStats() const override { return db_->GetStats(); }

  std::vector<lsm::DbStats> EngineStatsPerShard() const override {
    std::vector<lsm::DbStats> per_shard;
    db_->GetShardStats(&per_shard);
    return per_shard;
  }

  Status Health() const override { return db_->HealthStatus(); }

  uint64_t MemoryTenantId() const override { return tenant_id_; }

  lsm::Iterator* NewIterator(const lsm::ReadOptions& options) override {
    return db_->NewIterator(options);
  }

 private:
  LsmioOptions options_;         // unguarded: immutable after construction
  std::unique_ptr<lsm::DB> db_;  // unguarded: set once; DB is internally synchronized
  const uint64_t tenant_id_;     // unguarded: immutable after construction
  /// Guards the batching window. Lock order (DESIGN.md §9): mu_ is above
  /// DBImpl::mu_ — StopBatch/WriteBarrier call db_->Write while holding it.
  Mutex mu_;
  bool batching_ GUARDED_BY(mu_) = false;
  lsm::WriteBatch batch_ GUARDED_BY(mu_);
};

}  // namespace

Status OpenLsmStore(const LsmioOptions& options, const std::string& path,
                    std::unique_ptr<Store>* store) {
  lsm::Options engine = ToEngineOptions(options);
  uint64_t tenant_id = 0;
  if (options.memory_arbiter != nullptr) {
    tenant_id = options.memory_arbiter->RegisterTenant(path);
    engine.tenant_id = tenant_id;
    // Write-memory arbitration only matters for writable stores; read-only
    // opens still share the cache so restore reads are charged correctly.
    if (!options.read_only) {
      engine.write_memory_pool = options.memory_arbiter->write_pool();
    }
    if (!options.disable_cache) {
      engine.block_cache = options.memory_arbiter->shared_cache();
    }
  }
  std::unique_ptr<lsm::DB> db;
  Status s = lsm::DB::Open(engine, path, &db);
  if (!s.ok()) {
    if (tenant_id != 0) options.memory_arbiter->UnregisterTenant(tenant_id);
    return s;
  }
  *store = std::make_unique<LsmStore>(options, std::move(db), tenant_id);
  return Status::OK();
}

}  // namespace lsmio
