// Umbrella header for the LSMIO library: the K/V API (Manager), the
// FStream API, and the A2 (ADIOS2-style) plugin — the three interfaces the
// paper's Figure 3 architecture exposes.
#pragma once

#include "core/fstream.h"        // IWYU pragma: export
#include "core/lsmio_options.h"  // IWYU pragma: export
#include "core/manager.h"        // IWYU pragma: export
#include "core/memory_arbiter.h" // IWYU pragma: export
#include "core/plugin.h"         // IWYU pragma: export
#include "core/store.h"          // IWYU pragma: export
