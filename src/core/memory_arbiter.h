// MemoryArbiter: one process-wide memory budget shared by every store a
// process hosts (DESIGN.md §15). The paper's aggregator runs one store per
// checkpoint stream; at hundreds-to-thousands of tenants, fixed per-store
// write_buffer_size + private block caches are either OOM or waste. The
// arbiter splits a global budget into
//
//  (a) a shared block cache with per-tenant charge accounting
//      (lsm::Cache owner ids — see shared_cache()), and
//  (b) a global write-memory pool (the lsm::WriteMemoryPool side of this
//      class): memtables grow until *aggregate* usage crosses the flush
//      watermark, then the arbiter picks flush victims cold-first (least
//      recent write activity, largest resident size as tie-break) and asks
//      the victim DB to switch its memtable through its normal flush
//      scheduling. Hot tenants effectively steal memory from cold ones —
//      the adaptive-memory design of "Breaking Down Memory Walls"
//      (PAPERS.md).
//
// Budget pressure never hard-stalls writers: GlobalPressure() feeds each
// DB's WriteController, so the graduated-backpressure leaky bucket paces
// all tenants as usage approaches the budget.
//
// Lifetime: the arbiter must outlive every store registered with it.
// Thread-safe; the victim callback contract is in lsm/memory_budget.h.
// Lock order: DBImpl::mu_ -> MemoryArbiter::mu_ -> ThreadPool::mu_.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/synchronization.h"
#include "common/units.h"
#include "lsm/cache.h"
#include "lsm/memory_budget.h"

namespace lsmio {

struct MemoryArbiterOptions {
  /// Aggregate memtable budget across every attached store.
  uint64_t write_budget_bytes = 256 * MiB;
  /// Capacity of the shared block cache.
  uint64_t cache_budget_bytes = 64 * MiB;
  /// Fraction of write_budget_bytes at which victim flushing starts;
  /// pacing pressure ramps from here to 1.0 at the full budget.
  double flush_watermark = 0.85;
  /// An attachment below this resident size is never picked as a victim
  /// (flushing slivers buys nothing and costs an SST per sliver).
  uint64_t min_victim_bytes = 256 * KiB;
  /// Hard per-memtable cap: a single attachment switches past this size
  /// regardless of global pressure, bounding flush size and recovery time.
  /// 0 = write_budget_bytes / 4.
  uint64_t max_memtable_bytes = 0;
};

/// Point-in-time residency of one tenant (one registered store).
struct TenantResidency {
  std::string name;
  uint64_t tenant_id = 0;
  uint64_t memtable_bytes = 0;       ///< summed over the tenant's attachments
  uint64_t cache_bytes = 0;          ///< shared-cache charge
  uint64_t cache_evictions = 0;      ///< shared-cache capacity evictions
  uint64_t arbiter_forced_flushes = 0;  ///< victim picks issued to the tenant
  int attachments = 0;               ///< attached DBs (shards)
};

class MemoryArbiter final : public lsm::WriteMemoryPool {
 public:
  explicit MemoryArbiter(const MemoryArbiterOptions& options = {});
  ~MemoryArbiter() override;

  MemoryArbiter(const MemoryArbiter&) = delete;
  MemoryArbiter& operator=(const MemoryArbiter&) = delete;

  /// Registers a store (by path or any stable name) and returns its
  /// nonzero tenant id — the charge owner for cache inserts and the
  /// tenant of its pool attachments.
  uint64_t RegisterTenant(const std::string& name);
  /// Forgets the tenant and purges its unpinned shared-cache entries.
  /// Call after the store (every attachment) is closed.
  void UnregisterTenant(uint64_t tenant_id);

  /// The shared, per-tenant-charged block cache. Stable for the arbiter's
  /// lifetime; wire into lsm::Options::block_cache.
  [[nodiscard]] lsm::Cache* shared_cache() const { return shared_cache_.get(); }
  /// The global write-memory pool. Wire into
  /// lsm::Options::write_memory_pool.
  [[nodiscard]] lsm::WriteMemoryPool* write_pool() { return this; }

  [[nodiscard]] TenantResidency Residency(uint64_t tenant_id) const;
  [[nodiscard]] std::vector<TenantResidency> AllResidency() const;

  /// Total victim picks issued since construction.
  [[nodiscard]] uint64_t flush_requests() const;

  // --- lsm::WriteMemoryPool ---
  uint64_t Attach(uint64_t tenant_id,
                  std::function<void()> request_flush) override;
  void Detach(uint64_t attachment_id) override;
  void UpdateUsage(uint64_t attachment_id, uint64_t bytes,
                   bool wrote) override;
  [[nodiscard]] uint64_t AttachmentCap() const override {
    return attachment_cap_;
  }
  [[nodiscard]] double GlobalPressure() const override;
  [[nodiscard]] uint64_t TotalUsage() const override {
    return total_usage_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t Budget() const override {
    return options_.write_budget_bytes;
  }

 private:
  struct Attachment {
    uint64_t tenant_id = 0;
    uint64_t bytes = 0;            // last reported residency
    uint64_t last_write_tick = 0;  // recency for the cold-first policy
    bool flush_requested = false;  // victim pick outstanding
    uint64_t bytes_at_request = 0; // residency when the pick was issued
    std::function<void()> request_flush;
  };

  struct Tenant {
    std::string name;
    uint64_t forced_flushes = 0;
    int attachments = 0;
  };

  /// Picks victims (cold-first, largest tie-break) while usage net of
  /// already-requested flushes sits above the watermark. Callbacks are
  /// invoked under mu_ — the WriteMemoryPool contract makes them
  /// non-blocking, and holding mu_ makes Detach a barrier against
  /// callbacks on destroyed DBs.
  void MaybePickVictims() REQUIRES(mu_);

  const MemoryArbiterOptions options_;
  const uint64_t watermark_bytes_;
  const uint64_t attachment_cap_;
  std::unique_ptr<lsm::Cache> shared_cache_;  // unguarded: internally synced

  mutable Mutex mu_;
  std::unordered_map<uint64_t, Tenant> tenants_ GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Attachment> attachments_ GUARDED_BY(mu_);
  uint64_t next_tenant_id_ GUARDED_BY(mu_) = 0;
  uint64_t next_attachment_id_ GUARDED_BY(mu_) = 0;
  uint64_t tick_ GUARDED_BY(mu_) = 0;
  /// Bytes expected back from outstanding victim picks.
  uint64_t pending_release_ GUARDED_BY(mu_) = 0;
  uint64_t flush_requests_ GUARDED_BY(mu_) = 0;
  /// Mirror of the summed attachment bytes; written under mu_, read
  /// lock-free on the write hot path (GlobalPressure/TotalUsage).
  /// unguarded: atomic by design.
  std::atomic<uint64_t> total_usage_{0};
};

}  // namespace lsmio
