// Local Store (paper §3.1.2): the layer encapsulating the LSM engine behind
// the internal K/V interface, including batching (startBatch/stopBatch) and
// the write barrier. Table 1 of the paper lists exactly this surface.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "core/lsmio_options.h"
#include "lsm/db.h"
#include "lsm/write_batch.h"

namespace lsmio {

/// The internal K/V interface of the Local Store.
class Store {
 public:
  virtual ~Store() = default;

  /// Begins aggregation if the configuration requires it (no-op otherwise).
  virtual Status StartBatch() = 0;
  /// Ends aggregation, applying buffered writes.
  virtual Status StopBatch() = 0;

  /// Point lookup; always synchronous (paper Table 1). Engine read options
  /// (fill_cache, verify_checksums, snapshot, readahead) pass through
  /// instead of being defaulted internally.
  virtual Status Get(const lsm::ReadOptions& options, const Slice& key,
                     std::string* value) = 0;
  /// Point lookup with default read options.
  Status Get(const Slice& key, std::string* value) {
    return Get(lsm::ReadOptions{}, key, value);
  }
  /// Batched point lookup (engine MultiGet): fills (*values)[i] and
  /// (*statuses)[i] per key at one consistent read point.
  virtual Status GetBatch(const lsm::ReadOptions& options,
                          std::span<const Slice> keys,
                          std::vector<std::string>* values,
                          std::vector<Status>* statuses) = 0;
  Status GetBatch(std::span<const Slice> keys, std::vector<std::string>* values,
                  std::vector<Status>* statuses) {
    return GetBatch(lsm::ReadOptions{}, keys, values, statuses);
  }
  /// Upsert; asynchronous unless the store is configured for sync writes.
  virtual Status Put(const Slice& key, const Slice& value) = 0;
  /// Appends to the existing value (creates it when absent).
  virtual Status Append(const Slice& key, const Slice& value) = 0;
  /// Removes the key.
  virtual Status Del(const Slice& key) = 0;

  /// Flushes all buffered writes to storage; blocks per `mode`.
  virtual Status WriteBarrier(BarrierMode mode) = 0;

  /// Engine statistics passthrough. On a sharded store these are whole-store
  /// aggregates (counters summed, gauges maxed).
  [[nodiscard]] virtual lsm::DbStats EngineStats() const = 0;
  /// Verbose per-shard breakdown; a single entry (== EngineStats) when the
  /// backing engine is unsharded.
  [[nodiscard]] virtual std::vector<lsm::DbStats> EngineStatsPerShard() const {
    return {EngineStats()};
  }
  /// Health passthrough: OK while the engine accepts writes; the typed
  /// ReadOnly status once a WAL/manifest/flush failure latched the engine
  /// into sticky read-only mode (reopen to clear).
  [[nodiscard]] virtual Status Health() const = 0;
  /// Tenant id under LsmioOptions::memory_arbiter (0 when the store is not
  /// arbiter-managed). Feed to MemoryArbiter::Residency.
  [[nodiscard]] virtual uint64_t MemoryTenantId() const { return 0; }
  /// Iterator over the full key space (caller deletes before the store),
  /// honouring the given engine read options (e.g. readahead_bytes for
  /// sequential restore scans, fill_cache=false for one-shot sweeps).
  virtual lsm::Iterator* NewIterator(const lsm::ReadOptions& options) = 0;
  lsm::Iterator* NewIterator() { return NewIterator(lsm::ReadOptions{}); }
};

/// Opens the LSM-backed Local Store at `path`, applying the paper's
/// customizations from `options`.
Status OpenLsmStore(const LsmioOptions& options, const std::string& path,
                    std::unique_ptr<Store>* store);

}  // namespace lsmio
