#include "core/manager.h"

#include <map>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"
#include "common/rate_limiter.h"
#include "common/synchronization.h"
#include "minimpi/minimpi.h"

namespace lsmio {

namespace {

// Serialized remote-put entry: varint dest | varstring key | varstring value.
void PackRemotePut(std::string* dst, int dest, const Slice& key, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(dest));
  PutLengthPrefixedSlice(dst, key);
  PutLengthPrefixedSlice(dst, value);
}

}  // namespace

// Buffered remote puts live here (translation unit private, keyed by
// manager instance) to keep the header free of container details.
struct RemoteBuffer {
  std::string packed;
  uint64_t count = 0;
};

namespace {
Mutex g_buffer_mu;
std::map<const Manager*, RemoteBuffer>& Buffers() REQUIRES(g_buffer_mu) {
  static std::map<const Manager*, RemoteBuffer> buffers;
  return buffers;
}
/// Packs one routed put into the manager's buffer, entirely under the lock.
/// (The previous shape returned a RemoteBuffer& from under the lock and let
/// callers mutate it unlocked — a data race when application threads share a
/// Manager.)
void AppendRemotePut(const Manager* manager, int dest, const Slice& key,
                     const Slice& value) {
  MutexLock lock(&g_buffer_mu);
  RemoteBuffer& buffer = Buffers()[manager];
  PackRemotePut(&buffer.packed, dest, key, value);
  ++buffer.count;
}
/// Removes and returns the manager's buffered puts (empty if none).
RemoteBuffer TakeBufferFor(const Manager* manager) {
  MutexLock lock(&g_buffer_mu);
  auto& buffers = Buffers();
  auto it = buffers.find(manager);
  if (it == buffers.end()) return RemoteBuffer{};
  RemoteBuffer taken = std::move(it->second);
  buffers.erase(it);
  return taken;
}
void DropBufferFor(const Manager* manager) {
  MutexLock lock(&g_buffer_mu);
  Buffers().erase(manager);
}
}  // namespace

Status Manager::Open(const LsmioOptions& options, const std::string& path,
                     std::unique_ptr<Manager>* manager) {
  std::unique_ptr<Store> store;
  LSMIO_RETURN_IF_ERROR(OpenLsmStore(options, path, &store));
  manager->reset(new Manager(options, std::move(store)));
  return Status::OK();
}

Manager::~Manager() { DropBufferFor(this); }

int Manager::OwnerOf(const Slice& key) const {
  if (options_.comm == nullptr) return 0;
  return static_cast<int>(Hash64(key) %
                          static_cast<uint64_t>(options_.comm->size()));
}

Status Manager::Get(const Slice& key, std::string* value) {
  return Get(lsm::ReadOptions{}, key, value);
}

Status Manager::Get(const lsm::ReadOptions& read_options, const Slice& key,
                    std::string* value) {
  Status s = store_->Get(read_options, key, value);
  MutexLock lock(&counters_mu_);
  ++counters_.gets;
  if (s.ok()) counters_.bytes_got += value->size();
  return s;
}

Status Manager::GetBatch(std::span<const Slice> keys,
                         std::vector<std::string>* values,
                         std::vector<Status>* statuses) {
  return GetBatch(lsm::ReadOptions{}, keys, values, statuses);
}

Status Manager::GetBatch(const lsm::ReadOptions& read_options,
                         std::span<const Slice> keys,
                         std::vector<std::string>* values,
                         std::vector<Status>* statuses) {
  Status s = store_->GetBatch(read_options, keys, values, statuses);
  MutexLock lock(&counters_mu_);
  ++counters_.multigets;
  counters_.multiget_keys += keys.size();
  if (s.ok()) {
    for (size_t i = 0; i < statuses->size(); ++i) {
      if ((*statuses)[i].ok()) counters_.bytes_got += (*values)[i].size();
    }
  }
  return s;
}

Status Manager::Put(const Slice& key, const Slice& value) {
  // SystemClock, not std::chrono directly: keeps the latency counter
  // deterministic under an injected clock (lsmio-no-direct-clock).
  const uint64_t start_us = SystemClock::Default()->NowMicros();

  Status s;
  if (options_.collective_io && options_.comm != nullptr &&
      OwnerOf(key) != options_.comm->rank()) {
    // Route to the owner: buffered until the next CollectiveFence.
    AppendRemotePut(this, OwnerOf(key), key, value);
    MutexLock lock(&counters_mu_);
    ++counters_.remote_puts;
    ++counters_.puts;
    counters_.bytes_put += value.size();
    return Status::OK();
  }
  s = store_->Put(key, value);

  const uint64_t elapsed = SystemClock::Default()->NowMicros() - start_us;
  MutexLock lock(&counters_mu_);
  ++counters_.puts;
  counters_.bytes_put += value.size();
  counters_.put_latency_us.Add(static_cast<double>(elapsed));
  return s;
}

Status Manager::PutUint64(const Slice& key, uint64_t value) {
  std::string encoded;
  PutFixed64(&encoded, value);
  return Put(key, encoded);
}

Status Manager::PutDouble(const Slice& key, double value) {
  uint64_t bits;
  static_assert(sizeof bits == sizeof value);
  __builtin_memcpy(&bits, &value, sizeof bits);
  return PutUint64(key, bits);
}

Status Manager::GetUint64(const Slice& key, uint64_t* value) {
  std::string encoded;
  LSMIO_RETURN_IF_ERROR(Get(key, &encoded));
  if (encoded.size() != 8) return Status::Corruption("value is not a uint64");
  *value = DecodeFixed64(encoded.data());
  return Status::OK();
}

Status Manager::GetDouble(const Slice& key, double* value) {
  uint64_t bits;
  LSMIO_RETURN_IF_ERROR(GetUint64(key, &bits));
  __builtin_memcpy(value, &bits, sizeof bits);
  return Status::OK();
}

Status Manager::Append(const Slice& key, const Slice& value) {
  Status s = store_->Append(key, value);
  MutexLock lock(&counters_mu_);
  ++counters_.appends;
  counters_.bytes_put += value.size();
  return s;
}

Status Manager::Del(const Slice& key) {
  Status s = store_->Del(key);
  MutexLock lock(&counters_mu_);
  ++counters_.dels;
  return s;
}

Status Manager::WriteBarrier() { return WriteBarrier(options_.barrier_mode); }

Status Manager::WriteBarrier(BarrierMode mode) {
  Status s = store_->WriteBarrier(mode);
  MutexLock lock(&counters_mu_);
  ++counters_.write_barriers;
  return s;
}

Status Manager::StartBatch() { return store_->StartBatch(); }
Status Manager::StopBatch() { return store_->StopBatch(); }

Status Manager::CollectiveFence() {
  if (!options_.collective_io || options_.comm == nullptr) return Status::OK();
  minimpi::Comm& comm = *options_.comm;

  const RemoteBuffer buffer = TakeBufferFor(this);
  const std::vector<std::string> all = comm.Allgather(buffer.packed);

  // Apply entries destined to this rank.
  for (const std::string& packed : all) {
    Slice input(packed);
    while (!input.empty()) {
      uint32_t dest;
      Slice key;
      Slice value;
      if (!GetVarint32(&input, &dest) || !GetLengthPrefixedSlice(&input, &key) ||
          !GetLengthPrefixedSlice(&input, &value)) {
        return Status::Corruption("malformed collective put exchange");
      }
      if (static_cast<int>(dest) == comm.rank()) {
        LSMIO_RETURN_IF_ERROR(store_->Put(key, value));
      }
    }
  }
  comm.Barrier();
  return Status::OK();
}

ManagerCounters Manager::counters() const {
  MutexLock lock(&counters_mu_);
  return counters_;
}

}  // namespace lsmio
