#include "core/fstream.h"

#include "common/synchronization.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/coding.h"

namespace lsmio {

// --- FStreamApi -----------------------------------------------------------------

namespace {
Mutex g_api_mu;
std::unique_ptr<Manager> g_manager GUARDED_BY(g_api_mu);
/// Read by KvStreamBuf constructors without the API mutex, so it is a
/// relaxed atomic rather than GUARDED_BY(g_api_mu).
std::atomic<uint64_t> g_chunk_size{1 * MiB};
}  // namespace

Status FStreamApi::Initialize(const LsmioOptions& options, const std::string& path) {
  MutexLock lock(&g_api_mu);
  if (g_manager != nullptr) return Status::Busy("FStreamApi already initialized");
  g_chunk_size.store(options.fstream_chunk_size, std::memory_order_relaxed);
  return Manager::Open(options, path, &g_manager);
}

Status FStreamApi::WriteBarrier() {
  MutexLock lock(&g_api_mu);
  if (g_manager == nullptr) return Status::InvalidArgument("FStreamApi not initialized");
  return g_manager->WriteBarrier(BarrierMode::kSync);
}

Status FStreamApi::Cleanup() {
  MutexLock lock(&g_api_mu);
  if (g_manager == nullptr) return Status::OK();
  Status s = g_manager->WriteBarrier(BarrierMode::kSync);
  g_manager.reset();
  return s;
}

Manager* FStreamApi::manager() {
  MutexLock lock(&g_api_mu);
  return g_manager.get();
}

// --- KvStreamBuf ------------------------------------------------------------------

KvStreamBuf::KvStreamBuf(Manager* manager, std::string name,
                         std::ios_base::openmode mode)
    : manager_(manager), name_(std::move(name)), chunk_size_(g_chunk_size.load(std::memory_order_relaxed)) {
  if (manager_ == nullptr) {
    ok_ = false;
    return;
  }
  readable_ = (mode & std::ios_base::in) != 0;
  const Status meta = LoadMeta();
  if (meta.IsNotFound()) {
    if ((mode & std::ios_base::in) != 0 && (mode & std::ios_base::out) == 0) {
      ok_ = false;  // reading a missing file
      return;
    }
    size_ = 0;
  } else if (!meta.ok()) {
    ok_ = false;
    return;
  }
  if ((mode & std::ios_base::trunc) != 0) size_ = 0;
  if ((mode & std::ios_base::ate) != 0 || (mode & std::ios_base::app) != 0) {
    position_ = size_;
  }
}

KvStreamBuf::~KvStreamBuf() { sync(); }

std::string KvStreamBuf::ChunkKey(uint64_t chunk_index) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "!%016" PRIx64, chunk_index);
  return "F!" + name_ + buf;
}

std::string KvStreamBuf::MetaKey() const { return "F!" + name_ + "!meta"; }

Status KvStreamBuf::LoadMeta() {
  uint64_t stored = 0;
  LSMIO_RETURN_IF_ERROR(manager_->GetUint64(MetaKey(), &stored));
  size_ = stored;
  return Status::OK();
}

Status KvStreamBuf::StoreMeta() { return manager_->PutUint64(MetaKey(), size_); }

Status KvStreamBuf::LoadChunk(uint64_t chunk_index) {
  if (loaded_chunk_ == chunk_index) return Status::OK();
  LSMIO_RETURN_IF_ERROR(FlushChunk());
  setg(nullptr, nullptr, nullptr);  // get area pointed into the old chunk
  if (readable_ && size_ > 0 && !prefetched_.contains(chunk_index)) {
    PrefetchFrom(chunk_index);
  }
  auto it = prefetched_.find(chunk_index);
  if (it != prefetched_.end()) {
    chunk_ = std::move(it->second);
    prefetched_.erase(it);
  } else {
    Status s = manager_->Get(ChunkKey(chunk_index), &chunk_);
    if (s.IsNotFound()) {
      chunk_.clear();
    } else if (!s.ok()) {
      return s;
    }
  }
  loaded_chunk_ = chunk_index;
  return Status::OK();
}

// Batch-loads `chunk_index` and the next few chunks via one engine MultiGet
// (readahead for sequential restore reads). Only runs for readable streams;
// a trailing single chunk falls through to the plain Get in LoadChunk.
void KvStreamBuf::PrefetchFrom(uint64_t chunk_index) {
  static constexpr uint64_t kPrefetchChunks = 4;
  const uint64_t last_chunk = (size_ - 1) / chunk_size_;
  if (chunk_index >= last_chunk) return;  // nothing ahead to batch with
  const uint64_t end = std::min(last_chunk, chunk_index + kPrefetchChunks - 1);

  std::vector<std::string> key_storage;
  key_storage.reserve(static_cast<size_t>(end - chunk_index + 1));
  for (uint64_t c = chunk_index; c <= end; ++c) {
    key_storage.push_back(ChunkKey(c));
  }
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  if (!manager_->GetBatch(keys, &values, &statuses).ok()) return;
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (statuses[i].ok()) {
      prefetched_[chunk_index + i] = std::move(values[i]);
    } else if (statuses[i].IsNotFound()) {
      prefetched_[chunk_index + i].clear();  // sparse chunk reads as empty
    }
    // Other errors: leave unstashed so LoadChunk's Get surfaces them.
  }
}

// Folds the consumed part of an active get area into position_ and drops
// the area (called before any operation that moves or mutates the chunk).
void KvStreamBuf::SyncPositionFromGetArea() {
  if (gptr() != nullptr) {
    position_ = loaded_chunk_ * chunk_size_ + static_cast<uint64_t>(gptr() - eback());
    setg(nullptr, nullptr, nullptr);
  }
}

Status KvStreamBuf::FlushChunk() {
  if (!chunk_dirty_ || loaded_chunk_ == ~0ULL) return Status::OK();
  chunk_dirty_ = false;
  return manager_->Put(ChunkKey(loaded_chunk_), chunk_);
}

int KvStreamBuf::sync() {
  if (!ok_) return -1;
  SyncPositionFromGetArea();
  if (!FlushChunk().ok() || !StoreMeta().ok()) {
    ok_ = false;
    return -1;
  }
  return 0;
}

KvStreamBuf::int_type KvStreamBuf::overflow(int_type ch) {
  if (!ok_) return traits_type::eof();
  if (traits_type::eq_int_type(ch, traits_type::eof())) return traits_type::not_eof(ch);
  SyncPositionFromGetArea();

  const uint64_t chunk_index = position_ / chunk_size_;
  const uint64_t within = position_ % chunk_size_;
  if (!LoadChunk(chunk_index).ok()) {
    ok_ = false;
    return traits_type::eof();
  }
  if (chunk_.size() <= within) chunk_.resize(static_cast<size_t>(within) + 1, '\0');
  chunk_[static_cast<size_t>(within)] = traits_type::to_char_type(ch);
  chunk_dirty_ = true;
  ++position_;
  if (position_ > size_) size_ = position_;
  return ch;
}

std::streamsize KvStreamBuf::xsputn(const char* s, std::streamsize n) {
  if (!ok_ || n <= 0) return 0;
  SyncPositionFromGetArea();
  std::streamsize written = 0;
  while (written < n) {
    const uint64_t chunk_index = position_ / chunk_size_;
    const uint64_t within = position_ % chunk_size_;
    if (!LoadChunk(chunk_index).ok()) {
      ok_ = false;
      break;
    }
    const uint64_t room = chunk_size_ - within;
    const uint64_t take =
        std::min<uint64_t>(room, static_cast<uint64_t>(n - written));
    if (chunk_.size() < within + take) {
      chunk_.resize(static_cast<size_t>(within + take), '\0');
    }
    std::memcpy(chunk_.data() + within, s + written, static_cast<size_t>(take));
    chunk_dirty_ = true;
    position_ += take;
    written += static_cast<std::streamsize>(take);
    if (position_ > size_) size_ = position_;
  }
  return written;
}

KvStreamBuf::int_type KvStreamBuf::underflow() {
  if (!ok_) return traits_type::eof();
  SyncPositionFromGetArea();
  if (position_ >= size_) return traits_type::eof();
  const uint64_t chunk_index = position_ / chunk_size_;
  const uint64_t within = position_ % chunk_size_;
  if (!LoadChunk(chunk_index).ok()) {
    ok_ = false;
    return traits_type::eof();
  }
  if (within >= chunk_.size()) return traits_type::eof();

  // Expose the remainder of this chunk (clamped to logical size) as the
  // get area so bulk reads (sgetn) are chunk-at-a-time.
  const uint64_t logical_remaining = size_ - (chunk_index * chunk_size_);
  const size_t avail = static_cast<size_t>(
      std::min<uint64_t>(chunk_.size(), logical_remaining));
  char* base = chunk_.data();
  setg(base, base + within, base + avail);
  // Note: position_ is advanced in seek/overflow paths; for the get area we
  // track via gptr on seek. Advance position_ lazily when the area drains.
  return traits_type::to_int_type(chunk_[static_cast<size_t>(within)]);
}

std::streampos KvStreamBuf::seekoff(std::streamoff off, std::ios_base::seekdir dir,
                                    std::ios_base::openmode which) {
  SyncPositionFromGetArea();
  int64_t base;
  switch (dir) {
    case std::ios_base::beg: base = 0; break;
    case std::ios_base::cur: base = static_cast<int64_t>(position_); break;
    case std::ios_base::end: base = static_cast<int64_t>(size_); break;
    default: return {std::streamoff(-1)};
  }
  const int64_t target = base + off;
  if (target < 0) return {std::streamoff(-1)};
  position_ = static_cast<uint64_t>(target);
  (void)which;
  return {static_cast<std::streamoff>(position_)};
}

std::streampos KvStreamBuf::seekpos(std::streampos pos, std::ios_base::openmode which) {
  return seekoff(std::streamoff(pos), std::ios_base::beg, which);
}

// --- FStream -----------------------------------------------------------------------

FStream::FStream(const std::string& name, std::ios_base::openmode mode)
    : std::iostream(nullptr) {
  open(name, mode);
}

FStream::~FStream() { close(); }

void FStream::open(const std::string& name, std::ios_base::openmode mode) {
  close();
  Manager* manager = FStreamApi::manager();
  auto buf = std::make_unique<KvStreamBuf>(manager, name, mode);
  if (!buf->ok()) {
    setstate(std::ios_base::failbit);
    return;
  }
  buf_ = std::move(buf);
  rdbuf(buf_.get());
  clear();
}

void FStream::close() {
  if (buf_ == nullptr) return;
  buf_->sync();
  rdbuf(nullptr);
  buf_.reset();
}

Status FStreamRemove(const std::string& name) {
  Manager* manager = FStreamApi::manager();
  if (manager == nullptr) return Status::InvalidArgument("FStreamApi not initialized");
  uint64_t size = 0;
  Status s = manager->GetUint64("F!" + name + "!meta", &size);
  if (s.IsNotFound()) return s;
  LSMIO_RETURN_IF_ERROR(s);
  const uint64_t chunks = (size + g_chunk_size - 1) / g_chunk_size;
  for (uint64_t c = 0; c < chunks; ++c) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "!%016" PRIx64, c);
    LSMIO_RETURN_IF_ERROR(manager->Del("F!" + name + buf));
  }
  return manager->Del("F!" + name + "!meta");
}

bool FStreamExists(const std::string& name) {
  Manager* manager = FStreamApi::manager();
  if (manager == nullptr) return false;
  uint64_t size = 0;
  return manager->GetUint64("F!" + name + "!meta", &size).ok();
}

}  // namespace lsmio
