// LSMIO's ADIOS2-style plugin (paper §3.1.7): an A2 engine backed by the
// LSMIO store, so applications written against the A2 API switch to LSMIO
// with an XML configuration change only.
//
// Layout: Open(path) creates one LSMIO store per writer rank under
// path + "/lsmio.<rank>". Variable blocks are stored as
//   "d!<name>!<offset-hex>"  -> payload bytes
// and each variable's block list accumulates in "i!<name>" via Append.
// Readers open every rank store found under the path and assemble
// selections from the per-rank block lists.
#pragma once

#include <string>

#include "a2/a2.h"

namespace lsmio {

/// Engine type name to use in A2 config: <engine type="LsmioPlugin">.
inline constexpr char kLsmioPluginName[] = "LsmioPlugin";

/// Registers the plugin with the A2 engine registry (idempotent). Returns
/// the engine type name for convenience.
const char* RegisterLsmioPlugin();

}  // namespace lsmio
