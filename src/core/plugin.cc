#include "core/plugin.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "common/coding.h"
#include "core/manager.h"

namespace lsmio {

namespace {

std::string StoreDir(const std::string& path, int rank) {
  return path + "/lsmio." + std::to_string(rank);
}

std::string DataKey(const std::string& name, uint64_t offset) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "!%016" PRIx64, offset);
  return "d!" + name + buf;
}

std::string IndexKey(const std::string& name) { return "i!" + name; }

/// A block index entry: fixed64 offset | fixed64 count | fixed32 elem size.
constexpr size_t kIndexEntrySize = 8 + 8 + 4;

/// Small positive integer parameter, or `fallback` when absent/invalid.
int ParameterInt(a2::IO& io, const std::string& key, int fallback) {
  const std::string value = io.Parameter(key);
  if (value.empty()) return fallback;
  int parsed = 0;
  for (const char c : value) {
    if (c < '0' || c > '9' || parsed > 1000) return fallback;
    parsed = parsed * 10 + (c - '0');
  }
  return parsed > 0 ? parsed : fallback;
}

LsmioOptions PluginOptions(a2::IO& io) {
  LsmioOptions options;
  options.vfs = &io.fs();
  // Inherit the A2 buffer configuration (paper §3.1.1: "inherit the value
  // from ADIOS2 configuration when used as a plugin").
  options.write_buffer_size = io.ParameterBytes("BufferChunkSize", 32 * MiB);
  options.block_size = io.ParameterBytes("BlockSize", 4 * KiB);
  options.sync_writes = io.Parameter("Sync") == "true";
  options.use_mmap = io.Parameter("Mmap") == "true";
  // Write pipeline knobs (XML <parameter key="..."/>).
  options.background_threads =
      ParameterInt(io, "BackgroundThreads", options.background_threads);
  options.max_write_buffer_number =
      ParameterInt(io, "MaxWriteBufferNumber", options.max_write_buffer_number);
  options.enable_group_commit = io.Parameter("GroupCommit") != "false";
  options.num_shards = ParameterInt(io, "NumShards", options.num_shards);
  return options;
}

class LsmioWriterEngine final : public a2::Engine {
 public:
  static Result<std::unique_ptr<a2::Engine>> Make(a2::IO& io, const std::string& path) {
    auto engine = std::unique_ptr<LsmioWriterEngine>(new LsmioWriterEngine());
    LSMIO_RETURN_IF_ERROR(Manager::Open(PluginOptions(io),
                                        StoreDir(path, io.rank()),
                                        &engine->manager_));
    return {std::unique_ptr<a2::Engine>(std::move(engine))};
  }

  Status Put(const a2::Variable& variable, const void* data,
             a2::PutMode mode) override {
    ++stats_.puts;
    const uint64_t bytes = variable.count() * variable.element_size();
    stats_.bytes_put += bytes;

    if (mode == a2::PutMode::kDeferred) {
      staged_.push_back(Staged{variable.name(), variable.offset(),
                               variable.count(), variable.element_size(), data});
      return Status::OK();
    }
    return Store(variable.name(), variable.offset(), variable.count(),
                 variable.element_size(), data);
  }

  Status PerformPuts() override {
    ++stats_.perform_puts_calls;
    for (const Staged& staged : staged_) {
      LSMIO_RETURN_IF_ERROR(Store(staged.name, staged.offset, staged.count,
                                  staged.element_size, staged.data));
    }
    staged_.clear();
    return Status::OK();
  }

  Status Get(const a2::Variable&, void*) override {
    return Status::InvalidArgument("LsmioPlugin engine opened for writing");
  }

  Status Close() override {
    if (closed_) return Status::OK();
    closed_ = true;
    LSMIO_RETURN_IF_ERROR(PerformPuts());
    // The paper: "LSMIO calls the write-barrier implicitly at the end of
    // the checkpoint file write."
    return manager_->WriteBarrier(BarrierMode::kSync);
  }

  a2::EngineStats stats() const override { return stats_; }

 private:
  LsmioWriterEngine() = default;

  struct Staged {
    std::string name;
    uint64_t offset;
    uint64_t count;
    uint32_t element_size;
    const void* data;
  };

  Status Store(const std::string& name, uint64_t offset, uint64_t count,
               uint32_t element_size, const void* data) {
    // The plugin serializes the typed selection into a byte value (paper:
    // "a simple serialization into a string").
    const uint64_t bytes = count * element_size;
    LSMIO_RETURN_IF_ERROR(manager_->Put(
        DataKey(name, offset), Slice(static_cast<const char*>(data), bytes)));
    std::string entry;
    PutFixed64(&entry, offset);
    PutFixed64(&entry, count);
    PutFixed32(&entry, element_size);
    return manager_->Append(IndexKey(name), entry);
  }

  std::unique_ptr<Manager> manager_;
  std::vector<Staged> staged_;
  a2::EngineStats stats_;
  bool closed_ = false;
};

class LsmioReaderEngine final : public a2::Engine {
 public:
  static Result<std::unique_ptr<a2::Engine>> Make(a2::IO& io, const std::string& path) {
    auto engine = std::unique_ptr<LsmioReaderEngine>(new LsmioReaderEngine());

    std::vector<std::string> children;
    LSMIO_RETURN_IF_ERROR(io.fs().ListDir(path, &children));
    bool any = false;
    for (const std::string& child : children) {
      if (child.rfind("lsmio.", 0) != 0) continue;
      LsmioOptions options = PluginOptions(io);
      options.read_only = true;  // many ranks open the same stores to read
      std::unique_ptr<Manager> manager;
      LSMIO_RETURN_IF_ERROR(Manager::Open(options, path + "/" + child, &manager));
      engine->stores_.push_back(std::move(manager));
      any = true;
    }
    if (!any) return Status::NotFound("no LSMIO rank stores under " + path);
    return {std::unique_ptr<a2::Engine>(std::move(engine))};
  }

  Status Put(const a2::Variable&, const void*, a2::PutMode) override {
    return Status::InvalidArgument("LsmioPlugin engine opened for reading");
  }
  Status PerformPuts() override {
    return Status::InvalidArgument("LsmioPlugin engine opened for reading");
  }

  Status Get(const a2::Variable& variable, void* data) override {
    ++stats_.gets;
    const uint64_t want_begin = variable.offset();
    const uint64_t want_end = variable.offset() + variable.count();
    const uint32_t element_size = variable.element_size();
    uint64_t covered = 0;

    const std::vector<IndexedBlock>* blocks = nullptr;
    LSMIO_RETURN_IF_ERROR(BlocksFor(variable.name(), &blocks));

    // Group the intersecting blocks by owning rank store, then fetch each
    // group with one engine MultiGet instead of a synchronous point Get per
    // block — the read-side cost the paper identifies for restores.
    std::map<size_t, std::vector<const IndexedBlock*>> by_store;
    for (const IndexedBlock& block : *blocks) {
      if (block.element_size != element_size) {
        return Status::InvalidArgument("element size mismatch for " +
                                       variable.name());
      }
      const uint64_t isect_begin = std::max(want_begin, block.offset);
      const uint64_t isect_end = std::min(want_end, block.offset + block.count);
      if (isect_begin >= isect_end) continue;
      by_store[block.store].push_back(&block);
    }

    for (const auto& [store_index, group] : by_store) {
      std::vector<std::string> key_storage;
      key_storage.reserve(group.size());
      for (const IndexedBlock* block : group) {
        key_storage.push_back(DataKey(variable.name(), block->offset));
      }
      std::vector<Slice> keys(key_storage.begin(), key_storage.end());
      std::vector<std::string> values;
      std::vector<Status> statuses;
      LSMIO_RETURN_IF_ERROR(
          stores_[store_index]->GetBatch(keys, &values, &statuses));
      for (size_t i = 0; i < group.size(); ++i) {
        LSMIO_RETURN_IF_ERROR(statuses[i]);
        const IndexedBlock& block = *group[i];
        const std::string& value = values[i];
        if (value.size() != block.count * element_size) {
          return Status::Corruption("block size mismatch for " +
                                    variable.name());
        }
        const uint64_t isect_begin = std::max(want_begin, block.offset);
        const uint64_t isect_end =
            std::min(want_end, block.offset + block.count);
        std::memcpy(
            static_cast<char*>(data) + (isect_begin - want_begin) * element_size,
            value.data() + (isect_begin - block.offset) * element_size,
            (isect_end - isect_begin) * element_size);
        covered += isect_end - isect_begin;
        stats_.bytes_got += (isect_end - isect_begin) * element_size;
      }
    }
    if (covered < variable.count()) {
      return Status::NotFound("selection not fully covered for " + variable.name());
    }
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }
  a2::EngineStats stats() const override { return stats_; }

 private:
  LsmioReaderEngine() = default;

  struct IndexedBlock {
    size_t store;
    uint64_t offset;
    uint64_t count;
    uint32_t element_size;
  };

  /// Loads (once) and caches the merged block index of a variable across
  /// all rank stores — readers parse metadata at open/first-use, like the
  /// BP reader does.
  Status BlocksFor(const std::string& name, const std::vector<IndexedBlock>** out) {
    auto it = block_cache_.find(name);
    if (it == block_cache_.end()) {
      std::vector<IndexedBlock> blocks;
      for (size_t store_index = 0; store_index < stores_.size(); ++store_index) {
        std::string index;
        Status s = stores_[store_index]->Get(IndexKey(name), &index);
        if (s.IsNotFound()) continue;
        LSMIO_RETURN_IF_ERROR(s);
        if (index.size() % kIndexEntrySize != 0) {
          return Status::Corruption("bad LSMIO plugin index for " + name);
        }
        for (size_t pos = 0; pos < index.size(); pos += kIndexEntrySize) {
          blocks.push_back(IndexedBlock{
              store_index, DecodeFixed64(index.data() + pos),
              DecodeFixed64(index.data() + pos + 8),
              DecodeFixed32(index.data() + pos + 16)});
        }
      }
      it = block_cache_.emplace(name, std::move(blocks)).first;
    }
    *out = &it->second;
    return Status::OK();
  }

  std::vector<std::unique_ptr<Manager>> stores_;
  std::map<std::string, std::vector<IndexedBlock>> block_cache_;
  a2::EngineStats stats_;
};

}  // namespace

const char* RegisterLsmioPlugin() {
  static std::once_flag once;
  std::call_once(once, [] {
    a2::RegisterEngine(
        kLsmioPluginName,
        [](a2::IO& io, const std::string& path,
           a2::Mode mode) -> Result<std::unique_ptr<a2::Engine>> {
          if (mode == a2::Mode::kWrite) {
            LSMIO_RETURN_IF_ERROR(io.fs().CreateDir(path));
            return LsmioWriterEngine::Make(io, path);
          }
          return LsmioReaderEngine::Make(io, path);
        });
  });
  return kLsmioPluginName;
}

}  // namespace lsmio
