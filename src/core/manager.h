// LSMIO Manager (paper §3.1.4): the external K/V API. Owns the Local Store,
// integrates MPI (collective routing of puts to owner ranks — the paper's
// future-work mode), provides typed puts, performance counters, and the
// factory used by applications.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/synchronization.h"
#include "common/slice.h"
#include "core/store.h"

namespace lsmio {

/// Manager-level performance counters (paper §3.1.4).
struct ManagerCounters {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t appends = 0;
  uint64_t dels = 0;
  uint64_t write_barriers = 0;
  uint64_t bytes_put = 0;
  uint64_t bytes_got = 0;
  uint64_t remote_puts = 0;  // routed to another rank (collective mode)
  uint64_t multigets = 0;       // GetBatch calls
  uint64_t multiget_keys = 0;   // keys looked up through GetBatch
  Histogram put_latency_us;
};

class Manager {
 public:
  /// Factory (paper: "an optional factory method to manage the object
  /// instance for the caller"): opens the store at `path`.
  static Status Open(const LsmioOptions& options, const std::string& path,
                     std::unique_ptr<Manager>* manager);

  ~Manager();
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // --- K/V API (paper Table 2) ---

  /// Always synchronous. The overload taking lsm::ReadOptions exposes the
  /// engine read knobs (fill_cache, verify_checksums, readahead, snapshot).
  Status Get(const Slice& key, std::string* value);
  Status Get(const lsm::ReadOptions& read_options, const Slice& key,
             std::string* value);

  /// Batched point lookup (engine MultiGet): one consistent read point for
  /// the whole batch, per-key results in (*values)[i] / (*statuses)[i].
  Status GetBatch(std::span<const Slice> keys, std::vector<std::string>* values,
                  std::vector<Status>* statuses);
  Status GetBatch(const lsm::ReadOptions& read_options,
                  std::span<const Slice> keys, std::vector<std::string>* values,
                  std::vector<Status>* statuses);

  /// Local or remote (collective mode) upsert.
  Status Put(const Slice& key, const Slice& value);

  /// Typed puts (the ADIOS2 API "provides a richer API ... additional data
  /// types"; these serialize little-endian fixed-width).
  Status PutUint64(const Slice& key, uint64_t value);
  Status PutDouble(const Slice& key, double value);
  Status GetUint64(const Slice& key, uint64_t* value);
  Status GetDouble(const Slice& key, double* value);

  /// Appends to the key's value.
  Status Append(const Slice& key, const Slice& value);

  Status Del(const Slice& key);

  /// Flushes buffered writes; sync/async per argument (default: options).
  Status WriteBarrier();
  Status WriteBarrier(BarrierMode mode);

  /// Batch passthrough (LevelDB-mode aggregation).
  Status StartBatch();
  Status StopBatch();

  /// In collective mode, ranks must converge here to serve each other's
  /// routed operations before proceeding (pairs of Put/Get complete once
  /// every rank has called Poll... simplified: a collective fence).
  Status CollectiveFence();

  [[nodiscard]] ManagerCounters counters() const;
  [[nodiscard]] lsm::DbStats engine_stats() const { return store_->EngineStats(); }
  /// Verbose per-shard engine counters (a single entry for unsharded stores).
  [[nodiscard]] std::vector<lsm::DbStats> engine_stats_per_shard() const {
    return store_->EngineStatsPerShard();
  }
  /// OK while the underlying store accepts writes; the typed ReadOnly
  /// status after a durability failure latched it read-only.
  [[nodiscard]] Status Health() const { return store_->Health(); }
  /// Tenant id under LsmioOptions::memory_arbiter (0 when this manager's
  /// store is not arbiter-managed). Feed to MemoryArbiter::Residency for
  /// per-tenant memtable/cache residency and forced-flush counts.
  [[nodiscard]] uint64_t memory_tenant_id() const {
    return store_->MemoryTenantId();
  }
  [[nodiscard]] Store& store() noexcept { return *store_; }

 private:
  Manager(LsmioOptions options, std::unique_ptr<Store> store)
      : options_(std::move(options)), store_(std::move(store)) {}

  /// Owner rank of a key in collective mode.
  [[nodiscard]] int OwnerOf(const Slice& key) const;

  LsmioOptions options_;          // unguarded: immutable after construction
  std::unique_ptr<Store> store_;  // unguarded: set once; Store is internally synchronized
  mutable Mutex counters_mu_;
  ManagerCounters counters_ GUARDED_BY(counters_mu_);
};

}  // namespace lsmio
