#include "core/memory_arbiter.h"

#include <algorithm>
#include <cassert>

namespace lsmio {

namespace {

uint64_t ComputeWatermark(const MemoryArbiterOptions& options) {
  const double w = std::clamp(options.flush_watermark, 0.05, 1.0);
  const auto bytes =
      static_cast<uint64_t>(w * static_cast<double>(options.write_budget_bytes));
  return std::min(bytes, options.write_budget_bytes);
}

uint64_t ComputeAttachmentCap(const MemoryArbiterOptions& options) {
  if (options.max_memtable_bytes > 0) return options.max_memtable_bytes;
  return std::max<uint64_t>(1 * MiB, options.write_budget_bytes / 4);
}

}  // namespace

MemoryArbiter::MemoryArbiter(const MemoryArbiterOptions& options)
    : options_(options),
      watermark_bytes_(ComputeWatermark(options)),
      attachment_cap_(ComputeAttachmentCap(options)),
      shared_cache_(
          lsm::NewLRUCache(std::max<uint64_t>(1, options.cache_budget_bytes))) {}

MemoryArbiter::~MemoryArbiter() {
  // Every store must close (and so detach) before the arbiter dies: a live
  // attachment here means a DB still holds a pointer to this object.
  MutexLock lock(&mu_);
  assert(attachments_.empty());
}

uint64_t MemoryArbiter::RegisterTenant(const std::string& name) {
  MutexLock lock(&mu_);
  const uint64_t id = ++next_tenant_id_;
  Tenant& t = tenants_[id];
  t.name = name;
  return id;
}

void MemoryArbiter::UnregisterTenant(uint64_t tenant_id) {
  {
    MutexLock lock(&mu_);
    auto it = tenants_.find(tenant_id);
    if (it == tenants_.end()) return;
    // Attachments detach in ~DBImpl, which runs before the store releases
    // its tenant registration.
    assert(it->second.attachments == 0);
    tenants_.erase(it);
  }
  // Outside mu_: cache shard mutexes are below the arbiter's in no
  // particular order, so keep the two uncoupled.
  shared_cache_->PurgeOwner(tenant_id);
}

TenantResidency MemoryArbiter::Residency(uint64_t tenant_id) const {
  TenantResidency r;
  r.tenant_id = tenant_id;
  {
    MutexLock lock(&mu_);
    auto it = tenants_.find(tenant_id);
    if (it != tenants_.end()) {
      r.name = it->second.name;
      r.arbiter_forced_flushes = it->second.forced_flushes;
      r.attachments = it->second.attachments;
    }
    for (const auto& [id, a] : attachments_) {
      if (a.tenant_id == tenant_id) r.memtable_bytes += a.bytes;
    }
  }
  const lsm::CacheOwnerStats cs = shared_cache_->OwnerStats(tenant_id);
  r.cache_bytes = cs.charge;
  r.cache_evictions = cs.evictions;
  return r;
}

std::vector<TenantResidency> MemoryArbiter::AllResidency() const {
  std::vector<uint64_t> ids;
  {
    MutexLock lock(&mu_);
    ids.reserve(tenants_.size());
    for (const auto& [id, t] : tenants_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  std::vector<TenantResidency> out;
  out.reserve(ids.size());
  for (const uint64_t id : ids) out.push_back(Residency(id));
  return out;
}

uint64_t MemoryArbiter::flush_requests() const {
  MutexLock lock(&mu_);
  return flush_requests_;
}

uint64_t MemoryArbiter::Attach(uint64_t tenant_id,
                               std::function<void()> request_flush) {
  MutexLock lock(&mu_);
  const uint64_t id = ++next_attachment_id_;
  Attachment& a = attachments_[id];
  a.tenant_id = tenant_id;
  a.request_flush = std::move(request_flush);
  // A fresh attachment starts "warm": it should not be the instant victim
  // just because it has never written.
  a.last_write_tick = ++tick_;
  auto t = tenants_.find(tenant_id);
  if (t != tenants_.end()) ++t->second.attachments;
  return id;
}

void MemoryArbiter::Detach(uint64_t attachment_id) {
  MutexLock lock(&mu_);
  auto it = attachments_.find(attachment_id);
  if (it == attachments_.end()) return;
  const Attachment& a = it->second;
  total_usage_.store(total_usage_.load(std::memory_order_relaxed) - a.bytes,
                     std::memory_order_relaxed);
  if (a.flush_requested) {
    assert(pending_release_ >= a.bytes_at_request);
    pending_release_ -= a.bytes_at_request;
  }
  auto t = tenants_.find(a.tenant_id);
  if (t != tenants_.end()) --t->second.attachments;
  attachments_.erase(it);
}

void MemoryArbiter::UpdateUsage(uint64_t attachment_id, uint64_t bytes,
                                bool wrote) {
  MutexLock lock(&mu_);
  auto it = attachments_.find(attachment_id);
  if (it == attachments_.end()) return;  // detached; late flush completion
  Attachment& a = it->second;
  total_usage_.store(
      total_usage_.load(std::memory_order_relaxed) - a.bytes + bytes,
      std::memory_order_relaxed);
  a.bytes = bytes;
  if (wrote) a.last_write_tick = ++tick_;
  if (a.flush_requested && bytes < a.bytes_at_request) {
    // The requested flush (or enough of it) landed; the pick is spent.
    a.flush_requested = false;
    assert(pending_release_ >= a.bytes_at_request);
    pending_release_ -= a.bytes_at_request;
  }
  MaybePickVictims();
}

void MemoryArbiter::MaybePickVictims() {
  // Victims are picked while usage *net of flushes already in flight*
  // stays above the watermark, so one burst doesn't mark every tenant.
  while (total_usage_.load(std::memory_order_relaxed) >
         watermark_bytes_ + pending_release_) {
    Attachment* best = nullptr;
    for (auto& [id, a] : attachments_) {
      if (a.flush_requested || a.bytes < options_.min_victim_bytes) continue;
      if (best == nullptr || a.last_write_tick < best->last_write_tick ||
          (a.last_write_tick == best->last_write_tick &&
           a.bytes > best->bytes)) {
        best = &a;
      }
    }
    if (best == nullptr) break;  // nothing eligible; in-flight flushes decide
    best->flush_requested = true;
    best->bytes_at_request = best->bytes;
    pending_release_ += best->bytes;
    ++flush_requests_;
    auto t = tenants_.find(best->tenant_id);
    if (t != tenants_.end()) ++t->second.forced_flushes;
    // Non-blocking by the WriteMemoryPool contract; invoked under mu_ so
    // Detach doubles as a callback barrier.
    best->request_flush();
  }
}

double MemoryArbiter::GlobalPressure() const {
  const uint64_t usage = total_usage_.load(std::memory_order_relaxed);
  if (usage <= watermark_bytes_) return 0.0;
  const uint64_t budget = options_.write_budget_bytes;
  if (usage >= budget || budget <= watermark_bytes_) return 1.0;
  return static_cast<double>(usage - watermark_bytes_) /
         static_cast<double>(budget - watermark_bytes_);
}

}  // namespace lsmio
