// FStream API (paper §3.1.6): a C++ IOStream-like interface over the LSMIO
// store — "a user-space POSIX implementation" the developer links against.
// File bodies are sharded into chunk values; a std::streambuf implementation
// provides the standard open/read/write/seekp/tellp/rdbuf/fail/good/flush/
// close surface via std::iostream.
//
//   lsmio::FStreamApi::Initialize(options, "/dir/store");
//   {
//     lsmio::FStream out("results.dat", std::ios::out);
//     out << "hello";
//     out.flush();
//   }
//   lsmio::FStreamApi::WriteBarrier();
//   lsmio::FStreamApi::Cleanup();
#pragma once

#include <istream>
#include <map>
#include <memory>
#include <streambuf>
#include <string>

#include "core/manager.h"

namespace lsmio {

/// Static lifecycle of the store backing all FStream objects (paper Table 3:
/// initialize/cleanup/writeBarrier are static methods).
class FStreamApi {
 public:
  /// Opens (or creates) the backing store. Must precede any FStream use.
  static Status Initialize(const LsmioOptions& options, const std::string& path);

  /// Flushes all pending writes to storage; blocks until done.
  static Status WriteBarrier();

  /// Closes the backing store; outstanding FStream objects must be closed.
  static Status Cleanup();

  /// The process-wide manager (null before Initialize / after Cleanup).
  static Manager* manager();
};

/// streambuf storing the stream's bytes in chunked K/V records.
class KvStreamBuf final : public std::streambuf {
 public:
  /// `manager` must outlive the buffer. Loads existing contents metadata.
  KvStreamBuf(Manager* manager, std::string name, std::ios_base::openmode mode);
  ~KvStreamBuf() override;

  KvStreamBuf(const KvStreamBuf&) = delete;
  KvStreamBuf& operator=(const KvStreamBuf&) = delete;

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// Logical size of the stored file.
  [[nodiscard]] uint64_t size() const noexcept { return size_; }

  /// Persists the current chunk and size metadata.
  int sync() override;

 protected:
  int_type overflow(int_type ch) override;
  int_type underflow() override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;
  std::streampos seekoff(std::streamoff off, std::ios_base::seekdir dir,
                         std::ios_base::openmode which) override;
  std::streampos seekpos(std::streampos pos, std::ios_base::openmode which) override;

 private:
  std::string ChunkKey(uint64_t chunk_index) const;
  std::string MetaKey() const;
  void SyncPositionFromGetArea();
  Status LoadChunk(uint64_t chunk_index);
  void PrefetchFrom(uint64_t chunk_index);
  Status FlushChunk();
  Status LoadMeta();
  Status StoreMeta();

  Manager* manager_;
  std::string name_;
  uint64_t chunk_size_;
  uint64_t size_ = 0;      // logical file size
  uint64_t position_ = 0;  // current byte position
  uint64_t loaded_chunk_ = ~0ULL;
  bool chunk_dirty_ = false;
  bool ok_ = true;
  bool readable_ = false;
  std::string chunk_;  // working buffer of the loaded chunk
  /// Chunks batch-loaded ahead of the read position (consumed by LoadChunk,
  /// so a later read-modify-write never sees a stale copy).
  std::map<uint64_t, std::string> prefetched_;
};

/// An iostream over the LSMIO store. Matches the std::fstream surface the
/// paper lists: open/read/write/seekp/tellp/rdbuf/fail/good/flush/close.
class FStream : public std::iostream {
 public:
  FStream() : std::iostream(nullptr) {}
  /// Opens `name` with the given mode (in|out|trunc honoured).
  FStream(const std::string& name, std::ios_base::openmode mode);
  ~FStream() override;

  void open(const std::string& name, std::ios_base::openmode mode);
  [[nodiscard]] bool is_open() const noexcept { return buf_ != nullptr; }
  void close();

  /// Size of the stored file (metadata read).
  [[nodiscard]] uint64_t size() const noexcept { return buf_ ? buf_->size() : 0; }

 private:
  std::unique_ptr<KvStreamBuf> buf_;
};

/// Removes a stored file (all chunks + metadata).
Status FStreamRemove(const std::string& name);

/// True if the file exists in the store.
bool FStreamExists(const std::string& name);

}  // namespace lsmio
