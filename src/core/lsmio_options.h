// LSMIO configuration (paper §3.1.1–3.1.2): the store customizations the
// paper applies to its LSM backend, the batching mode used for backends
// that cannot disable their WAL (the LevelDB case), and MPI options.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace lsmio::vfs {
class Vfs;
}
namespace lsmio::minimpi {
class Comm;
}

namespace lsmio {

class MemoryArbiter;

/// How writeBarrier (and barrier-implying operations) wait.
enum class BarrierMode {
  kSync,   // block until data is flushed to storage
  kAsync,  // trigger the flush and return
};

struct LsmioOptions {
  /// File system the store lives on; null = process PosixVfs.
  vfs::Vfs* vfs = nullptr;

  // --- paper §3.1.1 store customizations (defaults = checkpoint config) ---
  bool disable_wal = true;
  bool disable_compression = true;
  bool disable_cache = true;
  bool disable_compaction = true;
  /// Write synchronously (every put reaches storage before returning).
  bool sync_writes = false;
  /// Memory-map table reads.
  bool use_mmap = false;
  /// In-memory aggregation buffer (the paper matches ADIOS2's 32 MB).
  uint64_t write_buffer_size = 32 * MiB;
  /// SSTable block size.
  uint64_t block_size = 4 * KiB;

  // --- read path ---
  /// Keep each open table's index and filter blocks pinned for the table's
  /// lifetime instead of round-tripping through the block cache per probe.
  bool pin_index_and_filter = true;
  /// Readahead window for compaction input scans (0 disables).
  uint64_t compaction_readahead_bytes = 1 * MiB;

  // --- write pipeline ---
  /// Background threads shared by flush and compaction. The two are
  /// scheduled independently, so with >= 2 threads a long compaction never
  /// delays a flush; at most one flush runs at a time, preserving the
  /// paper's single flushing thread (§3.1.2).
  int background_threads = 2;
  /// Total memtables (1 active + N-1 immutable queued for flush). Values
  /// > 2 let checkpoint bursts roll to a fresh buffer instead of stalling
  /// behind an in-flight flush. Minimum effective value is 2.
  int max_write_buffer_number = 2;
  /// Group commit: concurrent writers batch into one WAL append/fsync.
  bool enable_group_commit = true;
  /// Soft L0 trigger for graduated write backpressure: from this many L0
  /// files the engine paces writes with per-batch delays instead of
  /// running into the hard stop-trigger stall. 0 disables pacing. Ignored
  /// in the paper's checkpoint configuration (disable_compaction), where
  /// L0 is unbounded and writes are never delayed.
  int l0_slowdown_writes_trigger = 20;
  /// Budget on background-I/O bytes/sec (flush + compaction table writes,
  /// store-wide across shards); flushes preempt compaction writes.
  /// 0 = unlimited.
  uint64_t bytes_per_sec = 0;
  /// Hash shards the store's keyspace is split into (1 = single LSM,
  /// previous on-disk format). N > 1 runs N sub-LSMs with independent
  /// write queues/WALs and concurrent flushes/compactions; fixed at store
  /// creation. See lsm::Options::num_shards.
  int num_shards = 1;

  /// Open the store without mutating it (concurrent multi-rank readers of
  /// one store, e.g. the ADIOS2-plugin read path, require this).
  bool read_only = false;

  // --- multi-tenant memory arbitration (DESIGN.md §15) ---
  /// Process-wide memory arbiter shared by many stores. When set, this
  /// store registers as a tenant: its memtables draw from the arbiter's
  /// global write budget (write_buffer_size stops being the flush trigger;
  /// the arbiter picks flush victims under aggregate pressure) and — with
  /// disable_cache=false — its block reads go through the arbiter's shared,
  /// per-tenant-charged cache. The arbiter must outlive the store.
  MemoryArbiter* memory_arbiter = nullptr;

  // --- §3.1.2 Local Store behaviour ---
  /// Aggregate writes in a WriteBatch and apply them at the write barrier
  /// (the LevelDB-style mode; with a WAL-less backend this is unnecessary
  /// but remains available for ablation).
  bool use_write_batch = false;

  /// Default barrier behaviour.
  BarrierMode barrier_mode = BarrierMode::kSync;

  // --- §3.1.3 MPI integration ---
  /// Optional communicator. When set with `collective_io`, puts are routed
  /// to an owner rank by key hash (the paper's future-work collective mode).
  minimpi::Comm* comm = nullptr;
  bool collective_io = false;

  /// Chunk size used by the FStream API to shard file bodies into values.
  uint64_t fstream_chunk_size = 1 * MiB;
};

}  // namespace lsmio
