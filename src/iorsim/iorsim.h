// iorsim — the IOR-like benchmark driver (DESIGN.md §2 substitution for the
// IOR binary the paper uses).
//
// A workload is "N tasks × segments × blockSize, written in transferSize
// calls" against one of five APIs:
//   kPosix        IOR baseline: shared file (or -F file-per-process)
//   kH5l          IOR -a HDF5 equivalent: one shared h5l dataset, slab writes
//   kA2           ADIOS2/BP5 equivalent: BPLite engine, deferred puts
//   kA2Lsmio      ADIOS2 with the LSMIO plugin engine (paper §4.3)
//   kLsmio        LSMIO baseline through the K/V API (paper §4.1/4.2)
//
// The driver runs the *real* library code on N in-process ranks (minimpi),
// records every I/O operation through TraceVfs over a shared MemVfs, and
// replays the traces on the simulated Lustre cluster to obtain bandwidth.
// Read runs first perform the write untimed, then time the read-back.
#pragma once

#include <cstdint>
#include <string>

#include "pfs/sim.h"

namespace lsmio::iorsim {

enum class Api { kPosix, kH5l, kA2, kA2Lsmio, kLsmio };

/// Name for reports ("POSIX", "HDF5", "ADIOS2", ...).
const char* ApiName(Api api);

struct Workload {
  Api api = Api::kPosix;
  int num_tasks = 1;
  /// Contiguous bytes a task owns within one segment.
  uint64_t block_size = 1 * MiB;
  /// Bytes per write/read call (the paper sets transfer == block).
  uint64_t transfer_size = 1 * MiB;
  /// Number of segments (file = segments × tasks × block bytes).
  int segments = 16;
  /// IOR -F: one file per task instead of a shared file (POSIX only).
  bool file_per_process = false;
  /// Two-phase collective I/O with stripe_count aggregators (POSIX/H5L).
  bool collective = false;
  /// Time the read-back phase instead of the write phase.
  bool read = false;
  /// Buffer configuration shared by ADIOS2-likes and LSMIO (paper: 32 MB).
  uint64_t buffer_chunk = 32 * MiB;
  /// Deterministic payload seed.
  uint64_t seed = 0x10f5;

  /// LSMIO engine knobs (paper §3.1.1 customizations); defaults are the
  /// paper's checkpoint configuration. The ablation benchmarks sweep these.
  struct EngineKnobs {
    bool disable_wal = true;
    bool disable_compression = true;
    bool disable_compaction = true;
    bool sync_writes = false;
    uint64_t block_size = 4 * KiB;
  };
  EngineKnobs lsmio_knobs;

  [[nodiscard]] uint64_t BytesPerTask() const {
    return static_cast<uint64_t>(segments) * block_size;
  }
  [[nodiscard]] uint64_t TotalBytes() const {
    return static_cast<uint64_t>(num_tasks) * BytesPerTask();
  }
};

/// Per-API virtual CPU cost model (nanoseconds per payload byte on the
/// write and read paths). Defaults are the calibrated values used by the
/// paper-figure benchmarks; see EXPERIMENTS.md.
struct CostModel {
  double posix_write = 0.10, posix_read = 0.10;
  double h5l_write = 2.00, h5l_read = 2.00;        // datatype conversion etc.
  double a2_write = 29.0, a2_read = 1.00;          // marshalling + buffer copies
  double plugin_write = 13.0, plugin_read = 2.00;  // A2 layers + serialization
  double lsmio_write = 1.30, lsmio_read = 1.40;    // memtable insert + build

  [[nodiscard]] double WriteNsPerByte(Api api) const;
  [[nodiscard]] double ReadNsPerByte(Api api) const;
};

struct RunResult {
  pfs::SimResult sim;
  /// Bandwidth of the timed phase in bytes/s (write or read per workload).
  double bandwidth = 0;
  /// Total file bytes materialized in the in-memory data plane (includes
  /// format overhead/amplification; diagnostics).
  uint64_t stored_bytes = 0;
};

/// Runs the workload and simulates it on `sim_options`' cluster.
/// Deterministic: same inputs give bit-identical results.
RunResult RunWorkload(const Workload& workload, const pfs::SimOptions& sim_options,
                      const CostModel& costs = {});

}  // namespace lsmio::iorsim
