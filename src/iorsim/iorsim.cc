#include "iorsim/iorsim.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "a2/a2.h"
#include "common/random.h"
#include "core/lsmio.h"
#include "h5l/h5l.h"
#include "minimpi/minimpi.h"
#include "vfs/mem_vfs.h"
#include "vfs/trace_vfs.h"

namespace lsmio::iorsim {

const char* ApiName(Api api) {
  switch (api) {
    case Api::kPosix: return "POSIX";
    case Api::kH5l: return "HDF5";
    case Api::kA2: return "ADIOS2";
    case Api::kA2Lsmio: return "LSMIO-plugin";
    case Api::kLsmio: return "LSMIO";
  }
  return "?";
}

double CostModel::WriteNsPerByte(Api api) const {
  switch (api) {
    case Api::kPosix: return posix_write;
    case Api::kH5l: return h5l_write;
    case Api::kA2: return a2_write;
    case Api::kA2Lsmio: return plugin_write;
    case Api::kLsmio: return lsmio_write;
  }
  return 0;
}

double CostModel::ReadNsPerByte(Api api) const {
  switch (api) {
    case Api::kPosix: return posix_read;
    case Api::kH5l: return h5l_read;
    case Api::kA2: return a2_read;
    case Api::kA2Lsmio: return plugin_read;
    case Api::kLsmio: return lsmio_read;
  }
  return 0;
}

namespace {

constexpr uint64_t kSetupBarrier = 1;
constexpr uint64_t kPhaseStartBarrier = 2;
constexpr uint64_t kPhaseEndBarrier = 3;
constexpr uint64_t kMidBarrier = 4;        // between untimed write and timed read
constexpr uint64_t kReadOpenBarrier = 5;   // after read-side opens
constexpr uint64_t kRoundBarrierBase = 1000;  // collective two-phase rounds

const std::string kDir = "/bench";

[[noreturn]] void Fail(const Status& status, const char* where) {
  throw std::runtime_error(std::string("iorsim ") + where + ": " + status.ToString());
}

void Check(const Status& status, const char* where) {
  if (!status.ok()) Fail(status, where);
}

template <typename T>
T Take(Result<T> result, const char* where) {
  if (!result.ok()) Fail(result.status(), where);
  return std::move(result).value();
}

/// One rank's drive of the workload. The paper times "right after the first
/// MPI barrier and before the first I/O operation until after the last I/O
/// operation and a second MPI barrier" — so file/store/engine opens happen
/// in the setup stage, and the timed region covers the transfer loop plus
/// the closing flush (which is where LSM flushes and BP buffers drain).
class Driver {
 public:
  Driver(const Workload& workload, const CostModel& costs, vfs::TraceContext& ctx,
         vfs::TraceVfs& fs, minimpi::Comm& comm)
      : w_(workload),
        costs_(costs),
        ctx_(ctx),
        fs_(fs),
        comm_(comm),
        rank_(comm.rank()),
        payload_(MakePayload()),
        payload_big_(MiB, static_cast<char>('A' + rank_ % 26)) {}

  void Run() {
    CreateStructure();
    VirtualBarrier(kSetupBarrier);
    OpenForWrite();
    VirtualBarrier(kPhaseStartBarrier);

    if (!w_.read) ctx_.RecordPhaseBegin(rank_);
    WriteLoop();
    FinishWrite();
    if (!w_.read) {
      ctx_.RecordPhaseEnd(rank_);
      VirtualBarrier(kPhaseEndBarrier);
      return;
    }

    VirtualBarrier(kMidBarrier);
    OpenForRead();
    VirtualBarrier(kReadOpenBarrier);
    ctx_.RecordPhaseBegin(rank_);
    ReadLoop();
    ctx_.RecordPhaseEnd(rank_);
    VirtualBarrier(kPhaseEndBarrier);
  }

 private:
  // --- helpers -----------------------------------------------------------------

  std::string MakePayload() const {
    std::string payload(w_.transfer_size, '\0');
    Rng rng(w_.seed + static_cast<uint64_t>(rank_));
    rng.Fill(payload.data(), payload.size());
    return payload;
  }

  /// Virtual + real barrier pair: aligns both the simulated clock and the
  /// driving threads.
  void VirtualBarrier(uint64_t id) {
    ctx_.RecordBarrier(rank_, id);
    comm_.Barrier();
  }

  void ChargeCpu(uint64_t bytes, double ns_per_byte) {
    ctx_.RecordCompute(rank_, static_cast<uint64_t>(
                                  static_cast<double>(bytes) * ns_per_byte));
  }

  /// Byte offset of (segment, this rank) in the shared file / dataset.
  [[nodiscard]] uint64_t SlabOffset(int segment) const {
    return (static_cast<uint64_t>(segment) * static_cast<uint64_t>(w_.num_tasks) +
            static_cast<uint64_t>(rank_)) * w_.block_size;
  }

  [[nodiscard]] int TransfersPerBlock() const {
    return static_cast<int>(w_.block_size / w_.transfer_size);
  }

  std::string LsmioKey(int segment, int transfer) const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "ior!%06d!%08d!%08d", rank_, segment, transfer);
    return buf;
  }

  [[nodiscard]] bool IsAggregator() const { return rank_ < Aggregators(); }
  [[nodiscard]] int Aggregators() const {
    return std::min(w_.num_tasks, aggregator_count_);
  }
  [[nodiscard]] uint64_t RoundBytes() const {
    return static_cast<uint64_t>(w_.num_tasks) * w_.block_size;
  }
  [[nodiscard]] uint64_t PerAggregator() const {
    return RoundBytes() / static_cast<uint64_t>(Aggregators());
  }

  void VerifyPayload(const Slice& got, const char* where) const {
    if (got.size() != payload_.size() ||
        std::memcmp(got.data(), payload_.data(), got.size()) != 0) {
      Fail(Status::Corruption("read-back mismatch"), where);
    }
  }

  // --- setup -------------------------------------------------------------------

  void CreateStructure() {
    if (w_.api == Api::kH5l && rank_ == 0) {
      auto file = Take(h5l::File::Create(fs_, kDir + "/ior.h5l"), "h5l create");
      Check(file->root()
                ->CreateDataset("ior", w_.TotalBytes(), 1, h5l::Layout::kContiguous)
                .status(),
            "h5l dataset create");
      Check(file->Close(), "h5l close (create)");
    }
    if (w_.api == Api::kA2Lsmio) RegisterLsmioPlugin();
  }

  void OpenForWrite() {
    switch (w_.api) {
      case Api::kPosix: {
        if (w_.collective && !IsAggregator()) return;
        const std::string path = w_.file_per_process
                                     ? kDir + "/ior." + std::to_string(rank_)
                                     : kDir + "/ior.dat";
        Check(fs_.OpenFileHandle(path, /*create=*/true, {}, &posix_handle_),
              "posix open");
        break;
      }
      case Api::kH5l: {
        // Every rank holds the file open: in collective mode non-aggregators
        // still participate in metadata updates (PHDF5 semantics).
        h5l::FileConfig config;
        config.header_update_interval = 4;  // metadata-cache batching
        h5l_file_ =
            Take(h5l::File::Open(fs_, kDir + "/ior.h5l", config), "h5l open");
        h5l_dataset_ = Take(h5l_file_->root()->OpenDataset("ior"), "h5l dataset");
        break;
      }
      case Api::kA2:
      case Api::kA2Lsmio: {
        adios_ = std::make_unique<a2::Adios>(fs_, "", rank_, w_.num_tasks);
        a2::IO& io = adios_->DeclareIO("ior");
        io.SetParameter("BufferChunkSize", std::to_string(w_.buffer_chunk));
        if (w_.api == Api::kA2Lsmio) io.SetEngine(kLsmioPluginName);
        a2_var_ = io.DefineVariable("ior", w_.TotalBytes(), 0, w_.transfer_size, 1);
        a2_engine_ = Take(io.Open(A2Path(), a2::Mode::kWrite), "a2 open");
        break;
      }
      case Api::kLsmio: {
        LsmioOptions options;
        options.vfs = &fs_;
        options.write_buffer_size = w_.buffer_chunk;
        options.disable_wal = w_.lsmio_knobs.disable_wal;
        options.disable_compression = w_.lsmio_knobs.disable_compression;
        options.disable_compaction = w_.lsmio_knobs.disable_compaction;
        options.sync_writes = w_.lsmio_knobs.sync_writes;
        options.block_size = w_.lsmio_knobs.block_size;
        Check(Manager::Open(options, kDir + "/lsmio." + std::to_string(rank_),
                            &manager_),
              "lsmio open");
        break;
      }
    }
  }

  [[nodiscard]] std::string A2Path() const {
    return kDir + (w_.api == Api::kA2 ? "/ior.bp" : "/ior.lsmio-bp");
  }

  // --- write loop ---------------------------------------------------------------

  void WriteLoop() {
    switch (w_.api) {
      case Api::kPosix:
        if (w_.collective) CollectiveWriteLoop(/*h5l=*/false);
        else PosixWriteLoop();
        break;
      case Api::kH5l:
        if (w_.collective) CollectiveWriteLoop(/*h5l=*/true);
        else H5lWriteLoop();
        break;
      case Api::kA2:
      case Api::kA2Lsmio:
        A2WriteLoop();
        break;
      case Api::kLsmio:
        LsmioWriteLoop();
        break;
    }
  }

  void PosixWriteLoop() {
    const int transfers = TransfersPerBlock();
    for (int segment = 0; segment < w_.segments; ++segment) {
      const uint64_t base = w_.file_per_process
                                ? static_cast<uint64_t>(segment) * w_.block_size
                                : SlabOffset(segment);
      for (int t = 0; t < transfers; ++t) {
        ChargeCpu(w_.transfer_size, costs_.WriteNsPerByte(Api::kPosix));
        Check(posix_handle_->WriteAt(
                  base + static_cast<uint64_t>(t) * w_.transfer_size, payload_),
              "posix write");
      }
    }
  }

  void H5lWriteLoop() {
    const int transfers = TransfersPerBlock();
    for (int segment = 0; segment < w_.segments; ++segment) {
      const uint64_t base = SlabOffset(segment);
      for (int t = 0; t < transfers; ++t) {
        ChargeCpu(w_.transfer_size, costs_.WriteNsPerByte(Api::kH5l));
        Check(h5l_dataset_->Write(
                  base + static_cast<uint64_t>(t) * w_.transfer_size,
                  w_.transfer_size, payload_),
              "h5l write");
      }
    }
  }

  // Two-phase collective write for POSIX and H5L: `Aggregators()` ranks
  // collect each round's data over the network and write it contiguously.
  void CollectiveWriteLoop(bool h5l) {
    const double shuffle_ns = shuffle_ns_per_byte_;
    const double api_cpu =
        costs_.WriteNsPerByte(h5l ? Api::kH5l : Api::kPosix);

    // ROMIO-style collective buffering: each two-phase round covers up to
    // cb_buffer_size bytes of aggregate file space, so several segments
    // batch into one exchange + one contiguous write per aggregator.
    constexpr uint64_t kCbBufferBytes = 16 * MiB;
    const int segments_per_round = std::max<int>(
        1, static_cast<int>(kCbBufferBytes / RoundBytes()));

    int round = 0;
    for (int segment = 0; segment < w_.segments;
         segment += segments_per_round, ++round) {
      const int batch =
          std::min(segments_per_round, w_.segments - segment);
      const uint64_t my_bytes = static_cast<uint64_t>(batch) * w_.block_size;
      const uint64_t round_total = my_bytes * static_cast<uint64_t>(w_.num_tasks);
      const uint64_t agg_share =
          round_total / static_cast<uint64_t>(Aggregators());

      // Phase 1: shuffle — every rank ships its batch to aggregators.
      ChargeCpu(my_bytes, shuffle_ns + api_cpu);
      if (IsAggregator()) ChargeCpu(agg_share, shuffle_ns);
      VirtualBarrier(kRoundBarrierBase + 2 * static_cast<uint64_t>(round));

      // Phase 2: aggregators write contiguous regions.
      if (IsAggregator()) {
        const uint64_t offset =
            static_cast<uint64_t>(segment) * RoundBytes() +
            static_cast<uint64_t>(rank_) * agg_share;
        uint64_t written = 0;
        while (written < agg_share) {
          const uint64_t piece = std::min<uint64_t>(MiB, agg_share - written);
          if (h5l) {
            Check(h5l_dataset_->Write(offset + written, piece,
                                      Slice(payload_big_.data(), piece)),
                  "h5l collective write");
          } else {
            Check(posix_handle_->WriteAt(offset + written,
                                         Slice(payload_big_.data(), piece)),
                  "posix collective write");
          }
          written += piece;
        }
      }
      // Collective (P)HDF5 keeps every rank's metadata cache coherent: all
      // ranks flush their view of the object header each round, and with
      // more writers than the stripe count those updates lock-ping-pong —
      // why collective mode stops paying off for HDF5 at high concurrency
      // (paper §4.4).
      if (h5l) {
        Check(h5l_dataset_->UpdateHeader(), "h5l collective metadata");
      }
      VirtualBarrier(kRoundBarrierBase + 2 * static_cast<uint64_t>(round) + 1);
    }
  }

  void A2WriteLoop() {
    const int transfers = TransfersPerBlock();
    const double cpu = costs_.WriteNsPerByte(w_.api);
    for (int segment = 0; segment < w_.segments; ++segment) {
      const uint64_t base = SlabOffset(segment);
      for (int t = 0; t < transfers; ++t) {
        ChargeCpu(w_.transfer_size, cpu);
        a2_var_->SetSelection(base + static_cast<uint64_t>(t) * w_.transfer_size,
                              w_.transfer_size);
        Check(a2_engine_->Put(*a2_var_, payload_.data(), a2::PutMode::kSync),
              "a2 put");
      }
      Check(a2_engine_->PerformPuts(), "a2 PerformPuts");
    }
  }

  void LsmioWriteLoop() {
    const int transfers = TransfersPerBlock();
    const double cpu = costs_.WriteNsPerByte(Api::kLsmio);
    for (int segment = 0; segment < w_.segments; ++segment) {
      for (int t = 0; t < transfers; ++t) {
        ChargeCpu(w_.transfer_size, cpu);
        Check(manager_->Put(LsmioKey(segment, t), payload_), "lsmio put");
      }
    }
  }

  /// The closing flush belongs to the timed region (paper: ADIOS2 measures
  /// PerformPuts + close; LSMIO's last Put triggers the implicit barrier).
  void FinishWrite() {
    switch (w_.api) {
      case Api::kPosix:
        if (posix_handle_ != nullptr) {
          Check(posix_handle_->Sync(), "posix sync");
          Check(posix_handle_->Close(), "posix close");
          posix_handle_.reset();
        }
        break;
      case Api::kH5l:
        if (h5l_file_ != nullptr) {
          Check(h5l_file_->Close(), "h5l close");
          h5l_dataset_.reset();
          h5l_file_.reset();
        }
        break;
      case Api::kA2:
      case Api::kA2Lsmio:
        Check(a2_engine_->Close(), "a2 close");
        a2_engine_.reset();
        break;
      case Api::kLsmio:
        Check(manager_->WriteBarrier(BarrierMode::kSync), "lsmio barrier");
        break;
    }
  }

  // --- read pass ---------------------------------------------------------------

  void OpenForRead() {
    switch (w_.api) {
      case Api::kPosix: {
        if (w_.collective && !IsAggregator()) return;
        const std::string path = w_.file_per_process
                                     ? kDir + "/ior." + std::to_string(rank_)
                                     : kDir + "/ior.dat";
        Check(fs_.OpenFileHandle(path, false, {}, &posix_handle_),
              "posix open (read)");
        break;
      }
      case Api::kH5l: {
        h5l_file_ = Take(h5l::File::Open(fs_, kDir + "/ior.h5l"), "h5l open (read)");
        h5l_dataset_ =
            Take(h5l_file_->root()->OpenDataset("ior"), "h5l dataset (read)");
        break;
      }
      case Api::kA2:
      case Api::kA2Lsmio: {
        a2::IO& io = adios_->DeclareIO("ior-read");
        io.SetParameter("BufferChunkSize", std::to_string(w_.buffer_chunk));
        if (w_.api == Api::kA2Lsmio) io.SetEngine(kLsmioPluginName);
        a2_var_ = io.DefineVariable("ior", w_.TotalBytes(), 0, w_.transfer_size, 1);
        a2_engine_ = Take(io.Open(A2Path(), a2::Mode::kRead), "a2 open (read)");
        break;
      }
      case Api::kLsmio:
        break;  // the write-side manager stays open (read-after-barrier)
    }
  }

  void ReadLoop() {
    switch (w_.api) {
      case Api::kPosix:
        if (w_.collective) CollectivePosixReadLoop();
        else PosixReadLoop();
        break;
      case Api::kH5l: H5lReadLoop(); break;
      case Api::kA2:
      case Api::kA2Lsmio: A2ReadLoop(); break;
      case Api::kLsmio: LsmioReadLoop(); break;
    }
  }

  void PosixReadLoop() {
    const int transfers = TransfersPerBlock();
    std::string scratch;
    for (int segment = 0; segment < w_.segments; ++segment) {
      const uint64_t base = w_.file_per_process
                                ? static_cast<uint64_t>(segment) * w_.block_size
                                : SlabOffset(segment);
      for (int t = 0; t < transfers; ++t) {
        Slice result;
        Check(posix_handle_->ReadAt(
                  base + static_cast<uint64_t>(t) * w_.transfer_size,
                  w_.transfer_size, &result, &scratch),
              "posix read");
        ChargeCpu(w_.transfer_size, costs_.ReadNsPerByte(Api::kPosix));
        VerifyPayload(result, "posix read verify");
      }
    }
  }

  void CollectivePosixReadLoop() {
    // Two-phase read: aggregators read contiguous regions, then scatter.
    const double shuffle_ns = shuffle_ns_per_byte_;
    std::string scratch;
    for (int segment = 0; segment < w_.segments; ++segment) {
      if (IsAggregator()) {
        const uint64_t offset = static_cast<uint64_t>(segment) * RoundBytes() +
                                static_cast<uint64_t>(rank_) * PerAggregator();
        uint64_t done = 0;
        while (done < PerAggregator()) {
          const uint64_t piece =
              std::min<uint64_t>(w_.transfer_size, PerAggregator() - done);
          Slice result;
          Check(posix_handle_->ReadAt(offset + done, piece, &result, &scratch),
                "posix collective read");
          done += piece;
        }
        ChargeCpu(PerAggregator(), shuffle_ns);  // scatter send
      }
      ChargeCpu(w_.block_size, shuffle_ns);  // everyone receives its block
      VirtualBarrier(kRoundBarrierBase + 500 + static_cast<uint64_t>(segment));
    }
  }

  void H5lReadLoop() {
    const int transfers = TransfersPerBlock();
    std::string out;
    for (int segment = 0; segment < w_.segments; ++segment) {
      const uint64_t base = SlabOffset(segment);
      for (int t = 0; t < transfers; ++t) {
        Check(h5l_dataset_->Read(base + static_cast<uint64_t>(t) * w_.transfer_size,
                                 w_.transfer_size, &out),
              "h5l read");
        ChargeCpu(w_.transfer_size, costs_.ReadNsPerByte(Api::kH5l));
        VerifyPayload(out, "h5l read verify");
      }
    }
  }

  void A2ReadLoop() {
    const int transfers = TransfersPerBlock();
    const double cpu = costs_.ReadNsPerByte(w_.api);
    std::string out(w_.transfer_size, '\0');
    for (int segment = 0; segment < w_.segments; ++segment) {
      const uint64_t base = SlabOffset(segment);
      for (int t = 0; t < transfers; ++t) {
        a2_var_->SetSelection(base + static_cast<uint64_t>(t) * w_.transfer_size,
                              w_.transfer_size);
        Check(a2_engine_->Get(*a2_var_, out.data()), "a2 get");
        ChargeCpu(w_.transfer_size, cpu);
        VerifyPayload(out, "a2 read verify");
      }
    }
  }

  void LsmioReadLoop() {
    const int transfers = TransfersPerBlock();
    const double cpu = costs_.ReadNsPerByte(Api::kLsmio);
    std::string out;
    for (int segment = 0; segment < w_.segments; ++segment) {
      for (int t = 0; t < transfers; ++t) {
        // Synchronous point lookups — the read pattern the paper identifies
        // as LSMIO's weakness (§4.5).
        Check(manager_->Get(LsmioKey(segment, t), &out), "lsmio get");
        ChargeCpu(w_.transfer_size, cpu);
        VerifyPayload(out, "lsmio read verify");
      }
    }
  }

 public:
  // Collective parameters injected by RunWorkload (derived from the sim
  // cluster so the network model stays consistent).
  int aggregator_count_ = 4;
  double shuffle_ns_per_byte_ = 1.4;

 private:
  const Workload& w_;
  const CostModel& costs_;
  vfs::TraceContext& ctx_;
  vfs::TraceVfs& fs_;
  minimpi::Comm& comm_;
  int rank_;
  std::string payload_;
  std::string payload_big_;  // aggregator-side scratch (collective rounds)

  // Per-API open state.
  std::unique_ptr<vfs::FileHandle> posix_handle_;
  std::shared_ptr<h5l::File> h5l_file_;
  std::shared_ptr<h5l::Dataset> h5l_dataset_;
  std::unique_ptr<a2::Adios> adios_;
  a2::Variable* a2_var_ = nullptr;
  std::unique_ptr<a2::Engine> a2_engine_;
  std::unique_ptr<Manager> manager_;
};

}  // namespace

RunResult RunWorkload(const Workload& workload, const pfs::SimOptions& sim_options,
                      const CostModel& costs) {
  assert(workload.transfer_size > 0 && workload.block_size % workload.transfer_size == 0);

  vfs::MemVfs data_plane;
  vfs::TraceContext ctx(workload.num_tasks);

  minimpi::RunWorld(workload.num_tasks, [&](minimpi::Comm& comm) {
    vfs::TraceVfs fs(data_plane, ctx, comm.rank());
    Driver driver(workload, costs, ctx, fs, comm);
    driver.aggregator_count_ = sim_options.stripe.stripe_count;
    driver.shuffle_ns_per_byte_ = 1e9 / sim_options.cluster.client_nic_bw;
    driver.Run();
  });

  pfs::LustreSim sim(sim_options);
  RunResult result;
  result.sim = sim.Run(ctx);
  result.stored_bytes = data_plane.TotalBytes();
  result.bandwidth = workload.read ? result.sim.ReadBandwidth()
                                   : result.sim.WriteBandwidth();
  return result;
}

}  // namespace lsmio::iorsim
