#include "a2/a2.h"

#include "common/synchronization.h"


#include "a2/xml.h"
#include "common/logging.h"

namespace lsmio::a2 {

// --- engine registry -----------------------------------------------------------

namespace {

lsmio::Mutex& RegistryMutex() {
  static lsmio::Mutex mu;
  return mu;
}

std::map<std::string, EngineFactory>& Registry() {
  static std::map<std::string, EngineFactory> registry;
  return registry;
}

}  // namespace

void RegisterEngine(const std::string& type, EngineFactory factory) {
  lsmio::MutexLock lock(&RegistryMutex());
  Registry()[type] = std::move(factory);
}

bool IsEngineRegistered(const std::string& type) {
  lsmio::MutexLock lock(&RegistryMutex());
  return Registry().contains(type);
}

// Defined in bp_engine.cc.
Result<std::unique_ptr<Engine>> MakeBpLiteEngine(IO& io, const std::string& path,
                                                 Mode mode);

// --- IO -------------------------------------------------------------------------

Variable* IO::DefineVariable(const std::string& var_name, uint64_t global_count,
                             uint64_t offset, uint64_t count,
                             uint32_t element_size) {
  auto variable = std::make_unique<Variable>(var_name, global_count, offset,
                                             count, element_size);
  Variable* raw = variable.get();
  variables_[var_name] = std::move(variable);
  return raw;
}

Variable* IO::InquireVariable(const std::string& var_name) {
  auto it = variables_.find(var_name);
  return it == variables_.end() ? nullptr : it->second.get();
}

uint64_t IO::ParameterBytes(const std::string& key, uint64_t fallback) const {
  const std::string value = Parameter(key);
  if (value.empty()) return fallback;
  const auto parsed = ParseBytes(value);
  if (!parsed.ok()) {
    LSMIO_WARN << "bad byte-size parameter " << key << "='" << value << "'";
    return fallback;
  }
  return parsed.value();
}

Result<std::unique_ptr<Engine>> IO::Open(const std::string& path, Mode mode) {
  if (engine_type_ == "BPLite") {
    return MakeBpLiteEngine(*this, path, mode);
  }
  EngineFactory factory;
  {
    lsmio::MutexLock lock(&RegistryMutex());
    auto it = Registry().find(engine_type_);
    if (it == Registry().end()) {
      return Status::InvalidArgument("unknown engine type: " + engine_type_);
    }
    factory = it->second;
  }
  return factory(*this, path, mode);
}

// --- Adios ---------------------------------------------------------------------

Adios::Adios(vfs::Vfs& fs, std::string config_xml, int rank, int world_size)
    : fs_(fs), config_xml_(std::move(config_xml)), rank_(rank), world_size_(world_size) {}

IO& Adios::DeclareIO(const std::string& name) {
  auto it = ios_.find(name);
  if (it != ios_.end()) return *it->second;

  auto io = std::make_unique<IO>(name, fs_, rank_, world_size_);
  ApplyConfig(*io);
  IO& ref = *io;
  ios_[name] = std::move(io);
  return ref;
}

void Adios::ApplyConfig(IO& io) {
  if (config_xml_.empty()) return;
  auto parsed = xml::Parse(config_xml_);
  if (!parsed.ok()) {
    LSMIO_WARN << "bad A2 config xml: " << parsed.status().ToString();
    return;
  }
  const xml::Element& root = *parsed.value();
  if (root.name != "adios-config") {
    LSMIO_WARN << "A2 config root must be <adios-config>, got <" << root.name << ">";
    return;
  }
  for (const xml::Element* io_element : root.Children("io")) {
    if (io_element->Attr("name") != io.name()) continue;
    if (const xml::Element* engine = io_element->Child("engine")) {
      const std::string type = engine->Attr("type");
      if (!type.empty()) io.SetEngine(type);
      for (const xml::Element* parameter : engine->Children("parameter")) {
        io.SetParameter(parameter->Attr("key"), parameter->Attr("value"));
      }
    }
  }
}

}  // namespace lsmio::a2
