// Minimal XML subset parser for A2 configuration files (the ADIOS2-style
// "change the engine without touching code" mechanism). Supports nested
// elements, double-quoted attributes, comments and self-closing tags —
// enough for <adios-config><io><engine><parameter/>... documents.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace lsmio::a2::xml {

struct Element {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<Element>> children;

  /// First child with the given tag name, or nullptr.
  [[nodiscard]] const Element* Child(const std::string& tag) const;
  /// All children with the given tag name.
  [[nodiscard]] std::vector<const Element*> Children(const std::string& tag) const;
  /// Attribute value or empty string.
  [[nodiscard]] std::string Attr(const std::string& key) const;
};

/// Parses a document; returns its root element.
Result<std::unique_ptr<Element>> Parse(const std::string& text);

}  // namespace lsmio::a2::xml
