// A2 — an ADIOS2-like I/O framework (DESIGN.md §2): Adios/IO/Variable/Engine
// object model, deferred Puts with PerformPuts, a BP-lite log-structured
// engine with per-writer subfiles, XML configuration, and a plugin engine
// registry (the mechanism LSMIO's ADIOS2 plugin uses in the paper §3.1.7).
//
//   a2::Adios adios(fs, config_xml, rank);
//   a2::IO& io = adios.DeclareIO("checkpoint");
//   auto var = io.DefineVariable("temperature", total, offset, count, 8);
//   auto engine = io.Open("/ckpt.bp", a2::Mode::kWrite);
//   engine->Put(*var, data, a2::PutMode::kDeferred);
//   engine->PerformPuts();
//   engine->Close();
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/units.h"
#include "vfs/vfs.h"

namespace lsmio::a2 {

enum class Mode { kWrite, kRead };
enum class PutMode { kDeferred, kSync };

/// A named distributed 1-D array: each writer contributes
/// [offset, offset+count) of a `global_count`-element array of
/// `element_size`-byte elements. (ADIOS2's n-D shapes flatten to this for
/// the workloads in the paper; n-D helpers live in the examples.)
class Variable {
 public:
  Variable(std::string name, uint64_t global_count, uint64_t offset,
           uint64_t count, uint32_t element_size)
      : name_(std::move(name)),
        global_count_(global_count),
        offset_(offset),
        count_(count),
        element_size_(element_size) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] uint64_t global_count() const noexcept { return global_count_; }
  [[nodiscard]] uint64_t offset() const noexcept { return offset_; }
  [[nodiscard]] uint64_t count() const noexcept { return count_; }
  [[nodiscard]] uint32_t element_size() const noexcept { return element_size_; }

  /// Changes this writer's selection (ADIOS2 SetSelection).
  void SetSelection(uint64_t offset, uint64_t count) {
    offset_ = offset;
    count_ = count;
  }

 private:
  std::string name_;
  uint64_t global_count_;
  uint64_t offset_;
  uint64_t count_;
  uint32_t element_size_;
};

/// Engine statistics (paper-style performance counters).
struct EngineStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t bytes_put = 0;
  uint64_t bytes_got = 0;
  uint64_t perform_puts_calls = 0;
};

class IO;

/// Abstract engine: the storage backend of one Open() stream.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Stages (deferred) or writes through (sync) the variable's selection.
  /// `data` must hold count*element_size bytes and, for deferred puts,
  /// remain valid until PerformPuts/Close.
  virtual Status Put(const Variable& variable, const void* data, PutMode mode) = 0;

  /// Drains all deferred puts to the engine's buffers/storage.
  virtual Status PerformPuts() = 0;

  /// Reads the variable's selection into `data` (count*element_size bytes).
  virtual Status Get(const Variable& variable, void* data) = 0;

  /// Finishes the stream; implies PerformPuts and a durability barrier.
  virtual Status Close() = 0;

  [[nodiscard]] virtual EngineStats stats() const = 0;
};

/// Factory signature for engine implementations (built-in and plugins).
using EngineFactory = std::function<Result<std::unique_ptr<Engine>>(
    IO& io, const std::string& path, Mode mode)>;

/// Registers an engine type (e.g. LSMIO's plugin). Last registration wins.
void RegisterEngine(const std::string& type, EngineFactory factory);
/// True if an engine type is registered ("BPLite" is built in).
bool IsEngineRegistered(const std::string& type);

/// A named I/O configuration: variables + engine choice + parameters.
class IO {
 public:
  IO(std::string name, vfs::Vfs& fs, int rank, int world_size)
      : name_(std::move(name)), fs_(&fs), rank_(rank), world_size_(world_size) {}

  /// Defines (or redefines) a variable.
  Variable* DefineVariable(const std::string& var_name, uint64_t global_count,
                           uint64_t offset, uint64_t count, uint32_t element_size);

  /// Returns a defined variable or nullptr.
  Variable* InquireVariable(const std::string& var_name);

  /// Selects the engine type ("BPLite" default, or any registered plugin).
  void SetEngine(std::string type) { engine_type_ = std::move(type); }
  [[nodiscard]] const std::string& engine_type() const noexcept { return engine_type_; }

  /// Engine parameters (e.g. BufferChunkSize = "32MB").
  void SetParameter(const std::string& key, const std::string& value) {
    parameters_[key] = value;
  }
  [[nodiscard]] std::string Parameter(const std::string& key) const {
    auto it = parameters_.find(key);
    return it == parameters_.end() ? std::string() : it->second;
  }
  /// Parameter parsed as a byte size, or `fallback` when absent/invalid.
  [[nodiscard]] uint64_t ParameterBytes(const std::string& key, uint64_t fallback) const;

  /// Opens an engine on `path`.
  Result<std::unique_ptr<Engine>> Open(const std::string& path, Mode mode);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] vfs::Vfs& fs() noexcept { return *fs_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int world_size() const noexcept { return world_size_; }

 private:
  std::string name_;
  vfs::Vfs* fs_;
  int rank_;
  int world_size_;
  std::string engine_type_ = "BPLite";
  std::map<std::string, std::string> parameters_;
  std::map<std::string, std::unique_ptr<Variable>> variables_;
};

/// Top-level context: owns IOs, applies XML configuration.
class Adios {
 public:
  /// `config_xml` may be empty (no file-based configuration). `rank` and
  /// `world_size` identify this process within the parallel job.
  Adios(vfs::Vfs& fs, std::string config_xml = "", int rank = 0, int world_size = 1);

  /// Returns the IO with this name, creating it (and applying any matching
  /// <io name=...> config section) on first use.
  IO& DeclareIO(const std::string& name);

  [[nodiscard]] int rank() const noexcept { return rank_; }

 private:
  void ApplyConfig(IO& io);

  vfs::Vfs& fs_;
  std::string config_xml_;
  int rank_;
  int world_size_;
  std::map<std::string, std::unique_ptr<IO>> ios_;
};

}  // namespace lsmio::a2
