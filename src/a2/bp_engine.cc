// BPLite: the built-in log-structured engine of A2, modeled on ADIOS2's BP
// format family: each writer rank owns a subfile it only ever appends to
// (large sequential writes), puts are buffered in BufferChunkSize chunks,
// and a per-writer index written at Close lets readers locate blocks.
//
// On-disk layout for Open("/run/ckpt.bp", ...):
//   /run/ckpt.bp/data.<rank>   payload records, append-only
//   /run/ckpt.bp/idx.<rank>    block index, written once at Close
#include <cstring>
#include <map>
#include <vector>

#include "a2/a2.h"
#include "common/coding.h"

namespace lsmio::a2 {

namespace {

constexpr uint32_t kIdxMagic = 0xb917a2ddu;

std::string DataFileName(const std::string& path, int rank) {
  return path + "/data." + std::to_string(rank);
}
std::string IdxFileName(const std::string& path, int rank) {
  return path + "/idx." + std::to_string(rank);
}

/// One variable block as recorded in an index file.
struct BlockRecord {
  std::string name;
  uint64_t global_count = 0;
  uint64_t offset = 0;       // element offset within the global array
  uint64_t count = 0;        // elements in this block
  uint32_t element_size = 0;
  uint64_t data_offset = 0;  // byte offset of the payload in the subfile
};

void EncodeBlockRecord(std::string* dst, const BlockRecord& record) {
  PutLengthPrefixedSlice(dst, record.name);
  PutFixed64(dst, record.global_count);
  PutFixed64(dst, record.offset);
  PutFixed64(dst, record.count);
  PutFixed32(dst, record.element_size);
  PutFixed64(dst, record.data_offset);
}

bool DecodeBlockRecord(Slice* input, BlockRecord* record) {
  Slice name;
  if (!GetLengthPrefixedSlice(input, &name)) return false;
  if (input->size() < 8 * 4 + 4) return false;
  record->name = name.ToString();
  record->global_count = DecodeFixed64(input->data());
  record->offset = DecodeFixed64(input->data() + 8);
  record->count = DecodeFixed64(input->data() + 16);
  record->element_size = DecodeFixed32(input->data() + 24);
  record->data_offset = DecodeFixed64(input->data() + 28);
  input->remove_prefix(36);
  return true;
}

// --- writer ---------------------------------------------------------------------

class BpLiteWriter final : public Engine {
 public:
  static Result<std::unique_ptr<Engine>> Make(IO& io, const std::string& path) {
    auto engine = std::unique_ptr<BpLiteWriter>(new BpLiteWriter(io, path));
    LSMIO_RETURN_IF_ERROR(io.fs().CreateDir(path));
    LSMIO_RETURN_IF_ERROR(io.fs().NewWritableFile(
        DataFileName(path, io.rank()), {}, &engine->data_file_));
    engine->buffer_.reserve(static_cast<size_t>(engine->chunk_size_));
    return {std::unique_ptr<Engine>(std::move(engine))};
  }

  Status Put(const Variable& variable, const void* data, PutMode mode) override {
    if (closed_) return Status::InvalidArgument("Put on closed engine");
    ++stats_.puts;
    stats_.bytes_put += variable.count() * variable.element_size();

    Staged staged;
    staged.record.name = variable.name();
    staged.record.global_count = variable.global_count();
    staged.record.offset = variable.offset();
    staged.record.count = variable.count();
    staged.record.element_size = variable.element_size();
    if (mode == PutMode::kSync) {
      // Sync puts copy now; the caller may reuse its buffer immediately.
      staged.copy.assign(static_cast<const char*>(data),
                         variable.count() * variable.element_size());
      staged.data = nullptr;
    } else {
      // Deferred puts hold the caller's pointer until PerformPuts (the
      // ADIOS2 contract).
      staged.data = data;
    }
    staged_.push_back(std::move(staged));
    return Status::OK();
  }

  Status PerformPuts() override {
    if (closed_) return Status::InvalidArgument("PerformPuts on closed engine");
    ++stats_.perform_puts_calls;
    for (const Staged& staged : staged_) {
      const char* payload = staged.data != nullptr
                                ? static_cast<const char*>(staged.data)
                                : staged.copy.data();
      const uint64_t bytes =
          staged.record.count * static_cast<uint64_t>(staged.record.element_size);
      BlockRecord record = staged.record;
      record.data_offset = logical_size_ + buffer_.size();
      index_.push_back(record);
      LSMIO_RETURN_IF_ERROR(Buffer(payload, bytes));
    }
    staged_.clear();
    return Status::OK();
  }

  Status Get(const Variable&, void*) override {
    return Status::InvalidArgument("BPLite engine opened for writing");
  }

  Status Close() override {
    if (closed_) return Status::OK();
    LSMIO_RETURN_IF_ERROR(PerformPuts());
    LSMIO_RETURN_IF_ERROR(FlushBuffer());
    LSMIO_RETURN_IF_ERROR(data_file_->Sync());
    LSMIO_RETURN_IF_ERROR(data_file_->Close());

    // Write the per-writer index in one shot.
    std::string idx;
    for (const BlockRecord& record : index_) EncodeBlockRecord(&idx, record);
    PutFixed32(&idx, static_cast<uint32_t>(index_.size()));
    PutFixed32(&idx, kIdxMagic);
    LSMIO_RETURN_IF_ERROR(
        vfs::WriteStringToFile(io_->fs(), IdxFileName(path_, io_->rank()), idx));
    closed_ = true;
    return Status::OK();
  }

  EngineStats stats() const override { return stats_; }

 private:
  BpLiteWriter(IO& io, std::string path)
      : io_(&io),
        path_(std::move(path)),
        chunk_size_(io.ParameterBytes("BufferChunkSize", 32 * MiB)) {}

  struct Staged {
    BlockRecord record;
    const void* data = nullptr;
    std::string copy;
  };

  Status Buffer(const char* payload, uint64_t bytes) {
    uint64_t done = 0;
    while (done < bytes) {
      const uint64_t room = chunk_size_ - buffer_.size();
      const uint64_t take = std::min(room, bytes - done);
      buffer_.append(payload + done, static_cast<size_t>(take));
      done += take;
      if (buffer_.size() >= chunk_size_) LSMIO_RETURN_IF_ERROR(FlushBuffer());
    }
    return Status::OK();
  }

  Status FlushBuffer() {
    if (buffer_.empty()) return Status::OK();
    LSMIO_RETURN_IF_ERROR(data_file_->Append(buffer_));
    logical_size_ += buffer_.size();
    buffer_.clear();
    return Status::OK();
  }

  IO* io_;
  std::string path_;
  uint64_t chunk_size_;
  std::unique_ptr<vfs::WritableFile> data_file_;
  std::string buffer_;
  uint64_t logical_size_ = 0;
  std::vector<Staged> staged_;
  std::vector<BlockRecord> index_;
  EngineStats stats_;
  bool closed_ = false;
};

// --- reader ---------------------------------------------------------------------

class BpLiteReader final : public Engine {
 public:
  static Result<std::unique_ptr<Engine>> Make(IO& io, const std::string& path) {
    auto engine = std::unique_ptr<BpLiteReader>(new BpLiteReader(io, path));
    LSMIO_RETURN_IF_ERROR(engine->LoadIndexes());
    return {std::unique_ptr<Engine>(std::move(engine))};
  }

  Status Put(const Variable&, const void*, PutMode) override {
    return Status::InvalidArgument("BPLite engine opened for reading");
  }
  Status PerformPuts() override {
    return Status::InvalidArgument("BPLite engine opened for reading");
  }

  Status Get(const Variable& variable, void* data) override {
    ++stats_.gets;
    const uint64_t want_begin = variable.offset();
    const uint64_t want_end = variable.offset() + variable.count();
    const uint32_t element_size = variable.element_size();
    auto it = blocks_.find(variable.name());
    if (it == blocks_.end()) {
      return Status::NotFound("no such variable: " + variable.name());
    }

    uint64_t covered = 0;
    for (const auto& [rank, record] : it->second) {
      const uint64_t block_begin = record.offset;
      const uint64_t block_end = record.offset + record.count;
      const uint64_t isect_begin = std::max(want_begin, block_begin);
      const uint64_t isect_end = std::min(want_end, block_end);
      if (isect_begin >= isect_end) continue;

      vfs::RandomAccessFile* subfile = nullptr;
      LSMIO_RETURN_IF_ERROR(Subfile(rank, &subfile));
      const uint64_t byte_offset =
          record.data_offset + (isect_begin - block_begin) * element_size;
      const uint64_t byte_count = (isect_end - isect_begin) * element_size;
      Slice result;
      std::string scratch;
      LSMIO_RETURN_IF_ERROR(subfile->Read(byte_offset,
                                          static_cast<size_t>(byte_count),
                                          &result, &scratch));
      if (result.size() != byte_count) {
        return Status::Corruption("short read in BPLite subfile");
      }
      std::memcpy(static_cast<char*>(data) + (isect_begin - want_begin) * element_size,
                  result.data(), result.size());
      covered += isect_end - isect_begin;
      stats_.bytes_got += byte_count;
    }
    if (covered < variable.count()) {
      return Status::NotFound("selection not fully covered for " + variable.name());
    }
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }
  EngineStats stats() const override { return stats_; }

 private:
  BpLiteReader(IO& io, std::string path) : io_(&io), path_(std::move(path)) {}

  Status LoadIndexes() {
    std::vector<std::string> children;
    LSMIO_RETURN_IF_ERROR(io_->fs().ListDir(path_, &children));
    bool any = false;
    for (const std::string& child : children) {
      if (child.rfind("idx.", 0) != 0) continue;
      const int rank = std::atoi(child.c_str() + 4);
      std::string idx;
      LSMIO_RETURN_IF_ERROR(vfs::ReadFileToString(io_->fs(), path_ + "/" + child, &idx));
      if (idx.size() < 8 ||
          DecodeFixed32(idx.data() + idx.size() - 4) != kIdxMagic) {
        return Status::Corruption("bad BPLite index: " + child);
      }
      const uint32_t count = DecodeFixed32(idx.data() + idx.size() - 8);
      Slice input(idx.data(), idx.size() - 8);
      for (uint32_t i = 0; i < count; ++i) {
        BlockRecord record;
        if (!DecodeBlockRecord(&input, &record)) {
          return Status::Corruption("truncated BPLite index: " + child);
        }
        blocks_[record.name].emplace_back(rank, std::move(record));
      }
      any = true;
    }
    if (!any) return Status::NotFound("no BPLite indexes under " + path_);
    return Status::OK();
  }

  Status Subfile(int rank, vfs::RandomAccessFile** out) {
    auto it = subfiles_.find(rank);
    if (it == subfiles_.end()) {
      std::unique_ptr<vfs::RandomAccessFile> file;
      LSMIO_RETURN_IF_ERROR(
          io_->fs().NewRandomAccessFile(DataFileName(path_, rank), {}, &file));
      it = subfiles_.emplace(rank, std::move(file)).first;
    }
    *out = it->second.get();
    return Status::OK();
  }

  IO* io_;
  std::string path_;
  std::map<std::string, std::vector<std::pair<int, BlockRecord>>> blocks_;
  std::map<int, std::unique_ptr<vfs::RandomAccessFile>> subfiles_;
  EngineStats stats_;
};

}  // namespace

Result<std::unique_ptr<Engine>> MakeBpLiteEngine(IO& io, const std::string& path,
                                                 Mode mode) {
  return mode == Mode::kWrite ? BpLiteWriter::Make(io, path)
                              : BpLiteReader::Make(io, path);
}

}  // namespace lsmio::a2
