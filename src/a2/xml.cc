#include "a2/xml.h"

#include <cctype>

namespace lsmio::a2::xml {

const Element* Element::Child(const std::string& tag) const {
  for (const auto& child : children) {
    if (child->name == tag) return child.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::Children(const std::string& tag) const {
  std::vector<const Element*> result;
  for (const auto& child : children) {
    if (child->name == tag) result.push_back(child.get());
  }
  return result;
}

std::string Element::Attr(const std::string& key) const {
  auto it = attributes.find(key);
  return it == attributes.end() ? std::string() : it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<std::unique_ptr<Element>> Run() {
    SkipNonTags();
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    return std::move(root).value();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Skips whitespace, text content, comments and declarations up to '<'.
  void SkipNonTags() {
    for (;;) {
      SkipWhitespace();
      if (pos_ + 3 < text_.size() && text_.compare(pos_, 4, "<!--") == 0) {
        const size_t end = text_.find("-->", pos_);
        pos_ = end == std::string::npos ? text_.size() : end + 3;
        continue;
      }
      if (pos_ + 1 < text_.size() && text_.compare(pos_, 2, "<?") == 0) {
        const size_t end = text_.find("?>", pos_);
        pos_ = end == std::string::npos ? text_.size() : end + 2;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] != '<') {
        // Text content: skipped (config files carry data in attributes).
        const size_t next = text_.find('<', pos_);
        pos_ = next == std::string::npos ? text_.size() : next;
        continue;
      }
      return;
    }
  }

  Result<std::string> ParseName() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '_' || text_[pos_] == ':')) {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument("xml: expected a name");
    return text_.substr(start, pos_ - start);
  }

  Result<std::unique_ptr<Element>> ParseElement() {
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Status::InvalidArgument("xml: expected '<'");
    }
    ++pos_;
    auto element = std::make_unique<Element>();
    LSMIO_ASSIGN_OR_RETURN(element->name, ParseName());

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size()) return Status::InvalidArgument("xml: unterminated tag");
      if (text_[pos_] == '/') {
        if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '>') {
          return Status::InvalidArgument("xml: malformed self-closing tag");
        }
        pos_ += 2;
        return element;
      }
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      std::string key;
      LSMIO_ASSIGN_OR_RETURN(key, ParseName());
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return Status::InvalidArgument("xml: expected '=' after attribute " + key);
      }
      ++pos_;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::InvalidArgument("xml: expected quoted attribute value");
      }
      ++pos_;
      const size_t value_end = text_.find('"', pos_);
      if (value_end == std::string::npos) {
        return Status::InvalidArgument("xml: unterminated attribute value");
      }
      element->attributes[key] = text_.substr(pos_, value_end - pos_);
      pos_ = value_end + 1;
    }

    // Children until the closing tag.
    for (;;) {
      SkipNonTags();
      if (pos_ + 1 >= text_.size()) {
        return Status::InvalidArgument("xml: missing </" + element->name + ">");
      }
      if (text_[pos_] == '<' && text_[pos_ + 1] == '/') {
        pos_ += 2;
        std::string closing;
        LSMIO_ASSIGN_OR_RETURN(closing, ParseName());
        SkipWhitespace();
        if (closing != element->name) {
          return Status::InvalidArgument("xml: mismatched </" + closing + ">");
        }
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Status::InvalidArgument("xml: malformed closing tag");
        }
        ++pos_;
        return element;
      }
      auto child = ParseElement();
      if (!child.ok()) return child.status();
      element->children.push_back(std::move(child).value());
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Element>> Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace lsmio::a2::xml
