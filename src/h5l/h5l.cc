#include "h5l/h5l.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/coding.h"
#include "common/logging.h"

namespace lsmio::h5l {

namespace {

constexpr char kMagic[4] = {'H', '5', 'L', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint64_t kSuperblockSize = 48;
// Object header kinds.
constexpr uint8_t kGroupKind = 1;
constexpr uint8_t kDatasetKind = 2;
// Fixed sizes keep in-place header rewrites possible.
constexpr uint64_t kGroupHeaderSize = 1 + 8 + 8;          // kind|entries_addr|capacity
constexpr uint64_t kDatasetHeaderSize = 1 + 4 + 8 + 1 + 8 + 8 + 8 + 4 + 8;
constexpr uint64_t kDefaultEntryTableBytes = 4096;
constexpr uint32_t kDefaultChunkIndexCapacity = 4096;
constexpr size_t kEntrySize = 2 + 255 + 8;  // len | padded name | child addr

}  // namespace

// --- File --------------------------------------------------------------------

Result<std::shared_ptr<File>> File::Create(vfs::Vfs& fs, const std::string& path,
                                           const FileConfig& config) {
  auto file = std::shared_ptr<File>(new File());
  file->fs_ = &fs;
  file->path_ = path;
  file->config_ = config;

  // Truncate/create.
  {
    std::unique_ptr<vfs::WritableFile> truncator;
    LSMIO_RETURN_IF_ERROR(fs.NewWritableFile(path, {}, &truncator));
    LSMIO_RETURN_IF_ERROR(truncator->Close());
  }
  LSMIO_RETURN_IF_ERROR(fs.OpenFileHandle(path, /*create=*/true, {}, &file->handle_));

  file->eof_ = kSuperblockSize;
  // Root group header + entry table.
  file->root_addr_ = file->Allocate(kGroupHeaderSize);
  const uint64_t entries_addr = file->Allocate(kDefaultEntryTableBytes);

  std::string header;
  header.push_back(static_cast<char>(kGroupKind));
  PutFixed64(&header, entries_addr);
  PutFixed64(&header, kDefaultEntryTableBytes);
  LSMIO_RETURN_IF_ERROR(file->WriteAt(file->root_addr_, header));

  // Empty entry table: count = 0.
  std::string count_block;
  PutFixed32(&count_block, 0);
  LSMIO_RETURN_IF_ERROR(file->WriteAt(entries_addr, count_block));
  LSMIO_RETURN_IF_ERROR(file->WriteSuperblock());
  return file;
}

Result<std::shared_ptr<File>> File::Open(vfs::Vfs& fs, const std::string& path,
                                         const FileConfig& config) {
  auto file = std::shared_ptr<File>(new File());
  file->fs_ = &fs;
  file->path_ = path;
  file->config_ = config;
  LSMIO_RETURN_IF_ERROR(fs.OpenFileHandle(path, /*create=*/false, {}, &file->handle_));
  LSMIO_RETURN_IF_ERROR(file->ReadSuperblock());
  return file;
}

File::~File() {
  if (!closed_) {
    // Close() writes the superblock; a destructor cannot propagate its
    // failure, so callers that care about durability must Close()
    // explicitly and check. Log so the drop is at least visible.
    Status s = Close();
    if (!s.ok()) LSMIO_WARN << "h5l::File close failed in ~File: " << s.ToString();
  }
}

uint64_t File::Allocate(uint64_t size) {
  const uint64_t addr = eof_;
  eof_ += size;
  return addr;
}

Status File::WriteSuperblock() {
  std::string sb(kMagic, sizeof kMagic);
  PutFixed32(&sb, kFormatVersion);
  PutFixed64(&sb, eof_);
  PutFixed64(&sb, root_addr_);
  PutFixed64(&sb, meta_generation_);
  sb.resize(kSuperblockSize, '\0');
  meta_since_superblock_ = 0;
  return WriteAt(0, sb);
}

Status File::ReadSuperblock() {
  std::string sb;
  LSMIO_RETURN_IF_ERROR(ReadAt(0, kSuperblockSize, &sb));
  if (sb.size() < kSuperblockSize || std::memcmp(sb.data(), kMagic, 4) != 0) {
    return Status::Corruption("not an h5l file: " + path_);
  }
  const uint32_t version = DecodeFixed32(sb.data() + 4);
  if (version != kFormatVersion) {
    return Status::NotSupported("h5l version " + std::to_string(version));
  }
  eof_ = DecodeFixed64(sb.data() + 8);
  root_addr_ = DecodeFixed64(sb.data() + 16);
  meta_generation_ = DecodeFixed64(sb.data() + 24);
  return Status::OK();
}

Status File::TouchMetadata() {
  ++meta_generation_;
  ++meta_since_superblock_;
  if (config_.superblock_update_interval > 0 &&
      meta_since_superblock_ >=
          static_cast<uint64_t>(config_.superblock_update_interval)) {
    return WriteSuperblock();
  }
  return Status::OK();
}

Status File::Flush() {
  LSMIO_RETURN_IF_ERROR(WriteSuperblock());
  return handle_->Sync();
}

Status File::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (handle_ == nullptr) return Status::OK();  // construction failed early
  Status s = Flush();
  Status c = handle_->Close();
  return s.ok() ? c : s;
}

Status File::WriteAt(uint64_t addr, const Slice& data) {
  return handle_->WriteAt(addr, data);
}

Status File::ReadAt(uint64_t addr, uint64_t size, std::string* out) {
  Slice result;
  std::string scratch;
  LSMIO_RETURN_IF_ERROR(handle_->ReadAt(addr, static_cast<size_t>(size), &result, &scratch));
  out->assign(result.data(), result.size());
  return Status::OK();
}

std::shared_ptr<Group> File::root() {
  auto group = std::shared_ptr<Group>(new Group());
  group->file_ = this;
  group->header_addr_ = root_addr_;
  // Load header lazily on first use; cheap eager load here.
  std::string header;
  if (ReadAt(root_addr_, kGroupHeaderSize, &header).ok() &&
      header.size() >= kGroupHeaderSize && header[0] == static_cast<char>(kGroupKind)) {
    group->entries_addr_ = DecodeFixed64(header.data() + 1);
    group->entries_capacity_ = DecodeFixed64(header.data() + 9);
  }
  return group;
}

// --- Group ---------------------------------------------------------------------

Status Group::LoadEntries(std::vector<std::pair<std::string, uint64_t>>* entries) {
  entries->clear();
  std::string count_block;
  LSMIO_RETURN_IF_ERROR(file_->ReadAt(entries_addr_, 4, &count_block));
  if (count_block.size() < 4) return Status::Corruption("truncated group entry table");
  const uint32_t count = DecodeFixed32(count_block.data());

  std::string table;
  LSMIO_RETURN_IF_ERROR(
      file_->ReadAt(entries_addr_ + 4, count * kEntrySize, &table));
  if (table.size() < count * kEntrySize) {
    return Status::Corruption("truncated group entries");
  }
  for (uint32_t i = 0; i < count; ++i) {
    const char* p = table.data() + i * kEntrySize;
    const uint16_t len = DecodeFixed16(p);
    if (len > 255) return Status::Corruption("bad entry name length");
    entries->emplace_back(std::string(p + 2, len), DecodeFixed64(p + 2 + 255));
  }
  return Status::OK();
}

Status Group::AddEntry(const std::string& name, uint64_t child_addr) {
  if (name.empty() || name.size() > 255) {
    return Status::InvalidArgument("h5l name must be 1..255 bytes");
  }
  std::vector<std::pair<std::string, uint64_t>> entries;
  LSMIO_RETURN_IF_ERROR(LoadEntries(&entries));
  for (const auto& [existing, addr] : entries) {
    if (existing == name) return Status::InvalidArgument("name exists: " + name);
  }
  const uint64_t needed = 4 + (entries.size() + 1) * kEntrySize;
  if (needed > entries_capacity_) {
    return Status::OutOfRange("group entry table full");
  }

  // HDF5-style symbol-table update: rewrite count + append the new entry.
  std::string entry;
  PutFixed16(&entry, static_cast<uint16_t>(name.size()));
  entry += name;
  entry.resize(2 + 255, '\0');
  PutFixed64(&entry, child_addr);
  LSMIO_RETURN_IF_ERROR(
      file_->WriteAt(entries_addr_ + 4 + entries.size() * kEntrySize, entry));

  std::string count_block;
  PutFixed32(&count_block, static_cast<uint32_t>(entries.size() + 1));
  LSMIO_RETURN_IF_ERROR(file_->WriteAt(entries_addr_, count_block));
  return file_->TouchMetadata();
}

Result<uint64_t> Group::FindEntry(const std::string& name) {
  std::vector<std::pair<std::string, uint64_t>> entries;
  LSMIO_RETURN_IF_ERROR(LoadEntries(&entries));
  for (const auto& [existing, addr] : entries) {
    if (existing == name) return addr;
  }
  return Status::NotFound("no such member: " + name);
}

namespace {
// Attribute entries live in the owner group's entry table under a prefix
// that cannot collide with user names (which must be printable-ish).
const std::string kAttrPrefix("\x01""a\x01", 3);
}  // namespace

Result<std::vector<std::string>> Group::List() {
  std::vector<std::pair<std::string, uint64_t>> entries;
  LSMIO_RETURN_IF_ERROR(LoadEntries(&entries));
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (auto& [name, addr] : entries) {
    if (name.rfind(kAttrPrefix, 0) == 0) continue;
    names.push_back(std::move(name));
  }
  return names;
}

Status Group::UpdateEntry(const std::string& name, uint64_t child_addr) {
  std::vector<std::pair<std::string, uint64_t>> entries;
  LSMIO_RETURN_IF_ERROR(LoadEntries(&entries));
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].first != name) continue;
    std::string addr_bytes;
    PutFixed64(&addr_bytes, child_addr);
    LSMIO_RETURN_IF_ERROR(file_->WriteAt(
        entries_addr_ + 4 + i * kEntrySize + 2 + 255, addr_bytes));
    return file_->TouchMetadata();
  }
  return Status::NotFound("no such entry: " + name);
}

Status Group::SetAttribute(const std::string& name, const Slice& value) {
  if (name.empty() || name.size() + kAttrPrefix.size() > 255) {
    return Status::InvalidArgument("attribute name must be 1..252 bytes");
  }
  // Value block: fixed32 length + payload (log-structured: a new block per
  // write, like HDF5's metadata heap churn).
  const uint64_t addr = file_->Allocate(4 + value.size());
  std::string block;
  PutFixed32(&block, static_cast<uint32_t>(value.size()));
  block.append(value.data(), value.size());
  LSMIO_RETURN_IF_ERROR(file_->WriteAt(addr, block));

  const std::string entry_name = kAttrPrefix + name;
  Status s = UpdateEntry(entry_name, addr);
  if (s.IsNotFound()) return AddEntry(entry_name, addr);
  return s;
}

Result<std::string> Group::GetAttribute(const std::string& name) {
  uint64_t addr = 0;
  LSMIO_ASSIGN_OR_RETURN(addr, FindEntry(kAttrPrefix + name));
  std::string length_bytes;
  LSMIO_RETURN_IF_ERROR(file_->ReadAt(addr, 4, &length_bytes));
  if (length_bytes.size() < 4) return Status::Corruption("truncated attribute");
  const uint32_t length = DecodeFixed32(length_bytes.data());
  std::string value;
  LSMIO_RETURN_IF_ERROR(file_->ReadAt(addr + 4, length, &value));
  if (value.size() != length) return Status::Corruption("truncated attribute value");
  return value;
}

Result<std::vector<std::string>> Group::ListAttributes() {
  std::vector<std::pair<std::string, uint64_t>> entries;
  LSMIO_RETURN_IF_ERROR(LoadEntries(&entries));
  std::vector<std::string> names;
  for (auto& [name, addr] : entries) {
    if (name.rfind(kAttrPrefix, 0) == 0) {
      names.push_back(name.substr(kAttrPrefix.size()));
    }
  }
  return names;
}

Result<std::shared_ptr<Group>> Group::CreateGroup(const std::string& name) {
  const uint64_t header_addr = file_->Allocate(kGroupHeaderSize);
  const uint64_t entries_addr = file_->Allocate(kDefaultEntryTableBytes);

  std::string header;
  header.push_back(static_cast<char>(kGroupKind));
  PutFixed64(&header, entries_addr);
  PutFixed64(&header, kDefaultEntryTableBytes);
  LSMIO_RETURN_IF_ERROR(file_->WriteAt(header_addr, header));

  std::string count_block;
  PutFixed32(&count_block, 0);
  LSMIO_RETURN_IF_ERROR(file_->WriteAt(entries_addr, count_block));
  LSMIO_RETURN_IF_ERROR(AddEntry(name, header_addr));

  auto group = std::shared_ptr<Group>(new Group());
  group->file_ = file_;
  group->header_addr_ = header_addr;
  group->entries_addr_ = entries_addr;
  group->entries_capacity_ = kDefaultEntryTableBytes;
  return group;
}

Result<std::shared_ptr<Group>> Group::OpenGroup(const std::string& name) {
  uint64_t addr = 0;
  LSMIO_ASSIGN_OR_RETURN(addr, FindEntry(name));
  std::string header;
  LSMIO_RETURN_IF_ERROR(file_->ReadAt(addr, kGroupHeaderSize, &header));
  if (header.size() < kGroupHeaderSize || header[0] != static_cast<char>(kGroupKind)) {
    return Status::InvalidArgument(name + " is not a group");
  }
  auto group = std::shared_ptr<Group>(new Group());
  group->file_ = file_;
  group->header_addr_ = addr;
  group->entries_addr_ = DecodeFixed64(header.data() + 1);
  group->entries_capacity_ = DecodeFixed64(header.data() + 9);
  return group;
}

namespace {

std::string EncodeDatasetHeader(const Dataset& ds, uint64_t data_addr,
                                uint64_t index_addr, uint32_t index_capacity) {
  std::string header;
  header.push_back(static_cast<char>(kDatasetKind));
  PutFixed32(&header, ds.element_size());
  PutFixed64(&header, ds.num_elements());
  header.push_back(static_cast<char>(ds.layout()));
  PutFixed64(&header, data_addr);
  PutFixed64(&header, ds.chunk_elements());
  PutFixed64(&header, index_addr);
  PutFixed32(&header, index_capacity);
  PutFixed64(&header, 0);  // modification generation, rewritten on updates
  return header;
}

}  // namespace

Result<std::shared_ptr<Dataset>> Group::CreateDataset(const std::string& name,
                                                      uint64_t num_elements,
                                                      uint32_t element_size,
                                                      Layout layout,
                                                      uint64_t chunk_elements) {
  if (element_size == 0) return Status::InvalidArgument("element_size must be > 0");
  if (layout == Layout::kChunked && chunk_elements == 0) {
    return Status::InvalidArgument("chunked dataset needs chunk_elements");
  }

  auto dataset = std::shared_ptr<Dataset>(new Dataset());
  dataset->file_ = file_;
  dataset->num_elements_ = num_elements;
  dataset->element_size_ = element_size;
  dataset->layout_ = layout;
  dataset->chunk_elements_ = layout == Layout::kChunked ? chunk_elements : 0;

  dataset->header_addr_ = file_->Allocate(kDatasetHeaderSize);

  if (layout == Layout::kContiguous) {
    // Early allocation: the whole data region exists at create time so
    // parallel writers can target disjoint slabs.
    dataset->data_addr_ = file_->Allocate(num_elements * element_size);
  } else {
    const uint64_t num_chunks =
        (num_elements + chunk_elements - 1) / chunk_elements;
    dataset->index_capacity_ =
        std::max<uint32_t>(kDefaultChunkIndexCapacity,
                           static_cast<uint32_t>(num_chunks));
    dataset->index_addr_ =
        file_->Allocate(4 + static_cast<uint64_t>(dataset->index_capacity_) * 8);
    dataset->chunk_addrs_.assign(num_chunks, 0);
    LSMIO_RETURN_IF_ERROR(dataset->StoreChunkIndex());
  }

  LSMIO_RETURN_IF_ERROR(file_->WriteAt(
      dataset->header_addr_,
      EncodeDatasetHeader(*dataset, dataset->data_addr_, dataset->index_addr_,
                          dataset->index_capacity_)));
  LSMIO_RETURN_IF_ERROR(AddEntry(name, dataset->header_addr_));
  return dataset;
}

Result<std::shared_ptr<Dataset>> Group::OpenDataset(const std::string& name) {
  uint64_t addr = 0;
  LSMIO_ASSIGN_OR_RETURN(addr, FindEntry(name));
  std::string header;
  LSMIO_RETURN_IF_ERROR(file_->ReadAt(addr, kDatasetHeaderSize, &header));
  if (header.size() < kDatasetHeaderSize ||
      header[0] != static_cast<char>(kDatasetKind)) {
    return Status::InvalidArgument(name + " is not a dataset");
  }
  auto dataset = std::shared_ptr<Dataset>(new Dataset());
  dataset->file_ = file_;
  dataset->header_addr_ = addr;
  const char* p = header.data() + 1;
  dataset->element_size_ = DecodeFixed32(p);
  dataset->num_elements_ = DecodeFixed64(p + 4);
  dataset->layout_ = static_cast<Layout>(p[12]);
  dataset->data_addr_ = DecodeFixed64(p + 13);
  dataset->chunk_elements_ = DecodeFixed64(p + 21);
  dataset->index_addr_ = DecodeFixed64(p + 29);
  dataset->index_capacity_ = DecodeFixed32(p + 37);
  if (dataset->layout_ == Layout::kChunked) {
    LSMIO_RETURN_IF_ERROR(dataset->LoadChunkIndex());
  }
  return dataset;
}

// --- Dataset ---------------------------------------------------------------------

Status Dataset::LoadChunkIndex() {
  const uint64_t num_chunks =
      (num_elements_ + chunk_elements_ - 1) / chunk_elements_;
  std::string block;
  LSMIO_RETURN_IF_ERROR(file_->ReadAt(index_addr_, 4 + num_chunks * 8, &block));
  if (block.size() < 4 + num_chunks * 8) {
    return Status::Corruption("truncated chunk index");
  }
  chunk_addrs_.resize(num_chunks);
  for (uint64_t c = 0; c < num_chunks; ++c) {
    chunk_addrs_[c] = DecodeFixed64(block.data() + 4 + c * 8);
  }
  return Status::OK();
}

Status Dataset::StoreChunkIndex() {
  std::string block;
  PutFixed32(&block, static_cast<uint32_t>(chunk_addrs_.size()));
  for (const uint64_t addr : chunk_addrs_) PutFixed64(&block, addr);
  LSMIO_RETURN_IF_ERROR(file_->WriteAt(index_addr_, block));
  return file_->TouchMetadata();
}

Status Dataset::UpdateHeader() {
  LSMIO_RETURN_IF_ERROR(file_->WriteAt(
      header_addr_,
      EncodeDatasetHeader(*this, data_addr_, index_addr_, index_capacity_)));
  return file_->TouchMetadata();
}

Status Dataset::Write(uint64_t offset, uint64_t count, const Slice& data) {
  if (data.size() != count * element_size_) {
    return Status::InvalidArgument("data size does not match count*element_size");
  }
  if (offset + count > num_elements_) {
    return Status::OutOfRange("write past end of dataset");
  }

  Status s = layout_ == Layout::kContiguous
                 ? WriteContiguous(offset * element_size_, data)
                 : WriteChunked(offset, count, data);
  if (!s.ok()) return s;

  // HDF5-style metadata churn: refresh the object header periodically.
  if (file_->config_.header_update_interval > 0 &&
      ++writes_since_header_update_ >=
          static_cast<uint64_t>(file_->config_.header_update_interval)) {
    writes_since_header_update_ = 0;
    LSMIO_RETURN_IF_ERROR(file_->WriteAt(
        header_addr_,
        EncodeDatasetHeader(*this, data_addr_, index_addr_, index_capacity_)));
    LSMIO_RETURN_IF_ERROR(file_->TouchMetadata());
  }
  return Status::OK();
}

Status Dataset::WriteContiguous(uint64_t byte_offset, const Slice& data) {
  return file_->WriteAt(data_addr_ + byte_offset, data);
}

Status Dataset::WriteChunked(uint64_t offset, uint64_t count, const Slice& data) {
  const uint64_t chunk_bytes = chunk_elements_ * element_size_;
  uint64_t element = offset;
  const char* src = data.data();
  bool index_dirty = false;

  while (element < offset + count) {
    const uint64_t chunk = element / chunk_elements_;
    const uint64_t within = element % chunk_elements_;
    const uint64_t take =
        std::min(chunk_elements_ - within, offset + count - element);

    if (chunk_addrs_[chunk] == 0) {
      chunk_addrs_[chunk] = file_->Allocate(chunk_bytes);
      index_dirty = true;
    }
    LSMIO_RETURN_IF_ERROR(
        file_->WriteAt(chunk_addrs_[chunk] + within * element_size_,
                       Slice(src, take * element_size_)));
    src += take * element_size_;
    element += take;
  }
  if (index_dirty) LSMIO_RETURN_IF_ERROR(StoreChunkIndex());
  return Status::OK();
}

Status Dataset::Read(uint64_t offset, uint64_t count, std::string* out) {
  if (offset + count > num_elements_) {
    return Status::OutOfRange("read past end of dataset");
  }
  if (layout_ == Layout::kContiguous) {
    LSMIO_RETURN_IF_ERROR(file_->ReadAt(data_addr_ + offset * element_size_,
                                        count * element_size_, out));
    if (out->size() != count * element_size_) {
      return Status::Corruption("short dataset read");
    }
    return Status::OK();
  }
  return ReadChunked(offset, count, out);
}

Status Dataset::ReadChunked(uint64_t offset, uint64_t count, std::string* out) {
  out->clear();
  out->reserve(count * element_size_);
  uint64_t element = offset;
  while (element < offset + count) {
    const uint64_t chunk = element / chunk_elements_;
    const uint64_t within = element % chunk_elements_;
    const uint64_t take =
        std::min(chunk_elements_ - within, offset + count - element);
    if (chunk_addrs_[chunk] == 0) {
      out->append(take * element_size_, '\0');  // unallocated chunk: fill value
    } else {
      std::string piece;
      LSMIO_RETURN_IF_ERROR(file_->ReadAt(
          chunk_addrs_[chunk] + within * element_size_, take * element_size_, &piece));
      if (piece.size() != take * element_size_) {
        return Status::Corruption("short chunk read");
      }
      out->append(piece);
    }
    element += take;
  }
  return Status::OK();
}

}  // namespace lsmio::h5l
