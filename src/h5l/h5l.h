// h5l — "HDF5-lite": a self-contained hierarchical scientific file format
// standing in for HDF5 in the paper's comparisons (DESIGN.md §2).
//
// It is a genuine format (files round-trip; tests read back what they
// wrote) with HDF5's performance-relevant write behaviour:
//   * one shared file, updated in place through positional writes;
//   * a superblock at offset 0 rewritten as metadata changes;
//   * object headers and group entry tables interleaved with data, so a
//     dataset write is never a pure append: small metadata updates at low
//     offsets punctuate the data stream (defeating write-back coalescing
//     and causing head movement on the simulated OSTs);
//   * chunked datasets maintain a chunk index block that is rewritten as
//     chunks are added.
//
// Model simplifications (documented, test-covered): names live in parent
// group entry tables; datatypes are fixed-size elements; multi-writer use
// follows the PHDF5 discipline — structure is created by rank 0, data
// writes from all ranks target disjoint regions of pre-created datasets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "vfs/vfs.h"

namespace lsmio::h5l {

/// Storage layout of a dataset.
enum class Layout : uint8_t { kContiguous = 1, kChunked = 2 };

/// Tuning knobs mirroring the metadata-cache behaviour of the original.
struct FileConfig {
  /// Rewrite the dataset's object header every k-th data write (HDF5
  /// updates modification metadata; 0 disables).
  int header_update_interval = 1;
  /// Rewrite the superblock every k-th metadata change (0 = only on flush).
  int superblock_update_interval = 8;
};

class Dataset;
class Group;
class File;

/// A dataset: an n-dimensional array of fixed-size elements.
class Dataset {
 public:
  /// Writes `count` elements starting at flat element offset `offset`.
  /// data.size() must equal count * element_size.
  Status Write(uint64_t offset, uint64_t count, const Slice& data);

  /// Reads `count` elements at flat element offset `offset` into *out.
  Status Read(uint64_t offset, uint64_t count, std::string* out);

  /// Rewrites the object header (modification metadata) without touching
  /// data — the update every writer performs in (P)HDF5 collective mode.
  Status UpdateHeader();

  [[nodiscard]] uint64_t num_elements() const noexcept { return num_elements_; }
  [[nodiscard]] uint32_t element_size() const noexcept { return element_size_; }
  [[nodiscard]] Layout layout() const noexcept { return layout_; }
  [[nodiscard]] uint64_t chunk_elements() const noexcept { return chunk_elements_; }

 private:
  friend class File;
  friend class Group;

  Status WriteContiguous(uint64_t byte_offset, const Slice& data);
  Status WriteChunked(uint64_t offset, uint64_t count, const Slice& data);
  Status ReadChunked(uint64_t offset, uint64_t count, std::string* out);
  Status LoadChunkIndex();
  Status StoreChunkIndex();

  File* file_ = nullptr;
  uint64_t header_addr_ = 0;
  uint64_t num_elements_ = 0;
  uint32_t element_size_ = 0;
  Layout layout_ = Layout::kContiguous;
  uint64_t data_addr_ = 0;        // contiguous
  uint64_t chunk_elements_ = 0;   // chunked
  uint64_t index_addr_ = 0;
  uint32_t index_capacity_ = 0;
  // chunk number -> data address (0 = unallocated), mirrored on disk.
  std::vector<uint64_t> chunk_addrs_;
  uint64_t writes_since_header_update_ = 0;
};

/// A group: a named collection of child groups and datasets.
class Group {
 public:
  /// Creates a child group. Fails if the name exists.
  Result<std::shared_ptr<Group>> CreateGroup(const std::string& name);

  /// Creates a dataset of `num_elements` fixed-size elements. For
  /// kContiguous the data region is allocated now (PHDF5-style early
  /// allocation, enabling disjoint parallel writes); for kChunked, chunks
  /// of `chunk_elements` are allocated on first write.
  Result<std::shared_ptr<Dataset>> CreateDataset(const std::string& name,
                                                 uint64_t num_elements,
                                                 uint32_t element_size,
                                                 Layout layout,
                                                 uint64_t chunk_elements = 0);

  Result<std::shared_ptr<Group>> OpenGroup(const std::string& name);
  Result<std::shared_ptr<Dataset>> OpenDataset(const std::string& name);

  /// Child names in insertion order (attributes excluded).
  Result<std::vector<std::string>> List();

  // --- attributes ------------------------------------------------------------
  // Small named metadata values attached to this group (HDF5-style,
  // log-structured: rewriting an attribute appends a new value block).

  /// Creates or overwrites an attribute.
  Status SetAttribute(const std::string& name, const Slice& value);
  /// Reads an attribute's value.
  Result<std::string> GetAttribute(const std::string& name);
  /// Attribute names in insertion order.
  Result<std::vector<std::string>> ListAttributes();

 private:
  friend class File;

  Status LoadEntries(std::vector<std::pair<std::string, uint64_t>>* entries);
  Status AddEntry(const std::string& name, uint64_t child_addr);
  /// Rewrites an existing entry's address in place; NotFound if absent.
  Status UpdateEntry(const std::string& name, uint64_t child_addr);
  Result<uint64_t> FindEntry(const std::string& name);

  File* file_ = nullptr;
  uint64_t header_addr_ = 0;
  uint64_t entries_addr_ = 0;
  uint64_t entries_capacity_ = 0;  // bytes reserved for the entry table
};

/// An h5l file.
class File {
 public:
  /// Creates a new file (truncating any existing one).
  static Result<std::shared_ptr<File>> Create(vfs::Vfs& fs, const std::string& path,
                                              const FileConfig& config = {});
  /// Opens an existing file.
  static Result<std::shared_ptr<File>> Open(vfs::Vfs& fs, const std::string& path,
                                            const FileConfig& config = {});

  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// The root group.
  [[nodiscard]] std::shared_ptr<Group> root();

  /// Flushes all cached metadata (superblock) to storage.
  Status Flush();
  /// Flush + close the underlying handle.
  Status Close();

 private:
  friend class Group;
  friend class Dataset;

  File() = default;

  /// Allocates `size` bytes at EOF; returns the address.
  uint64_t Allocate(uint64_t size);

  /// Notes a metadata mutation; periodically rewrites the superblock.
  Status TouchMetadata();
  Status WriteSuperblock();
  Status ReadSuperblock();

  Status WriteAt(uint64_t addr, const Slice& data);
  Status ReadAt(uint64_t addr, uint64_t size, std::string* out);

  vfs::Vfs* fs_ = nullptr;
  std::string path_;
  std::unique_ptr<vfs::FileHandle> handle_;
  FileConfig config_;
  uint64_t eof_ = 0;
  uint64_t root_addr_ = 0;
  uint64_t meta_generation_ = 0;
  uint64_t meta_since_superblock_ = 0;
  bool closed_ = false;
};

}  // namespace lsmio::h5l
