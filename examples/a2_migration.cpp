// a2_migration: the paper's no-code-change migration story (§3.1.7/§4.3).
//
// A small "application" is written once against the A2 (ADIOS2-style) API.
// It is then run twice with different XML configurations — first on the
// default BPLite engine, then on the LSMIO plugin — and the checkpoints
// written by both engines are read back and compared. The application code
// never mentions LSMIO.
//
// Run: ./a2_migration
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "a2/a2.h"
#include "core/plugin.h"
#include "vfs/posix_vfs.h"

namespace {

using lsmio::a2::Adios;
using lsmio::a2::IO;
using lsmio::a2::Mode;
using lsmio::a2::PutMode;
using lsmio::a2::Variable;

constexpr uint64_t kCells = 4096;
constexpr int kSteps = 3;

void Check(const lsmio::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FAILED %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

// The "application": writes a time series of two fields. It receives an
// Adios context and an output path — nothing engine-specific.
void WriteCheckpoints(Adios& adios, const std::string& path) {
  IO& io = adios.DeclareIO("simulation-output");
  Variable* density =
      io.DefineVariable("density", kCells * kSteps, 0, kCells, sizeof(double));
  Variable* pressure =
      io.DefineVariable("pressure", kCells * kSteps, 0, kCells, sizeof(double));

  auto engine = io.Open(path, Mode::kWrite);
  Check(engine.status(), "open for write");

  std::vector<double> rho(kCells), p(kCells);
  for (int step = 0; step < kSteps; ++step) {
    for (uint64_t i = 0; i < kCells; ++i) {
      rho[i] = step + 0.001 * static_cast<double>(i);
      p[i] = 100.0 * step + 0.5 * static_cast<double>(i);
    }
    // Each step appends its slice of the time series.
    density->SetSelection(static_cast<uint64_t>(step) * kCells, kCells);
    pressure->SetSelection(static_cast<uint64_t>(step) * kCells, kCells);
    Check(engine.value()->Put(*density, rho.data(), PutMode::kDeferred), "put rho");
    Check(engine.value()->Put(*pressure, p.data(), PutMode::kDeferred), "put p");
    Check(engine.value()->PerformPuts(), "PerformPuts");
  }
  Check(engine.value()->Close(), "close");
  std::printf("  engine '%s': wrote %d steps x %llu cells to %s\n",
              io.engine_type().c_str(), kSteps,
              static_cast<unsigned long long>(kCells), path.c_str());
}

std::vector<double> ReadDensity(Adios& adios, const std::string& path) {
  IO& io = adios.DeclareIO("simulation-input");
  // Reading side needs the same engine selection (comes from the config).
  Variable* density = io.DefineVariable("density", kCells * kSteps, 0,
                                        kCells * kSteps, sizeof(double));
  auto engine = io.Open(path, Mode::kRead);
  Check(engine.status(), "open for read");
  std::vector<double> all(kCells * kSteps);
  Check(engine.value()->Get(*density, all.data()), "get density");
  Check(engine.value()->Close(), "close reader");
  return all;
}

std::string ConfigFor(const char* engine_type) {
  return std::string(R"(<adios-config>
    <io name="simulation-output">
      <engine type=")") + engine_type + R"(">
        <parameter key="BufferChunkSize" value="8M"/>
      </engine>
    </io>
    <io name="simulation-input">
      <engine type=")" + engine_type + R"("/>
    </io>
  </adios-config>)";
}

}  // namespace

int main() {
  namespace stdfs = std::filesystem;
  const stdfs::path root = stdfs::temp_directory_path() / "lsmio-a2-migration";
  stdfs::remove_all(root);
  stdfs::create_directories(root);

  lsmio::RegisterLsmioPlugin();

  std::printf("run 1: default BPLite engine\n");
  std::vector<double> bp_data;
  {
    Adios adios(lsmio::vfs::PosixVfs(), ConfigFor("BPLite"));
    WriteCheckpoints(adios, (root / "out-bp").string());
    bp_data = ReadDensity(adios, (root / "out-bp").string());
  }

  std::printf("run 2: LSMIO plugin — same code, different XML\n");
  std::vector<double> lsmio_data;
  {
    Adios adios(lsmio::vfs::PosixVfs(), ConfigFor("LsmioPlugin"));
    WriteCheckpoints(adios, (root / "out-lsmio").string());
    lsmio_data = ReadDensity(adios, (root / "out-lsmio").string());
  }

  if (bp_data != lsmio_data) {
    std::fprintf(stderr, "MISMATCH between engines\n");
    return 1;
  }
  std::printf("both engines produced identical data (%zu doubles compared)\n",
              bp_data.size());

  stdfs::remove_all(root);
  std::printf("a2 migration verified OK\n");
  return 0;
}
