// Quickstart: the three LSMIO interfaces in five minutes.
//
//   1. K/V API    — Manager::Open, Put/Get/Append/WriteBarrier
//   2. FStream    — std::iostream over the store
//   3. ADIOS2-style plugin — switch an A2 application to LSMIO via XML
//
// Writes under a temporary directory on the local file system and cleans
// up after itself. Run:  ./quickstart
#include <cstdio>
#include <filesystem>

#include "a2/a2.h"
#include "core/lsmio.h"
#include "vfs/posix_vfs.h"

namespace {

void Check(const lsmio::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FAILED %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "lsmio-quickstart";
  fs::remove_all(root);
  fs::create_directories(root);

  // ------------------------------------------------------------------
  // 1. The K/V API (paper §3.1.5): the interface LSMIO itself uses.
  // ------------------------------------------------------------------
  {
    lsmio::LsmioOptions options;  // defaults = the paper's checkpoint config:
                                  // WAL/compression/cache/compaction off
    std::unique_ptr<lsmio::Manager> manager;
    Check(lsmio::Manager::Open(options, (root / "kv-store").string(), &manager),
          "Manager::Open");

    Check(manager->Put("ckpt/step", "000042"), "Put");
    Check(manager->PutDouble("ckpt/energy", -1.0625e3), "PutDouble");
    Check(manager->Append("ckpt/log", "step 42 written;"), "Append");

    // The write barrier is the durability point (paper: called implicitly
    // at the end of a checkpoint write).
    Check(manager->WriteBarrier(lsmio::BarrierMode::kSync), "WriteBarrier");

    std::string step;
    Check(manager->Get("ckpt/step", &step), "Get");
    double energy = 0;
    Check(manager->GetDouble("ckpt/energy", &energy), "GetDouble");
    std::printf("K/V API:      step=%s energy=%.4f  (puts=%llu, flushes=%llu)\n",
                step.c_str(), energy,
                static_cast<unsigned long long>(manager->counters().puts),
                static_cast<unsigned long long>(
                    manager->engine_stats().memtable_flushes));
  }

  // ------------------------------------------------------------------
  // 2. The FStream API (paper §3.1.6): IOStream semantics over the store.
  // ------------------------------------------------------------------
  {
    lsmio::LsmioOptions options;
    Check(lsmio::FStreamApi::Initialize(options, (root / "fstream-store").string()),
          "FStreamApi::Initialize");
    {
      lsmio::FStream out("results.csv", std::ios::out);
      out << "step,residual\n";
      for (int step = 1; step <= 3; ++step) {
        out << step << "," << 1.0 / step << "\n";
      }
    }  // close persists the stream
    Check(lsmio::FStreamApi::WriteBarrier(), "FStreamApi::WriteBarrier");

    {
      lsmio::FStream in("results.csv", std::ios::in);
      std::string header;
      std::getline(in, header);
      std::printf("FStream API:  results.csv header='%s' size=%llu bytes\n",
                  header.c_str(), static_cast<unsigned long long>(in.size()));
    }  // all streams must be closed before Cleanup
    Check(lsmio::FStreamApi::Cleanup(), "FStreamApi::Cleanup");
  }

  // ------------------------------------------------------------------
  // 3. The ADIOS2-style plugin (paper §3.1.7): engine chosen by XML only.
  // ------------------------------------------------------------------
  {
    lsmio::RegisterLsmioPlugin();
    const std::string config = R"(
      <adios-config>
        <io name="checkpoint">
          <engine type="LsmioPlugin">
            <parameter key="BufferChunkSize" value="32M"/>
          </engine>
        </io>
      </adios-config>)";

    lsmio::a2::Adios adios(lsmio::vfs::PosixVfs(), config);
    lsmio::a2::IO& io = adios.DeclareIO("checkpoint");
    auto* var = io.DefineVariable("temperature", 1024, 0, 1024, sizeof(double));

    std::vector<double> field(1024);
    for (size_t i = 0; i < field.size(); ++i) field[i] = 300.0 + 0.01 * static_cast<double>(i);

    auto writer = io.Open((root / "ckpt-plugin").string(), lsmio::a2::Mode::kWrite);
    Check(writer.status(), "plugin open");
    Check(writer.value()->Put(*var, field.data(), lsmio::a2::PutMode::kDeferred),
          "plugin Put");
    Check(writer.value()->Close(), "plugin Close");

    std::vector<double> restored(1024);
    auto reader = io.Open((root / "ckpt-plugin").string(), lsmio::a2::Mode::kRead);
    Check(reader.status(), "plugin open (read)");
    Check(reader.value()->Get(*var, restored.data()), "plugin Get");
    std::printf("A2 plugin:    engine=%s restored[1023]=%.2f (expected %.2f)\n",
                io.engine_type().c_str(), restored[1023], field[1023]);
  }

  fs::remove_all(root);
  std::printf("quickstart finished OK\n");
  return 0;
}
