// heat2d_checkpoint: the workload the paper's introduction motivates — an
// iterative stencil solver on N MPI ranks that periodically checkpoints its
// state through LSMIO and can restart after a failure.
//
// A 2-D heat diffusion problem is row-decomposed over 4 ranks (minimpi
// threads). Every K iterations each rank writes its slab plus solver
// metadata to its LSMIO store and calls the write barrier. The program then
// simulates a crash at iteration 60, restarts from the latest checkpoint,
// and verifies the restarted run reaches the exact state of an
// uninterrupted reference run.
//
// Run: ./heat2d_checkpoint
#include <cmath>
#include <cstring>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "core/lsmio.h"
#include "minimpi/minimpi.h"

namespace {

using lsmio::Status;

constexpr int kRanks = 4;
constexpr int kGlobalRows = 64;
constexpr int kCols = 64;
constexpr int kRowsPerRank = kGlobalRows / kRanks;
constexpr int kTotalIterations = 100;
constexpr int kCheckpointInterval = 25;
constexpr double kAlpha = 0.1;

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FAILED %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

// One rank's slab with one halo row above and below.
struct Slab {
  std::vector<double> cells;  // (kRowsPerRank + 2) x kCols

  double& at(int row, int col) { return cells[static_cast<size_t>(row * kCols + col)]; }
  [[nodiscard]] double at(int row, int col) const {
    return cells[static_cast<size_t>(row * kCols + col)];
  }
};

Slab InitialSlab(int rank) {
  Slab slab;
  slab.cells.assign(static_cast<size_t>((kRowsPerRank + 2) * kCols), 0.0);
  // A hot square in the global domain centre.
  for (int local = 1; local <= kRowsPerRank; ++local) {
    const int global = rank * kRowsPerRank + (local - 1);
    for (int col = 0; col < kCols; ++col) {
      if (global >= 24 && global < 40 && col >= 24 && col < 40) {
        slab.at(local, col) = 100.0;
      }
    }
  }
  return slab;
}

void ExchangeHalos(lsmio::minimpi::Comm& comm, Slab& slab) {
  const int rank = comm.rank();
  const std::string top_row(reinterpret_cast<const char*>(&slab.at(1, 0)),
                            kCols * sizeof(double));
  const std::string bottom_row(
      reinterpret_cast<const char*>(&slab.at(kRowsPerRank, 0)),
      kCols * sizeof(double));
  // Send down, receive from above; send up, receive from below.
  if (rank + 1 < comm.size()) comm.Send(rank + 1, 0, bottom_row);
  if (rank > 0) {
    const std::string from_above = comm.Recv(rank - 1, 0);
    std::memcpy(&slab.at(0, 0), from_above.data(), from_above.size());
  }
  if (rank > 0) comm.Send(rank - 1, 1, top_row);
  if (rank + 1 < comm.size()) {
    const std::string from_below = comm.Recv(rank + 1, 1);
    std::memcpy(&slab.at(kRowsPerRank + 1, 0), from_below.data(),
                from_below.size());
  }
}

void Step(Slab& slab) {
  Slab next = slab;
  for (int row = 1; row <= kRowsPerRank; ++row) {
    for (int col = 1; col < kCols - 1; ++col) {
      next.at(row, col) =
          slab.at(row, col) +
          kAlpha * (slab.at(row - 1, col) + slab.at(row + 1, col) +
                    slab.at(row, col - 1) + slab.at(row, col + 1) -
                    4 * slab.at(row, col));
    }
  }
  slab = std::move(next);
}

std::string StoreDir(const std::string& root, int rank) {
  return root + "/heat2d-ckpt/rank" + std::to_string(rank);
}

void WriteCheckpoint(lsmio::Manager& manager, const Slab& slab, int iteration) {
  Check(manager.Put("slab",
                    lsmio::Slice(reinterpret_cast<const char*>(slab.cells.data()),
                                 slab.cells.size() * sizeof(double))),
        "checkpoint slab");
  Check(manager.PutUint64("iteration", static_cast<uint64_t>(iteration)),
        "checkpoint iteration");
  // The paper's write barrier: all buffered data reaches storage here.
  Check(manager.WriteBarrier(lsmio::BarrierMode::kSync), "checkpoint barrier");
}

bool ReadCheckpoint(lsmio::Manager& manager, Slab* slab, int* iteration) {
  uint64_t stored_iteration = 0;
  if (!manager.GetUint64("iteration", &stored_iteration).ok()) return false;
  std::string bytes;
  if (!manager.Get("slab", &bytes).ok()) return false;
  slab->cells.resize(bytes.size() / sizeof(double));
  std::memcpy(slab->cells.data(), bytes.data(), bytes.size());
  *iteration = static_cast<int>(stored_iteration);
  return true;
}

// Runs iterations [start, end); checkpoints when `checkpoint` is true.
Slab RunSolver(lsmio::minimpi::Comm& comm, Slab slab, int start, int end,
               lsmio::Manager* manager) {
  for (int iteration = start; iteration < end; ++iteration) {
    ExchangeHalos(comm, slab);
    Step(slab);
    if (manager != nullptr && (iteration + 1) % kCheckpointInterval == 0) {
      WriteCheckpoint(*manager, slab, iteration + 1);
    }
  }
  return slab;
}

double SlabChecksum(const Slab& slab) {
  double sum = 0;
  for (int row = 1; row <= kRowsPerRank; ++row) {
    for (int col = 0; col < kCols; ++col) sum += slab.at(row, col);
  }
  return sum;
}

}  // namespace

int main() {
  namespace stdfs = std::filesystem;
  const std::string root =
      (stdfs::temp_directory_path() / "lsmio-heat2d").string();
  stdfs::remove_all(root);
  stdfs::create_directories(root);

  std::vector<double> reference(kRanks), restarted(kRanks);

  // Pass 1: uninterrupted reference run (no checkpointing).
  lsmio::minimpi::RunWorld(kRanks, [&](lsmio::minimpi::Comm& comm) {
    Slab slab = RunSolver(comm, InitialSlab(comm.rank()), 0, kTotalIterations,
                          nullptr);
    reference[static_cast<size_t>(comm.rank())] = SlabChecksum(slab);
  });

  // Pass 2: run with checkpointing, "crash" at iteration 60.
  lsmio::minimpi::RunWorld(kRanks, [&](lsmio::minimpi::Comm& comm) {
    lsmio::LsmioOptions options;  // paper checkpoint configuration
    std::unique_ptr<lsmio::Manager> manager;
    Check(lsmio::Manager::Open(options, StoreDir(root, comm.rank()), &manager),
          "open store");
    (void)RunSolver(comm, InitialSlab(comm.rank()), 0, 60, manager.get());
    // Crash: the manager goes away without a final barrier. Everything up
    // to the iteration-50 checkpoint is durable.
  });

  // Pass 3: restart from the latest durable checkpoint and finish the run.
  lsmio::minimpi::RunWorld(kRanks, [&](lsmio::minimpi::Comm& comm) {
    lsmio::LsmioOptions options;
    std::unique_ptr<lsmio::Manager> manager;
    Check(lsmio::Manager::Open(options, StoreDir(root, comm.rank()), &manager),
          "reopen store");

    Slab slab;
    int iteration = 0;
    if (!ReadCheckpoint(*manager, &slab, &iteration)) {
      std::fprintf(stderr, "rank %d: no checkpoint found\n", comm.rank());
      std::exit(1);
    }
    if (comm.rank() == 0) {
      std::printf("restarting from checkpoint at iteration %d\n", iteration);
    }
    slab = RunSolver(comm, std::move(slab), iteration, kTotalIterations,
                     manager.get());
    restarted[static_cast<size_t>(comm.rank())] = SlabChecksum(slab);
  });

  // The restarted run must reach exactly the reference state.
  for (int rank = 0; rank < kRanks; ++rank) {
    const double diff = std::abs(reference[static_cast<size_t>(rank)] -
                                 restarted[static_cast<size_t>(rank)]);
    std::printf("rank %d: reference=%.6f restarted=%.6f diff=%.2e\n", rank,
                reference[static_cast<size_t>(rank)],
                restarted[static_cast<size_t>(rank)], diff);
    if (diff > 1e-9) {
      std::fprintf(stderr, "MISMATCH after restart\n");
      return 1;
    }
  }

  stdfs::remove_all(root);
  std::printf("heat2d checkpoint/restart verified OK\n");
  return 0;
}
