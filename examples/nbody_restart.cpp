// nbody_restart: checkpointing a particle simulation through the FStream
// API (paper §3.1.6) — the "drop-in user-space POSIX" path where existing
// code that writes binary state files keeps its std::iostream idioms and
// the bytes land in the LSM store.
//
// A deterministic N-body integrator runs 200 steps, snapshotting the
// particle array every 50 steps into "snapshots/step-<n>.bin" streams. The
// program then restarts from step 100 and verifies it reproduces the
// uninterrupted trajectory exactly, and demonstrates point-in-time reads
// (any retained snapshot is addressable).
//
// Run: ./nbody_restart
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/random.h"
#include "core/lsmio.h"

namespace {

using lsmio::Status;

constexpr int kParticles = 512;
constexpr int kSteps = 200;
constexpr int kSnapshotInterval = 50;
constexpr double kDt = 1e-3;
constexpr double kSoftening = 1e-2;

struct Particle {
  double x, y, z;
  double vx, vy, vz;
  double mass;
};

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FAILED %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

std::vector<Particle> InitialParticles() {
  std::vector<Particle> particles(kParticles);
  lsmio::Rng rng(0xa57e801d);
  for (auto& particle : particles) {
    particle.x = rng.NextDouble() * 2 - 1;
    particle.y = rng.NextDouble() * 2 - 1;
    particle.z = rng.NextDouble() * 2 - 1;
    particle.vx = particle.vy = particle.vz = 0;
    particle.mass = 0.5 + rng.NextDouble();
  }
  return particles;
}

void Step(std::vector<Particle>& particles) {
  // Direct-sum gravity, leapfrog-ish integration; deterministic.
  for (auto& particle : particles) {
    double ax = 0, ay = 0, az = 0;
    for (const auto& other : particles) {
      const double dx = other.x - particle.x;
      const double dy = other.y - particle.y;
      const double dz = other.z - particle.z;
      const double r2 = dx * dx + dy * dy + dz * dz + kSoftening;
      const double inv_r3 = 1.0 / (r2 * std::sqrt(r2));
      ax += other.mass * dx * inv_r3;
      ay += other.mass * dy * inv_r3;
      az += other.mass * dz * inv_r3;
    }
    particle.vx += kDt * ax;
    particle.vy += kDt * ay;
    particle.vz += kDt * az;
  }
  for (auto& particle : particles) {
    particle.x += kDt * particle.vx;
    particle.y += kDt * particle.vy;
    particle.z += kDt * particle.vz;
  }
}

std::string SnapshotName(int step) {
  return "snapshots/step-" + std::to_string(step) + ".bin";
}

void WriteSnapshot(const std::vector<Particle>& particles, int step) {
  lsmio::FStream out(SnapshotName(step), std::ios::out | std::ios::binary);
  if (!out.good()) Check(Status::IoError("open failed"), "snapshot open");
  const int32_t count = kParticles;
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  out.write(reinterpret_cast<const char*>(particles.data()),
            static_cast<std::streamsize>(particles.size() * sizeof(Particle)));
  out.flush();
  if (!out.good()) Check(Status::IoError("write failed"), "snapshot write");
  Check(lsmio::FStreamApi::WriteBarrier(), "snapshot barrier");
}

std::vector<Particle> ReadSnapshot(int step) {
  lsmio::FStream in(SnapshotName(step), std::ios::in | std::ios::binary);
  if (!in.good()) Check(Status::IoError("open failed"), "snapshot read-open");
  int32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  std::vector<Particle> particles(static_cast<size_t>(count));
  in.read(reinterpret_cast<char*>(particles.data()),
          static_cast<std::streamsize>(particles.size() * sizeof(Particle)));
  if (!in.good()) Check(Status::IoError("short read"), "snapshot read");
  return particles;
}

double Energy(const std::vector<Particle>& particles) {
  double kinetic = 0;
  for (const auto& particle : particles) {
    kinetic += 0.5 * particle.mass *
               (particle.vx * particle.vx + particle.vy * particle.vy +
                particle.vz * particle.vz);
  }
  return kinetic;
}

}  // namespace

int main() {
  namespace stdfs = std::filesystem;
  const std::string store =
      (stdfs::temp_directory_path() / "lsmio-nbody").string();
  stdfs::remove_all(store);

  lsmio::LsmioOptions options;         // paper checkpoint configuration
  options.fstream_chunk_size = 256 * 1024;  // particles span several chunks
  Check(lsmio::FStreamApi::Initialize(options, store), "FStreamApi::Initialize");

  // Reference run with snapshots.
  std::vector<Particle> particles = InitialParticles();
  for (int step = 1; step <= kSteps; ++step) {
    Step(particles);
    if (step % kSnapshotInterval == 0) {
      WriteSnapshot(particles, step);
      std::printf("snapshot @ step %3d  kinetic energy %.6f\n", step,
                  Energy(particles));
    }
  }
  const double reference_energy = Energy(particles);

  // Restart from step 100 and recompute the tail of the trajectory.
  std::vector<Particle> restarted = ReadSnapshot(100);
  for (int step = 101; step <= kSteps; ++step) Step(restarted);
  const double restarted_energy = Energy(restarted);

  std::printf("reference: %.12f\nrestarted: %.12f\n", reference_energy,
              restarted_energy);
  if (std::memcmp(particles.data(), restarted.data(),
                  particles.size() * sizeof(Particle)) != 0) {
    std::fprintf(stderr, "MISMATCH: restart diverged from reference\n");
    return 1;
  }

  // Any retained snapshot remains addressable (write-once-read-rarely).
  const std::vector<Particle> old = ReadSnapshot(50);
  std::printf("snapshot@50 first particle x=%.6f (point-in-time read OK)\n",
              old[0].x);

  Check(lsmio::FStreamApi::Cleanup(), "FStreamApi::Cleanup");
  stdfs::remove_all(store);
  std::printf("nbody restart verified OK\n");
  return 0;
}
