#!/usr/bin/env bash
# LSMIO analysis matrix: lint (Clang thread-safety + clang-tidy), TSan, ASan.
#
# Each leg configures its own build tree under build-ci/ and runs the tier-1
# ctest suite. Legs that need a toolchain the host lacks (the lint leg needs
# Clang) are SKIPPED with a notice rather than failed, so the script is
# useful both on full CI images and on minimal dev boxes.
#
# Usage:
#   ci/check.sh            # run all legs
#   ci/check.sh lint       # one leg: lint | tsan | asan | plain
set -u -o pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 4)"

PASS=()
FAIL=()
SKIP=()

run_leg() {
  local name="$1"; shift
  local builddir="$ROOT/build-ci/$name"
  echo
  echo "=== [$name] cmake $* ==="
  if ! cmake -B "$builddir" -S "$ROOT" "$@" >"$builddir.configure.log" 2>&1; then
    # cmake writes the log next to the build dir; show the tail on failure.
    mkdir -p "$(dirname "$builddir")"
    tail -30 "$builddir.configure.log" || true
    FAIL+=("$name (configure)")
    return 1
  fi
  if ! cmake --build "$builddir" -j "$JOBS" >"$builddir.build.log" 2>&1; then
    tail -40 "$builddir.build.log" || true
    FAIL+=("$name (build)")
    return 1
  fi
  if ! ctest --test-dir "$builddir" --output-on-failure -j "$JOBS"; then
    FAIL+=("$name (test)")
    return 1
  fi
  PASS+=("$name")
}

leg_plain() {
  run_leg plain
}

leg_lint() {
  local clangxx
  clangxx="$(command -v clang++ || true)"
  if [ -z "$clangxx" ]; then
    echo "=== [lint] SKIPPED: clang++ not found (thread-safety analysis needs Clang) ==="
    SKIP+=("lint (no clang++)")
    return 0
  fi
  run_leg lint -DCMAKE_CXX_COMPILER="$clangxx" -DLSMIO_LINT=ON
}

leg_tsan() {
  run_leg tsan -DLSMIO_SANITIZE=thread
}

leg_asan() {
  run_leg asan -DLSMIO_SANITIZE=address
}

mkdir -p "$ROOT/build-ci"

case "${1:-all}" in
  plain) leg_plain ;;
  lint)  leg_lint ;;
  tsan)  leg_tsan ;;
  asan)  leg_asan ;;
  all)
    leg_lint
    leg_tsan
    leg_asan
    ;;
  *)
    echo "usage: ci/check.sh [all|plain|lint|tsan|asan]" >&2
    exit 2
    ;;
esac

echo
echo "=== analysis matrix summary ==="
for leg in "${PASS[@]:-}";  do [ -n "$leg" ] && echo "  PASS  $leg"; done
for leg in "${SKIP[@]:-}";  do [ -n "$leg" ] && echo "  SKIP  $leg"; done
for leg in "${FAIL[@]:-}";  do [ -n "$leg" ] && echo "  FAIL  $leg"; done

[ "${#FAIL[@]}" -eq 0 ]
