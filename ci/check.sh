#!/usr/bin/env bash
# LSMIO analysis matrix: lint (Clang thread-safety + clang-tidy), TSan, ASan,
# and the bench smoke leg the CI pipeline runs.
#
# Each leg configures its own build tree under build-ci/ and runs the tier-1
# ctest suite. Legs that need a toolchain the host lacks (the lint leg needs
# Clang) are SKIPPED with a notice rather than failed, so the script is
# useful both on full CI images and on minimal dev boxes. Under GitHub
# Actions a skip additionally emits a ::warning:: annotation so it is
# visible on the run instead of silently passing.
#
# Usage:
#   ci/check.sh                 # run the default legs (lint, tsan, asan, shards)
#   ci/check.sh --leg asan      # run exactly one leg
#   ci/check.sh asan            # same (positional form kept for compat)
# Legs: plain | lint | tsan | asan | shards | valuelog | bench | tail-latency |
#       bench-files | bench-compare | all
set -u -o pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 4)"

PASS=()
FAIL=()
SKIP=()

note_skip() {
  local name="$1" reason="$2"
  echo "=== [$name] SKIPPED: $reason ==="
  if [ "${GITHUB_ACTIONS:-}" = "true" ]; then
    echo "::warning title=ci/check.sh leg skipped::$name skipped: $reason"
  fi
  SKIP+=("$name ($reason)")
}

run_leg() {
  local name="$1"; shift
  local builddir="$ROOT/build-ci/$name"
  mkdir -p "$ROOT/build-ci"
  echo
  echo "=== [$name] cmake $* ==="
  if ! cmake -B "$builddir" -S "$ROOT" "$@" >"$builddir.configure.log" 2>&1; then
    tail -30 "$builddir.configure.log" || true
    FAIL+=("$name (configure)")
    return 1
  fi
  if ! cmake --build "$builddir" -j "$JOBS" >"$builddir.build.log" 2>&1; then
    tail -40 "$builddir.build.log" || true
    FAIL+=("$name (build)")
    return 1
  fi
  if ! ctest --test-dir "$builddir" --output-on-failure -j "$JOBS"; then
    FAIL+=("$name (test)")
    return 1
  fi
  PASS+=("$name")
}

leg_plain() {
  run_leg plain
}

leg_lint() {
  local clangxx
  clangxx="$(command -v clang++ || true)"
  if [ -z "$clangxx" ]; then
    note_skip lint "clang++ not found (thread-safety analysis needs Clang)"
    return 0
  fi
  # LSMIO_LINT_REQUIRE_PLUGIN=1 in the environment turns a missing
  # lsmio-checks plugin (no clang-tidy dev headers) from a skip-with-warning
  # into a hard configure failure.
  local extra=()
  if [ "${LSMIO_LINT_REQUIRE_PLUGIN:-0}" = "1" ]; then
    extra+=(-DLSMIO_LINT_REQUIRE_PLUGIN=ON)
  fi
  run_leg lint -DCMAKE_CXX_COMPILER="$clangxx" -DLSMIO_LINT=ON \
    ${extra[@]+"${extra[@]}"}
  local rc=$?
  # Surface whether the lsmio-* project checks were actually live: a lint
  # leg that quietly ran without the plugin is easy to mistake for full
  # coverage (the configure-time gate guarantees the inverse — if the
  # plugin IS active, all four checks were proven to fire).
  local cfglog="$ROOT/build-ci/lint.configure.log"
  if [ "$rc" -eq 0 ] && [ -f "$cfglog" ]; then
    if grep -q "lsmio-checks plugin gate passed" "$cfglog"; then
      echo "=== [lint] lsmio-checks plugin active (gate: 4/4 seeded violations caught) ==="
    elif [ "${GITHUB_ACTIONS:-}" = "true" ]; then
      echo "::warning title=lsmio-checks plugin inactive::lint leg ran without the lsmio-* project checks (clang-tidy dev headers missing?)"
    else
      echo "=== [lint] NOTE: lsmio-checks plugin inactive (clang-tidy dev headers missing?) ==="
    fi
  fi
  return $rc
}

leg_tsan() {
  run_leg tsan -DLSMIO_SANITIZE=thread
}

leg_asan() {
  run_leg asan -DLSMIO_SANITIZE=address
}

# Full suite under TSan with a 4-way sharded store: every test that opens a
# DB through the env-sensitive paths (crash soak) runs sharded, and the rest
# of the suite exercises the sharded open/reopen/destroy machinery compiled
# in. export/unset rather than a prefix assignment: `VAR=x fn` would leak
# the variable past the function call in bash.
leg_shards() {
  export LSMIO_SHARDS=4
  run_leg shards -DLSMIO_SANITIZE=thread
  local rc=$?
  unset LSMIO_SHARDS
  return $rc
}

# Full suite under TSan with WAL-time key/value separation on: the crash
# soak runs with a 64-byte threshold and blob segments in its fault
# schedule, and the rest of the suite exercises the value-log machinery
# compiled in.
leg_valuelog() {
  export LSMIO_VALUE_LOG=1
  run_leg valuelog -DLSMIO_SANITIZE=thread
  local rc=$?
  unset LSMIO_VALUE_LOG
  return $rc
}

# Tiny-config benchmark smoke run: builds the bench binaries, runs them with
# a deliberately small workload, and validates that both emit parseable JSON
# into bench_results/. Catches bench bit-rot without burning CI minutes on a
# real measurement.
leg_bench() {
  local name=bench
  local builddir="$ROOT/build-ci/$name"
  local outdir="$ROOT/bench_results"
  if ! command -v python3 >/dev/null 2>&1; then
    note_skip "$name" "python3 not found (needed to validate bench JSON)"
    return 0
  fi
  mkdir -p "$ROOT/build-ci" "$outdir"
  echo
  echo "=== [$name] bench smoke (tiny config) ==="
  if ! cmake -B "$builddir" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
       >"$builddir.configure.log" 2>&1; then
    tail -30 "$builddir.configure.log" || true
    FAIL+=("$name (configure)")
    return 1
  fi
  if ! cmake --build "$builddir" -j "$JOBS" \
       --target bench_micro_lsm bench_concurrent_writers bench_value_log \
       >"$builddir.build.log" 2>&1; then
    tail -40 "$builddir.build.log" || true
    FAIL+=("$name (build)")
    return 1
  fi
  if ! "$builddir/bench/bench_micro_lsm" \
       --benchmark_min_time=0.01 \
       --benchmark_out="$outdir/micro_lsm_smoke.json" \
       --benchmark_out_format=json; then
    FAIL+=("$name (bench_micro_lsm)")
    return 1
  fi
  if ! LSMIO_BENCH_OPS=64 LSMIO_BENCH_VALUE_BYTES=512 LSMIO_BENCH_MAX_THREADS=2 \
       "$builddir/bench/bench_concurrent_writers" \
       >"$outdir/concurrent_writers_smoke.json"; then
    FAIL+=("$name (bench_concurrent_writers)")
    return 1
  fi
  # 64 x 256 KiB values: small enough for CI, large enough that every value
  # crosses the separation threshold and compactions actually run.
  if ! LSMIO_BENCH_OPS=64 LSMIO_BENCH_VALUE_BYTES=$((256 * 1024)) \
       "$builddir/bench/bench_value_log" \
       >"$outdir/value_log_smoke.json"; then
    FAIL+=("$name (bench_value_log)")
    return 1
  fi
  if ! python3 - "$outdir/micro_lsm_smoke.json" \
       "$outdir/concurrent_writers_smoke.json" \
       "$outdir/value_log_smoke.json" <<'PY'
import json, sys
micro = json.load(open(sys.argv[1]))
assert micro.get("benchmarks"), "bench_micro_lsm produced no benchmarks"
conc = json.load(open(sys.argv[2]))
assert conc.get("results"), "bench_concurrent_writers produced no results"
vlog = json.load(open(sys.argv[3]))
assert len(vlog.get("results", [])) == 2, "bench_value_log produced no A/B pair"
print(f"bench JSON ok: {len(micro['benchmarks'])} micro benchmarks, "
      f"{len(conc['results'])} concurrent-writer configs, "
      f"value-log compaction reduction {vlog['compaction_bytes_reduction']}x")
PY
  then
    FAIL+=("$name (json validation)")
    return 1
  fi
  if ! validate_bench_results; then
    FAIL+=("$name (bench_results manifest)")
    return 1
  fi
  PASS+=("$name")
}

# Validates the bench_results/ filename scheme so stale artifacts cannot
# accumulate under two names for the same bench again:
#   * committed real measurements use bare names (concurrent_writers.json);
#   * transient tiny-config smoke outputs use the *_smoke.json suffix
#     (gitignored; regenerated by the bench / tail-latency legs);
#   * regression-gate baselines live under bench_results/baseline/ with the
#     same *_smoke.json names they gate.
# Any other file in the directory fails the check.
validate_bench_results() {
  local outdir="$ROOT/bench_results"
  local committed="concurrent_writers.json value_log.json tail_latency.json \
fig10_read.json multiget.json figures.txt"
  local ok=0
  local f base
  for f in "$outdir"/* "$outdir"/baseline/*; do
    [ -e "$f" ] || continue
    base="$(basename "$f")"
    case "$f" in
      "$outdir"/baseline) continue ;;
      "$outdir"/baseline/*)
        case "$base" in
          *_smoke.json) continue ;;
          *) echo "bench_results: unexpected baseline file: baseline/$base" ;;
        esac
        ;;
      *)
        case " $committed " in
          *" $base "*) continue ;;
          *)
            case "$base" in
              *_smoke.json) continue ;;
              *) echo "bench_results: unexpected file: $base (committed measurements use bare names, smoke outputs *_smoke.json)" ;;
            esac
            ;;
        esac
        ;;
    esac
    ok=1
  done
  if [ "$ok" -ne 0 ] && [ "${GITHUB_ACTIONS:-}" = "true" ]; then
    echo "::error title=bench_results manifest::unexpected files in bench_results/ (see log)"
  fi
  [ "$ok" -eq 0 ] && echo "bench_results: filename manifest ok"
  return "$ok"
}

leg_bench_files() {
  if validate_bench_results; then
    PASS+=("bench-files")
  else
    FAIL+=("bench-files")
    return 1
  fi
}

# Bench-regression gate: diffs the *_smoke.json outputs of the bench and
# tail-latency legs against the committed baselines in
# bench_results/baseline/. Regressions beyond 15% warn by default (CI
# runner perf is noisy); BENCH_COMPARE_STRICT=1 makes them fail.
leg_bench_compare() {
  local name=bench-compare
  if ! command -v python3 >/dev/null 2>&1; then
    note_skip "$name" "python3 not found"
    return 0
  fi
  echo
  echo "=== [$name] bench-regression gate ==="
  if python3 "$ROOT/ci/bench_compare.py"; then
    PASS+=("$name")
  else
    FAIL+=("$name")
    return 1
  fi
}

# Tiny-config tail-latency smoke: runs the hard-stall vs graduated A/B with
# a seconds-long workload and validates the JSON shape. The committed
# bench_results/tail_latency.json is a real measurement; the smoke run
# writes to tail_latency_smoke.json so it never clobbers it.
leg_tail_latency() {
  local name=tail-latency
  local builddir="$ROOT/build-ci/bench"
  local outdir="$ROOT/bench_results"
  if ! command -v python3 >/dev/null 2>&1; then
    note_skip "$name" "python3 not found (needed to validate bench JSON)"
    return 0
  fi
  mkdir -p "$ROOT/build-ci" "$outdir"
  echo
  echo "=== [$name] tail-latency smoke (tiny config) ==="
  if ! cmake -B "$builddir" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
       >"$builddir.configure.log" 2>&1; then
    tail -30 "$builddir.configure.log" || true
    FAIL+=("$name (configure)")
    return 1
  fi
  if ! cmake --build "$builddir" -j "$JOBS" --target bench_tail_latency \
       >"$builddir.build.log" 2>&1; then
    tail -40 "$builddir.build.log" || true
    FAIL+=("$name (build)")
    return 1
  fi
  if ! LSMIO_BENCH_OPS=256 LSMIO_BENCH_VALUE_BYTES=1024 \
       LSMIO_BENCH_WRITERS=2 LSMIO_BENCH_READERS=1 \
       LSMIO_BENCH_BG_BYTES_PER_SEC=$((4 * 1024 * 1024)) \
       "$builddir/bench/bench_tail_latency" \
       >"$outdir/tail_latency_smoke.json"; then
    FAIL+=("$name (bench_tail_latency)")
    return 1
  fi
  if ! python3 - "$outdir/tail_latency_smoke.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
modes = doc.get("modes", [])
assert [m.get("mode") for m in modes] == ["hard_stall", "graduated"], \
    f"expected a hard_stall/graduated A/B pair, got {modes}"
for m in modes:
    lat = m["write_latency_us"]
    assert lat["count"] == doc["total_ops"], \
        f"{m['mode']}: histogram saw {lat['count']} of {doc['total_ops']} writes"
    for pct in ("p50", "p95", "p99", "max"):
        assert lat[pct] >= 0, f"{m['mode']}: bad {pct}"
    stalls = m["stalls"]
    assert stalls["write_stall_micros"] == (
        stalls["stall_memtable_micros"] + stalls["stall_l0_micros"]), \
        f"{m['mode']}: stall-cause split does not sum to the total"
assert modes[0]["stalls"]["slowdown_writes"] == 0, "hard_stall mode was paced"
assert "p99_improvement" in doc and "throughput_ratio" in doc
print(f"tail-latency JSON ok: p99 improvement {doc['p99_improvement']}x "
      f"at {doc['throughput_ratio']}x throughput (tiny config; "
      "the committed tail_latency.json holds the real measurement)")
PY
  then
    FAIL+=("$name (json validation)")
    return 1
  fi
  if ! validate_bench_results; then
    FAIL+=("$name (bench_results manifest)")
    return 1
  fi
  PASS+=("$name")
}

# --- argument parsing --------------------------------------------------------

LEGS=()
while [ "$#" -gt 0 ]; do
  case "$1" in
    --leg)
      if [ "$#" -lt 2 ]; then
        echo "error: --leg requires a name" >&2
        exit 2
      fi
      LEGS+=("$2")
      shift 2
      ;;
    --leg=*)
      LEGS+=("${1#--leg=}")
      shift
      ;;
    -h|--help)
      echo "usage: ci/check.sh [--leg <name>]... [all|plain|lint|tsan|asan|shards|valuelog|bench|tail-latency|bench-files|bench-compare]"
      exit 0
      ;;
    *)
      LEGS+=("$1")
      shift
      ;;
  esac
done
[ "${#LEGS[@]}" -eq 0 ] && LEGS=(all)

for leg in "${LEGS[@]}"; do
  case "$leg" in
    plain) leg_plain ;;
    lint)  leg_lint ;;
    tsan)  leg_tsan ;;
    asan)  leg_asan ;;
    shards) leg_shards ;;
    valuelog) leg_valuelog ;;
    bench) leg_bench ;;
    tail-latency) leg_tail_latency ;;
    bench-files) leg_bench_files ;;
    bench-compare) leg_bench_compare ;;
    all)
      leg_lint
      leg_tsan
      leg_asan
      leg_shards
      leg_valuelog
      ;;
    *)
      echo "usage: ci/check.sh [--leg <name>]... [all|plain|lint|tsan|asan|shards|valuelog|bench|tail-latency|bench-files|bench-compare]" >&2
      exit 2
      ;;
  esac
done

echo
echo "=== analysis matrix summary ==="
for leg in "${PASS[@]:-}";  do [ -n "$leg" ] && echo "  PASS  $leg"; done
for leg in "${SKIP[@]:-}";  do [ -n "$leg" ] && echo "  SKIP  $leg"; done
for leg in "${FAIL[@]:-}";  do [ -n "$leg" ] && echo "  FAIL  $leg"; done

# Exit non-zero iff any leg failed; skips are not failures.
[ "${#FAIL[@]}" -eq 0 ]
