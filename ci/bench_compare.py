#!/usr/bin/env python3
"""Bench-regression gate: diff bench-smoke JSON against committed baselines.

Compares the tiny-config smoke outputs (bench_results/*_smoke.json, written
by `ci/check.sh --leg bench` / `--leg tail-latency`) against the committed
baselines in bench_results/baseline/ and flags any metric that regressed by
more than the threshold (default 15%): throughput-like metrics must not
drop, latency-like metrics (p99 etc.) must not rise.

CI runners have noisy, heterogeneous performance, so the default outcome of
a regression is a GitHub `::warning::` annotation with exit 0 — visible on
the run without flaking the pipeline. Set BENCH_COMPARE_STRICT=1 (or pass
--strict) to turn regressions into a hard failure; the nightly workflow
does, after remeasuring the baseline on the same runner class.

Usage:
  ci/bench_compare.py                     # compare, warn on regressions
  ci/bench_compare.py --strict            # compare, fail on regressions
  ci/bench_compare.py --update-baselines  # snapshot current smoke outputs
  ci/bench_compare.py --baseline-dir D --current-dir D2 --threshold 0.15
"""

import argparse
import json
import os
import shutil
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Smoke files the gate knows how to diff. Every entry must exist in the
# current dir when the gate runs after the bench + tail-latency legs.
SMOKE_FILES = [
    "micro_lsm_smoke.json",
    "concurrent_writers_smoke.json",
    "value_log_smoke.json",
    "tail_latency_smoke.json",
]


def extract_metrics(filename, doc):
    """Returns {metric_name: (value, direction)} with direction 'higher' or
    'lower' (which way is better)."""
    metrics = {}
    if filename == "micro_lsm_smoke.json":
        # google-benchmark schema: real_time is the per-iteration wall time.
        for b in doc.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            metrics[f"micro_lsm/{b['name']}/real_time"] = (b["real_time"], "lower")
    elif filename == "concurrent_writers_smoke.json":
        for r in doc.get("results", []):
            name = (f"concurrent_writers/t{r['threads']}"
                    f"_gc{int(r['group_commit'])}_s{r['num_shards']}")
            metrics[f"{name}/puts_per_sec"] = (r["puts_per_sec"], "higher")
    elif filename == "value_log_smoke.json":
        for r in doc.get("results", []):
            name = f"value_log/threshold{r['value_log_threshold']}"
            metrics[f"{name}/mib_per_sec"] = (r["mib_per_sec"], "higher")
            metrics[f"{name}/write_amp"] = (r["write_amp"], "lower")
    elif filename == "tail_latency_smoke.json":
        for m in doc.get("modes", []):
            name = f"tail_latency/{m['mode']}"
            metrics[f"{name}/puts_per_sec"] = (m["puts_per_sec"], "higher")
            metrics[f"{name}/p99_write_us"] = (m["write_latency_us"]["p99"], "lower")
    return metrics


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    return extract_metrics(os.path.basename(path), doc)


def annotate(kind, title, message):
    if os.environ.get("GITHUB_ACTIONS") == "true":
        print(f"::{kind} title={title}::{message}")


def compare(baseline_dir, current_dir, threshold, strict):
    regressions = []
    compared = 0
    missing = []
    for name in SMOKE_FILES:
        current_path = os.path.join(current_dir, name)
        baseline_path = os.path.join(baseline_dir, name)
        if not os.path.exists(current_path):
            missing.append(f"{name} (no current smoke output)")
            continue
        if not os.path.exists(baseline_path):
            missing.append(f"{name} (no committed baseline)")
            continue
        base = load_metrics(baseline_path)
        cur = load_metrics(current_path)
        for metric, (base_value, direction) in sorted(base.items()):
            if metric not in cur:
                missing.append(f"{metric} (present in baseline, absent now)")
                continue
            cur_value, _ = cur[metric]
            compared += 1
            if base_value <= 0:
                continue  # nothing sane to ratio against
            ratio = cur_value / base_value
            if direction == "higher":
                regressed = ratio < 1.0 - threshold
                delta = f"{(1.0 - ratio) * 100:.1f}% slower"
            else:
                regressed = ratio > 1.0 + threshold
                delta = f"{(ratio - 1.0) * 100:.1f}% higher"
            if regressed:
                regressions.append(
                    f"{metric}: {base_value:.3g} -> {cur_value:.3g} ({delta})")

    for m in missing:
        print(f"bench-compare: SKIP {m}")
    print(f"bench-compare: {compared} metrics compared, "
          f"{len(regressions)} regressed beyond {threshold * 100:.0f}%")
    for r in regressions:
        print(f"bench-compare: REGRESSION {r}")
        annotate("warning" if not strict else "error",
                 "bench regression", r)
    if regressions and strict:
        return 1
    if regressions:
        print("bench-compare: warn-only mode "
              "(set BENCH_COMPARE_STRICT=1 to fail on regressions)")
    return 0


def update_baselines(baseline_dir, current_dir):
    os.makedirs(baseline_dir, exist_ok=True)
    copied = 0
    for name in SMOKE_FILES:
        src = os.path.join(current_dir, name)
        if not os.path.exists(src):
            print(f"bench-compare: no {name} to snapshot "
                  "(run ci/check.sh --leg bench --leg tail-latency first)")
            continue
        load_metrics(src)  # validate the schema before committing to it
        shutil.copyfile(src, os.path.join(baseline_dir, name))
        copied += 1
        print(f"bench-compare: baseline updated: {name}")
    return 0 if copied else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir",
                        default=os.path.join(REPO_ROOT, "bench_results", "baseline"))
    parser.add_argument("--current-dir",
                        default=os.path.join(REPO_ROOT, "bench_results"))
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional regression tolerance (default 0.15)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regressions (default: warn only)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="snapshot current smoke outputs as the baselines")
    args = parser.parse_args()

    if args.update_baselines:
        return update_baselines(args.baseline_dir, args.current_dir)
    strict = args.strict or os.environ.get("BENCH_COMPARE_STRICT") == "1"
    return compare(args.baseline_dir, args.current_dir, args.threshold, strict)


if __name__ == "__main__":
    sys.exit(main())
