#include "common/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/random.h"

namespace lsmio {
namespace {

TEST(CodingTest, Fixed16RoundTrip) {
  std::string s;
  PutFixed16(&s, 0);
  PutFixed16(&s, 1);
  PutFixed16(&s, 0xbeef);
  PutFixed16(&s, 0xffff);
  ASSERT_EQ(s.size(), 8u);
  EXPECT_EQ(DecodeFixed16(s.data() + 0), 0);
  EXPECT_EQ(DecodeFixed16(s.data() + 2), 1);
  EXPECT_EQ(DecodeFixed16(s.data() + 4), 0xbeef);
  EXPECT_EQ(DecodeFixed16(s.data() + 6), 0xffff);
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v = 0; v < 100000; v += 7777) PutFixed32(&s, v);
  const char* p = s.data();
  for (uint32_t v = 0; v < 100000; v += 7777) {
    EXPECT_EQ(DecodeFixed32(p), v);
    p += 4;
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  // Powers of two and their neighbours hit every byte pattern boundary.
  for (int power = 0; power <= 63; ++power) {
    const uint64_t v = 1ULL << power;
    PutFixed64(&s, v - 1);
    PutFixed64(&s, v);
    PutFixed64(&s, v + 1);
  }
  const char* p = s.data();
  for (int power = 0; power <= 63; ++power) {
    const uint64_t v = 1ULL << power;
    EXPECT_EQ(DecodeFixed64(p), v - 1);
    EXPECT_EQ(DecodeFixed64(p + 8), v);
    EXPECT_EQ(DecodeFixed64(p + 16), v + 1);
    p += 24;
  }
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string s;
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 32; ++i) {
    values.push_back(1u << i);
    values.push_back((1u << i) - 1);
    values.push_back((1u << i) + 1);
  }
  values.push_back(0);
  values.push_back(std::numeric_limits<uint32_t>::max());
  for (const uint32_t v : values) PutVarint32(&s, v);

  Slice input(s);
  for (const uint32_t expected : values) {
    uint32_t actual = 0;
    ASSERT_TRUE(GetVarint32(&input, &actual));
    EXPECT_EQ(actual, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint64RoundTrip) {
  std::string s;
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  std::numeric_limits<uint64_t>::max()};
  Rng rng(42);
  for (int i = 0; i < 200; ++i) values.push_back(rng.Next());
  for (const uint64_t v : values) PutVarint64(&s, v);

  Slice input(s);
  for (const uint64_t expected : values) {
    uint64_t actual = 0;
    ASSERT_TRUE(GetVarint64(&input, &actual));
    EXPECT_EQ(actual, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, VarintLengthMatchesEncodedSize) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, (1ULL << 20),
                     (1ULL << 35), ~0ULL}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v)) << "v=" << v;
  }
}

TEST(CodingTest, Varint32Truncated) {
  std::string s;
  PutVarint32(&s, 1u << 30);  // 5-byte encoding
  for (size_t keep = 0; keep + 1 < s.size(); ++keep) {
    Slice input(s.data(), keep);
    uint32_t v;
    EXPECT_FALSE(GetVarint32(&input, &v)) << "keep=" << keep;
  }
}

TEST(CodingTest, Varint32Overflow) {
  // Six bytes with continuation bits forever -> malformed.
  const char bad[] = "\x81\x82\x83\x84\x85\x86";
  Slice input(bad, 6);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&input, &v));
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string s;
  PutLengthPrefixedSlice(&s, "");
  PutLengthPrefixedSlice(&s, "abc");
  PutLengthPrefixedSlice(&s, std::string(10000, 'z'));

  Slice input(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(v.size(), 0u);
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(v.ToString(), "abc");
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(v.size(), 10000u);
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, LengthPrefixedSliceTruncated) {
  std::string s;
  PutLengthPrefixedSlice(&s, "hello world");
  Slice input(s.data(), s.size() - 3);
  Slice v;
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

TEST(SliceTest, CompareOrdersLikeMemcmp) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("ab").compare(Slice("ab")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix sorts first
  EXPECT_GT(Slice("abc").compare(Slice("ab")), 0);
}

TEST(SliceTest, StartsWithAndRemovePrefix) {
  Slice s("checkpoint/rank42/var");
  EXPECT_TRUE(s.starts_with("checkpoint/"));
  EXPECT_FALSE(s.starts_with("xcheckpoint"));
  s.remove_prefix(11);
  EXPECT_EQ(s.ToString(), "rank42/var");
}

}  // namespace
}  // namespace lsmio
