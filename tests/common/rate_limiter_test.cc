// RateLimiter: token-bucket pacing under an injected clock (deterministic
// rates, chunked grants) and flush-preempts-compaction priority under real
// threads.
#include "common/rate_limiter.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/units.h"

namespace lsmio {
namespace {

// Single-threaded fake clock: SleepForMicros advances time instantly, so a
// Request's wait loop runs deterministically with no real sleeping.
class FakeClock final : public SystemClock {
 public:
  [[nodiscard]] uint64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void SleepForMicros(uint64_t micros) override {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_{1'000'000};
};

TEST(RateLimiterTest, WithinBudgetGrantsWithoutWaiting) {
  FakeClock clock;
  RateLimiter limiter(1 * MiB, &clock);
  // One refill period's budget is available up front.
  const uint64_t period_bytes = 1 * MiB * RateLimiter::kRefillPeriodMicros / 1'000'000;
  limiter.Request(period_bytes, RateLimiter::Priority::kHigh);
  EXPECT_EQ(limiter.wait_micros(), 0u);
  EXPECT_EQ(limiter.bytes_through(RateLimiter::Priority::kHigh), period_bytes);
}

TEST(RateLimiterTest, PacesToConfiguredRate) {
  FakeClock clock;
  RateLimiter limiter(1 * MiB, &clock);
  const uint64_t start = clock.NowMicros();
  // 512 KiB at 1 MiB/s should take ~500 ms of (fake) time.
  limiter.Request(512 * KiB, RateLimiter::Priority::kLow);
  const uint64_t elapsed = clock.NowMicros() - start;
  EXPECT_GE(elapsed, 400'000u);
  EXPECT_LE(elapsed, 600'000u);
  EXPECT_EQ(limiter.bytes_through(RateLimiter::Priority::kLow),
            512 * KiB);
  EXPECT_GT(limiter.wait_micros(), 0u);
}

TEST(RateLimiterTest, UnusedBudgetDoesNotAccumulateIntoBursts) {
  FakeClock clock;
  RateLimiter limiter(1 * MiB, &clock);
  // A long idle period must not bank multiple seconds of budget.
  clock.SleepForMicros(5'000'000);
  const uint64_t start = clock.NowMicros();
  limiter.Request(512 * KiB, RateLimiter::Priority::kLow);
  const uint64_t elapsed = clock.NowMicros() - start;
  EXPECT_GE(elapsed, 400'000u);  // still paced, not granted instantly
}

TEST(RateLimiterTest, LargeRequestIsChargedInChunks) {
  FakeClock clock;
  RateLimiter limiter(4 * MiB, &clock);
  const uint64_t start = clock.NowMicros();
  limiter.Request(2 * MiB, RateLimiter::Priority::kHigh);
  const uint64_t elapsed = clock.NowMicros() - start;
  // 2 MiB at 4 MiB/s ~ 500 ms; a single un-chunked grant would be ~0.
  EXPECT_GE(elapsed, 400'000u);
  EXPECT_LE(elapsed, 600'000u);
}

// Flush-preempts-compaction: while a high-priority request is in line, a
// low-priority requester yields the bucket entirely.
TEST(RateLimiterTest, HighPriorityPreemptsLow) {
  RateLimiter limiter(1 * MiB);  // real clock
  std::atomic<bool> low_done{false};
  // ~250 ms worth of low-priority demand.
  std::thread low([&] {
    limiter.Request(256 * KiB, RateLimiter::Priority::kLow);
    low_done.store(true);
  });
  // Let the low-priority request drain the initial budget and start waiting.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // ~50 ms worth of high-priority demand must cut the line.
  limiter.Request(48 * KiB, RateLimiter::Priority::kHigh);
  EXPECT_FALSE(low_done.load());  // low still paced while high ran
  low.join();
  EXPECT_EQ(limiter.bytes_through(RateLimiter::Priority::kHigh), 48 * KiB);
  EXPECT_EQ(limiter.bytes_through(RateLimiter::Priority::kLow), 256 * KiB);
}

class CountingFile final : public vfs::WritableFile {
 public:
  Status Append(const Slice& data) override {
    size_ += data.size();
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }
  [[nodiscard]] uint64_t Size() const override { return size_; }

 private:
  uint64_t size_ = 0;
};

TEST(RateLimiterTest, RateLimitedFileChargesAppends) {
  FakeClock clock;
  RateLimiter limiter(1 * MiB, &clock);
  auto file = MaybeRateLimit(std::make_unique<CountingFile>(), &limiter,
                             RateLimiter::Priority::kHigh);
  const std::string chunk(64 * KiB, 'x');
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(file->Append(Slice(chunk)).ok());
  }
  EXPECT_EQ(file->Size(), 256 * KiB);
  EXPECT_EQ(limiter.bytes_through(RateLimiter::Priority::kHigh), 256 * KiB);
  // Sync/Close pass through unthrottled.
  const uint64_t waited = limiter.wait_micros();
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());
  EXPECT_EQ(limiter.wait_micros(), waited);
}

TEST(RateLimiterTest, MaybeRateLimitWithoutLimiterIsPassThrough) {
  auto inner = std::make_unique<CountingFile>();
  vfs::WritableFile* raw = inner.get();
  auto file = MaybeRateLimit(std::move(inner), nullptr,
                             RateLimiter::Priority::kLow);
  EXPECT_EQ(file.get(), raw);  // no wrapper allocated on the unlimited path
}

}  // namespace
}  // namespace lsmio
