// Runtime behavior of the annotated synchronization primitives
// (src/common/synchronization.h). This binary is compiled with
// LSMIO_MUTEX_DEBUG=1 regardless of build type (see tests/CMakeLists.txt),
// so Mutex tracks its holder and AssertHeld aborts on violation — the death
// tests below prove the enforcement actually fires. The compile-time side of
// the contract (REQUIRES/GUARDED_BY rejection) is proven separately by the
// configure-time gate in cmake/LintGateTest.cmake.
#include "common/synchronization.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace lsmio {
namespace {

static_assert(LSMIO_MUTEX_DEBUG == 1,
              "sync_annotations_test must build with runtime held-tracking");

TEST(MutexTest, LockUnlockAssertHeld) {
  Mutex mu;
  mu.Lock();
  mu.AssertHeld();  // must not abort
  mu.Unlock();
}

TEST(MutexTest, TryLock) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  mu.AssertHeld();
  mu.Unlock();

  mu.Lock();
  std::thread t([&mu] { EXPECT_FALSE(mu.TryLock()); });
  t.join();
  mu.Unlock();
}

TEST(MutexDeathTest, AssertHeldAbortsWhenNeverLocked) {
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld failed");
}

TEST(MutexDeathTest, AssertHeldAbortsAfterUnlock) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld failed");
}

TEST(MutexDeathTest, AssertHeldAbortsOnWrongThread) {
  Mutex mu;
  mu.Lock();
  std::thread t([&mu] { EXPECT_DEATH(mu.AssertHeld(), "AssertHeld failed"); });
  t.join();
  mu.Unlock();
}

TEST(MutexLockTest, ScopedAcquireRelease) {
  Mutex mu;
  {
    MutexLock lock(&mu);
    mu.AssertHeld();
  }
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLockTest, RelockableAroundUnlockedWork) {
  // The group-commit shape: drop the mutex for I/O, retake it after.
  Mutex mu;
  MutexLock lock(&mu);
  lock.Unlock();
  EXPECT_TRUE(mu.TryLock());  // actually released
  mu.Unlock();
  lock.Lock();
  mu.AssertHeld();
  lock.Unlock();  // leave released; destructor must not double-unlock
}

TEST(CondVarTest, WaitReleasesAndReacquires) {
  Mutex mu;
  CondVar cv(&mu);
  bool ready = false;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait();
    mu.AssertHeld();  // reacquired on wakeup
  });

  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.Signal();
  waiter.join();
}

TEST(CondVarTest, SignalAllWakesAllWaiters) {
  constexpr int kWaiters = 4;
  Mutex mu;
  CondVar cv(&mu);
  bool go = false;
  int awake = 0;

  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait();
      ++awake;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.SignalAll();
  for (auto& t : threads) t.join();
  EXPECT_EQ(awake, kWaiters);
}

TEST(MutexTest, ContendedCounter) {
  // Sanity: the wrapper still mutually excludes under real contention.
  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  Mutex mu;
  long counter = 0;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kIters; ++j) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

}  // namespace
}  // namespace lsmio
