#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace lsmio {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, SingleThreadExecutesSequentially) {
  // With one worker, tasks must run in submission order.
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.Shutdown();
  pool.Shutdown();  // second call must be a no-op
  EXPECT_EQ(pool.num_threads(), 2);
}

TEST(ThreadPoolTest, DestructorJoinsWorkers) {
  std::atomic<bool> ran{false};
  {
    ThreadPool pool(1);
    pool.Submit([&ran] { ran.store(true); });
  }
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(10); });
  });
  // Wait twice: first Wait may return between the outer task finishing and
  // the inner being queued... Submit happens-before the outer task returns,
  // so a single Wait suffices; assert on it.
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

}  // namespace
}  // namespace lsmio
