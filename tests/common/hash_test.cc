#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace lsmio {
namespace {

TEST(Hash32Test, DeterministicAndSeedSensitive) {
  const Slice key("checkpoint-rank-17");
  EXPECT_EQ(Hash32(key), Hash32(key));
  EXPECT_NE(Hash32(key, 1), Hash32(key, 2));
}

TEST(Hash32Test, AllTailLengthsCovered) {
  // 1..16 byte inputs exercise every switch arm of the tail handling.
  std::set<uint32_t> seen;
  std::string data = "abcdefghijklmnop";
  for (size_t len = 0; len <= data.size(); ++len) {
    seen.insert(Hash32(data.data(), len, 0));
  }
  // All values distinct (no accidental collisions on this tiny set).
  EXPECT_EQ(seen.size(), data.size() + 1);
}

TEST(Hash64Test, DeterministicAndSeedSensitive) {
  const Slice key("ost-object-0042");
  EXPECT_EQ(Hash64(key), Hash64(key));
  EXPECT_NE(Hash64(key, 1), Hash64(key, 2));
}

TEST(Hash64Test, SingleBitChangesAvalanche) {
  std::string a(64, '\0');
  std::string b = a;
  b[13] = '\x01';
  const uint64_t ha = Hash64(a.data(), a.size(), 0);
  const uint64_t hb = Hash64(b.data(), b.size(), 0);
  // At least a quarter of the bits should flip for a decent mixer.
  const int flipped = __builtin_popcountll(ha ^ hb);
  EXPECT_GE(flipped, 16);
}

TEST(Hash64Test, LengthSensitive) {
  const char* data = "xxxxxxxxyyyyyyyy";
  EXPECT_NE(Hash64(data, 8, 0), Hash64(data, 16, 0));
}

TEST(Hash64Test, DistributionOverBuckets) {
  // 10k sequential keys over 64 buckets: no bucket should be pathologically
  // over-loaded (rough uniformity check).
  constexpr int kKeys = 10000;
  constexpr int kBuckets = 64;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key-" + std::to_string(i);
    counts[Hash64(key.data(), key.size(), 0) % kBuckets]++;
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_GT(counts[b], kKeys / kBuckets / 4) << "bucket " << b;
    EXPECT_LT(counts[b], kKeys / kBuckets * 4) << "bucket " << b;
  }
}

}  // namespace
}  // namespace lsmio
