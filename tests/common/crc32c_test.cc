#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace lsmio::crc32c {
namespace {

TEST(Crc32cTest, StandardVectors) {
  // Known CRC32C test vectors (RFC 3720 / iSCSI).
  char buf[32];

  std::memset(buf, 0, sizeof buf);
  EXPECT_EQ(Value(buf, sizeof buf), 0x8a9136aa);

  std::memset(buf, 0xff, sizeof buf);
  EXPECT_EQ(Value(buf, sizeof buf), 0x62a8ab43);

  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(i);
  EXPECT_EQ(Value(buf, sizeof buf), 0x46dd794e);

  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(31 - i);
  EXPECT_EQ(Value(buf, sizeof buf), 0x113fdb5c);
}

TEST(Crc32cTest, ValuesDiffer) {
  EXPECT_NE(Value("a", 1), Value("foo", 3));
  EXPECT_NE(Value("a", 1), Value("b", 1));
}

TEST(Crc32cTest, ExtendEqualsConcatenation) {
  const std::string hello = "hello ";
  const std::string world = "world";
  const std::string both = hello + world;
  EXPECT_EQ(Value(both.data(), both.size()),
            Extend(Value(hello.data(), hello.size()), world.data(), world.size()));
}

TEST(Crc32cTest, MaskRoundTrip) {
  const uint32_t crc = Value("foo", 3);
  EXPECT_NE(crc, Mask(crc));
  EXPECT_NE(crc, Mask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Unmask(Mask(Mask(crc)))));
}

TEST(Crc32cTest, UnalignedInputsConsistent) {
  // CRC of a window must not depend on the buffer alignment.
  std::string data(1024, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i * 7);
  const uint32_t reference = Value(data.data() + 1, 333);
  std::string copy = data.substr(1, 333);
  EXPECT_EQ(Value(copy.data(), copy.size()), reference);
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(Value("", 0), 0u);
  EXPECT_EQ(Extend(0x12345678u, "", 0), 0x12345678u);
}

}  // namespace
}  // namespace lsmio::crc32c
