#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace lsmio {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear in 1000 draws
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliRespectsP) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(RngTest, FillWritesEveryByteLength) {
  Rng rng(11);
  for (size_t n : {1u, 7u, 8u, 9u, 63u, 64u, 65u}) {
    std::string buf(n, '\0');
    rng.Fill(buf.data(), n);
    // Extremely unlikely that all bytes stay zero for n >= 4.
    if (n >= 4) {
      bool any_nonzero = false;
      for (const char c : buf) any_nonzero |= (c != '\0');
      EXPECT_TRUE(any_nonzero) << "n=" << n;
    }
  }
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const uint64_t first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.Next(), first);
  EXPECT_NE(sm.Next(), first);
}

}  // namespace
}  // namespace lsmio
