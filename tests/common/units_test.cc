#include "common/units.h"

#include <gtest/gtest.h>

namespace lsmio {
namespace {

TEST(ParseBytesTest, PlainNumbers) {
  EXPECT_EQ(ParseBytes("0").value(), 0u);
  EXPECT_EQ(ParseBytes("4096").value(), 4096u);
}

TEST(ParseBytesTest, BinarySuffixes) {
  EXPECT_EQ(ParseBytes("64K").value(), 64 * KiB);
  EXPECT_EQ(ParseBytes("64k").value(), 64 * KiB);
  EXPECT_EQ(ParseBytes("64KB").value(), 64 * KiB);
  EXPECT_EQ(ParseBytes("64KiB").value(), 64 * KiB);
  EXPECT_EQ(ParseBytes("1M").value(), MiB);
  EXPECT_EQ(ParseBytes("2G").value(), 2 * GiB);
  EXPECT_EQ(ParseBytes("1T").value(), TiB);
  EXPECT_EQ(ParseBytes("10B").value(), 10u);
}

TEST(ParseBytesTest, FractionalValues) {
  EXPECT_EQ(ParseBytes("1.5K").value(), 1536u);
  EXPECT_EQ(ParseBytes("0.5M").value(), 512 * KiB);
}

TEST(ParseBytesTest, Whitespace) {
  EXPECT_EQ(ParseBytes("  64K  ").value(), 64 * KiB);
  EXPECT_EQ(ParseBytes("64 K").value(), 64 * KiB);
}

TEST(ParseBytesTest, Invalid) {
  EXPECT_FALSE(ParseBytes("").ok());
  EXPECT_FALSE(ParseBytes("abc").ok());
  EXPECT_FALSE(ParseBytes("64Q").ok());
  EXPECT_FALSE(ParseBytes("-5K").ok());
  EXPECT_FALSE(ParseBytes("64KiBB").ok());
}

TEST(FormatBytesTest, PicksTheRightUnit) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(64 * KiB), "64.0 KiB");
  EXPECT_EQ(FormatBytes(32 * MiB), "32.0 MiB");
  EXPECT_EQ(FormatBytes(3 * GiB), "3.0 GiB");
  EXPECT_EQ(FormatBytes(2 * TiB), "2.0 TiB");
}

TEST(FormatBandwidthTest, MiBPerSecond) {
  EXPECT_EQ(FormatBandwidth(static_cast<double>(MiB)), "1.00 MiB/s");
  EXPECT_EQ(FormatBandwidth(1536.0 * 1024), "1.50 MiB/s");
}

TEST(FormatDurationTest, AdaptiveUnits) {
  EXPECT_EQ(FormatDuration(5e-9), "5.0 ns");
  EXPECT_EQ(FormatDuration(5e-6), "5.0 us");
  EXPECT_EQ(FormatDuration(5e-3), "5.0 ms");
  EXPECT_EQ(FormatDuration(5.0), "5.00 s");
}

TEST(ParseBytesTest, RoundTripWithFormat) {
  for (uint64_t v : {KiB, 64 * KiB, MiB, 32 * MiB, GiB}) {
    const auto parsed = ParseBytes(FormatBytes(v));
    ASSERT_TRUE(parsed.ok()) << FormatBytes(v);
    EXPECT_EQ(parsed.value(), v);
  }
}

}  // namespace
}  // namespace lsmio
