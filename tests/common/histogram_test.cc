#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace lsmio {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Average(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Average(), 42.0);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_NEAR(h.Median(), 42.0, 42.0 * 0.3);  // bucketed: within bucket bounds
}

TEST(HistogramTest, MinMaxSumTracked) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.Average(), 50.5);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.Add(static_cast<double>(rng.Uniform(100000)));
  double prev = 0;
  for (double p = 0; p <= 100; p += 5) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  EXPECT_LE(h.Percentile(100), h.max());
}

TEST(HistogramTest, MedianNearTrueMedianForUniform) {
  Histogram h;
  Rng rng(17);
  for (int i = 0; i < 100000; ++i) h.Add(static_cast<double>(rng.Uniform(1000)));
  // Exponential buckets give ~25% resolution.
  EXPECT_NEAR(h.Median(), 500.0, 150.0);
}

TEST(HistogramTest, MergeEqualsCombinedStream) {
  Histogram a;
  Histogram b;
  Histogram combined;
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    const double v = static_cast<double>(rng.Uniform(10000));
    ((i % 2 == 0) ? a : b).Add(v);
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.Percentile(90), combined.Percentile(90));
}

TEST(HistogramTest, MergeWithEmptyIsNoOp) {
  Histogram a;
  a.Add(5);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.min(), 5.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(1);
  h.Add(1e9);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
  h.Add(3);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
}

TEST(HistogramTest, StandardDeviationOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(7.0);
  EXPECT_NEAR(h.StandardDeviation(), 0.0, 1e-9);
}

TEST(HistogramTest, ToStringContainsCount) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  EXPECT_NE(h.ToString().find("count=2"), std::string::npos);
}

TEST(HistogramTest, HugeValuesLandInOverflowBucket) {
  Histogram h;
  h.Add(1e150);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.max(), 1e150);
  EXPECT_LE(h.Percentile(99), 1e150);
}

}  // namespace
}  // namespace lsmio
