// LSMIO_STATUS_DEBUG semantics: this binary is compiled with tracking
// FORCED ON (see tests/CMakeLists.txt), independent of build type, so the
// abort-on-unobserved contract is pinned even in Release where the library
// default disables it.
//
// The contract under test (status.h):
//   - destroying or overwriting a non-OK Status that was never observed
//     aborts the process with the dropped code and message;
//   - OK statuses carry no obligation;
//   - copy and move TRANSFER the obligation (source counts as checked,
//     destination inherits the unchecked bit) — exactly one live owner;
//   - any observer (ok(), Is*(), code(), message(), ToString(), ==) or
//     IgnoreError() satisfies the obligation.
#include <gtest/gtest.h>

#include <utility>

#include "common/result.h"
#include "common/status.h"

static_assert(LSMIO_STATUS_DEBUG == 1,
              "status_debug_test must be compiled with tracking forced on");

namespace lsmio {
namespace {

using StatusDebugDeathTest = ::testing::Test;

TEST(StatusDebugDeathTest, DestroyedUncheckedErrorAborts) {
  EXPECT_DEATH(
      { Status s = Status::IoError("dropped on the floor"); },
      "destroyed without being checked.*IoError.*dropped on the floor");
}

TEST(StatusDebugDeathTest, OverwrittenUncheckedErrorAborts) {
  EXPECT_DEATH(
      {
        Status s = Status::Corruption("first failure");
        s = Status::OK();  // clobbers the unobserved error
        s.IgnoreError();
      },
      "overwritten without being checked.*Corruption.*first failure");
}

TEST(StatusDebugDeathTest, OkStatusIsExemptEverywhere) {
  {
    Status s = Status::OK();  // destroyed unobserved: fine
  }
  Status t = Status::OK();
  t = Status::OK();  // overwritten unobserved: fine
  Status moved = std::move(t);
  (void)moved.ok();
}

TEST(StatusDebugDeathTest, EveryObserverSatisfiesTheObligation) {
  { Status s = Status::IoError("x"); EXPECT_FALSE(s.ok()); }
  { Status s = Status::IoError("x"); EXPECT_TRUE(s.IsIoError()); }
  { Status s = Status::IoError("x"); EXPECT_EQ(s.code(), StatusCode::kIoError); }
  { Status s = Status::IoError("x"); EXPECT_EQ(s.message(), "x"); }
  { Status s = Status::IoError("x"); EXPECT_EQ(s.ToString(), "IoError: x"); }
  {
    Status a = Status::IoError("x");
    Status b = Status::IoError("y");
    EXPECT_TRUE(a == b);  // == observes both sides
  }
}

TEST(StatusDebugDeathTest, IgnoreErrorSilencesTheTracker) {
  Status s = Status::Aborted("deliberately dropped");
  s.IgnoreError();
}

TEST(StatusDebugDeathTest, MoveTransfersTheObligationToTheDestination) {
  // Destination never observed -> the obligation travels with the move and
  // still aborts, attributed to the destination's destruction.
  EXPECT_DEATH(
      {
        Status src = Status::IoError("travels with the move");
        Status dst = std::move(src);
        // src is OK/checked now; only dst owns the error.
      },
      "destroyed without being checked.*travels with the move");

  // Observing the destination discharges it; the moved-from source carries
  // no residual obligation.
  Status src = Status::IoError("observed at destination");
  Status dst = std::move(src);
  EXPECT_TRUE(dst.IsIoError());
}

TEST(StatusDebugDeathTest, CopyTransfersTheObligationToTheDestination) {
  EXPECT_DEATH(
      {
        Status src = Status::IoError("copied, never observed");
        Status dst = src;  // src counts as handled, dst inherits the duty
        (void)sizeof(dst);
      },
      "destroyed without being checked.*copied, never observed");

  Status src = Status::IoError("copy observed");
  Status dst = src;
  EXPECT_TRUE(dst.IsIoError());
  // src was marked checked by the copy: destroying it unobserved is fine.
}

TEST(StatusDebugDeathTest, MoveAssignmentVerifiesTheOldValue) {
  EXPECT_DEATH(
      {
        Status s = Status::Busy("old unobserved error");
        s = Status::IoError("new error");
        s.IgnoreError();
      },
      "overwritten without being checked.*Busy.*old unobserved error");
}

TEST(StatusDebugDeathTest, ReturnedStatusCarriesTheObligationOut) {
  auto fails = []() { return Status::IoError("escaped a call boundary"); };
  EXPECT_DEATH({ Status s = fails(); }, "escaped a call boundary");
  Status s = fails();
  EXPECT_FALSE(s.ok());
}

TEST(StatusDebugDeathTest, ResultObservationsCountForTheEmbeddedStatus) {
  // Result::ok() marks the embedded status checked, so a value-bearing
  // Result can be destroyed after a plain ok() probe.
  Result<int> r(42);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);

  Result<int> err(Status::IoError("wrapped"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsIoError());
}

TEST(StatusDebugDeathTest, LsmioReturnIfErrorObservesAndPropagates) {
  auto inner = []() { return Status::IoError("propagated"); };
  auto outer = [&]() -> Status {
    LSMIO_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  Status s = outer();
  EXPECT_TRUE(s.IsIoError());
}

}  // namespace
}  // namespace lsmio
