#include "common/status.h"

#include <gtest/gtest.h>

#include <utility>

#include "common/result.h"

namespace lsmio {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::IoError("disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusTest, CopyPreservesState) {
  const Status s = Status::Corruption("bad block");
  const Status t = s;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(t.IsCorruption());
  EXPECT_EQ(t.message(), "bad block");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::Busy("later"); };
  auto wrapper = [&]() -> Status {
    LSMIO_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsBusy());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("no"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

// Tracking-safe semantics that must hold whatever LSMIO_STATUS_DEBUG is set
// to for this binary (the abort-on-unobserved death tests live in
// status_debug_test, which forces tracking ON in every build type).

TEST(StatusTest, IgnoreErrorDischargesAnError) {
  Status s = Status::IoError("dropped deliberately");
  s.IgnoreError();
  // Destruction at end of scope must be clean even with tracking on.
}

TEST(StatusTest, MoveTransfersStateAndResetsSource) {
  Status s = Status::Aborted("moved");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsAborted());
  EXPECT_EQ(t.message(), "moved");
  EXPECT_TRUE(s.ok());  // NOLINT(bugprone-use-after-move): reset-to-OK is the contract
}

TEST(StatusTest, MoveAssignOverChecked) {
  Status s = Status::Busy("old");
  EXPECT_TRUE(s.IsBusy());  // observed: overwriting it is legal under tracking
  s = Status::IoError("new");
  EXPECT_TRUE(s.IsIoError());
}

TEST(StatusTest, ReadOnlyCode) {
  Status s = Status::ReadOnly("store latched");
  EXPECT_TRUE(s.IsReadOnly());
  EXPECT_EQ(s.ToString(), "ReadOnly: store latched");
}

TEST(StatusCodeNameTest, AllCodesNamed) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
}

}  // namespace
}  // namespace lsmio
