#include "h5l/h5l.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/units.h"
#include "vfs/mem_vfs.h"
#include "vfs/trace.h"
#include "vfs/trace_vfs.h"

namespace lsmio::h5l {
namespace {

class H5lTest : public ::testing::Test {
 protected:
  vfs::MemVfs fs_;
};

TEST_F(H5lTest, CreateAndReopenEmptyFile) {
  {
    auto file = File::Create(fs_, "/f.h5l");
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    ASSERT_TRUE(file.value()->Close().ok());
  }
  auto file = File::Open(fs_, "/f.h5l");
  ASSERT_TRUE(file.ok());
  auto names = file.value()->root()->List();
  ASSERT_TRUE(names.ok());
  EXPECT_TRUE(names.value().empty());
}

TEST_F(H5lTest, OpenRejectsNonH5lFile) {
  ASSERT_TRUE(vfs::WriteStringToFile(fs_, "/junk", std::string(100, 'j')).ok());
  EXPECT_TRUE(File::Open(fs_, "/junk").status().IsCorruption());
}

TEST_F(H5lTest, OpenMissingFileFails) {
  EXPECT_FALSE(File::Open(fs_, "/missing").ok());
}

TEST_F(H5lTest, ContiguousDatasetRoundTrip) {
  auto file = File::Create(fs_, "/f.h5l").value();
  auto ds = file->root()->CreateDataset("temps", 1000, 8, Layout::kContiguous);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  std::string data(1000 * 8, '\0');
  Rng rng(1);
  rng.Fill(data.data(), data.size());
  ASSERT_TRUE(ds.value()->Write(0, 1000, data).ok());
  ASSERT_TRUE(file->Close().ok());

  auto reopened = File::Open(fs_, "/f.h5l").value();
  auto ds2 = reopened->root()->OpenDataset("temps");
  ASSERT_TRUE(ds2.ok());
  EXPECT_EQ(ds2.value()->num_elements(), 1000u);
  EXPECT_EQ(ds2.value()->element_size(), 8u);
  std::string read_back;
  ASSERT_TRUE(ds2.value()->Read(0, 1000, &read_back).ok());
  EXPECT_EQ(read_back, data);
}

TEST_F(H5lTest, PartialWritesAndReads) {
  auto file = File::Create(fs_, "/f.h5l").value();
  auto ds = file->root()->CreateDataset("d", 100, 4, Layout::kContiguous).value();

  ASSERT_TRUE(ds->Write(10, 5, std::string(20, 'A')).ok());
  ASSERT_TRUE(ds->Write(50, 2, std::string(8, 'B')).ok());

  std::string out;
  ASSERT_TRUE(ds->Read(10, 5, &out).ok());
  EXPECT_EQ(out, std::string(20, 'A'));
  ASSERT_TRUE(ds->Read(50, 2, &out).ok());
  EXPECT_EQ(out, std::string(8, 'B'));
}

TEST_F(H5lTest, WriteValidation) {
  auto file = File::Create(fs_, "/f.h5l").value();
  auto ds = file->root()->CreateDataset("d", 10, 4, Layout::kContiguous).value();

  EXPECT_TRUE(ds->Write(0, 2, std::string(7, 'x')).IsInvalidArgument());
  EXPECT_TRUE(ds->Write(9, 2, std::string(8, 'x')).IsOutOfRange());
  std::string out;
  EXPECT_TRUE(ds->Read(9, 2, &out).IsOutOfRange());
}

TEST_F(H5lTest, ChunkedDatasetRoundTrip) {
  auto file = File::Create(fs_, "/f.h5l").value();
  auto ds = file->root()
                ->CreateDataset("c", 1000, 8, Layout::kChunked, /*chunk=*/64)
                .value();

  std::string data(1000 * 8, '\0');
  Rng rng(2);
  rng.Fill(data.data(), data.size());
  ASSERT_TRUE(ds->Write(0, 1000, data).ok());
  ASSERT_TRUE(file->Close().ok());

  auto reopened = File::Open(fs_, "/f.h5l").value();
  auto ds2 = reopened->root()->OpenDataset("c").value();
  EXPECT_EQ(ds2->layout(), Layout::kChunked);
  EXPECT_EQ(ds2->chunk_elements(), 64u);
  std::string read_back;
  ASSERT_TRUE(ds2->Read(0, 1000, &read_back).ok());
  EXPECT_EQ(read_back, data);
}

TEST_F(H5lTest, ChunkedSparseWritesReadZeroFill) {
  auto file = File::Create(fs_, "/f.h5l").value();
  auto ds = file->root()
                ->CreateDataset("sparse", 1000, 1, Layout::kChunked, 100)
                .value();
  // Only chunk 5 is written.
  ASSERT_TRUE(ds->Write(500, 100, std::string(100, 'S')).ok());

  std::string out;
  ASSERT_TRUE(ds->Read(0, 1000, &out).ok());
  EXPECT_EQ(out.substr(0, 500), std::string(500, '\0'));
  EXPECT_EQ(out.substr(500, 100), std::string(100, 'S'));
  EXPECT_EQ(out.substr(600), std::string(400, '\0'));
}

TEST_F(H5lTest, ChunkedUnalignedSpanningWrite) {
  auto file = File::Create(fs_, "/f.h5l").value();
  auto ds = file->root()
                ->CreateDataset("u", 300, 2, Layout::kChunked, 64)
                .value();
  // Write elements 50..200 (crosses three chunk boundaries).
  std::string data(150 * 2, 'U');
  ASSERT_TRUE(ds->Write(50, 150, data).ok());
  std::string out;
  ASSERT_TRUE(ds->Read(50, 150, &out).ok());
  EXPECT_EQ(out, data);
  // Neighbouring elements remain zero.
  ASSERT_TRUE(ds->Read(40, 10, &out).ok());
  EXPECT_EQ(out, std::string(20, '\0'));
}

TEST_F(H5lTest, NestedGroups) {
  auto file = File::Create(fs_, "/f.h5l").value();
  auto run = file->root()->CreateGroup("run01").value();
  auto fields = run->CreateGroup("fields").value();
  ASSERT_TRUE(
      fields->CreateDataset("rho", 10, 8, Layout::kContiguous).ok());
  ASSERT_TRUE(file->Close().ok());

  auto reopened = File::Open(fs_, "/f.h5l").value();
  auto run2 = reopened->root()->OpenGroup("run01");
  ASSERT_TRUE(run2.ok());
  auto fields2 = run2.value()->OpenGroup("fields");
  ASSERT_TRUE(fields2.ok());
  auto names = fields2.value()->List().value();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "rho");
}

TEST_F(H5lTest, DuplicateNamesRejected) {
  auto file = File::Create(fs_, "/f.h5l").value();
  ASSERT_TRUE(file->root()->CreateGroup("x").ok());
  EXPECT_TRUE(file->root()->CreateGroup("x").status().IsInvalidArgument());
  EXPECT_TRUE(file->root()
                  ->CreateDataset("x", 1, 1, Layout::kContiguous)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(H5lTest, OpenWrongKindFails) {
  auto file = File::Create(fs_, "/f.h5l").value();
  ASSERT_TRUE(file->root()->CreateGroup("g").ok());
  ASSERT_TRUE(file->root()->CreateDataset("d", 1, 1, Layout::kContiguous).ok());
  EXPECT_FALSE(file->root()->OpenDataset("g").ok());
  EXPECT_FALSE(file->root()->OpenGroup("d").ok());
  EXPECT_TRUE(file->root()->OpenGroup("nope").status().IsNotFound());
}

TEST_F(H5lTest, ManyDatasetsListInInsertionOrder) {
  auto file = File::Create(fs_, "/f.h5l").value();
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(file->root()
                    ->CreateDataset("var" + std::to_string(i), 4, 4,
                                    Layout::kContiguous)
                    .ok());
  }
  const auto names = file->root()->List().value();
  ASSERT_EQ(names.size(), 12u);
  EXPECT_EQ(names[0], "var0");
  EXPECT_EQ(names[11], "var11");
}

TEST_F(H5lTest, ParallelStyleDisjointSlabWrites) {
  // The PHDF5/IOR pattern: rank 0 creates the dataset, all "ranks" write
  // disjoint slabs through their own File objects on the shared file.
  constexpr int kRanks = 4;
  constexpr uint64_t kPerRank = 256;
  {
    auto file = File::Create(fs_, "/shared.h5l").value();
    ASSERT_TRUE(file->root()
                    ->CreateDataset("slab", kRanks * kPerRank, 8,
                                    Layout::kContiguous)
                    .ok());
    ASSERT_TRUE(file->Close().ok());
  }
  for (int r = 0; r < kRanks; ++r) {
    auto file = File::Open(fs_, "/shared.h5l").value();
    auto ds = file->root()->OpenDataset("slab").value();
    const std::string payload(kPerRank * 8, static_cast<char>('A' + r));
    ASSERT_TRUE(ds->Write(static_cast<uint64_t>(r) * kPerRank, kPerRank, payload).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  auto file = File::Open(fs_, "/shared.h5l").value();
  auto ds = file->root()->OpenDataset("slab").value();
  std::string all;
  ASSERT_TRUE(ds->Read(0, kRanks * kPerRank, &all).ok());
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(all[static_cast<size_t>(r) * kPerRank * 8], 'A' + r) << r;
  }
}

TEST_F(H5lTest, WritesProduceInterleavedMetadataTraffic) {
  // The property the benchmarks rely on: each data write is punctuated by
  // small metadata updates at low file offsets.
  vfs::TraceContext ctx(1);
  vfs::TraceVfs traced(fs_, ctx, 0);

  auto file = File::Create(traced, "/t.h5l").value();
  auto ds = file->root()->CreateDataset("d", 1024, 1024, Layout::kContiguous).value();
  const std::string block(64 * 1024, 'w');
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(ds->Write(static_cast<uint64_t>(i) * 64, 64, block).ok());
  }
  ASSERT_TRUE(file->Close().ok());

  // Count data-region writes vs low-offset metadata writes in the trace.
  int data_writes = 0;
  int metadata_writes = 0;
  for (const auto& op : ctx.TraceForRank(0).ops) {
    if (op.kind != vfs::IoOpKind::kWrite) continue;
    if (op.size >= 32 * 1024) ++data_writes;
    else ++metadata_writes;
  }
  EXPECT_EQ(data_writes, 16);
  // At least one header rewrite per data write with default config.
  EXPECT_GE(metadata_writes, 16);
}

TEST_F(H5lTest, HeaderUpdateIntervalReducesMetadataTraffic) {
  auto count_meta = [&](int interval) {
    vfs::TraceContext ctx(1);
    vfs::TraceVfs traced(fs_, ctx, 0);
    FileConfig config;
    config.header_update_interval = interval;
    auto file = File::Create(traced, "/i" + std::to_string(interval), config).value();
    auto ds =
        file->root()->CreateDataset("d", 64, 1024, Layout::kContiguous).value();
    const std::string block(1024, 'w');
    for (int i = 0; i < 64; ++i) {
      EXPECT_TRUE(ds->Write(static_cast<uint64_t>(i), 1, block).ok());
    }
    EXPECT_TRUE(file->Close().ok());
    int metadata_writes = 0;
    for (const auto& op : ctx.TraceForRank(0).ops) {
      if (op.kind == vfs::IoOpKind::kWrite && op.size < 1024) ++metadata_writes;
    }
    return metadata_writes;
  };
  EXPECT_GT(count_meta(1), 2 * count_meta(16));
}

TEST_F(H5lTest, AttributesRoundTripAndOverwrite) {
  auto file = File::Create(fs_, "/f.h5l").value();
  auto root = file->root();
  ASSERT_TRUE(root->SetAttribute("units", "kelvin").ok());
  ASSERT_TRUE(root->SetAttribute("version", "1").ok());

  EXPECT_EQ(root->GetAttribute("units").value(), "kelvin");
  ASSERT_TRUE(root->SetAttribute("units", "celsius").ok());  // overwrite
  EXPECT_EQ(root->GetAttribute("units").value(), "celsius");

  auto names = root->ListAttributes().value();
  EXPECT_EQ(names, (std::vector<std::string>{"units", "version"}));

  // Attributes persist across reopen.
  ASSERT_TRUE(file->Close().ok());
  auto reopened = File::Open(fs_, "/f.h5l").value();
  EXPECT_EQ(reopened->root()->GetAttribute("units").value(), "celsius");
}

TEST_F(H5lTest, AttributesDoNotAppearInList) {
  auto file = File::Create(fs_, "/f.h5l").value();
  auto root = file->root();
  ASSERT_TRUE(root->CreateGroup("child").ok());
  ASSERT_TRUE(root->SetAttribute("meta", "data").ok());
  const auto children = root->List().value();
  EXPECT_EQ(children, (std::vector<std::string>{"child"}));
  EXPECT_TRUE(root->GetAttribute("missing").status().IsNotFound());
}

TEST_F(H5lTest, BinaryAttributeValues) {
  auto file = File::Create(fs_, "/f.h5l").value();
  const std::string binary("\x00\x01\xff payload \x00", 12);
  ASSERT_TRUE(file->root()->SetAttribute("blob", binary).ok());
  EXPECT_EQ(file->root()->GetAttribute("blob").value(), binary);
}

TEST_F(H5lTest, AttributesOnNestedGroups) {
  auto file = File::Create(fs_, "/f.h5l").value();
  auto group = file->root()->CreateGroup("run").value();
  ASSERT_TRUE(group->SetAttribute("seed", "12345").ok());
  ASSERT_TRUE(file->Close().ok());

  auto reopened = File::Open(fs_, "/f.h5l").value();
  auto run = reopened->root()->OpenGroup("run").value();
  EXPECT_EQ(run->GetAttribute("seed").value(), "12345");
}

TEST_F(H5lTest, UpdateHeaderIsMetadataOnly) {
  vfs::TraceContext ctx(1);
  vfs::TraceVfs traced(fs_, ctx, 0);
  auto file = File::Create(traced, "/uh.h5l").value();
  auto ds = file->root()->CreateDataset("d", 64, 8, Layout::kContiguous).value();
  ASSERT_TRUE(ds->Write(0, 64, std::string(512, 'x')).ok());
  const size_t ops_before = ctx.TraceForRank(0).ops.size();
  ASSERT_TRUE(ds->UpdateHeader().ok());
  // The header rewrite is a small write, no data movement.
  bool found_small_write = false;
  for (size_t i = ops_before; i < ctx.TraceForRank(0).ops.size(); ++i) {
    const auto& op = ctx.TraceForRank(0).ops[i];
    if (op.kind == vfs::IoOpKind::kWrite) {
      EXPECT_LT(op.size, 128u);
      found_small_write = true;
    }
  }
  EXPECT_TRUE(found_small_write);
  // Data is untouched.
  std::string out;
  ASSERT_TRUE(ds->Read(0, 64, &out).ok());
  EXPECT_EQ(out, std::string(512, 'x'));
}

TEST_F(H5lTest, LargeDatasetSurvives) {
  auto file = File::Create(fs_, "/big.h5l").value();
  auto ds = file->root()
                ->CreateDataset("big", 4 * MiB, 1, Layout::kContiguous)
                .value();
  std::string data(4 * MiB, '\0');
  Rng rng(3);
  rng.Fill(data.data(), data.size());
  ASSERT_TRUE(ds->Write(0, 4 * MiB, data).ok());
  std::string out;
  ASSERT_TRUE(ds->Read(0, 4 * MiB, &out).ok());
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace lsmio::h5l
