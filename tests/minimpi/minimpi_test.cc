#include "minimpi/minimpi.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace lsmio::minimpi {
namespace {

TEST(MiniMpiTest, SingleRankWorld) {
  RunWorld(1, [](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.Barrier();  // must not deadlock
    EXPECT_EQ(comm.Allreduce(uint64_t{7}, ReduceOp::kSum), 7u);
  });
}

TEST(MiniMpiTest, RanksAndSizeAreCorrect) {
  constexpr int kRanks = 8;
  std::atomic<int> rank_mask{0};
  RunWorld(kRanks, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), kRanks);
    rank_mask.fetch_or(1 << comm.rank());
  });
  EXPECT_EQ(rank_mask.load(), (1 << kRanks) - 1);
}

TEST(MiniMpiTest, BarrierSynchronizes) {
  constexpr int kRanks = 6;
  std::atomic<int> phase1{0};
  std::atomic<bool> violation{false};
  RunWorld(kRanks, [&](Comm& comm) {
    phase1.fetch_add(1);
    comm.Barrier();
    // After the barrier, every rank must have completed phase 1.
    if (phase1.load() != kRanks) violation.store(true);
  });
  EXPECT_FALSE(violation.load());
}

TEST(MiniMpiTest, SendRecvDeliversInOrder) {
  RunWorld(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, 5, "first");
      comm.Send(1, 5, "second");
      comm.Send(1, 9, "other-tag");
    } else {
      EXPECT_EQ(comm.Recv(0, 9), "other-tag");  // tags are independent
      EXPECT_EQ(comm.Recv(0, 5), "first");
      EXPECT_EQ(comm.Recv(0, 5), "second");
    }
  });
}

TEST(MiniMpiTest, SendRecvBetweenManyPairs) {
  constexpr int kRanks = 8;
  RunWorld(kRanks, [](Comm& comm) {
    // Ring exchange: send to (rank+1) % size, receive from (rank-1+size)%size.
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    comm.Send(next, 0, "from-" + std::to_string(comm.rank()));
    EXPECT_EQ(comm.Recv(prev, 0), "from-" + std::to_string(prev));
  });
}

TEST(MiniMpiTest, BcastFromEveryRoot) {
  constexpr int kRanks = 4;
  RunWorld(kRanks, [](Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::string data =
          comm.rank() == root ? "payload-from-" + std::to_string(root) : "";
      comm.Bcast(&data, root);
      EXPECT_EQ(data, "payload-from-" + std::to_string(root));
    }
  });
}

TEST(MiniMpiTest, GatherCollectsInRankOrder) {
  constexpr int kRanks = 5;
  RunWorld(kRanks, [](Comm& comm) {
    const auto result = comm.Gather("r" + std::to_string(comm.rank()), 2);
    if (comm.rank() == 2) {
      ASSERT_EQ(result.size(), static_cast<size_t>(kRanks));
      for (int r = 0; r < kRanks; ++r) {
        EXPECT_EQ(result[static_cast<size_t>(r)], "r" + std::to_string(r));
      }
    } else {
      EXPECT_TRUE(result.empty());
    }
  });
}

TEST(MiniMpiTest, AllgatherGivesEveryoneEverything) {
  constexpr int kRanks = 7;
  RunWorld(kRanks, [](Comm& comm) {
    const auto result = comm.Allgather(std::string(1 + comm.rank(), 'x'));
    ASSERT_EQ(result.size(), static_cast<size_t>(kRanks));
    for (int r = 0; r < kRanks; ++r) {
      EXPECT_EQ(result[static_cast<size_t>(r)], std::string(1 + r, 'x'));
    }
  });
}

TEST(MiniMpiTest, AllgatherWithEmptyContributions) {
  RunWorld(3, [](Comm& comm) {
    const auto result =
        comm.Allgather(comm.rank() == 1 ? "only-one" : std::string());
    ASSERT_EQ(result.size(), 3u);
    EXPECT_EQ(result[0], "");
    EXPECT_EQ(result[1], "only-one");
    EXPECT_EQ(result[2], "");
  });
}

TEST(MiniMpiTest, ReduceSumMinMax) {
  constexpr int kRanks = 6;
  RunWorld(kRanks, [](Comm& comm) {
    const auto value = static_cast<uint64_t>(comm.rank() + 1);  // 1..6
    const uint64_t sum = comm.Reduce(value, ReduceOp::kSum, 0);
    const uint64_t min = comm.Reduce(value, ReduceOp::kMin, 0);
    const uint64_t max = comm.Reduce(value, ReduceOp::kMax, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(sum, 21u);
      EXPECT_EQ(min, 1u);
      EXPECT_EQ(max, 6u);
    }
  });
}

TEST(MiniMpiTest, AllreduceDoubleSum) {
  constexpr int kRanks = 4;
  RunWorld(kRanks, [](Comm& comm) {
    const double result = comm.Allreduce(0.5 * (comm.rank() + 1), ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(result, 0.5 * (1 + 2 + 3 + 4));
  });
}

TEST(MiniMpiTest, AllreduceMaxVisibleEverywhere) {
  RunWorld(5, [](Comm& comm) {
    const uint64_t result =
        comm.Allreduce(static_cast<uint64_t>(comm.rank() * 10), ReduceOp::kMax);
    EXPECT_EQ(result, 40u);
  });
}

TEST(MiniMpiTest, BackToBackCollectivesDoNotCrossWires) {
  RunWorld(4, [](Comm& comm) {
    for (int i = 0; i < 50; ++i) {
      const uint64_t sum =
          comm.Allreduce(static_cast<uint64_t>(i), ReduceOp::kSum);
      EXPECT_EQ(sum, static_cast<uint64_t>(i) * 4);
    }
  });
}

TEST(MiniMpiTest, SplitByParity) {
  constexpr int kRanks = 8;
  RunWorld(kRanks, [](Comm& comm) {
    auto sub = comm.Split(comm.rank() % 2, comm.rank());
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->size(), kRanks / 2);
    EXPECT_EQ(sub->rank(), comm.rank() / 2);

    // Collectives within the sub-communicator only involve its members.
    const uint64_t sum = sub->Allreduce(static_cast<uint64_t>(comm.rank()),
                                        ReduceOp::kSum);
    if (comm.rank() % 2 == 0) {
      EXPECT_EQ(sum, 0u + 2 + 4 + 6);
    } else {
      EXPECT_EQ(sum, 1u + 3 + 5 + 7);
    }
    sub->Barrier();
  });
}

TEST(MiniMpiTest, SplitRespectsKeyOrdering) {
  RunWorld(4, [](Comm& comm) {
    // Reverse the rank order within one color group via the key.
    auto sub = comm.Split(0, -comm.rank());
    EXPECT_EQ(sub->size(), 4);
    EXPECT_EQ(sub->rank(), 3 - comm.rank());
  });
}

TEST(MiniMpiTest, ExceptionInRankPropagates) {
  EXPECT_THROW(
      RunWorld(3,
               [](Comm& comm) {
                 // Every rank throws so nobody blocks on a collective.
                 throw std::runtime_error("rank " + std::to_string(comm.rank()));
               }),
      std::runtime_error);
}

TEST(MiniMpiTest, LargeMessages) {
  RunWorld(2, [](Comm& comm) {
    const std::string big(8 << 20, 'm');
    if (comm.rank() == 0) {
      comm.Send(1, 0, big);
    } else {
      EXPECT_EQ(comm.Recv(0, 0).size(), big.size());
    }
  });
}

}  // namespace
}  // namespace lsmio::minimpi
