// FaultyVfs: a Vfs decorator for failure-injection tests. After `Arm(n)`,
// the n-th subsequent write-class operation (and everything after it) fails
// with IoError, simulating a file system that went away mid-checkpoint.
#pragma once

#include <atomic>
#include <memory>

#include "vfs/vfs.h"

namespace lsmio::testutil {

class FaultyVfs final : public vfs::Vfs {
 public:
  explicit FaultyVfs(vfs::Vfs& base) : base_(base) {}

  /// Fails every write-class op starting with the n-th from now (1-based).
  void Arm(int n) { remaining_.store(n); }
  /// Stops injecting failures.
  void Disarm() { remaining_.store(-1); }
  /// Number of operations failed so far.
  [[nodiscard]] int failures() const { return failures_.load(); }

  Status NewWritableFile(const std::string& path, const vfs::OpenOptions& opts,
                         std::unique_ptr<vfs::WritableFile>* file) override {
    LSMIO_RETURN_IF_ERROR(Tick());
    std::unique_ptr<vfs::WritableFile> inner;
    LSMIO_RETURN_IF_ERROR(base_.NewWritableFile(path, opts, &inner));
    *file = std::make_unique<Writable>(this, std::move(inner));
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& path, const vfs::OpenOptions& opts,
                             std::unique_ptr<vfs::RandomAccessFile>* file) override {
    return base_.NewRandomAccessFile(path, opts, file);
  }

  Status NewSequentialFile(const std::string& path, const vfs::OpenOptions& opts,
                           std::unique_ptr<vfs::SequentialFile>* file) override {
    return base_.NewSequentialFile(path, opts, file);
  }

  Status OpenFileHandle(const std::string& path, bool create,
                        const vfs::OpenOptions& opts,
                        std::unique_ptr<vfs::FileHandle>* file) override {
    if (create) LSMIO_RETURN_IF_ERROR(Tick());
    return base_.OpenFileHandle(path, create, opts, file);
  }

  bool FileExists(const std::string& path) override { return base_.FileExists(path); }
  Status GetFileSize(const std::string& path, uint64_t* size) override {
    return base_.GetFileSize(path, size);
  }
  Status RemoveFile(const std::string& path) override {
    LSMIO_RETURN_IF_ERROR(Tick());
    return base_.RemoveFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    LSMIO_RETURN_IF_ERROR(Tick());
    return base_.RenameFile(from, to);
  }
  Status CreateDir(const std::string& path) override { return base_.CreateDir(path); }
  Status ListDir(const std::string& path, std::vector<std::string>* out) override {
    return base_.ListDir(path, out);
  }

 private:
  class Writable final : public vfs::WritableFile {
   public:
    Writable(FaultyVfs* owner, std::unique_ptr<vfs::WritableFile> inner)
        : owner_(owner), inner_(std::move(inner)) {}

    Status Append(const Slice& data) override {
      LSMIO_RETURN_IF_ERROR(owner_->Tick());
      return inner_->Append(data);
    }
    Status Flush() override { return inner_->Flush(); }
    Status Sync() override {
      LSMIO_RETURN_IF_ERROR(owner_->Tick());
      return inner_->Sync();
    }
    Status Close() override { return inner_->Close(); }
    uint64_t Size() const override { return inner_->Size(); }

   private:
    FaultyVfs* owner_;
    std::unique_ptr<vfs::WritableFile> inner_;
  };

  Status Tick() {
    int current = remaining_.load();
    if (current < 0) return Status::OK();
    // Decrement; fail once it reaches zero (and stay failing).
    current = remaining_.fetch_sub(1) - 1;
    if (current <= 0) {
      ++failures_;
      return Status::IoError("injected fault");
    }
    return Status::OK();
  }

  vfs::Vfs& base_;
  std::atomic<int> remaining_{-1};
  std::atomic<int> failures_{0};
};

}  // namespace lsmio::testutil
