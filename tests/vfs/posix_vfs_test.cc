#include "vfs/posix_vfs.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

namespace lsmio::vfs {
namespace {

class PosixVfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lsmio_posix_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(PosixVfs().CreateDir(dir_.string()).ok());
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(PosixVfsTest, WriteSyncReadBack) {
  Vfs& fs = PosixVfs();
  ASSERT_TRUE(WriteStringToFile(fs, Path("f"), "persisted bytes").ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(fs, Path("f"), &contents).ok());
  EXPECT_EQ(contents, "persisted bytes");
}

TEST_F(PosixVfsTest, MissingFileIsNotFound) {
  Vfs& fs = PosixVfs();
  std::unique_ptr<SequentialFile> file;
  EXPECT_TRUE(fs.NewSequentialFile(Path("missing"), {}, &file).IsNotFound());
}

TEST_F(PosixVfsTest, RandomAccessWithAndWithoutMmap) {
  Vfs& fs = PosixVfs();
  std::string payload(100000, '\0');
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<char>(i % 251);
  ASSERT_TRUE(WriteStringToFile(fs, Path("f"), payload).ok());

  for (const bool mmap : {false, true}) {
    OpenOptions opts;
    opts.use_mmap = mmap;
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(fs.NewRandomAccessFile(Path("f"), opts, &file).ok());
    EXPECT_EQ(file->Size(), payload.size());
    std::string scratch;
    Slice result;
    ASSERT_TRUE(file->Read(50000, 123, &result, &scratch).ok());
    EXPECT_EQ(result.ToString(), payload.substr(50000, 123)) << "mmap=" << mmap;
  }
}

TEST_F(PosixVfsTest, FileHandleStridedWrites) {
  Vfs& fs = PosixVfs();
  std::unique_ptr<FileHandle> handle;
  ASSERT_TRUE(fs.OpenFileHandle(Path("f"), true, {}, &handle).ok());
  ASSERT_TRUE(handle->WriteAt(4096, "stripe1").ok());
  ASSERT_TRUE(handle->WriteAt(0, "stripe0").ok());
  ASSERT_TRUE(handle->Sync().ok());
  EXPECT_EQ(handle->Size(), 4096u + 7);

  std::string scratch;
  Slice result;
  ASSERT_TRUE(handle->ReadAt(4096, 7, &result, &scratch).ok());
  EXPECT_EQ(result.ToString(), "stripe1");
  ASSERT_TRUE(handle->Close().ok());
}

TEST_F(PosixVfsTest, RenameAndRemove) {
  Vfs& fs = PosixVfs();
  ASSERT_TRUE(WriteStringToFile(fs, Path("a"), "x").ok());
  ASSERT_TRUE(fs.RenameFile(Path("a"), Path("b")).ok());
  EXPECT_FALSE(fs.FileExists(Path("a")));
  EXPECT_TRUE(fs.FileExists(Path("b")));
  ASSERT_TRUE(fs.RemoveFile(Path("b")).ok());
  EXPECT_FALSE(fs.FileExists(Path("b")));
}

TEST_F(PosixVfsTest, ListDir) {
  Vfs& fs = PosixVfs();
  ASSERT_TRUE(WriteStringToFile(fs, Path("one"), "1").ok());
  ASSERT_TRUE(WriteStringToFile(fs, Path("two"), "2").ok());
  std::vector<std::string> children;
  ASSERT_TRUE(fs.ListDir(dir_.string(), &children).ok());
  EXPECT_EQ(children.size(), 2u);
}

TEST_F(PosixVfsTest, GetFileSize) {
  Vfs& fs = PosixVfs();
  ASSERT_TRUE(WriteStringToFile(fs, Path("f"), std::string(12345, 'x')).ok());
  uint64_t size = 0;
  ASSERT_TRUE(fs.GetFileSize(Path("f"), &size).ok());
  EXPECT_EQ(size, 12345u);
}

TEST_F(PosixVfsTest, LargeSequentialReadInChunks) {
  Vfs& fs = PosixVfs();
  const std::string payload(3 * 1024 * 1024 + 17, 'q');
  ASSERT_TRUE(WriteStringToFile(fs, Path("big"), payload).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(fs, Path("big"), &contents).ok());
  EXPECT_EQ(contents.size(), payload.size());
  EXPECT_EQ(contents, payload);
}

}  // namespace
}  // namespace lsmio::vfs
