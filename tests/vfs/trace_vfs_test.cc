#include "vfs/trace_vfs.h"

#include <gtest/gtest.h>

#include "vfs/mem_vfs.h"

namespace lsmio::vfs {
namespace {

TEST(TraceContextTest, InternIsStableAndShared) {
  TraceContext ctx(2);
  const uint32_t a = ctx.InternFile("/x");
  const uint32_t b = ctx.InternFile("/y");
  EXPECT_NE(a, b);
  EXPECT_EQ(ctx.InternFile("/x"), a);
  EXPECT_EQ(ctx.PathOf(a), "/x");
  EXPECT_EQ(ctx.num_files(), 2u);
}

TEST(TraceVfsTest, AppendWritesRecordGrowingOffsets) {
  MemVfs base;
  TraceContext ctx(1);
  TraceVfs fs(base, ctx, 0);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs.NewWritableFile("/f", {}, &file).ok());
  ASSERT_TRUE(file->Append("12345").ok());
  ASSERT_TRUE(file->Append("678").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());

  const auto& ops = ctx.TraceForRank(0).ops;
  ASSERT_EQ(ops.size(), 5u);
  EXPECT_EQ(ops[0].kind, IoOpKind::kCreate);
  EXPECT_EQ(ops[1].kind, IoOpKind::kWrite);
  EXPECT_EQ(ops[1].offset, 0u);
  EXPECT_EQ(ops[1].size, 5u);
  EXPECT_EQ(ops[2].kind, IoOpKind::kWrite);
  EXPECT_EQ(ops[2].offset, 5u);
  EXPECT_EQ(ops[2].size, 3u);
  EXPECT_EQ(ops[3].kind, IoOpKind::kSync);
  EXPECT_EQ(ops[4].kind, IoOpKind::kClose);
}

TEST(TraceVfsTest, DataActuallyLandsInBase) {
  MemVfs base;
  TraceContext ctx(1);
  TraceVfs fs(base, ctx, 0);
  ASSERT_TRUE(WriteStringToFile(fs, "/f", "payload").ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(base, "/f", &contents).ok());
  EXPECT_EQ(contents, "payload");
}

TEST(TraceVfsTest, HandleWritesRecordExplicitOffsets) {
  MemVfs base;
  TraceContext ctx(1);
  TraceVfs fs(base, ctx, 0);

  std::unique_ptr<FileHandle> handle;
  ASSERT_TRUE(fs.OpenFileHandle("/shared", true, {}, &handle).ok());
  ASSERT_TRUE(handle->WriteAt(65536, std::string(4096, 'x')).ok());
  ASSERT_TRUE(handle->WriteAt(0, std::string(100, 'y')).ok());
  ASSERT_TRUE(handle->Close().ok());

  const auto& ops = ctx.TraceForRank(0).ops;
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0].kind, IoOpKind::kCreate);  // file did not exist
  EXPECT_EQ(ops[1].offset, 65536u);
  EXPECT_EQ(ops[1].size, 4096u);
  EXPECT_EQ(ops[2].offset, 0u);
}

TEST(TraceVfsTest, ReopenRecordsOpenNotCreate) {
  MemVfs base;
  TraceContext ctx(1);
  TraceVfs fs(base, ctx, 0);
  ASSERT_TRUE(WriteStringToFile(base, "/f", "x").ok());

  std::unique_ptr<FileHandle> handle;
  ASSERT_TRUE(fs.OpenFileHandle("/f", true, {}, &handle).ok());
  EXPECT_EQ(ctx.TraceForRank(0).ops[0].kind, IoOpKind::kOpen);
}

TEST(TraceVfsTest, ReadsAreRecordedWithSizes) {
  MemVfs base;
  TraceContext ctx(1);
  TraceVfs fs(base, ctx, 0);
  ASSERT_TRUE(WriteStringToFile(base, "/f", "0123456789").ok());

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(fs.NewRandomAccessFile("/f", {}, &file).ok());
  std::string scratch;
  Slice result;
  ASSERT_TRUE(file->Read(2, 5, &result, &scratch).ok());

  const auto& ops = ctx.TraceForRank(0).ops;
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].kind, IoOpKind::kOpen);
  EXPECT_EQ(ops[1].kind, IoOpKind::kRead);
  EXPECT_EQ(ops[1].offset, 2u);
  EXPECT_EQ(ops[1].size, 5u);
}

TEST(TraceVfsTest, MultipleRanksShareFilesAndIds) {
  MemVfs base;
  TraceContext ctx(2);
  TraceVfs fs0(base, ctx, 0);
  TraceVfs fs1(base, ctx, 1);

  std::unique_ptr<FileHandle> h0;
  std::unique_ptr<FileHandle> h1;
  ASSERT_TRUE(fs0.OpenFileHandle("/shared", true, {}, &h0).ok());
  ASSERT_TRUE(fs1.OpenFileHandle("/shared", true, {}, &h1).ok());
  ASSERT_TRUE(h0->WriteAt(0, "aaaa").ok());
  ASSERT_TRUE(h1->WriteAt(4, "bbbb").ok());

  const uint32_t id0 = ctx.TraceForRank(0).ops[0].file;
  const uint32_t id1 = ctx.TraceForRank(1).ops[0].file;
  EXPECT_EQ(id0, id1);  // same file interned to the same id across ranks
}

TEST(TraceVfsTest, BarrierComputePhaseMarkers) {
  MemVfs base;
  TraceContext ctx(1);
  TraceVfs fs(base, ctx, 0);
  fs.RecordPhaseBegin();
  fs.RecordCompute(12345);
  fs.RecordBarrier(7);
  fs.RecordPhaseEnd();

  const auto& ops = ctx.TraceForRank(0).ops;
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0].kind, IoOpKind::kPhaseBegin);
  EXPECT_EQ(ops[1].kind, IoOpKind::kCompute);
  EXPECT_EQ(ops[1].size, 12345u);
  EXPECT_EQ(ops[2].kind, IoOpKind::kBarrier);
  EXPECT_EQ(ops[2].size, 7u);
  EXPECT_EQ(ops[3].kind, IoOpKind::kPhaseEnd);
}

TEST(TraceVfsTest, ZeroComputeIsElided) {
  MemVfs base;
  TraceContext ctx(1);
  TraceVfs fs(base, ctx, 0);
  fs.RecordCompute(0);
  EXPECT_TRUE(ctx.TraceForRank(0).ops.empty());
}

TEST(TraceVfsTest, BytesInPhaseCountsOnlyInsidePhase) {
  MemVfs base;
  TraceContext ctx(1);
  TraceVfs fs(base, ctx, 0);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs.NewWritableFile("/f", {}, &file).ok());
  ASSERT_TRUE(file->Append("before!").ok());  // 7 bytes outside the phase
  fs.RecordPhaseBegin();
  ASSERT_TRUE(file->Append(std::string(100, 'x')).ok());
  fs.RecordPhaseEnd();
  ASSERT_TRUE(file->Append("after").ok());

  EXPECT_EQ(ctx.BytesWrittenInPhase(), 100u);
  EXPECT_EQ(ctx.BytesReadInPhase(), 0u);
}

}  // namespace
}  // namespace lsmio::vfs
