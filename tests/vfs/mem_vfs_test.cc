#include "vfs/mem_vfs.h"

#include <gtest/gtest.h>

#include <thread>

namespace lsmio::vfs {
namespace {

TEST(MemVfsTest, WriteThenReadBack) {
  MemVfs fs;
  ASSERT_TRUE(WriteStringToFile(fs, "/a/b", "hello world").ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(fs, "/a/b", &contents).ok());
  EXPECT_EQ(contents, "hello world");
}

TEST(MemVfsTest, MissingFileIsNotFound) {
  MemVfs fs;
  std::string contents;
  EXPECT_TRUE(ReadFileToString(fs, "/missing", &contents).IsNotFound());
  EXPECT_FALSE(fs.FileExists("/missing"));
  uint64_t size;
  EXPECT_TRUE(fs.GetFileSize("/missing", &size).IsNotFound());
  EXPECT_TRUE(fs.RemoveFile("/missing").IsNotFound());
}

TEST(MemVfsTest, WritableFileTruncatesExisting) {
  MemVfs fs;
  ASSERT_TRUE(WriteStringToFile(fs, "/f", "old contents").ok());
  ASSERT_TRUE(WriteStringToFile(fs, "/f", "new").ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(fs, "/f", &contents).ok());
  EXPECT_EQ(contents, "new");
}

TEST(MemVfsTest, AppendAccumulates) {
  MemVfs fs;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs.NewWritableFile("/f", {}, &file).ok());
  ASSERT_TRUE(file->Append("one").ok());
  ASSERT_TRUE(file->Append("two").ok());
  EXPECT_EQ(file->Size(), 6u);
  ASSERT_TRUE(file->Close().ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(fs, "/f", &contents).ok());
  EXPECT_EQ(contents, "onetwo");
}

TEST(MemVfsTest, RandomAccessReads) {
  MemVfs fs;
  ASSERT_TRUE(WriteStringToFile(fs, "/f", "0123456789").ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(fs.NewRandomAccessFile("/f", {}, &file).ok());
  EXPECT_EQ(file->Size(), 10u);

  std::string scratch;
  Slice result;
  ASSERT_TRUE(file->Read(3, 4, &result, &scratch).ok());
  EXPECT_EQ(result.ToString(), "3456");

  // Read past EOF truncates.
  ASSERT_TRUE(file->Read(8, 10, &result, &scratch).ok());
  EXPECT_EQ(result.ToString(), "89");

  // Read at EOF yields empty.
  ASSERT_TRUE(file->Read(100, 1, &result, &scratch).ok());
  EXPECT_TRUE(result.empty());
}

TEST(MemVfsTest, SequentialReadAndSkip) {
  MemVfs fs;
  ASSERT_TRUE(WriteStringToFile(fs, "/f", "abcdefghij").ok());
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(fs.NewSequentialFile("/f", {}, &file).ok());

  std::string scratch;
  Slice result;
  ASSERT_TRUE(file->Read(3, &result, &scratch).ok());
  EXPECT_EQ(result.ToString(), "abc");
  ASSERT_TRUE(file->Skip(2).ok());
  ASSERT_TRUE(file->Read(3, &result, &scratch).ok());
  EXPECT_EQ(result.ToString(), "fgh");
}

TEST(MemVfsTest, FileHandlePositionalWrites) {
  MemVfs fs;
  std::unique_ptr<FileHandle> handle;
  ASSERT_TRUE(fs.OpenFileHandle("/f", /*create=*/true, {}, &handle).ok());

  // Sparse write extends with zeros.
  ASSERT_TRUE(handle->WriteAt(5, "XY").ok());
  EXPECT_EQ(handle->Size(), 7u);

  std::string scratch;
  Slice result;
  ASSERT_TRUE(handle->ReadAt(0, 7, &result, &scratch).ok());
  EXPECT_EQ(result.ToString(), std::string("\0\0\0\0\0XY", 7));

  // Overwrite in place.
  ASSERT_TRUE(handle->WriteAt(0, "abcde").ok());
  ASSERT_TRUE(handle->ReadAt(0, 7, &result, &scratch).ok());
  EXPECT_EQ(result.ToString(), "abcdeXY");

  ASSERT_TRUE(handle->Truncate(3).ok());
  EXPECT_EQ(handle->Size(), 3u);
}

TEST(MemVfsTest, OpenFileHandleNoCreateFailsOnMissing) {
  MemVfs fs;
  std::unique_ptr<FileHandle> handle;
  EXPECT_TRUE(fs.OpenFileHandle("/nope", /*create=*/false, {}, &handle).IsNotFound());
}

TEST(MemVfsTest, RenameMovesContents) {
  MemVfs fs;
  ASSERT_TRUE(WriteStringToFile(fs, "/from", "data").ok());
  ASSERT_TRUE(fs.RenameFile("/from", "/to").ok());
  EXPECT_FALSE(fs.FileExists("/from"));
  std::string contents;
  ASSERT_TRUE(ReadFileToString(fs, "/to", &contents).ok());
  EXPECT_EQ(contents, "data");
}

TEST(MemVfsTest, ListDirReturnsImmediateChildren) {
  MemVfs fs;
  ASSERT_TRUE(WriteStringToFile(fs, "/db/000001.sst", "x").ok());
  ASSERT_TRUE(WriteStringToFile(fs, "/db/000002.log", "y").ok());
  ASSERT_TRUE(WriteStringToFile(fs, "/db/sub/nested", "z").ok());
  ASSERT_TRUE(WriteStringToFile(fs, "/other/file", "w").ok());

  std::vector<std::string> children;
  ASSERT_TRUE(fs.ListDir("/db", &children).ok());
  EXPECT_EQ(children.size(), 3u);  // 000001.sst, 000002.log, sub
}

TEST(MemVfsTest, TotalBytesAndFileCount) {
  MemVfs fs;
  ASSERT_TRUE(WriteStringToFile(fs, "/a", "12345").ok());
  ASSERT_TRUE(WriteStringToFile(fs, "/b", "123").ok());
  EXPECT_EQ(fs.TotalBytes(), 8u);
  EXPECT_EQ(fs.FileCount(), 2u);
}

TEST(MemVfsTest, ConcurrentWritersToDistinctFiles) {
  MemVfs fs;
  constexpr int kThreads = 8;
  constexpr int kAppends = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fs, t] {
      std::unique_ptr<WritableFile> file;
      ASSERT_TRUE(fs.NewWritableFile("/f" + std::to_string(t), {}, &file).ok());
      for (int i = 0; i < kAppends; ++i) {
        ASSERT_TRUE(file->Append("0123456789").ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    uint64_t size = 0;
    ASSERT_TRUE(fs.GetFileSize("/f" + std::to_string(t), &size).ok());
    EXPECT_EQ(size, static_cast<uint64_t>(kAppends) * 10);
  }
}

TEST(MemVfsTest, ConcurrentHandleWritesToSharedFile) {
  // Models the IOR shared-file pattern: each thread owns disjoint strides.
  MemVfs fs;
  constexpr int kThreads = 4;
  constexpr uint64_t kChunk = 1024;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&fs, t] {
        std::unique_ptr<FileHandle> handle;
        ASSERT_TRUE(fs.OpenFileHandle("/shared", true, {}, &handle).ok());
        const std::string payload(kChunk, static_cast<char>('A' + t));
        for (int i = 0; i < 16; ++i) {
          const uint64_t offset = (static_cast<uint64_t>(i) * kThreads +
                                   static_cast<uint64_t>(t)) * kChunk;
          ASSERT_TRUE(handle->WriteAt(offset, payload).ok());
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  uint64_t size = 0;
  ASSERT_TRUE(fs.GetFileSize("/shared", &size).ok());
  EXPECT_EQ(size, kChunk * kThreads * 16);
  // Verify a couple of strides landed intact.
  std::unique_ptr<FileHandle> handle;
  ASSERT_TRUE(fs.OpenFileHandle("/shared", false, {}, &handle).ok());
  std::string scratch;
  Slice result;
  ASSERT_TRUE(handle->ReadAt(kChunk, kChunk, &result, &scratch).ok());
  EXPECT_EQ(result[0], 'B');
  EXPECT_EQ(result[kChunk - 1], 'B');
}

}  // namespace
}  // namespace lsmio::vfs
