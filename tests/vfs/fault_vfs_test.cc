// FaultVfs: programmable failure points, per-file-class targeting, and the
// power-loss model (DropUnsyncedData) used by crash_recovery_test.
#include "vfs/fault_vfs.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "vfs/mem_vfs.h"

namespace lsmio::vfs {
namespace {

std::string ReadAll(Vfs& fs, const std::string& path) {
  std::string out;
  EXPECT_TRUE(ReadFileToString(fs, path, &out).ok()) << path;
  return out;
}

class FaultVfsTest : public ::testing::Test {
 protected:
  MemVfs base_;
  FaultVfs fs_{base_};
};

TEST_F(FaultVfsTest, ClassifiesLsmFileNames) {
  EXPECT_EQ(ClassifyFaultFile("/db/000004.log"), kWalFile);
  EXPECT_EQ(ClassifyFaultFile("/db/000007.sst"), kTableFile);
  EXPECT_EQ(ClassifyFaultFile("/db/000009.blob"), kBlobFile);
  EXPECT_EQ(ClassifyFaultFile("/db/MANIFEST-000002"), kManifestFile);
  EXPECT_EQ(ClassifyFaultFile("/db/CURRENT"), kCurrentFile);
  EXPECT_EQ(ClassifyFaultFile("/db/CURRENT.tmp"), kCurrentFile);
  EXPECT_EQ(ClassifyFaultFile("/db/LOG.old"), kOtherFile);
  EXPECT_EQ(ClassifyFaultFile("000012.log"), kWalFile);  // bare name
}

TEST_F(FaultVfsTest, FailsTheNthMatchingOperation) {
  FaultPoint point;
  point.kind = FaultKind::kFailOp;
  point.ops = kAppendOp;
  point.countdown = 3;
  fs_.Arm(point);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs_.NewWritableFile("/f.log", {}, &file).ok());
  EXPECT_TRUE(file->Append("one").ok());
  EXPECT_TRUE(file->Append("two").ok());
  EXPECT_TRUE(file->Append("three").IsIoError());  // third append fires
  EXPECT_EQ(fs_.faults_injected(), 1);
}

TEST_F(FaultVfsTest, StickyFaultFailsEverySubsequentWrite) {
  FaultPoint point;
  point.ops = kAppendOp;
  fs_.Arm(point);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs_.NewWritableFile("/f.log", {}, &file).ok());
  EXPECT_TRUE(file->Append("x").IsIoError());
  EXPECT_TRUE(fs_.lost_disk());
  // The disk is gone for every write-class op, not just the armed one.
  EXPECT_TRUE(file->Sync().IsIoError());
  std::unique_ptr<WritableFile> other;
  EXPECT_TRUE(fs_.NewWritableFile("/g.sst", {}, &other).IsIoError());
  EXPECT_TRUE(fs_.RemoveFile("/f.log").IsIoError());

  // Reads keep working: recovery must be able to inspect the wreckage.
  EXPECT_TRUE(fs_.FileExists("/f.log"));

  fs_.Disarm();
  EXPECT_FALSE(fs_.lost_disk());
  EXPECT_TRUE(file->Append("y").ok());
}

TEST_F(FaultVfsTest, OneShotFaultFiresOnce) {
  FaultPoint point;
  point.ops = kAppendOp;
  point.sticky = false;
  fs_.Arm(point);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs_.NewWritableFile("/f.log", {}, &file).ok());
  EXPECT_TRUE(file->Append("x").IsIoError());
  EXPECT_TRUE(file->Append("y").ok());
  EXPECT_EQ(fs_.faults_injected(), 1);
}

TEST_F(FaultVfsTest, TargetsOnlyTheArmedFileClass) {
  FaultPoint point;
  point.file_classes = kWalFile;
  point.ops = kAppendOp;
  fs_.Arm(point);

  std::unique_ptr<WritableFile> table;
  ASSERT_TRUE(fs_.NewWritableFile("/000005.sst", {}, &table).ok());
  EXPECT_TRUE(table->Append("table data").ok());  // .sst is not targeted

  std::unique_ptr<WritableFile> wal;
  ASSERT_TRUE(fs_.NewWritableFile("/000006.log", {}, &wal).ok());
  EXPECT_TRUE(wal->Append("wal data").IsIoError());
}

TEST_F(FaultVfsTest, ShortWritePersistsALeadingPrefix) {
  FaultPoint point;
  point.kind = FaultKind::kShortWrite;
  point.ops = kAppendOp;
  fs_.Arm(point);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs_.NewWritableFile("/f.log", {}, &file).ok());
  EXPECT_TRUE(file->Append(std::string(100, 'a')).IsIoError());

  fs_.Disarm();
  const std::string contents = ReadAll(fs_, "/f.log");
  EXPECT_EQ(contents.size(), 50U);
  EXPECT_EQ(contents, std::string(50, 'a'));
}

TEST_F(FaultVfsTest, TornWriteCorruptsTheTailOfThePrefix) {
  FaultPoint point;
  point.kind = FaultKind::kTornWrite;
  point.ops = kAppendOp;
  fs_.Arm(point);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs_.NewWritableFile("/f.log", {}, &file).ok());
  EXPECT_TRUE(file->Append(std::string(100, 'a')).IsIoError());

  fs_.Disarm();
  const std::string contents = ReadAll(fs_, "/f.log");
  ASSERT_EQ(contents.size(), 50U);
  EXPECT_EQ(contents.substr(0, 42), std::string(42, 'a'));  // head intact
  EXPECT_NE(contents.substr(42), std::string(8, 'a'));      // tail garbled
}

TEST_F(FaultVfsTest, SyncFailureDoesNotAdvanceDurability) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs_.NewWritableFile("/f.log", {}, &file).ok());
  ASSERT_TRUE(file->Append("durable").ok());
  ASSERT_TRUE(file->Sync().ok());
  EXPECT_EQ(fs_.SyncedSize("/f.log"), 7U);

  FaultPoint point;
  point.kind = FaultKind::kSyncFailure;
  point.ops = kSyncOp;
  fs_.Arm(point);
  ASSERT_TRUE(file->Append("-volatile").ok());
  EXPECT_TRUE(file->Sync().IsIoError());
  EXPECT_EQ(fs_.SyncedSize("/f.log"), 7U);  // still only the synced prefix
}

TEST_F(FaultVfsTest, DropUnsyncedDataKeepsTheSyncedPrefixIntact) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs_.NewWritableFile("/f.log", {}, &file).ok());
  ASSERT_TRUE(file->Append(std::string(64, 's')).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append(std::string(64, 'u')).ok());  // never synced

  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ASSERT_TRUE(fs_.DropUnsyncedData(seed).ok());
    const std::string contents = ReadAll(fs_, "/f.log");
    ASSERT_GE(contents.size(), 64U) << "seed " << seed;
    ASSERT_LE(contents.size(), 128U) << "seed " << seed;
    // The synced prefix must survive byte-for-byte; only the unsynced tail
    // may shrink or tear.
    EXPECT_EQ(contents.substr(0, 64), std::string(64, 's')) << "seed " << seed;
  }
}

TEST_F(FaultVfsTest, DropUnsyncedDataRemovesNeverSyncedFiles) {
  std::unique_ptr<WritableFile> synced;
  ASSERT_TRUE(fs_.NewWritableFile("/keep.log", {}, &synced).ok());
  ASSERT_TRUE(synced->Append("x").ok());
  ASSERT_TRUE(synced->Sync().ok());

  std::unique_ptr<WritableFile> unsynced;
  ASSERT_TRUE(fs_.NewWritableFile("/lose.log", {}, &unsynced).ok());
  ASSERT_TRUE(unsynced->Append("y").ok());

  ASSERT_TRUE(fs_.DropUnsyncedData(/*seed=*/7).ok());
  EXPECT_TRUE(fs_.FileExists("/keep.log"));
  EXPECT_FALSE(fs_.FileExists("/lose.log"));
}

TEST_F(FaultVfsTest, DropUnsyncedDataClearsTheLostDiskLatch) {
  FaultPoint point;
  point.ops = kAppendOp;
  fs_.Arm(point);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs_.NewWritableFile("/f.log", {}, &file).ok());
  EXPECT_TRUE(file->Append("x").IsIoError());
  ASSERT_TRUE(fs_.lost_disk());

  ASSERT_TRUE(fs_.DropUnsyncedData(/*seed=*/3).ok());
  EXPECT_FALSE(fs_.lost_disk());
  std::unique_ptr<WritableFile> fresh;
  EXPECT_TRUE(fs_.NewWritableFile("/g.log", {}, &fresh).ok());
}

TEST_F(FaultVfsTest, RenameCarriesDurabilityState) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs_.NewWritableFile("/a.tmp", {}, &file).ok());
  ASSERT_TRUE(file->Append("synced").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());

  ASSERT_TRUE(fs_.RenameFile("/a.tmp", "/b.dat").ok());
  EXPECT_EQ(fs_.SyncedSize("/b.dat"), 6U);
  EXPECT_EQ(fs_.SyncedSize("/a.tmp"), 0U);

  // The renamed file survives power loss under its new name.
  ASSERT_TRUE(fs_.DropUnsyncedData(/*seed=*/11).ok());
  EXPECT_TRUE(fs_.FileExists("/b.dat"));
  EXPECT_EQ(ReadAll(fs_, "/b.dat"), "synced");
}

TEST_F(FaultVfsTest, TruncateSemanticsResetDurabilityOnRecreate) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs_.NewWritableFile("/f.log", {}, &file).ok());
  ASSERT_TRUE(file->Append("old").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());

  // Re-creating the file truncates: the old synced bytes are gone, so the
  // tracker must not claim them durable.
  ASSERT_TRUE(fs_.NewWritableFile("/f.log", {}, &file).ok());
  EXPECT_EQ(fs_.SyncedSize("/f.log"), 0U);
  ASSERT_TRUE(file->Append("new-unsynced").ok());
  ASSERT_TRUE(fs_.DropUnsyncedData(/*seed=*/5).ok());
  EXPECT_FALSE(fs_.FileExists("/f.log"));
}

}  // namespace
}  // namespace lsmio::vfs
