#include "pfs/layout.h"

#include <gtest/gtest.h>

#include <numeric>

namespace lsmio::pfs {
namespace {

StripeLayout MakeLayout(uint64_t stripe_size, int stripe_count, int start = 0,
                        int num_osts = 45) {
  return StripeLayout(StripeSettings{stripe_size, stripe_count}, start, num_osts);
}

uint64_t TotalLength(const std::vector<ObjectExtent>& extents) {
  return std::accumulate(extents.begin(), extents.end(), uint64_t{0},
                         [](uint64_t acc, const ObjectExtent& e) { return acc + e.length; });
}

TEST(StripeLayoutTest, EmptyExtent) {
  const auto layout = MakeLayout(64 * KiB, 4);
  EXPECT_TRUE(layout.Map(0, 0).empty());
}

TEST(StripeLayoutTest, SingleStripeWithinOneOst) {
  const auto layout = MakeLayout(64 * KiB, 4);
  const auto extents = layout.Map(0, 64 * KiB);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].ost, 0);
  EXPECT_EQ(extents[0].object_offset, 0u);
  EXPECT_EQ(extents[0].length, 64 * KiB);
}

TEST(StripeLayoutTest, PartialStripe) {
  const auto layout = MakeLayout(64 * KiB, 4);
  const auto extents = layout.Map(1000, 500);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].ost, 0);
  EXPECT_EQ(extents[0].object_offset, 1000u);
  EXPECT_EQ(extents[0].length, 500u);
}

TEST(StripeLayoutTest, FullRowSpreadsOverAllStripes) {
  const auto layout = MakeLayout(64 * KiB, 4);
  const auto extents = layout.Map(0, 4 * 64 * KiB);
  ASSERT_EQ(extents.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(extents[static_cast<size_t>(i)].ost, i);
    EXPECT_EQ(extents[static_cast<size_t>(i)].object_offset, 0u);
    EXPECT_EQ(extents[static_cast<size_t>(i)].length, 64 * KiB);
  }
}

TEST(StripeLayoutTest, MultipleRowsMergePerOst) {
  // Two full rows over 4 OSTs: each OST holds two contiguous stripes in its
  // object, so one extent per OST, length 2 * stripe_size.
  const auto layout = MakeLayout(64 * KiB, 4);
  const auto extents = layout.Map(0, 8 * 64 * KiB);
  ASSERT_EQ(extents.size(), 4u);
  for (const auto& e : extents) {
    EXPECT_EQ(e.length, 2 * 64 * KiB);
    EXPECT_EQ(e.object_offset, 0u);
  }
}

TEST(StripeLayoutTest, OffsetIntoLaterRow) {
  const auto layout = MakeLayout(64 * KiB, 4);
  // Row 5 (offset 5*64K) lands on OST 1, object offset (5/4)*64K = 64K.
  const auto extents = layout.Map(5 * 64 * KiB, 64 * KiB);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].ost, 1);
  EXPECT_EQ(extents[0].object_offset, 64 * KiB);
}

TEST(StripeLayoutTest, StartingOstRotates) {
  const auto layout = MakeLayout(64 * KiB, 4, /*start=*/7);
  const auto extents = layout.Map(0, 4 * 64 * KiB);
  ASSERT_EQ(extents.size(), 4u);
  EXPECT_EQ(extents[0].ost, 7);
  EXPECT_EQ(extents[1].ost, 8);
  EXPECT_EQ(extents[3].ost, 10);
}

TEST(StripeLayoutTest, StartingOstWrapsAroundOstCount) {
  const auto layout = MakeLayout(64 * KiB, 4, /*start=*/44, /*num_osts=*/45);
  const auto extents = layout.Map(0, 2 * 64 * KiB);
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0].ost, 44);
  EXPECT_EQ(extents[1].ost, 0);
}

TEST(StripeLayoutTest, LengthIsAlwaysConserved) {
  const auto layout = MakeLayout(64 * KiB, 4);
  for (uint64_t offset : {uint64_t{0}, uint64_t{1}, 63 * KiB, 64 * KiB, 200 * KiB + 17}) {
    for (uint64_t length : {uint64_t{1}, 64 * KiB, 256 * KiB, MiB + 12345}) {
      EXPECT_EQ(TotalLength(layout.Map(offset, length)), length)
          << "offset=" << offset << " length=" << length;
    }
  }
}

TEST(StripeLayoutTest, ContiguousExtentYieldsAtMostStripeCountPieces) {
  const auto layout = MakeLayout(64 * KiB, 4);
  // 4 MiB spans 64 rows; per-OST stripes merge to exactly 4 extents.
  const auto extents = layout.Map(0, 4 * MiB);
  EXPECT_EQ(extents.size(), 4u);
  EXPECT_EQ(TotalLength(extents), 4 * MiB);
}

TEST(StripeLayoutTest, StrideOneCountIsSingleOst) {
  const auto layout = MakeLayout(1 * MiB, 1, /*start=*/3);
  const auto extents = layout.Map(10 * MiB, 5 * MiB);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].ost, 3);
  EXPECT_EQ(extents[0].object_offset, 10 * MiB);
  EXPECT_EQ(extents[0].length, 5 * MiB);
}

TEST(StripeLayoutTest, SixteenWayStripe) {
  const auto layout = MakeLayout(64 * KiB, 16);
  const auto extents = layout.Map(0, 16 * 64 * KiB);
  EXPECT_EQ(extents.size(), 16u);
}

}  // namespace
}  // namespace lsmio::pfs
