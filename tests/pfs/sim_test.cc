// Behavioural tests of the Lustre simulator: the mechanisms that produce
// the paper's curve shapes must hold as properties (sequential beats
// strided, contention collapses past the stripe count, barriers align
// ranks, coalescing helps).
#include "pfs/sim.h"

#include <gtest/gtest.h>

#include "vfs/trace.h"

namespace lsmio::pfs {
namespace {

using vfs::IoOp;
using vfs::IoOpKind;
using vfs::TraceContext;

constexpr uint64_t kBarrierA = 100;
constexpr uint64_t kBarrierB = 101;

SimOptions SmallCluster() {
  SimOptions options;
  options.cluster.num_osts = 4;
  options.cluster.num_oss = 1;
  options.stripe.stripe_count = 4;
  options.stripe.stripe_size = 64 * KiB;
  return options;
}

// Wraps a rank's timed write phase with the markers the harness emits.
void WritePhase(TraceContext& ctx, int rank, uint32_t file,
                const std::vector<std::pair<uint64_t, uint64_t>>& extents) {
  ctx.RecordBarrier(rank, kBarrierA);
  ctx.RecordPhaseBegin(rank);
  ctx.Record(rank, IoOp{IoOpKind::kCreate, file, 0, 0});
  for (const auto& [offset, size] : extents) {
    ctx.Record(rank, IoOp{IoOpKind::kWrite, file, offset, size});
  }
  ctx.Record(rank, IoOp{IoOpKind::kSync, file, 0, 0});
  ctx.Record(rank, IoOp{IoOpKind::kClose, file, 0, 0});
  ctx.RecordPhaseEnd(rank);
  ctx.RecordBarrier(rank, kBarrierB);
}

TEST(LustreSimTest, EmptyTracesProduceZeroTime) {
  TraceContext ctx(2);
  LustreSim sim(SmallCluster());
  const SimResult result = sim.Run(ctx);
  EXPECT_EQ(result.phase_seconds, 0.0);
  EXPECT_EQ(result.makespan_seconds, 0.0);
  EXPECT_EQ(result.total_rpcs, 0u);
}

TEST(LustreSimTest, SingleSequentialWriterApproachesOstBandwidth) {
  TraceContext ctx(1);
  const uint32_t file = ctx.InternFile("/f");
  // 256 MiB written sequentially in 1 MiB calls.
  std::vector<std::pair<uint64_t, uint64_t>> extents;
  for (uint64_t i = 0; i < 256; ++i) extents.emplace_back(i * MiB, MiB);
  WritePhase(ctx, 0, file, extents);

  SimOptions options = SmallCluster();
  LustreSim sim(options);
  const SimResult result = sim.Run(ctx);

  EXPECT_EQ(result.phase_bytes_written, 256 * MiB);
  // Striped over 4 OSTs at 500 MB/s each but bounded by the client NIC
  // (1.25 GB/s): bandwidth must be near the NIC limit.
  const double bw = result.WriteBandwidth();
  EXPECT_GT(bw, 0.6 * options.cluster.client_nic_bw);
  EXPECT_LE(bw, 1.01 * options.cluster.client_nic_bw);
}

TEST(LustreSimTest, DeterministicAcrossRuns) {
  TraceContext ctx(3);
  for (int r = 0; r < 3; ++r) {
    const uint32_t file = ctx.InternFile("/f" + std::to_string(r));
    WritePhase(ctx, r, file, {{0, 8 * MiB}, {8 * MiB, 8 * MiB}});
  }
  LustreSim sim_a(SmallCluster());
  LustreSim sim_b(SmallCluster());
  const SimResult a = sim_a.Run(ctx);
  const SimResult b = sim_b.Run(ctx);
  EXPECT_EQ(a.phase_seconds, b.phase_seconds);
  EXPECT_EQ(a.total_rpcs, b.total_rpcs);
  EXPECT_EQ(a.total_seeks, b.total_seeks);
}

TEST(LustreSimTest, StridedSharedFileIsSlowerThanSequentialPerFile) {
  // 8 ranks, 4-way striped shared file, 64 KiB strided records (the IOR
  // pattern past the stripe count) vs 8 ranks each streaming their own file.
  constexpr int kRanks = 8;
  constexpr uint64_t kRecord = 64 * KiB;
  constexpr int kSegments = 64;

  TraceContext strided(kRanks);
  {
    const uint32_t file = strided.InternFile("/shared");
    for (int r = 0; r < kRanks; ++r) {
      std::vector<std::pair<uint64_t, uint64_t>> extents;
      for (int s = 0; s < kSegments; ++s) {
        extents.emplace_back((static_cast<uint64_t>(s) * kRanks + r) * kRecord,
                             kRecord);
      }
      WritePhase(strided, r, file, extents);
    }
  }

  TraceContext sequential(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    const uint32_t file = sequential.InternFile("/own" + std::to_string(r));
    std::vector<std::pair<uint64_t, uint64_t>> extents;
    for (int s = 0; s < kSegments; ++s) {
      extents.emplace_back(static_cast<uint64_t>(s) * kRecord, kRecord);
    }
    WritePhase(sequential, r, file, extents);
  }

  LustreSim sim_strided(SmallCluster());
  LustreSim sim_seq(SmallCluster());
  const SimResult rs = sim_strided.Run(strided);
  const SimResult rq = sim_seq.Run(sequential);

  ASSERT_EQ(rs.phase_bytes_written, rq.phase_bytes_written);
  // Strided interleaving on 4 OSTs causes seek storms; per-file sequential
  // streams coalesce into large RPCs. Expect a decisive gap.
  EXPECT_GT(rq.WriteBandwidth(), 3.0 * rs.WriteBandwidth());
  EXPECT_GT(rs.total_seeks, rq.total_seeks);
}

TEST(LustreSimTest, SharedFileScalesUntilStripeCountThenDegrades) {
  // Per-node bandwidth with a 4-wide shared file should hold up to 4 nodes
  // and collapse well before 16 (the Figure 5 shape).
  auto bandwidth_at = [&](int ranks) {
    TraceContext ctx(ranks);
    const uint32_t file = ctx.InternFile("/shared");
    constexpr uint64_t kBlock = 1 * MiB;
    constexpr int kSegments = 32;
    for (int r = 0; r < ranks; ++r) {
      std::vector<std::pair<uint64_t, uint64_t>> extents;
      for (int s = 0; s < kSegments; ++s) {
        extents.emplace_back(
            (static_cast<uint64_t>(s) * static_cast<uint64_t>(ranks) +
             static_cast<uint64_t>(r)) * kBlock,
            kBlock);
      }
      WritePhase(ctx, r, file, extents);
    }
    SimOptions options = SmallCluster();
    options.cluster.num_osts = 16;  // plenty of OSTs; the file uses 4
    LustreSim sim(options);
    return sim.Run(ctx).WriteBandwidth();
  };

  const double bw1 = bandwidth_at(1);
  const double bw4 = bandwidth_at(4);
  const double bw16 = bandwidth_at(16);

  EXPECT_GT(bw4, 1.8 * bw1);       // scales while ranks <= stripe count
  EXPECT_LT(bw16, 0.7 * bw4);      // collapses once ranks >> stripe count
}

TEST(LustreSimTest, FilePerProcessKeepsScalingPastStripeCount) {
  auto bandwidth_at = [&](int ranks) {
    TraceContext ctx(ranks);
    for (int r = 0; r < ranks; ++r) {
      const uint32_t file = ctx.InternFile("/rank" + std::to_string(r));
      std::vector<std::pair<uint64_t, uint64_t>> extents;
      for (int s = 0; s < 32; ++s) {
        extents.emplace_back(static_cast<uint64_t>(s) * MiB, MiB);
      }
      WritePhase(ctx, r, file, extents);
    }
    SimOptions options = SmallCluster();
    options.cluster.num_osts = 32;
    // Remove the OSS ceiling: this test isolates OST-level scaling.
    options.cluster.oss_link_bw = 100e9;
    LustreSim sim(options);
    return sim.Run(ctx).WriteBandwidth();
  };

  const double bw4 = bandwidth_at(4);
  const double bw16 = bandwidth_at(16);
  // Files spread (hash-placed, so with some collision imbalance) over 32
  // OSTs keep scaling past the per-file stripe count — unlike the shared
  // file, which collapses outright.
  EXPECT_GT(bw16, 1.25 * bw4);
}

TEST(LustreSimTest, SmallWritesCoalesceIntoFewRpcs) {
  // 4 MiB of contiguous 4 KiB appends must not produce 1024 RPCs.
  TraceContext ctx(1);
  const uint32_t file = ctx.InternFile("/f");
  std::vector<std::pair<uint64_t, uint64_t>> extents;
  for (uint64_t i = 0; i < 1024; ++i) extents.emplace_back(i * 4 * KiB, 4 * KiB);
  WritePhase(ctx, 0, file, extents);

  LustreSim sim(SmallCluster());
  const SimResult result = sim.Run(ctx);
  // 4 MiB in 4 MiB client RPCs over 4 OSTs -> about 4 object RPCs.
  EXPECT_LE(result.total_rpcs, 8u);
}

TEST(LustreSimTest, BarrierAlignsPhaseStart) {
  // Rank 1 does expensive pre-phase work; the barrier before PhaseBegin
  // must make both ranks start the timed region together.
  TraceContext ctx(2);
  const uint32_t f0 = ctx.InternFile("/a");
  const uint32_t f1 = ctx.InternFile("/b");
  ctx.RecordCompute(1, 5'000'000'000ULL);  // rank 1: 5 virtual seconds
  WritePhase(ctx, 0, f0, {{0, MiB}});
  WritePhase(ctx, 1, f1, {{0, MiB}});

  LustreSim sim(SmallCluster());
  const SimResult result = sim.Run(ctx);
  // Phase time excludes the pre-phase compute, so it must be far below 5 s.
  EXPECT_LT(result.phase_seconds, 1.0);
  EXPECT_GE(result.makespan_seconds, 5.0);
}

TEST(LustreSimTest, ComputeInsidePhaseCounts) {
  TraceContext ctx(1);
  const uint32_t file = ctx.InternFile("/f");
  ctx.RecordBarrier(0, kBarrierA);
  ctx.RecordPhaseBegin(0);
  ctx.RecordCompute(0, 2'000'000'000ULL);  // 2 virtual seconds
  ctx.Record(0, IoOp{IoOpKind::kCreate, file, 0, 0});
  ctx.Record(0, IoOp{IoOpKind::kWrite, file, 0, MiB});
  ctx.Record(0, IoOp{IoOpKind::kSync, file, 0, 0});
  ctx.RecordPhaseEnd(0);

  LustreSim sim(SmallCluster());
  const SimResult result = sim.Run(ctx);
  EXPECT_GE(result.phase_seconds, 2.0);
  EXPECT_LT(result.phase_seconds, 2.5);
}

TEST(LustreSimTest, MetadataOpsSerializeAtMds) {
  // 32 ranks each doing 50 namespace ops: the single MDS serializes them,
  // so total time >= ops * service_time.
  constexpr int kRanks = 32;
  constexpr int kOpsPerRank = 50;
  TraceContext ctx(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    const uint32_t file = ctx.InternFile("/meta" + std::to_string(r));
    for (int i = 0; i < kOpsPerRank; ++i) {
      ctx.Record(r, IoOp{IoOpKind::kStat, file, 0, 0});
    }
  }
  SimOptions options = SmallCluster();
  LustreSim sim(options);
  const SimResult result = sim.Run(ctx);
  EXPECT_EQ(result.mds_ops, static_cast<uint64_t>(kRanks) * kOpsPerRank);
  EXPECT_GE(result.makespan_seconds,
            static_cast<double>(kRanks) * kOpsPerRank *
                options.cluster.mds_service_time * 0.99);
}

TEST(LustreSimTest, ReadsBlockTheIssuingRank) {
  TraceContext ctx(1);
  const uint32_t file = ctx.InternFile("/f");
  ctx.RecordBarrier(0, kBarrierA);
  ctx.RecordPhaseBegin(0);
  ctx.Record(0, IoOp{IoOpKind::kOpen, file, 0, 0});
  for (uint64_t i = 0; i < 16; ++i) {
    // Non-contiguous 64 KiB reads: each pays a round trip + seek.
    ctx.Record(0, IoOp{IoOpKind::kRead, file, i * 10 * MiB, 64 * KiB});
  }
  ctx.RecordPhaseEnd(0);

  SimOptions options = SmallCluster();
  LustreSim sim(options);
  const SimResult result = sim.Run(ctx);
  EXPECT_EQ(result.phase_bytes_read, 16 * 64 * KiB);
  // Every read is synchronous: at least 16 * (2 * latency + reposition).
  const double floor = 16 * (2 * options.cluster.rpc_latency +
                             options.cluster.read_switch_time);
  EXPECT_GE(result.phase_seconds, floor * 0.9);
}

TEST(LustreSimTest, CpuCostModelSlowsPhase) {
  auto run_with_cpu = [&](double cpu_per_byte) {
    TraceContext ctx(1);
    const uint32_t file = ctx.InternFile("/f");
    WritePhase(ctx, 0, file, {{0, 64 * MiB}});
    SimOptions options = SmallCluster();
    options.cpu_per_write_byte = cpu_per_byte;
    LustreSim sim(options);
    return sim.Run(ctx).phase_seconds;
  };
  const double fast = run_with_cpu(0.0);
  const double slow = run_with_cpu(20e-9);  // 50 MB/s CPU path
  EXPECT_GT(slow, 2.0 * fast);
}

TEST(LustreSimTest, PerOstStatsAccountAllBytes) {
  TraceContext ctx(2);
  const uint32_t f0 = ctx.InternFile("/x");
  const uint32_t f1 = ctx.InternFile("/y");
  WritePhase(ctx, 0, f0, {{0, 8 * MiB}});
  WritePhase(ctx, 1, f1, {{0, 8 * MiB}});

  LustreSim sim(SmallCluster());
  const SimResult result = sim.Run(ctx);
  uint64_t total = 0;
  for (const auto& ost : result.ost) total += ost.bytes_written;
  EXPECT_EQ(total, 16 * MiB);
}

}  // namespace
}  // namespace lsmio::pfs
