#include "lsm/memtable.h"

#include <gtest/gtest.h>

#include <memory>

#include "lsm/comparator.h"

namespace lsmio::lsm {
namespace {

class MemTableTest : public ::testing::Test {
 protected:
  MemTableTest() : icmp_(BytewiseComparator()), mem_(new MemTable(icmp_)) {
    mem_->Ref();
  }
  ~MemTableTest() override { mem_->Unref(); }

  InternalKeyComparator icmp_;
  MemTable* mem_;
};

TEST_F(MemTableTest, PutThenGet) {
  mem_->Add(1, ValueType::kValue, "key", "value");
  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get(LookupKey("key", 10), &value, &s));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(value, "value");
}

TEST_F(MemTableTest, GetMissingKey) {
  mem_->Add(1, ValueType::kValue, "key", "value");
  std::string value;
  Status s;
  EXPECT_FALSE(mem_->Get(LookupKey("other", 10), &value, &s));
}

TEST_F(MemTableTest, NewerVersionShadowsOlder) {
  mem_->Add(1, ValueType::kValue, "k", "v1");
  mem_->Add(2, ValueType::kValue, "k", "v2");
  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get(LookupKey("k", 10), &value, &s));
  EXPECT_EQ(value, "v2");
}

TEST_F(MemTableTest, SnapshotSeesOldVersion) {
  mem_->Add(1, ValueType::kValue, "k", "v1");
  mem_->Add(5, ValueType::kValue, "k", "v5");
  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get(LookupKey("k", 3), &value, &s));
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(mem_->Get(LookupKey("k", 5), &value, &s));
  EXPECT_EQ(value, "v5");
}

TEST_F(MemTableTest, DeletionReturnsNotFound) {
  mem_->Add(1, ValueType::kValue, "k", "v");
  mem_->Add(2, ValueType::kDeletion, "k", "");
  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get(LookupKey("k", 10), &value, &s));
  EXPECT_TRUE(s.IsNotFound());
  // But the old version is still visible at sequence 1.
  ASSERT_TRUE(mem_->Get(LookupKey("k", 1), &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(value, "v");
}

TEST_F(MemTableTest, EmptyValueRoundTrips) {
  mem_->Add(1, ValueType::kValue, "k", "");
  std::string value = "junk";
  Status s;
  ASSERT_TRUE(mem_->Get(LookupKey("k", 10), &value, &s));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(value.empty());
}

TEST_F(MemTableTest, LargeValuesSurvive) {
  const std::string big(1 << 20, 'B');
  mem_->Add(1, ValueType::kValue, "big", big);
  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get(LookupKey("big", 10), &value, &s));
  EXPECT_EQ(value, big);
  EXPECT_GE(mem_->ApproximateMemoryUsage(), big.size());
}

TEST_F(MemTableTest, IteratorYieldsSortedInternalKeys) {
  mem_->Add(3, ValueType::kValue, "b", "vb");
  mem_->Add(1, ValueType::kValue, "c", "vc");
  mem_->Add(2, ValueType::kValue, "a", "va");

  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  iter->SeekToFirst();
  std::vector<std::string> user_keys;
  while (iter->Valid()) {
    user_keys.push_back(ExtractUserKey(iter->key()).ToString());
    iter->Next();
  }
  EXPECT_EQ(user_keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(MemTableTest, IteratorSeek) {
  mem_->Add(1, ValueType::kValue, "apple", "1");
  mem_->Add(2, ValueType::kValue, "banana", "2");
  mem_->Add(3, ValueType::kValue, "cherry", "3");

  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  std::string seek_key;
  AppendInternalKey(&seek_key, "b", kMaxSequenceNumber, kValueTypeForSeek);
  iter->Seek(Slice(seek_key));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "banana");
}

TEST_F(MemTableTest, EntryCountTracksAdds) {
  EXPECT_EQ(mem_->num_entries(), 0u);
  for (int i = 0; i < 57; ++i) {
    mem_->Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue,
              "k" + std::to_string(i), "v");
  }
  EXPECT_EQ(mem_->num_entries(), 57u);
}

}  // namespace
}  // namespace lsmio::lsm
