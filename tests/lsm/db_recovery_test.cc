// Crash/recovery behaviour: WAL replay, manifest re-open, and the paper's
// disable_wal mode where durability comes from the explicit write barrier.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/random.h"
#include "common/units.h"
#include "lsm/db.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

class DbRecoveryTest : public ::testing::Test {
 protected:
  Options BaseOptions() {
    Options options;
    options.vfs = &fs_;
    options.write_buffer_size = 64 * KiB;
    return options;
  }

  void Open(const Options& options) {
    db_.reset();  // close cleanly first if open
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  }

  // Simulates a crash: drops the DB object. Unflushed memtable contents
  // survive only through the WAL.
  void Crash() { db_.reset(); }

  std::string Get(const std::string& key) {
    std::string value;
    const Status s = db_->Get({}, key, &value);
    return s.IsNotFound() ? "NOT_FOUND" : (s.ok() ? value : "ERROR:" + s.ToString());
  }

  // Name (not full path) of the lexicographically newest "/db" child with
  // the given prefix/suffix; empty when none matches.
  std::string NewestFile(const std::string& prefix, const std::string& suffix) {
    std::vector<std::string> children;
    EXPECT_TRUE(fs_.ListDir("/db", &children).ok());
    std::string newest;
    for (const auto& child : children) {
      if (child.size() < prefix.size() + suffix.size()) continue;
      if (child.compare(0, prefix.size(), prefix) != 0) continue;
      if (child.compare(child.size() - suffix.size(), suffix.size(), suffix) != 0)
        continue;
      if (newest.empty() || child > newest) newest = child;
    }
    return newest;
  }

  vfs::MemVfs fs_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbRecoveryTest, WalReplayRestoresUnflushedWrites) {
  Open(BaseOptions());
  ASSERT_TRUE(db_->Put({}, "durable", "yes").ok());
  ASSERT_TRUE(db_->Put({}, "also", "this").ok());
  Crash();

  Open(BaseOptions());
  EXPECT_EQ(Get("durable"), "yes");
  EXPECT_EQ(Get("also"), "this");
}

TEST_F(DbRecoveryTest, WalReplayPreservesDeletes) {
  Open(BaseOptions());
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  ASSERT_TRUE(db_->Delete({}, "k").ok());
  Crash();
  Open(BaseOptions());
  EXPECT_EQ(Get("k"), "NOT_FOUND");
}

TEST_F(DbRecoveryTest, SequenceNumbersContinueAfterRecovery) {
  Open(BaseOptions());
  ASSERT_TRUE(db_->Put({}, "k", "v1").ok());
  Crash();
  Open(BaseOptions());
  // The overwrite must win: its sequence must be newer than the recovered one.
  ASSERT_TRUE(db_->Put({}, "k", "v2").ok());
  EXPECT_EQ(Get("k"), "v2");
  Crash();
  Open(BaseOptions());
  EXPECT_EQ(Get("k"), "v2");
}

TEST_F(DbRecoveryTest, FlushedDataSurvivesWithoutWal) {
  Options options = BaseOptions();
  options.disable_wal = true;
  Open(options);
  ASSERT_TRUE(db_->Put({}, "flushed", "survives").ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());  // the paper's write barrier
  ASSERT_TRUE(db_->Put({}, "unflushed", "lost").ok());
  Crash();

  Open(options);
  EXPECT_EQ(Get("flushed"), "survives");
  // Without a WAL, post-barrier writes are gone — exactly the trade the
  // paper makes for checkpoint data.
  EXPECT_EQ(Get("unflushed"), "NOT_FOUND");
}

TEST_F(DbRecoveryTest, ManyFlushedFilesRecoverThroughManifest) {
  Options options = BaseOptions();
  options.disable_compaction = true;
  options.write_buffer_size = 8 * KiB;
  Open(options);

  std::map<std::string, std::string> model;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const std::string key = "key" + std::to_string(i);
    std::string value(200, '\0');
    rng.Fill(value.data(), value.size());
    model[key] = value;
    ASSERT_TRUE(db_->Put({}, key, value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  Crash();

  Open(options);
  for (const auto& [key, value] : model) {
    EXPECT_EQ(Get(key), value) << key;
  }
}

TEST_F(DbRecoveryTest, RepeatedReopenCycles) {
  std::map<std::string, std::string> model;
  for (int cycle = 0; cycle < 5; ++cycle) {
    Open(BaseOptions());
    for (int i = 0; i < 50; ++i) {
      const std::string key = "c" + std::to_string(cycle) + "-k" + std::to_string(i);
      model[key] = "cycle" + std::to_string(cycle);
      ASSERT_TRUE(db_->Put({}, key, model[key]).ok());
    }
    if (cycle % 2 == 0) ASSERT_TRUE(db_->FlushMemTable(true).ok());
    for (const auto& [key, value] : model) {
      ASSERT_EQ(Get(key), value) << "cycle " << cycle << " key " << key;
    }
    Crash();
  }
  Open(BaseOptions());
  for (const auto& [key, value] : model) {
    EXPECT_EQ(Get(key), value);
  }
}

TEST_F(DbRecoveryTest, TornWalTailLosesOnlyTheTornRecord) {
  Open(BaseOptions());
  ASSERT_TRUE(db_->Put({}, "intact", "value").ok());
  ASSERT_TRUE(db_->Put({}, "torn", std::string(1000, 't')).ok());
  Crash();

  // Chop bytes off the newest WAL file to simulate a torn write.
  const std::string newest_log = NewestFile("", ".log");
  ASSERT_FALSE(newest_log.empty());
  uint64_t size = 0;
  ASSERT_TRUE(fs_.GetFileSize("/db/" + newest_log, &size).ok());
  std::unique_ptr<vfs::FileHandle> handle;
  ASSERT_TRUE(fs_.OpenFileHandle("/db/" + newest_log, false, {}, &handle).ok());
  ASSERT_TRUE(handle->Truncate(size - 500).ok());

  Open(BaseOptions());
  EXPECT_EQ(Get("intact"), "value");
  EXPECT_EQ(Get("torn"), "NOT_FOUND");
}

TEST_F(DbRecoveryTest, UncleanCloseWithGarbledWalTailKeepsIntactPrefix) {
  Open(BaseOptions());
  ASSERT_TRUE(db_->Put({}, "intact", "v1").ok());
  ASSERT_TRUE(db_->Put({}, "garbled", std::string(1000, 'g')).ok());
  Crash();

  // Unclean close: the final WAL record's bytes were never written back, so
  // the tail holds stale garbage rather than being neatly truncated.
  const std::string newest_log = NewestFile("", ".log");
  ASSERT_FALSE(newest_log.empty());
  uint64_t size = 0;
  ASSERT_TRUE(fs_.GetFileSize("/db/" + newest_log, &size).ok());
  ASSERT_GT(size, 200U);
  std::unique_ptr<vfs::FileHandle> handle;
  ASSERT_TRUE(fs_.OpenFileHandle("/db/" + newest_log, false, {}, &handle).ok());
  std::string garbage(200, '\0');
  Rng rng(99);
  rng.Fill(garbage.data(), garbage.size());
  ASSERT_TRUE(handle->WriteAt(size - 200, garbage).ok());
  ASSERT_TRUE(handle->Close().ok());

  // The garbled record fails its CRC at end-of-log and is treated as a torn
  // tail, not corruption: everything before it replays.
  Open(BaseOptions());
  EXPECT_EQ(Get("intact"), "v1");
  EXPECT_EQ(Get("garbled"), "NOT_FOUND");

  // The recovered store takes writes again, including to the lost key.
  ASSERT_TRUE(db_->Put({}, "garbled", "rewritten").ok());
  EXPECT_EQ(Get("garbled"), "rewritten");
}

TEST_F(DbRecoveryTest, ManifestRolloverLeavesOneManifestAndCurrentPointsAtIt) {
  std::map<std::string, std::string> model;
  for (int cycle = 0; cycle < 4; ++cycle) {
    Open(BaseOptions());
    const std::string key = "cycle" + std::to_string(cycle);
    model[key] = "v" + std::to_string(cycle);
    ASSERT_TRUE(db_->Put({}, key, model[key]).ok());
    ASSERT_TRUE(db_->FlushMemTable(true).ok());
    Crash();
  }

  // Every reopen rolled the manifest; the obsolete ones must be swept.
  std::vector<std::string> children;
  ASSERT_TRUE(fs_.ListDir("/db", &children).ok());
  int manifests = 0;
  for (const auto& child : children) {
    if (child.rfind("MANIFEST-", 0) == 0) ++manifests;
  }
  EXPECT_EQ(manifests, 1);

  // CURRENT names exactly the surviving manifest.
  std::string current;
  ASSERT_TRUE(vfs::ReadFileToString(fs_, "/db/CURRENT", &current).ok());
  ASSERT_FALSE(current.empty());
  ASSERT_EQ(current.back(), '\n');
  current.pop_back();
  EXPECT_EQ(current, NewestFile("MANIFEST-", ""));
  EXPECT_TRUE(fs_.FileExists("/db/" + current));

  Open(BaseOptions());
  for (const auto& [key, value] : model) {
    EXPECT_EQ(Get(key), value) << key;
  }
}

TEST_F(DbRecoveryTest, GarbageAppendedToManifestRecoversLastGoodSnapshot) {
  Open(BaseOptions());
  ASSERT_TRUE(db_->Put({}, "flushed", "durable").ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  Crash();

  // A crashed manifest append leaves a partial record at the tail. The
  // reader must stop at the last good snapshot instead of rejecting the DB.
  const std::string manifest = NewestFile("MANIFEST-", "");
  ASSERT_FALSE(manifest.empty());
  uint64_t size = 0;
  ASSERT_TRUE(fs_.GetFileSize("/db/" + manifest, &size).ok());
  std::unique_ptr<vfs::FileHandle> handle;
  ASSERT_TRUE(fs_.OpenFileHandle("/db/" + manifest, false, {}, &handle).ok());
  std::string garbage(64, '\0');
  Rng rng(123);
  rng.Fill(garbage.data(), garbage.size());
  ASSERT_TRUE(handle->WriteAt(size, garbage).ok());
  ASSERT_TRUE(handle->Close().ok());

  Open(BaseOptions());
  EXPECT_EQ(Get("flushed"), "durable");
  ASSERT_TRUE(db_->Put({}, "after", "ok").ok());
  EXPECT_EQ(Get("after"), "ok");
}

TEST_F(DbRecoveryTest, CompactedStateSurvivesReopen) {
  Options options = BaseOptions();
  options.disable_compaction = false;
  options.write_buffer_size = 8 * KiB;
  Open(options);

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_->Put({}, "k" + std::to_string(i), std::string(200, 'x')).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  ASSERT_TRUE(db_->CompactRange().ok());
  Crash();

  Open(options);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(Get("k" + std::to_string(i)), std::string(200, 'x')) << i;
  }
}

TEST_F(DbRecoveryTest, ObsoleteFilesAreRemovedAfterCompaction) {
  Options options = BaseOptions();
  options.disable_compaction = false;
  options.write_buffer_size = 8 * KiB;
  Open(options);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db_->Put({}, "k" + std::to_string(i % 20), std::string(500, 'y')).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  ASSERT_TRUE(db_->CompactRange().ok());

  // After full compaction of 20 distinct small keys, the live table count
  // must be small (inputs deleted).
  std::vector<std::string> children;
  ASSERT_TRUE(fs_.ListDir("/db", &children).ok());
  int sst_count = 0;
  for (const auto& child : children) {
    if (child.size() > 4 && child.substr(child.size() - 4) == ".sst") ++sst_count;
  }
  EXPECT_LE(sst_count, 2);
}

}  // namespace
}  // namespace lsmio::lsm
