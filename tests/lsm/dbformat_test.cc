#include "lsm/dbformat.h"

#include <gtest/gtest.h>

namespace lsmio::lsm {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq, ValueType t) {
  std::string encoded;
  AppendInternalKey(&encoded, user_key, seq, t);
  return encoded;
}

TEST(InternalKeyTest, EncodeDecodeRoundTrip) {
  const std::string encoded = IKey("user-key", 12345, ValueType::kValue);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(encoded, &parsed));
  EXPECT_EQ(parsed.user_key.ToString(), "user-key");
  EXPECT_EQ(parsed.sequence, 12345u);
  EXPECT_EQ(parsed.type, ValueType::kValue);
}

TEST(InternalKeyTest, DeletionType) {
  const std::string encoded = IKey("k", 7, ValueType::kDeletion);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(encoded, &parsed));
  EXPECT_EQ(parsed.type, ValueType::kDeletion);
}

TEST(InternalKeyTest, RejectsTooShort) {
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(Slice("short"), &parsed));
}

TEST(InternalKeyTest, RejectsBadTypeTag) {
  std::string encoded = IKey("k", 7, ValueType::kValue);
  encoded[encoded.size() - 8] = '\x09';  // invalid type byte
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(encoded, &parsed));
}

TEST(InternalKeyComparatorTest, OrdersByUserKeyThenDescendingSequence) {
  InternalKeyComparator icmp(BytewiseComparator());

  // Same user key: newer (higher sequence) sorts first.
  EXPECT_LT(icmp.Compare(IKey("k", 10, ValueType::kValue),
                         IKey("k", 5, ValueType::kValue)),
            0);
  // Different user key dominates.
  EXPECT_LT(icmp.Compare(IKey("a", 1, ValueType::kValue),
                         IKey("b", 100, ValueType::kValue)),
            0);
  // Identical keys compare equal.
  EXPECT_EQ(icmp.Compare(IKey("k", 5, ValueType::kValue),
                         IKey("k", 5, ValueType::kValue)),
            0);
}

TEST(InternalKeyComparatorTest, SeekKeyFindsNewestVisible) {
  // A seek key at sequence S must sort before all entries with seq <= S for
  // the same user key (so lower-bound lands on the newest visible entry).
  InternalKeyComparator icmp(BytewiseComparator());
  const std::string seek = IKey("k", 7, kValueTypeForSeek);
  EXPECT_GT(icmp.Compare(seek, IKey("k", 9, ValueType::kValue)), 0);
  EXPECT_LE(icmp.Compare(seek, IKey("k", 7, ValueType::kValue)), 0);
  EXPECT_LT(icmp.Compare(seek, IKey("k", 3, ValueType::kValue)), 0);
}

TEST(LookupKeyTest, PartsAreConsistent) {
  const LookupKey lkey("checkpoint/var1", 99);
  EXPECT_EQ(lkey.user_key().ToString(), "checkpoint/var1");
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(lkey.internal_key(), &parsed));
  EXPECT_EQ(parsed.user_key.ToString(), "checkpoint/var1");
  EXPECT_EQ(parsed.sequence, 99u);
  // memtable_key = varint-length prefix + internal key.
  EXPECT_GT(lkey.memtable_key().size(), lkey.internal_key().size());
}

TEST(LookupKeyTest, LongKeysUseHeapPath) {
  const std::string long_key(5000, 'k');
  const LookupKey lkey(long_key, 1);
  EXPECT_EQ(lkey.user_key().ToString(), long_key);
}

TEST(FileNameTest, FormatsAreParseable) {
  uint64_t number = 0;
  FileType type;

  ASSERT_TRUE(ParseFileName("000123.sst", &number, &type));
  EXPECT_EQ(number, 123u);
  EXPECT_EQ(type, FileType::kTableFile);

  ASSERT_TRUE(ParseFileName("000007.log", &number, &type));
  EXPECT_EQ(number, 7u);
  EXPECT_EQ(type, FileType::kLogFile);

  ASSERT_TRUE(ParseFileName("MANIFEST-000002", &number, &type));
  EXPECT_EQ(number, 2u);
  EXPECT_EQ(type, FileType::kManifestFile);

  ASSERT_TRUE(ParseFileName("CURRENT", &number, &type));
  EXPECT_EQ(type, FileType::kCurrentFile);

  EXPECT_FALSE(ParseFileName("garbage.txt", &number, &type));
  EXPECT_FALSE(ParseFileName("", &number, &type));
}

TEST(FileNameTest, GeneratedNamesRoundTrip) {
  uint64_t number = 0;
  FileType type;
  const std::string table = TableFileName("/db", 42);
  ASSERT_TRUE(ParseFileName(table.substr(4), &number, &type));
  EXPECT_EQ(number, 42u);
  EXPECT_EQ(type, FileType::kTableFile);

  const std::string log = LogFileName("/db", 9);
  ASSERT_TRUE(ParseFileName(log.substr(4), &number, &type));
  EXPECT_EQ(type, FileType::kLogFile);

  const std::string manifest = ManifestFileName("/db", 3);
  ASSERT_TRUE(ParseFileName(manifest.substr(4), &number, &type));
  EXPECT_EQ(type, FileType::kManifestFile);
}

}  // namespace
}  // namespace lsmio::lsm
