#include "lsm/cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lsmio::lsm {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  static constexpr size_t kCapacity = 1000;

  CacheTest() : cache_(NewLRUCache(kCapacity)) {}

  // Inserts key -> value with unit charge unless specified.
  void Insert(const std::string& key, int value, size_t charge = 1) {
    Cache::Handle* h = cache_->Insert(
        key, new int(value), charge,
        [this](const Slice& k, void* v) {
          deleted_.emplace_back(k.ToString(), *static_cast<int*>(v));
          delete static_cast<int*>(v);
        });
    cache_->Release(h);
  }

  int Lookup(const std::string& key) {
    Cache::Handle* h = cache_->Lookup(key);
    if (h == nullptr) return -1;
    const int value = *static_cast<int*>(cache_->Value(h));
    cache_->Release(h);
    return value;
  }

  // Declared before cache_ so it outlives the cache: entry deleters fired
  // from the cache destructor record into it.
  std::vector<std::pair<std::string, int>> deleted_;
  std::unique_ptr<Cache> cache_;
};

TEST_F(CacheTest, HitAndMiss) {
  EXPECT_EQ(Lookup("k"), -1);
  Insert("k", 42);
  EXPECT_EQ(Lookup("k"), 42);
  EXPECT_EQ(Lookup("other"), -1);
}

TEST_F(CacheTest, InsertOverwritesAndDeletesOld) {
  Insert("k", 1);
  Insert("k", 2);
  EXPECT_EQ(Lookup("k"), 2);
  ASSERT_EQ(deleted_.size(), 1u);
  EXPECT_EQ(deleted_[0].second, 1);
}

TEST_F(CacheTest, EraseDeletesEntry) {
  Insert("k", 7);
  cache_->Erase("k");
  EXPECT_EQ(Lookup("k"), -1);
  ASSERT_EQ(deleted_.size(), 1u);
  EXPECT_EQ(deleted_[0].second, 7);
  // Erasing a missing key is a no-op.
  cache_->Erase("k");
  EXPECT_EQ(deleted_.size(), 1u);
}

TEST_F(CacheTest, PinnedEntriesSurviveEviction) {
  Cache::Handle* pinned =
      cache_->Insert("pinned", new int(99), kCapacity, [](const Slice&, void* v) {
        delete static_cast<int*>(v);
      });
  // Flood the cache so eviction pressure is high.
  for (int i = 0; i < 2000; ++i) Insert("flood" + std::to_string(i), i, 10);
  EXPECT_EQ(*static_cast<int*>(cache_->Value(pinned)), 99);
  cache_->Release(pinned);
}

TEST_F(CacheTest, EvictionDropsColdEntries) {
  // Unit charges; capacity per shard is kCapacity/16, so inserting far more
  // than capacity must evict something.
  for (int i = 0; i < 5000; ++i) Insert("key" + std::to_string(i), i);
  EXPECT_FALSE(deleted_.empty());
  EXPECT_LE(cache_->TotalCharge(), kCapacity + 16);  // per-shard rounding
}

TEST_F(CacheTest, RecentlyUsedEntriesPreferred) {
  // Keep touching "hot"; then flood one shard's worth of entries. "hot" is
  // likelier to survive than an untouched cold key. This is probabilistic
  // across shards, so assert only that hot survives when its shard evicts.
  Insert("hot", 1);
  for (int i = 0; i < 3000; ++i) {
    Insert("cold" + std::to_string(i), i);
    (void)Lookup("hot");
  }
  EXPECT_EQ(Lookup("hot"), 1);
}

TEST_F(CacheTest, NewIdIsUnique) {
  const uint64_t a = cache_->NewId();
  const uint64_t b = cache_->NewId();
  EXPECT_NE(a, b);
}

TEST_F(CacheTest, TotalChargeTracksInserts) {
  EXPECT_EQ(cache_->TotalCharge(), 0u);
  Insert("a", 1, 100);
  Insert("b", 2, 200);
  EXPECT_EQ(cache_->TotalCharge(), 300u);
  cache_->Erase("a");
  EXPECT_EQ(cache_->TotalCharge(), 200u);
}

TEST_F(CacheTest, DestructorReleasesEverything) {
  Insert("x", 1);
  Insert("y", 2);
  cache_.reset();
  EXPECT_EQ(deleted_.size(), 2u);
}

}  // namespace
}  // namespace lsmio::lsm
