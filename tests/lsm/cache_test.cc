#include "lsm/cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lsmio::lsm {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  static constexpr size_t kCapacity = 1000;

  CacheTest() : cache_(NewLRUCache(kCapacity)) {}

  // Inserts key -> value with unit charge unless specified.
  void Insert(const std::string& key, int value, size_t charge = 1) {
    Cache::Handle* h = cache_->Insert(
        key, new int(value), charge,
        [this](const Slice& k, void* v) {
          deleted_.emplace_back(k.ToString(), *static_cast<int*>(v));
          delete static_cast<int*>(v);
        });
    cache_->Release(h);
  }

  int Lookup(const std::string& key) {
    Cache::Handle* h = cache_->Lookup(key);
    if (h == nullptr) return -1;
    const int value = *static_cast<int*>(cache_->Value(h));
    cache_->Release(h);
    return value;
  }

  // Declared before cache_ so it outlives the cache: entry deleters fired
  // from the cache destructor record into it.
  std::vector<std::pair<std::string, int>> deleted_;
  std::unique_ptr<Cache> cache_;
};

TEST_F(CacheTest, HitAndMiss) {
  EXPECT_EQ(Lookup("k"), -1);
  Insert("k", 42);
  EXPECT_EQ(Lookup("k"), 42);
  EXPECT_EQ(Lookup("other"), -1);
}

TEST_F(CacheTest, InsertOverwritesAndDeletesOld) {
  Insert("k", 1);
  Insert("k", 2);
  EXPECT_EQ(Lookup("k"), 2);
  ASSERT_EQ(deleted_.size(), 1u);
  EXPECT_EQ(deleted_[0].second, 1);
}

TEST_F(CacheTest, EraseDeletesEntry) {
  Insert("k", 7);
  cache_->Erase("k");
  EXPECT_EQ(Lookup("k"), -1);
  ASSERT_EQ(deleted_.size(), 1u);
  EXPECT_EQ(deleted_[0].second, 7);
  // Erasing a missing key is a no-op.
  cache_->Erase("k");
  EXPECT_EQ(deleted_.size(), 1u);
}

TEST_F(CacheTest, PinnedEntriesSurviveEviction) {
  Cache::Handle* pinned =
      cache_->Insert("pinned", new int(99), kCapacity, [](const Slice&, void* v) {
        delete static_cast<int*>(v);
      });
  // Flood the cache so eviction pressure is high.
  for (int i = 0; i < 2000; ++i) Insert("flood" + std::to_string(i), i, 10);
  EXPECT_EQ(*static_cast<int*>(cache_->Value(pinned)), 99);
  cache_->Release(pinned);
}

TEST_F(CacheTest, EvictionDropsColdEntries) {
  // Unit charges; capacity per shard is kCapacity/16, so inserting far more
  // than capacity must evict something.
  for (int i = 0; i < 5000; ++i) Insert("key" + std::to_string(i), i);
  EXPECT_FALSE(deleted_.empty());
  EXPECT_LE(cache_->TotalCharge(), kCapacity + 16);  // per-shard rounding
}

TEST_F(CacheTest, RecentlyUsedEntriesPreferred) {
  // Keep touching "hot"; then flood one shard's worth of entries. "hot" is
  // likelier to survive than an untouched cold key. This is probabilistic
  // across shards, so assert only that hot survives when its shard evicts.
  Insert("hot", 1);
  for (int i = 0; i < 3000; ++i) {
    Insert("cold" + std::to_string(i), i);
    (void)Lookup("hot");
  }
  EXPECT_EQ(Lookup("hot"), 1);
}

TEST_F(CacheTest, NewIdIsUnique) {
  const uint64_t a = cache_->NewId();
  const uint64_t b = cache_->NewId();
  EXPECT_NE(a, b);
}

TEST_F(CacheTest, TotalChargeTracksInserts) {
  EXPECT_EQ(cache_->TotalCharge(), 0u);
  Insert("a", 1, 100);
  Insert("b", 2, 200);
  EXPECT_EQ(cache_->TotalCharge(), 300u);
  cache_->Erase("a");
  EXPECT_EQ(cache_->TotalCharge(), 200u);
}

TEST_F(CacheTest, DestructorReleasesEverything) {
  Insert("x", 1);
  Insert("y", 2);
  cache_.reset();
  EXPECT_EQ(deleted_.size(), 2u);
}

class CacheOwnerTest : public CacheTest {
 protected:
  void InsertOwned(const std::string& key, int value, size_t charge,
                   uint64_t owner) {
    Cache::Handle* h = cache_->Insert(
        key, new int(value), charge,
        [](const Slice&, void* v) { delete static_cast<int*>(v); }, owner);
    cache_->Release(h);
  }
};

TEST_F(CacheOwnerTest, OwnerChargeTracksInsertAndErase) {
  EXPECT_EQ(cache_->OwnerCharge(7), 0u);
  InsertOwned("a", 1, 100, 7);
  InsertOwned("b", 2, 50, 7);
  InsertOwned("c", 3, 30, 8);
  EXPECT_EQ(cache_->OwnerCharge(7), 150u);
  EXPECT_EQ(cache_->OwnerCharge(8), 30u);
  EXPECT_EQ(cache_->TotalCharge(), 180u);
  cache_->Erase("a");
  EXPECT_EQ(cache_->OwnerCharge(7), 50u);
  // Erase is not a capacity eviction.
  EXPECT_EQ(cache_->OwnerStats(7).evictions, 0u);
  EXPECT_EQ(cache_->OwnerStats(7).inserts, 2u);
}

TEST_F(CacheOwnerTest, OverwriteMovesChargeBetweenOwners) {
  InsertOwned("k", 1, 40, 7);
  InsertOwned("k", 2, 60, 8);  // replaces owner 7's entry
  EXPECT_EQ(cache_->OwnerCharge(7), 0u);
  EXPECT_EQ(cache_->OwnerCharge(8), 60u);
  EXPECT_EQ(cache_->TotalCharge(), 60u);
}

TEST_F(CacheOwnerTest, CapacityEvictionChargedToOwner) {
  // Flood well past capacity under a single owner; capacity evictions must
  // show up in the owner's counters and its resident charge must stay
  // bounded by the cache capacity.
  for (int i = 0; i < 500; ++i) {
    InsertOwned("k" + std::to_string(i), i, 10, 42);
  }
  const CacheOwnerStats stats = cache_->OwnerStats(42);
  EXPECT_EQ(stats.inserts, 500u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.evicted_bytes, stats.evictions * 10);
  EXPECT_LE(stats.charge, kCapacity + 16 * 10);  // per-shard rounding
  EXPECT_EQ(stats.charge, cache_->OwnerCharge(42));
}

TEST_F(CacheOwnerTest, PurgeOwnerDropsUnpinnedKeepsPinned) {
  InsertOwned("cold1", 1, 10, 9);
  InsertOwned("cold2", 2, 10, 9);
  InsertOwned("other", 3, 10, 10);
  Cache::Handle* pinned = cache_->Insert(
      "pinned", new int(4), 25,
      [](const Slice&, void* v) { delete static_cast<int*>(v); }, 9);

  cache_->PurgeOwner(9);
  EXPECT_EQ(Lookup("cold1"), -1);
  EXPECT_EQ(Lookup("cold2"), -1);
  // Pinned entry survives with its charge still attributed.
  EXPECT_EQ(cache_->OwnerCharge(9), 25u);
  // Other owners untouched.
  EXPECT_EQ(Lookup("other"), 3);
  EXPECT_EQ(cache_->OwnerCharge(10), 10u);

  cache_->Release(pinned);
  cache_->Erase("pinned");
  cache_->PurgeOwner(9);
  // Accounting record is forgotten once the charge drains.
  EXPECT_EQ(cache_->OwnerCharge(9), 0u);
  EXPECT_EQ(cache_->OwnerStats(9).inserts, 0u);
}

TEST_F(CacheOwnerTest, UnownedInsertsStayUnaccounted) {
  Insert("plain", 1, 100);  // owner 0
  EXPECT_EQ(cache_->TotalCharge(), 100u);
  EXPECT_EQ(cache_->OwnerCharge(0), 0u);
  EXPECT_EQ(cache_->OwnerStats(0).inserts, 0u);
}

}  // namespace
}  // namespace lsmio::lsm
