#include "lsm/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/random.h"

namespace lsmio::lsm {
namespace {

TEST(ArenaTest, SmallAllocationsDoNotOverlap) {
  Arena arena;
  std::vector<std::pair<char*, size_t>> allocs;
  Rng rng(301);
  for (int i = 0; i < 1000; ++i) {
    const size_t n = 1 + rng.Uniform(64);
    char* p = arena.Allocate(n);
    ASSERT_NE(p, nullptr);
    std::memset(p, static_cast<int>(i % 256), n);
    allocs.emplace_back(p, n);
  }
  // Verify every allocation still carries its fill pattern (no overlap).
  for (size_t i = 0; i < allocs.size(); ++i) {
    const auto [p, n] = allocs[i];
    for (size_t j = 0; j < n; ++j) {
      ASSERT_EQ(static_cast<unsigned char>(p[j]), i % 256);
    }
  }
}

TEST(ArenaTest, LargeAllocationsGetDedicatedBlocks) {
  Arena arena;
  char* big = arena.Allocate(100000);
  std::memset(big, 0x5a, 100000);
  char* small = arena.Allocate(8);
  std::memset(small, 0x11, 8);
  EXPECT_EQ(static_cast<unsigned char>(big[99999]), 0x5a);
}

TEST(ArenaTest, AlignedAllocationsArePointerAligned) {
  Arena arena;
  arena.Allocate(1);  // misalign the bump pointer
  for (int i = 0; i < 100; ++i) {
    char* p = arena.AllocateAligned(24);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(void*), 0u);
    arena.Allocate(1 + static_cast<size_t>(i % 7));  // keep misaligning
  }
}

TEST(ArenaTest, MemoryUsageGrowsMonotonically) {
  Arena arena;
  size_t prev = arena.MemoryUsage();
  for (int i = 0; i < 100; ++i) {
    arena.Allocate(1024);
    EXPECT_GE(arena.MemoryUsage(), prev);
    prev = arena.MemoryUsage();
  }
  EXPECT_GE(arena.MemoryUsage(), 100 * 1024u);
}

}  // namespace
}  // namespace lsmio::lsm
