#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "lsm/filter_block.h"
#include "lsm/filter_policy.h"

namespace lsmio::lsm {
namespace {

class BloomTest : public ::testing::Test {
 protected:
  BloomTest() : policy_(NewBloomFilterPolicy(10)) {}

  void Build(const std::vector<std::string>& keys) {
    std::vector<Slice> slices(keys.begin(), keys.end());
    filter_.clear();
    policy_->CreateFilter(slices.data(), static_cast<int>(slices.size()), &filter_);
  }

  bool Matches(const Slice& key) const {
    return policy_->KeyMayMatch(key, Slice(filter_));
  }

  std::unique_ptr<const FilterPolicy> policy_;
  std::string filter_;
};

TEST_F(BloomTest, EmptyFilterMatchesNothing) {
  Build({});
  EXPECT_FALSE(Matches("hello"));
  EXPECT_FALSE(Matches(""));
}

TEST_F(BloomTest, AddedKeysAlwaysMatch) {
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back("key" + std::to_string(i));
  Build(keys);
  for (const auto& key : keys) {
    EXPECT_TRUE(Matches(key)) << key;  // no false negatives, ever
  }
}

TEST_F(BloomTest, FalsePositiveRateIsBounded) {
  std::vector<std::string> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back("present" + std::to_string(i));
  Build(keys);

  int false_positives = 0;
  constexpr int kProbes = 10000;
  for (int i = 0; i < kProbes; ++i) {
    if (Matches("absent" + std::to_string(i))) ++false_positives;
  }
  // 10 bits/key gives ~1%; allow generous headroom.
  EXPECT_LT(false_positives, kProbes / 25) << "fp rate too high";
}

TEST_F(BloomTest, FilterSizeScalesWithKeys) {
  Build({"a"});
  const size_t small = filter_.size();
  std::vector<std::string> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back(std::to_string(i));
  Build(keys);
  EXPECT_GT(filter_.size(), small);
  EXPECT_LE(filter_.size(), 10000 * 10 / 8 + 64);
}

TEST(FilterBlockTest, EmptyBuilderProducesValidBlock) {
  auto policy = std::unique_ptr<const FilterPolicy>(NewBloomFilterPolicy(10));
  FilterBlockBuilder builder(policy.get());
  const Slice block = builder.Finish();
  FilterBlockReader reader(policy.get(), block);
  // With no filters recorded, everything "may match" (no false negatives).
  EXPECT_TRUE(reader.KeyMayMatch(0, "foo"));
}

TEST(FilterBlockTest, SingleBlockFilter) {
  auto policy = std::unique_ptr<const FilterPolicy>(NewBloomFilterPolicy(10));
  FilterBlockBuilder builder(policy.get());
  builder.StartBlock(0);
  builder.AddKey("alpha");
  builder.AddKey("beta");
  const Slice block = builder.Finish();

  FilterBlockReader reader(policy.get(), block);
  EXPECT_TRUE(reader.KeyMayMatch(0, "alpha"));
  EXPECT_TRUE(reader.KeyMayMatch(0, "beta"));
  EXPECT_FALSE(reader.KeyMayMatch(0, "gamma-not-present-xyz"));
}

TEST(FilterBlockTest, MultipleBlockRanges) {
  auto policy = std::unique_ptr<const FilterPolicy>(NewBloomFilterPolicy(10));
  FilterBlockBuilder builder(policy.get());
  builder.StartBlock(0);
  builder.AddKey("block0-key");
  builder.StartBlock(3000);  // second 2 KiB range
  builder.AddKey("block1-key");
  builder.StartBlock(9000);  // later range, after a gap
  builder.AddKey("block2-key");
  const Slice block = builder.Finish();

  FilterBlockReader reader(policy.get(), block);
  EXPECT_TRUE(reader.KeyMayMatch(0, "block0-key"));
  EXPECT_TRUE(reader.KeyMayMatch(3000, "block1-key"));
  EXPECT_TRUE(reader.KeyMayMatch(9000, "block2-key"));

  EXPECT_FALSE(reader.KeyMayMatch(0, "block1-key"));
  EXPECT_FALSE(reader.KeyMayMatch(3000, "block0-key"));
  // Empty gap range matches nothing.
  EXPECT_FALSE(reader.KeyMayMatch(5000, "block0-key"));
}

TEST(FilterBlockTest, MalformedContentsFailOpen) {
  auto policy = std::unique_ptr<const FilterPolicy>(NewBloomFilterPolicy(10));
  FilterBlockReader reader(policy.get(), Slice("xx", 2));
  // Broken filter must not produce false negatives: fail open.
  EXPECT_TRUE(reader.KeyMayMatch(0, "anything"));
}

}  // namespace
}  // namespace lsmio::lsm
