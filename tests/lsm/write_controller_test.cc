// WriteController: deterministic delayed-write controller tests. Time only
// enters through the now_micros arguments, so these drive it explicitly.
#include "lsm/write_controller.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "lsm/options.h"

namespace lsmio::lsm {
namespace {

Options BaseOptions() {
  Options options;
  options.disable_compaction = false;
  options.l0_slowdown_writes_trigger = 8;
  options.l0_stop_writes_trigger = 16;
  options.delayed_write_rate = 16 * MiB;
  options.max_write_buffer_number = 4;
  return options;
}

TEST(WriteControllerTest, NoDelayBelowSoftTrigger) {
  WriteController wc(BaseOptions());
  wc.UpdatePressure(/*l0_files=*/7, /*imm_queue_len=*/0);
  EXPECT_FALSE(wc.ShouldDelay());
  EXPECT_EQ(wc.DelayMicros(/*now_micros=*/1000, /*batch_bytes=*/1 * MiB), 0u);
}

TEST(WriteControllerTest, NeverDelaysWithCompactionDisabled) {
  Options options = BaseOptions();
  options.disable_compaction = true;  // paper checkpoint config: L0 unbounded
  WriteController wc(options);
  wc.UpdatePressure(/*l0_files=*/1000, /*imm_queue_len=*/3);
  EXPECT_FALSE(wc.ShouldDelay());
  EXPECT_EQ(wc.DelayMicros(1000, 1 * MiB), 0u);
}

TEST(WriteControllerTest, ZeroSoftTriggerDisablesPacing) {
  Options options = BaseOptions();
  options.l0_slowdown_writes_trigger = 0;
  WriteController wc(options);
  wc.UpdatePressure(/*l0_files=*/1000, /*imm_queue_len=*/3);
  EXPECT_FALSE(wc.ShouldDelay());
}

TEST(WriteControllerTest, PressureRampsMonotonicallyToTheStopTrigger) {
  const Options options = BaseOptions();
  WriteController wc(options);
  double last_pressure = -1.0;
  uint64_t last_rate = options.delayed_write_rate + 1;
  for (int l0 = options.l0_slowdown_writes_trigger;
       l0 <= options.l0_stop_writes_trigger; ++l0) {
    wc.UpdatePressure(l0, /*imm_queue_len=*/0);
    ASSERT_TRUE(wc.ShouldDelay()) << "l0=" << l0;
    EXPECT_GE(wc.pressure(), last_pressure) << "l0=" << l0;
    EXPECT_LE(wc.CurrentRate(), last_rate) << "l0=" << l0;
    last_pressure = wc.pressure();
    last_rate = wc.CurrentRate();
  }
  // At the stop trigger the ramp has reached full pressure and the rate
  // floor; the hard stall takes over from here.
  EXPECT_EQ(last_pressure, 1.0);
  EXPECT_EQ(last_rate,
            static_cast<uint64_t>(options.delayed_write_rate /
                                  WriteController::kMaxSlowdownFactor));
}

TEST(WriteControllerTest, LeakyBucketPacesConsecutiveBatches) {
  Options options = BaseOptions();
  options.delayed_write_rate = 1 * MiB;
  WriteController wc(options);
  wc.UpdatePressure(options.l0_slowdown_writes_trigger, 0);
  // First batch is admitted immediately but charges the bucket; the second
  // back-to-back batch pays the first one's credit.
  const uint64_t now = 1'000'000;
  EXPECT_EQ(wc.DelayMicros(now, 64 * KiB), 0u);
  const uint64_t credit = 64 * KiB * 1'000'000ull / wc.CurrentRate();
  EXPECT_EQ(wc.DelayMicros(now, 64 * KiB), credit);
  // A batch arriving after the bucket drained pays nothing.
  EXPECT_EQ(wc.DelayMicros(now + 10 * credit, 64 * KiB), 0u);
}

TEST(WriteControllerTest, DelayDropsToZeroWhenL0Drains) {
  Options options = BaseOptions();
  options.delayed_write_rate = 64 * KiB;  // slow: big residual credits
  WriteController wc(options);
  wc.UpdatePressure(options.l0_stop_writes_trigger - 1, 0);
  const uint64_t now = 1'000'000;
  wc.DelayMicros(now, 1 * MiB);  // leaves a large balance in the bucket
  ASSERT_GT(wc.DelayMicros(now, 1), 0u);
  // Compaction drains L0 below the soft trigger: no residual delay survives.
  wc.UpdatePressure(options.l0_slowdown_writes_trigger - 1, 0);
  EXPECT_FALSE(wc.ShouldDelay());
  EXPECT_EQ(wc.DelayMicros(now, 1 * MiB), 0u);
  // Re-entering the soft window starts from a fresh bucket.
  wc.UpdatePressure(options.l0_slowdown_writes_trigger, 0);
  EXPECT_EQ(wc.DelayMicros(now, 64 * KiB), 0u);
}

TEST(WriteControllerTest, SingleBatchDelayIsCapped) {
  Options options = BaseOptions();
  options.delayed_write_rate = 1;  // floor clamps to >= 1 byte/sec
  WriteController wc(options);
  wc.UpdatePressure(options.l0_stop_writes_trigger, 0);
  const uint64_t now = 1'000'000;
  wc.DelayMicros(now, 1 * MiB);
  for (int i = 0; i < 4; ++i) {
    EXPECT_LE(wc.DelayMicros(now, 1 * MiB),
              WriteController::kMaxBatchDelayMicros);
  }
}

TEST(WriteControllerTest, NearlyFullImmQueueAppliesSoftPressure) {
  WriteController wc(BaseOptions());  // max_write_buffer_number=4 -> 3 slots
  wc.UpdatePressure(/*l0_files=*/0, /*imm_queue_len=*/1);
  EXPECT_FALSE(wc.ShouldDelay());
  wc.UpdatePressure(/*l0_files=*/0, /*imm_queue_len=*/2);  // one slot left
  EXPECT_TRUE(wc.ShouldDelay());
  EXPECT_EQ(wc.pressure(), WriteController::kImmQueuePressure);
  // L0 pressure dominates when deeper than the queue pressure.
  Options options = BaseOptions();
  wc.UpdatePressure(options.l0_stop_writes_trigger, /*imm_queue_len=*/2);
  EXPECT_EQ(wc.pressure(), 1.0);
}

TEST(WriteControllerTest, TwoBufferConfigHasNoImmSoftZone) {
  Options options = BaseOptions();
  options.max_write_buffer_number = 2;  // single flush slot: hard stall only
  WriteController wc(options);
  wc.UpdatePressure(/*l0_files=*/0, /*imm_queue_len=*/1);
  EXPECT_FALSE(wc.ShouldDelay());
}

TEST(WriteControllerTest, GlobalPressureDelaysWithoutLocalPressure) {
  WriteController wc(BaseOptions());
  EXPECT_FALSE(wc.ShouldDelay());
  wc.SetGlobalPressure(0.5);
  EXPECT_TRUE(wc.ShouldDelay());
  EXPECT_EQ(wc.pressure(), 0.5);
  // First batch is admitted immediately but charges the bucket; the next
  // one pays the pacing delay.
  EXPECT_EQ(wc.DelayMicros(/*now_micros=*/1000, /*batch_bytes=*/1 * MiB), 0u);
  EXPECT_GT(wc.DelayMicros(/*now_micros=*/1000, /*batch_bytes=*/1 * MiB), 0u);
}

TEST(WriteControllerTest, GlobalPressureAppliesWithCompactionDisabled) {
  // Paper mode: L0 pacing is off, but a shared write-memory budget still
  // has to be honored — global pressure bypasses the local soft trigger.
  Options options = BaseOptions();
  options.disable_compaction = true;
  WriteController wc(options);
  wc.UpdatePressure(/*l0_files=*/1000, /*imm_queue_len=*/0);
  EXPECT_FALSE(wc.ShouldDelay());
  wc.SetGlobalPressure(0.75);
  EXPECT_TRUE(wc.ShouldDelay());
  EXPECT_EQ(wc.pressure(), 0.75);
}

TEST(WriteControllerTest, EffectivePressureIsMaxOfLocalAndGlobal) {
  WriteController wc(BaseOptions());
  wc.UpdatePressure(/*l0_files=*/0, /*imm_queue_len=*/2);  // local 0.5
  wc.SetGlobalPressure(0.25);
  EXPECT_EQ(wc.pressure(), WriteController::kImmQueuePressure);
  wc.SetGlobalPressure(0.9);
  EXPECT_EQ(wc.pressure(), 0.9);
}

TEST(WriteControllerTest, ClearingGlobalPressureResetsBucket) {
  WriteController wc(BaseOptions());
  wc.SetGlobalPressure(1.0);
  const uint64_t now = 1000;
  (void)wc.DelayMicros(now, 4 * MiB);  // push the bucket head far out
  wc.SetGlobalPressure(0.0);
  EXPECT_FALSE(wc.ShouldDelay());
  EXPECT_EQ(wc.DelayMicros(now, 1 * MiB), 0u);
}

TEST(WriteControllerTest, GlobalPressureClamped) {
  WriteController wc(BaseOptions());
  wc.SetGlobalPressure(5.0);
  EXPECT_EQ(wc.global_pressure(), 1.0);
  wc.SetGlobalPressure(-3.0);
  EXPECT_EQ(wc.global_pressure(), 0.0);
}

}  // namespace
}  // namespace lsmio::lsm
