#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "lsm/log_reader.h"
#include "lsm/log_writer.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm::log {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void StartWriting() {
    ASSERT_TRUE(fs_.NewWritableFile("/log", {}, &dest_).ok());
    writer_ = std::make_unique<Writer>(dest_.get());
  }

  void Write(const std::string& record) {
    ASSERT_TRUE(writer_->AddRecord(record).ok());
  }

  std::vector<std::string> ReadAll(size_t* dropped = nullptr) {
    std::unique_ptr<vfs::SequentialFile> src;
    EXPECT_TRUE(fs_.NewSequentialFile("/log", {}, &src).ok());
    struct Reporter final : Reader::Reporter {
      size_t dropped = 0;
      void Corruption(size_t bytes, const Status& reason) override {
        dropped += bytes;
        reason.IgnoreError();  // the byte count is the assertion target here
      }
    } reporter;
    Reader reader(src.get(), &reporter, /*checksum=*/true);
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    if (dropped != nullptr) *dropped = reporter.dropped;
    return records;
  }

  void CorruptByte(size_t offset, char value) {
    std::unique_ptr<vfs::FileHandle> handle;
    ASSERT_TRUE(fs_.OpenFileHandle("/log", false, {}, &handle).ok());
    ASSERT_TRUE(handle->WriteAt(offset, Slice(&value, 1)).ok());
  }

  void TruncateTo(uint64_t size) {
    std::unique_ptr<vfs::FileHandle> handle;
    ASSERT_TRUE(fs_.OpenFileHandle("/log", false, {}, &handle).ok());
    ASSERT_TRUE(handle->Truncate(size).ok());
  }

  vfs::MemVfs fs_;
  std::unique_ptr<vfs::WritableFile> dest_;
  std::unique_ptr<Writer> writer_;
};

TEST_F(LogTest, EmptyLog) {
  StartWriting();
  EXPECT_TRUE(ReadAll().empty());
}

TEST_F(LogTest, SmallRecordsRoundTrip) {
  StartWriting();
  Write("one");
  Write("two");
  Write("");
  Write("four");
  EXPECT_EQ(ReadAll(), (std::vector<std::string>{"one", "two", "", "four"}));
}

TEST_F(LogTest, RecordSpanningMultipleBlocks) {
  StartWriting();
  const std::string big(3 * kBlockSize + 123, 'x');
  Write("head");
  Write(big);
  Write("tail");
  const auto records = ReadAll();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "head");
  EXPECT_EQ(records[1], big);
  EXPECT_EQ(records[2], "tail");
}

TEST_F(LogTest, ManyRandomSizedRecords) {
  StartWriting();
  Rng rng(7);
  std::vector<std::string> expected;
  for (int i = 0; i < 300; ++i) {
    std::string record(rng.Uniform(5000), '\0');
    rng.Fill(record.data(), record.size());
    expected.push_back(record);
    Write(record);
  }
  EXPECT_EQ(ReadAll(), expected);
}

TEST_F(LogTest, BlockBoundaryExactFit) {
  StartWriting();
  // A record that exactly fills the first block's payload.
  const std::string exact(kBlockSize - kHeaderSize, 'e');
  Write(exact);
  Write("next");
  const auto records = ReadAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], exact);
  EXPECT_EQ(records[1], "next");
}

TEST_F(LogTest, TrailerTooSmallForHeaderIsPadded) {
  StartWriting();
  // Leave fewer than kHeaderSize bytes at the end of the block.
  const std::string first(kBlockSize - 2 * kHeaderSize - 3, 'a');
  Write(first);
  Write("second");
  const auto records = ReadAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], "second");
}

TEST_F(LogTest, ChecksumCorruptionDropsRestOfBlock) {
  StartWriting();
  Write("good-one");
  Write("to-be-corrupted");
  Write("same-block-follower");
  // Force the next record into a fresh block: it must survive.
  Write(std::string(kBlockSize, 'f'));
  Write("next-block-record");

  // Corrupt a payload byte of the second record. The records are back to
  // back in block 0: record 1 at offset 0, record 2 at kHeaderSize+8.
  CorruptByte(kHeaderSize + 8 + kHeaderSize + 2, 'X');

  size_t dropped = 0;
  const auto records = ReadAll(&dropped);
  // A checksum failure poisons the remainder of its 32 KiB block (the
  // record length can no longer be trusted), but later blocks still parse.
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "good-one");
  EXPECT_EQ(records[1], "next-block-record");
  EXPECT_GT(dropped, 0u);
}

TEST_F(LogTest, TruncatedTailIsNotCorruption) {
  StartWriting();
  Write("complete");
  Write("this record will be cut off mid-payload");
  uint64_t size = 0;
  ASSERT_TRUE(fs_.GetFileSize("/log", &size).ok());
  TruncateTo(size - 10);

  size_t dropped = 0;
  const auto records = ReadAll(&dropped);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "complete");
  EXPECT_EQ(dropped, 0u);  // a torn tail is a crash artifact, not corruption
}

TEST_F(LogTest, ReopenedWriterContinuesAtCorrectBlockOffset) {
  StartWriting();
  Write("first");
  uint64_t size = dest_->Size();
  // Simulate re-open: new writer positioned at the current size.
  writer_ = std::make_unique<Writer>(dest_.get(), size);
  Write("second");
  EXPECT_EQ(ReadAll(), (std::vector<std::string>{"first", "second"}));
}

}  // namespace
}  // namespace lsmio::lsm::log
