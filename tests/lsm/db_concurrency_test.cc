// Write-pipeline concurrency: group commit, the immutable-memtable queue,
// and independent flush/compaction scheduling. Writers from many threads
// must never lose an update, sequence numbers must stay contiguous, and a
// flush must complete while a manual compaction is still in flight.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "lsm/db.h"
#include "testutil/faulty_vfs.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

std::string Key(int thread, int i) {
  return "t" + std::to_string(thread) + ".key" + std::to_string(i);
}

class DbConcurrencyTest : public ::testing::Test {
 protected:
  Options BaseOptions() {
    Options options;
    options.vfs = &fs_;
    options.write_buffer_size = 64 * KiB;
    options.background_threads = 2;
    options.max_write_buffer_number = 4;
    return options;
  }

  void Open(Options options) {
    db_.reset();
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  }

  std::string Get(const std::string& key) {
    std::string value;
    const Status s = db_->Get({}, key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    EXPECT_TRUE(s.ok()) << s.ToString();
    return value;
  }

  vfs::MemVfs fs_;
  std::unique_ptr<DB> db_;
};

// N threads of interleaved Put/Delete with write barriers; afterwards every
// surviving key must be readable, every deleted key gone, and the engine
// must have allocated exactly one sequence number per operation (strictly
// ordered, no gaps or duplicates across write groups).
TEST_F(DbConcurrencyTest, ConcurrentWritersStress) {
  Options options = BaseOptions();
  options.disable_compaction = true;
  Open(options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 300;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string value(512, static_cast<char>('a' + t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (!db_->Put({}, Key(t, i), value).ok()) ++failures;
        if (i % 3 == 0) {
          if (!db_->Delete({}, Key(t, i)).ok()) ++failures;
        }
        if (i % 100 == 99) {
          if (!db_->FlushMemTable(/*wait=*/false).ok()) ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  uint64_t expected_ops = 0;
  for (int t = 0; t < kThreads; ++t) {
    const std::string value(512, static_cast<char>('a' + t));
    for (int i = 0; i < kOpsPerThread; ++i) {
      expected_ops += (i % 3 == 0) ? 2 : 1;
      EXPECT_EQ(Get(Key(t, i)), i % 3 == 0 ? "NOT_FOUND" : value);
    }
  }

  const DbStats stats = db_->GetStats();
  EXPECT_EQ(stats.puts, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.puts + stats.deletes, expected_ops);
  // Every DB::Write went through exactly one group.
  EXPECT_EQ(stats.group_commit_writers, expected_ops);
  EXPECT_GE(stats.group_commit_batches, 1u);
  EXPECT_LE(stats.group_commit_batches, stats.group_commit_writers);

  // Sequence numbers were allocated contiguously: the next write's batch
  // starts at exactly (total ops + 1).
  WriteBatch probe;
  probe.Put("probe", "p");
  ASSERT_TRUE(db_->Write({}, &probe).ok());
  EXPECT_EQ(probe.Sequence(), expected_ops + 1);
}

// Sync writers must survive grouping: each caller's durability request is
// honoured (a sync writer is never folded into a non-sync group).
TEST_F(DbConcurrencyTest, ConcurrentSyncWritersAllVisible) {
  Options options = BaseOptions();
  options.disable_compaction = true;
  Open(options);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 100;
  std::atomic<int> failures{0};
  WriteOptions sync_options;
  sync_options.sync = true;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (!db_->Put(sync_options, Key(t, i), "v").ok()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      EXPECT_EQ(Get(Key(t, i)), "v");
    }
  }
  const DbStats stats = db_->GetStats();
  EXPECT_EQ(stats.group_commit_writers,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

// A burst larger than two memtables must roll into the immutable queue
// (max_write_buffer_number=4) without deadlock and stay fully readable,
// including the portion still queued behind an unfinished flush.
TEST_F(DbConcurrencyTest, MemTableQueueAbsorbsBurst) {
  Options options = BaseOptions();
  options.write_buffer_size = 16 * KiB;
  options.disable_compaction = true;
  Open(options);

  const std::string value(1 * KiB, 'b');
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(db_->Put({}, "burst" + std::to_string(i), value).ok());
  }
  // Readable while some of the burst is still in immutable memtables.
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(Get("burst" + std::to_string(i)), value);
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  const DbStats stats = db_->GetStats();
  EXPECT_GE(stats.memtable_flushes, 3u);
  EXPECT_EQ(stats.flush_queue_depth, 0u);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(Get("burst" + std::to_string(i)), value);
  }
}

// Vfs decorator that slows down appends to table files, making background
// work take long enough that flush/compaction overlap is observable.
class SlowTableVfs final : public vfs::Vfs {
 public:
  explicit SlowTableVfs(vfs::Vfs& base) : base_(base) {}

  Status NewWritableFile(const std::string& path, const vfs::OpenOptions& opts,
                         std::unique_ptr<vfs::WritableFile>* file) override {
    std::unique_ptr<vfs::WritableFile> inner;
    LSMIO_RETURN_IF_ERROR(base_.NewWritableFile(path, opts, &inner));
    const bool slow = path.size() > 4 && path.rfind(".sst") == path.size() - 4;
    *file = std::make_unique<Writable>(std::move(inner), slow ? delay_us_.load() : 0);
    return Status::OK();
  }
  Status NewRandomAccessFile(const std::string& path, const vfs::OpenOptions& opts,
                             std::unique_ptr<vfs::RandomAccessFile>* file) override {
    return base_.NewRandomAccessFile(path, opts, file);
  }
  Status NewSequentialFile(const std::string& path, const vfs::OpenOptions& opts,
                           std::unique_ptr<vfs::SequentialFile>* file) override {
    return base_.NewSequentialFile(path, opts, file);
  }
  Status OpenFileHandle(const std::string& path, bool create,
                        const vfs::OpenOptions& opts,
                        std::unique_ptr<vfs::FileHandle>* file) override {
    return base_.OpenFileHandle(path, create, opts, file);
  }
  bool FileExists(const std::string& path) override { return base_.FileExists(path); }
  Status GetFileSize(const std::string& path, uint64_t* size) override {
    return base_.GetFileSize(path, size);
  }
  Status RemoveFile(const std::string& path) override { return base_.RemoveFile(path); }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_.RenameFile(from, to);
  }
  Status CreateDir(const std::string& path) override { return base_.CreateDir(path); }
  Status ListDir(const std::string& path, std::vector<std::string>* out) override {
    return base_.ListDir(path, out);
  }

  void set_delay_us(int delay) { delay_us_.store(delay); }

 private:
  class Writable final : public vfs::WritableFile {
   public:
    Writable(std::unique_ptr<vfs::WritableFile> inner, int delay_us)
        : inner_(std::move(inner)), delay_us_(delay_us) {}
    Status Append(const Slice& data) override {
      if (delay_us_ > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
      }
      return inner_->Append(data);
    }
    Status Flush() override { return inner_->Flush(); }
    Status Sync() override { return inner_->Sync(); }
    Status Close() override { return inner_->Close(); }
    [[nodiscard]] uint64_t Size() const override { return inner_->Size(); }

   private:
    std::unique_ptr<vfs::WritableFile> inner_;
    int delay_us_;
  };

  vfs::Vfs& base_;
  std::atomic<int> delay_us_{0};
};

// With two background threads, a memtable flush must complete while a
// manual compaction over many L0 files is still in flight.
TEST_F(DbConcurrencyTest, FlushProceedsDuringManualCompaction) {
  vfs::MemVfs mem;
  SlowTableVfs slow(mem);
  Options options = BaseOptions();
  options.vfs = &slow;
  options.disable_compaction = false;
  options.l0_compaction_trigger = 100;  // only manual compaction runs
  options.l0_stop_writes_trigger = 100;
  Open(options);

  // Several L0 files for the compaction to chew through.
  const std::string value(4 * KiB, 'c');
  for (int file = 0; file < 6; ++file) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          db_->Put({}, "l0." + std::to_string(file * 8 + i), value).ok());
    }
    ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  }
  ASSERT_GE(db_->GetStats().memtable_flushes, 6u);

  // Slow down table writes from here on: the compaction rewrites ~48 values
  // (one slow append per block) while the flush below writes only a few.
  slow.set_delay_us(3000);

  std::thread compactor([&] { EXPECT_TRUE(db_->CompactRange().ok()); });

  // Wait until the compaction is actually scheduled.
  while (db_->GetStats().compaction_queue_depth == 0 &&
         db_->GetStats().compactions == 0) {
    std::this_thread::yield();
  }

  ASSERT_TRUE(db_->Put({}, "during.compaction", "flushed").ok());
  const Status flush_status = db_->FlushMemTable(/*wait=*/true);
  EXPECT_TRUE(flush_status.ok()) << flush_status.ToString();
  const DbStats mid = db_->GetStats();
  EXPECT_GE(mid.memtable_flushes, 7u);

  compactor.join();
  EXPECT_GE(db_->GetStats().compactions, 1u);
  EXPECT_EQ(Get("during.compaction"), "flushed");
  EXPECT_EQ(Get("l0.0"), value);
  EXPECT_EQ(Get("l0.47"), value);
  db_.reset();  // before the local vfs stack unwinds
}

// Two shards' manual compactions must overlap in time: with
// background_threads=4 the store-wide limiter admits up to three
// concurrent compactions, and the slowed table writes keep each shard's
// compaction in its execute window long enough for the
// peak_concurrent_compactions gauge to observe both at once.
TEST_F(DbConcurrencyTest, ShardCompactionsRunConcurrently) {
  vfs::MemVfs mem;
  SlowTableVfs slow(mem);
  Options options = BaseOptions();
  options.vfs = &slow;
  options.num_shards = 2;
  options.background_threads = 4;
  options.disable_compaction = false;
  options.l0_compaction_trigger = 100;  // only manual compaction runs
  options.l0_stop_writes_trigger = 100;
  Open(options);

  // Several L0 files per shard for the compactions to chew through.
  const std::string value(4 * KiB, 'c');
  for (int file = 0; file < 4; ++file) {
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(
          db_->Put({}, "sc." + std::to_string(file * 16 + i), value).ok());
    }
    ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  }

  slow.set_delay_us(2000);
  ASSERT_TRUE(db_->CompactRange().ok());

  const DbStats stats = db_->GetStats();
  EXPECT_GE(stats.compactions, 2u);  // both shards compacted
  EXPECT_GE(stats.peak_concurrent_compactions, 2u);
  EXPECT_EQ(stats.concurrent_compactions, 0u);  // all drained
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(Get("sc." + std::to_string(i)), value);
  }
  db_.reset();  // before the local vfs stack unwinds
}

// MultiGet must return exactly what per-key Get returns at the same pinned
// sequence number while writers, flushes, and compactions churn the tree
// underneath the readers.
TEST_F(DbConcurrencyTest, MultiGetMatchesGetUnderConcurrency) {
  Options options = BaseOptions();
  options.write_buffer_size = 32 * KiB;
  options.disable_compaction = false;
  options.l0_compaction_trigger = 2;
  options.disable_cache = false;
  options.block_size = 1 * KiB;
  Open(options);

  constexpr int kKeys = 200;
  auto key_of = [](int i) { return "mg" + std::to_string(1000 + i); };

  // Seed every key so readers always have something to find.
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db_->Put({}, key_of(i), "seed").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    int round = 0;
    while (!stop.load()) {
      ++round;
      for (int i = 0; i < kKeys; ++i) {
        const std::string value =
            "round" + std::to_string(round) + "." + std::to_string(i);
        if (i % 17 == 0) {
          if (!db_->Delete({}, key_of(i)).ok()) ++failures;
        } else if (!db_->Put({}, key_of(i), value).ok()) {
          ++failures;
        }
      }
      if (round % 4 == 0 && !db_->FlushMemTable(/*wait=*/false).ok()) {
        ++failures;
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::vector<std::string> keys;
      for (int i = 0; i < kKeys; ++i) keys.push_back(key_of(i));
      std::vector<Slice> slices(keys.begin(), keys.end());

      for (int pass = 0; pass < 40; ++pass) {
        // Pin one read point for both paths; MultiGet and Get must agree
        // bit-for-bit at that sequence. The registered snapshot (sequence
        // S0) keeps compaction from dropping any version visible at the
        // probe's sequence S >= S0; the probe write tells us S.
        const Snapshot* snap = db_->GetSnapshot();
        WriteBatch probe;
        probe.Put("mg.probe", "p");
        if (!db_->Write({}, &probe).ok()) {
          ++failures;
          db_->ReleaseSnapshot(snap);
          continue;
        }
        ReadOptions pinned;
        pinned.snapshot_sequence = probe.Sequence();

        std::vector<std::string> values;
        std::vector<Status> statuses;
        if (!db_->MultiGet(pinned, slices, &values, &statuses).ok()) {
          ++failures;
          db_->ReleaseSnapshot(snap);
          continue;
        }
        for (int i = 0; i < kKeys; ++i) {
          std::string single;
          const Status s = db_->Get(pinned, keys[i], &single);
          if (s.ok() != statuses[i].ok() ||
              s.IsNotFound() != statuses[i].IsNotFound() ||
              (s.ok() && single != values[i])) {
            ++failures;
          }
        }
        db_->ReleaseSnapshot(snap);
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(failures.load(), 0);

  const DbStats stats = db_->GetStats();
  EXPECT_EQ(stats.multiget_batches, 3u * 40u);
  EXPECT_EQ(stats.multiget_keys, stats.multiget_batches * kKeys);
}

// A manual compaction that fails must not wedge later CompactRange calls
// (the request flag is cleared on every exit path).
TEST_F(DbConcurrencyTest, FailedManualCompactionDoesNotWedge) {
  vfs::MemVfs mem;
  testutil::FaultyVfs faulty(mem);
  Options options = BaseOptions();
  options.vfs = &faulty;
  options.disable_compaction = false;
  options.l0_compaction_trigger = 100;
  Open(options);

  for (int file = 0; file < 2; ++file) {
    ASSERT_TRUE(db_->Put({}, "k" + std::to_string(file), "v").ok());
    ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  }

  faulty.Arm(1);  // the compaction's table write fails
  const Status first = db_->CompactRange();
  EXPECT_FALSE(first.ok());
  faulty.Disarm();

  // Must return promptly (with the recorded error), not hang on a stale
  // manual_compaction_requested_ flag.
  const Status second = db_->CompactRange();
  EXPECT_FALSE(second.ok());
}

}  // namespace
}  // namespace lsmio::lsm
