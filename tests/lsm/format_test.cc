#include "lsm/format.h"

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/crc32c.h"
#include "lsm/compression.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

TEST(BlockHandleTest, EncodeDecodeRoundTrip) {
  BlockHandle handle;
  handle.set_offset(0x123456789abcULL);
  handle.set_size(0xdef0);
  std::string encoded;
  handle.EncodeTo(&encoded);

  BlockHandle decoded;
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input).ok());
  EXPECT_EQ(decoded.offset(), handle.offset());
  EXPECT_EQ(decoded.size(), handle.size());
  EXPECT_TRUE(input.empty());
}

TEST(BlockHandleTest, DecodeRejectsTruncated) {
  BlockHandle handle;
  Slice input("\x80", 1);  // unterminated varint
  EXPECT_TRUE(handle.DecodeFrom(&input).IsCorruption());
}

TEST(FooterTest, EncodeDecodeRoundTrip) {
  Footer footer;
  BlockHandle metaindex;
  metaindex.set_offset(1000);
  metaindex.set_size(50);
  BlockHandle index;
  index.set_offset(1055);
  index.set_size(200);
  footer.set_metaindex_handle(metaindex);
  footer.set_index_handle(index);

  std::string encoded;
  footer.EncodeTo(&encoded);
  EXPECT_EQ(encoded.size(), Footer::kEncodedLength);

  Footer decoded;
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input).ok());
  EXPECT_EQ(decoded.metaindex_handle().offset(), 1000u);
  EXPECT_EQ(decoded.metaindex_handle().size(), 50u);
  EXPECT_EQ(decoded.index_handle().offset(), 1055u);
  EXPECT_EQ(decoded.index_handle().size(), 200u);
}

TEST(FooterTest, DecodeRejectsBadMagic) {
  Footer footer;
  std::string encoded;
  footer.EncodeTo(&encoded);
  encoded[encoded.size() - 1] ^= 0x42;  // corrupt the magic
  Slice input(encoded);
  Footer decoded;
  EXPECT_TRUE(decoded.DecodeFrom(&input).IsCorruption());
}

TEST(FooterTest, DecodeRejectsTooShort) {
  Footer decoded;
  Slice input("tiny", 4);
  EXPECT_TRUE(decoded.DecodeFrom(&input).IsCorruption());
}

class ReadBlockTest : public ::testing::Test {
 protected:
  // Writes `contents` as a block (with trailer) at the current end of /f,
  // returning its handle.
  BlockHandle WriteBlock(const std::string& contents, CompressionType type,
                         bool corrupt_crc = false) {
    std::string raw = contents;
    if (type == CompressionType::kLzLite) {
      std::string compressed;
      LzLiteCompressForTest(contents, &compressed);
      raw = compressed;
    }
    std::unique_ptr<vfs::FileHandle> handle;
    EXPECT_TRUE(fs_.OpenFileHandle("/f", true, {}, &handle).ok());
    const uint64_t offset = handle->Size();

    std::string trailer(1, static_cast<char>(type));
    uint32_t crc = crc32c::Value(raw.data(), raw.size());
    crc = crc32c::Extend(crc, trailer.data(), 1);
    if (corrupt_crc) crc ^= 0xdead;
    PutFixed32(&trailer, crc32c::Mask(crc));

    EXPECT_TRUE(handle->WriteAt(offset, raw).ok());
    EXPECT_TRUE(handle->WriteAt(offset + raw.size(), trailer).ok());

    BlockHandle block_handle;
    block_handle.set_offset(offset);
    block_handle.set_size(raw.size());
    return block_handle;
  }

  static void LzLiteCompressForTest(const Slice& in, std::string* out) {
    LzLiteCompress(in, out);
  }

  Status Read(const BlockHandle& handle, bool verify, std::string* out) {
    std::unique_ptr<vfs::RandomAccessFile> file;
    LSMIO_RETURN_IF_ERROR(fs_.NewRandomAccessFile("/f", {}, &file));
    ReadOptions options;
    options.verify_checksums = verify;
    return ReadBlockContents(file.get(), options, false, handle, out);
  }

  vfs::MemVfs fs_;
};

TEST_F(ReadBlockTest, UncompressedRoundTrip) {
  const std::string contents(1000, 'b');
  const BlockHandle handle = WriteBlock(contents, CompressionType::kNone);
  std::string out;
  ASSERT_TRUE(Read(handle, true, &out).ok());
  EXPECT_EQ(out, contents);
}

TEST_F(ReadBlockTest, CompressedRoundTrip) {
  const std::string contents(5000, 'z');
  const BlockHandle handle = WriteBlock(contents, CompressionType::kLzLite);
  std::string out;
  ASSERT_TRUE(Read(handle, true, &out).ok());
  EXPECT_EQ(out, contents);
}

TEST_F(ReadBlockTest, ChecksumMismatchDetected) {
  const BlockHandle handle =
      WriteBlock("payload", CompressionType::kNone, /*corrupt_crc=*/true);
  std::string out;
  EXPECT_TRUE(Read(handle, true, &out).IsCorruption());
  // Without verification the corrupt CRC goes unnoticed (by design).
  EXPECT_TRUE(Read(handle, false, &out).ok());
}

TEST_F(ReadBlockTest, TruncatedReadDetected) {
  const BlockHandle good = WriteBlock("payload", CompressionType::kNone);
  BlockHandle past_eof;
  past_eof.set_offset(good.offset() + 1000);
  past_eof.set_size(100);
  std::string out;
  EXPECT_TRUE(Read(past_eof, false, &out).IsCorruption());
}

TEST_F(ReadBlockTest, UnknownCompressionTypeRejected) {
  // Manually write a block whose type byte is invalid.
  std::unique_ptr<vfs::FileHandle> handle;
  ASSERT_TRUE(fs_.OpenFileHandle("/f", true, {}, &handle).ok());
  const std::string raw = "data";
  std::string trailer(1, '\x7');
  uint32_t crc = crc32c::Value(raw.data(), raw.size());
  crc = crc32c::Extend(crc, trailer.data(), 1);
  PutFixed32(&trailer, crc32c::Mask(crc));
  ASSERT_TRUE(handle->WriteAt(0, raw).ok());
  ASSERT_TRUE(handle->WriteAt(raw.size(), trailer).ok());

  BlockHandle bh;
  bh.set_offset(0);
  bh.set_size(raw.size());
  std::string out;
  EXPECT_TRUE(Read(bh, true, &out).IsCorruption());
}

}  // namespace
}  // namespace lsmio::lsm
