#include "lsm/skiplist.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/random.h"

namespace lsmio::lsm {
namespace {

struct U64Cmp {
  int operator()(uint64_t a, uint64_t b) const {
    if (a < b) return -1;
    if (a > b) return +1;
    return 0;
  }
};

using U64List = SkipList<uint64_t, U64Cmp>;

TEST(SkipListTest, EmptyList) {
  Arena arena;
  U64List list(U64Cmp{}, &arena);
  EXPECT_FALSE(list.Contains(10));

  U64List::Iterator iter(&list);
  EXPECT_FALSE(iter.Valid());
  iter.SeekToFirst();
  EXPECT_FALSE(iter.Valid());
  iter.SeekToLast();
  EXPECT_FALSE(iter.Valid());
  iter.Seek(100);
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, InsertLookupAndOrderedScan) {
  constexpr int kN = 2000;
  constexpr uint64_t kR = 5000;
  Arena arena;
  U64List list(U64Cmp{}, &arena);
  std::set<uint64_t> keys;
  Rng rng(1000);

  for (int i = 0; i < kN; ++i) {
    const uint64_t key = rng.Uniform(kR);
    if (keys.insert(key).second) list.Insert(key);
  }

  for (uint64_t i = 0; i < kR; ++i) {
    EXPECT_EQ(list.Contains(i), keys.count(i) > 0) << "key " << i;
  }

  // Forward scan matches the set.
  {
    U64List::Iterator iter(&list);
    iter.SeekToFirst();
    for (const uint64_t expected : keys) {
      ASSERT_TRUE(iter.Valid());
      EXPECT_EQ(iter.key(), expected);
      iter.Next();
    }
    EXPECT_FALSE(iter.Valid());
  }

  // Backward scan matches the reversed set.
  {
    U64List::Iterator iter(&list);
    iter.SeekToLast();
    for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
      ASSERT_TRUE(iter.Valid());
      EXPECT_EQ(iter.key(), *it);
      iter.Prev();
    }
    EXPECT_FALSE(iter.Valid());
  }
}

TEST(SkipListTest, SeekFindsLowerBound) {
  Arena arena;
  U64List list(U64Cmp{}, &arena);
  for (uint64_t k : {10u, 20u, 30u, 40u}) list.Insert(k);

  U64List::Iterator iter(&list);
  iter.Seek(25);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 30u);

  iter.Seek(30);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 30u);

  iter.Seek(41);
  EXPECT_FALSE(iter.Valid());

  iter.Seek(0);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 10u);
}

TEST(SkipListTest, ConcurrentReadDuringInsert) {
  // One writer inserting ascending keys; readers scan concurrently and must
  // always observe a sorted, gap-free prefix.
  Arena arena;
  U64List list(U64Cmp{}, &arena);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> inserted{0};

  std::thread writer([&] {
    for (uint64_t k = 0; k < 20000; ++k) {
      list.Insert(k);
      inserted.store(k + 1, std::memory_order_release);
    }
    done.store(true);
  });

  std::thread reader([&] {
    while (!done.load()) {
      const uint64_t lower_bound_count = inserted.load(std::memory_order_acquire);
      U64List::Iterator iter(&list);
      iter.SeekToFirst();
      uint64_t expected = 0;
      while (iter.Valid()) {
        ASSERT_EQ(iter.key(), expected);
        ++expected;
        iter.Next();
      }
      ASSERT_GE(expected, lower_bound_count);
    }
  });

  writer.join();
  reader.join();
  EXPECT_TRUE(list.Contains(19999));
}

}  // namespace
}  // namespace lsmio::lsm
