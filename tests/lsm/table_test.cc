#include "lsm/table.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "lsm/cache.h"
#include "lsm/comparator.h"
#include "lsm/dbformat.h"
#include "lsm/filter_policy.h"
#include "lsm/read_stats.h"
#include "lsm/table_builder.h"
#include "vfs/mem_vfs.h"
#include "vfs/posix_vfs.h"

namespace lsmio::lsm {
namespace {

// Builds a table of internal keys in a MemVfs and reopens it for reading.
class TableTest : public ::testing::Test {
 protected:
  TableTest() : icmp_(BytewiseComparator()), policy_(NewBloomFilterPolicy(10)) {}

  std::string IKey(const std::string& user_key, SequenceNumber seq = 1,
                   ValueType t = ValueType::kValue) {
    std::string encoded;
    AppendInternalKey(&encoded, user_key, seq, t);
    return encoded;
  }

  void BuildAndOpen(const std::map<std::string, std::string>& user_entries,
                    Options options = {}) {
    std::unique_ptr<vfs::WritableFile> file;
    ASSERT_TRUE(fs_.NewWritableFile("/t.sst", {}, &file).ok());
    TableBuilder builder(options, &icmp_, policy_.get(), file.get());
    for (const auto& [k, v] : user_entries) builder.Add(IKey(k), v);
    ASSERT_TRUE(builder.Finish().ok());
    ASSERT_TRUE(file->Close().ok());

    uint64_t size = 0;
    ASSERT_TRUE(fs_.GetFileSize("/t.sst", &size).ok());
    ASSERT_TRUE(fs_.NewRandomAccessFile("/t.sst", {}, &raf_).ok());
    cache_ = NewLRUCache(1 << 20);
    ASSERT_TRUE(Table::Open(options, &icmp_, policy_.get(), cache_.get(), 1,
                            raf_.get(), size, &table_)
                    .ok());
  }

  // Gets a user key through InternalGet.
  bool Get(const std::string& user_key, std::string* value) {
    std::string seek;
    AppendInternalKey(&seek, user_key, kMaxSequenceNumber, kValueTypeForSeek);
    bool found = false;
    const Status s = table_->InternalGet(
        {}, seek, [&](const Slice& k, const Slice& v) {
          ParsedInternalKey parsed;
          if (ParseInternalKey(k, &parsed) &&
              parsed.user_key == Slice(user_key)) {
            *value = v.ToString();
            found = true;
          }
        });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return found;
  }

  vfs::MemVfs fs_;
  InternalKeyComparator icmp_;
  std::unique_ptr<const FilterPolicy> policy_;
  std::unique_ptr<vfs::RandomAccessFile> raf_;
  std::unique_ptr<Cache> cache_;
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, PointLookups) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 500; ++i) {
    entries["key" + std::to_string(10000 + i)] = "value" + std::to_string(i);
  }
  BuildAndOpen(entries);

  std::string value;
  ASSERT_TRUE(Get("key10000", &value));
  EXPECT_EQ(value, "value0");
  ASSERT_TRUE(Get("key10250", &value));
  EXPECT_EQ(value, "value250");
  ASSERT_TRUE(Get("key10499", &value));
  EXPECT_EQ(value, "value499");
  EXPECT_FALSE(Get("key99999", &value));
  EXPECT_FALSE(Get("aaa", &value));
}

TEST_F(TableTest, FullScanInOrder) {
  std::map<std::string, std::string> entries;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    std::string key(8, '\0');
    rng.Fill(key.data(), key.size());
    entries[key] = std::to_string(i);
  }
  BuildAndOpen(entries);

  std::unique_ptr<Iterator> iter(table_->NewIterator({}));
  auto expected = entries.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++expected) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), expected->first);
    EXPECT_EQ(iter->value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, entries.end());
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(TableTest, SeekWithinScan) {
  BuildAndOpen({{"b", "1"}, {"d", "2"}, {"f", "3"}});
  std::unique_ptr<Iterator> iter(table_->NewIterator({}));
  iter->Seek(IKey("c", kMaxSequenceNumber, kValueTypeForSeek));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "d");
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "f");
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST_F(TableTest, SmallBlockSizeProducesManyBlocks) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 300; ++i) {
    entries["key" + std::to_string(1000 + i)] = std::string(100, 'v');
  }
  Options options;
  options.block_size = 256;  // force many data blocks
  BuildAndOpen(entries, options);

  std::string value;
  for (int i = 0; i < 300; i += 37) {
    ASSERT_TRUE(Get("key" + std::to_string(1000 + i), &value)) << i;
  }
  std::unique_ptr<Iterator> iter(table_->NewIterator({}));
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) ++count;
  EXPECT_EQ(count, 300);
}

TEST_F(TableTest, CompressedTableRoundTrips) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 200; ++i) {
    entries["key" + std::to_string(1000 + i)] = std::string(500, 'r');
  }
  Options options;
  options.compression = CompressionType::kLzLite;
  BuildAndOpen(entries, options);

  uint64_t compressed_size = 0;
  ASSERT_TRUE(fs_.GetFileSize("/t.sst", &compressed_size).ok());
  EXPECT_LT(compressed_size, 200 * 500u);  // repetitive values must shrink

  std::string value;
  ASSERT_TRUE(Get("key1000", &value));
  EXPECT_EQ(value, std::string(500, 'r'));
  ASSERT_TRUE(Get("key1199", &value));
}

TEST_F(TableTest, ChecksumVerificationDetectsCorruption) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; ++i) {
    entries["key" + std::to_string(i)] = "payload" + std::to_string(i);
  }
  Options options;
  BuildAndOpen(entries, options);

  // Flip a byte in the middle of the data region.
  std::unique_ptr<vfs::FileHandle> handle;
  ASSERT_TRUE(fs_.OpenFileHandle("/t.sst", false, {}, &handle).ok());
  ASSERT_TRUE(handle->WriteAt(100, "X").ok());

  // Reopen with a cold cache so the read hits the corrupted bytes.
  uint64_t size = 0;
  ASSERT_TRUE(fs_.GetFileSize("/t.sst", &size).ok());
  std::unique_ptr<Table> table2;
  ASSERT_TRUE(Table::Open(options, &icmp_, policy_.get(), nullptr, 2,
                          raf_.get(), size, &table2)
                  .ok());
  ReadOptions read_opts;
  read_opts.verify_checksums = true;
  std::unique_ptr<Iterator> iter(table2->NewIterator(read_opts));
  iter->SeekToFirst();
  while (iter->Valid()) iter->Next();
  EXPECT_TRUE(iter->status().IsCorruption());
}

TEST_F(TableTest, OpenRejectsNonTableFile) {
  ASSERT_TRUE(vfs::WriteStringToFile(fs_, "/junk", std::string(200, 'j')).ok());
  std::unique_ptr<vfs::RandomAccessFile> raf;
  ASSERT_TRUE(fs_.NewRandomAccessFile("/junk", {}, &raf).ok());
  std::unique_ptr<Table> table;
  EXPECT_TRUE(Table::Open({}, &icmp_, policy_.get(), nullptr, 1, raf.get(), 200,
                          &table)
                  .IsCorruption());
}

TEST_F(TableTest, OpenRejectsTooShortFile) {
  ASSERT_TRUE(vfs::WriteStringToFile(fs_, "/tiny", "x").ok());
  std::unique_ptr<vfs::RandomAccessFile> raf;
  ASSERT_TRUE(fs_.NewRandomAccessFile("/tiny", {}, &raf).ok());
  std::unique_ptr<Table> table;
  EXPECT_TRUE(
      Table::Open({}, &icmp_, policy_.get(), nullptr, 1, raf.get(), 1, &table)
          .IsCorruption());
}

TEST_F(TableTest, ApproximateOffsetsAreMonotone) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 500; ++i) {
    entries["key" + std::to_string(10000 + i)] = std::string(200, 'o');
  }
  Options options;
  options.block_size = 1024;
  BuildAndOpen(entries, options);

  uint64_t prev = 0;
  for (int i = 0; i < 500; i += 50) {
    const uint64_t off =
        table_->ApproximateOffsetOf(IKey("key" + std::to_string(10000 + i)));
    EXPECT_GE(off, prev);
    prev = off;
  }
  EXPECT_GT(prev, 0u);
}

// Read/iterate matrix over {use_mmap} x {pin_index_and_filter} against the
// real file system: mmap is a PosixVfs feature, and the pinned/unpinned
// index-filter modes must serve identical results.
class TableMatrixTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {
 protected:
  TableMatrixTest() : icmp_(BytewiseComparator()), policy_(NewBloomFilterPolicy(10)) {}

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lsmio_table_matrix_" + std::to_string(::getpid()) + "_" +
            std::to_string(std::get<0>(GetParam())) +
            std::to_string(std::get<1>(GetParam())));
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(vfs::PosixVfs().CreateDir(dir_.string()).ok());
  }

  void TearDown() override {
    table_.reset();
    raf_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string IKey(const std::string& user_key, SequenceNumber seq = 1,
                   ValueType t = ValueType::kValue) {
    std::string encoded;
    AppendInternalKey(&encoded, user_key, seq, t);
    return encoded;
  }

  void BuildAndOpen(const std::map<std::string, std::string>& user_entries) {
    const auto [use_mmap, pin] = GetParam();
    vfs::Vfs& fs = vfs::PosixVfs();
    const std::string path = (dir_ / "t.sst").string();

    Options options;
    options.block_size = 512;
    options.pin_index_and_filter = pin;

    std::unique_ptr<vfs::WritableFile> file;
    ASSERT_TRUE(fs.NewWritableFile(path, {}, &file).ok());
    TableBuilder builder(options, &icmp_, policy_.get(), file.get());
    for (const auto& [k, v] : user_entries) builder.Add(IKey(k), v);
    ASSERT_TRUE(builder.Finish().ok());
    ASSERT_TRUE(file->Close().ok());

    uint64_t size = 0;
    ASSERT_TRUE(fs.GetFileSize(path, &size).ok());
    vfs::OpenOptions open_opts;
    open_opts.use_mmap = use_mmap;
    ASSERT_TRUE(fs.NewRandomAccessFile(path, open_opts, &raf_).ok());
    cache_ = NewLRUCache(1 << 20);
    ASSERT_TRUE(Table::Open(options, &icmp_, policy_.get(), cache_.get(), 1,
                            raf_.get(), size, &table_, &counters_)
                    .ok());
  }

  bool Get(const std::string& user_key, std::string* value) {
    std::string seek;
    AppendInternalKey(&seek, user_key, kMaxSequenceNumber, kValueTypeForSeek);
    bool found = false;
    const Status s = table_->InternalGet(
        {}, seek, [&](const Slice& k, const Slice& v) {
          ParsedInternalKey parsed;
          if (ParseInternalKey(k, &parsed) &&
              parsed.user_key == Slice(user_key)) {
            *value = v.ToString();
            found = true;
          }
        });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return found;
  }

  std::filesystem::path dir_;
  InternalKeyComparator icmp_;
  std::unique_ptr<const FilterPolicy> policy_;
  std::unique_ptr<vfs::RandomAccessFile> raf_;
  std::unique_ptr<Cache> cache_;
  std::unique_ptr<Table> table_;
  ReadCounters counters_;
};

TEST_P(TableMatrixTest, LookupsIterationAndMultiGet) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 400; ++i) {
    char key[16];
    std::snprintf(key, sizeof key, "key%06d", i);
    entries[key] = "value" + std::to_string(i);
  }
  BuildAndOpen(entries);

  // Point lookups: hits and bloom-filtered misses.
  std::string value;
  ASSERT_TRUE(Get("key000000", &value));
  EXPECT_EQ(value, "value0");
  ASSERT_TRUE(Get("key000399", &value));
  EXPECT_EQ(value, "value399");
  EXPECT_FALSE(Get("key999999", &value));
  EXPECT_FALSE(Get("aaa", &value));

  // Full in-order iteration, with readahead hints enabled.
  ReadOptions scan;
  scan.readahead_bytes = 64 << 10;
  std::unique_ptr<Iterator> iter(table_->NewIterator(scan));
  auto expected = entries.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++expected) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), expected->first);
    EXPECT_EQ(iter->value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, entries.end());
  EXPECT_TRUE(iter->status().ok());
  EXPECT_GT(counters_.readahead_bytes.load(), 0u);

  // MultiGet over a sorted batch: present keys, bloom-rejected absences,
  // and duplicates. Results must match the per-key lookups.
  std::vector<std::string> storage;
  for (int i = 0; i < 400; i += 5) {
    char key[16];
    std::snprintf(key, sizeof key, "key%06d", i);
    storage.push_back(IKey(key, kMaxSequenceNumber, kValueTypeForSeek));
    if (i % 50 == 0) storage.push_back(storage.back());  // duplicate
  }
  std::vector<Slice> ikeys(storage.begin(), storage.end());
  std::map<size_t, std::string> got;
  const Status s = table_->MultiGet(
      {}, ikeys, [&](size_t i, const Slice& k, const Slice& v) {
        ParsedInternalKey parsed;
        ASSERT_TRUE(ParseInternalKey(k, &parsed));
        if (parsed.user_key == ExtractUserKey(ikeys[i])) {
          got[i] = v.ToString();
        }
      });
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (size_t i = 0; i < ikeys.size(); ++i) {
    const std::string user_key = ExtractUserKey(ikeys[i]).ToString();
    ASSERT_TRUE(got.count(i)) << user_key;
    EXPECT_EQ(got[i], entries[user_key]) << user_key;
  }

  // The same batch again: with a warm cache nothing should need the file.
  const uint64_t misses_before = counters_.block_cache_misses.load();
  std::map<size_t, std::string> again;
  ASSERT_TRUE(table_
                  ->MultiGet({}, ikeys,
                             [&](size_t i, const Slice&, const Slice& v) {
                               again[i] = v.ToString();
                             })
                  .ok());
  EXPECT_EQ(again.size(), ikeys.size());
  EXPECT_EQ(counters_.block_cache_misses.load(), misses_before);
}

TEST_P(TableMatrixTest, MultiGetColdCacheCoalesces) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 300; ++i) {
    char key[16];
    std::snprintf(key, sizeof key, "key%06d", i);
    entries[key] = std::string(100, 'v');
  }
  BuildAndOpen(entries);

  std::vector<std::string> storage;
  for (int i = 0; i < 300; i += 2) {
    char key[16];
    std::snprintf(key, sizeof key, "key%06d", i);
    storage.push_back(IKey(key, kMaxSequenceNumber, kValueTypeForSeek));
  }
  std::vector<Slice> ikeys(storage.begin(), storage.end());
  size_t found = 0;
  ASSERT_TRUE(table_
                  ->MultiGet({}, ikeys,
                             [&](size_t, const Slice&, const Slice&) { ++found; })
                  .ok());
  EXPECT_EQ(found, ikeys.size());
  // A dense batch over adjacent 512-byte blocks must coalesce reads.
  EXPECT_GT(counters_.coalesced_reads.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    MmapByPin, TableMatrixTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<bool, bool>>& info) {
      return std::string(std::get<0>(info.param) ? "Mmap" : "Pread") +
             (std::get<1>(info.param) ? "Pinned" : "Unpinned");
    });

}  // namespace
}  // namespace lsmio::lsm
