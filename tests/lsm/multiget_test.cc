// DB::MultiGet correctness: hits/misses/deletes, batches spanning the
// memtable, immutable memtables, L0 and deeper levels, duplicate and
// unsorted keys, snapshot consistency, and the read-path statistics the
// batch path maintains (coalesced block reads, bloom filters, readahead).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "lsm/db.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

class MultiGetTest : public ::testing::Test {
 protected:
  Options BaseOptions() {
    Options options;
    options.vfs = &fs_;
    options.write_buffer_size = 64 * KiB;
    options.disable_compaction = true;
    return options;
  }

  void Open(Options options) {
    db_.reset();
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  }

  /// Runs MultiGet over `keys`; the batch-level status must be OK.
  std::vector<Status> Batch(const std::vector<std::string>& keys,
                            std::vector<std::string>* values,
                            ReadOptions read_options = {}) {
    std::vector<Slice> slices(keys.begin(), keys.end());
    std::vector<Status> statuses;
    const Status s = db_->MultiGet(read_options, slices, values, &statuses);
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(values->size(), keys.size());
    EXPECT_EQ(statuses.size(), keys.size());
    return statuses;
  }

  std::string Get(const std::string& key, ReadOptions read_options = {}) {
    std::string value;
    const Status s = db_->Get(read_options, key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    EXPECT_TRUE(s.ok()) << s.ToString();
    return value;
  }

  vfs::MemVfs fs_;
  std::unique_ptr<DB> db_;
};

TEST_F(MultiGetTest, HitsMissesAndDeletes) {
  Open(BaseOptions());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put({}, "k" + std::to_string(100 + i), "v" + std::to_string(i)).ok());
    if (i % 25 == 24) ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  }
  for (int i = 0; i < 100; i += 10) {
    ASSERT_TRUE(db_->Delete({}, "k" + std::to_string(100 + i)).ok());
  }

  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) keys.push_back("k" + std::to_string(100 + i));
  keys.push_back("absent.low");
  keys.push_back("zzz.absent.high");

  std::vector<std::string> values;
  const std::vector<Status> statuses = Batch(keys, &values);
  for (int i = 0; i < 100; ++i) {
    if (i % 10 == 0) {
      EXPECT_TRUE(statuses[i].IsNotFound()) << keys[i];
    } else {
      ASSERT_TRUE(statuses[i].ok()) << keys[i] << ": " << statuses[i].ToString();
      EXPECT_EQ(values[i], "v" + std::to_string(i));
    }
  }
  EXPECT_TRUE(statuses[100].IsNotFound());
  EXPECT_TRUE(statuses[101].IsNotFound());

  const DbStats stats = db_->GetStats();
  EXPECT_EQ(stats.multiget_batches, 1u);
  EXPECT_EQ(stats.multiget_keys, keys.size());
}

// A batch whose keys live in the active memtable, an immutable memtable
// still queued for flush, L0 files, and a compacted deeper level must
// return the newest version of every key.
TEST_F(MultiGetTest, SpansMemtableAndAllLevels) {
  Options options = BaseOptions();
  options.disable_compaction = false;
  options.l0_compaction_trigger = 100;  // only manual compaction
  options.max_write_buffer_number = 4;
  Open(options);

  // Deep level: keys written, flushed, compacted.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db_->Put({}, "deep" + std::to_string(i), "base").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  ASSERT_TRUE(db_->CompactRange().ok());

  // L0: overwrite some deep keys and add fresh ones, flushed but not compacted.
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(db_->Put({}, "deep" + std::to_string(i), "l0").ok());
    ASSERT_TRUE(db_->Put({}, "l0only" + std::to_string(i), "l0").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  // Immutable memtable: flush without waiting, then keep writing.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->Put({}, "deep" + std::to_string(i), "imm").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/false).ok());

  // Active memtable: newest overwrites.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db_->Put({}, "deep" + std::to_string(i), "mem").ok());
  }

  std::vector<std::string> keys;
  std::vector<std::string> expected;
  for (int i = 0; i < 50; ++i) {
    keys.push_back("deep" + std::to_string(i));
    if (i < 5) expected.push_back("mem");
    else if (i < 10) expected.push_back("imm");
    else if (i < 25) expected.push_back("l0");
    else expected.push_back("base");
  }
  for (int i = 0; i < 25; ++i) {
    keys.push_back("l0only" + std::to_string(i));
    expected.push_back("l0");
  }

  std::vector<std::string> values;
  const std::vector<Status> statuses = Batch(keys, &values);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(statuses[i].ok()) << keys[i] << ": " << statuses[i].ToString();
    EXPECT_EQ(values[i], expected[i]) << keys[i];
    EXPECT_EQ(values[i], Get(keys[i])) << keys[i];
  }
}

TEST_F(MultiGetTest, DuplicateAndUnsortedKeys) {
  Open(BaseOptions());
  ASSERT_TRUE(db_->Put({}, "alpha", "1").ok());
  ASSERT_TRUE(db_->Put({}, "mid", "2").ok());
  ASSERT_TRUE(db_->Put({}, "zeta", "3").ok());
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  const std::vector<std::string> keys = {"zeta", "alpha",  "missing", "alpha",
                                         "mid",  "missing", "zeta"};
  std::vector<std::string> values;
  const std::vector<Status> statuses = Batch(keys, &values);
  EXPECT_EQ(values[0], "3");
  EXPECT_EQ(values[1], "1");
  EXPECT_TRUE(statuses[2].IsNotFound());
  EXPECT_EQ(values[3], "1");
  EXPECT_EQ(values[4], "2");
  EXPECT_TRUE(statuses[5].IsNotFound());
  EXPECT_EQ(values[6], "3");
}

// The whole batch reads at one sequence number: a snapshot taken before an
// overwrite must return the old values for every key in the batch.
TEST_F(MultiGetTest, SnapshotConsistency) {
  Open(BaseOptions());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db_->Put({}, "s" + std::to_string(10 + i), "old").ok());
  }
  const SequenceNumber snap_seq = 20;  // after the 20 puts above
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db_->Put({}, "s" + std::to_string(10 + i), "new").ok());
  }
  ASSERT_TRUE(db_->Put({}, "s.after", "new").ok());
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  std::vector<std::string> keys;
  for (int i = 0; i < 20; ++i) keys.push_back("s" + std::to_string(10 + i));
  keys.push_back("s.after");

  ReadOptions at_snapshot;
  at_snapshot.snapshot_sequence = snap_seq;
  std::vector<std::string> values;
  const std::vector<Status> statuses = Batch(keys, &values, at_snapshot);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << keys[i];
    EXPECT_EQ(values[i], "old") << keys[i];
  }
  EXPECT_TRUE(statuses[20].IsNotFound());  // written after the snapshot

  // Without the snapshot the same batch sees the new world.
  const std::vector<Status> now = Batch(keys, &values);
  for (int i = 0; i <= 20; ++i) {
    ASSERT_TRUE(now[i].ok()) << keys[i];
    EXPECT_EQ(values[i], "new") << keys[i];
  }
}

// MultiGet must agree with per-key Get over a randomized workload that
// includes overwrites and deletes, in every pin_index_and_filter mode.
TEST_F(MultiGetTest, MatchesGetExactly) {
  for (const bool pin : {true, false}) {
    Options options = BaseOptions();
    options.disable_cache = false;
    options.pin_index_and_filter = pin;
    options.block_size = 512;
    Open(options);

    std::map<std::string, std::string> model;
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 200; ++i) {
        const std::string key = "key" + std::to_string((i * 37 + round * 11) % 300);
        if ((i + round) % 7 == 0) {
          ASSERT_TRUE(db_->Delete({}, key).ok());
          model.erase(key);
        } else {
          const std::string value = "r" + std::to_string(round) + "." + std::to_string(i);
          ASSERT_TRUE(db_->Put({}, key, value).ok());
          model[key] = value;
        }
      }
      ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
    }

    std::vector<std::string> keys;
    for (int i = 0; i < 300; ++i) keys.push_back("key" + std::to_string(i));
    std::vector<std::string> values;
    const std::vector<Status> statuses = Batch(keys, &values);
    for (size_t i = 0; i < keys.size(); ++i) {
      const auto it = model.find(keys[i]);
      if (it == model.end()) {
        EXPECT_TRUE(statuses[i].IsNotFound()) << "pin=" << pin << " " << keys[i];
        EXPECT_EQ(Get(keys[i]), "NOT_FOUND") << keys[i];
      } else {
        ASSERT_TRUE(statuses[i].ok()) << "pin=" << pin << " " << keys[i];
        EXPECT_EQ(values[i], it->second) << keys[i];
        EXPECT_EQ(Get(keys[i]), it->second) << keys[i];
      }
    }
  }
}

// A dense batch over a multi-block table must coalesce adjacent block
// reads, and misses must be answered by the bloom filter without touching
// data blocks.
TEST_F(MultiGetTest, StatsCountCoalescingAndBloom) {
  Options options = BaseOptions();
  options.disable_cache = false;
  options.block_size = 512;  // many small adjacent data blocks
  Open(options);

  for (int i = 0; i < 400; i += 2) {  // only even keys exist
    char key[16];
    std::snprintf(key, sizeof key, "key%06d", i);
    ASSERT_TRUE(db_->Put({}, key, std::string(100, 'v')).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  // Cold cache: reopen so no data block is cached. Odd keys land inside
  // the table's range, so only the bloom filter can prove them absent.
  Open(options);
  std::vector<std::string> keys;
  for (int i = 0; i < 400; ++i) {
    char key[16];
    std::snprintf(key, sizeof key, "key%06d", i);
    keys.push_back(key);
  }

  std::vector<std::string> values;
  const std::vector<Status> statuses = Batch(keys, &values);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(statuses[i].ok()) << keys[i];
    } else {
      EXPECT_TRUE(statuses[i].IsNotFound()) << keys[i];
    }
  }

  const DbStats stats = db_->GetStats();
  EXPECT_GT(stats.multiget_coalesced_reads, 0u);
  EXPECT_GT(stats.bloom_checked, 0u);
  EXPECT_GT(stats.bloom_useful, 0u);  // the "nope" keys never touch blocks
  EXPECT_GT(stats.block_cache_misses, 0u);

  // Warm pass: the same batch now comes from the block cache.
  const uint64_t hits_before = stats.block_cache_hits;
  Batch(keys, &values);
  EXPECT_GT(db_->GetStats().block_cache_hits, hits_before);
}

// Iterator readahead (ReadOptions::readahead_bytes) and compaction
// readahead (Options::compaction_readahead_bytes) must be accounted in
// DbStats::readahead_bytes.
TEST_F(MultiGetTest, ReadaheadIsAccounted) {
  Options options = BaseOptions();
  options.block_size = 512;
  Open(options);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db_->Put({}, "ra" + std::to_string(1000 + i), std::string(200, 'x')).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());

  {
    // Scoped: the iterator must not outlive the DB it came from (the
    // re-open below destroys it).
    ReadOptions scan;
    scan.readahead_bytes = 64 * KiB;
    std::unique_ptr<Iterator> iter(db_->NewIterator(scan));
    int count = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) ++count;
    EXPECT_EQ(count, 300);
    EXPECT_GT(db_->GetStats().readahead_bytes, 0u);
  }

  // Compaction scans its inputs with Options::compaction_readahead_bytes.
  Options compacting = BaseOptions();
  compacting.disable_compaction = false;
  compacting.l0_compaction_trigger = 100;
  compacting.compaction_readahead_bytes = 128 * KiB;
  compacting.block_size = 512;
  Open(compacting);
  for (int file = 0; file < 3; ++file) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          db_->Put({}, "c" + std::to_string(i), std::string(200, 'y')).ok());
    }
    ASSERT_TRUE(db_->FlushMemTable(/*wait=*/true).ok());
  }
  ASSERT_TRUE(db_->CompactRange().ok());
  EXPECT_GT(db_->GetStats().readahead_bytes, 0u);
}

// An empty batch is a no-op; a batch against an empty DB is all-NotFound.
TEST_F(MultiGetTest, EdgeBatches) {
  Open(BaseOptions());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE(db_->MultiGet({}, {}, &values, &statuses).ok());
  EXPECT_TRUE(values.empty());
  EXPECT_TRUE(statuses.empty());

  const std::vector<std::string> keys = {"a", "b"};
  const std::vector<Status> result = Batch(keys, &values);
  EXPECT_TRUE(result[0].IsNotFound());
  EXPECT_TRUE(result[1].IsNotFound());
}

}  // namespace
}  // namespace lsmio::lsm
