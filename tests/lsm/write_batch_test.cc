#include "lsm/write_batch.h"

#include <gtest/gtest.h>

#include <vector>

#include "lsm/comparator.h"
#include "lsm/memtable.h"

namespace lsmio::lsm {
namespace {

// Records the ops a batch contains in order.
struct OpRecorder final : WriteBatch::Handler {
  std::vector<std::string> ops;
  void Put(const Slice& key, const Slice& value) override {
    ops.push_back("Put(" + key.ToString() + "," + value.ToString() + ")");
  }
  void Delete(const Slice& key) override {
    ops.push_back("Delete(" + key.ToString() + ")");
  }
};

TEST(WriteBatchTest, EmptyBatch) {
  WriteBatch batch;
  EXPECT_EQ(batch.Count(), 0);
  OpRecorder rec;
  ASSERT_TRUE(batch.Iterate(&rec).ok());
  EXPECT_TRUE(rec.ops.empty());
}

TEST(WriteBatchTest, OpsPreserveOrder) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Put("c", "3");
  EXPECT_EQ(batch.Count(), 3);

  OpRecorder rec;
  ASSERT_TRUE(batch.Iterate(&rec).ok());
  EXPECT_EQ(rec.ops, (std::vector<std::string>{"Put(a,1)", "Delete(b)", "Put(c,3)"}));
}

TEST(WriteBatchTest, SequenceRoundTrip) {
  WriteBatch batch;
  batch.SetSequence(0xdeadbeefULL);
  EXPECT_EQ(batch.Sequence(), 0xdeadbeefULL);
}

TEST(WriteBatchTest, AppendConcatenates) {
  WriteBatch a;
  a.Put("x", "1");
  WriteBatch b;
  b.Put("y", "2");
  b.Delete("z");
  a.Append(b);
  EXPECT_EQ(a.Count(), 3);

  OpRecorder rec;
  ASSERT_TRUE(a.Iterate(&rec).ok());
  EXPECT_EQ(rec.ops, (std::vector<std::string>{"Put(x,1)", "Put(y,2)", "Delete(z)"}));
}

TEST(WriteBatchTest, ClearEmpties) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Clear();
  EXPECT_EQ(batch.Count(), 0);
  EXPECT_EQ(batch.Sequence(), 0u);
}

TEST(WriteBatchTest, ContentsRoundTripThroughSetContents) {
  WriteBatch a;
  a.SetSequence(42);
  a.Put("key", "value");
  a.Delete("gone");

  WriteBatch b;
  ASSERT_TRUE(WriteBatch::SetContents(&b, a.Contents()).ok());
  EXPECT_EQ(b.Count(), 2);
  EXPECT_EQ(b.Sequence(), 42u);

  OpRecorder rec;
  ASSERT_TRUE(b.Iterate(&rec).ok());
  EXPECT_EQ(rec.ops, (std::vector<std::string>{"Put(key,value)", "Delete(gone)"}));
}

TEST(WriteBatchTest, SetContentsRejectsTruncated) {
  WriteBatch b;
  EXPECT_TRUE(WriteBatch::SetContents(&b, Slice("short", 5)).IsCorruption());
}

TEST(WriteBatchTest, IterateDetectsCountMismatch) {
  WriteBatch a;
  a.Put("k", "v");
  std::string rep(a.Contents().data(), a.Contents().size());
  rep[8] = 5;  // corrupt the count field
  WriteBatch b;
  ASSERT_TRUE(WriteBatch::SetContents(&b, rep).ok());
  OpRecorder rec;
  EXPECT_TRUE(b.Iterate(&rec).IsCorruption());
}

TEST(WriteBatchTest, InsertIntoAssignsSequentialSequences) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();

  WriteBatch batch;
  batch.SetSequence(100);
  batch.Put("a", "va");
  batch.Put("b", "vb");
  batch.Delete("a");
  ASSERT_TRUE(batch.InsertInto(mem).ok());

  // "a" was deleted at sequence 102, put at 100.
  std::string value;
  Status s;
  ASSERT_TRUE(mem->Get(LookupKey("a", 200), &value, &s));
  EXPECT_TRUE(s.IsNotFound());
  ASSERT_TRUE(mem->Get(LookupKey("a", 101), &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(value, "va");
  ASSERT_TRUE(mem->Get(LookupKey("b", 200), &value, &s));
  EXPECT_EQ(value, "vb");

  mem->Unref();
}

TEST(WriteBatchTest, ApproximateSizeGrowsWithPayload) {
  WriteBatch batch;
  const size_t empty = batch.ApproximateSize();
  batch.Put("key", std::string(1000, 'v'));
  EXPECT_GT(batch.ApproximateSize(), empty + 1000);
}

TEST(WriteBatchTest, BinaryKeysAndValuesSurvive) {
  WriteBatch batch;
  const std::string key("\x00\x01\xff\xfe", 4);
  const std::string value("\x00zero\x00embedded", 14);
  batch.Put(key, value);

  OpRecorder rec;
  ASSERT_TRUE(batch.Iterate(&rec).ok());
  EXPECT_EQ(rec.ops[0], "Put(" + key + "," + value + ")");
}

}  // namespace
}  // namespace lsmio::lsm
