#include "lsm/block.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/random.h"
#include "lsm/block_builder.h"
#include "lsm/comparator.h"

namespace lsmio::lsm {
namespace {

std::unique_ptr<Block> BuildBlock(const std::map<std::string, std::string>& entries,
                                  int restart_interval = 16) {
  Options options;
  options.block_restart_interval = restart_interval;
  BlockBuilder builder(&options);
  for (const auto& [k, v] : entries) builder.Add(k, v);
  const Slice contents = builder.Finish();
  return std::make_unique<Block>(contents.ToString());
}

TEST(BlockTest, EmptyBlockIteratorIsInvalid) {
  auto block = BuildBlock({});
  std::unique_ptr<Iterator> iter(block->NewIterator(BytewiseComparator()));
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST(BlockTest, ForwardScanYieldsAllEntries) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; ++i) {
    entries["key" + std::to_string(1000 + i)] = "value" + std::to_string(i);
  }
  auto block = BuildBlock(entries);
  std::unique_ptr<Iterator> iter(block->NewIterator(BytewiseComparator()));
  auto expected = entries.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++expected) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(iter->key().ToString(), expected->first);
    EXPECT_EQ(iter->value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, entries.end());
}

TEST(BlockTest, BackwardScan) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 50; ++i) entries["k" + std::to_string(100 + i)] = "v";
  auto block = BuildBlock(entries);
  std::unique_ptr<Iterator> iter(block->NewIterator(BytewiseComparator()));
  auto expected = entries.rbegin();
  for (iter->SeekToLast(); iter->Valid(); iter->Prev(), ++expected) {
    ASSERT_NE(expected, entries.rend());
    EXPECT_EQ(iter->key().ToString(), expected->first);
  }
  EXPECT_EQ(expected, entries.rend());
}

TEST(BlockTest, SeekLandsOnLowerBound) {
  auto block = BuildBlock({{"b", "1"}, {"d", "2"}, {"f", "3"}});
  std::unique_ptr<Iterator> iter(block->NewIterator(BytewiseComparator()));

  iter->Seek("a");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "b");

  iter->Seek("d");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "d");

  iter->Seek("e");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "f");

  iter->Seek("g");
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, PrefixCompressionPreservesKeys) {
  // Long shared prefixes stress the shared/non-shared split.
  std::map<std::string, std::string> entries;
  const std::string prefix(100, 'p');
  for (int i = 0; i < 64; ++i) {
    entries[prefix + std::to_string(1000 + i)] = std::to_string(i);
  }
  for (const int restart : {1, 2, 16, 64}) {
    auto block = BuildBlock(entries, restart);
    std::unique_ptr<Iterator> iter(block->NewIterator(BytewiseComparator()));
    auto expected = entries.begin();
    for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++expected) {
      EXPECT_EQ(iter->key().ToString(), expected->first) << "restart=" << restart;
    }
  }
}

TEST(BlockTest, SeekEveryKeyWithVariousRestartIntervals) {
  std::map<std::string, std::string> entries;
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    std::string key(1 + rng.Uniform(30), '\0');
    rng.Fill(key.data(), key.size());
    entries[key] = std::to_string(i);
  }
  for (const int restart : {1, 7, 16}) {
    auto block = BuildBlock(entries, restart);
    std::unique_ptr<Iterator> iter(block->NewIterator(BytewiseComparator()));
    for (const auto& [k, v] : entries) {
      iter->Seek(k);
      ASSERT_TRUE(iter->Valid()) << "restart=" << restart;
      EXPECT_EQ(iter->key().ToString(), k);
      EXPECT_EQ(iter->value().ToString(), v);
    }
  }
}

TEST(BlockTest, MalformedBlockYieldsErrorIterator) {
  Block block(std::string("xx", 2));  // too short for the restart count
  std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().IsCorruption());
}

TEST(BlockBuilderTest, ResetAllowsReuse) {
  Options options;
  BlockBuilder builder(&options);
  builder.Add("a", "1");
  builder.Finish();
  builder.Reset();
  EXPECT_TRUE(builder.empty());
  builder.Add("b", "2");
  const Slice contents = builder.Finish();
  Block block(contents.ToString());
  std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "b");
}

TEST(BlockBuilderTest, SizeEstimateIsReasonable) {
  Options options;
  BlockBuilder builder(&options);
  const size_t empty_size = builder.CurrentSizeEstimate();
  builder.Add("key", std::string(1000, 'v'));
  EXPECT_GE(builder.CurrentSizeEstimate(), empty_size + 1000);
  const Slice contents = builder.Finish();
  EXPECT_EQ(contents.size(), builder.CurrentSizeEstimate());
}

}  // namespace
}  // namespace lsmio::lsm
