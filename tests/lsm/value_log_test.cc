// WAL-time key/value separation: threshold routing, segment rotation,
// checksum verification, recovery of pointer entries, and live-pointer GC
// (including snapshot/iterator pinning of drained segments).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/units.h"
#include "lsm/db.h"
#include "lsm/value_log.h"
#include "vfs/mem_vfs.h"

namespace lsmio::lsm {
namespace {

std::vector<std::string> BlobFiles(vfs::Vfs& fs, const std::string& dbname) {
  std::vector<std::string> children;
  std::vector<std::string> blobs;
  if (!fs.ListDir(dbname, &children).ok()) return blobs;
  for (const auto& child : children) {
    if (child.size() > 5 && child.compare(child.size() - 5, 5, ".blob") == 0) {
      blobs.push_back(dbname + "/" + child);
    }
  }
  return blobs;
}

std::string Value(char fill, size_t n) { return std::string(n, fill); }

class ValueLogDbTest : public ::testing::Test {
 protected:
  Options BaseOptions() {
    Options options;
    options.vfs = &fs_;
    options.value_log_threshold = 64;
    return options;
  }

  void Open(const Options& options) {
    db_.reset();
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  }

  std::string Get(const Slice& key) {
    std::string value;
    const Status s = db_->Get({}, key, &value);
    return s.IsNotFound() ? "NOT_FOUND" : (s.ok() ? value : "ERR:" + s.ToString());
  }

  vfs::MemVfs fs_;
  std::unique_ptr<DB> db_;
};

TEST(ValuePointerCodec, RoundTripsAndRejectsTrailingBytes) {
  ValuePointer in;
  in.segment = 7;
  in.offset = 123456789;
  in.length = 42;
  std::string encoded;
  EncodeValuePointer(&encoded, in);

  ValuePointer out;
  ASSERT_TRUE(DecodeValuePointer(Slice(encoded), &out));
  EXPECT_EQ(out.segment, in.segment);
  EXPECT_EQ(out.offset, in.offset);
  EXPECT_EQ(out.length, in.length);

  encoded.push_back('\0');  // trailing byte: not exactly one pointer
  EXPECT_FALSE(DecodeValuePointer(Slice(encoded), &out));
  EXPECT_FALSE(DecodeValuePointer(Slice("\x01", 1), &out));
}

TEST_F(ValueLogDbTest, ValuesBelowThresholdStayInline) {
  Open(BaseOptions());
  ASSERT_TRUE(db_->Put({}, "small", Value('s', 63)).ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  EXPECT_EQ(Get("small"), Value('s', 63));
  // Nothing crossed the threshold, so no blob segment was ever created.
  EXPECT_TRUE(BlobFiles(fs_, "/db").empty());
}

TEST_F(ValueLogDbTest, LargeValuesRouteToBlobSegments) {
  Open(BaseOptions());
  ASSERT_TRUE(db_->Put({}, "big", Value('b', 64)).ok());
  ASSERT_TRUE(db_->Put({}, "bigger", Value('c', 10 * KiB)).ok());
  ASSERT_TRUE(db_->Put({}, "small", "tiny").ok());
  EXPECT_FALSE(BlobFiles(fs_, "/db").empty());

  // Resolution from the memtable...
  EXPECT_EQ(Get("big"), Value('b', 64));
  EXPECT_EQ(Get("bigger"), Value('c', 10 * KiB));
  EXPECT_EQ(Get("small"), "tiny");

  // ...and from tables after a flush.
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  EXPECT_EQ(Get("big"), Value('b', 64));
  EXPECT_EQ(Get("bigger"), Value('c', 10 * KiB));

  // Iterators resolve lazily per position.
  std::unique_ptr<Iterator> it(db_->NewIterator({}));
  int seen = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    ++seen;
    if (it->key() == Slice("bigger")) {
      EXPECT_EQ(it->value().ToString(), Value('c', 10 * KiB));
    }
  }
  EXPECT_EQ(seen, 3);
  EXPECT_TRUE(it->status().ok());

  // MultiGet resolves a mixed batch (sorted-pointer readahead path).
  std::vector<Slice> keys = {"big", "missing", "small", "bigger"};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE(db_->MultiGet({}, keys, &values, &statuses).ok());
  EXPECT_EQ(values[0], Value('b', 64));
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_EQ(values[2], "tiny");
  EXPECT_EQ(values[3], Value('c', 10 * KiB));

  const DbStats stats = db_->GetStats();
  EXPECT_GT(stats.value_log_bytes_written, 10 * KiB);
  EXPECT_GE(stats.value_log_segments, 1U);
}

TEST_F(ValueLogDbTest, SegmentsRotateAtSizeCap) {
  Options options = BaseOptions();
  options.value_log_segment_size = 2 * KiB;
  Open(options);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(db_->Put({}, "k" + std::to_string(i), Value('a' + (i % 26), KiB)).ok());
  }
  // 16 KiB of records over a 2 KiB cap: several sealed segments.
  EXPECT_GE(BlobFiles(fs_, "/db").size(), 4U);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(Get("k" + std::to_string(i)), Value('a' + (i % 26), KiB)) << i;
  }
}

TEST_F(ValueLogDbTest, CorruptBlobRecordSurfacesChecksumError) {
  Open(BaseOptions());
  ASSERT_TRUE(db_->Put({}, "victim", Value('v', 256)).ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());

  const auto blobs = BlobFiles(fs_, "/db");
  ASSERT_EQ(blobs.size(), 1U);
  std::string contents;
  ASSERT_TRUE(vfs::ReadFileToString(fs_, blobs[0], &contents).ok());
  contents[contents.size() / 2] ^= 0x5c;  // flip a bit mid-value
  ASSERT_TRUE(vfs::WriteStringToFile(fs_, blobs[0], contents).ok());

  std::string value;
  EXPECT_TRUE(db_->Get({}, "victim", &value).IsCorruption());

  // The iterator latches the same failure into status().
  std::unique_ptr<Iterator> it(db_->NewIterator({}));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_TRUE(it->value().empty());
  EXPECT_TRUE(it->status().IsCorruption());
}

TEST_F(ValueLogDbTest, WalReplayRecoversPointerEntries) {
  Open(BaseOptions());
  WriteOptions sync_write;
  sync_write.sync = true;
  ASSERT_TRUE(db_->Put(sync_write, "persisted", Value('p', 512)).ok());
  // No flush: recovery must replay the WAL's pointer op and validate it
  // against the blob segment.
  Open(BaseOptions());
  EXPECT_EQ(Get("persisted"), Value('p', 512));
}

TEST_F(ValueLogDbTest, ReopenWithThresholdZeroStillResolvesOldPointers) {
  Open(BaseOptions());
  ASSERT_TRUE(db_->Put({}, "legacy", Value('l', 256)).ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());

  Options no_separation = BaseOptions();
  no_separation.value_log_threshold = 0;
  Open(no_separation);
  EXPECT_EQ(Get("legacy"), Value('l', 256));
  // New large values stay inline now...
  ASSERT_TRUE(db_->Put({}, "inline", Value('i', 256)).ok());
  EXPECT_EQ(Get("inline"), Value('i', 256));
  const size_t blobs_before = BlobFiles(fs_, "/db").size();
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  // ...and no new segment appears.
  EXPECT_EQ(BlobFiles(fs_, "/db").size(), blobs_before);
}

TEST_F(ValueLogDbTest, ThresholdZeroStoreWritesNoBlobFiles) {
  Options options = BaseOptions();
  options.value_log_threshold = 0;
  Open(options);
  ASSERT_TRUE(db_->Put({}, "k", Value('x', 64 * KiB)).ok());
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  EXPECT_TRUE(BlobFiles(fs_, "/db").empty());
  EXPECT_EQ(db_->GetStats().value_log_segments, 0U);
  EXPECT_EQ(Get("k"), Value('x', 64 * KiB));
}

// GC scaffolding: leveled compaction on, small segments so overwritten
// batches drain whole segments, and enough churn to cross the garbage
// ratio. CompactRange() drives compactions deterministically.
class ValueLogGcTest : public ValueLogDbTest {
 protected:
  Options GcOptions() {
    Options options = BaseOptions();
    options.value_log_segment_size = 4 * KiB;
    options.value_log_gc_garbage_ratio = 0.5;
    options.write_buffer_size = 16 * KiB;
    options.l0_compaction_trigger = 2;
    return options;
  }

  void PutRound(char fill) {
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i), Value(fill, KiB)).ok());
    }
    ASSERT_TRUE(db_->FlushMemTable(true).ok());
  }

  // Repeated manual compactions: the first applies garbage accounting, the
  // later ones pick up the now-over-threshold segments, relocate their live
  // records, and sweep drained segment files.
  void DriveGc(int rounds = 4) {
    for (int i = 0; i < rounds; ++i) {
      ASSERT_TRUE(db_->CompactRange().ok());
    }
  }
};

TEST_F(ValueLogGcTest, OverwrittenSegmentsAreReclaimed) {
  Open(GcOptions());
  PutRound('a');
  PutRound('b');  // every 'a' record is now garbage
  DriveGc();

  const DbStats stats = db_->GetStats();
  EXPECT_GT(stats.value_log_segments_deleted, 0U) << "no segment reclaimed";
  // Everything still reads back the newest round.
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(Get("key" + std::to_string(i)), Value('b', KiB)) << i;
  }
  // The registry and the directory agree.
  EXPECT_EQ(BlobFiles(fs_, "/db").size(), db_->GetStats().value_log_segments);
}

TEST_F(ValueLogGcTest, SnapshotReadsSurviveRelocationAndDeferDeletion) {
  Open(GcOptions());
  PutRound('a');
  const Snapshot* snap = db_->GetSnapshot();
  ReadOptions at_snap;
  at_snap.snapshot_sequence = 12;  // after the 12 'a' puts

  PutRound('b');
  DriveGc();

  // The snapshot still resolves every old value: entries above the
  // smallest snapshot are never dropped, and relocation preserves the
  // original sequence numbers.
  for (int i = 0; i < 12; ++i) {
    std::string value;
    ASSERT_TRUE(db_->Get(at_snap, "key" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, Value('a', KiB)) << i;
  }

  db_->ReleaseSnapshot(snap);
  DriveGc();
  const DbStats stats = db_->GetStats();
  EXPECT_GT(stats.value_log_segments_deleted, 0U);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(Get("key" + std::to_string(i)), Value('b', KiB)) << i;
  }
}

TEST_F(ValueLogGcTest, OpenIteratorPinsSegmentsAgainstDeletion) {
  Open(GcOptions());
  PutRound('a');

  // The iterator pins the pre-overwrite Version; its weak_ptr guards any
  // segment drained while it is open.
  std::unique_ptr<Iterator> it(db_->NewIterator({}));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());

  PutRound('b');
  DriveGc();

  // Every position the iterator visits must still resolve.
  int seen = 0;
  for (; it->Valid(); it->Next()) {
    EXPECT_EQ(it->value().size(), KiB) << it->key().ToString();
    ++seen;
  }
  EXPECT_EQ(seen, 12);
  EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  it.reset();

  DriveGc();
  EXPECT_GT(db_->GetStats().value_log_segments_deleted, 0U);
}

TEST_F(ValueLogGcTest, GcStateSurvivesReopen) {
  Open(GcOptions());
  PutRound('a');
  PutRound('b');
  DriveGc();
  const uint64_t live_before = db_->GetStats().value_log_live_bytes;

  Open(GcOptions());
  // Per-segment accounting came back from the manifest, not a rescan that
  // would have reset everything to fully-live.
  EXPECT_EQ(db_->GetStats().value_log_live_bytes, live_before);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(Get("key" + std::to_string(i)), Value('b', KiB)) << i;
  }
}

TEST_F(ValueLogGcTest, ShardedStoreAggregatesValueLogStats) {
  Options options = GcOptions();
  options.num_shards = 4;
  Open(options);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i), Value('s', KiB)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable(true).ok());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(Get("key" + std::to_string(i)), Value('s', KiB)) << i;
  }
  const DbStats stats = db_->GetStats();
  EXPECT_GE(stats.value_log_bytes_written, 32 * KiB);
  EXPECT_GE(stats.value_log_segments, 1U);

  std::vector<DbStats> per_shard;
  db_->GetShardStats(&per_shard);
  ASSERT_EQ(per_shard.size(), 4U);
  uint64_t summed = 0;
  for (const DbStats& s : per_shard) summed += s.value_log_bytes_written;
  EXPECT_EQ(summed, stats.value_log_bytes_written);
}

}  // namespace
}  // namespace lsmio::lsm
